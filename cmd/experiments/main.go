// Command experiments regenerates every table and figure of the paper's
// evaluation (Section 5) on the synthetic datasets:
//
//	table4      — speedups of ScanMatch/SyncMatch/FastMatch over Scan
//	fig8        — wall time vs ε (per query)
//	fig9        — Δd vs ε (per query)
//	fig10       — wall time vs lookahead
//	fig11       — wall time vs δ
//	table5      — L1 vs L2 top-k overlap (FLIGHTS queries)
//	guarantees  — guarantee-violation count over repeated runs
//	sigma0      — the σ=0 pathology (§5.4)
//	queries     — the Table 3 query suite
//	all         — everything above
//
// Usage:
//
//	go run ./cmd/experiments -exp table4 [-rows 4000000] [-reps 3] [-seed 1]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"fastmatch/internal/expt"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run (table4, fig8, fig9, fig10, fig11, table5, guarantees, sigma0, queries, all)")
	rows := flag.Int("rows", 4_000_000, "rows per synthetic dataset")
	reps := flag.Int("reps", 3, "repetitions per measurement")
	seed := flag.Int64("seed", 1, "generation seed")
	// The engine treats seed 0 as fixed, so without an explicit per-run
	// seed every harness invocation would start each scan at the same
	// block; default to the wall clock and let -runseed pin it.
	runSeed := flag.Int64("runseed", time.Now().UnixNano(), "per-run scan-start seed (0 = deterministic starts)")
	query := flag.String("query", "", "restrict figure sweeps to one query id (default: a representative subset)")
	guaranteeRuns := flag.Int("guarantee-runs", 5, "runs per query for the guarantee check")
	flag.Parse()

	fmt.Printf("# FastMatch experiment harness\n")
	fmt.Printf("# datasets: flights/taxi/police @ %d rows each (seed %d, runseed %d)\n", *rows, *seed, *runSeed)
	start := time.Now()
	w, err := expt.NewWorkspace(expt.Config{Rows: *rows, Seed: *seed, Reps: *reps, RunSeed: *runSeed})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("# workspace built in %v (ε=%g δ=%g σ=%g lookahead=%d blockSize=%d)\n\n",
		time.Since(start).Round(time.Millisecond),
		w.Cfg.Epsilon, w.Cfg.Delta, w.Cfg.Sigma, w.Cfg.Lookahead, w.Cfg.BlockSize)

	run := func(name string) bool { return *exp == "all" || *exp == name }
	ran := false

	if run("queries") {
		ran = true
		fmt.Println("== Table 3: query suite ==")
		fmt.Printf("%-12s %-8s %-10s %-16s %3s\n", "Query", "Dataset", "Z", "X", "k")
		for _, q := range expt.Queries {
			fmt.Printf("%-12s %-8s %-10s %-16s %3d\n", q.ID, q.Dataset, q.Z, q.X, q.K)
		}
		fmt.Println()
	}

	if run("table4") {
		ran = true
		fmt.Println("== Table 4: average speedups and latencies over Scan ==")
		rows, err := expt.Table4(w, *reps)
		if err != nil {
			log.Fatal(err)
		}
		expt.FprintTable4(os.Stdout, rows)
		fmt.Println()
	}

	sweepQueries := []string{"flights-q1", "flights-q2", "taxi-q1", "police-q2"}
	if *query != "" {
		sweepQueries = strings.Split(*query, ",")
	}

	if run("fig8") || run("fig9") {
		ran = true
		fmt.Println("== Figures 8 & 9: effect of ε on latency and Δd ==")
		eps := []float64{0.10, 0.15, 0.20, 0.25, 0.30, 0.40, 0.50}
		for _, qid := range sweepQueries {
			fmt.Printf("-- %s --\n", qid)
			points, err := expt.Figure8(w, qid, eps, *reps)
			if err != nil {
				log.Fatal(err)
			}
			expt.FprintSweep(os.Stdout, "epsilon", points, true)
		}
		fmt.Println()
	}

	if run("fig10") {
		ran = true
		fmt.Println("== Figure 10: effect of lookahead on FastMatch latency ==")
		las := []int{8, 32, 128, 512, 1024, 2048}
		for _, qid := range sweepQueries {
			fmt.Printf("-- %s --\n", qid)
			points, err := expt.Figure10(w, qid, las, *reps)
			if err != nil {
				log.Fatal(err)
			}
			expt.FprintSweep(os.Stdout, "lookahead", points, false)
		}
		fmt.Println()
	}

	if run("fig11") {
		ran = true
		fmt.Println("== Figure 11: effect of δ on latency ==")
		deltas := []float64{0.005, 0.01, 0.02, 0.05}
		for _, qid := range sweepQueries {
			fmt.Printf("-- %s --\n", qid)
			points, err := expt.Figure11(w, qid, deltas, *reps)
			if err != nil {
				log.Fatal(err)
			}
			expt.FprintSweep(os.Stdout, "delta", points, false)
		}
		fmt.Println()
	}

	if run("table5") {
		ran = true
		fmt.Println("== Table 5: top-k agreement between L1 and L2 (FLIGHTS) ==")
		rows, err := expt.Table5(w)
		if err != nil {
			log.Fatal(err)
		}
		expt.FprintTable5(os.Stdout, rows)
		fmt.Println()
	}

	if run("guarantees") {
		ran = true
		fmt.Println("== Guarantee check (§5.4): violations across repeated FastMatch runs ==")
		viol, total, err := expt.GuaranteeCheck(w, *guaranteeRuns)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("violations: %d / %d runs (δ = %g)\n\n", viol, total, w.Cfg.Delta)
	}

	if run("sigma0") {
		ran = true
		fmt.Println("== σ = 0 pathology (§5.4): TAXI queries without stage-1 pruning ==")
		rows, err := expt.SigmaZero(w, *reps)
		if err != nil {
			log.Fatal(err)
		}
		expt.FprintSigmaZero(os.Stdout, rows)
		fmt.Println()
	}

	if !ran {
		log.Fatalf("unknown experiment %q", *exp)
	}
	fmt.Printf("# total harness time: %v\n", time.Since(start).Round(time.Millisecond))
}
