// Command fastmatch answers a top-k histogram matching query over a CSV
// file: the command-line face of the library.
//
// Usage:
//
//	go run ./cmd/datagen -dataset flights -rows 200000 -out flights.csv
//	go run ./cmd/fastmatch -csv flights.csv -z Origin -x DepartureHour \
//	    -target-candidate Origin_17 -k 5 -epsilon 0.2
//
// The target may be another candidate's histogram (-target-candidate),
// the uniform distribution (-target-uniform), or explicit comma-separated
// counts (-target-counts "1,2,4,2,1").
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"
	"time"

	"fastmatch"
	"fastmatch/internal/colstore"
)

func main() {
	csvPath := flag.String("csv", "", "input CSV file (headered)")
	z := flag.String("z", "", "candidate attribute (one histogram per distinct value)")
	x := flag.String("x", "", "grouping attribute(s), comma-separated for composite groups")
	k := flag.Int("k", 5, "number of matches to return")
	epsilon := flag.Float64("epsilon", 0.1, "approximation error bound ε")
	delta := flag.Float64("delta", 0.01, "error probability bound δ")
	sigma := flag.Float64("sigma", 0.001, "minimum selectivity threshold σ")
	executor := flag.String("executor", "fastmatch", "scan, parallelscan, scanmatch, syncmatch, or fastmatch")
	workers := flag.Int("workers", 0, "parallelscan worker count (0 = GOMAXPROCS)")
	metric := flag.String("metric", "l1", "distance metric: l1 or l2")
	targetCandidate := flag.String("target-candidate", "", "candidate value whose histogram is the target")
	targetUniform := flag.Bool("target-uniform", false, "target the uniform distribution")
	targetCounts := flag.String("target-counts", "", "explicit target counts, comma-separated")
	// Options.Seed 0 means a fixed start block, so the tool seeds each
	// invocation from the wall clock unless the user pins -seed.
	seed := flag.Int64("seed", time.Now().UnixNano(), "randomization seed (default: per-run from wall clock)")
	showHist := flag.Bool("hist", false, "print each match's histogram")
	flag.Parse()

	if *csvPath == "" || *z == "" || *x == "" {
		flag.Usage()
		os.Exit(2)
	}
	f, err := os.Open(*csvPath)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	shuffleSeed := *seed
	tbl, err := colstore.ReadCSV(f, colstore.CSVOptions{ShuffleSeed: &shuffleSeed, DropInvalid: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "loaded %d tuples in %d blocks\n", tbl.NumRows(), tbl.NumBlocks())

	exec, err := parseExecutor(*executor)
	if err != nil {
		log.Fatal(err)
	}
	m, err := parseMetric(*metric)
	if err != nil {
		log.Fatal(err)
	}
	opts := fastmatch.DefaultOptions(tbl.NumRows())
	opts.Params.K = *k
	opts.Params.Epsilon = *epsilon
	opts.Params.Delta = *delta
	opts.Params.Sigma = *sigma
	opts.Params.Metric = m
	opts.Executor = exec
	opts.Seed = *seed
	opts.Workers = *workers

	var target fastmatch.Target
	switch {
	case *targetCandidate != "":
		target.Candidate = *targetCandidate
	case *targetUniform:
		target.Uniform = true
	case *targetCounts != "":
		for _, field := range strings.Split(*targetCounts, ",") {
			v, err := strconv.ParseFloat(strings.TrimSpace(field), 64)
			if err != nil {
				log.Fatalf("bad target count %q: %v", field, err)
			}
			target.Counts = append(target.Counts, v)
		}
	default:
		log.Fatal("specify one of -target-candidate, -target-uniform, -target-counts")
	}

	query := fastmatch.Query{Z: *z, X: strings.Split(*x, ",")}
	res, err := fastmatch.NewEngine(tbl).Run(query, target, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr,
		"executor=%s sampled=%d/%d tuples blocks(read=%d skipped=%d) rounds=%d pruned=%d exact=%v in %v\n",
		exec, res.Stats.TotalSamples(), tbl.NumRows(),
		res.IO.BlocksRead, res.IO.BlocksSkipped, res.Stats.Rounds,
		res.Stats.PrunedCandidates, res.Exact, res.Duration.Round(time.Microsecond))
	for rank, match := range res.TopK {
		fmt.Printf("%2d. %-24s distance=%.4f n=%d\n",
			rank+1, match.Label, match.Distance, int(match.Histogram.Total()))
		if *showHist {
			p := match.Histogram.Normalized()
			for g, v := range p {
				fmt.Printf("      %-16s %6.2f%% %s\n", res.GroupLabels[g], v*100,
					strings.Repeat("#", int(v*60)))
			}
		}
	}
}

func parseExecutor(s string) (fastmatch.Executor, error) {
	switch strings.ToLower(s) {
	case "scan":
		return fastmatch.Scan, nil
	case "parallelscan":
		return fastmatch.ParallelScan, nil
	case "scanmatch":
		return fastmatch.ScanMatch, nil
	case "syncmatch":
		return fastmatch.SyncMatch, nil
	case "fastmatch":
		return fastmatch.FastMatch, nil
	}
	return 0, fmt.Errorf("unknown executor %q", s)
}

func parseMetric(s string) (fastmatch.Metric, error) {
	switch strings.ToLower(s) {
	case "l1":
		return fastmatch.MetricL1, nil
	case "l2":
		return fastmatch.MetricL2, nil
	}
	return 0, fmt.Errorf("unknown metric %q", s)
}
