// Command fastmatchd is the FastMatch query-serving daemon: it loads one
// or more datasets into a table registry and answers top-k histogram
// matching queries over JSON/HTTP, with plan and result caching and
// admission control (see internal/server).
//
// Usage:
//
//	go run ./cmd/datagen -dataset flights -rows 500000 -out "" -snapshot flights.fms
//	go run ./cmd/fastmatchd -listen :8080 -table flights=flights.fms
//
//	# zero-copy mmap backend: near-instant cold start, OS-managed residency
//	go run ./cmd/fastmatchd -listen :8080 -table "flights=flights.fms?backend=mmap"
//
//	# live ingestion: a WAL-backed appendable table (dir created if absent,
//	# WAL-replayed on boot); append via POST /v1/tables/live/rows
//	go run ./cmd/fastmatchd -listen :8080 \
//	    -table "live=./livedir?backend=ingest&columns=Origin,DepartureHour" \
//	    -measures live:Delay
//
//	# cluster coordinator: no local data — scatter-gather queries across
//	# shard daemons (write shard snapshots with datagen -shards N)
//	go run ./cmd/fastmatchd -listen :8081 -table flights=flights-shard0.fms &
//	go run ./cmd/fastmatchd -listen :8082 -table flights=flights-shard1.fms &
//	go run ./cmd/fastmatchd -listen :8080 -coordinator flights \
//	    -shard s0=http://127.0.0.1:8081 -shard s1=http://127.0.0.1:8082
//
//	curl -s localhost:8080/v1/tables
//	curl -s -X POST localhost:8080/v1/query -d '{
//	    "table": "flights",
//	    "query": {"z": "Origin", "x": ["DepartureHour"]},
//	    "target": {"uniform": true},
//	    "options": {"k": 5, "executor": "scan"}
//	}'
//
// -table name=path is repeatable; .fms/.snap/.snapshot paths load as
// binary snapshots (fast cold start, layout preserved), everything else
// as CSV. A path may carry query options: ?backend=mmap (snapshots only)
// serves the table zero-copy from a file mapping; ?backend=ingest treats
// the path as a live table directory and accepts columns= (schema, for
// fresh directories), seal=N (segment seal granularity in rows), and
// block=N (block size). Every table accepts timeout=DUR (per-request
// query timeout for this table, e.g. timeout=2s; overrides
// -query-timeout, timeout=-1ms disables) and audit=F (fraction of this
// table's completed sampling-executor answers to shadow-audit against an
// exact re-execution; overrides -audit-fraction, audit=-1 disables), and
// static tables accept blockdelay=DUR (artificial per-block read latency
// — a storage-latency simulator for demonstrating progressive delivery
// and cancellation). CSV and ingest measure columns are named with
// -measures table:col1,col2.
//
// -coordinator NAME serves NAME as a coordinated table: queries fan out
// across the -shard daemons (repeatable name=url, order = global block
// order, matching datagen -shards output order) and their partials fold
// into an answer byte-identical to a single node over the concatenated
// data. A dead shard degrades the answer honestly — 200 with
// "partial": true and the missing shard named — never a wrong total.
//
// Answer-quality observability: "quality": true on a query returns the
// run's convergence report next to the result; shadow-audit verdicts and
// recent quality reports are served at GET /v1/debug/quality and feed
// the fastmatch_quality_*/fastmatch_audit_* Prometheus families.
//
// Progressive queries: POST /v1/query/stream answers with NDJSON — one
// progress frame per HistSim round, then a terminal result frame
// byte-identical to the blocking endpoint's answer. Timed-out runs
// answer 200 with the best-effort partial result (flagged "partial");
// disconnected clients cancel the underlying scan and are counted in
// /v1/stats.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/url"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"fastmatch/internal/cluster"
	"fastmatch/internal/obs/logx"
	"fastmatch/internal/server"
)

func main() {
	listen := flag.String("listen", ":8080", "HTTP listen address")
	maxConcurrent := flag.Int("max-concurrent", 0, "concurrent engine runs bound (0 = 2×GOMAXPROCS)")
	maxWait := flag.Duration("max-wait", 2*time.Second, "how long over-capacity requests wait before 503 (negative = reject immediately)")
	planCache := flag.Int("plan-cache", 256, "plan cache entries (negative disables)")
	resultCache := flag.Int("result-cache", 1024, "result cache entries (negative disables)")
	admin := flag.Bool("admin", false, "expose POST /v1/admin/load and /debug/pprof (trusted networks only)")
	shuffleSeed := flag.Int64("shuffle-seed", 1, "row shuffle seed for CSV tables (negative = keep file order; snapshots always keep their layout)")
	queryTimeout := flag.Duration("query-timeout", 0, "default per-request query timeout; past it the response carries the best-effort partial result (0 = none, per-table timeout= overrides)")
	logFormat := flag.String("log-format", "text", "structured log format: text or json")
	logLevel := flag.String("log-level", "info", "minimum log level: debug, info, warn, or error")
	slowQueryMS := flag.Int64("slow-query-ms", 0, "slow-query threshold in milliseconds; requests at or past it log their full span tree at warn level (0 = off)")
	traceRing := flag.Int("trace-ring", 32, "slowest recent traces kept for GET /v1/debug/traces (negative disables)")
	auditFraction := flag.Float64("audit-fraction", 0, "fraction of completed sampling-executor answers to shadow-audit against an exact re-execution (0 = off, 1 = every answer; per-table audit= overrides)")
	qualityRing := flag.Int("quality-ring", 32, "recent answer-quality records kept for GET /v1/debug/quality (negative disables)")

	var tables []server.TableSpec
	flag.Func("table", "dataset to serve, as name=path, name=path?backend=mmap, or name=dir?backend=ingest&columns=a,b (repeatable)", func(v string) error {
		name, path, ok := strings.Cut(v, "=")
		if !ok || name == "" || path == "" {
			return fmt.Errorf("want name=path, got %q", v)
		}
		spec := server.TableSpec{Name: name, Path: path}
		if base, rawOpts, hasOpts := strings.Cut(path, "?"); hasOpts {
			opts, err := url.ParseQuery(rawOpts)
			if err != nil {
				return fmt.Errorf("table %q: parsing options %q: %v", name, rawOpts, err)
			}
			for k := range opts {
				switch k {
				case "backend", "columns", "seal", "block", "timeout", "blockdelay", "audit":
				default:
					return fmt.Errorf("table %q: unknown option %q (want backend, columns, seal, block, timeout, blockdelay, or audit)", name, k)
				}
			}
			spec.Path = base
			spec.Backend = opts.Get("backend")
			if cols := opts.Get("columns"); cols != "" {
				if spec.Backend != "ingest" {
					return fmt.Errorf("table %q: columns= is only for backend=ingest", name)
				}
				spec.Columns = strings.Split(cols, ",")
			}
			for _, numOpt := range []struct {
				key string
				dst *int
			}{{"seal", &spec.SealRows}, {"block", &spec.BlockSize}} {
				if s := opts.Get(numOpt.key); s != "" {
					n, err := strconv.Atoi(s)
					if err != nil || n <= 0 {
						return fmt.Errorf("table %q: bad %s=%q", name, numOpt.key, s)
					}
					*numOpt.dst = n
				}
			}
			if s := opts.Get("timeout"); s != "" {
				d, err := time.ParseDuration(s)
				if err != nil {
					return fmt.Errorf("table %q: bad timeout=%q: %v", name, s, err)
				}
				if d < 0 {
					spec.QueryTimeoutMS = -1 // explicitly no timeout
				} else {
					spec.QueryTimeoutMS = d.Milliseconds()
				}
			}
			if s := opts.Get("blockdelay"); s != "" {
				d, err := time.ParseDuration(s)
				if err != nil || d < 0 {
					return fmt.Errorf("table %q: bad blockdelay=%q", name, s)
				}
				spec.BlockDelayUS = d.Microseconds()
			}
			if s := opts.Get("audit"); s != "" {
				f, err := strconv.ParseFloat(s, 64)
				if err != nil {
					return fmt.Errorf("table %q: bad audit=%q: %v", name, s, err)
				}
				spec.AuditFraction = &f
			}
		}
		tables = append(tables, spec)
		return nil
	})
	coordinator := flag.String("coordinator", "", "serve this table as a cluster coordinator scatter-gathering across the -shard daemons (no local data)")
	var shardRefs []cluster.ShardRef
	flag.Func("shard", "shard daemon for -coordinator, as name=url (repeatable; order is the global block order)", func(v string) error {
		name, shardURL, ok := strings.Cut(v, "=")
		if !ok || name == "" || shardURL == "" {
			return fmt.Errorf("want name=url, got %q", v)
		}
		shardRefs = append(shardRefs, cluster.ShardRef{Name: name, URL: strings.TrimRight(shardURL, "/")})
		return nil
	})
	measures := map[string][]string{}
	flag.Func("measures", "CSV measure columns, as table:col1,col2 (repeatable)", func(v string) error {
		name, cols, ok := strings.Cut(v, ":")
		if !ok || name == "" || cols == "" {
			return fmt.Errorf("want table:col1,col2, got %q", v)
		}
		measures[name] = strings.Split(cols, ",")
		return nil
	})
	flag.Parse()

	var level slog.Level
	if err := level.UnmarshalText([]byte(*logLevel)); err != nil {
		fmt.Fprintf(os.Stderr, "fastmatchd: bad -log-level %q: %v\n", *logLevel, err)
		os.Exit(2)
	}
	logger, err := logx.New(os.Stderr, *logFormat, level)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fastmatchd: %v\n", err)
		os.Exit(2)
	}

	if len(tables) == 0 && *coordinator == "" {
		fmt.Fprintln(os.Stderr, "fastmatchd: no tables; pass at least one -table name=path (or -coordinator with -shard)")
		flag.Usage()
		os.Exit(2)
	}
	if *coordinator != "" && len(shardRefs) == 0 {
		fmt.Fprintln(os.Stderr, "fastmatchd: -coordinator needs at least one -shard name=url")
		flag.Usage()
		os.Exit(2)
	}

	srv := server.New(server.Config{
		MaxConcurrent:   *maxConcurrent,
		MaxWait:         *maxWait,
		PlanCacheSize:   *planCache,
		ResultCacheSize: *resultCache,
		EnableAdmin:     *admin,
		QueryTimeout:    *queryTimeout,
		Logger:          logger,
		SlowQuery:       time.Duration(*slowQueryMS) * time.Millisecond,
		TraceRingSize:   *traceRing,
		AuditFraction:   *auditFraction,
		QualityRingSize: *qualityRing,
	})
	for _, spec := range tables {
		spec.Measures = measures[spec.Name]
		spec.ShuffleSeed = shuffleSeed
		began := time.Now()
		if err := srv.LoadTable(spec); err != nil {
			logger.Error("loading table failed", "table", spec.Name, "error", err)
			os.Exit(1)
		}
		for _, info := range srv.Tables() {
			if info.Name == spec.Name {
				logger.Info("table loaded",
					"table", info.Name, "rows", info.Rows, "blocks", info.Blocks,
					"backend", info.Storage.Backend, "path", spec.Path,
					"elapsed", time.Since(began).Round(time.Millisecond).String())
			}
		}
	}

	if *coordinator != "" {
		if err := srv.RegisterCoordinatedTable(*coordinator, shardRefs); err != nil {
			logger.Error("registering coordinator failed", "table", *coordinator, "error", err)
			os.Exit(1)
		}
		names := make([]string, 0, len(shardRefs))
		for _, ref := range shardRefs {
			names = append(names, ref.Name+"="+ref.URL)
		}
		logger.Info("coordinator registered", "table", *coordinator, "shards", strings.Join(names, " "))
	}

	httpSrv := &http.Server{
		Addr:              *listen,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	logger.Info("serving", "tables", len(tables), "listen", *listen)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		logger.Error("server failed", "error", err)
		os.Exit(1)
	case sig := <-sigc:
		logger.Info("draining", "signal", sig.String())
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
			logger.Warn("shutdown", "error", err)
		}
	}
}
