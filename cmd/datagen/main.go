// Command datagen generates a synthetic dataset (flights, taxi, or
// police shaped — see internal/datagen) and writes it as headered CSV to
// stdout or a file, for use with cmd/fastmatch or external tools.
//
// Usage:
//
//	go run ./cmd/datagen -dataset taxi -rows 100000 -out taxi.csv
//	go run ./cmd/datagen -dataset flights -rows 50000 | head
//	go run ./cmd/datagen -dataset flights -rows 500000 -out "" -snapshot flights.fms
//
//	# stream rows into a live fastmatchd ingest table at 5000 rows/s
//	go run ./cmd/datagen -dataset flights -rows 100000 -out "" \
//	    -stream http://localhost:8080/v1/tables/live/rows -stream-rate 5000
//
// -snapshot additionally writes the built table as a binary snapshot
// (see internal/colstore: WriteSnapshot) that fastmatchd can cold-start
// from without CSV re-parsing; pass -out "" to skip the CSV entirely.
// Snapshots are written in format v3 (8-byte-aligned sections, mmap-able
// zero-copy with -table name=path?backend=mmap, plus a per-block
// statistics section for zone-map block skipping); -snapshot-format 2
// drops the statistics section and -snapshot-format 1 writes the legacy
// unaligned v1 layout, both for older readers.
//
// -shards N splits the table into N disjoint row-range shard snapshots
// (x.fms -> x-shard0.fms ... x-shardN-1.fms) for a fastmatchd cluster:
// every shard carries the FULL dictionaries (identical candidate/group
// id spaces) and all but the last hold a multiple of
// blockSize×engine.ChunkBlocks(blockSize) rows, so a coordinator's
// scatter-gather answer over the shards is byte-identical to a single
// node loading the unsplit snapshot.
//
// -stream POSTs the generated rows to a running fastmatchd append
// endpoint as batched text/csv requests, rate-limited by -stream-rate
// (rows per second; 0 streams as fast as the daemon acks). The target
// ingest table's schema must cover the dataset's columns and measures
// (e.g. boot with ?backend=ingest&columns=... matching -summary output).
package main

import (
	"bufio"
	"bytes"
	"encoding/csv"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"log/slog"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"fastmatch/internal/colstore"
	"fastmatch/internal/datagen"
	"fastmatch/internal/engine"
	"fastmatch/internal/obs/logx"
)

// shardPath derives shard i's snapshot path: "x.fms" -> "x-shard0.fms".
func shardPath(base string, i int) string {
	ext := filepath.Ext(base)
	return fmt.Sprintf("%s-shard%d%s", strings.TrimSuffix(base, ext), i, ext)
}

func main() {
	dataset := flag.String("dataset", "flights", "preset: flights, taxi, or police")
	rows := flag.Int("rows", 100_000, "number of tuples")
	seed := flag.Int64("seed", 1, "generation seed")
	out := flag.String("out", "-", "CSV output path (- for stdout, empty to skip CSV)")
	snapshot := flag.String("snapshot", "", "also write a binary table snapshot to this path")
	snapshotFormat := flag.Int("snapshot-format", colstore.CurrentSnapshotVersion,
		"snapshot format version (3 = aligned + block stats, 2 = aligned/mmap-able, 1 = legacy)")
	shards := flag.Int("shards", 0, "with -snapshot: split the table into N disjoint row-range shard snapshots (name-shardK.ext), chunk-aligned for coordinator byte-identity")
	summary := flag.Bool("summary", false, "print per-column summaries to stderr")
	stream := flag.String("stream", "", "POST rows to this fastmatchd append endpoint (e.g. http://host:8080/v1/tables/NAME/rows)")
	streamRate := flag.Int("stream-rate", 0, "rows per second for -stream (0 = unthrottled)")
	streamBatch := flag.Int("stream-batch", 1000, "rows per -stream request")
	logFormat := flag.String("log-format", "text", "structured -stream progress log format: text or json")
	flag.Parse()

	ds, err := datagen.ByName(*dataset, *rows, *seed, 0)
	if err != nil {
		log.Fatal(err)
	}
	if *summary {
		fmt.Fprintf(os.Stderr, "dataset %s: %d rows, %d blocks\n",
			*dataset, ds.Table.NumRows(), ds.Table.NumBlocks())
		for _, name := range ds.Table.Columns() {
			col, err := ds.Table.Column(name)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Fprintf(os.Stderr, "  %-16s cardinality %d\n", name, col.Cardinality())
		}
	}
	if *snapshot != "" {
		if *shards > 1 {
			// Shard boundaries must land on sampler chunk-commit positions:
			// that is what makes a coordinated K-shard answer byte-identical
			// to a single node over the concatenated data (see
			// internal/cluster). Shards share the table's full dictionaries
			// by construction.
			align := ds.Table.BlockSize() * engine.ChunkBlocks(ds.Table.BlockSize())
			parts, err := colstore.ShardTables(ds.Table, *shards, align)
			if err != nil {
				log.Fatal(err)
			}
			for i, part := range parts {
				path := shardPath(*snapshot, i)
				if err := colstore.WriteSnapshotFileVersion(part, path, *snapshotFormat); err != nil {
					log.Fatal(err)
				}
				fmt.Fprintf(os.Stderr, "shard %d snapshot (v%d): %d rows, %d blocks -> %s\n",
					i, *snapshotFormat, part.NumRows(), part.NumBlocks(), path)
			}
		} else {
			if err := colstore.WriteSnapshotFileVersion(ds.Table, *snapshot, *snapshotFormat); err != nil {
				log.Fatal(err)
			}
			fmt.Fprintf(os.Stderr, "snapshot (v%d) written to %s\n", *snapshotFormat, *snapshot)
		}
	}
	if *stream != "" {
		logger, err := logx.New(os.Stderr, *logFormat, slog.LevelInfo)
		if err != nil {
			log.Fatal(err)
		}
		if err := streamRows(ds.Table, *stream, *streamRate, *streamBatch, logger); err != nil {
			log.Fatal(err)
		}
	}
	if *out == "" {
		return
	}
	var w *bufio.Writer
	if *out == "-" {
		w = bufio.NewWriter(os.Stdout)
	} else {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
		}()
		w = bufio.NewWriter(f)
	}
	if err := colstore.WriteCSV(ds.Table, w); err != nil {
		log.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		log.Fatal(err)
	}
}

// streamRows POSTs the table's rows to a fastmatchd append endpoint as
// batched text/csv requests, pacing batches to rate rows per second,
// logging structured progress (rows sent, achieved rate, server acks)
// about once a second.
func streamRows(tbl *colstore.Table, url string, rate, batch int, logger *slog.Logger) error {
	if batch <= 0 {
		batch = 1000
	}
	colNames := tbl.Columns()
	cols := make([]*colstore.Column, len(colNames))
	for i, name := range colNames {
		c, err := tbl.Column(name)
		if err != nil {
			return err
		}
		cols[i] = c
	}
	measNames := tbl.MeasureNames()
	measures := make([]*colstore.MeasureColumn, len(measNames))
	for i, name := range measNames {
		m, err := tbl.Measure(name)
		if err != nil {
			return err
		}
		measures[i] = m
	}
	header := append(append([]string{}, colNames...), measNames...)
	record := make([]string, len(header))

	var interval time.Duration
	if rate > 0 {
		interval = time.Duration(float64(batch) / float64(rate) * float64(time.Second))
	}
	began := time.Now()
	next := began
	lastLog := began
	var body bytes.Buffer
	sent, acks := 0, 0
	total := tbl.NumRows()
	for lo := 0; lo < total; lo += batch {
		hi := lo + batch
		if hi > total {
			hi = total
		}
		body.Reset()
		cw := csv.NewWriter(&body)
		if err := cw.Write(header); err != nil {
			return err
		}
		for r := lo; r < hi; r++ {
			for i, c := range cols {
				record[i] = c.Dict.Value(c.Code(r))
			}
			for i, m := range measures {
				record[len(cols)+i] = strconv.FormatFloat(m.Value(r), 'g', -1, 64)
			}
			if err := cw.Write(record); err != nil {
				return err
			}
		}
		cw.Flush()
		if err := cw.Error(); err != nil {
			return err
		}
		if interval > 0 {
			if d := time.Until(next); d > 0 {
				time.Sleep(d)
			}
			next = next.Add(interval)
		}
		resp, err := http.Post(url, "text/csv", bytes.NewReader(body.Bytes()))
		if err != nil {
			return fmt.Errorf("streaming rows %d-%d: %w", lo, hi, err)
		}
		if resp.StatusCode != http.StatusOK {
			msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
			resp.Body.Close()
			return fmt.Errorf("streaming rows %d-%d: %s: %s", lo, hi, resp.Status, msg)
		}
		// The daemon acks each batch with its post-append state; decode it
		// so progress logs report what the server made durable, not just
		// what was sent.
		var ack struct {
			TotalRows  int    `json:"total_rows"`
			Generation uint64 `json:"generation"`
			Synced     bool   `json:"synced"`
		}
		ackOK := json.NewDecoder(io.LimitReader(resp.Body, 4096)).Decode(&ack) == nil
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		sent = hi
		acks++
		if now := time.Now(); now.Sub(lastLog) >= time.Second || sent == total {
			attrs := []any{
				"rows_sent", sent,
				"total", total,
				"acks", acks,
				"rows_per_sec", int(float64(sent) / now.Sub(began).Seconds()),
			}
			if ackOK {
				attrs = append(attrs,
					"server_rows", ack.TotalRows,
					"generation", ack.Generation,
					"synced", ack.Synced,
				)
			}
			logger.Info("stream progress", attrs...)
			lastLog = now
		}
	}
	elapsed := time.Since(began).Seconds()
	logger.Info("stream done",
		"rows", sent, "acks", acks, "target", url,
		"elapsed_s", elapsed, "rows_per_sec", int(float64(sent)/elapsed))
	return nil
}
