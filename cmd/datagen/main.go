// Command datagen generates a synthetic dataset (flights, taxi, or
// police shaped — see internal/datagen) and writes it as headered CSV to
// stdout or a file, for use with cmd/fastmatch or external tools.
//
// Usage:
//
//	go run ./cmd/datagen -dataset taxi -rows 100000 -out taxi.csv
//	go run ./cmd/datagen -dataset flights -rows 50000 | head
//	go run ./cmd/datagen -dataset flights -rows 500000 -out "" -snapshot flights.fms
//
// -snapshot additionally writes the built table as a binary snapshot
// (see internal/colstore: WriteSnapshot) that fastmatchd can cold-start
// from without CSV re-parsing; pass -out "" to skip the CSV entirely.
// Snapshots are written in format v2 (8-byte-aligned sections, mmap-able
// zero-copy with -table name=path?backend=mmap); -snapshot-format 1
// writes the legacy unaligned v1 layout for older readers.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"

	"fastmatch/internal/colstore"
	"fastmatch/internal/datagen"
)

func main() {
	dataset := flag.String("dataset", "flights", "preset: flights, taxi, or police")
	rows := flag.Int("rows", 100_000, "number of tuples")
	seed := flag.Int64("seed", 1, "generation seed")
	out := flag.String("out", "-", "CSV output path (- for stdout, empty to skip CSV)")
	snapshot := flag.String("snapshot", "", "also write a binary table snapshot to this path")
	snapshotFormat := flag.Int("snapshot-format", colstore.CurrentSnapshotVersion,
		"snapshot format version (2 = aligned/mmap-able, 1 = legacy)")
	summary := flag.Bool("summary", false, "print per-column summaries to stderr")
	flag.Parse()

	ds, err := datagen.ByName(*dataset, *rows, *seed, 0)
	if err != nil {
		log.Fatal(err)
	}
	if *summary {
		fmt.Fprintf(os.Stderr, "dataset %s: %d rows, %d blocks\n",
			*dataset, ds.Table.NumRows(), ds.Table.NumBlocks())
		for _, name := range ds.Table.Columns() {
			col, err := ds.Table.Column(name)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Fprintf(os.Stderr, "  %-16s cardinality %d\n", name, col.Cardinality())
		}
	}
	if *snapshot != "" {
		if err := colstore.WriteSnapshotFileVersion(ds.Table, *snapshot, *snapshotFormat); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "snapshot (v%d) written to %s\n", *snapshotFormat, *snapshot)
	}
	if *out == "" {
		return
	}
	var w *bufio.Writer
	if *out == "-" {
		w = bufio.NewWriter(os.Stdout)
	} else {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
		}()
		w = bufio.NewWriter(f)
	}
	if err := colstore.WriteCSV(ds.Table, w); err != nil {
		log.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		log.Fatal(err)
	}
}
