#!/usr/bin/env bash
# Server smoke test: generate a dataset, cold-start fastmatchd from a
# binary snapshot, run scripted queries, and assert on the responses.
# Used by CI and runnable locally: ./scripts/server_smoke.sh
set -euo pipefail
cd "$(dirname "$0")/.."

PORT="${SMOKE_PORT:-18080}"
BASE="http://127.0.0.1:${PORT}"
TMP="$(mktemp -d)"
PID=""
cleanup() {
  [ -n "$PID" ] && kill "$PID" 2>/dev/null || true
  rm -rf "$TMP"
}
trap cleanup EXIT

echo "== building"
go build -o "$TMP/datagen" ./cmd/datagen
go build -o "$TMP/fastmatchd" ./cmd/fastmatchd

echo "== generating flights dataset + snapshot"
"$TMP/datagen" -dataset flights -rows 100000 -out "" -snapshot "$TMP/flights.fms"

echo "== starting fastmatchd (same snapshot on the inmem and mmap backends)"
"$TMP/fastmatchd" -listen "127.0.0.1:${PORT}" \
  -table "flights=$TMP/flights.fms" \
  -table "flightsmm=$TMP/flights.fms?backend=mmap" &
PID=$!

for i in $(seq 1 100); do
  if curl -fsS "$BASE/v1/healthz" >/dev/null 2>&1; then break; fi
  if ! kill -0 "$PID" 2>/dev/null; then echo "fastmatchd died during startup" >&2; exit 1; fi
  sleep 0.1
done
curl -fsS "$BASE/v1/healthz" | grep -q '"status":"ok"' || { echo "healthz not ok" >&2; exit 1; }

echo "== /v1/tables lists the dataset"
TABLES="$(curl -fsS "$BASE/v1/tables")"
echo "$TABLES" | grep -q '"name":"flights"' || { echo "flights table missing: $TABLES" >&2; exit 1; }
echo "$TABLES" | grep -q '"rows":100000'   || { echo "wrong row count: $TABLES" >&2; exit 1; }

QUERY='{"table":"flights","query":{"z":"Origin","x":["DepartureHour"]},"target":{"uniform":true},"options":{"k":3,"executor":"scanmatch","epsilon":0.1,"seed":7}}'

echo "== scripted query returns a top-k answer"
R1="$(curl -fsS -X POST "$BASE/v1/query" -d "$QUERY")"
echo "$R1" | grep -q '"topk":\[{"id":'   || { echo "no topk in: $R1" >&2; exit 1; }
echo "$R1" | grep -q '"label":"Origin_' || { echo "no candidate labels in: $R1" >&2; exit 1; }
echo "$R1" | grep -q '"cached":false'   || { echo "first query unexpectedly cached: $R1" >&2; exit 1; }

echo "== identical query hits the result cache with identical payload"
R2="$(curl -fsS -X POST "$BASE/v1/query" -d "$QUERY")"
echo "$R2" | grep -q '"cached":true' || { echo "second query not cached: $R2" >&2; exit 1; }
P1="$(printf '%s' "$R1" | sed 's/.*"result"://')"
P2="$(printf '%s' "$R2" | sed 's/.*"result"://')"
[ "$P1" = "$P2" ] || { echo "cached payload differs from live payload" >&2; exit 1; }

echo "== /v1/stats reports the cache hit"
STATS="$(curl -fsS "$BASE/v1/stats")"
echo "$STATS" | grep -q '"result_cache_hits":1' || { echo "stats missing cache hit: $STATS" >&2; exit 1; }

echo "== mmap-backed table answers the same query identically"
MMQUERY="$(printf '%s' "$QUERY" | sed 's/"table":"flights"/"table":"flightsmm"/')"
R3="$(curl -fsS -X POST "$BASE/v1/query" -d "$MMQUERY")"
P3="$(printf '%s' "$R3" | sed 's/.*"result"://')"
[ "$P1" = "$P3" ] || { echo "mmap backend result differs from in-memory backend" >&2; echo "inmem: $P1" >&2; echo "mmap:  $P3" >&2; exit 1; }

echo "== /v1/tables and /v1/stats report the mmap backend"
TABLES="$(curl -fsS "$BASE/v1/tables")"
echo "$TABLES" | grep -q '"name":"flightsmm"' || { echo "flightsmm table missing: $TABLES" >&2; exit 1; }
echo "$TABLES" | grep -Eq '"backend":"mmap(-fallback)?"' || { echo "mmap backend not reported: $TABLES" >&2; exit 1; }
echo "$TABLES" | grep -q '"backend":"inmem"' || { echo "inmem backend not reported: $TABLES" >&2; exit 1; }
STATS="$(curl -fsS "$BASE/v1/stats")"
echo "$STATS" | grep -Eq '"backend":"mmap(-fallback)?"' || { echo "stats missing mmap backend: $STATS" >&2; exit 1; }

echo "== malformed requests are rejected cleanly"
CODE="$(curl -s -o /dev/null -w '%{http_code}' -X POST "$BASE/v1/query" -d '{"table":"flights","query":{"z":"Origin","x":["DepartureHour"]},"target":{"uniform":true},"options":{"epsilon":-1}}')"
[ "$CODE" = "422" ] || { echo "invalid epsilon returned $CODE, want 422" >&2; exit 1; }
curl -fsS "$BASE/v1/healthz" >/dev/null || { echo "server unhealthy after bad request" >&2; exit 1; }

echo "server smoke OK"
