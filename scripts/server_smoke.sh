#!/usr/bin/env bash
# Server smoke test: generate a dataset, cold-start fastmatchd from a
# binary snapshot, run scripted queries, and assert on the responses;
# then exercise the live-ingestion path end to end (stream rows into an
# ingest-backed table, query mid-ingest, kill -9 the daemon, restart,
# and assert the WAL replay recovered every acked row).
# Used by CI and runnable locally: ./scripts/server_smoke.sh
set -euo pipefail
cd "$(dirname "$0")/.."

PORT="${SMOKE_PORT:-18080}"
BASE="http://127.0.0.1:${PORT}"
TMP="$(mktemp -d)"
PID=""
SPIDS=""
cleanup() {
  for p in $PID $SPIDS; do kill "$p" 2>/dev/null || true; done
  rm -rf "$TMP"
}
trap cleanup EXIT

wait_url() { # $1 = base URL, $2 = pid
  for i in $(seq 1 100); do
    if curl -fsS "$1/v1/healthz" >/dev/null 2>&1; then return 0; fi
    if ! kill -0 "$2" 2>/dev/null; then echo "fastmatchd died during startup" >&2; exit 1; fi
    sleep 0.1
  done
  curl -fsS "$1/v1/healthz" >/dev/null
}

wait_healthy() { wait_url "$BASE" "$PID"; }

echo "== building"
go build -o "$TMP/datagen" ./cmd/datagen
go build -o "$TMP/fastmatchd" ./cmd/fastmatchd

echo "== generating flights dataset + snapshot"
"$TMP/datagen" -dataset flights -rows 100000 -out "" -snapshot "$TMP/flights.fms"

echo "== starting fastmatchd (same snapshot on the inmem and mmap backends, plus a throttled copy; flights shadow-audits every sampling answer)"
"$TMP/fastmatchd" -listen "127.0.0.1:${PORT}" \
  -table "flights=$TMP/flights.fms?audit=1" \
  -table "flightsmm=$TMP/flights.fms?backend=mmap" \
  -table "flightsslow=$TMP/flights.fms?blockdelay=2ms" &
PID=$!
wait_healthy
curl -fsS "$BASE/v1/healthz" | grep -q '"status":"ok"' || { echo "healthz not ok" >&2; exit 1; }

echo "== /v1/tables lists the dataset"
TABLES="$(curl -fsS "$BASE/v1/tables")"
echo "$TABLES" | grep -q '"name":"flights"' || { echo "flights table missing: $TABLES" >&2; exit 1; }
echo "$TABLES" | grep -q '"rows":100000'   || { echo "wrong row count: $TABLES" >&2; exit 1; }

QUERY='{"table":"flights","query":{"z":"Origin","x":["DepartureHour"]},"target":{"uniform":true},"options":{"k":3,"executor":"scanmatch","epsilon":0.1,"seed":7}}'

echo "== scripted query returns a top-k answer"
R1="$(curl -fsS -X POST "$BASE/v1/query" -d "$QUERY")"
echo "$R1" | grep -q '"topk":\[{"id":'   || { echo "no topk in: $R1" >&2; exit 1; }
echo "$R1" | grep -q '"label":"Origin_' || { echo "no candidate labels in: $R1" >&2; exit 1; }
echo "$R1" | grep -q '"cached":false'   || { echo "first query unexpectedly cached: $R1" >&2; exit 1; }

echo "== identical query hits the result cache with identical payload"
R2="$(curl -fsS -X POST "$BASE/v1/query" -d "$QUERY")"
echo "$R2" | grep -q '"cached":true' || { echo "second query not cached: $R2" >&2; exit 1; }
P1="$(printf '%s' "$R1" | sed 's/.*"result"://')"
P2="$(printf '%s' "$R2" | sed 's/.*"result"://')"
[ "$P1" = "$P2" ] || { echo "cached payload differs from live payload" >&2; exit 1; }

echo "== /v1/stats reports the cache hit"
STATS="$(curl -fsS "$BASE/v1/stats")"
echo "$STATS" | grep -q '"result_cache_hits":1' || { echo "stats missing cache hit: $STATS" >&2; exit 1; }

echo "== mmap-backed table answers the same query identically"
MMQUERY="$(printf '%s' "$QUERY" | sed 's/"table":"flights"/"table":"flightsmm"/')"
R3="$(curl -fsS -X POST "$BASE/v1/query" -d "$MMQUERY")"
P3="$(printf '%s' "$R3" | sed 's/.*"result"://')"
[ "$P1" = "$P3" ] || { echo "mmap backend result differs from in-memory backend" >&2; echo "inmem: $P1" >&2; echo "mmap:  $P3" >&2; exit 1; }

echo "== /v1/tables and /v1/stats report the mmap backend"
TABLES="$(curl -fsS "$BASE/v1/tables")"
echo "$TABLES" | grep -q '"name":"flightsmm"' || { echo "flightsmm table missing: $TABLES" >&2; exit 1; }
echo "$TABLES" | grep -Eq '"backend":"mmap(-fallback)?"' || { echo "mmap backend not reported: $TABLES" >&2; exit 1; }
echo "$TABLES" | grep -q '"backend":"inmem"' || { echo "inmem backend not reported: $TABLES" >&2; exit 1; }
STATS="$(curl -fsS "$BASE/v1/stats")"
echo "$STATS" | grep -Eq '"backend":"mmap(-fallback)?"' || { echo "stats missing mmap backend: $STATS" >&2; exit 1; }

echo "== predicate-carrying query skips blocks via zone-map stats, visible in IOStats and /v1/stats"
LABEL="$(printf '%s' "$R1" | grep -o '"label":"[^"]*"' | head -1 | cut -d'"' -f4)"
PQUERY="{\"table\":\"flights\",\"query\":{\"candidate_preds\":[{\"column\":\"Origin\",\"value\":\"$LABEL\"}],\"x\":[\"DepartureHour\"]},\"target\":{\"uniform\":true},\"options\":{\"k\":1,\"executor\":\"scan\",\"seed\":7}}"
R4="$(curl -fsS -X POST "$BASE/v1/query" -d "$PQUERY")"
echo "$R4" | grep -q '"label":"Origin='             || { echo "predicate candidate missing from: $R4" >&2; exit 1; }
echo "$R4" | grep -Eq '"blocks_skipped":[1-9]'       || { echo "predicate query skipped no blocks: $R4" >&2; exit 1; }
echo "$R4" | grep -Eq '"blocks_pruned":[1-9]'        || { echo "predicate query pruned no blocks: $R4" >&2; exit 1; }
echo "$R4" | grep -Eq '"kernel_blocks":[1-9]'        || { echo "predicate query took no kernel blocks: $R4" >&2; exit 1; }
FSTATS="$(curl -fsS "$BASE/v1/stats" | sed 's/.*"flights"://')"
printf '%s' "$FSTATS" | grep -Eq '"blocks_pruned":[1-9]' || { echo "/v1/stats missing pruned blocks: $FSTATS" >&2; exit 1; }
printf '%s' "$FSTATS" | grep -Eq '"kernel_blocks":[1-9]' || { echo "/v1/stats missing kernel blocks: $FSTATS" >&2; exit 1; }

echo "== /metrics exposes Prometheus text, with the pruning counters ticked"
METRICS="$(curl -fsS "$BASE/metrics")"
printf '%s\n' "$METRICS" | grep -q '^# TYPE fastmatch_requests_total counter' || { echo "/metrics missing requests_total family" >&2; exit 1; }
printf '%s\n' "$METRICS" | grep -q '^# TYPE fastmatch_request_duration_seconds histogram' || { echo "/metrics missing latency histogram" >&2; exit 1; }
printf '%s\n' "$METRICS" | grep -Eq '^fastmatch_requests_total\{table="flights",outcome="ok"\} [1-9]' || { echo "/metrics missing ok requests for flights" >&2; exit 1; }
printf '%s\n' "$METRICS" | grep -Eq '^fastmatch_blocks_pruned_total\{table="flights"\} [1-9]' || { echo "/metrics shows no pruned blocks after predicate query" >&2; exit 1; }
printf '%s\n' "$METRICS" | grep -Eq '^fastmatch_result_cache_hits_total\{table="flights"\} [1-9]' || { echo "/metrics missing cache hit" >&2; exit 1; }

echo "== syncmatch with workers=4 is byte-identical to workers=1; per-worker sampler counters tick"
W1QUERY='{"table":"flights","query":{"z":"Origin","x":["DepartureHour"]},"target":{"uniform":true},"options":{"k":3,"executor":"syncmatch","epsilon":0.1,"seed":13,"workers":1}}'
W4QUERY="$(printf '%s' "$W1QUERY" | sed 's/"workers":1/"workers":4/')"
RW1="$(curl -fsS -X POST "$BASE/v1/query" -d "$W1QUERY")"
RW4="$(curl -fsS -X POST "$BASE/v1/query" -d "$W4QUERY")"
echo "$RW4" | grep -q '"cached":false' || { echo "workers=4 unexpectedly cached (worker count should be a distinct fingerprint): $RW4" >&2; exit 1; }
PW1="$(printf '%s' "$RW1" | sed 's/.*"result"://')"
PW4="$(printf '%s' "$RW4" | sed 's/.*"result"://')"
[ "$PW1" = "$PW4" ] || { echo "workers=4 result differs from workers=1" >&2; echo "w1: $PW1" >&2; echo "w4: $PW4" >&2; exit 1; }
FSTATS="$(curl -fsS "$BASE/v1/stats" | sed 's/.*"flights"://')"
printf '%s' "$FSTATS" | grep -Eq '"sampler_parallel_runs":[1-9]' || { echo "/v1/stats missing parallel sampler runs: $FSTATS" >&2; exit 1; }
printf '%s' "$FSTATS" | grep -Eq '"sampler_worker_blocks":\[[0-9]+,[0-9]+' || { echo "/v1/stats missing per-worker sampler counters: $FSTATS" >&2; exit 1; }
METRICS="$(curl -fsS "$BASE/metrics")"
printf '%s\n' "$METRICS" | grep -Eq '^fastmatch_sampler_worker_blocks_total\{table="flights",worker="1"\} [1-9]' || { echo "/metrics missing per-worker sampler series" >&2; exit 1; }

echo "== traced query returns a span tree with the same result bytes; ring exposes it"
TQUERY="$(printf '%s' "$QUERY" | sed 's/^{/{"trace":true,/')"
RT="$(curl -fsS -X POST "$BASE/v1/query" -d "$TQUERY")"
echo "$RT" | grep -q '"trace":{'      || { echo "no trace in traced response: $RT" >&2; exit 1; }
echo "$RT" | grep -q '"name":"run"'   || { echo "no run span in trace: $RT" >&2; exit 1; }
echo "$RT" | grep -q '"cached":false' || { echo "traced request served from cache: $RT" >&2; exit 1; }
PT="$(printf '%s' "$RT" | sed 's/.*"result"://')"
[ "$P1" = "$PT" ] || { echo "traced result differs from untraced" >&2; echo "plain:  $P1" >&2; echo "traced: $PT" >&2; exit 1; }
DT="$(curl -fsS "$BASE/v1/debug/traces")"
echo "$DT" | grep -q '"query_id":' || { echo "debug trace ring empty: $DT" >&2; exit 1; }
curl -fsS "$BASE/healthz" | grep -q '"table_status":' || { echo "healthz missing table_status" >&2; exit 1; }

echo "== quality-requesting query returns a convergence report next to identical result bytes"
QQUERY="$(printf '%s' "$QUERY" | sed 's/^{/{"quality":true,/')"
RQ="$(curl -fsS -X POST "$BASE/v1/query" -d "$QQUERY")"
echo "$RQ" | grep -q '"quality":{'           || { echo "no quality report in: $RQ" >&2; exit 1; }
echo "$RQ" | grep -q '"guarantee_met":true'  || { echo "quality report does not claim the guarantee: $RQ" >&2; exit 1; }
echo "$RQ" | grep -Eq '"rounds":[0-9]'       || { echo "quality report missing rounds: $RQ" >&2; exit 1; }
echo "$RQ" | grep -q '"cached":false'        || { echo "quality request served from cache: $RQ" >&2; exit 1; }
PQ="$(printf '%s' "$RQ" | sed 's/.*"result"://')"
[ "$P1" = "$PQ" ] || { echo "quality collection perturbed the result" >&2; echo "plain:   $P1" >&2; echo "quality: $PQ" >&2; exit 1; }

echo "== shadow audits (audit=1 on flights) land in /v1/debug/quality and /metrics"
AUDITED=""
for i in $(seq 1 50); do
  DQ="$(curl -fsS "$BASE/v1/debug/quality")"
  if printf '%s' "$DQ" | grep -q '"precision_at_k":'; then AUDITED=yes; break; fi
  sleep 0.1
done
[ -n "$AUDITED" ] || { echo "no audit verdict in /v1/debug/quality: $DQ" >&2; exit 1; }
printf '%s' "$DQ" | grep -q '"audit":{'    || { echo "quality ring entry has no audit: $DQ" >&2; exit 1; }
printf '%s' "$DQ" | grep -q '"query_id":'  || { echo "quality ring entry has no query id: $DQ" >&2; exit 1; }
METRICS="$(curl -fsS "$BASE/metrics")"
printf '%s\n' "$METRICS" | grep -Eq '^fastmatch_audit_runs_total\{table="flights"\} [1-9]' || { echo "/metrics shows no audit runs" >&2; exit 1; }
printf '%s\n' "$METRICS" | grep -Eq '^fastmatch_audit_precision_at_k_count\{table="flights"\} [1-9]' || { echo "/metrics missing audit precision histogram" >&2; exit 1; }
printf '%s\n' "$METRICS" | grep -Eq '^fastmatch_quality_rounds_count\{table="flights"\} [1-9]' || { echo "/metrics missing quality rounds histogram" >&2; exit 1; }
FSTATS="$(curl -fsS "$BASE/v1/stats" | sed 's/.*"flights"://')"
printf '%s' "$FSTATS" | grep -Eq '"audit_runs":[1-9]' || { echo "/v1/stats missing audit runs: $FSTATS" >&2; exit 1; }

echo "== /v1/query/stream: progress frames precede a result byte-identical to the blocking answer"
SQUERY='{"table":"flights","query":{"z":"Origin","x":["DepartureHour"]},"target":{"uniform":true},"options":{"k":3,"executor":"scanmatch","epsilon":0.1,"seed":21}}'
STREAM="$(curl -fsS -N -X POST "$BASE/v1/query/stream" -d "$SQUERY")"
NFRAMES="$(printf '%s\n' "$STREAM" | grep -c '"type":')"
[ "$NFRAMES" -ge 2 ] || { echo "stream produced $NFRAMES frames, want >= 2: $STREAM" >&2; exit 1; }
printf '%s\n' "$STREAM" | head -1 | grep -q '"type":"progress"' || { echo "first frame not progress: $STREAM" >&2; exit 1; }
printf '%s\n' "$STREAM" | head -1 | grep -q '"query_id":"' || { echo "start frame carries no query_id: $STREAM" >&2; exit 1; }
printf '%s\n' "$STREAM" | head -n -1 | grep -q '"type":"result"' && { echo "result frame before the end of the stream" >&2; exit 1; }
LAST="$(printf '%s\n' "$STREAM" | tail -1)"
printf '%s' "$LAST" | grep -q '"type":"result"' || { echo "terminal frame not a result: $LAST" >&2; exit 1; }
SP="$(printf '%s' "$LAST" | sed 's/.*"result"://')"
RB="$(curl -fsS -X POST "$BASE/v1/query" -d "$SQUERY")"
echo "$RB" | grep -q '"cached":true' || { echo "blocking repeat of streamed query not served from cache: $RB" >&2; exit 1; }
PB="$(printf '%s' "$RB" | sed 's/.*"result"://')"
[ "$SP" = "$PB" ] || { echo "streamed result differs from blocking result" >&2; echo "stream:   $SP" >&2; echo "blocking: $PB" >&2; exit 1; }

echo "== row budget answers 200 with a partial result (and is not cached)"
BQUERY='{"table":"flightsslow","query":{"z":"Origin","x":["DepartureHour"]},"target":{"uniform":true},"options":{"k":3,"executor":"scan","seed":7,"row_budget":2000}}'
RP="$(curl -fsS -X POST "$BASE/v1/query" -d "$BQUERY")"
echo "$RP" | grep -q '"partial":true' || { echo "budgeted run not flagged partial: $RP" >&2; exit 1; }
RP2="$(curl -fsS -X POST "$BASE/v1/query" -d "$BQUERY")"
echo "$RP2" | grep -q '"cached":false' || { echo "partial result was cached: $RP2" >&2; exit 1; }

echo "== killed stream client cancels the scan (canceled counter, IOStats frozen)"
KQUERY='{"table":"flightsslow","query":{"z":"Origin","x":["DepartureHour"]},"target":{"uniform":true},"options":{"k":3,"executor":"scan","seed":9}}'
curl -sN --max-time 0.4 -X POST "$BASE/v1/query/stream" -d "$KQUERY" >/dev/null 2>&1 || true
CANCELED=""
for i in $(seq 1 50); do
  SLOWSTATS="$(curl -fsS "$BASE/v1/stats" | sed 's/.*"flightsslow"://')"
  if printf '%s' "$SLOWSTATS" | grep -o '"canceled":[0-9]*' | head -1 | grep -qv '"canceled":0'; then CANCELED=yes; break; fi
  sleep 0.1
done
[ -n "$CANCELED" ] || { echo "canceled counter never ticked: $SLOWSTATS" >&2; exit 1; }
IO1="$(curl -fsS "$BASE/v1/stats" | sed 's/.*"flightsslow"://' | grep -o '"tuples_read":[0-9]*' | head -1)"
sleep 0.6
IO2="$(curl -fsS "$BASE/v1/stats" | sed 's/.*"flightsslow"://' | grep -o '"tuples_read":[0-9]*' | head -1)"
[ "$IO1" = "$IO2" ] || { echo "IOStats still growing after client kill: $IO1 -> $IO2" >&2; exit 1; }

echo "== malformed requests are rejected cleanly"
CODE="$(curl -s -o /dev/null -w '%{http_code}' -X POST "$BASE/v1/query" -d '{"table":"flights","query":{"z":"Origin","x":["DepartureHour"]},"target":{"uniform":true},"options":{"epsilon":-1}}')"
[ "$CODE" = "422" ] || { echo "invalid epsilon returned $CODE, want 422" >&2; exit 1; }
curl -fsS "$BASE/v1/healthz" >/dev/null || { echo "server unhealthy after bad request" >&2; exit 1; }

echo "== restarting with a live ingest-backed table"
kill "$PID" && wait "$PID" 2>/dev/null || true
LIVEDIR="$TMP/livedir"
start_live() {
  "$TMP/fastmatchd" -listen "127.0.0.1:${PORT}" -admin \
    -table "live=$LIVEDIR?backend=ingest&columns=Origin,Dest,DepartureHour,DayOfWeek,DayOfMonth,DepDelayBin,ArrDelayBin&seal=4096" &
  PID=$!
  wait_healthy
}
start_live

echo "== streaming generated rows into the live table"
"$TMP/datagen" -dataset flights -rows 20000 -out "" \
  -stream "$BASE/v1/tables/live/rows" -stream-batch 2000 2>/dev/null
TABLES="$(curl -fsS "$BASE/v1/tables")"
echo "$TABLES" | grep -q '"rows":20000'        || { echo "ingest row count wrong: $TABLES" >&2; exit 1; }
echo "$TABLES" | grep -q '"backend":"ingest"'  || { echo "ingest backend not reported: $TABLES" >&2; exit 1; }
echo "$TABLES" | grep -q '"appended_rows":20000' || { echo "ingest stats missing: $TABLES" >&2; exit 1; }

echo "== querying mid-ingest (append more while a query round-trips)"
LIVEQ='{"table":"live","query":{"z":"Origin","x":["DepartureHour"]},"target":{"uniform":true},"options":{"k":3,"executor":"scan","seed":7}}'
curl -fsS -X POST "$BASE/v1/tables/live/rows" -H 'Content-Type: text/csv' \
  --data-binary $'Origin,Dest,DepartureHour,DayOfWeek,DayOfMonth,DepDelayBin,ArrDelayBin\nOrigin_1,Dest_2,DepartureHour_3,DayOfWeek_4,DayOfMonth_5,DepDelayBin_6,ArrDelayBin_7\n' >/dev/null
R5="$(curl -fsS -X POST "$BASE/v1/query" -d "$LIVEQ")"
echo "$R5" | grep -q '"tuples_read":20001' || { echo "live scan did not see appended row: $R5" >&2; exit 1; }
R6="$(curl -fsS -X POST "$BASE/v1/query" -d "$LIVEQ")"
echo "$R6" | grep -q '"cached":true' || { echo "same-generation repeat not cached: $R6" >&2; exit 1; }

echo "== kill -9 and restart: WAL replay must recover every acked row"
kill -9 "$PID"; wait "$PID" 2>/dev/null || true
sleep 0.3
start_live
TABLES="$(curl -fsS "$BASE/v1/tables")"
echo "$TABLES" | grep -q '"rows":20001' || { echo "post-replay row count wrong: $TABLES" >&2; exit 1; }
R7="$(curl -fsS -X POST "$BASE/v1/query" -d "$LIVEQ")"
echo "$R7" | grep -q '"tuples_read":20001' || { echo "post-replay scan wrong: $R7" >&2; exit 1; }

echo "== admin unload drops the table; unknown unload is 404"
CODE="$(curl -s -o /dev/null -w '%{http_code}' -X POST "$BASE/v1/admin/unload" -d '{"name":"nosuch"}')"
[ "$CODE" = "404" ] || { echo "unload unknown returned $CODE, want 404" >&2; exit 1; }
CODE="$(curl -s -o /dev/null -w '%{http_code}' -X POST "$BASE/v1/admin/unload" -d '{"name":"live"}')"
[ "$CODE" = "200" ] || { echo "unload live returned $CODE, want 200" >&2; exit 1; }
CODE="$(curl -s -o /dev/null -w '%{http_code}' -X POST "$BASE/v1/query" -d "$LIVEQ")"
[ "$CODE" = "404" ] || { echo "query after unload returned $CODE, want 404" >&2; exit 1; }

echo "== cluster: sharding the flights snapshot and starting a 3-shard scatter-gather topology"
kill "$PID" 2>/dev/null && wait "$PID" 2>/dev/null || true
"$TMP/datagen" -dataset flights -rows 100000 -out "" -snapshot "$TMP/flights.fms" -shards 3
SP1=$((PORT+1)); SP2=$((PORT+2)); SP3=$((PORT+3)); SNP=$((PORT+4))
"$TMP/fastmatchd" -listen "127.0.0.1:${SP1}" -table "flights=$TMP/flights-shard0.fms" & S1=$!
"$TMP/fastmatchd" -listen "127.0.0.1:${SP2}" -table "flights=$TMP/flights-shard1.fms" & S2=$!
"$TMP/fastmatchd" -listen "127.0.0.1:${SP3}" -table "flights=$TMP/flights-shard2.fms" & S3=$!
"$TMP/fastmatchd" -listen "127.0.0.1:${SNP}" -table "flights=$TMP/flights.fms"        & SN=$!
SPIDS="$S1 $S2 $S3 $SN"
"$TMP/fastmatchd" -listen "127.0.0.1:${PORT}" -coordinator flights \
  -shard "a=http://127.0.0.1:${SP1}" \
  -shard "b=http://127.0.0.1:${SP2}" \
  -shard "c=http://127.0.0.1:${SP3}" &
PID=$!
for p in "$S1:$SP1" "$S2:$SP2" "$S3:$SP3" "$SN:$SNP" "$PID:$PORT"; do
  wait_url "http://127.0.0.1:${p#*:}" "${p%%:*}"
done

echo "== coordinated answer is byte-identical to a single node over the unsplit snapshot"
CQUERY='{"table":"flights","query":{"z":"Origin","x":["DepartureHour"]},"target":{"uniform":true},"options":{"k":3,"executor":"scanmatch","epsilon":0.1,"seed":31}}'
RC="$(curl -fsS -X POST "$BASE/v1/query" -d "$CQUERY")"
RSN="$(curl -fsS -X POST "http://127.0.0.1:${SNP}/v1/query" -d "$CQUERY")"
echo "$RC" | grep -q '"shards":\[' || { echo "coordinated reply carries no shard statuses: $RC" >&2; exit 1; }
PC="$(printf '%s' "$RC" | sed 's/.*"result"://')"
PSN="$(printf '%s' "$RSN" | sed 's/.*"result"://')"
[ "$PC" = "$PSN" ] || { echo "coordinated result differs from single node" >&2; echo "coord:  $PC" >&2; echo "single: $PSN" >&2; exit 1; }

echo "== exact scan agrees too, and the per-shard client counters tick"
CSCAN="$(printf '%s' "$CQUERY" | sed 's/"executor":"scanmatch"/"executor":"scan"/')"
RC2="$(curl -fsS -X POST "$BASE/v1/query" -d "$CSCAN")"
RSN2="$(curl -fsS -X POST "http://127.0.0.1:${SNP}/v1/query" -d "$CSCAN")"
PC2="$(printf '%s' "$RC2" | sed 's/.*"result"://')"
PSN2="$(printf '%s' "$RSN2" | sed 's/.*"result"://')"
[ "$PC2" = "$PSN2" ] || { echo "coordinated scan differs from single node" >&2; exit 1; }
CSTATS="$(curl -fsS "$BASE/v1/stats")"
echo "$CSTATS" | grep -q '"name":"b"' || { echo "coordinator stats missing shard b: $CSTATS" >&2; exit 1; }
CMETRICS="$(curl -fsS "$BASE/metrics")"
printf '%s\n' "$CMETRICS" | grep -Eq '^fastmatch_shard_requests_total\{table="flights",shard="a"\} [1-9]' || { echo "/metrics missing shard request counter" >&2; exit 1; }
printf '%s\n' "$CMETRICS" | grep -Eq '^fastmatch_shard_healthy\{table="flights",shard="c"\} 1' || { echo "/metrics missing healthy shard gauge" >&2; exit 1; }

echo "== kill -9 one shard: the coordinator degrades honestly instead of failing"
kill -9 "$S2"; wait "$S2" 2>/dev/null || true
DQUERY="$(printf '%s' "$CQUERY" | sed 's/"seed":31/"seed":37/')"
RD="$(curl -fsS -X POST "$BASE/v1/query" -d "$DQUERY")"
echo "$RD" | grep -q '"degraded":true'         || { echo "dead shard did not flag degraded: $RD" >&2; exit 1; }
echo "$RD" | grep -q '"missing_shards":\["b"\]' || { echo "missing shard not named: $RD" >&2; exit 1; }
echo "$RD" | grep -q '"partial":true'          || { echo "degraded answer not flagged partial: $RD" >&2; exit 1; }
CSTATS="$(curl -fsS "$BASE/v1/stats")"
echo "$CSTATS" | grep -Eq '"name":"b","url":[^}]*"errors":[1-9]' || { echo "stats missing shard-b failures: $CSTATS" >&2; exit 1; }
CMETRICS="$(curl -fsS "$BASE/metrics")"
printf '%s\n' "$CMETRICS" | grep -Eq '^fastmatch_shard_errors_total\{table="flights",shard="b"\} [1-9]' || { echo "/metrics missing shard error counter" >&2; exit 1; }
printf '%s\n' "$CMETRICS" | grep -Eq '^fastmatch_shard_healthy\{table="flights",shard="b"\} 0' || { echo "/metrics still reports dead shard healthy" >&2; exit 1; }

echo "server smoke OK"
