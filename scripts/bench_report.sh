#!/usr/bin/env bash
# Aggregate the BENCH_*.json records at the repo root into BENCHLOG.md —
# one table per recorded benchmark, so perf history reads in one place
# instead of nine JSON files. The JSON records stay the source of truth;
# this report is derived. CI regenerates it on every run and uploads it
# as an artifact; run locally after updating a record:
#   ./scripts/bench_report.sh
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${1:-BENCHLOG.md}"

command -v jq >/dev/null || { echo "bench_report.sh requires jq" >&2; exit 1; }

shopt -s nullglob
FILES=(BENCH_*.json)
[ "${#FILES[@]}" -gt 0 ] || { echo "no BENCH_*.json records found" >&2; exit 1; }

{
  echo "# Benchmark log"
  echo
  echo "Derived from the \`BENCH_*.json\` records at the repo root by"
  echo "\`scripts/bench_report.sh\`; do not edit by hand. All recordings are"
  echo "sanity baselines from the dev container (often single-CPU — see each"
  echo "record's environment note); re-measure on target hardware before"
  echo "drawing tuning conclusions."
  for f in "${FILES[@]}"; do
    echo
    jq -r --arg file "$f" '
      def fmt_ns:
        if . >= 1e9 then "\(. / 1e9 * 100 | round / 100) s"
        elif . >= 1e6 then "\(. / 1e6 * 100 | round / 100) ms"
        elif . >= 1e3 then "\(. / 1e3 * 100 | round / 100) µs"
        else "\(.) ns" end;
      def rows:
        [ (.results_ns_per_op // {}) | to_entries[]
          | if (.value | type) == "number" then {v: .key, ns: .value}
            elif (.value | type) == "object" then
              .key as $g | (.value | to_entries[] | {v: "\($g) · \(.key)", ns: .value})
            else empty end ]
        + [ (.results // {}) | to_entries[] | select((.value | type) == "object")
            | if .value.ns_per_op != null then {v: .key, ns: .value.ns_per_op}
              else .key as $g
                | (.value | to_entries[] | select((.value | type) == "number")
                   | {v: "\($g) · \(.key)", ns: .value, raw: (.key | test("ns") | not)})
              end ];
      def freeform: if type == "string" then .
        elif type == "array" then .[] | tostring
        else to_entries[] | "**\(.key)**: \(.value | tostring)" end;
      def notes:
        [ (.results // {}) | to_entries[] | select((.value | type) == "string")
          | "**\(.key)**: \(.value)" ]
        + [ .notes // empty | freeform ]
        + [ .derived // empty | freeform ];
      "## \(.benchmark)",
      "",
      "`\($file)`" + (if .recorded then " — recorded \(.recorded)" else "" end),
      "",
      (if .command then "```\n\(.command)\n```", "" else empty end),
      (if (rows | length) > 0 then
        "| variant | value | |",
        "|---|---:|---|",
        (rows[] | "| \(.v) | \(.ns) | \(if .raw then "" else (.ns | fmt_ns) end) |"),
        ""
      else empty end),
      (notes[] | "- \(.)")
    ' "$f"
  done
} > "$OUT"

echo "wrote $OUT (${#FILES[@]} records)"
