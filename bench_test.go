// Benchmarks regenerating every table and figure of the paper's
// evaluation, plus ablations of the design choices called out in
// DESIGN.md. Each benchmark measures end-to-end query latency under the
// same configuration the cmd/experiments harness uses, at a reduced
// default dataset size so `go test -bench=.` stays tractable; set
// FASTMATCH_BENCH_ROWS to scale up (cmd/experiments defaults to 4M).
package fastmatch_test

import (
	"os"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"

	"fastmatch/internal/bitmap"
	"fastmatch/internal/colstore"
	"fastmatch/internal/core"
	"fastmatch/internal/datagen"
	"fastmatch/internal/engine"
	"fastmatch/internal/expt"
	"fastmatch/internal/histogram"
	"fastmatch/internal/ingest"
	"fastmatch/internal/stats"
)

var (
	benchOnce sync.Once
	benchWS   *expt.Workspace
	benchErr  error
)

func benchRows() int {
	if s := os.Getenv("FASTMATCH_BENCH_ROWS"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			return n
		}
	}
	return 400_000
}

func workspace(b *testing.B) *expt.Workspace {
	b.Helper()
	benchOnce.Do(func() {
		benchWS, benchErr = expt.NewWorkspace(expt.Config{
			Rows: benchRows(), Seed: 1, Reps: 1,
		})
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchWS
}

func runQuery(b *testing.B, qid string, exec engine.Executor, ov expt.RunOverrides) {
	b.Helper()
	w := workspace(b)
	b.ResetTimer()
	var tuples int64
	for i := 0; i < b.N; i++ {
		ov.Seed = int64(i + 1)
		res, err := w.Run(qid, exec, ov)
		if err != nil {
			b.Fatal(err)
		}
		tuples += res.IO.TuplesRead
	}
	b.ReportMetric(float64(tuples)/float64(b.N), "tuples/op")
}

// BenchmarkTable4 regenerates Table 4: per-query latency of each executor.
// Speedups are the Scan row's time divided by each approximate row's time.
func BenchmarkTable4(b *testing.B) {
	for _, q := range expt.Queries {
		for _, exec := range []engine.Executor{engine.Scan, engine.ScanMatch, engine.SyncMatch, engine.FastMatch} {
			b.Run(q.ID+"/"+exec.String(), func(b *testing.B) {
				runQuery(b, q.ID, exec, expt.RunOverrides{})
			})
		}
	}
}

// BenchmarkFigure8 regenerates Figure 8: latency vs ε (FastMatch and
// ScanMatch series on a representative query per dataset).
func BenchmarkFigure8(b *testing.B) {
	for _, qid := range []string{"flights-q1", "taxi-q1", "police-q2"} {
		for _, eps := range []float64{0.10, 0.20, 0.30, 0.50} {
			for _, exec := range []engine.Executor{engine.ScanMatch, engine.FastMatch} {
				b.Run(qid+"/eps="+strconv.FormatFloat(eps, 'g', -1, 64)+"/"+exec.String(), func(b *testing.B) {
					runQuery(b, qid, exec, expt.RunOverrides{Epsilon: eps})
				})
			}
		}
	}
}

// BenchmarkFigure9 regenerates Figure 9: Δd vs ε. Time is incidental; the
// reported "deltaD" metric is the figure's y-axis.
func BenchmarkFigure9(b *testing.B) {
	for _, qid := range []string{"flights-q1", "police-q2"} {
		for _, eps := range []float64{0.10, 0.20, 0.30, 0.50} {
			b.Run(qid+"/eps="+strconv.FormatFloat(eps, 'g', -1, 64), func(b *testing.B) {
				w := workspace(b)
				var sum float64
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					res, err := w.Run(qid, engine.FastMatch,
						expt.RunOverrides{Epsilon: eps, Seed: int64(i + 1)})
					if err != nil {
						b.Fatal(err)
					}
					dd, err := expt.DeltaD(w, qid, res)
					if err != nil {
						b.Fatal(err)
					}
					sum += dd
				}
				b.ReportMetric(sum/float64(b.N), "deltaD")
			})
		}
	}
}

// BenchmarkFigure10 regenerates Figure 10: FastMatch latency vs lookahead.
func BenchmarkFigure10(b *testing.B) {
	for _, qid := range []string{"flights-q1", "taxi-q1", "police-q3"} {
		for _, la := range []int{8, 64, 512, 2048} {
			b.Run(qid+"/lookahead="+strconv.Itoa(la), func(b *testing.B) {
				runQuery(b, qid, engine.FastMatch, expt.RunOverrides{Lookahead: la})
			})
		}
	}
}

// BenchmarkFigure11 regenerates Figure 11: latency vs δ.
func BenchmarkFigure11(b *testing.B) {
	for _, qid := range []string{"flights-q1", "police-q2"} {
		for _, delta := range []float64{0.005, 0.01, 0.02} {
			b.Run(qid+"/delta="+strconv.FormatFloat(delta, 'g', -1, 64), func(b *testing.B) {
				runQuery(b, qid, engine.FastMatch, expt.RunOverrides{Delta: delta})
			})
		}
	}
}

// BenchmarkTable5 regenerates Table 5: exact top-k computation under L1 vs
// L2 on the FLIGHTS queries, reporting the overlap fraction.
func BenchmarkTable5(b *testing.B) {
	w := workspace(b)
	b.ResetTimer()
	var overlap float64
	for i := 0; i < b.N; i++ {
		rows, err := expt.Table5(w)
		if err != nil {
			b.Fatal(err)
		}
		var sum float64
		for _, r := range rows {
			sum += r.Overlap
		}
		overlap = sum / float64(len(rows))
	}
	b.ReportMetric(overlap, "avg-overlap")
}

// BenchmarkSigmaZero regenerates the §5.4 σ=0 pathology measurement.
func BenchmarkSigmaZero(b *testing.B) {
	for _, mode := range []struct {
		name string
		ov   expt.RunOverrides
	}{
		{"default-sigma", expt.RunOverrides{}},
		{"sigma=0", expt.RunOverrides{SigmaZero: true, MaxRounds: 16}},
	} {
		b.Run("taxi-q1/"+mode.name, func(b *testing.B) {
			runQuery(b, "taxi-q1", engine.FastMatch, mode.ov)
		})
	}
}

// --- Ablations (DESIGN.md §6) ---

// BenchmarkAblationRoundBudget compares the demand-shaping heuristic
// against the paper's raw Equation (1) (RoundBudget < 0 disables shaping).
func BenchmarkAblationRoundBudget(b *testing.B) {
	// The override struct has no RoundBudget knob (it is an internal
	// heuristic), so this ablation drives the engine directly.
	w := workspace(b)
	tbl, err := w.Table("flights")
	if err != nil {
		b.Fatal(err)
	}
	target, err := w.Target("flights-q1")
	if err != nil {
		b.Fatal(err)
	}
	for _, mode := range []struct {
		name   string
		budget int
	}{{"shaped", 0}, {"raw-equation-1", -1}} {
		b.Run(mode.name, func(b *testing.B) {
			e := engine.New(tbl)
			if _, err := e.Index("Origin"); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				opts := engine.Options{
					Params:   coreParamsForBench(tbl.NumRows(), mode.budget),
					Executor: engine.FastMatch, Lookahead: 1024,
					StartBlock: -1, Seed: int64(i + 1),
				}
				if _, err := e.RunWithTarget(engine.Query{Z: "Origin", X: []string{"DepartureHour"}}, target, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationBitmapProbe compares Algorithm 3's word-chunked
// AnyActive marking against Algorithm 2's per-block probing over a large
// candidate set — the cache-behaviour contrast of §4.2 Challenge 4.
func BenchmarkAblationBitmapProbe(b *testing.B) {
	ds, err := datagen.Taxi(200_000, 3, 32)
	if err != nil {
		b.Fatal(err)
	}
	idx, err := bitmap.Build(ds.Table, "Location")
	if err != nil {
		b.Fatal(err)
	}
	active := make([]uint32, 0, 500)
	for v := 0; v < 500; v++ {
		active = append(active, uint32(v*15))
	}
	nb := idx.NumBlocks()
	b.Run("chunked-lookahead", func(b *testing.B) {
		mark := make([]bool, 1024)
		for i := 0; i < b.N; i++ {
			for start := 0; start < nb; start += len(mark) {
				idx.MarkAnyActive(active, start, mark)
			}
		}
	})
	b.Run("per-block", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for blk := 0; blk < nb; blk++ {
				idx.BlockAnyActive(active, blk)
			}
		}
	})
}

// BenchmarkAblationMultipleTesting compares Holm-Bonferroni against the
// plain Bonferroni correction on stage-1-shaped P-value batches: both cost
// about the same, while HB rejects strictly more (the paper's power
// argument for preferring it).
func BenchmarkAblationMultipleTesting(b *testing.B) {
	pvals := make([]float64, 7641)
	for i := range pvals {
		pvals[i] = float64(i%1000) / 1000
	}
	b.Run("holm-bonferroni", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			stats.HolmBonferroni(pvals, 0.0033)
		}
	})
	b.Run("bonferroni", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			stats.Bonferroni(pvals, 0.0033)
		}
	})
}

// BenchmarkAblationBlockSize measures the block-granularity tradeoff:
// skippability (small blocks) vs per-block overhead (large blocks).
func BenchmarkAblationBlockSize(b *testing.B) {
	for _, bs := range []int{16, 64, 256} {
		b.Run("block="+strconv.Itoa(bs), func(b *testing.B) {
			ds, err := datagen.Flights(200_000, 5, bs)
			if err != nil {
				b.Fatal(err)
			}
			e := engine.New(ds.Table)
			if _, err := e.Index("Origin"); err != nil {
				b.Fatal(err)
			}
			target, err := e.ResolveTarget(engine.Query{Z: "Origin", X: []string{"DepartureHour"}}, engine.Target{Uniform: true})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				opts := engine.Options{
					Params:   coreParamsForBench(ds.Table.NumRows(), 0),
					Executor: engine.FastMatch, Lookahead: 1024,
					StartBlock: -1, Seed: int64(i + 1),
				}
				if _, err := e.RunWithTarget(engine.Query{Z: "Origin", X: []string{"DepartureHour"}}, target, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// coreParamsForBench builds the paper-default parameters used by the
// ablation benches.
func coreParamsForBench(rows, roundBudget int) (p core.Params) {
	p.K = 10
	p.Epsilon = 0.25
	p.Delta = 0.01
	p.Sigma = 0.0015
	p.Stage1Samples = rows / 40
	p.Metric = histogram.MetricL1
	p.RoundBudget = roundBudget
	return p
}

// --- Parallel execution benchmarks ---

var (
	pscanOnce sync.Once
	pscanPlan *engine.Plan
	pscanTgt  *histogram.Histogram
	pscanErr  error
)

// pscanSetup builds the 1M-row datagen table and plan shared by the
// parallel-scan benchmarks (generated once, outside the timed region).
func pscanSetup(b *testing.B) (*engine.Plan, *histogram.Histogram) {
	b.Helper()
	pscanOnce.Do(func() {
		ds, err := datagen.Flights(1_000_000, 5, 64)
		if err != nil {
			pscanErr = err
			return
		}
		e := engine.New(ds.Table)
		pscanPlan, pscanErr = e.Prepare(engine.Query{Z: "Origin", X: []string{"DepartureHour"}})
		if pscanErr != nil {
			return
		}
		pscanTgt, pscanErr = pscanPlan.ResolveTarget(engine.Target{Uniform: true}, 0)
	})
	if pscanErr != nil {
		b.Fatal(pscanErr)
	}
	return pscanPlan, pscanTgt
}

// BenchmarkParallelScan measures the partitioned exact pass at 1/2/4/8
// workers against the sequential Scan baseline on a 1M-row datagen table.
// Results are byte-identical across rows (see TestParallelScanMatchesScan);
// only the wall clock changes.
func BenchmarkParallelScan(b *testing.B) {
	p, target := pscanSetup(b)
	params := coreParamsForBench(1_000_000, 0)
	run := func(b *testing.B, exec engine.Executor, workers int) {
		b.Helper()
		for i := 0; i < b.N; i++ {
			res, err := p.RunWithTarget(target, engine.Options{
				Params: params, Executor: exec, Workers: workers,
			})
			if err != nil {
				b.Fatal(err)
			}
			if !res.Exact {
				b.Fatal("scan result not exact")
			}
		}
	}
	b.Run("Scan", func(b *testing.B) { run(b, engine.Scan, 0) })
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run("workers="+strconv.Itoa(workers), func(b *testing.B) {
			run(b, engine.ParallelScan, workers)
		})
	}
}

// BenchmarkConcurrentQueries measures throughput of one shared Engine
// serving FastMatch queries from GOMAXPROCS goroutines — the serving
// scenario the concurrent-safe Engine exists for.
func BenchmarkConcurrentQueries(b *testing.B) {
	p, target := pscanSetup(b)
	params := coreParamsForBench(1_000_000, 0)
	var seq atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		// b.Fatal must not run on RunParallel worker goroutines; b.Error
		// + return is the supported failure path here.
		for pb.Next() {
			res, err := p.RunWithTarget(target, engine.Options{
				Params: params, Executor: engine.FastMatch,
				Lookahead: 1024, StartBlock: -1, Seed: seq.Add(1),
			})
			if err != nil {
				b.Error(err)
				return
			}
			if len(res.TopK) == 0 {
				b.Error("empty topk")
				return
			}
		}
	})
}

// --- Scan-kernel and block-skipping benchmarks ---

var (
	kernOnce sync.Once
	kernSrcs map[string]colstore.Reader
	kernPred []bitmap.Predicate
	kernErr  error
)

// kernelBenchSetup builds the 1M-row table behind every storage backend
// (generated once, outside the timed region) and picks the three rarest
// Origin values as a selective predicate set — rare values appear in few
// blocks, so the candidate-union complement prunes most of the table.
func kernelBenchSetup(b *testing.B) (map[string]colstore.Reader, []bitmap.Predicate) {
	b.Helper()
	kernOnce.Do(func() {
		ds, err := datagen.Flights(1_000_000, 5, 64)
		if err != nil {
			kernErr = err
			return
		}
		tbl := ds.Table
		kernSrcs = map[string]colstore.Reader{"inmem": tbl}

		dir, err := os.MkdirTemp("", "fastmatch-kern-bench")
		if err != nil {
			kernErr = err
			return
		}
		// The temp dir outlives the benchmark process by design: b.Cleanup
		// inside sync.Once would tear the shared backends down after the
		// first sub-benchmark.
		path := dir + "/kern.fms"
		if kernErr = colstore.WriteSnapshotFile(tbl, path); kernErr != nil {
			return
		}
		mt, err := colstore.OpenMmapFile(path)
		if err != nil {
			kernErr = err
			return
		}
		kernSrcs["mmap"] = mt

		wt, err := ingest.Open(dir+"/ingest", ingest.Schema{
			Columns:   tbl.Columns(),
			Measures:  tbl.MeasureNames(),
			BlockSize: tbl.BlockSize(),
		}, ingest.Options{SealRows: 1 << 16, NoSync: true, CompactInterval: -1})
		if err != nil {
			kernErr = err
			return
		}
		cols := make([]colstore.ColumnReader, 0, len(tbl.Columns()))
		for _, name := range tbl.Columns() {
			c, err := tbl.ColumnByName(name)
			if err != nil {
				kernErr = err
				return
			}
			cols = append(cols, c)
		}
		batch := make([]ingest.Row, 0, 4096)
		for row := 0; row < tbl.NumRows(); row++ {
			r := ingest.Row{Values: make(map[string]string, len(cols))}
			for _, c := range cols {
				r.Values[c.ColumnName()] = c.Dictionary().Value(c.Code(row))
			}
			if batch = append(batch, r); len(batch) == cap(batch) {
				if _, kernErr = wt.Append(batch); kernErr != nil {
					return
				}
				batch = batch[:0]
			}
		}
		if len(batch) > 0 {
			if _, kernErr = wt.Append(batch); kernErr != nil {
				return
			}
		}
		view, err := wt.View()
		if err != nil {
			kernErr = err
			return
		}
		kernSrcs["ingest"] = view

		// Rarest Origin values -> most selective predicates.
		col, err := tbl.ColumnByName("Origin")
		if err != nil {
			kernErr = err
			return
		}
		counts := make([]int, col.Cardinality())
		for _, code := range col.Codes(0, tbl.NumRows()) {
			counts[code]++
		}
		rare := make([]uint32, 3)
		for i := range rare {
			best := -1
			for v, n := range counts {
				if n > 0 && (best < 0 || n < counts[best]) {
					best = v
				}
			}
			rare[i] = uint32(best)
			counts[best] = 0
		}
		dm, err := bitmap.BuildDensity(tbl, "Origin")
		if err != nil {
			kernErr = err
			return
		}
		kernPred = make([]bitmap.Predicate, len(rare))
		for i, v := range rare {
			kernPred[i] = &bitmap.ValuePred{Column: "Origin", Code: v, DM: dm}
		}
	})
	if kernErr != nil {
		b.Fatal(kernErr)
	}
	return kernSrcs, kernPred
}

// BenchmarkScanKernels measures the exact-scan hot loop per storage
// backend: the scalar per-row path against the vectorized grouped-count
// kernels ("grouped-count", where no block is prunable so the kernel is
// the entire difference), and a selective predicate-candidate query with
// block skipping toggled ("predicate", where stats prune most blocks).
// Results are byte-identical across every variant — the equivalence
// suite proves it — so only wall clock and the reported I/O metrics
// move.
func BenchmarkScanKernels(b *testing.B) {
	srcs, preds := kernelBenchSetup(b)
	run := func(b *testing.B, eng *engine.Engine, q engine.Query, noSkip, noKern bool) {
		b.Helper()
		p, err := eng.Prepare(q)
		if err != nil {
			b.Fatal(err)
		}
		target, err := p.ResolveTarget(engine.Target{Uniform: true}, 0)
		if err != nil {
			b.Fatal(err)
		}
		params := coreParamsForBench(1_000_000, 0)
		b.ResetTimer()
		var pruned, kernels int64
		for i := 0; i < b.N; i++ {
			res, err := p.RunWithTarget(target, engine.Options{
				Params: params, Executor: engine.Scan,
				DisableBlockSkip: noSkip, DisableScanKernels: noKern,
			})
			if err != nil {
				b.Fatal(err)
			}
			if !res.Exact {
				b.Fatal("scan result not exact")
			}
			pruned += res.IO.BlocksPruned
			kernels += res.IO.KernelBlocks
		}
		b.ReportMetric(float64(pruned)/float64(b.N), "blocks_pruned/op")
		b.ReportMetric(float64(kernels)/float64(b.N), "kernel_blocks/op")
	}
	variants := []struct {
		name           string
		noSkip, noKern bool
	}{
		{"scalar", true, true},
		{"kernel", true, false},
		{"kernel+skip", false, false},
	}
	for _, backend := range []string{"inmem", "mmap", "ingest"} {
		eng := engine.New(srcs[backend])
		grouped := engine.Query{Z: "Origin", X: []string{"DepartureHour"}}
		pred := engine.Query{CandidatePreds: preds, X: []string{"DepartureHour"}}
		for _, v := range variants {
			b.Run(backend+"/grouped-count/"+v.name, func(b *testing.B) {
				run(b, eng, grouped, v.noSkip, v.noKern)
			})
			b.Run(backend+"/predicate/"+v.name, func(b *testing.B) {
				run(b, eng, pred, v.noSkip, v.noKern)
			})
		}
	}
}

// --- Substrate micro-benchmarks ---

// BenchmarkL1Distance measures the inner-loop distance computation.
func BenchmarkL1Distance(b *testing.B) {
	a := histogram.New(24)
	c := histogram.New(24)
	for i := 0; i < 24; i++ {
		for j := 0; j <= i; j++ {
			a.Add(i)
			c.Add(23 - i)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		histogram.L1(a, c)
	}
}

// BenchmarkHypergeometricCDF measures the stage-1 P-value kernel.
func BenchmarkHypergeometricCDF(b *testing.B) {
	h, err := stats.NewHypergeometric(4_000_000, 6000, 100_000)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.CDF(100)
	}
}

// BenchmarkUnderRepBatch measures the shared-computation stage-1 test over
// a TAXI-sized candidate set.
func BenchmarkUnderRepBatch(b *testing.B) {
	counts := make([]int64, 7641)
	for i := range counts {
		counts[i] = int64(i % 300)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := stats.UnderRepPValues(counts, 4_000_000, 0.0015, 100_000); err != nil {
			b.Fatal(err)
		}
	}
}
