// Package fastmatch is an end-to-end system for interactively retrieving
// the top-k histogram visualizations most similar to a target, from a
// large collection of candidate histograms, with probabilistic separation
// and reconstruction guarantees.
//
// It reproduces "Adaptive Sampling for Rapidly Matching Histograms"
// (Macke, Zhang, Huang, Parameswaran; VLDB 2018): the HistSim algorithm
// (three-stage adaptive sampling with Holm–Bonferroni rarity pruning and
// union-intersection termination testing) running inside the FastMatch
// architecture (block-granular I/O over a shuffled column store, bitmap
// indexes, AnyActive block selection, and asynchronous lookahead marking).
//
// # Quick start
//
//	tbl := ...                    // build a *fastmatch.Table (see Builder)
//	eng := fastmatch.NewEngine(tbl)
//	res, err := eng.Run(
//	    fastmatch.Query{Z: "country", X: []string{"income_bracket"}},
//	    fastmatch.Target{Candidate: "Greece"},
//	    fastmatch.DefaultOptions(tbl.NumRows()),
//	)
//
// The result's TopK lists the k closest candidates with reconstructed
// histograms satisfying, with probability > 1−δ: every returned histogram
// is within ε (normalized L1) of its true histogram, and no omitted
// candidate with selectivity ≥ σ is more than ε closer to the target than
// the furthest returned one.
//
// # Progressive, cancellable queries
//
// HistSim refines its answer in rounds, so useful interim answers exist
// long before termination. The context-aware entry points expose that:
//
//	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
//	defer cancel()
//	opts := fastmatch.DefaultOptions(tbl.NumRows())
//	opts.OnProgress = func(p fastmatch.Progress) {
//	    fmt.Printf("%s round %d: best=%v\n", p.Phase, p.Round, p.TopK)
//	}
//	res, err := eng.RunContext(ctx, q, target, opts)
//
// Every executor checks the context at block granularity and unwinds
// cleanly. A run cut short — context canceled, deadline passed,
// Options.Deadline reached, or Options.RowBudget exhausted — returns a
// best-effort partial Result (Result.Partial set, candidates ranked by
// the estimates at the stop point, no guarantees attached) together with
// a typed error: ErrCanceled or ErrBudgetExhausted. OnProgress receives
// interim state after every HistSim round: the current top-k with
// distance estimates, rows and blocks read, and I/O counters.
//
// The server exposes the same contract over HTTP: POST /v1/query/stream
// answers with NDJSON progress frames followed by a terminal result
// frame, per-table query timeouts answer 200 with the partial result,
// and a disconnected client cancels its scan (counted in /v1/stats).
package fastmatch

import (
	"context"
	"time"

	"fastmatch/internal/colstore"
	"fastmatch/internal/core"
	"fastmatch/internal/engine"
	"fastmatch/internal/histogram"
	"fastmatch/internal/ingest"
	"fastmatch/internal/obs/trace"
	"fastmatch/internal/server"
)

// Re-exported storage types: build tables with Builder, group continuous
// attributes with Binner. Reader is the pluggable-backend seam: every
// engine layer consumes it, so a query runs identically over the
// heap-resident Table, the zero-copy MmapTable, or any future backend.
type (
	// Reader is the backend-neutral block-granular storage interface the
	// engine runs on. Slices returned through it alias backend storage
	// and must be treated as read-only.
	Reader = colstore.Reader
	// ColumnReader is read access to one categorical column.
	ColumnReader = colstore.ColumnReader
	// MeasureReader is read access to one numeric measure column.
	MeasureReader = colstore.MeasureReader
	// Table is an immutable block-structured column store relation — the
	// in-memory Reader backend.
	Table = colstore.Table
	// MmapTable is the zero-copy mmap snapshot backend (linux/darwin;
	// heap fallback elsewhere and for v1 snapshots). Close it only after
	// the last query over it has finished.
	MmapTable = colstore.MmapTable
	// StorageStats describes a Reader's backend and residency.
	StorageStats = colstore.StorageStats
	// Builder accumulates rows into a Table; call Shuffle before Build so
	// sequential scans are uniform samples.
	Builder = colstore.Builder
	// Column is a dictionary-encoded categorical column.
	Column = colstore.Column
	// Binner maps continuous values to histogram bins.
	Binner = colstore.Binner
)

// Re-exported query/engine types.
type (
	// Engine answers matching queries over one Table. One shared Engine is
	// safe for concurrent use: its index and density caches are guarded by
	// singleflight locking, and per-run scan state lives in the run.
	Engine = engine.Engine
	// Plan is a prepared query — candidate and group mappers resolved
	// once, reusable (and safe to share) across runs; see Engine.Prepare.
	Plan = engine.Plan
	// Query is a histogram-generating query template: candidate attribute
	// Z, grouping attribute(s) X, plus optional extensions.
	Query = engine.Query
	// Target specifies the visual target (explicit counts, a candidate's
	// own histogram, or uniform).
	Target = engine.Target
	// Options bundles HistSim parameters with the executor choice.
	Options = engine.Options
	// Result is a complete query answer (or, when Result.Partial is set,
	// a best-effort answer from a run cut short).
	Result = engine.Result
	// Match is one returned candidate.
	Match = engine.Match
	// Progress is the interim state of a run in flight, delivered
	// through Options.OnProgress.
	Progress = engine.Progress
	// ProgressMatch is one candidate in a Progress ranking.
	ProgressMatch = engine.ProgressMatch
	// Executor selects the execution strategy.
	Executor = engine.Executor
	// Params are the HistSim knobs (k, ε, δ, σ, m, metric).
	Params = core.Params
	// Histogram is a vector of per-group counts.
	Histogram = histogram.Histogram
	// Metric is the distance function over normalized histograms.
	Metric = histogram.Metric
	// ExplainInfo is a Plan's static execution profile (resolved shapes,
	// zone-map prunable block counts, fast-path eligibility) — see
	// Plan.Explain.
	ExplainInfo = engine.ExplainInfo
	// Trace collects a per-query span tree when set on Options.Trace;
	// create with NewTrace and render with Trace.Snapshot.
	Trace = trace.Trace
	// TraceSnapshot is a trace's JSON-friendly rendering.
	TraceSnapshot = trace.Snapshot
	// TraceSpan is one span in a TraceSnapshot.
	TraceSpan = trace.SpanSnapshot
	// QualityReport is a completed sampling run's answer-quality
	// self-assessment — rounds, final margin, per-match confidence
	// intervals, termination cause — collected when Options.Quality is
	// set; see Result.Quality.
	QualityReport = engine.QualityReport
	// MatchQuality is one returned match's estimate quality (estimated
	// distance plus CI half-width) inside a QualityReport.
	MatchQuality = engine.MatchQuality
	// ProgressQuality is the per-round convergence telemetry carried on
	// Progress when Options.Quality is set.
	ProgressQuality = engine.ProgressQuality
	// Audit is AuditRun's ground-truth verdict: precision@k, rank
	// displacement, and per-candidate distance error for a completed
	// approximate answer.
	Audit = engine.Audit
	// AuditCandidate is one candidate's approximate-vs-exact comparison
	// inside an Audit.
	AuditCandidate = engine.AuditCandidate
)

// Executor variants, in increasing sophistication (§5.2 of the paper).
const (
	// Scan is the exact full-pass baseline.
	Scan = engine.Scan
	// ScanMatch samples sequentially without block skipping.
	ScanMatch = engine.ScanMatch
	// SyncMatch adds per-block AnyActive selection, synchronously.
	SyncMatch = engine.SyncMatch
	// FastMatch adds asynchronous lookahead marking — the full system.
	FastMatch = engine.FastMatch
	// ParallelScan is the exact baseline partitioned over Options.Workers
	// goroutines (default GOMAXPROCS); results are identical to Scan.
	ParallelScan = engine.ParallelScan
)

// Distance metrics.
const (
	// MetricL1 is normalized L1 distance, the paper's default.
	MetricL1 = histogram.MetricL1
	// MetricL2 is normalized L2 distance (Appendix A.2.2).
	MetricL2 = histogram.MetricL2
)

// Typed termination errors for runs cut short (test with errors.Is).
// Both accompany a best-effort partial Result — see the package doc's
// progressive-queries section.
var (
	// ErrCanceled marks a run stopped by its context or
	// Options.Deadline; the chain also wraps the context error
	// (context.Canceled vs context.DeadlineExceeded).
	ErrCanceled = engine.ErrCanceled
	// ErrBudgetExhausted marks a run stopped by Options.RowBudget.
	ErrBudgetExhausted = engine.ErrBudgetExhausted
)

// Re-exported serving types: run queries behind a long-lived HTTP daemon
// (cmd/fastmatchd) or embed a Server in your own process.
type (
	// Server is the query-serving subsystem: a multi-table registry with
	// one shared Engine per dataset, a JSON-over-HTTP API, LRU plan and
	// result caches, admission control, and per-table metrics.
	Server = server.Server
	// ServerConfig parameterizes a Server; the zero value is usable.
	ServerConfig = server.Config
	// TableSpec describes a dataset to load (CSV, binary snapshot, or a
	// live ingest directory).
	TableSpec = server.TableSpec
	// StreamFrame is one NDJSON line of a POST /v1/query/stream
	// response: progress frames, then one terminal result/error frame.
	StreamFrame = server.StreamFrame
)

// AuditRun grades a completed approximate answer against ground truth:
// it re-executes the prepared plan with the exact Scan executor over
// every candidate and reports strict precision@k, per-candidate rank
// displacement and distance error, and how many returned matches
// violate the (ε, δ) guarantee the sampling run claimed. Partial
// answers are refused — they claimed no guarantee, so there is nothing
// to indict. This is the primitive behind the server's shadow-audit
// sampler (ServerConfig.AuditFraction).
func AuditRun(ctx context.Context, p *Plan, target *Histogram, approx *Result, opts Options) (*Audit, error) {
	return engine.AuditRun(ctx, p, target, approx, opts)
}

// NewThrottledReader wraps a storage backend so every block read costs
// at least perBlock of wall-clock time — a storage-latency simulator for
// demonstrating and testing progressive delivery, timeouts, and
// cancellation without multi-gigabyte fixtures.
func NewThrottledReader(src Reader, perBlock time.Duration) Reader {
	return colstore.NewThrottledReader(src, perBlock)
}

// Re-exported live-ingestion types (internal/ingest): a WritableTable
// accepts appends — WAL-logged for durability, folded into immutable
// column segments with zone maps, background-compacted into mmap-able
// snapshot files — while serving queries through snapshot-isolated
// Reader views, so every engine layer works unmodified over live data.
type (
	// WritableTable is the live-ingestion storage backend. Open one with
	// OpenIngestTable, append with Append, query through View.
	WritableTable = ingest.WritableTable
	// IngestTableView is an immutable, snapshot-isolated Reader over a
	// WritableTable at one data generation; Release it when done.
	IngestTableView = ingest.TableView
	// IngestSchema declares a writable table's columns and measures.
	IngestSchema = ingest.Schema
	// IngestOptions tunes durability (WAL fsync), segment sealing, and
	// compaction; the zero value is production-safe.
	IngestOptions = ingest.Options
	// IngestRow is one appended tuple.
	IngestRow = ingest.Row
	// IngestAppendResult acknowledges a durable append batch.
	IngestAppendResult = ingest.AppendResult
	// IngestStats snapshots a writable table's ingest counters.
	IngestStats = ingest.Stats
)

// OpenIngestTable creates or re-opens a live-ingestion table rooted at
// dir, replaying its write-ahead log so exactly the acked rows come
// back. See IngestSchema/IngestOptions; pass an empty schema to adopt an
// existing directory's.
func OpenIngestTable(dir string, schema IngestSchema, opts IngestOptions) (*WritableTable, error) {
	return ingest.Open(dir, schema, opts)
}

// NewServer creates a query server; register tables with
// Server.LoadTable or Server.RegisterTable and expose Server.Handler.
func NewServer(cfg ServerConfig) *Server { return server.New(cfg) }

// NewTrace creates an empty query trace identified by id; set it on
// Options.Trace to collect a span tree (plan, run phases, per-span I/O
// deltas) for the run, then render it with Trace.Snapshot. Tracing is
// purely observational: results are byte-identical with or without it.
func NewTrace(id string) *Trace { return trace.New(id) }

// WriteSnapshot serializes a table as a versioned binary snapshot that
// loads without CSV re-parsing and preserves the block layout exactly
// (see internal/colstore for the format). Snapshots are written in
// format v3: 8-byte-aligned sections that OpenMmap can serve in place,
// plus a per-block statistics section (categorical presence bitsets and
// measure min/max) that powers zone-map block skipping without paging
// in the data arrays.
func WriteSnapshot(tbl *Table, path string) error { return colstore.WriteSnapshotFile(tbl, path) }

// ReadSnapshot loads a table snapshot (any supported format version)
// into memory, verifying its CRC.
func ReadSnapshot(path string) (*Table, error) { return colstore.ReadSnapshotFile(path) }

// OpenMmap opens a snapshot with the zero-copy mmap backend: a v2
// snapshot's column sections are served straight from read-only mapped
// pages (~instant cold start, tables larger than RAM). V1 snapshots and
// unsupported platforms transparently materialize in memory instead.
func OpenMmap(path string) (*MmapTable, error) { return colstore.OpenMmapFile(path) }

// NewEngine creates an engine over any storage backend (*Table,
// *MmapTable, or a custom Reader).
func NewEngine(src Reader) *Engine { return engine.New(src) }

// NewBuilder creates a table builder with the given tuples-per-block
// granularity (≤ 0 selects the default of 256).
func NewBuilder(blockSize int) *Builder { return colstore.NewBuilder(blockSize) }

// NewUniformBinner builds n equal-width bins over [lo, hi] for grouping a
// continuous attribute.
func NewUniformBinner(lo, hi float64, n int) (*Binner, error) {
	return colstore.NewUniformBinner(lo, hi, n)
}

// NewHistogram builds a histogram from explicit counts (e.g. a
// user-sketched target).
func NewHistogram(counts []float64) *Histogram { return histogram.FromCounts(counts) }

// MeasureBiasedView materializes the derived table that turns SUM(measure)
// queries into COUNT queries (Appendix A.1.1). The source may be any
// storage backend; the view is an in-memory Table.
func MeasureBiasedView(src Reader, measure string, targetRows int, seed int64) (*Table, error) {
	return engine.MeasureBiasedView(src, measure, targetRows, seed)
}

// DefaultOptions returns the paper's default configuration scaled to a
// dataset of totalRows tuples: k=10, ε=0.04, δ=0.01, σ=0.0008,
// lookahead=1024 blocks, FastMatch executor, and a stage-1 sample of
// max(rows/20, 2000) capped at the paper's m = 5·10⁵.
//
// Seed is left at zero, which is a fixed seed, not a random one: with the
// default StartBlock of -1 every run derives the same pseudo-random start
// block. Set Options.Seed per run (e.g. from wall-clock time) to
// reproduce the paper's independent-runs behavior.
func DefaultOptions(totalRows int) Options { return engine.DefaultOptions(totalRows) }
