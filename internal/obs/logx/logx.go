// Package logx holds the small shared pieces of the structured-logging
// setup: a discard logger for components whose caller supplied none
// (keeps every log call site unconditional and nil-free), and the
// text/json handler selection behind fastmatchd's -log-format flag.
package logx

import (
	"fmt"
	"io"
	"log/slog"
)

// Discard returns a logger that drops everything. Used as the default
// wherever a Logger option is left nil, so components never need to
// nil-check before logging. (slog.DiscardHandler needs Go 1.23+; a
// text handler on io.Discard is the 1.22-compatible equivalent — the
// level guard below keeps it from even formatting records.)
func Discard() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, &slog.HandlerOptions{
		Level: slog.Level(127), // above every real level: Enabled is always false
	}))
}

// OrDiscard returns l, or the discard logger when l is nil.
func OrDiscard(l *slog.Logger) *slog.Logger {
	if l == nil {
		return Discard()
	}
	return l
}

// New builds a logger writing to w in the named format: "text"
// (slog.TextHandler, the human default) or "json" (slog.JSONHandler,
// one object per line for log shippers).
func New(w io.Writer, format string, level slog.Level) (*slog.Logger, error) {
	opts := &slog.HandlerOptions{Level: level}
	switch format {
	case "", "text":
		return slog.New(slog.NewTextHandler(w, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	}
	return nil, fmt.Errorf("unknown log format %q (want text or json)", format)
}
