// Package metrics provides the two halves of the server's Prometheus
// integration, hand-rolled over the standard library (the repo is
// dependency-free by policy):
//
//   - Histogram: a concurrency-safe fixed-bucket histogram accumulator
//     (cumulative bucket counts, sum, count — the Prometheus histogram
//     model) for request latencies and admission waits.
//   - Writer/Family: a text-format exposition builder emitting the
//     Prometheus exposition format version 0.0.4 (# HELP/# TYPE headers,
//     escaped label values, le-bucketed histogram series with _sum and
//     _count), consumed by GET /metrics.
//
// The exposition side takes plain float64 samples, so the serving layer
// renders /metrics from the exact same snapshots /v1/stats serves — the
// two endpoints can never disagree.
package metrics

import (
	"bytes"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// DefaultLatencyBuckets are the request-duration bucket bounds in
// seconds: sub-millisecond cache hits up through multi-second exact
// scans over large tables.
var DefaultLatencyBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
	0.25, 0.5, 1, 2.5, 5, 10,
}

// Histogram is a fixed-bucket histogram accumulator. The zero value is
// not usable; create with NewHistogram. All methods are safe for
// concurrent use.
type Histogram struct {
	mu     sync.Mutex
	bounds []float64 // ascending upper bounds, +Inf implicit
	counts []uint64  // len(bounds)+1; last is the +Inf overflow bucket
	sum    float64
	count  uint64
}

// NewHistogram creates a histogram over the given ascending upper
// bounds (the implicit +Inf bucket is added automatically). Bounds are
// copied and sorted defensively; duplicates are allowed but pointless.
func NewHistogram(bounds []float64) *Histogram {
	b := make([]float64, len(bounds))
	copy(b, bounds)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]uint64, len(b)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	// Find the first bound >= v; linear scan beats binary search at the
	// bucket counts in play (≤ ~16).
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.mu.Lock()
	h.counts[i]++
	h.count++
	h.sum += v
	h.mu.Unlock()
}

// HistSnapshot is a point-in-time copy of a histogram in Prometheus
// form: Cumulative[i] counts observations ≤ Bounds[i]; Count includes
// the +Inf overflow.
type HistSnapshot struct {
	Bounds     []float64
	Cumulative []uint64
	Sum        float64
	Count      uint64
}

// Snapshot returns a consistent copy with cumulative bucket counts.
func (h *Histogram) Snapshot() HistSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := HistSnapshot{
		Bounds:     h.bounds, // immutable after NewHistogram
		Cumulative: make([]uint64, len(h.bounds)),
		Sum:        h.sum,
		Count:      h.count,
	}
	var cum uint64
	for i := range h.bounds {
		cum += h.counts[i]
		out.Cumulative[i] = cum
	}
	return out
}

// Writer builds one exposition document. Families must be opened with
// Counter/Gauge/HistogramFamily before their samples are added; each
// family's samples must all be emitted before the next family opens
// (the Prometheus format requires contiguous families).
type Writer struct {
	buf bytes.Buffer
}

// NewWriter creates an empty exposition document.
func NewWriter() *Writer { return &Writer{} }

// Family is an open metric family accepting samples.
type Family struct {
	w    *Writer
	name string
	typ  string
}

func (w *Writer) family(name, typ, help string) *Family {
	fmt.Fprintf(&w.buf, "# HELP %s %s\n# TYPE %s %s\n", name, escapeHelp(help), name, typ)
	return &Family{w: w, name: name, typ: typ}
}

// Counter opens a counter family.
func (w *Writer) Counter(name, help string) *Family { return w.family(name, "counter", help) }

// Gauge opens a gauge family.
func (w *Writer) Gauge(name, help string) *Family { return w.family(name, "gauge", help) }

// HistogramFamily opens a histogram family; add series with
// Family.Histogram.
func (w *Writer) HistogramFamily(name, help string) *Family {
	return w.family(name, "histogram", help)
}

// Sample emits one sample line. Labels are alternating key, value pairs;
// values are escaped per the exposition format. Passing an odd number of
// label strings is a programming error and panics.
func (f *Family) Sample(value float64, labels ...string) {
	f.w.buf.WriteString(f.name)
	writeLabels(&f.w.buf, labels, "", 0)
	f.w.buf.WriteByte(' ')
	f.w.buf.WriteString(formatValue(value))
	f.w.buf.WriteByte('\n')
}

// Histogram emits one histogram series from a snapshot: the cumulative
// le buckets (including the mandatory le="+Inf"), then _sum and _count.
func (f *Family) Histogram(snap HistSnapshot, labels ...string) {
	for i, bound := range snap.Bounds {
		f.w.buf.WriteString(f.name)
		f.w.buf.WriteString("_bucket")
		writeLabels(&f.w.buf, labels, "le", bound)
		fmt.Fprintf(&f.w.buf, " %d\n", snap.Cumulative[i])
	}
	f.w.buf.WriteString(f.name)
	f.w.buf.WriteString("_bucket")
	writeLabels(&f.w.buf, labels, "le", math.Inf(1))
	fmt.Fprintf(&f.w.buf, " %d\n", snap.Count)
	f.w.buf.WriteString(f.name)
	f.w.buf.WriteString("_sum")
	writeLabels(&f.w.buf, labels, "", 0)
	f.w.buf.WriteByte(' ')
	f.w.buf.WriteString(formatValue(snap.Sum))
	f.w.buf.WriteByte('\n')
	f.w.buf.WriteString(f.name)
	f.w.buf.WriteString("_count")
	writeLabels(&f.w.buf, labels, "", 0)
	fmt.Fprintf(&f.w.buf, " %d\n", snap.Count)
}

// Bytes returns the document built so far.
func (w *Writer) Bytes() []byte { return w.buf.Bytes() }

// writeLabels renders a {k="v",...} label block (empty block omitted).
// leKey, when non-empty, appends an le label with the given bound.
func writeLabels(buf *bytes.Buffer, labels []string, leKey string, le float64) {
	if len(labels)%2 != 0 {
		panic("metrics: odd label list")
	}
	if len(labels) == 0 && leKey == "" {
		return
	}
	buf.WriteByte('{')
	for i := 0; i+1 < len(labels); i += 2 {
		if i > 0 {
			buf.WriteByte(',')
		}
		buf.WriteString(labels[i])
		buf.WriteString(`="`)
		buf.WriteString(escapeLabel(labels[i+1]))
		buf.WriteByte('"')
	}
	if leKey != "" {
		if len(labels) > 0 {
			buf.WriteByte(',')
		}
		buf.WriteString(leKey)
		buf.WriteString(`="`)
		buf.WriteString(formatValue(le))
		buf.WriteByte('"')
	}
	buf.WriteByte('}')
}

// formatValue renders a sample value: shortest round-trip float form,
// with the infinities spelled the way Prometheus expects.
func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

var labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
var helpEscaper = strings.NewReplacer(`\`, `\\`, "\n", `\n`)

func escapeLabel(s string) string { return labelEscaper.Replace(s) }
func escapeHelp(s string) string  { return helpEscaper.Replace(s) }
