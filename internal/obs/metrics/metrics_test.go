package metrics

import (
	"math"
	"regexp"
	"strings"
	"testing"
)

func TestHistogramCumulativeCounts(t *testing.T) {
	h := NewHistogram([]float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 50} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if len(s.Bounds) != 3 || len(s.Cumulative) != 3 {
		t.Fatalf("snapshot shape: %+v", s)
	}
	// Cumulative: ≤0.1 → 1, ≤1 → 3, ≤10 → 4; +Inf (Count) → 5.
	want := []uint64{1, 3, 4}
	for i, c := range s.Cumulative {
		if c != want[i] {
			t.Fatalf("bucket %d = %d, want %d (full %+v)", i, c, want[i], s)
		}
	}
	if s.Count != 5 {
		t.Fatalf("count = %d", s.Count)
	}
	if s.Sum != 0.05+0.5+0.5+5+50 {
		t.Fatalf("sum = %g", s.Sum)
	}
}

func TestHistogramBoundaryValuesAreLE(t *testing.T) {
	h := NewHistogram([]float64{1, 2})
	h.Observe(1) // le="1" is ≤, so this lands in the first bucket
	h.Observe(2)
	s := h.Snapshot()
	if s.Cumulative[0] != 1 || s.Cumulative[1] != 2 {
		t.Fatalf("boundary observations misplaced: %+v", s)
	}
}

func TestDefaultLatencyBucketsAreSorted(t *testing.T) {
	for i := 1; i < len(DefaultLatencyBuckets); i++ {
		if DefaultLatencyBuckets[i] <= DefaultLatencyBuckets[i-1] {
			t.Fatalf("bucket bounds not increasing at %d: %v", i, DefaultLatencyBuckets)
		}
	}
}

// sampleLine matches one exposition sample: name, optional {labels},
// value. This is the same shape the server-side /metrics test enforces.
var sampleLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*"(,[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*")*\})? [^ ]+$`)

func TestExpositionDocumentIsWellFormed(t *testing.T) {
	w := NewWriter()
	c := w.Counter("app_requests_total", "Requests\nby outcome.")
	c.Sample(12, "table", "flights", "outcome", "ok")
	c.Sample(3, "table", `we"ird\n`, "outcome", "failed")
	g := w.Gauge("app_tables", "Loaded tables.")
	g.Sample(2)
	hf := w.HistogramFamily("app_latency_seconds", "Latency.")
	h := NewHistogram([]float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(2)
	hf.Histogram(h.Snapshot(), "table", "flights")

	doc := string(w.Bytes())
	lines := strings.Split(strings.TrimRight(doc, "\n"), "\n")
	var samples, helps, types int
	for _, line := range lines {
		switch {
		case strings.HasPrefix(line, "# HELP "):
			helps++
			if strings.Contains(line, "\n") {
				t.Fatalf("unescaped newline in HELP: %q", line)
			}
		case strings.HasPrefix(line, "# TYPE "):
			types++
		default:
			samples++
			if !sampleLine.MatchString(line) {
				t.Fatalf("malformed sample line: %q", line)
			}
		}
	}
	if helps != 3 || types != 3 {
		t.Fatalf("want 3 HELP + 3 TYPE lines, got %d + %d", helps, types)
	}
	// 2 counter samples + 1 gauge + histogram (2 bounds + +Inf + sum + count).
	if samples != 2+1+5 {
		t.Fatalf("want 8 sample lines, got %d:\n%s", samples, doc)
	}
	for _, must := range []string{
		"# TYPE app_requests_total counter",
		"# TYPE app_tables gauge",
		"# TYPE app_latency_seconds histogram",
		`app_requests_total{table="flights",outcome="ok"} 12`,
		`app_requests_total{table="we\"ird\\n",outcome="failed"} 3`,
		`app_latency_seconds_bucket{table="flights",le="0.1"} 1`,
		`app_latency_seconds_bucket{table="flights",le="1"} 1`,
		`app_latency_seconds_bucket{table="flights",le="+Inf"} 2`,
		`app_latency_seconds_sum{table="flights"} 2.05`,
		`app_latency_seconds_count{table="flights"} 2`,
	} {
		if !strings.Contains(doc, must+"\n") {
			t.Fatalf("document missing %q:\n%s", must, doc)
		}
	}
}

func TestFormatValue(t *testing.T) {
	cases := map[float64]string{
		0:            "0",
		1.5:          "1.5",
		math.Inf(1):  "+Inf",
		math.Inf(-1): "-Inf",
		0.0005:       "0.0005",
		1000000:      "1e+06",
	}
	for in, want := range cases {
		if got := formatValue(in); got != want {
			t.Fatalf("formatValue(%g) = %q, want %q", in, got, want)
		}
	}
}

func TestOddLabelListPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("odd label list did not panic")
		}
	}()
	w := NewWriter()
	w.Counter("x_total", "x").Sample(1, "only-key")
}
