// Package trace implements lightweight per-query span trees for the
// observability layer: a Trace collects timed, nestable Spans carrying
// per-span I/O counter deltas and small attribute maps, and renders them
// as a JSON-friendly Snapshot.
//
// The package is deliberately tiny and dependency-free (it must be
// importable from internal/engine without cycles, so it defines its own
// IO counter struct mirroring engine.IOStats field-for-field). All
// methods are nil-safe: calling Start/Child/End/SetIO/SetAttr on a nil
// *Trace or nil *Span is a no-op, so instrumented code paths need no
// "tracing enabled?" branches — a disabled run passes nil and pays only
// the nil-receiver calls it makes, which the instrumentation sites avoid
// entirely on their hot paths (same discipline as Options.OnProgress).
package trace

import (
	"sync"
	"time"
)

// IO counts the block-level I/O work attributed to one span. It mirrors
// engine.IOStats (same fields, same snake_case JSON tags); the engine
// converts at its instrumentation sites so this package stays
// import-cycle-free.
type IO struct {
	BlocksRead    int64 `json:"blocks_read,omitempty"`
	BlocksSkipped int64 `json:"blocks_skipped,omitempty"`
	BlocksPruned  int64 `json:"blocks_pruned,omitempty"`
	TuplesRead    int64 `json:"tuples_read,omitempty"`
	KernelBlocks  int64 `json:"kernel_blocks,omitempty"`
	Wraps         int64 `json:"wraps,omitempty"`
}

// Add accumulates other into io.
func (io *IO) Add(other IO) {
	io.BlocksRead += other.BlocksRead
	io.BlocksSkipped += other.BlocksSkipped
	io.BlocksPruned += other.BlocksPruned
	io.TuplesRead += other.TuplesRead
	io.KernelBlocks += other.KernelBlocks
	io.Wraps += other.Wraps
}

// IsZero reports whether every counter is zero.
func (io IO) IsZero() bool { return io == IO{} }

// Trace is one query's span tree. Create with New; record spans with
// Start (roots) and Span.Child (nested), then render with Snapshot.
// All methods are safe for concurrent use — parallel scan workers may
// open sibling spans simultaneously.
type Trace struct {
	mu    sync.Mutex
	id    string
	began time.Time
	ended time.Time
	roots []*Span
}

// Span is one timed region of a traced run.
type Span struct {
	tr       *Trace
	name     string
	start    time.Time
	end      time.Time
	attrs    map[string]any
	io       *IO
	children []*Span
}

// New creates an empty trace identified by id (the serving layer's query
// ID), starting its clock now.
func New(id string) *Trace {
	return &Trace{id: id, began: time.Now()}
}

// ID returns the trace's identifier ("" for a nil trace).
func (t *Trace) ID() string {
	if t == nil {
		return ""
	}
	return t.id
}

// Start opens a root span. Nil-safe: a nil trace returns a nil span,
// on which every Span method is a no-op.
func (t *Trace) Start(name string) *Span { return t.StartAt(name, time.Now()) }

// StartAt is Start with an explicit start time (for spans whose work
// began before the instrumentation point, e.g. a run's first phase).
func (t *Trace) StartAt(name string, at time.Time) *Span {
	if t == nil {
		return nil
	}
	s := &Span{tr: t, name: name, start: at}
	t.mu.Lock()
	t.roots = append(t.roots, s)
	t.mu.Unlock()
	return s
}

// End stamps the trace's overall end time; Snapshot of an un-Ended trace
// uses the current time instead.
func (t *Trace) End() {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.ended = time.Now()
	t.mu.Unlock()
}

// Child opens a nested span under s.
func (s *Span) Child(name string) *Span { return s.ChildAt(name, time.Now()) }

// ChildAt is Child with an explicit start time.
func (s *Span) ChildAt(name string, at time.Time) *Span {
	if s == nil {
		return nil
	}
	c := &Span{tr: s.tr, name: name, start: at}
	s.tr.mu.Lock()
	s.children = append(s.children, c)
	s.tr.mu.Unlock()
	return c
}

// End closes the span now.
func (s *Span) End() { s.EndAt(time.Now()) }

// EndAt closes the span at an explicit time.
func (s *Span) EndAt(at time.Time) {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	s.end = at
	s.tr.mu.Unlock()
}

// SetIO attributes I/O counters to the span (typically a delta between
// two engine IOStats snapshots). Only leaf work spans carry IO, so
// summing every span's IO across the tree equals the run's total.
func (s *Span) SetIO(io IO) {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	cp := io
	s.io = &cp
	s.tr.mu.Unlock()
}

// SetAttr attaches a key/value attribute to the span. Values must be
// JSON-marshalable.
func (s *Span) SetAttr(key string, value any) {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	if s.attrs == nil {
		s.attrs = make(map[string]any, 4)
	}
	s.attrs[key] = value
	s.tr.mu.Unlock()
}

// Snapshot is the JSON-friendly rendering of a trace: span times are
// offsets from the trace start in nanoseconds, so snapshots are stable
// under clock adjustments mid-run and compact on the wire.
type Snapshot struct {
	QueryID    string         `json:"query_id,omitempty"`
	StartTime  time.Time      `json:"start_time"`
	DurationNS int64          `json:"duration_ns"`
	Spans      []SpanSnapshot `json:"spans"`
}

// SpanSnapshot is one span in a Snapshot.
type SpanSnapshot struct {
	Name       string         `json:"name"`
	StartNS    int64          `json:"start_ns"`
	DurationNS int64          `json:"duration_ns"`
	Attrs      map[string]any `json:"attrs,omitempty"`
	IO         *IO            `json:"io,omitempty"`
	Children   []SpanSnapshot `json:"children,omitempty"`
}

// Snapshot renders the trace as a deep copy safe to marshal, retain, or
// hand across API boundaries after the trace keeps being written to.
// A nil trace renders as a zero Snapshot.
func (t *Trace) Snapshot() Snapshot {
	if t == nil {
		return Snapshot{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	end := t.ended
	if end.IsZero() {
		end = time.Now()
	}
	out := Snapshot{
		QueryID:    t.id,
		StartTime:  t.began,
		DurationNS: end.Sub(t.began).Nanoseconds(),
		Spans:      snapshotSpans(t.roots, t.began, end),
	}
	return out
}

func snapshotSpans(spans []*Span, base, traceEnd time.Time) []SpanSnapshot {
	if len(spans) == 0 {
		return nil
	}
	out := make([]SpanSnapshot, len(spans))
	for i, s := range spans {
		end := s.end
		if end.IsZero() {
			end = traceEnd
		}
		ss := SpanSnapshot{
			Name:       s.name,
			StartNS:    s.start.Sub(base).Nanoseconds(),
			DurationNS: end.Sub(s.start).Nanoseconds(),
			Children:   snapshotSpans(s.children, base, traceEnd),
		}
		if s.io != nil {
			cp := *s.io
			ss.IO = &cp
		}
		if len(s.attrs) > 0 {
			attrs := make(map[string]any, len(s.attrs))
			for k, v := range s.attrs {
				attrs[k] = v
			}
			ss.Attrs = attrs
		}
		out[i] = ss
	}
	return out
}

// SumIO totals the IO attributed to every span in the snapshot's tree.
// Instrumentation attaches IO only to leaf work spans, so for a traced
// engine run this equals the run's total IOStats — the invariant the
// equivalence tests pin.
func (sn Snapshot) SumIO() IO {
	var total IO
	var walk func([]SpanSnapshot)
	walk = func(spans []SpanSnapshot) {
		for i := range spans {
			if spans[i].IO != nil {
				total.Add(*spans[i].IO)
			}
			walk(spans[i].Children)
		}
	}
	walk(sn.Spans)
	return total
}

// Find returns the first span with the given name in depth-first order,
// or nil — a convenience for tests and log formatters.
func (sn Snapshot) Find(name string) *SpanSnapshot {
	var found *SpanSnapshot
	var walk func(spans []SpanSnapshot) bool
	walk = func(spans []SpanSnapshot) bool {
		for i := range spans {
			if spans[i].Name == name {
				found = &spans[i]
				return true
			}
			if walk(spans[i].Children) {
				return true
			}
		}
		return false
	}
	walk(sn.Spans)
	return found
}
