package trace

import (
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// Nil receivers are the whole disabled-tracing contract: every method on
// a nil *Trace or nil *Span must be a safe no-op, so instrumented code
// never branches on "is tracing on".
func TestNilSafety(t *testing.T) {
	var tr *Trace
	if tr.ID() != "" {
		t.Fatal("nil trace has an ID")
	}
	sp := tr.Start("root")
	if sp != nil {
		t.Fatal("nil trace issued a span")
	}
	child := sp.Child("child")
	child.SetAttr("k", "v")
	child.SetIO(IO{BlocksRead: 1})
	child.End()
	sp.End()
	tr.End()
	snap := tr.Snapshot()
	if len(snap.Spans) != 0 || snap.QueryID != "" {
		t.Fatalf("nil trace snapshot not zero: %+v", snap)
	}
	if snap.Find("root") != nil {
		t.Fatal("nil snapshot found a span")
	}
	if snap.SumIO() != (IO{}) {
		t.Fatal("nil snapshot has IO")
	}
}

func TestTreeShapeAndSumIO(t *testing.T) {
	tr := New("q1")
	if tr.ID() != "q1" {
		t.Fatalf("ID = %q", tr.ID())
	}
	root := tr.Start("run")
	root.SetAttr("executor", "scan")
	a := root.Child("worker0")
	a.SetIO(IO{BlocksRead: 3, TuplesRead: 100})
	a.End()
	b := root.Child("worker1")
	b.SetIO(IO{BlocksRead: 2, TuplesRead: 50, BlocksPruned: 1})
	b.End()
	root.End()
	other := tr.Start("resolve_target")
	other.End()
	tr.End()

	snap := tr.Snapshot()
	if snap.QueryID != "q1" {
		t.Fatalf("QueryID = %q", snap.QueryID)
	}
	if len(snap.Spans) != 2 {
		t.Fatalf("want 2 roots, got %d", len(snap.Spans))
	}
	run := snap.Find("run")
	if run == nil || len(run.Children) != 2 {
		t.Fatalf("run span wrong: %+v", run)
	}
	if run.Attrs["executor"] != "scan" {
		t.Fatalf("attrs = %v", run.Attrs)
	}
	want := IO{BlocksRead: 5, TuplesRead: 150, BlocksPruned: 1}
	if got := snap.SumIO(); got != want {
		t.Fatalf("SumIO = %+v, want %+v", got, want)
	}
	if w1 := snap.Find("worker1"); w1 == nil || w1.IO == nil || w1.IO.BlocksPruned != 1 {
		t.Fatalf("worker1 wrong: %+v", w1)
	}
	if snap.Find("absent") != nil {
		t.Fatal("Find invented a span")
	}
}

// Snapshot must be a deep copy: mutating the live trace after snapping
// may not change an already-taken snapshot.
func TestSnapshotIsDeepCopy(t *testing.T) {
	tr := New("q")
	root := tr.Start("run")
	root.SetAttr("n", 1)
	root.SetIO(IO{BlocksRead: 1})
	snap := tr.Snapshot()

	root.SetAttr("n", 2)
	root.SetIO(IO{BlocksRead: 99})
	root.Child("late").End()
	root.End()
	tr.End()

	got := snap.Find("run")
	if got.Attrs["n"] != 1 {
		t.Fatalf("snapshot attr mutated: %v", got.Attrs)
	}
	if got.IO.BlocksRead != 1 {
		t.Fatalf("snapshot IO mutated: %+v", got.IO)
	}
	if len(got.Children) != 0 {
		t.Fatal("snapshot grew a child after the fact")
	}
}

// Un-ended spans snapshot with the trace end (or now) as their end, so a
// snapshot taken mid-run still renders a complete, monotonic tree.
func TestUnendedSpansClampToTraceEnd(t *testing.T) {
	tr := New("q")
	began := time.Now()
	sp := tr.StartAt("run", began)
	_ = sp
	tr.End()
	snap := tr.Snapshot()
	run := snap.Find("run")
	if run == nil {
		t.Fatal("no run span")
	}
	if run.DurationNS < 0 || run.DurationNS > snap.DurationNS {
		t.Fatalf("clamped duration %d outside trace duration %d", run.DurationNS, snap.DurationNS)
	}
}

func TestSnapshotMarshalsCompactJSON(t *testing.T) {
	tr := New("q")
	sp := tr.Start("run")
	sp.SetIO(IO{TuplesRead: 7})
	sp.End()
	tr.End()
	b, err := json.Marshal(tr.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.QueryID != "q" || len(back.Spans) != 1 || back.Spans[0].IO.TuplesRead != 7 {
		t.Fatalf("round trip lost data: %s", b)
	}
	// Zero IO fields are omitted on the wire.
	if strings.Contains(string(b), `"blocks_read"`) {
		t.Fatalf("zero IO field serialized: %s", b)
	}
}

func TestIOAddAndIsZero(t *testing.T) {
	var io IO
	if !io.IsZero() {
		t.Fatal("zero IO not zero")
	}
	io.Add(IO{BlocksRead: 1, Wraps: 2})
	io.Add(IO{BlocksRead: 2, KernelBlocks: 3})
	want := IO{BlocksRead: 3, Wraps: 2, KernelBlocks: 3}
	if io != want {
		t.Fatalf("Add = %+v, want %+v", io, want)
	}
	if io.IsZero() {
		t.Fatal("nonzero IO reads as zero")
	}
}
