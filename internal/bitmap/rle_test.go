package bitmap

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCompressRoundTripSimple(t *testing.T) {
	b := NewBitset(10)
	b.Set(2)
	b.Set(3)
	b.Set(9)
	r := Compress(b)
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
	if r.Count() != 3 {
		t.Fatalf("Count = %d, want 3", r.Count())
	}
	d := r.Decompress()
	for i := 0; i < 10; i++ {
		if d.Get(i) != b.Get(i) || r.Get(i) != b.Get(i) {
			t.Fatalf("bit %d differs after round trip", i)
		}
	}
}

func TestRLEGetOutOfRange(t *testing.T) {
	r := Compress(NewBitset(5))
	if r.Get(-1) || r.Get(5) {
		t.Fatal("out-of-range Get should be false")
	}
}

func TestRLEEmptyAndFull(t *testing.T) {
	empty := Compress(NewBitset(100))
	if empty.Count() != 0 || empty.NumRuns() != 1 {
		t.Fatalf("empty: count=%d runs=%d", empty.Count(), empty.NumRuns())
	}
	full := NewBitset(100)
	for i := 0; i < 100; i++ {
		full.Set(i)
	}
	r := Compress(full)
	if r.Count() != 100 || r.NumRuns() != 2 {
		t.Fatalf("full: count=%d runs=%d", r.Count(), r.NumRuns())
	}
	if r.CompressedWords() != 2 {
		t.Fatalf("CompressedWords = %d", r.CompressedWords())
	}
}

// Property: compress/decompress is the identity and Count is preserved.
func TestRLERoundTripProperty(t *testing.T) {
	f := func(seed int64, n16 uint16, density uint8) bool {
		n := int(n16%2000) + 1
		rng := rand.New(rand.NewSource(seed))
		p := float64(density%100) / 100
		b := NewBitset(n)
		for i := 0; i < n; i++ {
			if rng.Float64() < p {
				b.Set(i)
			}
		}
		r := Compress(b)
		if r.Validate() != nil || r.Count() != b.Count() {
			return false
		}
		d := r.Decompress()
		for i := 0; i < n; i++ {
			if d.Get(i) != b.Get(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestRLECompressesSparse(t *testing.T) {
	// A sparse bitmap (few clustered runs) should compress far below the
	// dense size.
	b := NewBitset(1 << 16)
	for i := 1000; i < 1010; i++ {
		b.Set(i)
	}
	r := Compress(b)
	if r.NumRuns() != 3 {
		t.Fatalf("NumRuns = %d, want 3", r.NumRuns())
	}
	denseWords := b.NumWords() * 2 // 64-bit words in 32-bit units
	if r.CompressedWords() >= denseWords {
		t.Fatalf("no compression achieved: %d vs %d", r.CompressedWords(), denseWords)
	}
}
