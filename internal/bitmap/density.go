package bitmap

import (
	"fmt"

	"fastmatch/internal/colstore"
)

// DensityMap stores, for each (attribute value, block) pair, the number of
// tuples in the block with that value, saturating at 65535. Density maps
// are the "slightly costlier" structure from Appendix A.1.2 that lets
// FastMatch estimate how many tuples in a block satisfy an arbitrary
// boolean predicate over attribute values, enabling AnyActive selection
// for predicate-defined candidates.
type DensityMap struct {
	counts [][]uint16 // [value][block]
	blocks int
}

// BuildDensity scans the column and constructs its density map. Like
// Build, it reads through the backend-neutral colstore.Reader interface.
func BuildDensity(src colstore.Reader, columnName string) (*DensityMap, error) {
	col, err := src.ColumnByName(columnName)
	if err != nil {
		return nil, err
	}
	nb := src.NumBlocks()
	dm := &DensityMap{counts: make([][]uint16, col.Cardinality()), blocks: nb}
	for v := range dm.counts {
		dm.counts[v] = make([]uint16, nb)
	}
	for b := 0; b < nb; b++ {
		lo, hi := src.BlockSpan(b)
		for _, code := range col.Codes(lo, hi) {
			if dm.counts[code][b] < ^uint16(0) {
				dm.counts[code][b]++
			}
		}
	}
	return dm, nil
}

// NumBlocks returns the number of blocks covered.
func (dm *DensityMap) NumBlocks() int { return dm.blocks }

// Count returns the (saturated) tuple count for value v in block b.
func (dm *DensityMap) Count(v uint32, b int) int {
	return int(dm.counts[v][b])
}

// Predicate is a boolean combination of attribute-value tests evaluated
// per block via density estimates. Leaves match a single value of a single
// indexed column; internal nodes combine children with AND/OR.
type Predicate interface {
	// EstimateBlock returns an upper bound on the number of tuples in
	// block b that satisfy the predicate, and whether the block might
	// contain any at all.
	EstimateBlock(b int) int
	// Matches evaluates the predicate on concrete per-column codes.
	Matches(codes map[string]uint32) bool
	fmt.Stringer
}

// ValuePred matches Column == value (by code).
type ValuePred struct {
	Column string
	Code   uint32
	DM     *DensityMap
}

// EstimateBlock returns the exact per-block count of matching tuples.
func (p *ValuePred) EstimateBlock(b int) int { return p.DM.Count(p.Code, b) }

// Matches reports whether the tuple's code for the column equals the
// predicate value. A missing column never matches.
func (p *ValuePred) Matches(codes map[string]uint32) bool {
	c, ok := codes[p.Column]
	return ok && c == p.Code
}

func (p *ValuePred) String() string { return fmt.Sprintf("%s=%d", p.Column, p.Code) }

// AndPred matches the conjunction of its children. The block estimate is
// the minimum of the children's estimates — an upper bound (not exact,
// since matching tuples for different conjuncts may be disjoint), which is
// all AnyActive needs: it must never skip a block that could hold samples.
type AndPred struct{ Children []Predicate }

// EstimateBlock returns min over children (upper bound on the conjunction).
func (p *AndPred) EstimateBlock(b int) int {
	if len(p.Children) == 0 {
		return 0
	}
	est := p.Children[0].EstimateBlock(b)
	for _, c := range p.Children[1:] {
		if e := c.EstimateBlock(b); e < est {
			est = e
		}
	}
	return est
}

// Matches reports whether all children match.
func (p *AndPred) Matches(codes map[string]uint32) bool {
	for _, c := range p.Children {
		if !c.Matches(codes) {
			return false
		}
	}
	return true
}

func (p *AndPred) String() string { return joinPreds(p.Children, " AND ") }

// OrPred matches the disjunction of its children; the block estimate is
// the sum of the children's estimates (an upper bound).
type OrPred struct{ Children []Predicate }

// EstimateBlock returns the sum over children (upper bound on the union).
func (p *OrPred) EstimateBlock(b int) int {
	est := 0
	for _, c := range p.Children {
		est += c.EstimateBlock(b)
	}
	return est
}

// Matches reports whether any child matches.
func (p *OrPred) Matches(codes map[string]uint32) bool {
	for _, c := range p.Children {
		if c.Matches(codes) {
			return true
		}
	}
	return false
}

func (p *OrPred) String() string { return joinPreds(p.Children, " OR ") }

func joinPreds(children []Predicate, sep string) string {
	s := "("
	for i, c := range children {
		if i > 0 {
			s += sep
		}
		s += c.String()
	}
	return s + ")"
}
