package bitmap

import (
	"math/rand"
	"testing"
	"testing/quick"

	"fastmatch/internal/colstore"
)

func TestBitsetBasics(t *testing.T) {
	b := NewBitset(130)
	if b.Len() != 130 {
		t.Fatalf("Len = %d", b.Len())
	}
	for _, i := range []int{0, 63, 64, 65, 129} {
		b.Set(i)
		if !b.Get(i) {
			t.Fatalf("bit %d not set", i)
		}
	}
	if b.Count() != 5 {
		t.Fatalf("Count = %d, want 5", b.Count())
	}
	b.Clear(64)
	if b.Get(64) || b.Count() != 4 {
		t.Fatal("Clear failed")
	}
}

func TestBitsetWordAccess(t *testing.T) {
	b := NewBitset(100)
	b.Set(0)
	b.Set(65)
	if b.Word(0) != 1 {
		t.Fatalf("Word(0) = %x", b.Word(0))
	}
	if b.Word(1) != 2 {
		t.Fatalf("Word(1) = %x", b.Word(1))
	}
	if b.Word(5) != 0 || b.Word(-1) != 0 {
		t.Fatal("out-of-range words should read zero")
	}
	if b.NumWords() != 2 {
		t.Fatalf("NumWords = %d", b.NumWords())
	}
}

func TestBitsetOrAnd(t *testing.T) {
	a, b := NewBitset(70), NewBitset(70)
	a.Set(1)
	a.Set(69)
	b.Set(1)
	b.Set(5)
	c := a.Clone()
	if err := c.Or(b); err != nil {
		t.Fatal(err)
	}
	if c.Count() != 3 || !c.Get(1) || !c.Get(5) || !c.Get(69) {
		t.Fatal("Or wrong")
	}
	d := a.Clone()
	if err := d.And(b); err != nil {
		t.Fatal(err)
	}
	if d.Count() != 1 || !d.Get(1) {
		t.Fatal("And wrong")
	}
	if err := a.Or(NewBitset(5)); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if err := a.And(NewBitset(5)); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

// buildTestTable builds a table with one candidate column z and rows rows,
// where row i has z = zcodes[i].
func buildTestTable(t testing.TB, blockSize int, zcodes []uint32, card int) *colstore.Table {
	t.Helper()
	b := colstore.NewBuilder(blockSize)
	zc, err := b.AddColumn("z")
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < card; v++ {
		zc.Dict.Intern(string(rune('a'+v%26)) + string(rune('0'+v/26)))
	}
	for _, code := range zcodes {
		if err := b.AppendCodes([]uint32{code}, nil); err != nil {
			t.Fatal(err)
		}
	}
	return b.Build()
}

func TestIndexBuildAndContains(t *testing.T) {
	// 3 blocks of 2: [0,1],[2,0],[1,1]
	tbl := buildTestTable(t, 2, []uint32{0, 1, 2, 0, 1, 1}, 3)
	idx, err := Build(tbl, "z")
	if err != nil {
		t.Fatal(err)
	}
	if idx.NumBlocks() != 3 || idx.NumValues() != 3 {
		t.Fatalf("geometry: %d blocks %d values", idx.NumBlocks(), idx.NumValues())
	}
	wantBits := map[[2]int]bool{
		{0, 0}: true, {0, 1}: true, {0, 2}: false,
		{1, 0}: true, {1, 1}: false, {1, 2}: true,
		{2, 0}: false, {2, 1}: true, {2, 2}: false,
	}
	for key, want := range wantBits {
		if got := idx.Contains(uint32(key[0]), key[1]); got != want {
			t.Errorf("Contains(v=%d, b=%d) = %v, want %v", key[0], key[1], got, want)
		}
	}
}

func TestIndexBuildMissingColumn(t *testing.T) {
	tbl := buildTestTable(t, 2, []uint32{0}, 1)
	if _, err := Build(tbl, "nope"); err == nil {
		t.Fatal("missing column accepted")
	}
}

func TestValueBitset(t *testing.T) {
	tbl := buildTestTable(t, 2, []uint32{0, 1}, 2)
	idx, _ := Build(tbl, "z")
	if _, err := idx.ValueBitset(5); err == nil {
		t.Fatal("out-of-range value accepted")
	}
	bs, err := idx.ValueBitset(0)
	if err != nil || !bs.Get(0) {
		t.Fatal("ValueBitset wrong")
	}
}

// Property: the index bit is set iff the block contains the value — checked
// against a brute-force scan on random tables.
func TestIndexInvariantProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(600) + 1
		card := rng.Intn(10) + 1
		bs := rng.Intn(30) + 1
		codes := make([]uint32, n)
		for i := range codes {
			codes[i] = uint32(rng.Intn(card))
		}
		tbl := buildTestTable(t, bs, codes, card)
		idx, err := Build(tbl, "z")
		if err != nil {
			return false
		}
		for b := 0; b < tbl.NumBlocks(); b++ {
			lo, hi := tbl.BlockSpan(b)
			present := make(map[uint32]bool)
			for _, c := range codes[lo:hi] {
				present[c] = true
			}
			for v := 0; v < card; v++ {
				if idx.Contains(uint32(v), b) != present[uint32(v)] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: MarkAnyActive agrees with the naive BlockAnyActive on every
// block of every window (Algorithm 3 ≡ Algorithm 2).
func TestMarkAnyActiveMatchesNaiveProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(3000) + 10
		card := rng.Intn(12) + 2
		codes := make([]uint32, n)
		for i := range codes {
			codes[i] = uint32(rng.Intn(card))
		}
		tbl := buildTestTable(t, rng.Intn(8)+1, codes, card)
		idx, err := Build(tbl, "z")
		if err != nil {
			return false
		}
		nActive := rng.Intn(card) + 1
		active := make([]uint32, 0, nActive)
		seen := map[uint32]bool{}
		for len(active) < nActive {
			v := uint32(rng.Intn(card))
			if !seen[v] {
				seen[v] = true
				active = append(active, v)
			}
		}
		start := rng.Intn(idx.NumBlocks())
		window := rng.Intn(200) + 1
		mark := make([]bool, window)
		idx.MarkAnyActive(active, start, mark)
		for i := 0; i < window; i++ {
			b := start + i
			want := false
			if b < idx.NumBlocks() {
				want = idx.BlockAnyActive(active, b)
			}
			if mark[i] != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestMarkAnyActiveEdges(t *testing.T) {
	tbl := buildTestTable(t, 1, []uint32{0, 1, 0, 1}, 2)
	idx, _ := Build(tbl, "z")
	// Start beyond range: everything unmarked.
	mark := []bool{true, true}
	idx.MarkAnyActive([]uint32{0}, 10, mark)
	if mark[0] || mark[1] {
		t.Fatal("marks beyond range should be false")
	}
	// Empty mark slice: no panic.
	idx.MarkAnyActive([]uint32{0}, 0, nil)
	// Empty active set: nothing marked.
	mark = make([]bool, 4)
	idx.MarkAnyActive(nil, 0, mark)
	for _, m := range mark {
		if m {
			t.Fatal("no active candidates should mark nothing")
		}
	}
}

func TestMarkedUnion(t *testing.T) {
	tbl := buildTestTable(t, 2, []uint32{0, 0, 1, 1, 2, 2}, 3)
	idx, _ := Build(tbl, "z")
	u := idx.MarkedUnion([]uint32{0, 2})
	if !u.Get(0) || u.Get(1) || !u.Get(2) {
		t.Fatalf("MarkedUnion bits wrong: %v %v %v", u.Get(0), u.Get(1), u.Get(2))
	}
}
