// Package bitmap provides the per-(attribute-value, block) bitmap index
// structures FastMatch uses to decide whether a block can contain samples
// for a candidate (§4.1), the AnyActive block-selection evaluators of
// Algorithms 2 and 3, density maps for boolean-predicate candidates
// (Appendix A.1.2), and a run-length compressed representation.
package bitmap

import (
	"fmt"
	"math/bits"
)

const wordBits = 64

// Bitset is a fixed-length bit vector backed by 64-bit words. One Bitset
// per attribute value stores a bit per block: 1 iff the block contains at
// least one tuple with that value.
type Bitset struct {
	words []uint64
	n     int
}

// NewBitset returns a zeroed bitset of n bits.
func NewBitset(n int) *Bitset {
	return &Bitset{words: make([]uint64, (n+wordBits-1)/wordBits), n: n}
}

// Len returns the number of bits.
func (b *Bitset) Len() int { return b.n }

// Set sets bit i.
func (b *Bitset) Set(i int) {
	b.words[i/wordBits] |= 1 << (uint(i) % wordBits)
}

// Clear clears bit i.
func (b *Bitset) Clear(i int) {
	b.words[i/wordBits] &^= 1 << (uint(i) % wordBits)
}

// Get reports bit i.
func (b *Bitset) Get(i int) bool {
	return b.words[i/wordBits]&(1<<(uint(i)%wordBits)) != 0
}

// Count returns the number of set bits.
func (b *Bitset) Count() int {
	c := 0
	for _, w := range b.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Word returns the w-th backing word; out-of-range words read as zero.
// Exposing words lets the AnyActive evaluator consume an entire cache
// line's worth of block bits per probe (Algorithm 3's optimization).
func (b *Bitset) Word(w int) uint64 {
	if w < 0 || w >= len(b.words) {
		return 0
	}
	return b.words[w]
}

// NumWords returns the number of backing words.
func (b *Bitset) NumWords() int { return len(b.words) }

// Or accumulates other into b. Lengths must match.
func (b *Bitset) Or(other *Bitset) error {
	if b.n != other.n {
		return fmt.Errorf("bitmap: length mismatch %d vs %d", b.n, other.n)
	}
	for i := range b.words {
		b.words[i] |= other.words[i]
	}
	return nil
}

// And intersects other into b. Lengths must match.
func (b *Bitset) And(other *Bitset) error {
	if b.n != other.n {
		return fmt.Errorf("bitmap: length mismatch %d vs %d", b.n, other.n)
	}
	for i := range b.words {
		b.words[i] &= other.words[i]
	}
	return nil
}

// OrShifted accumulates other into b with every bit of other moved up by
// offset bits: b[offset+i] |= other[i]. other must fit entirely inside b.
// This is the stitching primitive for segmented storage backends, where a
// per-segment block index is folded into a table-wide index at the
// segment's block offset.
func (b *Bitset) OrShifted(other *Bitset, offset int) error {
	if offset < 0 || offset+other.n > b.n {
		return fmt.Errorf("bitmap: shifted OR of %d bits at offset %d overflows %d bits", other.n, offset, b.n)
	}
	wordOff := offset / wordBits
	bitOff := uint(offset % wordBits)
	if bitOff == 0 {
		for i, w := range other.words {
			b.words[wordOff+i] |= w
		}
		return nil
	}
	for i, w := range other.words {
		if w == 0 {
			continue
		}
		b.words[wordOff+i] |= w << bitOff
		if hi := w >> (wordBits - bitOff); hi != 0 {
			b.words[wordOff+i+1] |= hi
		}
	}
	return nil
}

// Clone returns a deep copy.
func (b *Bitset) Clone() *Bitset {
	c := NewBitset(b.n)
	copy(c.words, b.words)
	return c
}
