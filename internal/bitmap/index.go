package bitmap

import (
	"fmt"
	"math/bits"

	"fastmatch/internal/colstore"
)

// Index is the per-column bitmap index: one Bitset per attribute value,
// each with one bit per block. The storage cost is a single bit per block
// per attribute value — orders of magnitude cheaper than the
// bit-per-tuple indexes of prior work (§4.1).
type Index struct {
	perValue []*Bitset
	blocks   int
}

// IndexedReader is an optional colstore.Reader capability: a storage
// backend that maintains its own per-column block indexes (for example
// the live-ingest backend, which keeps an immutable index per sealed
// segment and stitches them with shifted ORs, consulting per-segment
// code-presence zone maps to skip segments a value never touches) can
// serve Build without a full O(rows) scan. BlockIndex must return an
// index exactly equal to what Build's scan would produce — same
// cardinality, same block count, same bits — so every executor behaves
// identically on indexed and scanned backends.
type IndexedReader interface {
	BlockIndex(columnName string) (*Index, error)
}

// Build scans the column once and constructs its index against the
// source's block layout. It works over any storage backend (the Codes
// slices are only read, per the colstore.Reader aliasing contract).
// Backends implementing IndexedReader serve the index directly instead;
// backends exposing exact per-block presence words (the stats computed
// in every open's validation pass use the same value-major bit layout
// as this index) serve Build by copying words, skipping the O(rows)
// scan entirely.
func Build(src colstore.Reader, columnName string) (*Index, error) {
	if ir, ok := src.(IndexedReader); ok {
		return ir.BlockIndex(columnName)
	}
	col, err := src.ColumnByName(columnName)
	if err != nil {
		return nil, err
	}
	nb := src.NumBlocks()
	card := col.Cardinality()
	if br, ok := src.(colstore.BlockStatsReader); ok {
		if st := br.BlockStats(); st != nil {
			// PresenceWords is exact by contract (inexact stats decline), so
			// the copied index is bit-for-bit what the scan below builds.
			words, wpv, ok := st.PresenceWords(columnName)
			if ok && wpv == (nb+wordBits-1)/wordBits && len(words) == card*wpv {
				idx := &Index{perValue: make([]*Bitset, card), blocks: nb}
				for v := range idx.perValue {
					bs := NewBitset(nb)
					copy(bs.words, words[v*wpv:(v+1)*wpv])
					idx.perValue[v] = bs
				}
				return idx, nil
			}
		}
	}
	idx := &Index{perValue: make([]*Bitset, card), blocks: nb}
	for v := range idx.perValue {
		idx.perValue[v] = NewBitset(nb)
	}
	for b := 0; b < nb; b++ {
		lo, hi := src.BlockSpan(b)
		for _, code := range col.Codes(lo, hi) {
			idx.perValue[code].Set(b)
		}
	}
	return idx, nil
}

// NewIndex returns an empty index for the given attribute-value
// cardinality and block count, to be populated with Add/OrValueShifted —
// the construction path for backends that stitch an index from
// per-segment pieces instead of scanning.
func NewIndex(values, blocks int) *Index {
	idx := &Index{perValue: make([]*Bitset, values), blocks: blocks}
	for v := range idx.perValue {
		idx.perValue[v] = NewBitset(blocks)
	}
	return idx
}

// Add records that block b contains a tuple with value code v.
func (ix *Index) Add(v uint32, b int) { ix.perValue[v].Set(b) }

// OrValueShifted folds a per-segment bitset for value v into this index
// at the segment's block offset: bit i of src marks block blockOffset+i.
func (ix *Index) OrValueShifted(v uint32, src *Bitset, blockOffset int) error {
	if int(v) >= len(ix.perValue) {
		return fmt.Errorf("bitmap: value %d out of range (%d values)", v, len(ix.perValue))
	}
	return ix.perValue[v].OrShifted(src, blockOffset)
}

// NumBlocks returns the number of blocks indexed.
func (ix *Index) NumBlocks() int { return ix.blocks }

// NumValues returns the attribute-value cardinality.
func (ix *Index) NumValues() int { return len(ix.perValue) }

// Contains reports whether block b contains any tuple with value code v.
func (ix *Index) Contains(v uint32, b int) bool {
	return ix.perValue[v].Get(b)
}

// ValueBitset returns the bitset for value v (read-only use).
func (ix *Index) ValueBitset(v uint32) (*Bitset, error) {
	if int(v) >= len(ix.perValue) {
		return nil, fmt.Errorf("bitmap: value %d out of range (%d values)", v, len(ix.perValue))
	}
	return ix.perValue[v], nil
}

// BlockAnyActive is the naive per-block AnyActive policy of Algorithm 2:
// return true iff block b contains a tuple for any active candidate. Each
// probe touches a different candidate's bitmap — the cache-hostile access
// pattern the paper identifies, kept as the SyncMatch code path and the
// ablation baseline.
func (ix *Index) BlockAnyActive(active []uint32, b int) bool {
	for _, v := range active {
		if ix.perValue[v].Get(b) {
			return true
		}
	}
	return false
}

// MarkAnyActive implements Algorithm 3: AnyActive selection with
// lookahead. It marks mark[i] = true iff block start+i contains a tuple
// for at least one active candidate, for 0 ≤ i < len(mark). The loop
// order is candidate-major and word-chunked, so each probe of a
// candidate's bitmap consumes up to 64 block bits at once instead of one.
//
// Blocks at or beyond the index's range are left unmarked.
func (ix *Index) MarkAnyActive(active []uint32, start int, mark []bool) {
	for i := range mark {
		mark[i] = false
	}
	if start >= ix.blocks || len(mark) == 0 {
		return
	}
	end := start + len(mark)
	if end > ix.blocks {
		end = ix.blocks
	}
	firstWord := start / wordBits
	lastWord := (end - 1) / wordBits
	for _, v := range active {
		bs := ix.perValue[v]
		for w := firstWord; w <= lastWord; w++ {
			word := bs.Word(w)
			if word == 0 {
				continue
			}
			base := w * wordBits
			// Only visit set bits inside [start, end).
			for word != 0 {
				blockID := base + bits.TrailingZeros64(word)
				word &= word - 1
				if blockID < start || blockID >= end {
					continue
				}
				mark[blockID-start] = true
			}
		}
	}
}

// MarkedUnion returns a bitset over [0, blocks) with a 1 for every block
// containing any of the given values; used to precompute a query
// predicate's block mask once (for fixed candidate sets such as stage 3's
// top-k).
func (ix *Index) MarkedUnion(values []uint32) *Bitset {
	out := NewBitset(ix.blocks)
	for _, v := range values {
		_ = out.Or(ix.perValue[v]) // lengths match by construction
	}
	return out
}
