package bitmap

import (
	"math/rand"
	"testing"
	"testing/quick"

	"fastmatch/internal/colstore"
)

// buildTwoColTable builds a table with columns z1, z2 of the given codes.
func buildTwoColTable(t testing.TB, blockSize int, z1, z2 []uint32, card int) *colstore.Table {
	t.Helper()
	b := colstore.NewBuilder(blockSize)
	c1, _ := b.AddColumn("z1")
	c2, _ := b.AddColumn("z2")
	for v := 0; v < card; v++ {
		c1.Dict.Intern(string(rune('a' + v)))
		c2.Dict.Intern(string(rune('A' + v)))
	}
	for i := range z1 {
		if err := b.AppendCodes([]uint32{z1[i], z2[i]}, nil); err != nil {
			t.Fatal(err)
		}
	}
	return b.Build()
}

func TestDensityMapCounts(t *testing.T) {
	tbl := buildTestTable(t, 3, []uint32{0, 0, 1, 1, 1, 1}, 2)
	dm, err := BuildDensity(tbl, "z")
	if err != nil {
		t.Fatal(err)
	}
	if dm.NumBlocks() != 2 {
		t.Fatalf("NumBlocks = %d", dm.NumBlocks())
	}
	if dm.Count(0, 0) != 2 || dm.Count(1, 0) != 1 || dm.Count(1, 1) != 3 || dm.Count(0, 1) != 0 {
		t.Fatalf("counts wrong: %d %d %d %d",
			dm.Count(0, 0), dm.Count(1, 0), dm.Count(1, 1), dm.Count(0, 1))
	}
}

func TestBuildDensityMissingColumn(t *testing.T) {
	tbl := buildTestTable(t, 2, []uint32{0}, 1)
	if _, err := BuildDensity(tbl, "nope"); err == nil {
		t.Fatal("missing column accepted")
	}
}

// Property: density counts match brute force.
func TestDensityInvariantProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(500) + 1
		card := rng.Intn(6) + 1
		codes := make([]uint32, n)
		for i := range codes {
			codes[i] = uint32(rng.Intn(card))
		}
		tbl := buildTestTable(t, rng.Intn(16)+1, codes, card)
		dm, err := BuildDensity(tbl, "z")
		if err != nil {
			return false
		}
		for b := 0; b < tbl.NumBlocks(); b++ {
			lo, hi := tbl.BlockSpan(b)
			counts := make(map[uint32]int)
			for _, c := range codes[lo:hi] {
				counts[c]++
			}
			for v := 0; v < card; v++ {
				if dm.Count(uint32(v), b) != counts[uint32(v)] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestPredicateMatching(t *testing.T) {
	tbl := buildTwoColTable(t, 2, []uint32{0, 1, 0, 1}, []uint32{0, 0, 1, 1}, 2)
	dm1, _ := BuildDensity(tbl, "z1")
	dm2, _ := BuildDensity(tbl, "z2")
	p1 := &ValuePred{Column: "z1", Code: 0, DM: dm1}
	p2 := &ValuePred{Column: "z2", Code: 1, DM: dm2}
	and := &AndPred{Children: []Predicate{p1, p2}}
	or := &OrPred{Children: []Predicate{p1, p2}}

	if !p1.Matches(map[string]uint32{"z1": 0}) || p1.Matches(map[string]uint32{"z1": 1}) {
		t.Fatal("ValuePred.Matches wrong")
	}
	if p1.Matches(map[string]uint32{"other": 0}) {
		t.Fatal("missing column should not match")
	}
	if !and.Matches(map[string]uint32{"z1": 0, "z2": 1}) {
		t.Fatal("AndPred should match")
	}
	if and.Matches(map[string]uint32{"z1": 0, "z2": 0}) {
		t.Fatal("AndPred should not match")
	}
	if !or.Matches(map[string]uint32{"z1": 5, "z2": 1}) {
		t.Fatal("OrPred should match")
	}
	if or.Matches(map[string]uint32{"z1": 5, "z2": 5}) {
		t.Fatal("OrPred should not match")
	}
}

// Property: predicate block estimates are sound upper bounds — the true
// number of matching tuples in a block never exceeds the estimate. This is
// the safety AnyActive needs: a block is only skipped when the estimate is
// zero, so no matching tuples are ever skipped.
func TestPredicateEstimateSoundProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(400) + 4
		card := 3
		z1 := make([]uint32, n)
		z2 := make([]uint32, n)
		for i := range z1 {
			z1[i] = uint32(rng.Intn(card))
			z2[i] = uint32(rng.Intn(card))
		}
		tbl := buildTwoColTable(t, rng.Intn(8)+2, z1, z2, card)
		dm1, _ := BuildDensity(tbl, "z1")
		dm2, _ := BuildDensity(tbl, "z2")
		pA := &ValuePred{Column: "z1", Code: uint32(rng.Intn(card)), DM: dm1}
		pB := &ValuePred{Column: "z2", Code: uint32(rng.Intn(card)), DM: dm2}
		preds := []Predicate{
			pA,
			&AndPred{Children: []Predicate{pA, pB}},
			&OrPred{Children: []Predicate{pA, pB}},
		}
		for b := 0; b < tbl.NumBlocks(); b++ {
			lo, hi := tbl.BlockSpan(b)
			for _, p := range preds {
				truth := 0
				for i := lo; i < hi; i++ {
					if p.Matches(map[string]uint32{"z1": z1[i], "z2": z2[i]}) {
						truth++
					}
				}
				if truth > p.EstimateBlock(b) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestEmptyAndPredEstimate(t *testing.T) {
	p := &AndPred{}
	if p.EstimateBlock(0) != 0 {
		t.Fatal("empty AND should estimate 0")
	}
	if !p.Matches(nil) {
		t.Fatal("empty AND is vacuously true")
	}
}

func TestPredicateString(t *testing.T) {
	p1 := &ValuePred{Column: "z1", Code: 2}
	and := &AndPred{Children: []Predicate{p1, p1}}
	or := &OrPred{Children: []Predicate{p1}}
	if p1.String() != "z1=2" {
		t.Fatalf("ValuePred string %q", p1.String())
	}
	if and.String() != "(z1=2 AND z1=2)" {
		t.Fatalf("AndPred string %q", and.String())
	}
	if or.String() != "(z1=2)" {
		t.Fatalf("OrPred string %q", or.String())
	}
}
