package bitmap

import "fmt"

// RLEBitset is a run-length-encoded bitmap in the spirit of WAH/EWAH
// compression (§4.1 notes bitmaps are amenable to significant
// compression). Runs alternate between 0s and 1s, always starting with a
// 0-run (possibly of length zero). It supports the read-side operations
// the sampling engine needs; mutation happens on the uncompressed form.
type RLEBitset struct {
	runs []uint32 // alternating 0-run, 1-run, 0-run, ... lengths
	n    int
}

// Compress converts a Bitset to run-length form.
func Compress(b *Bitset) *RLEBitset {
	r := &RLEBitset{n: b.Len()}
	cur := false // current run value; first run encodes 0s
	var runLen uint32
	for i := 0; i < b.Len(); i++ {
		v := b.Get(i)
		if v == cur {
			runLen++
			continue
		}
		r.runs = append(r.runs, runLen)
		cur = v
		runLen = 1
	}
	r.runs = append(r.runs, runLen)
	return r
}

// Len returns the number of bits represented.
func (r *RLEBitset) Len() int { return r.n }

// NumRuns returns the number of stored runs (compression metric).
func (r *RLEBitset) NumRuns() int { return len(r.runs) }

// CompressedWords returns the storage size in 32-bit words, for comparing
// against the dense representation's 64-bit words.
func (r *RLEBitset) CompressedWords() int { return len(r.runs) }

// Get reports bit i by walking the runs. O(runs); intended for verification
// and for sparse bitmaps where runs ≪ bits.
func (r *RLEBitset) Get(i int) bool {
	if i < 0 || i >= r.n {
		return false
	}
	pos := 0
	val := false
	for _, run := range r.runs {
		pos += int(run)
		if i < pos {
			return val
		}
		val = !val
	}
	return false
}

// Decompress reconstructs the dense bitset.
func (r *RLEBitset) Decompress() *Bitset {
	b := NewBitset(r.n)
	pos := 0
	val := false
	for _, run := range r.runs {
		if val {
			for i := pos; i < pos+int(run); i++ {
				b.Set(i)
			}
		}
		pos += int(run)
		val = !val
	}
	return b
}

// Count returns the number of set bits without decompressing.
func (r *RLEBitset) Count() int {
	c := 0
	val := false
	for _, run := range r.runs {
		if val {
			c += int(run)
		}
		val = !val
	}
	return c
}

// Validate checks internal consistency (runs sum to the bit length).
func (r *RLEBitset) Validate() error {
	sum := 0
	for _, run := range r.runs {
		sum += int(run)
	}
	if sum != r.n {
		return fmt.Errorf("bitmap: RLE runs sum to %d, want %d", sum, r.n)
	}
	return nil
}

// IndexCompression summarizes how an Index would compress under RLE —
// quantifying §4.1's observation that per-block bitmaps are highly
// compressible (rare attribute values produce long zero runs).
type IndexCompression struct {
	// DenseBytes is the dense bitset storage across all values.
	DenseBytes int
	// CompressedBytes is the RLE storage across all values.
	CompressedBytes int
	// MaxRuns is the largest per-value run count.
	MaxRuns int
}

// Ratio returns dense/compressed (≥ 1 means compression helps).
func (c IndexCompression) Ratio() float64 {
	if c.CompressedBytes == 0 {
		return 0
	}
	return float64(c.DenseBytes) / float64(c.CompressedBytes)
}

// CompressionStats compresses every per-value bitset of the index and
// reports the aggregate storage comparison. The engine keeps the dense
// form for O(1) word probes; these stats support capacity planning for
// high-cardinality candidate attributes (TAXI's Location index dominates
// index memory).
func (ix *Index) CompressionStats() IndexCompression {
	var cs IndexCompression
	for v := range ix.perValue {
		bs := ix.perValue[v]
		cs.DenseBytes += bs.NumWords() * 8
		r := Compress(bs)
		cs.CompressedBytes += r.CompressedWords() * 4
		if r.NumRuns() > cs.MaxRuns {
			cs.MaxRuns = r.NumRuns()
		}
	}
	return cs
}
