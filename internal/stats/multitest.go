package stats

import (
	"fmt"
	"math"
	"sort"
)

// HolmBonferroni performs the step-down Holm-Bonferroni procedure at
// family-wise level alpha over the given P-values and returns the indices
// (into pvalues) of the rejected null hypotheses.
//
// The procedure sorts P-values ascending as p_(1) ≤ … ≤ p_(n), finds the
// minimal j with p_(j) > alpha/(n−j+1), and rejects exactly the hypotheses
// ranked before j. It controls the family-wise error rate at alpha for any
// dependence structure and is uniformly more powerful than the plain
// Bonferroni correction (§3.2).
func HolmBonferroni(pvalues []float64, alpha float64) []int {
	n := len(pvalues)
	if n == 0 {
		return nil
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return pvalues[order[a]] < pvalues[order[b]] })
	var rejected []int
	for rank, idx := range order {
		threshold := alpha / float64(n-rank)
		if pvalues[idx] > threshold {
			break
		}
		rejected = append(rejected, idx)
	}
	return rejected
}

// Bonferroni performs the classical single-step Bonferroni correction:
// reject hypothesis i iff p_i ≤ alpha/n. Kept as the ablation baseline for
// the Holm-Bonferroni comparison the paper motivates.
func Bonferroni(pvalues []float64, alpha float64) []int {
	n := len(pvalues)
	if n == 0 {
		return nil
	}
	threshold := alpha / float64(n)
	var rejected []int
	for i, p := range pvalues {
		if p <= threshold {
			rejected = append(rejected, i)
		}
	}
	return rejected
}

// RejectAll implements the union-intersection tester of Lemma 4: reject
// every null hypothesis iff max_i p_i ≤ alpha, otherwise reject none. It
// controls the probability of rejecting one or more true nulls at alpha.
func RejectAll(pvalues []float64, alpha float64) bool {
	for _, p := range pvalues {
		if math.IsNaN(p) || p > alpha {
			return false
		}
	}
	return true
}

// GeometricBudget produces the per-round error budgets used by HistSim
// stage 2: round t (1-based) receives total/2^t, so the series sums to at
// most total. Halve is the canonical iterator form.
type GeometricBudget struct {
	remaining float64
}

// NewGeometricBudget initializes a budget with the given total error mass
// (δ/3 for HistSim stage 2).
func NewGeometricBudget(total float64) (*GeometricBudget, error) {
	if total <= 0 || total >= 1 {
		return nil, fmt.Errorf("stats: budget total %g out of (0,1)", total)
	}
	return &GeometricBudget{remaining: total}, nil
}

// Next returns the budget for the next round (half of what remains) and
// consumes it.
func (g *GeometricBudget) Next() float64 {
	g.remaining /= 2
	return g.remaining
}

// Remaining reports the unconsumed error mass. After t calls to Next it is
// total/2^t, which equals the budget just handed out — the defining
// property of the halving schedule.
func (g *GeometricBudget) Remaining() float64 { return g.remaining }
