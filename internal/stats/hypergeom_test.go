package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLogBinomialSmall(t *testing.T) {
	cases := []struct {
		n, k int64
		want float64
	}{
		{5, 2, math.Log(10)},
		{10, 0, 0},
		{10, 10, 0},
		{6, 3, math.Log(20)},
		{52, 5, math.Log(2598960)},
	}
	for _, c := range cases {
		got := LogBinomial(c.n, c.k)
		if math.Abs(got-c.want) > 1e-9 {
			t.Errorf("LogBinomial(%d,%d) = %g, want %g", c.n, c.k, got, c.want)
		}
	}
}

func TestLogBinomialOutOfRange(t *testing.T) {
	if !math.IsInf(LogBinomial(5, -1), -1) || !math.IsInf(LogBinomial(5, 6), -1) {
		t.Fatal("out-of-range binomial should be -Inf")
	}
}

// Property: Pascal's rule C(n,k) = C(n-1,k-1) + C(n-1,k) in log space.
func TestLogBinomialPascalProperty(t *testing.T) {
	f := func(n8, k8 uint8) bool {
		n := int64(n8%60) + 2
		k := int64(k8) % n
		if k == 0 {
			k = 1
		}
		lhs := math.Exp(LogBinomial(n, k))
		rhs := math.Exp(LogBinomial(n-1, k-1)) + math.Exp(LogBinomial(n-1, k))
		return math.Abs(lhs-rhs) <= 1e-6*lhs
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestNewHypergeometricValidation(t *testing.T) {
	for _, bad := range [][3]int64{{-1, 0, 0}, {5, 6, 2}, {5, 2, 6}, {5, -1, 2}, {5, 2, -1}} {
		if _, err := NewHypergeometric(bad[0], bad[1], bad[2]); err == nil {
			t.Errorf("NewHypergeometric(%v) accepted invalid params", bad)
		}
	}
	if _, err := NewHypergeometric(10, 3, 4); err != nil {
		t.Fatalf("valid params rejected: %v", err)
	}
}

func TestHypergeometricPMFKnown(t *testing.T) {
	// Classic: drawing 2 aces in a 5-card hand from a 52-card deck.
	h, _ := NewHypergeometric(52, 4, 5)
	want := float64(6) * 17296 / 2598960 // C(4,2)*C(48,3)/C(52,5)
	if got := h.PMF(2); math.Abs(got-want) > 1e-12 {
		t.Fatalf("PMF(2) = %g, want %g", got, want)
	}
}

func TestHypergeometricSupport(t *testing.T) {
	h, _ := NewHypergeometric(10, 7, 6)
	lo, hi := h.Support()
	if lo != 3 || hi != 6 {
		t.Fatalf("Support = [%d,%d], want [3,6]", lo, hi)
	}
	if h.PMF(2) != 0 || h.PMF(7) != 0 {
		t.Fatal("PMF outside support should be 0")
	}
}

// Property: the pmf sums to 1 over its support.
func TestHypergeometricPMFSumsToOne(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int64(rng.Intn(200) + 1)
		k := int64(rng.Intn(int(n) + 1))
		m := int64(rng.Intn(int(n) + 1))
		h, err := NewHypergeometric(n, k, m)
		if err != nil {
			return false
		}
		lo, hi := h.Support()
		var sum float64
		for j := lo; j <= hi; j++ {
			sum += h.PMF(j)
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: CDF is monotone nondecreasing, 0 below support, 1 at the top.
func TestHypergeometricCDFMonotoneProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int64(rng.Intn(300) + 2)
		k := int64(rng.Intn(int(n)))
		m := int64(rng.Intn(int(n)))
		h, err := NewHypergeometric(n, k, m)
		if err != nil {
			return false
		}
		lo, hi := h.Support()
		prev := 0.0
		for j := lo - 1; j <= hi+1; j++ {
			c := h.CDF(j)
			if c < prev-1e-12 || c < 0 || c > 1 {
				return false
			}
			prev = c
		}
		return math.Abs(h.CDF(hi)-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestHypergeometricCDFMatchesPMFSum(t *testing.T) {
	h, _ := NewHypergeometric(100, 30, 20)
	var sum float64
	for j := int64(0); j <= 10; j++ {
		sum += h.PMF(j)
		if got := h.CDF(j); math.Abs(got-sum) > 1e-9 {
			t.Fatalf("CDF(%d) = %g, pmf prefix sum = %g", j, got, sum)
		}
	}
}

func TestHypergeometricMoments(t *testing.T) {
	h, _ := NewHypergeometric(1000, 100, 50)
	if mean := h.Mean(); math.Abs(mean-5) > 1e-12 {
		t.Fatalf("Mean = %g, want 5", mean)
	}
	wantVar := 50.0 * 0.1 * 0.9 * (950.0 / 999.0)
	if v := h.Variance(); math.Abs(v-wantVar) > 1e-9 {
		t.Fatalf("Variance = %g, want %g", v, wantVar)
	}
}

func TestHypergeometricMomentsDegenerate(t *testing.T) {
	h := Hypergeometric{N: 0, K: 0, M: 0}
	if h.Mean() != 0 || h.Variance() != 0 {
		t.Fatal("degenerate distribution should have zero moments")
	}
	h1 := Hypergeometric{N: 1, K: 1, M: 1}
	if h1.Variance() != 0 {
		t.Fatal("N=1 variance should be 0")
	}
}

func TestUnderRepPValuesBatchMatchesDirect(t *testing.T) {
	totalN := int64(100000)
	sigma := 0.001 // ⌈σN⌉ = 100
	m := int64(5000)
	counts := []int64{0, 1, 2, 3, 5, 8, 20, 100}
	got, err := UnderRepPValues(counts, totalN, sigma, m)
	if err != nil {
		t.Fatal(err)
	}
	k := int64(math.Ceil(sigma * float64(totalN)))
	h, _ := NewHypergeometric(totalN, k, m)
	for i, c := range counts {
		want := h.CDF(c)
		if math.Abs(got[i]-want) > 1e-9 {
			t.Errorf("P-value for count %d = %g, want %g", c, got[i], want)
		}
	}
}

func TestUnderRepPValuesRareVsCommon(t *testing.T) {
	// A candidate with zero observations out of a large sample should have
	// a tiny P-value; one near its expectation should not be flagged.
	totalN := int64(1_000_000)
	sigma := 0.0008 // expect ≥ 800 tuples ⇒ ~4 in a 5000 sample... use larger m.
	m := int64(500_000)
	pv, err := UnderRepPValues([]int64{0, 400, 390}, totalN, sigma, m)
	if err != nil {
		t.Fatal(err)
	}
	if pv[0] > 1e-50 {
		t.Fatalf("zero-count candidate P-value too large: %g", pv[0])
	}
	// Expected count under the null boundary is m·σ = 400.
	if pv[1] < 0.3 {
		t.Fatalf("at-expectation candidate unexpectedly surprising: %g", pv[1])
	}
	if pv[2] >= pv[1] {
		t.Fatalf("fewer observations should be more surprising: p(390)=%g p(400)=%g", pv[2], pv[1])
	}
}

func TestUnderRepPValuesValidation(t *testing.T) {
	if _, err := UnderRepPValues([]int64{1}, 100, -0.1, 10); err == nil {
		t.Fatal("negative sigma accepted")
	}
	if _, err := UnderRepPValues([]int64{-1}, 100, 0.1, 10); err == nil {
		t.Fatal("negative count accepted")
	}
}

func TestUnderRepPValuesSigmaOne(t *testing.T) {
	// σ=1 ⇒ K=N: every candidate trivially under-represented unless it
	// accounts for the whole sample.
	pv, err := UnderRepPValues([]int64{5, 10}, 100, 1.0, 10)
	if err != nil {
		t.Fatal(err)
	}
	if pv[0] != 0 {
		t.Fatalf("count below support with K=N should have P-value 0, got %g", pv[0])
	}
	if pv[1] != 1 {
		t.Fatalf("count at m with K=N should have P-value 1, got %g", pv[1])
	}
}

// Property: batch P-values are monotone in the observed count.
func TestUnderRepPValuesMonotoneProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		totalN := int64(rng.Intn(100000) + 1000)
		m := int64(rng.Intn(int(totalN/2)) + 10)
		sigma := rng.Float64() * 0.01
		counts := []int64{0, 1, 2, 5, 10, 50}
		pv, err := UnderRepPValues(counts, totalN, sigma, m)
		if err != nil {
			return false
		}
		for i := 1; i < len(pv); i++ {
			if pv[i] < pv[i-1]-1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
