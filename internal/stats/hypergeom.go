// Package stats implements the statistical substrate HistSim depends on:
// hypergeometric distributions (stage-1 rarity testing), the
// Holm-Bonferroni multiple-testing procedure, the union-intersection
// simultaneous tester of Lemma 4, and assorted concentration-bound helpers.
//
// The paper uses Boost's hypergeometric implementation; here everything is
// built on math.Lgamma so the module stays stdlib-only.
package stats

import (
	"fmt"
	"math"
)

// LogBinomial returns ln C(n, k) computed via log-gamma, or -Inf when the
// coefficient is zero (k < 0 or k > n).
func LogBinomial(n, k int64) float64 {
	if k < 0 || k > n {
		return math.Inf(-1)
	}
	if k == 0 || k == n {
		return 0
	}
	ln1, _ := math.Lgamma(float64(n + 1))
	lk1, _ := math.Lgamma(float64(k + 1))
	lnk, _ := math.Lgamma(float64(n - k + 1))
	return ln1 - lk1 - lnk
}

// Hypergeometric is the distribution of the number of "successes" in m
// draws without replacement from a population of size N containing K
// successes: the stage-1 sampling model for the per-candidate tuple counts
// (n_i ~ HypGeo(N, N_i, m)).
type Hypergeometric struct {
	N int64 // population size
	K int64 // number of success states in the population
	M int64 // number of draws
}

// NewHypergeometric validates the parameters and returns the distribution.
func NewHypergeometric(n, k, m int64) (Hypergeometric, error) {
	if n < 0 || k < 0 || m < 0 || k > n || m > n {
		return Hypergeometric{}, fmt.Errorf("stats: invalid hypergeometric parameters N=%d K=%d m=%d", n, k, m)
	}
	return Hypergeometric{N: n, K: k, M: m}, nil
}

// Support returns the inclusive range [lo, hi] of outcomes with nonzero
// probability: max(0, m−(N−K)) ≤ j ≤ min(K, m).
func (h Hypergeometric) Support() (lo, hi int64) {
	lo = h.M - (h.N - h.K)
	if lo < 0 {
		lo = 0
	}
	hi = h.K
	if h.M < hi {
		hi = h.M
	}
	return lo, hi
}

// LogPMF returns ln f(j; N, K, m).
func (h Hypergeometric) LogPMF(j int64) float64 {
	lo, hi := h.Support()
	if j < lo || j > hi {
		return math.Inf(-1)
	}
	return LogBinomial(h.K, j) + LogBinomial(h.N-h.K, h.M-j) - LogBinomial(h.N, h.M)
}

// PMF returns f(j; N, K, m).
func (h Hypergeometric) PMF(j int64) float64 {
	return math.Exp(h.LogPMF(j))
}

// CDF returns P(X ≤ j) = Σ_{i≤j} f(i), the stage-1 under-representation
// P-value when j is the observed per-candidate sample count.
//
// The sum runs over the support only; for the small j values stage 1 cares
// about this is cheap, and successive terms are computed by the recurrence
// f(i+1)/f(i) = (K−i)(m−i) / ((i+1)(N−K−m+i+1)) to avoid re-evaluating
// log-gammas.
func (h Hypergeometric) CDF(j int64) float64 {
	lo, hi := h.Support()
	if j < lo {
		return 0
	}
	if j >= hi {
		return 1
	}
	// Start from the PMF at lo and accumulate with the term recurrence.
	logp := h.LogPMF(lo)
	p := math.Exp(logp)
	sum := p
	for i := lo; i < j; i++ {
		num := float64(h.K-i) * float64(h.M-i)
		den := float64(i+1) * float64(h.N-h.K-h.M+i+1)
		p *= num / den
		sum += p
	}
	if sum > 1 {
		sum = 1
	}
	return sum
}

// Mean returns E[X] = mK/N.
func (h Hypergeometric) Mean() float64 {
	if h.N == 0 {
		return 0
	}
	return float64(h.M) * float64(h.K) / float64(h.N)
}

// Variance returns Var[X] = m (K/N)(1−K/N)(N−m)/(N−1).
func (h Hypergeometric) Variance() float64 {
	if h.N <= 1 {
		return 0
	}
	p := float64(h.K) / float64(h.N)
	fpc := float64(h.N-h.M) / float64(h.N-1)
	return float64(h.M) * p * (1 - p) * fpc
}

// UnderRepPValues computes stage-1 P-values for a batch of candidates in
// O(max_i n_i) hypergeometric term evaluations total (plus a pass over the
// candidates), matching the computation-sharing described in the paper's
// complexity discussion. For each candidate with observed count counts[i]
// it returns
//
//	δ_i = Σ_{j=0}^{counts[i]} f(j; N, ceil(σN), m)
//
// — the probability, under the null "candidate i is not rare"
// (N_i ≥ ⌈σN⌉), of seeing so few of its tuples in the size-m stage-1
// sample. Low δ_i means candidate i is very likely rare.
func UnderRepPValues(counts []int64, totalN int64, sigma float64, m int64) ([]float64, error) {
	if sigma < 0 || sigma > 1 {
		return nil, fmt.Errorf("stats: sigma %g out of [0,1]", sigma)
	}
	k := int64(math.Ceil(sigma * float64(totalN)))
	if k > totalN {
		k = totalN
	}
	h, err := NewHypergeometric(totalN, k, m)
	if err != nil {
		return nil, err
	}
	var maxCount int64
	for _, c := range counts {
		if c < 0 {
			return nil, fmt.Errorf("stats: negative count %d", c)
		}
		if c > maxCount {
			maxCount = c
		}
	}
	lo, hi := h.Support()
	if maxCount > hi {
		maxCount = hi
	}
	// Prefix CDF table over [0, maxCount] shared by all candidates.
	table := make([]float64, maxCount+1)
	if lo == 0 {
		p := h.PMF(0)
		sum := p
		table[0] = sum
		for j := int64(0); j < maxCount; j++ {
			num := float64(h.K-j) * float64(h.M-j)
			den := float64(j+1) * float64(h.N-h.K-h.M+j+1)
			p *= num / den
			sum += p
			if sum > 1 {
				sum = 1
			}
			table[j+1] = sum
		}
	} else {
		// σ so large that even 0 observed successes is outside the support's
		// lower tail: CDF(j) = 0 for j < lo.
		for j := int64(0); j <= maxCount; j++ {
			if j < lo {
				table[j] = 0
			} else {
				table[j] = h.CDF(j)
			}
		}
	}
	out := make([]float64, len(counts))
	for i, c := range counts {
		if c >= int64(len(table)) {
			out[i] = 1 // at or beyond the clamp ⇒ CDF is (effectively) 1
			continue
		}
		out[i] = table[c]
	}
	return out, nil
}
