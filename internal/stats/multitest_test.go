package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestHolmBonferroniTextbook(t *testing.T) {
	// Classic example: p = {0.01, 0.04, 0.03, 0.005} at α = 0.05.
	// Sorted: 0.005 ≤ 0.05/4 and 0.01 ≤ 0.05/3 reject; 0.03 > 0.05/2 stops
	// the step-down, so exactly the two smallest are rejected.
	p := []float64{0.01, 0.04, 0.03, 0.005}
	rej := HolmBonferroni(p, 0.05)
	got := map[int]bool{}
	for _, i := range rej {
		got[i] = true
	}
	if len(rej) != 2 || !got[0] || !got[3] {
		t.Fatalf("expected indices {0,3} rejected, got %v", rej)
	}
}

func TestHolmBonferroniStopsAtFirstFailure(t *testing.T) {
	// Sorted: 0.005 ≤ 0.05/3 ok; 0.03 > 0.05/2 stop. Only one rejection,
	// even though 0.04 ≤ 0.05/1 would pass in isolation.
	p := []float64{0.03, 0.005, 0.04}
	rej := HolmBonferroni(p, 0.05)
	if len(rej) != 1 || rej[0] != 1 {
		t.Fatalf("expected only index 1 rejected, got %v", rej)
	}
}

func TestHolmBonferroniEmpty(t *testing.T) {
	if rej := HolmBonferroni(nil, 0.05); rej != nil {
		t.Fatalf("empty input should reject nothing, got %v", rej)
	}
}

func TestHolmBonferroniNoneRejected(t *testing.T) {
	p := []float64{0.9, 0.8, 0.5}
	if rej := HolmBonferroni(p, 0.05); len(rej) != 0 {
		t.Fatalf("nothing should be rejected, got %v", rej)
	}
}

func TestBonferroniBasic(t *testing.T) {
	p := []float64{0.01, 0.04, 0.2}
	rej := Bonferroni(p, 0.05) // threshold 0.05/3 ≈ 0.0167
	if len(rej) != 1 || rej[0] != 0 {
		t.Fatalf("Bonferroni = %v, want [0]", rej)
	}
	if rej := Bonferroni(nil, 0.05); rej != nil {
		t.Fatalf("empty Bonferroni should be nil")
	}
}

// Property: Holm-Bonferroni rejections are a superset of Bonferroni's
// (uniform power dominance, the paper's reason for preferring it), and
// neither rejects anything when all P-values exceed alpha.
func TestHolmDominatesBonferroniProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(20) + 1
		p := make([]float64, n)
		for i := range p {
			p[i] = rng.Float64()
		}
		alpha := rng.Float64() * 0.2
		holm := map[int]bool{}
		for _, i := range HolmBonferroni(p, alpha) {
			holm[i] = true
		}
		for _, i := range Bonferroni(p, alpha) {
			if !holm[i] {
				return false
			}
		}
		for _, i := range HolmBonferroni(p, alpha) {
			if p[i] > alpha {
				return false // can never reject an individually insignificant test
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Empirical FWER control: with all nulls true (uniform P-values), the
// probability of any rejection is ≤ alpha.
func TestHolmBonferroniFWERControl(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical test skipped in -short mode")
	}
	rng := rand.New(rand.NewSource(42))
	alpha := 0.05
	trials, anyRejection := 2000, 0
	for tr := 0; tr < trials; tr++ {
		p := make([]float64, 10)
		for i := range p {
			p[i] = rng.Float64()
		}
		if len(HolmBonferroni(p, alpha)) > 0 {
			anyRejection++
		}
	}
	// Allow 3 standard errors of slack above alpha.
	limit := alpha + 3*math.Sqrt(alpha*(1-alpha)/float64(trials))
	if rate := float64(anyRejection) / float64(trials); rate > limit {
		t.Fatalf("FWER %g exceeds α=%g (limit %g)", rate, alpha, limit)
	}
}

func TestRejectAll(t *testing.T) {
	if !RejectAll([]float64{0.001, 0.002}, 0.01) {
		t.Fatal("should reject all")
	}
	if RejectAll([]float64{0.001, 0.02}, 0.01) {
		t.Fatal("should reject none when any P-value exceeds alpha")
	}
	if RejectAll([]float64{0.001, math.NaN()}, 0.01) {
		t.Fatal("NaN P-value must block rejection")
	}
	if !RejectAll(nil, 0.01) {
		t.Fatal("empty family is vacuously rejected")
	}
}

func TestGeometricBudget(t *testing.T) {
	g, err := NewGeometricBudget(1.0 / 3)
	if err != nil {
		t.Fatal(err)
	}
	var total float64
	for i := 0; i < 30; i++ {
		total += g.Next()
	}
	if total >= 1.0/3 {
		t.Fatalf("budget overspent: %g", total)
	}
	if math.Abs(total-1.0/3) > 1e-6 {
		t.Fatalf("budget should approach 1/3, got %g", total)
	}
}

func TestGeometricBudgetFirstRounds(t *testing.T) {
	g, _ := NewGeometricBudget(0.01)
	if b := g.Next(); math.Abs(b-0.005) > 1e-15 {
		t.Fatalf("round 1 budget %g, want 0.005", b)
	}
	if b := g.Next(); math.Abs(b-0.0025) > 1e-15 {
		t.Fatalf("round 2 budget %g, want 0.0025", b)
	}
	if r := g.Remaining(); math.Abs(r-0.0025) > 1e-15 {
		t.Fatalf("remaining %g, want 0.0025", r)
	}
}

func TestGeometricBudgetValidation(t *testing.T) {
	for _, bad := range []float64{0, -0.1, 1, 1.5} {
		if _, err := NewGeometricBudget(bad); err == nil {
			t.Errorf("NewGeometricBudget(%g) accepted invalid total", bad)
		}
	}
}
