package ingest

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// manifestName is the table directory's metadata file. It is the root of
// crash recovery: boot trusts only segment files the manifest lists
// (anything else in the directory is a leftover from an interrupted
// compaction and is deleted), then replays the WAL for every row at or
// beyond PersistedRows.
const manifestName = "MANIFEST.json"

// manifest is the durable table metadata, written atomically
// (write-temp + fsync + rename) on creation and after every compaction.
type manifest struct {
	Version int    `json:"version"`
	Schema  Schema `json:"schema"`
	// SealRows is the segment sealing granularity the table was created
	// with; persisted so segment files stay aligned across restarts.
	SealRows int `json:"seal_rows"`
	// PersistedRows counts rows durable in the segment files below; WAL
	// replay skips rows before this point.
	PersistedRows int `json:"persisted_rows"`
	// Segments lists the compacted snapshot-v2 files in row order.
	Segments []manifestSegment `json:"segments"`
}

// manifestSegment locates one compacted segment file.
type manifestSegment struct {
	File     string `json:"file"`
	FirstRow int    `json:"first_row"`
	Rows     int    `json:"rows"`
}

// writeManifest atomically replaces the manifest.
func writeManifest(dir string, m manifest) error {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	tmp := filepath.Join(dir, manifestName+".tmp")
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(append(data, '\n')); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(dir, manifestName)); err != nil {
		return err
	}
	// Best-effort directory sync so the rename itself is durable.
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		_ = d.Close()
	}
	return nil
}

// readManifest loads the manifest; ok is false when none exists (a fresh
// table directory).
func readManifest(dir string) (manifest, bool, error) {
	data, err := os.ReadFile(filepath.Join(dir, manifestName))
	if os.IsNotExist(err) {
		return manifest{}, false, nil
	}
	if err != nil {
		return manifest{}, false, err
	}
	var m manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return manifest{}, false, fmt.Errorf("ingest: parsing %s: %w", manifestName, err)
	}
	if m.Version != 1 {
		return manifest{}, false, fmt.Errorf("ingest: unsupported manifest version %d", m.Version)
	}
	// Structural sanity: segments must tile [0, PersistedRows) exactly.
	at := 0
	for _, s := range m.Segments {
		if s.FirstRow != at || s.Rows <= 0 || strings.ContainsAny(s.File, "/\\") {
			return manifest{}, false, fmt.Errorf("ingest: manifest segment list is inconsistent at row %d", at)
		}
		at += s.Rows
	}
	if at != m.PersistedRows {
		return manifest{}, false, fmt.Errorf("ingest: manifest covers %d rows but declares %d persisted", at, m.PersistedRows)
	}
	return m, true, nil
}

// segFileName names a compacted segment file by its row range.
func segFileName(firstRow, rows int) string {
	return fmt.Sprintf("seg-%016d-%d.fms", firstRow, rows)
}

// removeOrphans deletes segment files the manifest does not list —
// leftovers of a compaction that crashed between writing its file and
// committing the manifest.
func removeOrphans(dir string, m manifest) error {
	listed := make(map[string]bool, len(m.Segments))
	for _, s := range m.Segments {
		listed[s.File] = true
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || listed[name] {
			continue
		}
		if strings.HasPrefix(name, "seg-") && strings.HasSuffix(name, ".fms") {
			if err := os.Remove(filepath.Join(dir, name)); err != nil && !os.IsNotExist(err) {
				return err
			}
		}
		if name == manifestName+".tmp" {
			_ = os.Remove(filepath.Join(dir, name))
		}
	}
	return nil
}
