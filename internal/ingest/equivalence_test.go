package ingest

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"fastmatch/internal/bitmap"
	"fastmatch/internal/colstore"
	"fastmatch/internal/core"
	"fastmatch/internal/engine"
	"fastmatch/internal/histogram"
)

// The acceptance suite: query results over an ingested (and compacted)
// WritableTable must be byte-identical — TopK, histograms, Pruned,
// RunStats, and IOStats — to the same rows batch-loaded through the
// existing inmem Builder and to a batch-written v2 snapshot served by
// the inmem and mmap backends, for all five executors. The ingest path
// preserves the block grid (segments are block-aligned), the dictionary
// code assignment (first-appearance interning, same as AppendRow), and
// the bitmap index bits (stitched per segment, scanned for the tail), so
// any divergence is an ingest bug, not sampling noise.

// batchTable loads rows through the batch Builder, unshuffled — the
// reference the live path must match exactly.
func batchTable(t testing.TB, rows []Row) *colstore.Table {
	t.Helper()
	b := colstore.NewBuilder(64)
	if _, err := b.AddColumn("Z"); err != nil {
		t.Fatal(err)
	}
	if _, err := b.AddColumn("X"); err != nil {
		t.Fatal(err)
	}
	if _, err := b.AddMeasure("m"); err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if err := b.AppendRow(r.Values, r.Measures); err != nil {
			t.Fatal(err)
		}
	}
	return b.Build()
}

func ingestTable(t testing.TB, rows []Row, opts Options) *WritableTable {
	t.Helper()
	wt, err := Open(t.TempDir(), testSchema(), opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { wt.Close() })
	left := rows
	for len(left) > 0 {
		n := 137
		if n > len(left) {
			n = len(left)
		}
		if _, err := wt.Append(left[:n]); err != nil {
			t.Fatal(err)
		}
		left = left[n:]
	}
	return wt
}

func equivParams() core.Params {
	return core.Params{
		K: 3, Epsilon: 0.10, Delta: 0.05, Sigma: 0.002,
		Stage1Samples: 5_000, Metric: histogram.MetricL1,
	}
}

func equivOptions(exec engine.Executor, nb int) engine.Options {
	return engine.Options{
		Params:   equivParams(),
		Executor: exec,
		// One marking window spans all blocks so FastMatch's async
		// lookahead is deterministic (see the engine equivalence suite).
		Lookahead:  nb + 1,
		StartBlock: -1,
		Seed:       11,
		Workers:    4,
	}
}

func allExecutors() []engine.Executor {
	return []engine.Executor{engine.Scan, engine.ParallelScan, engine.ScanMatch, engine.SyncMatch, engine.FastMatch}
}

// canonicalResult strips wall-clock Duration and renders the rest as
// JSON so equality is byte equality.
func canonicalResult(t testing.TB, res *engine.Result) string {
	t.Helper()
	c := *res
	c.Duration = 0
	b, err := json.Marshal(&c)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func runAllExecutors(t *testing.T, name string, ref, got *engine.Engine, nb int) {
	t.Helper()
	q := engine.Query{Z: "Z", X: []string{"X"}}
	for _, target := range []engine.Target{{Uniform: true}, {Candidate: "Z_0"}} {
		for _, exec := range allExecutors() {
			a, err := ref.Run(q, target, equivOptions(exec, nb))
			if err != nil {
				t.Fatal(err)
			}
			b, err := got.Run(q, target, equivOptions(exec, nb))
			if err != nil {
				t.Fatal(err)
			}
			if a.IO != b.IO {
				t.Fatalf("%s/%v/%+v: IOStats diverge: batch %+v, ingest %+v", name, exec, target, a.IO, b.IO)
			}
			ca, cb := canonicalResult(t, a), canonicalResult(t, b)
			if ca != cb {
				t.Fatalf("%s/%v/%+v: results diverge:\nbatch:  %s\ningest: %s", name, exec, target, ca, cb)
			}
		}
	}
}

func TestIngestMatchesBatchLoaded(t *testing.T) {
	rows := genRows(12_000, 21) // not a seal multiple: a live tail remains
	batch := batchTable(t, rows)

	for _, mode := range []struct {
		name    string
		disable bool
	}{{"mmap-compaction", false}, {"heap-compaction", true}} {
		t.Run(mode.name, func(t *testing.T) {
			opts := testOptions()
			opts.DisableMmap = mode.disable
			wt := ingestTable(t, rows, opts)
			if err := wt.CompactNow(); err != nil {
				t.Fatal(err)
			}
			v, err := wt.View()
			if err != nil {
				t.Fatal(err)
			}
			defer v.Release()
			if v.NumRows() != batch.NumRows() || v.NumBlocks() != batch.NumBlocks() {
				t.Fatalf("shape diverges: %d/%d rows, %d/%d blocks",
					v.NumRows(), batch.NumRows(), v.NumBlocks(), batch.NumBlocks())
			}
			runAllExecutors(t, mode.name, engine.New(batch), engine.New(v), batch.NumBlocks())
		})
	}
}

func TestIngestMatchesSnapshotBackends(t *testing.T) {
	rows := genRows(6_000, 22)
	batch := batchTable(t, rows)
	snapPath := filepath.Join(t.TempDir(), "batch.fms")
	if err := colstore.WriteSnapshotFile(batch, snapPath); err != nil {
		t.Fatal(err)
	}
	snapHeap, err := colstore.ReadSnapshotFile(snapPath)
	if err != nil {
		t.Fatal(err)
	}
	snapMmap, err := colstore.OpenMmapFile(snapPath)
	if err != nil {
		t.Fatal(err)
	}
	defer snapMmap.Close()

	wt := ingestTable(t, rows, testOptions())
	if err := wt.CompactNow(); err != nil {
		t.Fatal(err)
	}
	v, err := wt.View()
	if err != nil {
		t.Fatal(err)
	}
	defer v.Release()
	ingestEng := engine.New(v)
	runAllExecutors(t, "vs-snapshot-inmem", engine.New(snapHeap), ingestEng, batch.NumBlocks())
	runAllExecutors(t, "vs-snapshot-mmap", engine.New(snapMmap), ingestEng, batch.NumBlocks())
}

// TestCompactedFileIsByteIdenticalToBatchSnapshot pins the strongest
// form of equivalence: with every row sealed, the single compacted
// segment file and a batch-written v2 snapshot of the same rows are the
// same bytes.
func TestCompactedFileIsByteIdenticalToBatchSnapshot(t *testing.T) {
	rows := genRows(2048, 23) // exactly 4 × SealRows: no tail
	opts := testOptions()
	wt := ingestTable(t, rows, opts)
	if err := wt.CompactNow(); err != nil {
		t.Fatal(err)
	}
	st := wt.Stats()
	if st.PersistedRows != 2048 || st.SegmentFiles != 1 {
		t.Fatalf("expected one file covering all rows, got %+v", st)
	}
	segBytes, err := os.ReadFile(filepath.Join(wt.Dir(), segFileName(0, 2048)))
	if err != nil {
		t.Fatal(err)
	}
	var batchBuf bytes.Buffer
	if err := colstore.WriteSnapshot(batchTable(t, rows), &batchBuf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(segBytes, batchBuf.Bytes()) {
		t.Fatalf("compacted segment file (%d bytes) differs from batch snapshot (%d bytes)",
			len(segBytes), batchBuf.Len())
	}
}

// readerOnly hides TableView's BlockIndex so bitmap.Build takes the
// full-scan path.
type readerOnly struct{ colstore.Reader }

func TestStitchedIndexMatchesScanBuilt(t *testing.T) {
	rows := genRows(5_000, 24)
	wt := ingestTable(t, rows, testOptions())
	if err := wt.CompactNow(); err != nil {
		t.Fatal(err)
	}
	// Append more after compaction so the view spans a file-backed
	// segment, memory segments, and an unsealed tail.
	for i := 0; i < 8; i++ {
		if _, err := wt.Append(genRows(150, int64(30+i))); err != nil {
			t.Fatal(err)
		}
	}
	v, err := wt.View()
	if err != nil {
		t.Fatal(err)
	}
	defer v.Release()
	for _, column := range []string{"Z", "X"} {
		stitched, err := bitmap.Build(v, column)
		if err != nil {
			t.Fatal(err)
		}
		scanned, err := bitmap.Build(readerOnly{v}, column)
		if err != nil {
			t.Fatal(err)
		}
		if stitched.NumValues() != scanned.NumValues() || stitched.NumBlocks() != scanned.NumBlocks() {
			t.Fatalf("%s: index shape diverges: %d/%d values, %d/%d blocks", column,
				stitched.NumValues(), scanned.NumValues(), stitched.NumBlocks(), scanned.NumBlocks())
		}
		for val := 0; val < scanned.NumValues(); val++ {
			for b := 0; b < scanned.NumBlocks(); b++ {
				if stitched.Contains(uint32(val), b) != scanned.Contains(uint32(val), b) {
					t.Fatalf("%s: index bit (%d, %d) diverges", column, val, b)
				}
			}
		}
	}
}

// TestConcurrentIngestAndQuery hammers a table with concurrent appends,
// queries, compactions, and stats reads (run with -race), then checks
// the drained table answers exactly like a batch load of the same rows.
func TestConcurrentIngestAndQuery(t *testing.T) {
	const batchRows = 137
	const batchCount = 30
	all := genRows(batchRows*batchCount, 25)
	opts := testOptions()
	wt, err := Open(t.TempDir(), testSchema(), opts)
	if err != nil {
		t.Fatal(err)
	}
	defer wt.Close()

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	wg.Add(1)
	go func() { // appender
		defer wg.Done()
		for i := 0; i < batchCount; i++ {
			if _, err := wt.Append(all[i*batchRows : (i+1)*batchRows]); err != nil {
				errs <- err
				return
			}
		}
	}()
	for g := 0; g < 2; g++ { // queriers
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 15; i++ {
				v, err := wt.View()
				if err != nil {
					errs <- err
					return
				}
				if v.NumRows() == 0 {
					v.Release()
					continue
				}
				e := engine.New(v)
				o := equivOptions(engine.FastMatch, v.NumBlocks())
				if _, err := e.Run(engine.Query{Z: "Z", X: []string{"X"}}, engine.Target{Uniform: true}, o); err != nil {
					errs <- fmt.Errorf("query under ingest: %w", err)
				}
				_ = wt.Stats()
				v.Release()
			}
		}()
	}
	wg.Add(1)
	go func() { // compactor
		defer wg.Done()
		for i := 0; i < 5; i++ {
			if err := wt.CompactNow(); err != nil {
				errs <- fmt.Errorf("compact under ingest: %w", err)
			}
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	if err := wt.CompactNow(); err != nil {
		t.Fatal(err)
	}
	v, err := wt.View()
	if err != nil {
		t.Fatal(err)
	}
	defer v.Release()
	batch := batchTable(t, all)
	runAllExecutors(t, "drained", engine.New(batch), engine.New(v), batch.NumBlocks())
}

// TestCrashRecoveryServesAckedRowsExactly simulates kill -9 after a
// compaction plus further acked appends plus a torn in-flight record:
// reopening must serve exactly the acked rows, byte-identical to a batch
// load of them.
func TestCrashRecoveryServesAckedRowsExactly(t *testing.T) {
	dir := t.TempDir()
	opts := testOptions()
	opts.NoSync = false
	wt, err := Open(dir, testSchema(), opts)
	if err != nil {
		t.Fatal(err)
	}
	all := genRows(1500, 26)
	for i := 0; i < 1300; i += 130 {
		if _, err := wt.Append(all[i : i+130]); err != nil {
			t.Fatal(err)
		}
	}
	if err := wt.CompactNow(); err != nil { // persists the sealed 1024
		t.Fatal(err)
	}
	if _, err := wt.Append(all[1300:1500]); err != nil {
		t.Fatal(err)
	}
	// Crash: no Close. Inject a torn record as if a 1501st-row batch was
	// half-written when the process died.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	newest := ""
	for _, e := range entries {
		if _, ok := parseWalFileName(e.Name()); ok && e.Name() > newest {
			newest = e.Name()
		}
	}
	if newest == "" {
		t.Fatal("no WAL file found")
	}
	f, err := os.OpenFile(filepath.Join(dir, newest), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0xff, 0x00, 0x00, 0x00, 0x99}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	wt2, err := Open(dir, Schema{}, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer wt2.Close()
	if wt2.Rows() != 1500 {
		t.Fatalf("recovered %d rows, want exactly the 1500 acked", wt2.Rows())
	}
	v, err := wt2.View()
	if err != nil {
		t.Fatal(err)
	}
	defer v.Release()
	batch := batchTable(t, all)
	runAllExecutors(t, "post-crash", engine.New(batch), engine.New(v), batch.NumBlocks())
}
