package ingest

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"fastmatch/internal/engine"
)

// dirListing returns the names of WAL and segment files in dir.
func dirListing(t *testing.T, dir string) (walFiles, segFiles []string) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if _, ok := parseWalFileName(e.Name()); ok {
			walFiles = append(walFiles, e.Name())
		}
		if strings.HasPrefix(e.Name(), "seg-") && strings.HasSuffix(e.Name(), ".fms") {
			segFiles = append(segFiles, e.Name())
		}
	}
	return walFiles, segFiles
}

func TestCompactionPersistsAndTruncatesWAL(t *testing.T) {
	dir := t.TempDir()
	wt, err := Open(dir, testSchema(), testOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer wt.Close()
	appendAll(t, wt, genRows(1300, 31)) // seals 1024 (SealRows=512), tail 276
	if err := wt.CompactNow(); err != nil {
		t.Fatal(err)
	}
	st := wt.Stats()
	if st.PersistedRows != 1024 || st.SegmentFiles != 1 || st.Compactions != 1 {
		t.Fatalf("bad compaction state: %+v", st)
	}
	walFiles, segFiles := dirListing(t, dir)
	if len(segFiles) != 1 {
		t.Fatalf("want 1 segment file, got %v", segFiles)
	}
	// The pre-compaction WAL file still holds the unsealed tail rows
	// (1024–1300), so it must survive; the fresh active file joins it.
	if len(walFiles) != 2 {
		t.Fatalf("want rotated WAL (2 files), got %v", walFiles)
	}

	// A second cycle with more rows: the old WAL file is now fully
	// covered once its tail rows seal and persist.
	appendAll(t, wt, genRows(800, 32)) // total 2100, seals through 2048
	if err := wt.CompactNow(); err != nil {
		t.Fatal(err)
	}
	st = wt.Stats()
	if st.PersistedRows != 2048 {
		t.Fatalf("second compaction: %+v", st)
	}
	walFiles, _ = dirListing(t, dir)
	for _, f := range walFiles {
		start, _ := parseWalFileName(f)
		if start < 1024 {
			t.Fatalf("WAL file %s covers persisted rows and should be gone (files: %v)", f, walFiles)
		}
	}
}

func TestMergeFilesPolicyBoundsFileCount(t *testing.T) {
	dir := t.TempDir()
	opts := testOptions()
	opts.MaxSegmentFiles = 2
	wt, err := Open(dir, testSchema(), opts)
	if err != nil {
		t.Fatal(err)
	}
	defer wt.Close()
	for i := 0; i < 4; i++ {
		appendAll(t, wt, genRows(512, int64(40+i)))
		if err := wt.CompactNow(); err != nil {
			t.Fatal(err)
		}
	}
	_, segFiles := dirListing(t, dir)
	if len(segFiles) > opts.MaxSegmentFiles {
		t.Fatalf("merge policy violated: %d files on disk (%v), max %d", len(segFiles), segFiles, opts.MaxSegmentFiles)
	}
	st := wt.Stats()
	if st.PersistedRows != 2048 || st.SegmentFiles != len(segFiles) {
		t.Fatalf("inconsistent state after merges: %+v", st)
	}
}

func TestReopenFromSegmentsAndWAL(t *testing.T) {
	dir := t.TempDir()
	opts := testOptions()
	opts.NoSync = false
	wt, err := Open(dir, testSchema(), opts)
	if err != nil {
		t.Fatal(err)
	}
	rows := genRows(1400, 33)
	appendAll(t, wt, rows)
	if err := wt.CompactNow(); err != nil {
		t.Fatal(err)
	}
	if err := wt.Close(); err != nil {
		t.Fatal(err)
	}

	wt2, err := Open(dir, Schema{}, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer wt2.Close()
	if wt2.Rows() != 1400 {
		t.Fatalf("reopened with %d rows, want 1400", wt2.Rows())
	}
	st := wt2.Stats()
	if st.PersistedRows != 1024 || st.ReplayedRows != 1400-1024 {
		t.Fatalf("reopen state: %+v", st)
	}
	v, err := wt2.View()
	if err != nil {
		t.Fatal(err)
	}
	defer v.Release()
	batch := batchTable(t, rows)
	runAllExecutors(t, "reopened", engine.New(batch), engine.New(v), batch.NumBlocks())
}

// TestViewSurvivesCompactionSwap pins snapshot isolation: a view taken
// before compaction keeps answering identically afterwards, even though
// its memory segments were swapped for a file-backed one (and, after a
// merge, the file it pinned was unlinked).
func TestViewSurvivesCompactionSwap(t *testing.T) {
	opts := testOptions()
	opts.MaxSegmentFiles = 1
	wt, err := Open(t.TempDir(), testSchema(), opts)
	if err != nil {
		t.Fatal(err)
	}
	defer wt.Close()
	rows := genRows(1100, 34)
	appendAll(t, wt, rows)

	v, err := wt.View()
	if err != nil {
		t.Fatal(err)
	}
	defer v.Release()
	e := engine.New(v)
	q := engine.Query{Z: "Z", X: []string{"X"}}
	o := equivOptions(engine.FastMatch, v.NumBlocks())
	before, err := e.Run(q, engine.Target{Uniform: true}, o)
	if err != nil {
		t.Fatal(err)
	}

	// First cycle persists the sealed rows; v2 then pins the resulting
	// file-backed segment.
	if err := wt.CompactNow(); err != nil {
		t.Fatal(err)
	}
	v2, err := wt.View()
	if err != nil {
		t.Fatal(err)
	}
	defer v2.Release()
	before2, err := engine.New(v2).Run(q, engine.Target{Uniform: true}, o)
	if err != nil {
		t.Fatal(err)
	}

	// Second cycle persists more rows and (MaxSegmentFiles=1) merges,
	// unlinking the file v2 still has pinned (and mapped).
	appendAll(t, wt, genRows(600, 35))
	if err := wt.CompactNow(); err != nil {
		t.Fatal(err)
	}

	after, err := engine.New(v).Run(q, engine.Target{Uniform: true}, o)
	if err != nil {
		t.Fatal(err)
	}
	if canonicalResult(t, before) != canonicalResult(t, after) {
		t.Fatal("pinned view's results changed across compaction swaps")
	}
	if v.NumRows() != 1100 {
		t.Fatalf("pinned view grew: %d rows", v.NumRows())
	}
	after2, err := engine.New(v2).Run(q, engine.Target{Uniform: true}, o)
	if err != nil {
		t.Fatal(err)
	}
	if canonicalResult(t, before2) != canonicalResult(t, after2) {
		t.Fatal("view pinning an unlinked segment file changed its results")
	}
}

func TestBootCleansOrphanSegmentFiles(t *testing.T) {
	dir := t.TempDir()
	wt, err := Open(dir, testSchema(), testOptions())
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, wt, genRows(600, 36))
	if err := wt.CompactNow(); err != nil {
		t.Fatal(err)
	}
	if err := wt.Close(); err != nil {
		t.Fatal(err)
	}
	// A crashed compaction leaves a file the manifest never adopted.
	orphan := filepath.Join(dir, segFileName(512, 512))
	if err := os.WriteFile(orphan, []byte("not a snapshot"), 0o644); err != nil {
		t.Fatal(err)
	}
	wt2, err := Open(dir, Schema{}, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer wt2.Close()
	if _, err := os.Stat(orphan); !os.IsNotExist(err) {
		t.Fatal("orphan segment file survived boot")
	}
}
