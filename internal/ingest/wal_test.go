package ingest

import (
	"encoding/binary"
	"os"
	"path/filepath"
	"testing"
)

func testSchema() Schema {
	return Schema{Columns: []string{"Z", "X"}, Measures: []string{"m"}, BlockSize: 64}
}

func mkRow(z, x string, m float64) Row {
	return Row{Values: map[string]string{"Z": z, "X": x}, Measures: map[string]float64{"m": m}}
}

func TestWALRecordRoundtrip(t *testing.T) {
	schema := testSchema()
	rows := []Row{mkRow("a", "p", 1.5), mkRow("b", "q", 0), mkRow("", "r", 2.25)}
	payload := encodeWALRecord(nil, schema, 42, rows)
	first, got, err := decodeWALRecord(payload, schema)
	if err != nil {
		t.Fatal(err)
	}
	if first != 42 {
		t.Fatalf("firstRow = %d, want 42", first)
	}
	if len(got) != len(rows) {
		t.Fatalf("decoded %d rows, want %d", len(got), len(rows))
	}
	for i := range rows {
		for _, c := range schema.Columns {
			if got[i].Values[c] != rows[i].Values[c] {
				t.Fatalf("row %d column %s: %q != %q", i, c, got[i].Values[c], rows[i].Values[c])
			}
		}
		if got[i].Measures["m"] != rows[i].Measures["m"] {
			t.Fatalf("row %d measure: %g != %g", i, got[i].Measures["m"], rows[i].Measures["m"])
		}
	}
}

func TestWALDecodeRejectsTruncatedPayload(t *testing.T) {
	schema := testSchema()
	payload := encodeWALRecord(nil, schema, 0, []Row{mkRow("a", "p", 1)})
	for cut := 1; cut < len(payload); cut++ {
		if _, _, err := decodeWALRecord(payload[:len(payload)-cut], schema); err == nil {
			t.Fatalf("no error decoding payload truncated by %d bytes", cut)
		}
	}
}

// writeTestWAL writes a WAL file with the given batches via the real
// writer and returns its path.
func writeTestWAL(t *testing.T, dir string, schema Schema, batches [][]Row) string {
	t.Helper()
	w := &wal{dir: dir}
	if err := w.rotate(0); err != nil {
		t.Fatal(err)
	}
	row := 0
	for _, b := range batches {
		if err := w.append(schema, row, b, true); err != nil {
			t.Fatal(err)
		}
		row += len(b)
	}
	if err := w.close(); err != nil {
		t.Fatal(err)
	}
	return filepath.Join(dir, w.active.name)
}

func TestWALReplayStopsAtTornTail(t *testing.T) {
	dir := t.TempDir()
	schema := testSchema()
	path := writeTestWAL(t, dir, schema, [][]Row{
		{mkRow("a", "p", 1), mkRow("b", "q", 2)},
		{mkRow("c", "r", 3)},
	})
	// Simulate a crash mid-write: a record header promising more payload
	// than was flushed.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	var torn [8]byte
	binary.LittleEndian.PutUint32(torn[0:4], 100)
	binary.LittleEndian.PutUint32(torn[4:8], 0xdeadbeef)
	if _, err := f.Write(torn[:]); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("partial")); err != nil {
		t.Fatal(err)
	}
	f.Close()
	tornSize, _ := os.Stat(path)

	var replayed int
	files, err := walReplay(dir, schema, func(first int, rows []Row) error {
		if first != replayed {
			t.Fatalf("record firstRow %d, want %d", first, replayed)
		}
		replayed += len(rows)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if replayed != 3 {
		t.Fatalf("replayed %d rows, want 3", replayed)
	}
	if len(files) != 1 || files[0].endRow != 3 {
		t.Fatalf("unexpected file bookkeeping: %+v", files)
	}
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if st.Size() >= tornSize.Size() {
		t.Fatalf("torn tail not truncated: %d >= %d", st.Size(), tornSize.Size())
	}
	if st.Size() != files[0].bytes {
		t.Fatalf("file size %d != tracked bytes %d", st.Size(), files[0].bytes)
	}
}

func TestWALReplayStopsAtCorruptCRC(t *testing.T) {
	dir := t.TempDir()
	schema := testSchema()
	path := writeTestWAL(t, dir, schema, [][]Row{
		{mkRow("a", "p", 1)},
		{mkRow("b", "q", 2)},
	})
	// Flip one payload byte of the second record: its CRC now fails, so
	// replay keeps only the first record.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	var replayed int
	if _, err := walReplay(dir, schema, func(_ int, rows []Row) error {
		replayed += len(rows)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if replayed != 1 {
		t.Fatalf("replayed %d rows, want 1 (corrupt record must be dropped)", replayed)
	}
}

func TestWALHeaderlessFileIsDropped(t *testing.T) {
	dir := t.TempDir()
	schema := testSchema()
	path := filepath.Join(dir, walFileName(0))
	if err := os.WriteFile(path, []byte("FMW"), 0o644); err != nil {
		t.Fatal(err)
	}
	files, err := walReplay(dir, schema, func(int, []Row) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 1 || files[0].bytes != 0 {
		t.Fatalf("unexpected bookkeeping: %+v", files)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("headerless WAL file not removed")
	}
}
