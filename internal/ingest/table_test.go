package ingest

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"testing"
	"time"
)

// testOptions disables the background compactor so tests drive
// compaction (and simulate crashes by abandoning tables) deterministically.
func testOptions() Options {
	return Options{SealRows: 512, CompactInterval: -1, NoSync: true}
}

// genRows produces deterministic skewed rows: Z with a long-tailed
// domain, X with a small one, and a non-negative measure.
func genRows(n int, seed int64) []Row {
	rng := rand.New(rand.NewSource(seed))
	rows := make([]Row, n)
	for i := range rows {
		z := int(rng.ExpFloat64() * 6)
		if z > 29 {
			z = 29
		}
		rows[i] = mkRow(
			fmt.Sprintf("Z_%d", z),
			fmt.Sprintf("X_%d", rng.Intn(8)),
			float64(rng.Intn(1000))/10,
		)
	}
	return rows
}

// appendAll appends rows in uneven batches, returning the batch count.
func appendAll(t *testing.T, wt *WritableTable, rows []Row) int {
	t.Helper()
	batches := 0
	for len(rows) > 0 {
		n := 137
		if n > len(rows) {
			n = len(rows)
		}
		if _, err := wt.Append(rows[:n]); err != nil {
			t.Fatal(err)
		}
		rows = rows[n:]
		batches++
	}
	return batches
}

func TestOpenValidation(t *testing.T) {
	if _, err := Open(t.TempDir(), Schema{}, testOptions()); err == nil {
		t.Fatal("open with empty schema on a fresh dir must fail")
	}
	if _, err := Open(t.TempDir(), Schema{Columns: []string{"a", "a"}}, testOptions()); err == nil {
		t.Fatal("duplicate column must fail")
	}
	if _, err := Open(t.TempDir(), Schema{Columns: []string{"a"}, Measures: []string{"a"}}, testOptions()); err == nil {
		t.Fatal("column/measure name collision must fail")
	}
}

func TestAppendValidation(t *testing.T) {
	wt, err := Open(t.TempDir(), testSchema(), testOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer wt.Close()
	if _, err := wt.Append(nil); err == nil {
		t.Fatal("empty batch must fail")
	}
	if _, err := wt.Append([]Row{{Values: map[string]string{"Z": "a"}}}); err == nil {
		t.Fatal("missing column must fail")
	}
	if _, err := wt.Append([]Row{{
		Values:   map[string]string{"Z": "a", "X": "b"},
		Measures: map[string]float64{"m": -1},
	}}); err == nil {
		t.Fatal("negative measure must fail")
	}
	for _, v := range []float64{math.NaN(), math.Inf(1)} {
		if _, err := wt.Append([]Row{{
			Values:   map[string]string{"Z": "a", "X": "b"},
			Measures: map[string]float64{"m": v},
		}}); err == nil || !errors.Is(err, ErrInvalidRow) {
			t.Fatalf("non-finite measure %g: err = %v, want ErrInvalidRow", v, err)
		}
	}
	if _, err := wt.Append([]Row{{
		Values:   map[string]string{"Z": "a", "X": "b", "Zz": "typo"},
		Measures: map[string]float64{"m": 1},
	}}); err == nil || !errors.Is(err, ErrInvalidRow) {
		t.Fatal("unknown column key must fail (the JSON path must not silently drop data)")
	}
	if wt.Rows() != 0 {
		t.Fatalf("failed appends must leave the table empty, got %d rows", wt.Rows())
	}
}

func TestSealRowsRoundToBlockMultiple(t *testing.T) {
	wt, err := Open(t.TempDir(), testSchema(), Options{SealRows: 100, CompactInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer wt.Close()
	if wt.opts.SealRows%wt.schema.BlockSize != 0 {
		t.Fatalf("SealRows %d not a multiple of block size %d", wt.opts.SealRows, wt.schema.BlockSize)
	}
}

func TestViewSnapshotIsolation(t *testing.T) {
	wt, err := Open(t.TempDir(), testSchema(), testOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer wt.Close()
	appendAll(t, wt, genRows(1000, 1))

	v1, err := wt.View()
	if err != nil {
		t.Fatal(err)
	}
	defer v1.Release()
	col1, err := v1.ColumnByName("Z")
	if err != nil {
		t.Fatal(err)
	}
	rows1, card1 := v1.NumRows(), col1.Cardinality()

	// Append more rows including a brand-new dictionary value.
	if _, err := wt.Append([]Row{mkRow("Z_brand_new", "X_0", 1)}); err != nil {
		t.Fatal(err)
	}
	appendAll(t, wt, genRows(700, 2))

	if v1.NumRows() != rows1 || col1.Cardinality() != card1 {
		t.Fatalf("view mutated: rows %d→%d, card %d→%d", rows1, v1.NumRows(), card1, col1.Cardinality())
	}
	if _, ok := col1.Dictionary().Code("Z_brand_new"); ok {
		t.Fatal("old view's dictionary sees a value interned after the snapshot")
	}

	v2, err := wt.View()
	if err != nil {
		t.Fatal(err)
	}
	defer v2.Release()
	if v2.NumRows() != 1701 {
		t.Fatalf("new view has %d rows, want 1701", v2.NumRows())
	}
	col2, _ := v2.ColumnByName("Z")
	if _, ok := col2.Dictionary().Code("Z_brand_new"); !ok {
		t.Fatal("new view's dictionary missing the appended value")
	}
	if v2.Generation() <= v1.Generation() {
		t.Fatalf("generation did not advance: %d <= %d", v2.Generation(), v1.Generation())
	}
}

func TestViewCachingPerGeneration(t *testing.T) {
	wt, err := Open(t.TempDir(), testSchema(), testOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer wt.Close()
	appendAll(t, wt, genRows(100, 3))
	a, _ := wt.View()
	b, _ := wt.View()
	if a != b {
		t.Fatal("same-generation views must share the cached snapshot")
	}
	a.Release()
	b.Release()
	if _, err := wt.Append(genRows(1, 4)); err != nil {
		t.Fatal(err)
	}
	c, _ := wt.View()
	defer c.Release()
	if c == a {
		t.Fatal("view not refreshed after append")
	}
}

func TestReopenReplaysWAL(t *testing.T) {
	dir := t.TempDir()
	opts := testOptions()
	opts.NoSync = false
	wt, err := Open(dir, testSchema(), opts)
	if err != nil {
		t.Fatal(err)
	}
	rows := genRows(1300, 5)
	appendAll(t, wt, rows)
	acked := wt.Rows()
	// Simulated crash: no Close, no compaction — everything must come
	// back from the WAL alone.
	wt2, err := Open(dir, Schema{}, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer wt2.Close()
	if wt2.Rows() != acked {
		t.Fatalf("replayed %d rows, want %d", wt2.Rows(), acked)
	}
	st := wt2.Stats()
	if st.ReplayedRows != int64(acked) {
		t.Fatalf("Stats.ReplayedRows = %d, want %d", st.ReplayedRows, acked)
	}
	// The reopened table keeps appending where the log left off.
	if _, err := wt2.Append(genRows(10, 6)); err != nil {
		t.Fatal(err)
	}
	if wt2.Rows() != acked+10 {
		t.Fatalf("rows after reopen+append = %d, want %d", wt2.Rows(), acked+10)
	}
}

func TestReopenSchemaMismatch(t *testing.T) {
	dir := t.TempDir()
	wt, err := Open(dir, testSchema(), testOptions())
	if err != nil {
		t.Fatal(err)
	}
	wt.Close()
	if _, err := Open(dir, Schema{Columns: []string{"other"}, BlockSize: 64}, testOptions()); err == nil {
		t.Fatal("schema mismatch on reopen must fail")
	}
}

func TestStatsCounters(t *testing.T) {
	wt, err := Open(t.TempDir(), testSchema(), testOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer wt.Close()
	batches := appendAll(t, wt, genRows(1200, 7))
	st := wt.Stats()
	if st.Rows != 1200 || st.AppendedRows != 1200 || st.AppendBatches != int64(batches) {
		t.Fatalf("bad counters: %+v", st)
	}
	if st.SealedRows != 1024 || st.Seals != 2 || st.Segments != 2 {
		t.Fatalf("bad seal state (SealRows=512): %+v", st)
	}
	if st.WALBytes == 0 || st.WALFiles != 1 {
		t.Fatalf("bad WAL accounting: %+v", st)
	}
	mr, ok := st.MeasureRanges["m"]
	if !ok || mr.Min < 0 || mr.Max > 100 || mr.Min > mr.Max {
		t.Fatalf("bad measure range: %+v", st.MeasureRanges)
	}
}

func TestMeasureRangesArePerMeasure(t *testing.T) {
	schema := Schema{Columns: []string{"Z"}, Measures: []string{"a", "b"}, BlockSize: 64}
	wt, err := Open(t.TempDir(), schema, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer wt.Close()
	if _, err := wt.Append([]Row{{
		Values:   map[string]string{"Z": "z"},
		Measures: map[string]float64{"a": 100, "b": 5},
	}}); err != nil {
		t.Fatal(err)
	}
	mr := wt.Stats().MeasureRanges
	if mr["a"] != (MeasureRange{Min: 100, Max: 100}) || mr["b"] != (MeasureRange{Min: 5, Max: 5}) {
		t.Fatalf("cross-measure contamination in ranges: %+v", mr)
	}
}

func TestReopenAdoptsStoredBlockSize(t *testing.T) {
	dir := t.TempDir()
	schema := Schema{Columns: []string{"Z", "X"}, Measures: []string{"m"}, BlockSize: 512}
	wt, err := Open(dir, schema, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	wt.Close()
	// Re-open naming the columns but omitting the (non-default) block
	// size: the stored value must be adopted, not defaulted to 256.
	wt2, err := Open(dir, Schema{Columns: []string{"Z", "X"}, Measures: []string{"m"}}, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer wt2.Close()
	if wt2.Schema().BlockSize != 512 {
		t.Fatalf("block size = %d, want stored 512", wt2.Schema().BlockSize)
	}
}

func TestCloseStopsBackgroundCompactor(t *testing.T) {
	opts := testOptions()
	opts.CompactInterval = time.Millisecond
	wt, err := Open(t.TempDir(), testSchema(), opts)
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, wt, genRows(600, 8))
	if err := wt.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := wt.Append(genRows(1, 9)); err == nil {
		t.Fatal("append after close must fail")
	}
	if _, err := wt.View(); err == nil {
		t.Fatal("view after close must fail")
	}
	if err := wt.Close(); err != nil {
		t.Fatal("double close must be a no-op")
	}
}
