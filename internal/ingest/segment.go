package ingest

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"

	"fastmatch/internal/bitmap"
	"fastmatch/internal/colstore"
)

// zoneMaps are a sealed segment's data-skipping summaries, computed once
// at seal (or load) time from an O(segment rows) scan:
//
//   - presence: per categorical column, a bitset over the dictionary code
//     space (at seal time) with a 1 for every code the segment contains.
//     Index stitching consults it to skip values a segment never holds —
//     with long-tailed attributes most values are absent from most
//     segments, so most per-value ORs are skipped outright.
//   - min/max: per measure column, the observed value range, aggregated
//     into table-level Stats.MeasureRanges.
type zoneMaps struct {
	presence map[string]*bitmap.Bitset
	min, max map[string]float64
}

// buildZoneMaps scans a block-aligned reader once.
func buildZoneMaps(r colstore.Reader) (zoneMaps, error) {
	z := zoneMaps{
		presence: make(map[string]*bitmap.Bitset),
		min:      make(map[string]float64),
		max:      make(map[string]float64),
	}
	rows := r.NumRows()
	for _, name := range r.Columns() {
		col, err := r.ColumnByName(name)
		if err != nil {
			return zoneMaps{}, err
		}
		bs := bitmap.NewBitset(col.Cardinality())
		for _, code := range col.Codes(0, rows) {
			bs.Set(int(code))
		}
		z.presence[name] = bs
	}
	for _, name := range r.MeasureNames() {
		m, err := r.MeasureByName(name)
		if err != nil {
			return zoneMaps{}, err
		}
		vals := m.Values(0, rows)
		if len(vals) == 0 {
			continue
		}
		lo, hi := vals[0], vals[0]
		for _, v := range vals[1:] {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		z.min[name], z.max[name] = lo, hi
	}
	return z, nil
}

// segment is one sealed, immutable, block-aligned run of rows. Segments
// are refcounted: the table's canonical list holds one reference and
// every published view holds one per segment it spans. A segment swapped
// out by compaction stays fully readable for the views that pinned it;
// the last unpin releases its resources (cached indexes, and the mmap
// handle for file-backed segments).
type segment struct {
	firstRow int
	rows     int
	blockOff int // block offset of the segment's first block
	blocks   int
	reader   colstore.Reader // block-aligned view of just this segment's rows
	closer   io.Closer       // non-nil for mmap-backed segments
	file     string          // compacted snapshot file, "" if memory-only
	zone     zoneMaps
	pins     atomic.Int64
	idxMu    sync.Mutex
	idx      map[string]*bitmap.Index
}

// openSegmentReader opens a compacted segment file as a Reader: through
// the zero-copy mmap backend by default (which itself falls back to heap
// materialization on unsupported platforms), or the heap snapshot reader
// when disableMmap is set. The shared helper keeps boot-loaded and
// compaction-produced segments on identical open behavior.
func openSegmentReader(path string, disableMmap bool) (colstore.Reader, io.Closer, error) {
	if disableMmap {
		tbl, err := colstore.ReadSnapshotFile(path)
		if err != nil {
			return nil, nil, err
		}
		return tbl, nil, nil
	}
	mt, err := colstore.OpenMmapFile(path)
	if err != nil {
		return nil, nil, err
	}
	return mt, mt, nil
}

// newSegment wraps a block-aligned reader (rows must be a multiple of
// the table block size except for boot-loaded files, which are aligned
// by construction) and computes its zone maps.
func newSegment(firstRow int, r colstore.Reader, file string, closer io.Closer) (*segment, error) {
	z, err := buildZoneMaps(r)
	if err != nil {
		return nil, err
	}
	s := &segment{
		firstRow: firstRow,
		rows:     r.NumRows(),
		blockOff: firstRow / r.BlockSize(),
		blocks:   r.NumBlocks(),
		reader:   r,
		closer:   closer,
		file:     file,
		zone:     z,
		idx:      make(map[string]*bitmap.Index),
	}
	s.pins.Store(1) // the canonical list's reference
	return s, nil
}

// blockStats surfaces the segment reader's own per-block statistics
// when its backend carries them (heap tables and mapped snapshots both
// do), giving view-level skipping block granularity inside sealed
// segments. Returns nil when the backend has none; callers then fall
// back to the segment-granular zone maps.
func (s *segment) blockStats() colstore.BlockStats {
	if br, ok := s.reader.(colstore.BlockStatsReader); ok {
		return br.BlockStats()
	}
	return nil
}

// pin takes a reference; callers must hold an existing reference (the
// table's mutex guarantees that for the canonical list).
func (s *segment) pin() { s.pins.Add(1) }

// unpin drops a reference, releasing resources at zero.
func (s *segment) unpin() {
	if s.pins.Add(-1) != 0 {
		return
	}
	s.idxMu.Lock()
	s.idx = nil
	s.idxMu.Unlock()
	if s.closer != nil {
		_ = s.closer.Close()
	}
}

// blockIndex returns (building and caching on first use) the segment's
// own bitmap index for a column — block bits are segment-local, shifted
// into place by the view-level stitch. Immutable once built, so it is
// shared across every view and generation that spans this segment: index
// maintenance cost is O(new data), not O(table), per generation.
func (s *segment) blockIndex(column string) (*bitmap.Index, error) {
	s.idxMu.Lock()
	defer s.idxMu.Unlock()
	if s.idx == nil {
		return nil, fmt.Errorf("ingest: segment [%d,%d) used after release", s.firstRow, s.firstRow+s.rows)
	}
	if idx, ok := s.idx[column]; ok {
		return idx, nil
	}
	idx, err := bitmap.Build(s.reader, column)
	if err != nil {
		return nil, err
	}
	s.idx[column] = idx
	return idx, nil
}

// cachedIndexes snapshots which columns have built indexes (used by
// compaction to pre-stitch the merged segment's cache).
func (s *segment) cachedIndexes() map[string]*bitmap.Index {
	s.idxMu.Lock()
	defer s.idxMu.Unlock()
	out := make(map[string]*bitmap.Index, len(s.idx))
	for k, v := range s.idx {
		out[k] = v
	}
	return out
}

// adoptIndex installs a pre-stitched index (compaction's merge path).
func (s *segment) adoptIndex(column string, idx *bitmap.Index) {
	s.idxMu.Lock()
	if s.idx != nil {
		s.idx[column] = idx
	}
	s.idxMu.Unlock()
}

// mergeZoneMaps combines consecutive segments' zone maps into the maps
// for their concatenation (presence bitsets may have grown with the
// dictionary; the merge extends to the largest).
func mergeZoneMaps(segs []*segment) zoneMaps {
	z := zoneMaps{
		presence: make(map[string]*bitmap.Bitset),
		min:      make(map[string]float64),
		max:      make(map[string]float64),
	}
	for _, s := range segs {
		for name, bs := range s.zone.presence {
			cur, ok := z.presence[name]
			if !ok || cur.Len() < bs.Len() {
				grown := bitmap.NewBitset(bs.Len())
				if cur != nil {
					_ = grown.OrShifted(cur, 0)
				}
				z.presence[name] = grown
				cur = grown
			}
			_ = cur.OrShifted(bs, 0)
		}
		for name, lo := range s.zone.min {
			if cur, ok := z.min[name]; !ok || lo < cur {
				z.min[name] = lo
			}
		}
		for name, hi := range s.zone.max {
			if cur, ok := z.max[name]; !ok || hi > cur {
				z.max[name] = hi
			}
		}
	}
	return z
}
