package ingest

import (
	"testing"

	"fastmatch/internal/engine"
)

// BenchmarkIngest measures the live-ingestion hot paths; the committed
// baseline lives in BENCH_ingest.json at the repo root. Append
// benchmarks report rows/s via b.N rows per iteration batches;
// query-under-ingest interleaves appends with engine runs over fresh
// views (the per-generation view + stitched-index maintenance cost is
// the thing being measured, on top of the query itself).

func benchRows(n int) []Row {
	return genRows(n, 99)
}

func benchAppend(b *testing.B, sync bool) {
	opts := Options{SealRows: 16384, CompactInterval: -1, NoSync: !sync}
	wt, err := Open(b.TempDir(), testSchema(), opts)
	if err != nil {
		b.Fatal(err)
	}
	defer wt.Close()
	const batch = 1000
	rows := benchRows(batch)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := wt.Append(rows); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(batch*b.N)/b.Elapsed().Seconds(), "rows/s")
}

func BenchmarkIngestAppendNoSync(b *testing.B) { benchAppend(b, false) }
func BenchmarkIngestAppendSync(b *testing.B)   { benchAppend(b, true) }

// BenchmarkIngestQueryUnderIngest: each iteration appends a batch (new
// generation) and answers a FastMatch query over a fresh view — the
// worst case for view/index maintenance, since nothing is amortized
// across same-generation queries.
func BenchmarkIngestQueryUnderIngest(b *testing.B) {
	opts := Options{SealRows: 4096, CompactInterval: -1, NoSync: true}
	wt, err := Open(b.TempDir(), testSchema(), opts)
	if err != nil {
		b.Fatal(err)
	}
	defer wt.Close()
	if _, err := wt.Append(benchRows(100_000)); err != nil {
		b.Fatal(err)
	}
	if err := wt.CompactNow(); err != nil {
		b.Fatal(err)
	}
	batch := benchRows(500)
	q := engine.Query{Z: "Z", X: []string{"X"}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := wt.Append(batch); err != nil {
			b.Fatal(err)
		}
		v, err := wt.View()
		if err != nil {
			b.Fatal(err)
		}
		o := equivOptions(engine.FastMatch, v.NumBlocks())
		if _, err := engine.New(v).Run(q, engine.Target{Uniform: true}, o); err != nil {
			b.Fatal(err)
		}
		v.Release()
	}
}
