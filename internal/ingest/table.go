package ingest

import (
	"fmt"
	"log/slog"
	"math"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	"fastmatch/internal/colstore"
	"fastmatch/internal/obs/logx"
)

// dictState is one column's mutable interning state. The value list is
// append-only, so published dictionary snapshots (immutable
// colstore.Dictionary values with a prefix of the codes) stay valid
// forever — the prefix property that also keeps codes stable across
// segment files written at different times.
type dictState struct {
	values  []string
	index   map[string]uint32
	snap    *colstore.Dictionary
	snapLen int
}

func newDictState() *dictState {
	return &dictState{index: make(map[string]uint32)}
}

func (d *dictState) intern(v string) uint32 {
	if code, ok := d.index[v]; ok {
		return code
	}
	code := uint32(len(d.values))
	d.values = append(d.values, v)
	d.index[v] = code
	return code
}

// snapshot returns an immutable dictionary covering every code assigned
// so far, cached until the cardinality changes.
func (d *dictState) snapshot() *colstore.Dictionary {
	if d.snap == nil || d.snapLen != len(d.values) {
		snap, err := colstore.NewDictionaryFromValues(d.values)
		if err != nil {
			// Unreachable: intern never assigns a value twice.
			panic(fmt.Sprintf("ingest: dictionary snapshot: %v", err))
		}
		d.snap, d.snapLen = snap, len(d.values)
	}
	return d.snap
}

// WritableTable is the live-ingestion backend: an appendable table whose
// read side is served through immutable, snapshot-isolated TableViews
// (see the package doc for the architecture). All methods are safe for
// concurrent use; appends are serialized by an internal mutex, queries
// never take it beyond the brief View acquisition.
type WritableTable struct {
	dir    string
	schema Schema
	opts   Options
	log    *slog.Logger
	gen    atomic.Uint64

	mu            sync.Mutex
	dicts         []*dictState
	codes         [][]uint32  // the columnar spine: per column, append-only
	vals          [][]float64 // per measure, append-only
	rows          int
	sealedRows    int
	persistedRows int
	segments      []*segment // sealed, row order; canonical list holds one pin each
	wal           *wal
	curView       *TableView
	closed        bool

	// curViewFast mirrors curView for View's lock-free
	// unchanged-generation path (updated under mu, read without it).
	curViewFast atomic.Pointer[TableView]
	measMin     []float64
	measMax     []float64
	measSeen    []bool

	appendBatches  int64
	appendedRows   int64
	replayedRows   int64
	seals          int64
	compactions    int64
	compactErrs    int64
	lastCompactErr string

	compactMu sync.Mutex // serializes CompactNow with the background loop
	nudge     chan struct{}
	stop      chan struct{}
	done      chan struct{}
}

// Open creates or re-opens a writable table rooted at dir. For a fresh
// directory the schema is required; for an existing one it may be left
// empty (zero columns) to adopt the stored schema, and is otherwise
// verified to match. Re-opening loads the manifest's compacted segment
// files, replays the WAL tail (recovering exactly the acked rows, see
// the package doc), and resumes appending where the log left off.
func Open(dir string, schema Schema, opts Options) (*WritableTable, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	m, found, err := readManifest(dir)
	if err != nil {
		return nil, err
	}
	if found {
		if len(schema.Columns) == 0 {
			schema = m.Schema
		} else {
			if schema.BlockSize <= 0 {
				// An omitted block size adopts the stored one (like
				// SealRows), so re-opening with just the column list works
				// for tables created with a non-default block size.
				schema.BlockSize = m.Schema.BlockSize
			}
			if err := schema.validate(); err != nil {
				return nil, err
			}
			if !schema.equal(m.Schema) {
				return nil, fmt.Errorf("ingest: schema mismatch with existing table in %s", dir)
			}
		}
		if opts.SealRows <= 0 {
			opts.SealRows = m.SealRows
		}
	} else if err := schema.validate(); err != nil {
		return nil, err
	}
	opts = opts.withDefaults(schema.BlockSize)

	t := &WritableTable{
		dir:    dir,
		schema: schema,
		opts:   opts,
		log:    logx.OrDiscard(opts.Logger),
		nudge:  make(chan struct{}, 1),
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}
	t.gen.Store(1)
	t.dicts = make([]*dictState, len(schema.Columns))
	t.codes = make([][]uint32, len(schema.Columns))
	for i := range t.dicts {
		t.dicts[i] = newDictState()
	}
	t.vals = make([][]float64, len(schema.Measures))
	t.measMin = make([]float64, len(schema.Measures))
	t.measMax = make([]float64, len(schema.Measures))
	t.measSeen = make([]bool, len(schema.Measures))

	// Everything after loadSegments may hold mmap handles; release them
	// on any failed-open path so a retried load (e.g. /v1/admin/load
	// against a dir with a bad WAL tail) doesn't leak a mapping per
	// segment per attempt.
	fail := func(err error) (*WritableTable, error) {
		for _, s := range t.segments {
			s.unpin()
		}
		if t.wal != nil {
			_ = t.wal.close()
		}
		return nil, err
	}

	if !found {
		m = manifest{Version: 1, Schema: schema, SealRows: opts.SealRows}
		if err := writeManifest(dir, m); err != nil {
			return nil, err
		}
	} else {
		if err := t.loadSegments(m); err != nil {
			return fail(err)
		}
		if err := removeOrphans(dir, m); err != nil {
			return fail(err)
		}
	}

	// Replay the WAL tail through the same interning path as live
	// appends: codes re-derive deterministically from the replayed value
	// strings, continuing the segment files' dictionaries.
	files, err := walReplay(dir, t.schema, t.applyReplayed)
	if err != nil {
		return fail(err)
	}
	t.wal, err = adoptReplayed(dir, files, t.rows)
	if err != nil {
		return fail(err)
	}
	t.log.Info("ingest table opened",
		"dir", dir, "rows", t.rows, "replayed_rows", t.replayedRows,
		"segments", len(t.segments), "wal_files", len(files))
	if t.opts.CompactInterval > 0 {
		go t.runCompactor()
	} else {
		close(t.done)
	}
	return t, nil
}

// loadSegments opens every manifest-listed segment file, rebuilds the
// columnar spine and dictionaries from them, and installs them as
// pinned, file-backed segments.
func (t *WritableTable) loadSegments(m manifest) error {
	for _, ms := range m.Segments {
		reader, closer, err := openSegmentReader(filepath.Join(t.dir, ms.File), t.opts.DisableMmap)
		if err != nil {
			return fmt.Errorf("ingest: loading segment %s: %w", ms.File, err)
		}
		fail := func(err error) error {
			if closer != nil {
				_ = closer.Close()
			}
			return err
		}
		if reader.NumRows() != ms.Rows || reader.BlockSize() != t.schema.BlockSize {
			return fail(fmt.Errorf("ingest: segment %s shape mismatch (rows %d want %d, block %d want %d)",
				ms.File, reader.NumRows(), ms.Rows, reader.BlockSize(), t.schema.BlockSize))
		}
		if err := t.adoptSegmentData(reader, ms); err != nil {
			return fail(err)
		}
		seg, err := newSegment(ms.FirstRow, reader, ms.File, closer)
		if err != nil {
			return fail(err)
		}
		t.segments = append(t.segments, seg)
	}
	t.rows = m.PersistedRows
	t.sealedRows = m.PersistedRows
	t.persistedRows = m.PersistedRows
	return nil
}

// adoptSegmentData extends the dictionaries and spine with one loaded
// segment, verifying the dictionary prefix property (every file's
// dictionary must continue the previous files' code assignment exactly).
func (t *WritableTable) adoptSegmentData(reader colstore.Reader, ms manifestSegment) error {
	n := reader.NumRows()
	for i, name := range t.schema.Columns {
		col, err := reader.ColumnByName(name)
		if err != nil {
			return fmt.Errorf("ingest: segment %s: %w", ms.File, err)
		}
		for code, v := range col.Dictionary().Values() {
			if got := t.dicts[i].intern(v); got != uint32(code) {
				return fmt.Errorf("ingest: segment %s column %q breaks the dictionary prefix property at code %d",
					ms.File, name, code)
			}
		}
		t.codes[i] = append(t.codes[i], col.Codes(0, n)...)
	}
	for j, name := range t.schema.Measures {
		meas, err := reader.MeasureByName(name)
		if err != nil {
			return fmt.Errorf("ingest: segment %s: %w", ms.File, err)
		}
		vals := meas.Values(0, n)
		t.vals[j] = append(t.vals[j], vals...)
		for _, v := range vals {
			t.observeMeasure(j, v)
		}
	}
	return nil
}

// applyReplayed is the WAL replay callback: skip rows already persisted
// in segment files, append the rest through the normal interning path.
func (t *WritableTable) applyReplayed(firstRow int, rows []Row) error {
	if firstRow+len(rows) <= t.rows {
		return nil // fully covered by persisted segments
	}
	if firstRow > t.rows {
		return fmt.Errorf("ingest: WAL gap: record starts at row %d but table has %d rows", firstRow, t.rows)
	}
	rows = rows[t.rows-firstRow:]
	t.internRows(rows)
	t.replayedRows += int64(len(rows))
	return nil
}

// validateRows rejects a batch before anything is logged: appends are
// all-or-nothing, following the batch Builder's contract (every column
// and measure present, measures non-negative) and tightening it for
// wire-facing input — non-finite measures are rejected (NaN would
// poison every downstream aggregate and replay durably forever), and so
// are unknown keys (the CSV path errors on unknown header fields; the
// JSON path must not silently drop the same mistake).
func (t *WritableTable) validateRows(rows []Row) error {
	bad := func(format string, args ...any) error {
		return fmt.Errorf("ingest: %w: %s", ErrInvalidRow, fmt.Sprintf(format, args...))
	}
	for i, r := range rows {
		for _, c := range t.schema.Columns {
			if _, ok := r.Values[c]; !ok {
				return bad("row %d missing value for column %q", i, c)
			}
		}
		for _, m := range t.schema.Measures {
			v, ok := r.Measures[m]
			if !ok {
				return bad("row %d missing measure %q", i, m)
			}
			if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
				return bad("row %d: measure %q = %g (must be finite and non-negative)", i, m, v)
			}
		}
		if len(r.Values) > len(t.schema.Columns) {
			for k := range r.Values {
				if !t.hasColumn(k) {
					return bad("row %d has unknown column %q", i, k)
				}
			}
		}
		if len(r.Measures) > len(t.schema.Measures) {
			for k := range r.Measures {
				if !t.hasMeasure(k) {
					return bad("row %d has unknown measure %q", i, k)
				}
			}
		}
	}
	return nil
}

func (t *WritableTable) hasColumn(name string) bool {
	for _, c := range t.schema.Columns {
		if c == name {
			return true
		}
	}
	return false
}

func (t *WritableTable) hasMeasure(name string) bool {
	for _, m := range t.schema.Measures {
		if m == name {
			return true
		}
	}
	return false
}

// Append logs and applies one batch of rows. It returns only after the
// batch's WAL record is durable (written, and fsynced unless
// Options.NoSync) — the returned result is the ack. The batch is
// all-or-nothing: a validation error leaves the table untouched.
func (t *WritableTable) Append(rows []Row) (AppendResult, error) {
	if len(rows) == 0 {
		return AppendResult{}, fmt.Errorf("ingest: %w: empty append batch", ErrInvalidRow)
	}
	if err := t.validateRows(rows); err != nil {
		return AppendResult{}, err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return AppendResult{}, fmt.Errorf("ingest: %w", ErrClosed)
	}
	firstRow := t.rows
	if err := t.wal.append(t.schema, firstRow, rows, !t.opts.NoSync); err != nil {
		return AppendResult{}, err
	}
	t.internRows(rows)
	t.appendBatches++
	t.appendedRows += int64(len(rows))
	gen := t.gen.Add(1)
	return AppendResult{
		FirstRow:   firstRow,
		Rows:       len(rows),
		TotalRows:  t.rows,
		Generation: gen,
		Synced:     !t.opts.NoSync,
	}, nil
}

// internRows appends validated rows to the spine and seals full
// segments. Caller holds t.mu (or is the single-threaded open path).
func (t *WritableTable) internRows(rows []Row) {
	for _, r := range rows {
		for i, c := range t.schema.Columns {
			t.codes[i] = append(t.codes[i], t.dicts[i].intern(r.Values[c]))
		}
		for j, m := range t.schema.Measures {
			v := r.Measures[m]
			t.vals[j] = append(t.vals[j], v)
			t.observeMeasure(j, v)
		}
		t.rows++
	}
	for t.rows-t.sealedRows >= t.opts.SealRows {
		t.seal()
	}
}

func (t *WritableTable) observeMeasure(j int, v float64) {
	if !t.measSeen[j] {
		t.measMin[j], t.measMax[j] = v, v
		t.measSeen[j] = true
		return
	}
	if v < t.measMin[j] {
		t.measMin[j] = v
	}
	if v > t.measMax[j] {
		t.measMax[j] = v
	}
}

// seal freezes the next SealRows rows into an immutable segment whose
// reader aliases the spine (zero copy), computing its zone maps.
// Caller holds t.mu.
func (t *WritableTable) seal() {
	lo, hi := t.sealedRows, t.sealedRows+t.opts.SealRows
	tbl, err := t.rangeTable(lo, hi)
	if err != nil {
		panic(fmt.Sprintf("ingest: sealing [%d,%d): %v", lo, hi, err)) // shape invariants guarantee success
	}
	seg, err := newSegment(lo, tbl, "", nil)
	if err != nil {
		panic(fmt.Sprintf("ingest: sealing [%d,%d): %v", lo, hi, err))
	}
	t.segments = append(t.segments, seg)
	t.sealedRows = hi
	t.seals++
	t.log.Debug("segment sealed", "dir", t.dir, "first_row", lo, "rows", hi-lo, "seals", t.seals)
	select {
	case t.nudge <- struct{}{}:
	default:
	}
}

// rangeTable wraps spine rows [lo, hi) as an immutable block-aligned
// table (lo must be a block multiple). Caller holds t.mu.
func (t *WritableTable) rangeTable(lo, hi int) (*colstore.Table, error) {
	cols := make([]*colstore.Column, len(t.schema.Columns))
	for i, name := range t.schema.Columns {
		cols[i] = colstore.NewColumn(name, t.dicts[i].snapshot(), t.codes[i][lo:hi:hi])
	}
	measures := make([]*colstore.MeasureColumn, len(t.schema.Measures))
	for j, name := range t.schema.Measures {
		measures[j] = colstore.NewMeasureColumn(name, t.vals[j][lo:hi:hi])
	}
	return colstore.NewTable(t.schema.BlockSize, hi-lo, cols, measures)
}

// View returns a retained, immutable snapshot of the table at its
// current generation; pair every View with one Release. Consecutive
// calls at an unchanged generation share one cached view (and its
// stitched indexes, via the engine's caches).
//
// The unchanged-generation path is lock-free, so queries between
// appends never wait on the table mutex — in particular not on an
// in-flight append's WAL fsync. Only a view of a *new* generation
// takes the mutex (it must: the rows it wants are being applied under
// it).
func (t *WritableTable) View() (*TableView, error) {
	if v := t.curViewFast.Load(); v != nil && v.gen == t.gen.Load() && v.tryRetain() {
		// Re-check after the retain: if the generation moved in between,
		// this snapshot is stale — fall through to the slow path.
		if v.gen == t.gen.Load() {
			return v, nil
		}
		v.Release()
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return nil, fmt.Errorf("ingest: %w", ErrClosed)
	}
	gen := t.gen.Load()
	if t.curView != nil && t.curView.gen == gen {
		t.curView.Retain()
		return t.curView, nil
	}
	inner, err := t.rangeTable(0, t.rows)
	if err != nil {
		return nil, err
	}
	segs := make([]*segment, len(t.segments))
	copy(segs, t.segments)
	v := newView(inner, segs, t.sealedRows, gen)
	if t.curView != nil {
		t.curView.Release()
	}
	t.curView = v
	t.curViewFast.Store(v)
	v.Retain() // the caller's reference; newView's initial ref is the cache's
	return v, nil
}

// Generation returns the current data version; it increases with every
// acked append.
func (t *WritableTable) Generation() uint64 { return t.gen.Load() }

// Schema returns the table's schema.
func (t *WritableTable) Schema() Schema { return t.schema }

// Dir returns the table's storage directory.
func (t *WritableTable) Dir() string { return t.dir }

// Rows returns the current row count.
func (t *WritableTable) Rows() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.rows
}

// Stats snapshots the table's ingest counters.
func (t *WritableTable) Stats() Stats {
	t.mu.Lock()
	defer t.mu.Unlock()
	s := Stats{
		Rows:             t.rows,
		SealedRows:       t.sealedRows,
		PersistedRows:    t.persistedRows,
		Generation:       t.gen.Load(),
		Segments:         len(t.segments),
		AppendBatches:    t.appendBatches,
		AppendedRows:     t.appendedRows,
		ReplayedRows:     t.replayedRows,
		Seals:            t.seals,
		Compactions:      t.compactions,
		CompactErrors:    t.compactErrs,
		LastCompactError: t.lastCompactErr,
	}
	for _, seg := range t.segments {
		if seg.file != "" {
			s.SegmentFiles++
		}
		s.SegmentPins += seg.pins.Load()
	}
	if t.wal != nil {
		s.WALBytes = t.wal.totalBytes()
		s.WALFiles = t.wal.numFiles()
		s.WALSyncs = t.wal.syncs
	}
	for j, name := range t.schema.Measures {
		if !t.measSeen[j] {
			continue
		}
		if s.MeasureRanges == nil {
			s.MeasureRanges = make(map[string]MeasureRange, len(t.schema.Measures))
		}
		s.MeasureRanges[name] = MeasureRange{Min: t.measMin[j], Max: t.measMax[j]}
	}
	return s
}

// Close stops the background compactor, syncs and closes the WAL, and
// releases the table's own references. Outstanding views stay fully
// readable; the buffer tail (rows not yet compacted) is durable in the
// WAL and replays on the next Open.
func (t *WritableTable) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	t.mu.Unlock()

	close(t.stop)
	<-t.done

	t.mu.Lock()
	defer t.mu.Unlock()
	var err error
	if t.wal != nil {
		err = t.wal.close()
	}
	if t.curView != nil {
		t.curViewFast.Store(nil)
		t.curView.Release()
		t.curView = nil
	}
	for _, seg := range t.segments {
		seg.unpin() // the canonical list's reference
	}
	t.segments = nil
	return err
}
