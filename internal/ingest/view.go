package ingest

import (
	"fmt"
	"math/bits"
	"sync/atomic"

	"fastmatch/internal/bitmap"
	"fastmatch/internal/colstore"
)

// TableView is a snapshot-isolated, immutable read view of a
// WritableTable: the union of the sealed segments plus the frozen write
// tail at one generation, presented through the engine's colstore.Reader
// seam so the planner, all five executors, and the bitmap index work
// unmodified over live data.
//
// Row data is served from the table's append-only columnar spine: the
// view aliases each column's [0, rows) prefix, which later appends never
// mutate (they only extend, and a slice reallocation leaves the old
// backing array untouched). Sealed segments are additionally pinned by
// refcount: compaction may swap the canonical segment list underneath a
// live view, but the view's pinned segments — and their cached bitmap
// indexes and mmap handles — stay valid until the view is released.
//
// A view is also a bitmap.IndexedReader: the per-column block index is
// stitched from the pinned segments' cached per-segment indexes (shifted
// ORs, skipping segment/value pairs the code-presence zone maps rule
// out) plus a scan of only the unsealed tail blocks. The stitched index
// is bit-for-bit equal to a full Build scan, so executors behave
// identically; the cost per generation is O(new data), not O(table).
type TableView struct {
	inner      *colstore.Table // spine-aliased, zero-copy
	segs       []*segment      // pinned for the view's lifetime
	sealedRows int
	gen        uint64
	refs       atomic.Int64
}

// Compile-time conformance: the engine consumes views through these.
var (
	_ colstore.Reader           = (*TableView)(nil)
	_ bitmap.IndexedReader      = (*TableView)(nil)
	_ colstore.BlockStatsReader = (*TableView)(nil)
)

// newView pins the segments and wraps the spine prefix; callers (the
// WritableTable, under its mutex) pass segments they hold references to.
func newView(inner *colstore.Table, segs []*segment, sealedRows int, gen uint64) *TableView {
	v := &TableView{inner: inner, segs: segs, sealedRows: sealedRows, gen: gen}
	for _, s := range segs {
		s.pin()
	}
	v.refs.Store(1)
	return v
}

// Retain takes an additional reference; every Retain (and the reference
// returned by WritableTable.View) must be paired with one Release.
func (v *TableView) Retain() { v.refs.Add(1) }

// tryRetain takes a reference only if the view is still alive (refcount
// nonzero) — the lock-free View fast path may race with the cache
// swapping this view out and dropping its last reference.
func (v *TableView) tryRetain() bool {
	for {
		n := v.refs.Load()
		if n <= 0 {
			return false
		}
		if v.refs.CompareAndSwap(n, n+1) {
			return true
		}
	}
}

// Release drops a reference; the last release unpins the view's
// segments, letting compaction-superseded segments free their resources.
func (v *TableView) Release() {
	if v.refs.Add(-1) != 0 {
		return
	}
	for _, s := range v.segs {
		s.unpin()
	}
}

// Generation identifies the data version this view froze; it increases
// with every acked append, so serving layers use it as a cache key.
func (v *TableView) Generation() uint64 { return v.gen }

// NumRows implements colstore.Reader.
func (v *TableView) NumRows() int { return v.inner.NumRows() }

// BlockSize implements colstore.Reader.
func (v *TableView) BlockSize() int { return v.inner.BlockSize() }

// NumBlocks implements colstore.Reader.
func (v *TableView) NumBlocks() int { return v.inner.NumBlocks() }

// BlockSpan implements colstore.Reader.
func (v *TableView) BlockSpan(b int) (lo, hi int) { return v.inner.BlockSpan(b) }

// Columns implements colstore.Reader.
func (v *TableView) Columns() []string { return v.inner.Columns() }

// ColumnByName implements colstore.Reader.
func (v *TableView) ColumnByName(name string) (colstore.ColumnReader, error) {
	return v.inner.ColumnByName(name)
}

// MeasureNames implements colstore.Reader.
func (v *TableView) MeasureNames() []string { return v.inner.MeasureNames() }

// MeasureByName implements colstore.Reader.
func (v *TableView) MeasureByName(name string) (colstore.MeasureReader, error) {
	return v.inner.MeasureByName(name)
}

// Storage implements colstore.Reader: the spine lives on the heap;
// mmap-backed segments additionally report their mapped bytes (their
// pages serve index builds and restart, not the row hot path).
func (v *TableView) Storage() colstore.StorageStats {
	st := v.inner.Storage()
	st.Backend = "ingest"
	for _, s := range v.segs {
		st.MappedBytes += s.reader.Storage().MappedBytes
	}
	return st
}

// Segments reports the view's pinned segment count (diagnostics).
func (v *TableView) Segments() int { return len(v.segs) }

// BlockStats implements colstore.BlockStatsReader by adapting the
// pinned segments' summaries. Sealed blocks answer from the segment's
// own backend statistics when available (block-granular, since segment
// readers are themselves stats-carrying tables), falling back to the
// seal-time zone maps (segment-granular: every block of a segment
// reports the whole segment's presence/range — coarser but still
// sound). Unsealed tail blocks are unknown and never prune.
func (v *TableView) BlockStats() colstore.BlockStats { return viewBlockStats{v: v} }

// viewBlockStats routes per-block statistics questions to the segment
// owning the block. Segments are block-aligned (rows are sealed in
// block-size multiples), so a table block lies entirely inside one
// segment or entirely in the tail.
type viewBlockStats struct{ v *TableView }

// segmentFor returns the pinned segment covering table block b and the
// block's segment-local index, or nil for tail/out-of-range blocks.
func (vs viewBlockStats) segmentFor(b int) (*segment, int) {
	segs := vs.v.segs
	lo, hi := 0, len(segs)
	for lo < hi {
		mid := (lo + hi) / 2
		if segs[mid].blockOff+segs[mid].blocks <= b {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(segs) && b >= segs[lo].blockOff {
		return segs[lo], b - segs[lo].blockOff
	}
	return nil, 0
}

// MayContainCode implements colstore.BlockStats. Segment dictionaries
// are seal-time prefixes of the spine dictionary (snapshots preserve
// code order), so table codes are valid segment codes; a code past a
// segment's dictionary was interned after sealing and is provably
// absent there.
func (vs viewBlockStats) MayContainCode(column string, code uint32, b int) bool {
	s, local := vs.segmentFor(b)
	if s == nil {
		return true
	}
	if st := s.blockStats(); st != nil {
		return st.MayContainCode(column, code, local)
	}
	p := s.zone.presence[column]
	if p == nil {
		return true
	}
	if int(code) >= p.Len() {
		return false
	}
	return p.Get(int(code))
}

// MeasureRange implements colstore.BlockStats.
func (vs viewBlockStats) MeasureRange(measure string, b int) (lo, hi float64, ok bool) {
	s, local := vs.segmentFor(b)
	if s == nil {
		return 0, 0, false
	}
	if st := s.blockStats(); st != nil {
		if lo, hi, ok = st.MeasureRange(measure, local); ok {
			return lo, hi, ok
		}
	}
	mlo, ok1 := s.zone.min[measure]
	mhi, ok2 := s.zone.max[measure]
	if !ok1 || !ok2 {
		return 0, 0, false
	}
	return mlo, mhi, true
}

// PresenceWords implements colstore.BlockStats: the stitched view has
// no single exact value-major bitset (tail blocks are unknown), and an
// inexact one must never feed index construction, so this always
// declines.
func (vs viewBlockStats) PresenceWords(string) ([]uint64, int, bool) { return nil, 0, false }

// BlockIndex implements bitmap.IndexedReader: stitch the sealed
// segments' cached indexes, then scan only the unsealed tail blocks.
func (v *TableView) BlockIndex(column string) (*bitmap.Index, error) {
	col, err := v.inner.ColumnByName(column)
	if err != nil {
		return nil, err
	}
	idx := bitmap.NewIndex(col.Cardinality(), v.inner.NumBlocks())
	for _, s := range v.segs {
		segIdx, err := s.blockIndex(column)
		if err != nil {
			return nil, err
		}
		presence := s.zone.presence[column]
		if presence == nil {
			return nil, fmt.Errorf("ingest: segment [%d,%d) has no zone map for column %q", s.firstRow, s.firstRow+s.rows, column)
		}
		// Zone-map skip: only stitch values the segment actually holds.
		for w := 0; w < presence.NumWords(); w++ {
			word := presence.Word(w)
			for word != 0 {
				val := uint32(w*64 + bits.TrailingZeros64(word))
				word &= word - 1
				bs, err := segIdx.ValueBitset(val)
				if err != nil {
					return nil, err
				}
				if err := idx.OrValueShifted(val, bs, s.blockOff); err != nil {
					return nil, err
				}
			}
		}
	}
	// Tail: the frozen write-buffer rows past the last sealed segment.
	rows := v.inner.NumRows()
	if v.sealedRows < rows {
		firstTailBlock := v.sealedRows / v.inner.BlockSize()
		for b := firstTailBlock; b < v.inner.NumBlocks(); b++ {
			lo, hi := v.inner.BlockSpan(b)
			for _, code := range col.Codes(lo, hi) {
				idx.Add(code, b)
			}
		}
	}
	return idx, nil
}
