package ingest

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"fastmatch/internal/bitmap"
	"fastmatch/internal/colstore"
)

// Background compaction.
//
// The compactor runs two policies, both producing snapshot-format-v2
// files (mmap-able, identical to the batch snapshot format):
//
//  1. Persist: every sealed-but-unpersisted segment run [persistedRows,
//     sealedRows) is merged into one segment file. Once the manifest
//     commits, the covered WAL prefix is deleted — the WAL stays
//     proportional to the unsealed tail, not the table.
//  2. Merge: when more than Options.MaxSegmentFiles files accumulate,
//     all of them are re-merged into a single file covering
//     [0, persistedRows), bounding both file count and replay fan-in.
//     Full re-merge is deliberately simple; its write amplification is
//     O(table) per merge, i.e. roughly one full rewrite every
//     MaxSegmentFiles persist cycles, which is fine at the scales the
//     spine (one heap copy of the table) already implies. Raise
//     MaxSegmentFiles to amortize further; a size-tiered policy is the
//     upgrade path if file counts ever need to scale beyond that.
//
// Swaps are atomic with respect to readers: the new segment (backed by
// the freshly written file, mmap-opened unless disabled) replaces its
// children in the canonical list under the table mutex, while in-flight
// views keep their pinned children alive until released — snapshot
// isolation via the segment refcounts. Durability ordering is
// file write + fsync → manifest rename → WAL/file deletion, so a crash
// at any point leaves either the old manifest (orphaned file removed at
// boot) or the new one (covered WAL rows skipped by replay).

// runCompactor is the background loop started by Open.
func (t *WritableTable) runCompactor() {
	defer close(t.done)
	ticker := time.NewTicker(t.opts.CompactInterval)
	defer ticker.Stop()
	for {
		select {
		case <-t.stop:
			return
		case <-t.nudge:
		case <-ticker.C:
		}
		if err := t.CompactNow(); err != nil {
			t.mu.Lock()
			t.compactErrs++
			t.lastCompactErr = err.Error()
			t.mu.Unlock()
			t.log.Warn("compaction failed", "dir", t.dir, "error", err)
		} else {
			t.mu.Lock()
			t.lastCompactErr = ""
			t.mu.Unlock()
		}
	}
}

// CompactNow synchronously runs one compaction cycle (persist, then
// merge if the file count calls for it). The background loop calls it on
// its own; it is exported for tests, tools, and embedders that disabled
// the loop.
func (t *WritableTable) CompactNow() error {
	t.compactMu.Lock()
	defer t.compactMu.Unlock()
	if err := t.persistSealed(); err != nil {
		return err
	}
	return t.mergeFiles()
}

// persistSealed folds the sealed-but-unpersisted segments into one
// snapshot file and swaps a file-backed segment in for them.
func (t *WritableTable) persistSealed() error {
	t.mu.Lock()
	if t.closed || t.sealedRows == t.persistedRows {
		t.mu.Unlock()
		return nil
	}
	lo, hi := t.persistedRows, t.sealedRows
	tbl, err := t.rangeTable(lo, hi)
	var children []*segment
	for _, s := range t.segments {
		if s.firstRow >= lo && s.firstRow < hi {
			children = append(children, s)
		}
	}
	t.mu.Unlock()
	if err != nil {
		return err
	}
	merged, err := t.writeSegmentFile(tbl, lo, children)
	if err != nil {
		return err
	}
	return t.swapSegments(merged, children)
}

// mergeFiles re-merges every file-backed segment into one when the file
// count exceeds the bound.
func (t *WritableTable) mergeFiles() error {
	t.mu.Lock()
	var children []*segment
	for _, s := range t.segments {
		if s.file != "" {
			children = append(children, s)
		}
	}
	if t.closed || len(children) <= t.opts.MaxSegmentFiles {
		t.mu.Unlock()
		return nil
	}
	hi := children[len(children)-1].firstRow + children[len(children)-1].rows
	tbl, err := t.rangeTable(0, hi)
	t.mu.Unlock()
	if err != nil {
		return err
	}
	merged, err := t.writeSegmentFile(tbl, 0, children)
	if err != nil {
		return err
	}
	oldFiles := make([]string, len(children))
	for i, c := range children {
		oldFiles[i] = c.file
	}
	if err := t.swapSegments(merged, children); err != nil {
		return err
	}
	// The manifest no longer references the old files; unlinking is safe
	// even while released-but-not-yet-unpinned views still have them
	// mapped (POSIX keeps the pages until the mapping goes away).
	for _, f := range oldFiles {
		if err := os.Remove(filepath.Join(t.dir, f)); err != nil && !os.IsNotExist(err) {
			return err
		}
	}
	return nil
}

// writeSegmentFile durably writes rows [firstRow, firstRow+tbl.NumRows())
// as a snapshot-v2 file and wraps it as a segment, inheriting the
// children's zone maps and pre-stitching their cached bitmap indexes so
// the merged segment starts warm.
func (t *WritableTable) writeSegmentFile(tbl *colstore.Table, firstRow int, children []*segment) (*segment, error) {
	rows := tbl.NumRows()
	name := segFileName(firstRow, rows)
	path := filepath.Join(t.dir, name)
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	if err := colstore.WriteSnapshot(tbl, f); err != nil {
		f.Close()
		os.Remove(path)
		return nil, fmt.Errorf("ingest: writing segment file %s: %w", name, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(path)
		return nil, err
	}
	if err := f.Close(); err != nil {
		os.Remove(path)
		return nil, err
	}
	reader, closer, err := openSegmentReader(path, t.opts.DisableMmap)
	if err != nil {
		os.Remove(path)
		return nil, fmt.Errorf("ingest: re-opening segment file %s: %w", name, err)
	}
	seg := &segment{reader: reader, closer: closer}
	seg.firstRow = firstRow
	seg.rows = rows
	seg.blockOff = firstRow / t.schema.BlockSize
	seg.blocks = reader.NumBlocks()
	seg.file = name
	seg.zone = mergeZoneMaps(children)
	seg.idx = make(map[string]*bitmap.Index)
	seg.pins.Store(1)
	t.prestitchIndexes(seg, children)
	return seg, nil
}

// prestitchIndexes carries the children's per-column index caches over
// to the merged segment: a column whose index every child already built
// gets the merged index by shifted ORs instead of a rescan.
func (t *WritableTable) prestitchIndexes(merged *segment, children []*segment) {
	if len(children) == 0 {
		return
	}
	caches := make([]map[string]*bitmap.Index, len(children))
	for i, c := range children {
		caches[i] = c.cachedIndexes()
	}
	for _, column := range t.schema.Columns {
		complete := true
		card := 0
		for i := range children {
			idx, ok := caches[i][column]
			if !ok {
				complete = false
				break
			}
			if idx.NumValues() > card {
				card = idx.NumValues()
			}
		}
		if !complete {
			continue
		}
		stitched := bitmap.NewIndex(card, merged.blocks)
		ok := true
		for i, c := range children {
			childIdx := caches[i][column]
			off := c.blockOff - merged.blockOff
			for v := 0; v < childIdx.NumValues() && ok; v++ {
				bs, err := childIdx.ValueBitset(uint32(v))
				if err != nil || stitched.OrValueShifted(uint32(v), bs, off) != nil {
					ok = false
				}
			}
		}
		if ok {
			merged.adoptIndex(column, stitched)
		}
	}
}

// swapSegments atomically replaces the children with the merged segment
// in the canonical list, commits the manifest, and truncates the covered
// WAL prefix.
func (t *WritableTable) swapSegments(merged *segment, children []*segment) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		merged.unpin()
		os.Remove(filepath.Join(t.dir, merged.file))
		return fmt.Errorf("ingest: table closed during compaction")
	}
	// Splice: keep segments outside [merged.firstRow, merged end).
	end := merged.firstRow + merged.rows
	next := make([]*segment, 0, len(t.segments))
	for _, s := range t.segments {
		if s.firstRow >= merged.firstRow && s.firstRow < end {
			continue
		}
		next = append(next, s)
	}
	// Insert in row order.
	out := make([]*segment, 0, len(next)+1)
	inserted := false
	for _, s := range next {
		if !inserted && s.firstRow > merged.firstRow {
			out = append(out, merged)
			inserted = true
		}
		out = append(out, s)
	}
	if !inserted {
		out = append(out, merged)
	}
	t.segments = out
	if end > t.persistedRows {
		t.persistedRows = end
	}
	t.compactions++

	// Drop the canonical references to the swapped-out children; views
	// still pinning them keep them (and their mmap handles) alive. This
	// happens before the manifest write: the in-memory swap is already
	// committed, so a manifest error below must not leak the children's
	// pins (the WAL is left untouched on that path, keeping recovery
	// correct under the old on-disk manifest).
	for _, c := range children {
		c.unpin()
	}

	m := manifest{Version: 1, Schema: t.schema, SealRows: t.opts.SealRows, PersistedRows: t.persistedRows}
	for _, s := range t.segments {
		if s.file != "" {
			m.Segments = append(m.Segments, manifestSegment{File: s.file, FirstRow: s.firstRow, Rows: s.rows})
		}
	}
	if err := writeManifest(t.dir, m); err != nil {
		return err
	}
	t.log.Info("compaction cycle committed",
		"dir", t.dir, "file", merged.file, "first_row", merged.firstRow,
		"rows", merged.rows, "persisted_rows", t.persistedRows,
		"compactions", t.compactions)
	// Rotate the WAL off any file still holding covered rows, then drop
	// fully covered files.
	if t.wal != nil {
		if t.wal.active.firstRow < t.persistedRows && t.wal.active.firstRow != t.rows {
			if err := t.wal.rotate(t.rows); err != nil {
				return err
			}
		}
		if err := t.wal.truncateCovered(t.persistedRows); err != nil {
			return err
		}
	}
	return nil
}
