// Package ingest is the live-ingestion storage backend: a WritableTable
// that accepts appends while serving queries through the engine's
// backend-neutral colstore.Reader seam, so the planner, all five
// executors, and the bitmap index run unmodified over data that is still
// arriving.
//
// The design is a hybrid write/read split in the spirit of HTAP systems
// (cf. Polynesia): a small row-oriented write side is continuously folded
// into the immutable, column-oriented analytical representation the
// engine reads.
//
//	appends ──▶ WAL (CRC'd records, fsync ack) ──▶ write buffer
//	                                                 │ interning
//	                                                 ▼
//	                                        columnar spine (append-only)
//	                                                 │ every SealRows rows
//	                                                 ▼
//	                                 sealed segment (immutable, zone maps,
//	                                  per-column bitmap index, refcounted)
//	                                                 │ background compactor
//	                                                 ▼
//	                                 snapshot-v2 segment file (mmap-able)
//	                                      + manifest swap + WAL truncation
//
// Queries never block appends, and appends never block queries at the
// current generation (the unchanged-generation View path is lock-free;
// only a view of rows still being applied waits for their ack): View()
// publishes an immutable snapshot-isolated TableView (a colstore.Reader)
// over the spine prefix plus a pinned segment set; released views unpin
// their segments, and a segment's resources (mmap handles, cached
// indexes) are reclaimed on the last unpin.
//
// Durability: Append returns only after the batch's WAL record is fully
// written (and fsynced unless Options.NoSync) — those rows are "acked"
// and survive kill -9. Startup replays manifest-listed segment files and
// then the WAL tail; a torn trailing record (crash mid-write) fails its
// CRC or length check and is truncated away, recovering exactly the
// acked rows.
package ingest

import (
	"errors"
	"fmt"
	"log/slog"
	"time"
)

// Sentinel errors callers branch on (errors.Is). Serving layers map
// ErrInvalidRow to a client error and ErrClosed to an
// unavailable/retry-later response; anything else from Append is a
// storage-side fault.
var (
	// ErrInvalidRow marks a rejected append batch: a row missing a
	// schema column or measure, a non-finite or negative measure, an
	// unknown key, or an empty batch. The table is untouched.
	ErrInvalidRow = errors.New("invalid row")
	// ErrClosed marks operations on a closed table.
	ErrClosed = errors.New("table is closed")
)

// Schema declares a writable table's shape up front. Like the batch
// Builder, the store has no NULL concept: every append must provide a
// value for every column and measure.
type Schema struct {
	// Columns lists the categorical column names in declaration order.
	Columns []string `json:"columns"`
	// Measures lists the numeric measure column names (non-negative
	// values, matching the batch loader's measure contract).
	Measures []string `json:"measures,omitempty"`
	// BlockSize is the tuples-per-block granularity; ≤ 0 selects the
	// colstore default of 256.
	BlockSize int `json:"block_size,omitempty"`
}

// validate normalizes the schema and rejects duplicates and emptiness.
func (s *Schema) validate() error {
	if len(s.Columns) == 0 {
		return fmt.Errorf("ingest: schema needs at least one column")
	}
	if s.BlockSize <= 0 {
		s.BlockSize = 256
	}
	seen := make(map[string]bool, len(s.Columns)+len(s.Measures))
	for _, c := range s.Columns {
		if c == "" {
			return fmt.Errorf("ingest: empty column name")
		}
		if seen[c] {
			return fmt.Errorf("ingest: duplicate column %q", c)
		}
		seen[c] = true
	}
	for _, m := range s.Measures {
		if m == "" {
			return fmt.Errorf("ingest: empty measure name")
		}
		if seen[m] {
			return fmt.Errorf("ingest: duplicate measure %q", m)
		}
		seen[m] = true
	}
	return nil
}

// equal reports whether two schemas describe the same table shape.
func (s Schema) equal(o Schema) bool {
	if s.BlockSize != o.BlockSize || len(s.Columns) != len(o.Columns) || len(s.Measures) != len(o.Measures) {
		return false
	}
	for i := range s.Columns {
		if s.Columns[i] != o.Columns[i] {
			return false
		}
	}
	for i := range s.Measures {
		if s.Measures[i] != o.Measures[i] {
			return false
		}
	}
	return true
}

// Row is one appended tuple: string values keyed by column name and
// numeric values keyed by measure name.
type Row struct {
	Values   map[string]string  `json:"values"`
	Measures map[string]float64 `json:"measures,omitempty"`
}

// Options tunes a WritableTable. The zero value is production-safe:
// fsync on every append, sealing every 64 blocks, background compaction.
type Options struct {
	// SealRows is how many rows accumulate before the write side seals an
	// immutable segment. It is rounded up to a multiple of the block size
	// so segments stay block-aligned (which keeps the table-wide block
	// grid identical to a batch-loaded table and lets per-segment indexes
	// stitch exactly). ≤ 0 selects 64 blocks' worth of rows.
	SealRows int
	// NoSync skips the fdatasync after each WAL record. Appends get much
	// faster; rows acked since the last sync can be lost on power failure
	// (not on clean process death — the OS still has the writes).
	NoSync bool
	// CompactInterval is the background compactor's wake-up period; 0
	// selects 1s, negative disables the background loop entirely (tests
	// and embedders then drive CompactNow themselves).
	CompactInterval time.Duration
	// MaxSegmentFiles bounds how many snapshot files the table keeps on
	// disk before the compactor merges them all into one; ≤ 0 selects 4.
	MaxSegmentFiles int
	// DisableMmap makes compacted segment files re-open with the heap
	// snapshot reader instead of the zero-copy mmap backend (the mmap
	// open transparently falls back to heap on unsupported platforms
	// anyway; this is for tests pinning one behavior).
	DisableMmap bool
	// Logger receives the table's structured lifecycle logs (WAL replay
	// at open, segment seals, compaction cycles and their failures). Nil
	// discards everything.
	Logger *slog.Logger
}

// withDefaults resolves zero values against the schema's block size.
func (o Options) withDefaults(blockSize int) Options {
	if o.SealRows <= 0 {
		o.SealRows = 64 * blockSize
	}
	if rem := o.SealRows % blockSize; rem != 0 {
		o.SealRows += blockSize - rem
	}
	if o.CompactInterval == 0 {
		o.CompactInterval = time.Second
	}
	if o.MaxSegmentFiles <= 0 {
		o.MaxSegmentFiles = 4
	}
	return o
}

// AppendResult reports one acknowledged append batch.
type AppendResult struct {
	// FirstRow is the row index of the batch's first tuple.
	FirstRow int `json:"first_row"`
	// Rows is the number of tuples appended.
	Rows int `json:"rows"`
	// TotalRows is the table's row count after the batch.
	TotalRows int `json:"total_rows"`
	// Generation is the data version after the batch; it increases with
	// every acked append (serving layers key caches on it).
	Generation uint64 `json:"generation"`
	// Synced reports whether the WAL was fsynced before acking.
	Synced bool `json:"synced"`
}

// MeasureRange is a measure column's observed [Min, Max] — the
// table-level aggregate of the per-segment zone maps.
type MeasureRange struct {
	Min float64 `json:"min"`
	Max float64 `json:"max"`
}

// Stats is a point-in-time snapshot of a WritableTable's ingest state,
// surfaced by the serving layer's /v1/stats.
type Stats struct {
	Rows          int    `json:"rows"`
	SealedRows    int    `json:"sealed_rows"`
	PersistedRows int    `json:"persisted_rows"`
	Generation    uint64 `json:"generation"`
	// Segments counts live sealed segments; SegmentFiles the subset
	// backed by compacted snapshot files on disk.
	Segments     int `json:"segments"`
	SegmentFiles int `json:"segment_files"`
	// SegmentPins sums the live segments' reference counts — the leak
	// detector for view lifecycles. The canonical list holds one pin per
	// segment and the table's cached current view holds one more, so a
	// quiescent table (no outstanding caller views) reports
	// SegmentPins == 2×Segments (or == Segments when no view has been
	// taken since the last generation change). A value that stays higher
	// after queries finish means a released view was leaked — e.g. a
	// canceled run that failed to unpin.
	SegmentPins int64 `json:"segment_pins"`
	// AppendBatches / AppendedRows count acked appends since open.
	AppendBatches int64 `json:"append_batches"`
	AppendedRows  int64 `json:"appended_rows"`
	// ReplayedRows counts rows recovered from the WAL at open.
	ReplayedRows int64 `json:"replayed_rows"`
	// WALBytes / WALFiles / WALSyncs describe the live write-ahead log.
	WALBytes int64 `json:"wal_bytes"`
	WALFiles int   `json:"wal_files"`
	WALSyncs int64 `json:"wal_syncs"`
	// Seals / Compactions count segment lifecycle events;
	// CompactErrors counts failed compaction cycles and LastCompactError
	// describes the most recent one (empty when the last cycle
	// succeeded) — the operator's signal that persistence has stalled
	// and the WAL is growing.
	Seals            int64  `json:"seals"`
	Compactions      int64  `json:"compactions"`
	CompactErrors    int64  `json:"compact_errors,omitempty"`
	LastCompactError string `json:"last_compact_error,omitempty"`
	// MeasureRanges aggregates the segment zone maps (plus the unsealed
	// tail) per measure column.
	MeasureRanges map[string]MeasureRange `json:"measure_ranges,omitempty"`
}
