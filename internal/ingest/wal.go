package ingest

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Write-ahead log.
//
// Each WAL file starts with an 8-byte header — magic "FMWAL\x00", a
// version byte, and a zero pad byte — followed by length-prefixed,
// CRC-guarded records (all integers little-endian):
//
//	u32 payload length
//	u32 CRC-32 (IEEE) of the payload
//	payload:
//	  u64 firstRow   row index of the batch's first tuple
//	  u32 rowCount
//	  per row, schema order:
//	    per column:  u32 byte length + value bytes
//	    per measure: u64 IEEE-754 bits
//
// Values travel as strings, not dictionary codes, so replay re-derives
// codes through the same interning path as live appends — recovery is
// independent of dictionary state and deterministic.
//
// Files are named wal-<firstRow>.log where <firstRow> is the table row
// count when the file was opened; records carry their own firstRow, so a
// file's coverage is self-describing. Rotation happens at compaction:
// once every row of a file is covered by persisted segment files, the
// file is deleted. A torn trailing record (short header, short payload,
// or CRC mismatch) marks the crash point: replay stops there and the
// file is truncated back to the last intact record before new appends.

const (
	walVersion    = 1
	walHeaderSize = 8
	// walMaxPayload caps record size so a corrupt length prefix cannot
	// force an absurd allocation before the CRC check runs.
	walMaxPayload = 1 << 28
)

var walMagic = [8]byte{'F', 'M', 'W', 'A', 'L', 0x00, walVersion, 0x00}

// walFileName names the WAL file opened when the table had firstRow rows.
func walFileName(firstRow int) string {
	return fmt.Sprintf("wal-%016d.log", firstRow)
}

// parseWalFileName extracts the firstRow a WAL file name declares.
func parseWalFileName(name string) (int, bool) {
	if !strings.HasPrefix(name, "wal-") || !strings.HasSuffix(name, ".log") {
		return 0, false
	}
	n, err := strconv.Atoi(strings.TrimSuffix(strings.TrimPrefix(name, "wal-"), ".log"))
	if err != nil || n < 0 {
		return 0, false
	}
	return n, true
}

// walFile tracks one on-disk WAL file's row coverage.
type walFile struct {
	name     string
	firstRow int // row count when the file was opened
	endRow   int // one past the last row recorded in the file
	bytes    int64
}

// wal is the table's write-ahead log: one active file plus bookkeeping
// for older files awaiting truncation. Not safe for concurrent use; the
// owning WritableTable serializes access under its mutex.
type wal struct {
	dir     string
	f       *os.File
	active  walFile
	older   []walFile
	syncs   int64
	scratch []byte
	// broken poisons the log after a write error that could not be
	// cleanly rolled back: accepting further appends could place acked
	// records after a torn one, where replay would silently drop them.
	broken bool
}

// rotate opens a fresh file starting at the given row count, then
// retires the active one into the older list. The new file is fully
// created before any old state is touched, so a failed rotation (disk
// full) leaves the log exactly as it was — still appendable.
func (w *wal) rotate(rows int) error {
	name := walFileName(rows)
	// O_APPEND keeps writes anchored to EOF, so truncating a torn record
	// away (rollback in append) repositions the next write correctly.
	f, err := os.OpenFile(filepath.Join(w.dir, name), os.O_CREATE|os.O_EXCL|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("ingest: creating WAL file: %w", err)
	}
	if _, err := f.Write(walMagic[:]); err != nil {
		f.Close()
		_ = os.Remove(filepath.Join(w.dir, name))
		return fmt.Errorf("ingest: writing WAL header: %w", err)
	}
	var closeErr error
	if w.f != nil {
		closeErr = w.f.Close()
		w.older = append(w.older, w.active)
	}
	w.f = f
	w.active = walFile{name: name, firstRow: rows, endRow: rows, bytes: walHeaderSize}
	if closeErr != nil {
		// The swap is complete and consistent; surface the close failure
		// (the old file's records were already written, and synced ones
		// already acked).
		return fmt.Errorf("ingest: closing rotated WAL file: %w", closeErr)
	}
	return nil
}

// append encodes and writes one batch record, optionally fsyncing before
// returning (the ack barrier). A failed write is rolled back by
// truncating the file to the last intact record; if even that fails the
// log is poisoned — otherwise a later acked record written after the
// torn bytes would be silently discarded by crash replay.
func (w *wal) append(schema Schema, firstRow int, rows []Row, sync bool) error {
	if w.broken {
		return fmt.Errorf("ingest: WAL is poisoned by an earlier write failure; reopen the table to recover")
	}
	payload := encodeWALRecord(w.scratch[:0], schema, firstRow, rows)
	w.scratch = payload[:0] // reuse the (possibly grown) buffer next time
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
	fail := func(what string, err error) error {
		if terr := w.f.Truncate(w.active.bytes); terr != nil {
			w.broken = true
			return fmt.Errorf("ingest: %s: %v (rollback truncate also failed, WAL poisoned: %v)", what, err, terr)
		}
		return fmt.Errorf("ingest: %s: %w", what, err)
	}
	if _, err := w.f.Write(hdr[:]); err != nil {
		return fail("writing WAL record header", err)
	}
	if _, err := w.f.Write(payload); err != nil {
		return fail("writing WAL record", err)
	}
	if sync {
		if err := w.f.Sync(); err != nil {
			// The record's durability is unknowable after a failed fsync;
			// roll it back (it was never acked) and poison the log — the
			// kernel may have dropped the dirty pages, so later fsyncs
			// can't be trusted either. Reopen to recover.
			err = fail("syncing WAL", err)
			w.broken = true
			return err
		}
		w.syncs++
	}
	w.active.bytes += int64(len(hdr) + len(payload))
	w.active.endRow = firstRow + len(rows)
	return nil
}

// truncateCovered deletes every non-active WAL file whose rows are all
// persisted in segment files.
func (w *wal) truncateCovered(persistedRows int) error {
	kept := w.older[:0]
	for _, f := range w.older {
		if f.endRow <= persistedRows {
			if err := os.Remove(filepath.Join(w.dir, f.name)); err != nil && !os.IsNotExist(err) {
				return fmt.Errorf("ingest: removing covered WAL file %s: %w", f.name, err)
			}
			continue
		}
		kept = append(kept, f)
	}
	w.older = kept
	return nil
}

// totalBytes sums the live WAL files' sizes.
func (w *wal) totalBytes() int64 {
	n := w.active.bytes
	for _, f := range w.older {
		n += f.bytes
	}
	return n
}

func (w *wal) numFiles() int { return 1 + len(w.older) }

func (w *wal) close() error {
	if w.f == nil {
		return nil
	}
	err := w.f.Sync()
	if cerr := w.f.Close(); err == nil {
		err = cerr
	}
	w.f = nil
	return err
}

// encodeWALRecord appends the batch payload to buf.
func encodeWALRecord(buf []byte, schema Schema, firstRow int, rows []Row) []byte {
	buf = binary.LittleEndian.AppendUint64(buf, uint64(firstRow))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(rows)))
	for _, r := range rows {
		for _, c := range schema.Columns {
			v := r.Values[c]
			buf = binary.LittleEndian.AppendUint32(buf, uint32(len(v)))
			buf = append(buf, v...)
		}
		for _, m := range schema.Measures {
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(r.Measures[m]))
		}
	}
	return buf
}

// decodeWALRecord parses one record payload into rows.
func decodeWALRecord(payload []byte, schema Schema) (firstRow int, rows []Row, err error) {
	fail := func(what string) (int, []Row, error) {
		return 0, nil, fmt.Errorf("ingest: WAL record %s", what)
	}
	if len(payload) < 12 {
		return fail("too short")
	}
	firstRow = int(binary.LittleEndian.Uint64(payload[0:8]))
	n := int(binary.LittleEndian.Uint32(payload[8:12]))
	// Bound the declared row count by what the payload could possibly
	// hold (≥ 4 bytes per column value, 8 per measure), so a corrupt
	// count that slipped past the CRC cannot force a giant allocation.
	minRowBytes := 4*len(schema.Columns) + 8*len(schema.Measures)
	if n < 0 || n*minRowBytes > len(payload)-12 {
		return fail("declares more rows than its payload holds")
	}
	off := 12
	rows = make([]Row, 0, n)
	for i := 0; i < n; i++ {
		r := Row{Values: make(map[string]string, len(schema.Columns))}
		if len(schema.Measures) > 0 {
			r.Measures = make(map[string]float64, len(schema.Measures))
		}
		for _, c := range schema.Columns {
			if off+4 > len(payload) {
				return fail("truncated value length")
			}
			l := int(binary.LittleEndian.Uint32(payload[off : off+4]))
			off += 4
			if l < 0 || off+l > len(payload) {
				return fail("truncated value")
			}
			r.Values[c] = string(payload[off : off+l])
			off += l
		}
		for _, m := range schema.Measures {
			if off+8 > len(payload) {
				return fail("truncated measure")
			}
			r.Measures[m] = math.Float64frombits(binary.LittleEndian.Uint64(payload[off : off+8]))
			off += 8
		}
		rows = append(rows, r)
	}
	if off != len(payload) {
		return fail("has trailing bytes")
	}
	return firstRow, rows, nil
}

// walReplay reads every WAL file in dir in row order, invoking apply for
// each intact record and truncating each file back to its last intact
// record (dropping torn crash tails). It returns bookkeeping for the
// surviving files so the table can resume coverage tracking.
func walReplay(dir string, schema Schema, apply func(firstRow int, rows []Row) error) ([]walFile, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []walFile
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if start, ok := parseWalFileName(e.Name()); ok {
			files = append(files, walFile{name: e.Name(), firstRow: start, endRow: start})
		}
	}
	sort.Slice(files, func(i, j int) bool { return files[i].firstRow < files[j].firstRow })
	for i := range files {
		if err := replayWALFile(dir, &files[i], schema, apply); err != nil {
			return nil, err
		}
	}
	return files, nil
}

// replayWALFile replays one file, updating its coverage in place.
func replayWALFile(dir string, wf *walFile, schema Schema, apply func(int, []Row) error) error {
	path := filepath.Join(dir, wf.name)
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	var hdr [8]byte
	if _, err := io.ReadFull(f, hdr[:]); err != nil {
		// A header-less file is a crash during creation: drop it entirely.
		return truncateWALFile(path, wf, 0)
	}
	if hdr[0] != 'F' || hdr[1] != 'M' || hdr[2] != 'W' || hdr[3] != 'A' || hdr[4] != 'L' || hdr[5] != 0 {
		return fmt.Errorf("ingest: %s is not a WAL file (bad magic)", wf.name)
	}
	if hdr[6] != walVersion {
		return fmt.Errorf("ingest: %s has unsupported WAL version %d", wf.name, hdr[6])
	}
	good := int64(walHeaderSize)
	var buf []byte
	for {
		var rh [8]byte
		if _, err := io.ReadFull(f, rh[:]); err != nil {
			break // clean EOF or torn header: stop at last intact record
		}
		plen := int(binary.LittleEndian.Uint32(rh[0:4]))
		want := binary.LittleEndian.Uint32(rh[4:8])
		if plen <= 0 || plen > walMaxPayload {
			break
		}
		if cap(buf) < plen {
			buf = make([]byte, plen)
		}
		buf = buf[:plen]
		if _, err := io.ReadFull(f, buf); err != nil {
			break // torn payload
		}
		if crc32.ChecksumIEEE(buf) != want {
			break // corrupt record
		}
		firstRow, rows, err := decodeWALRecord(buf, schema)
		if err != nil {
			return fmt.Errorf("ingest: %s at offset %d: %w", wf.name, good, err)
		}
		if err := apply(firstRow, rows); err != nil {
			return err
		}
		good += int64(8 + plen)
		wf.endRow = firstRow + len(rows)
	}
	return truncateWALFile(path, wf, good)
}

// truncateWALFile cuts a file back to size bytes (removing a torn tail;
// removing the file entirely when even the header is incomplete).
func truncateWALFile(path string, wf *walFile, size int64) error {
	if size == 0 {
		wf.bytes = 0
		return os.Remove(path)
	}
	st, err := os.Stat(path)
	if err != nil {
		return err
	}
	if st.Size() != size {
		if err := os.Truncate(path, size); err != nil {
			return fmt.Errorf("ingest: truncating torn WAL tail of %s: %w", wf.name, err)
		}
	}
	wf.bytes = size
	return nil
}

// adoptReplayed converts replay bookkeeping into a live WAL: the newest
// surviving file is re-opened for append and the rest are tracked for
// truncation. If no file survived, a fresh one is opened at rows.
func adoptReplayed(dir string, files []walFile, rows int) (*wal, error) {
	w := &wal{dir: dir}
	live := files[:0]
	for _, f := range files {
		if f.bytes > 0 {
			live = append(live, f)
		}
	}
	if len(live) == 0 {
		if err := w.rotate(rows); err != nil {
			return nil, err
		}
		return w, nil
	}
	last := live[len(live)-1]
	f, err := os.OpenFile(filepath.Join(dir, last.name), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("ingest: reopening WAL file: %w", err)
	}
	w.f = f
	w.active = last
	w.older = append(w.older, live[:len(live)-1]...)
	return w, nil
}
