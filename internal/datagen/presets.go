package datagen

import "fmt"

// Preset specs mirroring Table 2/3 of the paper. Cardinalities match the
// paper exactly; row counts are scaled from hundreds of millions to
// laptop-friendly defaults (the `rows` argument) while preserving the
// selectivity skew that drives stage-1 pruning behaviour.

// Flights builds a FLIGHTS-shaped dataset: 7 attributes including
// Origin (347), Dest (351), DepartureHour (24), DayOfWeek (7),
// DayOfMonth (31).
func Flights(rows int, seed int64, blockSize int) (*Dataset, error) {
	// Candidate attributes (Origin, Dest) get a small ClusterConcentration
	// so each value's cluster posterior is nearly one-hot: candidates form
	// tight similarity clusters with wide inter-cluster gaps, the geometry
	// that lets HistSim's split point land in a gap and terminate from a
	// modest sample (the behaviour the paper reports on real data).
	return Generate(Spec{
		Name:      "flights",
		Rows:      rows,
		Clusters:  28,
		BlockSize: blockSize,
		Seed:      seed,
		Columns: []ColumnSpec{
			{Name: "Origin", Cardinality: 347, Skew: 0.8, ClusterConcentration: 0.12},
			{Name: "Dest", Cardinality: 351, Skew: 0.8, ClusterConcentration: 0.12},
			{Name: "DepartureHour", Cardinality: 24, Skew: 0.3, ClusterConcentration: 0.5},
			{Name: "DayOfWeek", Cardinality: 7, Skew: 0.1, ClusterConcentration: 0.5},
			{Name: "DayOfMonth", Cardinality: 31, Skew: 0.05, ClusterConcentration: 1.5},
			{Name: "DepDelayBin", Cardinality: 12, Skew: 0.8, ClusterConcentration: 1},
			{Name: "ArrDelayBin", Cardinality: 12, Skew: 0.8, ClusterConcentration: 1},
		},
	})
}

// Taxi builds a TAXI-shaped dataset. Location has the paper's 7641
// candidates with a strong Zipf skew so thousands of locations get only a
// handful of tuples — the stage-1 stress test called out in §5.1.
func Taxi(rows int, seed int64, blockSize int) (*Dataset, error) {
	return Generate(Spec{
		Name:         "taxi",
		Rows:         rows,
		Clusters:     36,
		TailClusters: 6,
		BlockSize:    blockSize,
		Seed:         seed,
		Columns: []ColumnSpec{
			// ~600 "real" locations share 98% of trips with mild skew; the
			// other ~7000 collectively get 2% — reproducing the paper's
			// ">3000 locations with fewer than 10 datapoints".
			{Name: "Location", Cardinality: 7641, Skew: 0.35, ClusterConcentration: 0.12,
				TailFraction: 0.92, TailShare: 0.02},
			{Name: "HourOfDay", Cardinality: 24, Skew: 0.3, ClusterConcentration: 0.5},
			{Name: "MonthOfYear", Cardinality: 12, Skew: 0.1, ClusterConcentration: 0.5},
			{Name: "DayOfWeek", Cardinality: 7, Skew: 0.1, ClusterConcentration: 1},
			{Name: "PassengerCount", Cardinality: 9, Skew: 1.2, ClusterConcentration: 1.5},
			{Name: "PassengerBin", Cardinality: 4, Skew: 0.6, ClusterConcentration: 1.5},
			{Name: "TripTimeBin", Cardinality: 16, Skew: 0.5, ClusterConcentration: 1},
		},
		Measures: []string{"Fare"},
	})
}

// Police builds a POLICE-shaped dataset with 10 attributes, including the
// high-cardinality Violation (2110) candidate attribute of POLICE-q3 and
// the binary grouping attributes (ContrabandFound, DriverGender) of q1/q3.
func Police(rows int, seed int64, blockSize int) (*Dataset, error) {
	return Generate(Spec{
		Name:         "police",
		Rows:         rows,
		Clusters:     20,
		TailClusters: 4,
		BlockSize:    blockSize,
		Seed:         seed,
		Columns: []ColumnSpec{
			{Name: "RoadID", Cardinality: 210, Skew: 0.5, ClusterConcentration: 0.12},
			{Name: "Violation", Cardinality: 2110, Skew: 0.4, ClusterConcentration: 0.12,
				TailFraction: 0.75, TailShare: 0.03},
			{Name: "County", Cardinality: 39, Skew: 0.8, ClusterConcentration: 1},
			{Name: "ContrabandFound", Cardinality: 2, Skew: 0.9, ClusterConcentration: 0.4},
			{Name: "OfficerRace", Cardinality: 5, Skew: 0.7, ClusterConcentration: 0.4},
			{Name: "OfficerGender", Cardinality: 2, Skew: 0.5, ClusterConcentration: 1},
			{Name: "DriverRace", Cardinality: 5, Skew: 0.7, ClusterConcentration: 0.8},
			{Name: "DriverGender", Cardinality: 2, Skew: 0.3, ClusterConcentration: 0.4},
			{Name: "ViolationType", Cardinality: 12, Skew: 0.8, ClusterConcentration: 1},
			{Name: "StopOutcome", Cardinality: 6, Skew: 0.9, ClusterConcentration: 1},
		},
	})
}

// ByName returns the preset generator for a dataset name ("flights",
// "taxi", or "police").
func ByName(name string, rows int, seed int64, blockSize int) (*Dataset, error) {
	switch name {
	case "flights":
		return Flights(rows, seed, blockSize)
	case "taxi":
		return Taxi(rows, seed, blockSize)
	case "police":
		return Police(rows, seed, blockSize)
	}
	return nil, fmt.Errorf("datagen: unknown dataset %q (want flights, taxi, or police)", name)
}
