// Package datagen builds synthetic datasets that reproduce the statistical
// shape of the paper's FLIGHTS, TAXI, and POLICE datasets (Table 2/3).
//
// The real datasets are hundreds of millions of tuples of public records
// we do not ship; what HistSim's behaviour actually depends on is
// (a) the candidate attribute's cardinality and selectivity skew,
// (b) how the per-candidate conditional distributions over the grouping
// attribute cluster (some candidates nearly match each other, most don't),
// and (c) the physical layout. The generator reproduces all three with a
// naive-Bayes mixture model: each tuple draws a latent cluster, then every
// attribute value is drawn from a per-cluster, per-attribute distribution
// whose value weights follow a Zipf-like skew perturbed per cluster. Any
// (Z, X) attribute pair therefore has structured conditionals
// P(X | Z=z) = Σ_c P(c | z) P(X | c): candidates with similar cluster
// affinity have similar histograms, giving meaningful top-k sets, while
// Zipf marginals yield the long tails of rare candidates that stress
// stage 1 (TAXI has thousands of near-empty locations).
package datagen

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"fastmatch/internal/colstore"
)

// ColumnSpec describes one categorical attribute.
type ColumnSpec struct {
	// Name of the column.
	Name string
	// Cardinality is the number of distinct values (|V_A|).
	Cardinality int
	// Skew is the Zipf exponent of the value-frequency distribution;
	// 0 gives uniform marginals, 1–2 gives the heavy tails of attributes
	// like TAXI's Location.
	Skew float64
	// ClusterConcentration controls how much per-cluster conditionals
	// deviate from the marginal: small values (≈0.3) give sharply distinct
	// clusters, large values (≥10) make every candidate look alike.
	// Zero selects the default of 1.
	ClusterConcentration float64
	// TailFraction, when positive, relegates that fraction of the values
	// to a rare tail that collectively carries only TailShare of the
	// probability mass. This reproduces the real TAXI dataset's shape —
	// thousands of locations with just a handful of tuples — which
	// stresses stage-1 pruning.
	TailFraction float64
	// TailShare is the total mass of the tail (default 0.01 when
	// TailFraction > 0).
	TailShare float64
}

// Spec describes a full synthetic dataset.
type Spec struct {
	// Name identifies the dataset in reports.
	Name string
	// Rows is the number of tuples to generate.
	Rows int
	// Clusters is the number of latent mixture components; zero selects 12.
	Clusters int
	// TailClusters reserves that many of the clusters exclusively for
	// tail values of columns with TailFraction set: rows drawn from a
	// tail cluster take tail values, rows from head clusters take head
	// values. This keeps rare candidates' distributions away from the
	// frequent candidates' similarity clusters — the geometry observed in
	// the paper's real datasets, where the close matches of a frequent
	// target are themselves frequent. Zero disables the separation.
	TailClusters int
	// TailMass is the total row mass of the tail clusters (default: the
	// maximum TailShare across columns).
	TailMass float64
	// BlockSize is the tuples-per-block layout granularity; zero selects
	// the colstore default.
	BlockSize int
	// Columns lists the attributes.
	Columns []ColumnSpec
	// Measures lists numeric measure columns (for SUM queries); values are
	// drawn log-normally per cluster.
	Measures []string
	// Seed drives all randomness; the same spec and seed reproduce the
	// same dataset bit-for-bit.
	Seed int64
	// SkipShuffle leaves tuples in generation (cluster-correlated) order.
	// The default (false) applies the Challenge-1 random permutation.
	SkipShuffle bool
}

// Dataset bundles the generated table with its spec.
type Dataset struct {
	Spec  Spec
	Table *colstore.Table
}

// Generate builds a dataset from the spec.
func Generate(spec Spec) (*Dataset, error) {
	if spec.Rows < 0 {
		return nil, fmt.Errorf("datagen: negative rows %d", spec.Rows)
	}
	if len(spec.Columns) == 0 {
		return nil, fmt.Errorf("datagen: spec %q has no columns", spec.Name)
	}
	clusters := spec.Clusters
	if clusters <= 0 {
		clusters = 12
	}
	tailClusters := spec.TailClusters
	if tailClusters < 0 || tailClusters >= clusters {
		return nil, fmt.Errorf("datagen: tail clusters %d out of range for %d clusters", tailClusters, clusters)
	}
	tailMass := spec.TailMass
	if tailMass <= 0 {
		for _, cs := range spec.Columns {
			if cs.TailFraction > 0 && cs.TailShare > tailMass {
				tailMass = cs.TailShare
			}
		}
		if tailMass == 0 {
			tailMass = 0.01
		}
	}
	rng := rand.New(rand.NewSource(spec.Seed))

	builder := colstore.NewBuilder(spec.BlockSize)
	samplers := make([]*mixtureSampler, len(spec.Columns))
	for i, cs := range spec.Columns {
		if cs.Cardinality <= 0 {
			return nil, fmt.Errorf("datagen: column %q has cardinality %d", cs.Name, cs.Cardinality)
		}
		col, err := builder.AddColumn(cs.Name)
		if err != nil {
			return nil, err
		}
		for v := 0; v < cs.Cardinality; v++ {
			col.Dict.Intern(fmt.Sprintf("%s_%d", cs.Name, v))
		}
		samplers[i] = newMixtureSampler(rng, cs, clusters, tailClusters)
	}
	for _, m := range spec.Measures {
		if _, err := builder.AddMeasure(m); err != nil {
			return nil, err
		}
	}
	// Cluster weights: mildly skewed so clusters have unequal mass. When
	// tail clusters are reserved, they collectively carry tailMass.
	clusterWeights := dirichlet(rng, clusters, 2.0)
	if tailClusters > 0 {
		head := clusterWeights[:clusters-tailClusters]
		tail := clusterWeights[clusters-tailClusters:]
		rescale(head, 1-tailMass)
		rescale(tail, tailMass)
	}
	clusterCum := cumulative(clusterWeights)

	builder.Grow(spec.Rows)
	codes := make([]uint32, len(spec.Columns))
	measures := make([]float64, len(spec.Measures))
	// Per-cluster log-normal location for measures.
	measureMu := make([][]float64, len(spec.Measures))
	for m := range measureMu {
		measureMu[m] = make([]float64, clusters)
		for c := range measureMu[m] {
			measureMu[m][c] = rng.Float64() * 3
		}
	}
	for r := 0; r < spec.Rows; r++ {
		c := sampleCumulative(clusterCum, rng.Float64())
		for i, s := range samplers {
			codes[i] = s.sample(c, rng)
		}
		for m := range measures {
			measures[m] = math.Exp(measureMu[m][c] + rng.NormFloat64()*0.5)
		}
		if err := builder.AppendCodes(codes, measures); err != nil {
			return nil, err
		}
	}
	if !spec.SkipShuffle {
		builder.Shuffle(spec.Seed + 1)
	}
	return &Dataset{Spec: spec, Table: builder.Build()}, nil
}

// mixtureSampler draws values for one column conditioned on the latent
// cluster, via per-cluster cumulative distributions.
type mixtureSampler struct {
	perClusterCum [][]float64
}

func newMixtureSampler(rng *rand.Rand, cs ColumnSpec, clusters, tailClusters int) *mixtureSampler {
	conc := cs.ClusterConcentration
	if conc <= 0 {
		conc = 1
	}
	base := make([]float64, cs.Cardinality)
	isTail := make([]bool, cs.Cardinality)
	headCount := cs.Cardinality
	if cs.TailFraction > 0 && cs.TailFraction < 1 {
		headCount = cs.Cardinality - int(cs.TailFraction*float64(cs.Cardinality))
		if headCount < 1 {
			headCount = 1
		}
	}
	var headTotal float64
	for v := 0; v < headCount; v++ {
		base[v] = 1 / math.Pow(float64(v+1), cs.Skew)
		headTotal += base[v]
	}
	if headCount < cs.Cardinality {
		tailShare := cs.TailShare
		if tailShare <= 0 || tailShare >= 1 {
			tailShare = 0.01
		}
		// Scale head to (1−tailShare), spread tailShare uniformly over
		// the tail values.
		headScale := (1 - tailShare) / headTotal
		for v := 0; v < headCount; v++ {
			base[v] *= headScale
		}
		perTail := tailShare / float64(cs.Cardinality-headCount)
		for v := headCount; v < cs.Cardinality; v++ {
			base[v] = perTail
			isTail[v] = true
		}
	}
	// Shuffle the weights across value IDs so value ID order carries no
	// significance (dictionary code 0 is not always the most common).
	rng.Shuffle(len(base), func(i, j int) {
		base[i], base[j] = base[j], base[i]
		isTail[i], isTail[j] = isTail[j], isTail[i]
	})
	separate := tailClusters > 0 && headCount < cs.Cardinality
	headClusters := clusters - tailClusters
	ms := &mixtureSampler{perClusterCum: make([][]float64, clusters)}
	for c := 0; c < clusters; c++ {
		w := make([]float64, cs.Cardinality)
		for v := range w {
			if separate {
				// Head clusters emit only head values; tail clusters only
				// tail values.
				if isTail[v] != (c >= headClusters) {
					continue
				}
			}
			w[v] = base[v] * gamma(rng, conc)
		}
		ms.perClusterCum[c] = cumulative(w)
	}
	return ms
}

// rescale scales w in place so it sums to total.
func rescale(w []float64, total float64) {
	var sum float64
	for _, v := range w {
		sum += v
	}
	if sum <= 0 {
		for i := range w {
			w[i] = total / float64(len(w))
		}
		return
	}
	f := total / sum
	for i := range w {
		w[i] *= f
	}
}

func (ms *mixtureSampler) sample(cluster int, rng *rand.Rand) uint32 {
	return uint32(sampleCumulative(ms.perClusterCum[cluster], rng.Float64()))
}

// dirichlet draws a Dirichlet(alpha, ..., alpha) sample of dimension n via
// normalized Gamma draws.
func dirichlet(rng *rand.Rand, n int, alpha float64) []float64 {
	w := make([]float64, n)
	for i := range w {
		w[i] = gamma(rng, alpha)
	}
	return w
}

// gamma draws from Gamma(shape, 1) using the Marsaglia–Tsang method, with
// the shape<1 boost. Stdlib has no gamma sampler, so this is part of the
// statistics substrate we build ourselves.
func gamma(rng *rand.Rand, shape float64) float64 {
	if shape <= 0 {
		return 0
	}
	if shape < 1 {
		// Boost: G(a) = G(a+1) * U^{1/a}.
		u := rng.Float64()
		for u == 0 {
			u = rng.Float64()
		}
		return gamma(rng, shape+1) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		x := rng.NormFloat64()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := rng.Float64()
		if u == 0 {
			continue
		}
		if math.Log(u) < 0.5*x*x+d-d*v+d*math.Log(v) {
			return d * v
		}
	}
}

// cumulative converts weights to a normalized cumulative distribution.
func cumulative(w []float64) []float64 {
	cum := make([]float64, len(w))
	var total float64
	for _, v := range w {
		total += v
	}
	if total <= 0 {
		// Degenerate input: fall back to uniform.
		for i := range cum {
			cum[i] = float64(i+1) / float64(len(w))
		}
		return cum
	}
	var run float64
	for i, v := range w {
		run += v / total
		cum[i] = run
	}
	cum[len(cum)-1] = 1
	return cum
}

// sampleCumulative inverts a cumulative distribution at probability u.
func sampleCumulative(cum []float64, u float64) int {
	i := sort.SearchFloat64s(cum, u)
	if i >= len(cum) {
		i = len(cum) - 1
	}
	return i
}
