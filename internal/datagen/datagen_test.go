package datagen

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestGenerateValidation(t *testing.T) {
	if _, err := Generate(Spec{Name: "x", Rows: 10}); err == nil {
		t.Fatal("spec with no columns accepted")
	}
	if _, err := Generate(Spec{Name: "x", Rows: -1,
		Columns: []ColumnSpec{{Name: "z", Cardinality: 2}}}); err == nil {
		t.Fatal("negative rows accepted")
	}
	if _, err := Generate(Spec{Name: "x", Rows: 1,
		Columns: []ColumnSpec{{Name: "z", Cardinality: 0}}}); err == nil {
		t.Fatal("zero cardinality accepted")
	}
}

func TestGenerateShape(t *testing.T) {
	ds, err := Generate(Spec{
		Name:      "tiny",
		Rows:      1000,
		BlockSize: 64,
		Seed:      1,
		Columns: []ColumnSpec{
			{Name: "Z", Cardinality: 20, Skew: 1.0},
			{Name: "X", Cardinality: 8, Skew: 0.2},
		},
		Measures: []string{"M"},
	})
	if err != nil {
		t.Fatal(err)
	}
	tbl := ds.Table
	if tbl.NumRows() != 1000 {
		t.Fatalf("rows = %d", tbl.NumRows())
	}
	z, err := tbl.Column("Z")
	if err != nil {
		t.Fatal(err)
	}
	if z.Cardinality() != 20 {
		t.Fatalf("Z cardinality = %d", z.Cardinality())
	}
	m, err := tbl.Measure("M")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < tbl.NumRows(); i++ {
		if m.Value(i) <= 0 {
			t.Fatalf("measure at row %d is %g, want positive", i, m.Value(i))
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	spec := Spec{
		Name: "det", Rows: 500, Seed: 42,
		Columns: []ColumnSpec{{Name: "Z", Cardinality: 10, Skew: 0.5}},
	}
	a, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	za, _ := a.Table.Column("Z")
	zb, _ := b.Table.Column("Z")
	for i := 0; i < 500; i++ {
		if za.Code(i) != zb.Code(i) {
			t.Fatal("same seed produced different datasets")
		}
	}
	spec.Seed = 43
	c, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	zc, _ := c.Table.Column("Z")
	diff := 0
	for i := 0; i < 500; i++ {
		if za.Code(i) != zc.Code(i) {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("different seeds produced identical datasets")
	}
}

func TestZipfSkewProducesRareCandidates(t *testing.T) {
	// With strong skew and many candidates, most candidates should be rare
	// — the TAXI property the paper calls out (>3000 locations with <10
	// datapoints).
	ds, err := Generate(Spec{
		Name: "skewed", Rows: 50_000, Seed: 3, Clusters: 6,
		Columns: []ColumnSpec{{Name: "Z", Cardinality: 2000, Skew: 1.4}},
	})
	if err != nil {
		t.Fatal(err)
	}
	z, _ := ds.Table.Column("Z")
	counts := make([]int, 2000)
	for i := 0; i < ds.Table.NumRows(); i++ {
		counts[z.Code(i)]++
	}
	rare, common := 0, 0
	for _, c := range counts {
		if c < 10 {
			rare++
		}
		if c > 500 {
			common++
		}
	}
	if rare < 500 {
		t.Fatalf("only %d rare candidates; skew not producing long tail", rare)
	}
	if common < 5 {
		t.Fatalf("only %d common candidates; head missing", common)
	}
}

func TestClustersCreateSimilarCandidates(t *testing.T) {
	// With low concentration, candidates sharing cluster affinity should
	// have visibly similar conditional distributions: the minimum pairwise
	// L1 distance among the frequent candidates should be much smaller
	// than the maximum.
	ds, err := Generate(Spec{
		Name: "clustered", Rows: 60_000, Seed: 9, Clusters: 6,
		Columns: []ColumnSpec{
			{Name: "Z", Cardinality: 40, Skew: 0.4, ClusterConcentration: 0.4},
			{Name: "X", Cardinality: 10, Skew: 0.2, ClusterConcentration: 0.4},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	z, _ := ds.Table.Column("Z")
	x, _ := ds.Table.Column("X")
	cond := make([][]float64, 40)
	tot := make([]float64, 40)
	for i := range cond {
		cond[i] = make([]float64, 10)
	}
	for i := 0; i < ds.Table.NumRows(); i++ {
		cond[z.Code(i)][x.Code(i)]++
		tot[z.Code(i)]++
	}
	var minD, maxD float64 = math.Inf(1), 0
	for i := 0; i < 40; i++ {
		if tot[i] < 300 {
			continue
		}
		for j := i + 1; j < 40; j++ {
			if tot[j] < 300 {
				continue
			}
			var d float64
			for g := 0; g < 10; g++ {
				d += math.Abs(cond[i][g]/tot[i] - cond[j][g]/tot[j])
			}
			if d < minD {
				minD = d
			}
			if d > maxD {
				maxD = d
			}
		}
	}
	if !(minD < maxD/3) {
		t.Fatalf("no similarity structure: min pairwise L1 %g vs max %g", minD, maxD)
	}
}

func TestPresets(t *testing.T) {
	for _, name := range []string{"flights", "taxi", "police"} {
		ds, err := ByName(name, 2000, 5, 128)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if ds.Table.NumRows() != 2000 {
			t.Fatalf("%s rows = %d", name, ds.Table.NumRows())
		}
	}
	if _, err := ByName("unknown", 10, 1, 0); err == nil {
		t.Fatal("unknown preset accepted")
	}
}

func TestPresetCardinalitiesMatchPaper(t *testing.T) {
	ds, err := Flights(100, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []struct {
		col  string
		card int
	}{{"Origin", 347}, {"Dest", 351}, {"DepartureHour", 24}, {"DayOfWeek", 7}} {
		c, err := ds.Table.Column(want.col)
		if err != nil {
			t.Fatal(err)
		}
		if c.Cardinality() != want.card {
			t.Errorf("%s cardinality = %d, want %d", want.col, c.Cardinality(), want.card)
		}
	}
	taxi, err := Taxi(100, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	loc, _ := taxi.Table.Column("Location")
	if loc.Cardinality() != 7641 {
		t.Errorf("Location cardinality = %d, want 7641", loc.Cardinality())
	}
	police, err := Police(100, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	viol, _ := police.Table.Column("Violation")
	if viol.Cardinality() != 2110 {
		t.Errorf("Violation cardinality = %d, want 2110", viol.Cardinality())
	}
	if got := len(police.Table.Columns()); got != 10 {
		t.Errorf("police has %d attributes, want 10", got)
	}
}

func TestGammaSamplerMoments(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical test skipped in -short mode")
	}
	rng := rand.New(rand.NewSource(13))
	for _, shape := range []float64{0.5, 1, 2.5, 8} {
		n := 20000
		var sum, sumSq float64
		for i := 0; i < n; i++ {
			g := gamma(rng, shape)
			if g < 0 {
				t.Fatalf("gamma(%g) produced negative sample %g", shape, g)
			}
			sum += g
			sumSq += g * g
		}
		mean := sum / float64(n)
		variance := sumSq/float64(n) - mean*mean
		// Gamma(shape, 1): mean = shape, var = shape.
		if math.Abs(mean-shape) > 0.1*shape+0.05 {
			t.Errorf("gamma(%g) mean = %g", shape, mean)
		}
		if math.Abs(variance-shape) > 0.25*shape+0.1 {
			t.Errorf("gamma(%g) variance = %g", shape, variance)
		}
	}
	if gamma(rng, 0) != 0 || gamma(rng, -1) != 0 {
		t.Error("non-positive shape should return 0")
	}
}

// Property: cumulative() is sorted, ends at exactly 1, and
// sampleCumulative returns in-range indices for any u in [0,1).
func TestCumulativeProperty(t *testing.T) {
	f := func(seed int64, n8 uint8) bool {
		n := int(n8%30) + 1
		rng := rand.New(rand.NewSource(seed))
		w := make([]float64, n)
		for i := range w {
			w[i] = rng.Float64()
		}
		cum := cumulative(w)
		if !sort.Float64sAreSorted(cum) || cum[len(cum)-1] != 1 {
			return false
		}
		for trial := 0; trial < 20; trial++ {
			i := sampleCumulative(cum, rng.Float64())
			if i < 0 || i >= n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestCumulativeDegenerate(t *testing.T) {
	cum := cumulative([]float64{0, 0, 0})
	if cum[2] != 1 {
		t.Fatalf("degenerate cumulative should end at 1: %v", cum)
	}
	if i := sampleCumulative(cum, 0.99); i != 2 {
		t.Fatalf("degenerate sample = %d", i)
	}
}

func TestSkipShuffle(t *testing.T) {
	// Without shuffling, generation order is cluster-correlated; with it,
	// prefix distributions should approximate the global distribution. We
	// just verify the flag changes the layout.
	base := Spec{
		Name: "s", Rows: 2000, Seed: 77, Clusters: 4,
		Columns: []ColumnSpec{{Name: "Z", Cardinality: 6, Skew: 0.5, ClusterConcentration: 0.3}},
	}
	shuffledSpec := base
	unshuffledSpec := base
	unshuffledSpec.SkipShuffle = true
	a, err := Generate(shuffledSpec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(unshuffledSpec)
	if err != nil {
		t.Fatal(err)
	}
	za, _ := a.Table.Column("Z")
	zb, _ := b.Table.Column("Z")
	same := true
	for i := 0; i < 2000; i++ {
		if za.Code(i) != zb.Code(i) {
			same = false
			break
		}
	}
	if same {
		t.Fatal("SkipShuffle had no effect on layout")
	}
}
