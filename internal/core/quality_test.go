package core

import (
	"errors"
	"math"
	"reflect"
	"testing"
)

// runTwin runs the same population/seed twice — once with quality
// collection, once without — and returns both results.
func runTwin(t *testing.T, params Params) (plain, collected *Result) {
	t.Helper()
	pop := makePopulation(t, 21, 150_000, 16, 8, 0.1)

	p1 := params
	r1, err := Run(pop.sampler(t, 5), pop.targets, p1)
	if err != nil {
		t.Fatal(err)
	}
	p2 := params
	p2.CollectQuality = true
	r2, err := Run(pop.sampler(t, 5), pop.targets, p2)
	if err != nil {
		t.Fatal(err)
	}
	return r1, r2
}

func TestQualityCollectionDoesNotPerturbAnswer(t *testing.T) {
	plain, collected := runTwin(t, defaultParams())
	if collected.Quality == nil {
		t.Fatal("CollectQuality run returned no Quality report")
	}
	if plain.Quality != nil {
		t.Fatal("plain run grew a Quality report")
	}
	// Null the report and the two results must be deeply equal: quality
	// collection reads the estimates, never steers them.
	c := *collected
	c.Quality = nil
	if !reflect.DeepEqual(plain, &c) {
		t.Fatalf("quality collection perturbed the answer:\nplain:     %+v\ncollected: %+v", plain, &c)
	}
}

func TestQualityReportAnatomy(t *testing.T) {
	_, res := runTwin(t, defaultParams())
	q := res.Quality
	if q.Termination != TerminationGuarantee && q.Termination != TerminationExact {
		t.Fatalf("completed run terminated %q", q.Termination)
	}
	if !q.GuaranteeMet || q.Truncated {
		t.Fatalf("completed run: GuaranteeMet=%v Truncated=%v", q.GuaranteeMet, q.Truncated)
	}
	if q.Rounds != res.Stats.Rounds {
		t.Fatalf("Quality.Rounds=%d, Stats.Rounds=%d", q.Rounds, res.Stats.Rounds)
	}
	if q.PrunedCandidates != res.Stats.PrunedCandidates {
		t.Fatalf("Quality.PrunedCandidates=%d, Stats=%d", q.PrunedCandidates, res.Stats.PrunedCandidates)
	}
	if got, want := q.FinalSlack, q.FinalGap-defaultParams().Epsilon; math.Abs(got-want) > 1e-12 {
		t.Fatalf("FinalSlack=%g, want FinalGap-ε=%g", got, want)
	}
	if len(q.Matches) != len(res.TopK) {
		t.Fatalf("%d quality matches for %d TopK entries", len(q.Matches), len(res.TopK))
	}
	for i, m := range q.Matches {
		rk := res.TopK[i]
		if m.ID != rk.ID || m.Distance != rk.Distance {
			t.Fatalf("match %d: quality (id=%d d=%g) misaligned with TopK (id=%d d=%g)",
				i, m.ID, m.Distance, rk.ID, rk.Distance)
		}
		if m.Samples <= 0 {
			t.Fatalf("match %d: no samples behind the estimate", i)
		}
		if !(m.CI > 0 && m.CI <= ciDiameter) || math.IsNaN(m.CI) {
			t.Fatalf("match %d: CI=%g outside (0, %d]", i, m.CI, ciDiameter)
		}
	}
}

func TestQualitySnapshotsCarryConvergenceTelemetry(t *testing.T) {
	pop := makePopulation(t, 23, 150_000, 16, 8, 0.1)
	params := defaultParams()
	params.CollectQuality = true
	var snaps []Snapshot
	_, err := RunObserved(pop.sampler(t, 9), pop.targets, params, func(s Snapshot) {
		snaps = append(snaps, s)
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) == 0 {
		t.Fatal("no snapshots emitted")
	}
	for i, s := range snaps {
		q := s.Quality
		if q == nil {
			t.Fatalf("snapshot %d has no quality telemetry", i)
		}
		if q.Phase != s.Phase || q.Round != s.Round {
			t.Fatalf("snapshot %d: quality phase/round %s/%d vs snapshot %s/%d",
				i, q.Phase, q.Round, s.Phase, s.Round)
		}
		if got, want := q.Slack, q.Gap-params.Epsilon; math.Abs(got-want) > 1e-12 {
			t.Fatalf("snapshot %d: Slack=%g, want Gap-ε=%g", i, got, want)
		}
		if len(q.TopK) != len(s.TopK) {
			t.Fatalf("snapshot %d: %d quality entries for %d TopK", i, len(q.TopK), len(s.TopK))
		}
		for j, cq := range q.TopK {
			if cq.ID != s.TopK[j].ID {
				t.Fatalf("snapshot %d entry %d: id %d vs ranked %d", i, j, cq.ID, s.TopK[j].ID)
			}
		}
		if i == 0 && q.Churn != 0 {
			t.Fatalf("first emission churn=%d, want 0", q.Churn)
		}
	}
	// Telemetry must not depend on an observer being attached: the same
	// run without one yields the same final churn total.
	p2 := params
	res, err := Run(pop.sampler(t, 9), pop.targets, p2)
	if err != nil {
		t.Fatal(err)
	}
	var churn int
	for _, s := range snaps {
		churn += s.Quality.Churn
	}
	if res.Quality.Churn != churn {
		t.Fatalf("observerless churn=%d, observed emissions sum to %d", res.Quality.Churn, churn)
	}
}

func TestQualityTruncatedRun(t *testing.T) {
	pop := makePopulation(t, 25, 200_000, 12, 6, 0)
	params := defaultParams()
	params.Stage1Samples = 5_000
	params.CollectQuality = true
	s := &interruptingSampler{SliceSampler: pop.sampler(t, 3), after: 2}
	res, err := Run(s, pop.targets, params)
	if !errors.Is(err, ErrInterrupted) {
		t.Fatalf("want ErrInterrupted, got %v", err)
	}
	q := res.Quality
	if q == nil {
		t.Fatal("truncated run returned no Quality report")
	}
	if q.Termination != TerminationTruncated || !q.Truncated || q.GuaranteeMet {
		t.Fatalf("truncated run: Termination=%q Truncated=%v GuaranteeMet=%v",
			q.Termination, q.Truncated, q.GuaranteeMet)
	}
	if len(q.Matches) != len(res.TopK) {
		t.Fatalf("%d quality matches for %d TopK entries", len(q.Matches), len(res.TopK))
	}
}

func TestQualityExactRun(t *testing.T) {
	pop := makePopulation(t, 2, 3000, 12, 6, 0)
	params := defaultParams()
	params.Epsilon = 0.01
	params.Delta = 0.001
	params.CollectQuality = true
	res, err := Run(pop.sampler(t, 3), pop.targets, params)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Exact {
		t.Fatal("tiny dataset should exhaust to an exact answer")
	}
	if res.Quality.Termination != TerminationExact || !res.Quality.GuaranteeMet {
		t.Fatalf("exact run: %+v", res.Quality)
	}
}
