package core

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"fastmatch/internal/histogram"
)

// The merge contract: Batch is a mergeable value. These are property
// tests over seeded random batches — commutativity and associativity of
// Merge, and the ground-truth property that partition-and-merge equals a
// single stream (SliceSampler is the oracle).

// randBatch builds a random batch over nCand candidates and groups
// groups, with integral histogram cells (the only kind samplers
// produce).
func randBatch(rng *rand.Rand, nCand, groups int) *Batch {
	b := &Batch{
		Drawn:  rng.Int63n(10_000),
		Counts: make([]int64, nCand),
		Hists:  make([]*histogram.Histogram, nCand),
	}
	for i := 0; i < nCand; i++ {
		b.Counts[i] = rng.Int63n(500)
		if rng.Intn(3) == 0 {
			continue // nil histogram: candidate with no fresh samples
		}
		h := histogram.New(groups)
		for g := 0; g < groups; g++ {
			h.AddN(g, float64(rng.Intn(50)))
		}
		b.Hists[i] = h
	}
	if rng.Intn(2) == 0 {
		b.Exact = make([]bool, nCand)
		for i := range b.Exact {
			b.Exact[i] = rng.Intn(4) == 0
		}
	}
	b.Exhausted = rng.Intn(4) == 0
	return b
}

// cloneBatch deep-copies a batch so Merge's ownership transfer cannot
// alias test inputs.
func cloneBatch(b *Batch) *Batch {
	c := &Batch{
		Drawn:     b.Drawn,
		Counts:    append([]int64(nil), b.Counts...),
		Hists:     make([]*histogram.Histogram, len(b.Hists)),
		Exhausted: b.Exhausted,
	}
	for i, h := range b.Hists {
		if h != nil {
			c.Hists[i] = h.Clone()
		}
	}
	if b.Exact != nil {
		c.Exact = append([]bool(nil), b.Exact...)
	}
	return c
}

// batchEqual compares two batches bit-exactly (histogram cells via
// Float64bits: the contract is byte-identity, not tolerance).
func batchEqual(a, b *Batch) error {
	if a.Drawn != b.Drawn {
		return fmt.Errorf("Drawn %d vs %d", a.Drawn, b.Drawn)
	}
	if len(a.Counts) != len(b.Counts) {
		return fmt.Errorf("Counts length %d vs %d", len(a.Counts), len(b.Counts))
	}
	for i := range a.Counts {
		if a.Counts[i] != b.Counts[i] {
			return fmt.Errorf("Counts[%d] %d vs %d", i, a.Counts[i], b.Counts[i])
		}
	}
	for i := range a.Hists {
		ah, bh := a.Hists[i], b.Hists[i]
		switch {
		case ah == nil && bh == nil:
		case ah == nil || bh == nil:
			// A nil histogram and an all-zero histogram estimate the same
			// thing, but merge order must not decide which one appears.
			return fmt.Errorf("Hists[%d] nil mismatch", i)
		default:
			for g := 0; g < ah.Groups(); g++ {
				if math.Float64bits(ah.Count(g)) != math.Float64bits(bh.Count(g)) {
					return fmt.Errorf("Hists[%d].Count(%d) %v vs %v", i, g, ah.Count(g), bh.Count(g))
				}
			}
		}
	}
	if a.Exhausted != b.Exhausted {
		return fmt.Errorf("Exhausted %v vs %v", a.Exhausted, b.Exhausted)
	}
	if (a.Exact == nil) != (b.Exact == nil) {
		return fmt.Errorf("Exact nil mismatch")
	}
	for i := range a.Exact {
		if a.Exact[i] != b.Exact[i] {
			return fmt.Errorf("Exact[%d] %v vs %v", i, a.Exact[i], b.Exact[i])
		}
	}
	return nil
}

func TestBatchMergeCommutative(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 100; trial++ {
		nCand, groups := 1+rng.Intn(12), 1+rng.Intn(8)
		a := randBatch(rng, nCand, groups)
		b := randBatch(rng, nCand, groups)
		// Exact-nil asymmetry is allowed by the contract (nil means "no
		// tracking"), but when both sides track, order must not matter.
		ab := cloneBatch(a)
		if err := ab.Merge(cloneBatch(b)); err != nil {
			t.Fatal(err)
		}
		ba := cloneBatch(b)
		if err := ba.Merge(cloneBatch(a)); err != nil {
			t.Fatal(err)
		}
		if (a.Exact == nil) != (b.Exact == nil) {
			// Normalize the one legal asymmetry before comparing.
			if ab.Exact == nil || ba.Exact == nil {
				t.Fatalf("trial %d: Exact dropped by merge", trial)
			}
		}
		if err := batchEqual(ab, ba); err != nil {
			t.Fatalf("trial %d: a⊕b != b⊕a: %v", trial, err)
		}
	}
}

func TestBatchMergeAssociative(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 100; trial++ {
		nCand, groups := 1+rng.Intn(12), 1+rng.Intn(8)
		a := randBatch(rng, nCand, groups)
		b := randBatch(rng, nCand, groups)
		c := randBatch(rng, nCand, groups)
		left := cloneBatch(a)
		if err := left.Merge(cloneBatch(b)); err != nil {
			t.Fatal(err)
		}
		if err := left.Merge(cloneBatch(c)); err != nil {
			t.Fatal(err)
		}
		bc := cloneBatch(b)
		if err := bc.Merge(cloneBatch(c)); err != nil {
			t.Fatal(err)
		}
		right := cloneBatch(a)
		if err := right.Merge(bc); err != nil {
			t.Fatal(err)
		}
		if err := batchEqual(left, right); err != nil {
			t.Fatalf("trial %d: (a⊕b)⊕c != a⊕(b⊕c): %v", trial, err)
		}
	}
}

func TestBatchMergeRejectsMismatchedDomains(t *testing.T) {
	a := &Batch{Counts: make([]int64, 3), Hists: make([]*histogram.Histogram, 3)}
	b := &Batch{Counts: make([]int64, 4), Hists: make([]*histogram.Histogram, 4)}
	if err := a.Merge(b); err == nil {
		t.Fatal("merging batches over different candidate domains did not error")
	}
}

// TestMergedPartialsMatchSliceSampler is the ground-truth property: a
// relation partitioned into P chunks, each consumed by its own
// SliceSampler, merged in partition order, must equal the single-stream
// SliceSampler batch over the whole relation — Drawn, Counts, histogram
// bits, Exhausted, all of it. This is exactly the shape of a parallel
// sampling round (and of a future shard scatter-gather).
func TestMergedPartialsMatchSliceSampler(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	for trial := 0; trial < 20; trial++ {
		n := 200 + rng.Intn(2000)
		nCand, groups := 1+rng.Intn(10), 1+rng.Intn(6)
		z := make([]uint32, n)
		x := make([]uint32, n)
		for i := range z {
			z[i] = uint32(rng.Intn(nCand))
			x[i] = uint32(rng.Intn(groups))
		}
		single, err := NewSliceSampler(z, x, nCand, groups, nil)
		if err != nil {
			t.Fatal(err)
		}
		want, err := single.Stage1(n)
		if err != nil {
			t.Fatal(err)
		}
		if !want.Exhausted {
			t.Fatal("single stream did not exhaust")
		}

		parts := 2 + rng.Intn(5)
		got := &Batch{Counts: make([]int64, nCand), Hists: make([]*histogram.Histogram, nCand)}
		lo := 0
		for p := 0; p < parts; p++ {
			hi := lo + (n-lo)/(parts-p)
			if p == parts-1 {
				hi = n
			}
			ps, err := NewSliceSampler(z[lo:hi], x[lo:hi], nCand, groups, nil)
			if err != nil {
				t.Fatal(err)
			}
			pb, err := ps.Stage1(hi - lo)
			if err != nil {
				t.Fatal(err)
			}
			if err := got.Merge(pb); err != nil {
				t.Fatal(err)
			}
			lo = hi
		}
		if err := batchEqual(got, want); err != nil {
			t.Fatalf("trial %d (%d rows, %d parts): merged partials diverge from single stream: %v", trial, n, parts, err)
		}
	}
}
