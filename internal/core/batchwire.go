package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"

	"fastmatch/internal/histogram"
)

// Batch wire encoding
//
// Shard daemons ship sampling-round partials to the coordinator as
// encoded Batches; the coordinator folds them with Batch.Merge, so the
// encoding must be value-exact: histogram cells travel as raw Float64
// bits (they only ever hold integral tuple counts, so decode→Merge is
// bit-identical to merging the in-memory originals). The format is
// self-describing and checksummed:
//
//	[4]  magic "FMBW"
//	[2]  version (little-endian uint16)
//	[8]  Drawn (int64)
//	[4]  candidate count n (uint32)
//	[8n] Counts (int64 each)
//	per candidate: [4] group count g (0 = nil histogram), then
//	               [8g] cells (Float64bits)
//	[1]  Exhausted (0/1)
//	[1]  Exact present (0/1), then [n] Exact flags when present
//	[4]  CRC32 (IEEE) over everything above
//
// Decoding validates the magic, the version, every length against the
// payload size, and the trailing checksum, returning the typed errors
// below so callers can distinguish cross-version peers from corruption.
var (
	// ErrWireMagic means the payload is not a Batch encoding at all.
	ErrWireMagic = errors.New("core: batch wire: bad magic")
	// ErrWireVersion means the payload is a Batch encoding from an
	// incompatible format version.
	ErrWireVersion = errors.New("core: batch wire: unsupported version")
	// ErrWireCorrupt means the payload is truncated, has inconsistent
	// lengths, or fails its checksum.
	ErrWireCorrupt = errors.New("core: batch wire: corrupt payload")
)

const (
	batchWireMagic   = "FMBW"
	batchWireVersion = 1
)

// EncodeBatch serializes b. A nil batch encodes as an empty batch with
// zero candidates.
func EncodeBatch(b *Batch) []byte {
	if b == nil {
		b = &Batch{}
	}
	size := 4 + 2 + 8 + 4 + 8*len(b.Counts) + 4*len(b.Hists) + 1 + 1 + 4
	for _, h := range b.Hists {
		if h != nil {
			size += 8 * h.Groups()
		}
	}
	if b.Exact != nil {
		size += len(b.Exact)
	}
	buf := make([]byte, 0, size)
	buf = append(buf, batchWireMagic...)
	buf = binary.LittleEndian.AppendUint16(buf, batchWireVersion)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(b.Drawn))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(b.Counts)))
	for _, c := range b.Counts {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(c))
	}
	for _, h := range b.Hists {
		if h == nil {
			buf = binary.LittleEndian.AppendUint32(buf, 0)
			continue
		}
		buf = binary.LittleEndian.AppendUint32(buf, uint32(h.Groups()))
		for g := 0; g < h.Groups(); g++ {
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(h.Count(g)))
		}
	}
	if b.Exhausted {
		buf = append(buf, 1)
	} else {
		buf = append(buf, 0)
	}
	if b.Exact == nil {
		buf = append(buf, 0)
	} else {
		buf = append(buf, 1)
		for _, e := range b.Exact {
			if e {
				buf = append(buf, 1)
			} else {
				buf = append(buf, 0)
			}
		}
	}
	return binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf))
}

// batchWireReader walks an encoded payload with bounds checking.
type batchWireReader struct {
	data []byte
	pos  int
}

func (r *batchWireReader) need(n int) ([]byte, error) {
	if n < 0 || r.pos+n > len(r.data) {
		return nil, fmt.Errorf("%w: truncated at offset %d (want %d more bytes of %d)",
			ErrWireCorrupt, r.pos, n, len(r.data))
	}
	out := r.data[r.pos : r.pos+n]
	r.pos += n
	return out, nil
}

func (r *batchWireReader) u16() (uint16, error) {
	b, err := r.need(2)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint16(b), nil
}

func (r *batchWireReader) u32() (uint32, error) {
	b, err := r.need(4)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b), nil
}

func (r *batchWireReader) u64() (uint64, error) {
	b, err := r.need(8)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b), nil
}

func (r *batchWireReader) byte() (byte, error) {
	b, err := r.need(1)
	if err != nil {
		return 0, err
	}
	return b[0], nil
}

// DecodeBatch parses an EncodeBatch payload, validating structure and
// checksum. The returned batch owns freshly allocated state and may be
// merged or mutated freely.
func DecodeBatch(data []byte) (*Batch, error) {
	if len(data) < 4 || string(data[:4]) != batchWireMagic {
		return nil, ErrWireMagic
	}
	if len(data) < 4+2+4 {
		return nil, fmt.Errorf("%w: %d bytes is below the minimum frame", ErrWireCorrupt, len(data))
	}
	body, sum := data[:len(data)-4], binary.LittleEndian.Uint32(data[len(data)-4:])
	if got := crc32.ChecksumIEEE(body); got != sum {
		return nil, fmt.Errorf("%w: checksum mismatch (got %08x want %08x)", ErrWireCorrupt, got, sum)
	}
	r := &batchWireReader{data: body, pos: 4}
	v, err := r.u16()
	if err != nil {
		return nil, err
	}
	if v != batchWireVersion {
		return nil, fmt.Errorf("%w: version %d (this build speaks %d)", ErrWireVersion, v, batchWireVersion)
	}
	drawn, err := r.u64()
	if err != nil {
		return nil, err
	}
	n, err := r.u32()
	if err != nil {
		return nil, err
	}
	// Each candidate costs at least 12 bytes (count + nil-histogram
	// marker); reject counts the payload cannot possibly hold before
	// allocating.
	if int64(n) > int64(len(body))/12+1 {
		return nil, fmt.Errorf("%w: candidate count %d exceeds payload capacity", ErrWireCorrupt, n)
	}
	b := &Batch{
		Drawn:  int64(drawn),
		Counts: make([]int64, n),
		Hists:  make([]*histogram.Histogram, n),
	}
	for i := range b.Counts {
		c, err := r.u64()
		if err != nil {
			return nil, err
		}
		b.Counts[i] = int64(c)
	}
	for i := range b.Hists {
		g, err := r.u32()
		if err != nil {
			return nil, err
		}
		if g == 0 {
			continue
		}
		if int64(g) > int64(len(body))/8+1 {
			return nil, fmt.Errorf("%w: group count %d exceeds payload capacity", ErrWireCorrupt, g)
		}
		cells := make([]float64, g)
		for j := range cells {
			bits, err := r.u64()
			if err != nil {
				return nil, err
			}
			cells[j] = math.Float64frombits(bits)
		}
		b.Hists[i] = histogram.FromCounts(cells)
	}
	exh, err := r.byte()
	if err != nil {
		return nil, err
	}
	b.Exhausted = exh != 0
	hasExact, err := r.byte()
	if err != nil {
		return nil, err
	}
	if hasExact != 0 {
		flags, err := r.need(int(n))
		if err != nil {
			return nil, err
		}
		b.Exact = make([]bool, n)
		for i, f := range flags {
			b.Exact[i] = f != 0
		}
	}
	if r.pos != len(body) {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrWireCorrupt, len(body)-r.pos)
	}
	return b, nil
}
