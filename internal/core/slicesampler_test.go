package core

import (
	"testing"
	"testing/quick"

	"math/rand"
)

func TestNewSliceSamplerValidation(t *testing.T) {
	if _, err := NewSliceSampler([]uint32{0}, []uint32{0, 1}, 1, 2, nil); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := NewSliceSampler([]uint32{0}, []uint32{0}, 0, 2, nil); err == nil {
		t.Fatal("zero candidates accepted")
	}
	if _, err := NewSliceSampler([]uint32{5}, []uint32{0}, 2, 2, nil); err == nil {
		t.Fatal("out-of-range z code accepted")
	}
	if _, err := NewSliceSampler([]uint32{0}, []uint32{5}, 2, 2, nil); err == nil {
		t.Fatal("out-of-range x code accepted")
	}
}

func TestSliceSamplerStage1(t *testing.T) {
	z := []uint32{0, 1, 0, 1, 0}
	x := []uint32{0, 1, 1, 0, 0}
	s, err := NewSliceSampler(z, x, 2, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Stage1(3)
	if err != nil {
		t.Fatal(err)
	}
	if b.Counts[0]+b.Counts[1] != 3 {
		t.Fatalf("stage1 batch size %d, want 3", b.Counts[0]+b.Counts[1])
	}
	if b.Exhausted {
		t.Fatal("not exhausted after 3 of 5")
	}
	b2, _ := s.Stage1(10)
	if !b2.Exhausted {
		t.Fatal("should be exhausted")
	}
	if b2.Counts[0]+b2.Counts[1] != 2 {
		t.Fatalf("second batch size %d, want 2", b2.Counts[0]+b2.Counts[1])
	}
}

func TestSliceSamplerSampleUntil(t *testing.T) {
	n := 1000
	z := make([]uint32, n)
	x := make([]uint32, n)
	for i := range z {
		z[i] = uint32(i % 4)
		x[i] = uint32(i % 3)
	}
	seed := int64(5)
	s, err := NewSliceSampler(z, x, 4, 3, &seed)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.SampleUntil(map[int]int{1: 20, 3: 10})
	if err != nil {
		t.Fatal(err)
	}
	if b.Counts[1] < 20 || b.Counts[3] < 10 {
		t.Fatalf("needs unmet: %v", b.Counts)
	}
	if b.Exhausted {
		t.Fatal("should not exhaust for small needs")
	}
	if _, err := s.SampleUntil(map[int]int{99: 1}); err == nil {
		t.Fatal("unknown candidate accepted")
	}
}

func TestSliceSamplerExhaustsOnImpossibleNeed(t *testing.T) {
	z := []uint32{0, 0, 1}
	x := []uint32{0, 1, 0}
	s, _ := NewSliceSampler(z, x, 2, 2, nil)
	b, err := s.SampleUntil(map[int]int{1: 100})
	if err != nil {
		t.Fatal(err)
	}
	if !b.Exhausted {
		t.Fatal("should exhaust when need exceeds data")
	}
	if b.Counts[1] != 1 {
		t.Fatalf("candidate 1 count %d, want 1", b.Counts[1])
	}
}

// Property: batches across calls are disjoint and together reproduce the
// exact histograms once exhausted.
func TestSliceSamplerBatchesPartitionData(t *testing.T) {
	f := func(seed int64, n16 uint16) bool {
		n := int(n16%800) + 10
		rng := rand.New(rand.NewSource(seed))
		z := make([]uint32, n)
		x := make([]uint32, n)
		for i := range z {
			z[i] = uint32(rng.Intn(5))
			x[i] = uint32(rng.Intn(4))
		}
		shuffleSeed := seed + 1
		s, err := NewSliceSampler(z, x, 5, 4, &shuffleSeed)
		if err != nil {
			return false
		}
		exact := s.ExactHistograms()
		acc := make([]int64, 5)
		accHist := make([][]float64, 5)
		for i := range accHist {
			accHist[i] = make([]float64, 4)
		}
		for !func() bool {
			b, err := s.Stage1(rng.Intn(50) + 1)
			if err != nil {
				return true
			}
			for i, c := range b.Counts {
				acc[i] += c
				if b.Hists[i] != nil {
					for g := 0; g < 4; g++ {
						accHist[i][g] += b.Hists[i].Count(g)
					}
				}
			}
			return b.Exhausted
		}() {
		}
		for i := 0; i < 5; i++ {
			if float64(acc[i]) != exact[i].Total() {
				return false
			}
			for g := 0; g < 4; g++ {
				if accHist[i][g] != exact[i].Count(g) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestSliceSamplerShuffleUniformity(t *testing.T) {
	// The first half of a shuffled sampler should contain roughly half of
	// each candidate's tuples (within generous bounds).
	n := 40_000
	z := make([]uint32, n)
	x := make([]uint32, n)
	for i := range z {
		z[i] = uint32(i % 8)
	}
	seed := int64(21)
	s, _ := NewSliceSampler(z, x, 8, 1, &seed)
	b, err := s.Stage1(n / 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		frac := float64(b.Counts[i]) / float64(n/8)
		if frac < 0.4 || frac > 0.6 {
			t.Fatalf("candidate %d got %.2f of its tuples in the first half", i, frac)
		}
	}
}
