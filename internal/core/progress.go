package core

import (
	"errors"

	"fastmatch/internal/histogram"
)

// ErrInterrupted is the sentinel a Sampler wraps to signal a clean early
// stop: the run should not continue, but the samples delivered so far are
// valid uniform draws, so HistSim can still rank candidates from its
// cumulative estimates. A sampler reporting an interruption returns the
// batch it accumulated up to the stop point together with an error
// matching this sentinel (errors.Is); Run then folds that batch in and
// returns a best-effort partial Result alongside the error. Callers
// distinguish the stop's cause (cancellation, deadline, budget) from the
// other errors wrapped in the same chain.
var ErrInterrupted = errors.New("core: run interrupted")

// Snapshot is the interim state Run reports through an Observer: where
// the algorithm is, how much it has consumed, and its current best
// ranking. TopK is ordered ascending by estimated distance; the estimates
// carry no guarantee until the run terminates.
type Snapshot struct {
	// Phase is "stage1", "stage2", or "stage3".
	Phase string
	// Round is the stage-2 round just completed (0 outside stage 2).
	Round int
	// TopK is the current best-k by cumulative estimated distance.
	TopK []histogram.Ranked
	// ActiveCandidates counts candidates still under consideration
	// (post-pruning).
	ActiveCandidates int
	// Drawn is the cumulative tuples consumed so far.
	Drawn int64
	// Quality is the emission's convergence telemetry, present only when
	// Params.CollectQuality is set (nil otherwise). Its TopK entries are
	// aligned with Snapshot.TopK.
	Quality *RoundQuality
}

// Observer receives interim snapshots during a run. It is called
// synchronously from the run's goroutine after stage 1, after every
// stage-2 round, and after stage 3's top-up — so implementations must be
// fast and must not block. A nil Observer costs nothing.
type Observer func(Snapshot)

// emit reports the current state to the observer, if any, and advances
// the quality accumulators when collection is on. The interim ranking
// covers only observed candidates, for the same reason salvage does: an
// empty estimate reads as uniform, not as unknown.
func (st *state) emit(phase string, round int) {
	if st.obs == nil && !st.params.CollectQuality {
		return
	}
	st.refreshTau()
	active := st.a
	if active == nil {
		active = allCandidates(st.nCand)
	}
	k := st.params.K
	if st.params.KRange.KMax > 0 {
		k = st.params.KRange.KMax
	}
	top := histogram.TopK(st.tau, st.observed(active), k)
	var q *RoundQuality
	if st.params.CollectQuality {
		// Churn tracking must advance even with no observer attached, so
		// the final report's totals don't depend on who was listening.
		q = st.roundQuality(phase, round, top, active)
	}
	if st.obs == nil {
		return
	}
	st.obs(Snapshot{
		Phase:            phase,
		Round:            round,
		TopK:             top,
		ActiveCandidates: len(active),
		Drawn:            st.drawn,
		Quality:          q,
	})
}

// salvage builds the best-effort partial answer after an interruption
// (the stages have already folded the interrupted batch in): the current
// top-k by cumulative estimated distance, flagged Partial. A matching set
// already fixed by stage 2 is kept (only its reconstruction guarantee is
// missing); otherwise the top-k is chosen fresh from the candidates that
// were actually observed — a zero-sample candidate's empty estimate
// normalizes to the uniform distribution, which would rank never-seen
// candidates as perfect matches for uniform-like targets. An
// interruption before any sample lands returns an empty TopK. The
// interrupting error is returned unchanged so callers can branch on its
// cause.
func (st *state) salvage(cause error) (*Result, error) {
	if st.a == nil {
		// Interrupted before stage 1 chose the active set.
		st.a = allCandidates(st.nCand)
	}
	st.res.Partial = true
	st.refreshTau()
	if len(st.res.TopK) == 0 {
		obs := st.observed(st.a)
		k := st.chooseK()
		if len(obs) < k {
			k = len(obs)
		}
		st.setTopK(obs, k)
	}
	st.finalize()
	if st.params.CollectQuality {
		st.res.Quality = st.buildQuality(true)
	}
	return st.res, cause
}

// observed filters ids down to candidates with at least one sample.
func (st *state) observed(ids []int) []int {
	out := make([]int, 0, len(ids))
	for _, i := range ids {
		if st.n[i] > 0 {
			out = append(out, i)
		}
	}
	return out
}

func allCandidates(n int) []int {
	all := make([]int, n)
	for i := range all {
		all[i] = i
	}
	return all
}
