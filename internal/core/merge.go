package core

import "fmt"

// Merge folds other into b, making Batch a mergeable value: a batch
// produced by N independent samplers over disjoint partitions of a
// relation, merged in any order, equals the batch one sampler would have
// produced over their union. This is the algebra intra-node parallel
// sampling rounds and (eventually) distributed scatter-gather both rest
// on, so the fold is associative and commutative by construction:
//
//   - Drawn and Counts are integer sums;
//   - Hists are histogram sums, whose float64 cells only ever hold
//     integer tuple counts (Add/AddN with integral n), so addition is
//     exact and order-independent — merged results are byte-identical,
//     not merely close;
//   - Exhausted and Exact are ORs: a partition's producer asserts them
//     only for scope it fully consumed, and the union is exhausted
//     (exact) only where some producer proved it.
//
// Merge takes ownership of other's histograms (they may be adopted into
// b rather than copied); other must not be used afterwards. A nil other
// is a no-op.
func (b *Batch) Merge(other *Batch) error {
	if other == nil {
		return nil
	}
	if len(other.Counts) != len(b.Counts) || len(other.Hists) != len(b.Hists) {
		return fmt.Errorf("core: merging batches over different candidate domains (%d/%d vs %d/%d counts/hists)",
			len(b.Counts), len(b.Hists), len(other.Counts), len(other.Hists))
	}
	b.Drawn += other.Drawn
	for i, c := range other.Counts {
		b.Counts[i] += c
	}
	for i, h := range other.Hists {
		if h == nil {
			continue
		}
		if b.Hists[i] == nil {
			b.Hists[i] = h
			continue
		}
		if err := b.Hists[i].AddHistogram(h); err != nil {
			return err
		}
	}
	b.Exhausted = b.Exhausted || other.Exhausted
	switch {
	case other.Exact == nil:
	case b.Exact == nil:
		b.Exact = other.Exact
	default:
		if len(other.Exact) != len(b.Exact) {
			return fmt.Errorf("core: merging batches with different Exact lengths (%d vs %d)", len(b.Exact), len(other.Exact))
		}
		for i, e := range other.Exact {
			if e {
				b.Exact[i] = true
			}
		}
	}
	return nil
}
