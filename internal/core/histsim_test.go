package core

import (
	"math"
	"math/rand"
	"testing"

	"fastmatch/internal/histogram"
)

// synthPopulation builds a population of nCand candidates over groups
// x-values. Candidate selectivities follow weights; per-candidate
// distributions are mixtures of two prototypes so that candidates split
// into a "close to prototype A" cluster and a "far" cluster.
type synthPopulation struct {
	z, x    []uint32
	nCand   int
	groups  int
	exact   []*histogram.Histogram
	totalN  int64
	targets *histogram.Histogram
}

func makePopulation(t testing.TB, seed int64, rows, nCand, groups int, rareFraction float64) *synthPopulation {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	// Candidate weights: mostly even, with a rare tail.
	weights := make([]float64, nCand)
	for i := range weights {
		if float64(i) >= float64(nCand)*(1-rareFraction) {
			weights[i] = 0.0001
		} else {
			weights[i] = 1 + rng.Float64()
		}
	}
	var wsum float64
	for _, w := range weights {
		wsum += w
	}
	cum := make([]float64, nCand)
	run := 0.0
	for i, w := range weights {
		run += w / wsum
		cum[i] = run
	}
	// Two prototypes over groups.
	protoA := make([]float64, groups)
	protoB := make([]float64, groups)
	for g := range protoA {
		protoA[g] = rng.Float64() + 0.2
		protoB[g] = rng.Float64() + 0.2
	}
	// Per-candidate mixing coefficient: half the candidates near A.
	mix := make([]float64, nCand)
	for i := range mix {
		if i%2 == 0 {
			mix[i] = 0.9 + 0.1*rng.Float64()
		} else {
			mix[i] = 0.1 * rng.Float64()
		}
	}
	dist := make([][]float64, nCand)
	for i := range dist {
		dist[i] = make([]float64, groups)
		var s float64
		for g := range dist[i] {
			dist[i][g] = mix[i]*protoA[g] + (1-mix[i])*protoB[g]
			s += dist[i][g]
		}
		for g := range dist[i] {
			dist[i][g] /= s
		}
	}
	pop := &synthPopulation{nCand: nCand, groups: groups}
	pop.z = make([]uint32, rows)
	pop.x = make([]uint32, rows)
	for r := 0; r < rows; r++ {
		u := rng.Float64()
		zi := 0
		for zi < nCand-1 && cum[zi] < u {
			zi++
		}
		u = rng.Float64()
		xi, acc := 0, 0.0
		for g, p := range dist[zi] {
			acc += p
			if u <= acc {
				xi = g
				break
			}
		}
		pop.z[r], pop.x[r] = uint32(zi), uint32(xi)
	}
	pop.totalN = int64(rows)
	pop.exact = make([]*histogram.Histogram, nCand)
	for i := range pop.exact {
		pop.exact[i] = histogram.New(groups)
	}
	for r := range pop.z {
		pop.exact[pop.z[r]].Add(int(pop.x[r]))
	}
	// Target: prototype A as counts.
	tc := make([]float64, groups)
	for g := range tc {
		tc[g] = protoA[g] * 1000
	}
	pop.targets = histogram.FromCounts(tc)
	return pop
}

func (p *synthPopulation) sampler(t testing.TB, seed int64) *SliceSampler {
	t.Helper()
	s, err := NewSliceSampler(p.z, p.x, p.nCand, p.groups, &seed)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// checkGuarantees verifies Guarantees 1 and 2 against the exact data.
func (p *synthPopulation) checkGuarantees(t *testing.T, res *Result, params Params) {
	t.Helper()
	metric := params.Metric
	inM := map[int]bool{}
	var maxTrueDistInM float64
	for _, rk := range res.TopK {
		inM[rk.ID] = true
		if d := metric.Distance(p.exact[rk.ID], p.targets); d > maxTrueDistInM {
			maxTrueDistInM = d
		}
	}
	// Guarantee 1 (separation).
	for i := 0; i < p.nCand; i++ {
		if inM[i] {
			continue
		}
		sel := p.exact[i].Total() / float64(p.totalN)
		if sel < params.Sigma {
			continue
		}
		trueDist := metric.Distance(p.exact[i], p.targets)
		if maxTrueDistInM-trueDist >= params.Epsilon {
			t.Errorf("separation violated: excluded candidate %d (d=%g, sel=%g) is ≥ε closer than included max %g",
				i, trueDist, sel, maxTrueDistInM)
		}
	}
	// Guarantee 2 (reconstruction).
	eps2 := params.Epsilon
	if params.EpsilonReconstruct > 0 {
		eps2 = params.EpsilonReconstruct
	}
	for id, h := range res.Hists {
		if d := metric.Distance(h, p.exact[id]); d >= eps2 {
			t.Errorf("reconstruction violated for candidate %d: d(est, exact) = %g ≥ ε %g", id, d, eps2)
		}
	}
}

func defaultParams() Params {
	return Params{
		K:             3,
		Epsilon:       0.08,
		Delta:         0.05,
		Sigma:         0.001,
		Stage1Samples: 20_000,
		Metric:        histogram.MetricL1,
	}
}

func TestParamsValidate(t *testing.T) {
	good := defaultParams()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []func(*Params){
		func(p *Params) { p.K = 0 },
		func(p *Params) { p.Epsilon = 0 },
		func(p *Params) { p.Epsilon = 3 },
		func(p *Params) { p.Epsilon = math.NaN() },
		func(p *Params) { p.EpsilonReconstruct = -1 },
		func(p *Params) { p.Delta = 0 },
		func(p *Params) { p.Delta = 1 },
		func(p *Params) { p.Sigma = -0.1 },
		func(p *Params) { p.Sigma = 1 },
		func(p *Params) { p.Stage1Samples = -5 },
		func(p *Params) { p.KRange.KMax = 3; p.KRange.KMin = 0 },
		func(p *Params) { p.KRange.KMax = 3; p.KRange.KMin = 5 },
	}
	for i, mutate := range bad {
		p := defaultParams()
		mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: invalid params accepted", i)
		}
	}
}

func TestRunInputValidation(t *testing.T) {
	pop := makePopulation(t, 1, 2000, 10, 6, 0)
	s := pop.sampler(t, 2)
	if _, err := Run(s, nil, defaultParams()); err == nil {
		t.Fatal("nil target accepted")
	}
	if _, err := Run(s, histogram.New(5), defaultParams()); err == nil {
		t.Fatal("mismatched target groups accepted")
	}
	p := defaultParams()
	p.K = 0
	if _, err := Run(s, pop.targets, p); err == nil {
		t.Fatal("invalid params accepted")
	}
}

func TestRunFindsExactTopKOnSmallData(t *testing.T) {
	// Small dataset: the algorithm must exhaust data and return the exact
	// answer with Exact=true.
	pop := makePopulation(t, 2, 3000, 12, 6, 0)
	s := pop.sampler(t, 3)
	params := defaultParams()
	params.Epsilon = 0.01 // demand so much precision it must scan everything
	params.Delta = 0.001
	res, err := Run(s, pop.targets, params)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Exact {
		t.Fatalf("expected exact exhaustion on tiny data; stats: %+v", res.Stats)
	}
	// Compare against brute-force top-k.
	dist := make([]float64, pop.nCand)
	for i := range dist {
		dist[i] = histogram.L1(pop.exact[i], pop.targets)
	}
	pruned := map[int]bool{}
	for _, i := range res.Pruned {
		pruned[i] = true
	}
	var ids []int
	for i := range dist {
		if !pruned[i] {
			ids = append(ids, i)
		}
	}
	want := histogram.TopK(dist, ids, params.K)
	if len(res.TopK) != len(want) {
		t.Fatalf("topk size %d want %d", len(res.TopK), len(want))
	}
	gotSet := map[int]bool{}
	for _, rk := range res.TopK {
		gotSet[rk.ID] = true
	}
	for _, w := range want {
		if !gotSet[w.ID] {
			t.Errorf("exact top-k missing candidate %d", w.ID)
		}
	}
}

func TestRunSatisfiesGuarantees(t *testing.T) {
	// Across several seeds, both guarantees must hold (δ=0.05; with 6 runs
	// the chance of any legitimate violation is ≈ 26%, but the bound is
	// extremely loose in practice — the paper observed zero violations
	// across all runs; treat any violation as failure).
	for seed := int64(0); seed < 6; seed++ {
		pop := makePopulation(t, 10+seed, 120_000, 30, 8, 0.1)
		s := pop.sampler(t, 100+seed)
		params := defaultParams()
		res, err := Run(s, pop.targets, params)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if len(res.TopK) != params.K {
			t.Fatalf("seed %d: |M| = %d, want %d", seed, len(res.TopK), params.K)
		}
		pop.checkGuarantees(t, res, params)
	}
}

func TestRunUsesSamplingOnLargeData(t *testing.T) {
	pop := makePopulation(t, 3, 200_000, 20, 6, 0)
	s := pop.sampler(t, 4)
	params := defaultParams()
	params.Epsilon = 0.15
	res, err := Run(s, pop.targets, params)
	if err != nil {
		t.Fatal(err)
	}
	if res.Exact {
		t.Skip("data exhausted despite large size; loosen epsilon")
	}
	if res.Stats.TotalSamples() >= int64(200_000) {
		t.Fatalf("no sampling benefit: consumed %d of 200000", res.Stats.TotalSamples())
	}
	if res.Stats.Rounds < 1 {
		t.Fatal("no stage-2 rounds recorded")
	}
}

func TestStage1PrunesRareCandidates(t *testing.T) {
	pop := makePopulation(t, 5, 150_000, 40, 6, 0.3)
	s := pop.sampler(t, 6)
	params := defaultParams()
	params.Sigma = 0.003
	res, err := Run(s, pop.targets, params)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Pruned) == 0 {
		t.Fatal("no candidates pruned despite a rare tail")
	}
	// Precision requirement (Lemma 1): every pruned candidate is truly
	// rare. (No recall requirement: rare candidates may survive.)
	for _, i := range res.Pruned {
		sel := pop.exact[i].Total() / float64(pop.totalN)
		if sel >= params.Sigma {
			t.Errorf("pruned candidate %d has selectivity %g ≥ σ %g", i, sel, params.Sigma)
		}
	}
}

func TestSigmaZeroDisablesPruning(t *testing.T) {
	pop := makePopulation(t, 7, 5000, 10, 5, 0.2)
	s := pop.sampler(t, 8)
	params := defaultParams()
	params.Sigma = 0
	res, err := Run(s, pop.targets, params)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Pruned) != 0 {
		t.Fatalf("σ=0 still pruned %d candidates", len(res.Pruned))
	}
}

func TestKLargerThanCandidates(t *testing.T) {
	pop := makePopulation(t, 9, 4000, 4, 5, 0)
	s := pop.sampler(t, 10)
	params := defaultParams()
	params.K = 10 // more than the 4 candidates
	res, err := Run(s, pop.targets, params)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.TopK) != 4 {
		t.Fatalf("|M| = %d, want all 4 candidates", len(res.TopK))
	}
}

func TestKRangePicksWidestGap(t *testing.T) {
	pop := makePopulation(t, 11, 80_000, 16, 6, 0)
	s := pop.sampler(t, 12)
	params := defaultParams()
	params.K = 0 // ignored when KRange set
	params.KRange.KMin = 2
	params.KRange.KMax = 6
	res, err := Run(s, pop.targets, params)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(res.TopK); got < 2 || got > 6 {
		t.Fatalf("KRange produced |M| = %d outside [2,6]", got)
	}
	if res.Stats.ChosenK != len(res.TopK) {
		t.Fatalf("ChosenK %d != |M| %d", res.Stats.ChosenK, len(res.TopK))
	}
}

func TestDistinctReconstructionEpsilon(t *testing.T) {
	pop := makePopulation(t, 13, 100_000, 12, 6, 0)
	s := pop.sampler(t, 14)
	params := defaultParams()
	params.Epsilon = 0.15
	params.EpsilonReconstruct = 0.05 // tighter reconstruction than separation
	res, err := Run(s, pop.targets, params)
	if err != nil {
		t.Fatal(err)
	}
	pop.checkGuarantees(t, res, params)
	// Reconstruction sampling must have pushed each member's cumulative
	// count past the Theorem-1 requirement for ε₂ (unless data exhausted).
	if !res.Exact {
		required := histogram.MetricL1.SamplesFor(pop.groups, 0.05, params.Delta/(3*float64(len(res.TopK))))
		for id, h := range res.Hists {
			if int(h.Total()) < required {
				t.Errorf("candidate %d has %d samples, stage 3 requires %d", id, int(h.Total()), required)
			}
		}
	}
}

func TestL2MetricRun(t *testing.T) {
	pop := makePopulation(t, 15, 60_000, 10, 6, 0)
	s := pop.sampler(t, 16)
	params := defaultParams()
	params.Metric = histogram.MetricL2
	params.Epsilon = 0.06
	res, err := Run(s, pop.targets, params)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.TopK) != params.K {
		t.Fatalf("|M| = %d", len(res.TopK))
	}
	pop.checkGuarantees(t, res, params)
}

func TestResultHistsMatchTopK(t *testing.T) {
	pop := makePopulation(t, 17, 30_000, 8, 5, 0)
	s := pop.sampler(t, 18)
	res, err := Run(s, pop.targets, defaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Hists) != len(res.TopK) {
		t.Fatalf("Hists size %d != TopK size %d", len(res.Hists), len(res.TopK))
	}
	for _, rk := range res.TopK {
		if res.Hists[rk.ID] == nil {
			t.Errorf("missing histogram for matching candidate %d", rk.ID)
		}
	}
	// TopK is sorted ascending.
	for i := 1; i < len(res.TopK); i++ {
		if res.TopK[i].Distance < res.TopK[i-1].Distance {
			t.Fatal("TopK not sorted by distance")
		}
	}
}

func TestRunStatsAccounting(t *testing.T) {
	pop := makePopulation(t, 19, 50_000, 10, 6, 0)
	s := pop.sampler(t, 20)
	res, err := Run(s, pop.targets, defaultParams())
	if err != nil {
		t.Fatal(err)
	}
	st := res.Stats
	if st.SamplesStage1 <= 0 {
		t.Error("stage 1 took no samples")
	}
	if st.TotalSamples() != st.SamplesStage1+st.SamplesStage2+st.SamplesStage3 {
		t.Error("TotalSamples inconsistent")
	}
	if int(st.TotalSamples()) != s.Consumed() {
		t.Errorf("stats total %d != sampler consumed %d", st.TotalSamples(), s.Consumed())
	}
}
