package core

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"fastmatch/internal/histogram"
	"fastmatch/internal/stats"
)

// Result is HistSim's output: the matching set M with its reconstructed
// histograms, plus run diagnostics.
type Result struct {
	// TopK lists the matching candidates in ascending estimated distance.
	TopK []histogram.Ranked
	// Hists maps each matching candidate to its reconstructed histogram
	// (cumulative counts over all samples taken).
	Hists map[int]*histogram.Histogram
	// Pruned lists candidates removed by stage 1 as likely rare.
	Pruned []int
	// Exact reports that the data was fully consumed, so the output is
	// the exact answer rather than an estimate.
	Exact bool
	// Partial reports that the run was interrupted (see ErrInterrupted)
	// before its guarantees were established: TopK is the best-effort
	// ranking by the cumulative estimates at the stop point, with no
	// separation or reconstruction guarantee attached.
	Partial bool
	// Stats carries run diagnostics.
	Stats RunStats
	// Quality is the answer-quality report, present only when
	// Params.CollectQuality was set (nil otherwise).
	Quality *Quality
}

// RunStats summarizes the work a HistSim run performed.
type RunStats struct {
	// SamplesStage1/2/3 count tuples consumed per stage.
	SamplesStage1, SamplesStage2, SamplesStage3 int64
	// Rounds is the number of stage-2 hypothesis-testing rounds.
	Rounds int
	// PrunedCandidates is the number removed in stage 1.
	PrunedCandidates int
	// ChosenK is the k actually returned (differs from Params.K only
	// under a KRange query).
	ChosenK int
	// RoundDemands diagnoses stage-2 planning: one entry per round.
	RoundDemands []RoundDemand
}

// RoundDemand summarizes one stage-2 round's sampling plan (Equation 1).
type RoundDemand struct {
	// SumNeed is Σ n'_i over all planned candidates.
	SumNeed int64
	// MaxNeed is the largest single n'_i.
	MaxNeed int64
	// MaxNeedCandidate is the candidate demanding MaxNeed.
	MaxNeedCandidate int
	// Split is the round's split point s.
	Split float64
}

// TotalSamples returns the tuples consumed across all stages.
func (s RunStats) TotalSamples() int64 {
	return s.SamplesStage1 + s.SamplesStage2 + s.SamplesStage3
}

// state carries the mutable cumulative quantities of Algorithm 1.
type state struct {
	sampler Sampler
	target  *histogram.Histogram
	params  Params
	obs     Observer

	nCand  int
	groups int

	n     []int64                // cumulative n_i
	r     []*histogram.Histogram // cumulative r_i
	tau   []float64              // τ_i = d(r_i, q)
	a     []int                  // non-pruned candidate ids, sorted
	drawn int64                  // cumulative tuples drawn (for sel estimates)
	res   *Result
	need  map[int]int // reusable need map

	// Quality-telemetry accumulators (used only when CollectQuality).
	prevTop map[int]bool // previous emission's top-k membership
	qChurn  int          // total churn across emissions
}

// Run executes HistSim against the sampler for the given visual target.
// The target histogram's group count must equal sampler.Groups().
func Run(s Sampler, target *histogram.Histogram, p Params) (*Result, error) {
	return RunObserved(s, target, p, nil)
}

// RunObserved is Run with an optional progress Observer, called after
// stage 1, after every stage-2 round, and after stage 3's top-up.
//
// If the sampler interrupts the run (an error matching ErrInterrupted —
// samplers do this for cancellation, deadlines, and sample budgets),
// RunObserved returns a best-effort partial Result (Partial set, TopK
// ranked by the cumulative estimates at the stop point) alongside that
// error; every other sampler error returns a nil Result as before.
func RunObserved(s Sampler, target *histogram.Histogram, p Params, obs Observer) (*Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if target == nil {
		return nil, fmt.Errorf("core: nil target")
	}
	if target.Groups() != s.Groups() {
		return nil, fmt.Errorf("core: target has %d groups, sampler has %d", target.Groups(), s.Groups())
	}
	if s.NumCandidates() == 0 {
		return nil, fmt.Errorf("core: sampler has no candidates")
	}
	st := &state{
		sampler: s,
		target:  target,
		params:  p,
		obs:     obs,
		nCand:   s.NumCandidates(),
		groups:  s.Groups(),
		need:    make(map[int]int),
		res:     &Result{Hists: make(map[int]*histogram.Histogram)},
	}
	st.n = make([]int64, st.nCand)
	st.r = make([]*histogram.Histogram, st.nCand)
	st.tau = make([]float64, st.nCand)
	for i := range st.r {
		st.r[i] = histogram.New(st.groups)
	}

	exhausted, err := st.stage1()
	if err != nil {
		if errors.Is(err, ErrInterrupted) {
			return st.salvage(err)
		}
		return nil, err
	}
	st.emit("stage1", 0)
	if !exhausted {
		exhausted, err = st.stage2()
		if err != nil {
			if errors.Is(err, ErrInterrupted) {
				return st.salvage(err)
			}
			return nil, err
		}
	}
	if exhausted {
		st.finishExact()
		if p.CollectQuality {
			st.res.Quality = st.buildQuality(false)
		}
		return st.res, nil
	}
	if err := st.stage3(); err != nil {
		if errors.Is(err, ErrInterrupted) {
			return st.salvage(err)
		}
		return nil, err
	}
	st.emit("stage3", 0)
	if p.CollectQuality {
		st.res.Quality = st.buildQuality(false)
	}
	return st.res, nil
}

// stage1 draws the m-sample uniform batch and prunes candidates that are
// rare (N_i/N < σ) with family-wise confidence δ/3, per §3.3. It returns
// whether the data was exhausted.
func (st *state) stage1() (bool, error) {
	m := st.params.Stage1Samples
	all := make([]int, st.nCand)
	for i := range all {
		all[i] = i
	}
	if m <= 0 || st.params.Sigma == 0 {
		// No pruning requested: A = all candidates. (σ=0 is the
		// pathological configuration studied in §5.4.)
		st.a = all
		return false, nil
	}
	batch, err := st.sampler.Stage1(m)
	if err != nil {
		// An interrupting sampler still returns the samples it drew;
		// fold them in so the salvaged partial answer uses them.
		if errors.Is(err, ErrInterrupted) && batch != nil {
			st.accumulate(batch, &st.res.Stats.SamplesStage1)
		}
		return false, fmt.Errorf("core: stage 1 sampling: %w", err)
	}
	st.accumulate(batch, &st.res.Stats.SamplesStage1)

	drawn := batch.Drawn
	if drawn == 0 {
		drawn = sumCounts(batch)
	}
	pvals, err := stats.UnderRepPValues(st.n, st.sampler.TotalRows(), st.params.Sigma, min64(int64(m), drawn))
	if err != nil {
		return false, fmt.Errorf("core: stage 1 test: %w", err)
	}
	rejected := stats.HolmBonferroni(pvals, st.params.Delta/3)
	pruned := make(map[int]bool, len(rejected))
	for _, i := range rejected {
		pruned[i] = true
		st.res.Pruned = append(st.res.Pruned, i)
	}
	sort.Ints(st.res.Pruned)
	st.res.Stats.PrunedCandidates = len(st.res.Pruned)
	st.a = st.a[:0]
	for i := 0; i < st.nCand; i++ {
		if !pruned[i] {
			st.a = append(st.a, i)
		}
	}
	if len(st.a) == 0 {
		// Everything looked rare (e.g. σ absurdly high). Keep all
		// candidates rather than returning an empty answer: the separation
		// guarantee permits returning low-selectivity candidates, it only
		// excuses missing them.
		st.a = all
		st.res.Pruned = nil
		st.res.Stats.PrunedCandidates = 0
	}
	return batch.Exhausted, nil
}

// stage2 runs rounds of fresh-sample multiple-hypothesis tests until the
// matching set M is correct w.r.t. Guarantee 1 with confidence δ/3
// (§3.4). It returns whether the data was exhausted before termination.
func (st *state) stage2() (bool, error) {
	budget, err := stats.NewGeometricBudget(st.params.Delta / 3)
	if err != nil {
		return false, err
	}
	eps1 := st.params.epsSeparation()

	for round := 1; ; round++ {
		if round > st.params.maxRounds() {
			return false, fmt.Errorf("core: stage 2 did not terminate within %d rounds", st.params.maxRounds())
		}
		st.res.Stats.Rounds = round
		deltaUpper := budget.Next()

		st.refreshTau()
		k := st.chooseK()
		if len(st.a) <= k {
			// Everything that survived pruning is matching; the
			// separation hypotheses over A\M are vacuous.
			st.setTopK(st.a, k)
			return false, nil
		}
		mSet, rest := st.partition(k)
		split := histogram.SplitPoint(st.tauOf(mSet), st.tauOf(rest))

		// Per-candidate sample demand for this round (Equation 1), using
		// the heuristic ε'_i from the current cumulative estimates. By
		// construction of the split point, ε'_i ≥ ε/2 for every candidate.
		st.planRound(mSet, rest, split, eps1, deltaUpper)
		st.shapeRound(round)
		st.res.Stats.RoundDemands = append(st.res.Stats.RoundDemands, demandOf(st.need, split))
		batch, err := st.sampler.SampleUntil(st.need)
		if err != nil {
			if errors.Is(err, ErrInterrupted) && batch != nil {
				st.accumulate(batch, &st.res.Stats.SamplesStage2)
			}
			return false, fmt.Errorf("core: stage 2 sampling: %w", err)
		}

		if st.testRound(batch, mSet, rest, split, eps1, deltaUpper) {
			st.accumulate(batch, &st.res.Stats.SamplesStage2)
			st.refreshTau()
			st.setTopK(mSet, k)
			st.emit("stage2", round)
			return false, nil
		}
		st.accumulate(batch, &st.res.Stats.SamplesStage2)
		st.emit("stage2", round)
		if batch.Exhausted {
			return true, nil
		}
	}
}

// planRound fills st.need with the Equation-(1) estimates n'_i.
func (st *state) planRound(mSet, rest []int, split, eps1, deltaUpper float64) {
	clear(st.need)
	metric := st.params.Metric
	for _, i := range mSet {
		// In-M nulls are hurt by the plug-in estimator's upward bias
		// (τ∂ overshoots τ*), so plan with the bias-corrected count.
		epsP := split + eps1/2 - st.tau[i]
		st.need[i] = metric.PlanSamples(st.groups, epsP, deltaUpper)
	}
	for _, j := range rest {
		// Rest-side nulls benefit from the same bias (τ∂ overshooting
		// only widens the observed margin), so the paper's Equation (1)
		// is already sufficient.
		epsP := st.tau[j] - (split - eps1/2)
		st.need[j] = metric.SamplesFor(st.groups, epsP, deltaUpper)
	}
}

// shapeRound clamps the round's demands to the geometric I/O budget (see
// Params.RoundBudget). A candidate's clamp is its expected sample yield
// from scanning budget·2^(round−1) tuples at its estimated selectivity.
func (st *state) shapeRound(round int) {
	base := st.params.RoundBudget
	if base < 0 {
		return
	}
	if base == 0 {
		base = st.params.Stage1Samples
		if fallback := int(st.sampler.TotalRows() / 20); fallback > base {
			base = fallback
		}
		if base <= 0 {
			base = 10_000
		}
	}
	if st.drawn <= 0 {
		return // no selectivity information yet; keep the raw plan
	}
	budget := float64(base) * math.Pow(2, float64(round-1))
	for id, n := range st.need {
		sel := float64(st.n[id]) / float64(st.drawn)
		if sel <= 0 {
			sel = 1 / float64(st.drawn)
		}
		cap := int(sel * budget)
		if cap < 64 {
			cap = 64
		}
		if n > cap {
			st.need[id] = cap
		}
	}
}

// testRound computes the per-candidate P-values from the fresh batch and
// applies the Lemma-4 simultaneous tester at level deltaUpper.
func (st *state) testRound(batch *Batch, mSet, rest []int, split, eps1, deltaUpper float64) bool {
	metric := st.params.Metric
	pvals := make([]float64, 0, len(mSet)+len(rest))
	for _, i := range mSet {
		if batch.IsExact(i) {
			// τ_i = τ*_i exactly: decide the null τ*_i ≥ s + ε/2 for free.
			pvals = append(pvals, exactPValue(st.cumTauWith(batch, i) < split+eps1/2))
			continue
		}
		tauRound := st.roundTau(batch, i)
		epsI := split + eps1/2 - tauRound
		pvals = append(pvals, metric.DeviationPValue(st.groups, int(batch.Counts[i]), epsI))
	}
	lowNull := split - eps1/2
	for _, j := range rest {
		if batch.IsExact(j) {
			pvals = append(pvals, exactPValue(st.cumTauWith(batch, j) > lowNull))
			continue
		}
		tauRound := st.roundTau(batch, j)
		epsJ := tauRound - lowNull
		if lowNull < 0 {
			// The null τ*_j ≤ s − ε/2 < 0 is impossible for a distance:
			// reject it for free (line 22 of Algorithm 1).
			epsJ = math.Inf(1)
		}
		pvals = append(pvals, metric.DeviationPValue(st.groups, int(batch.Counts[j]), epsJ))
	}
	return stats.RejectAll(pvals, deltaUpper)
}

// cumTauWith computes the exact distance for a candidate flagged exact:
// cumulative counts plus the (not yet accumulated) fresh batch.
func (st *state) cumTauWith(batch *Batch, i int) float64 {
	h := st.r[i].Clone()
	if bh := batch.Hists[i]; bh != nil {
		if err := h.AddHistogram(bh); err != nil {
			panic(fmt.Sprintf("core: sampler returned mismatched histogram: %v", err))
		}
	}
	return st.params.Metric.Distance(h, st.target)
}

// exactPValue turns a deterministically-known null verdict into a P-value:
// a false null is rejected for free (0), a true null cannot be rejected (1).
func exactPValue(nullFalse bool) float64 {
	if nullFalse {
		return 0
	}
	return 1
}

// roundTau computes τ∂_i from the fresh batch only.
func (st *state) roundTau(batch *Batch, i int) float64 {
	h := batch.Hists[i]
	if h == nil || batch.Counts[i] == 0 {
		// No fresh samples: distance estimate is vacuous (uniform), which
		// yields a conservative (large) P-value.
		h = histogram.New(st.groups)
	}
	return st.params.Metric.Distance(h, st.target)
}

// stage3 tops up samples for the matching set until each member meets the
// Theorem-1 reconstruction requirement at level δ/(3k), per §3.5.
func (st *state) stage3() error {
	eps2 := st.params.epsReconstruct()
	k := len(st.res.TopK)
	if k == 0 {
		return nil
	}
	required := st.params.Metric.SamplesFor(st.groups, eps2, st.params.Delta/(3*float64(k)))
	clear(st.need)
	for _, rk := range st.res.TopK {
		if deficit := required - int(st.n[rk.ID]); deficit > 0 {
			st.need[rk.ID] = deficit
		}
	}
	if len(st.need) > 0 {
		batch, err := st.sampler.SampleUntil(st.need)
		if err != nil {
			if errors.Is(err, ErrInterrupted) && batch != nil {
				st.accumulate(batch, &st.res.Stats.SamplesStage3)
			}
			return fmt.Errorf("core: stage 3 sampling: %w", err)
		}
		st.accumulate(batch, &st.res.Stats.SamplesStage3)
		if batch.Exhausted {
			st.res.Exact = true
		}
	}
	st.refreshTau()
	st.finalize()
	return nil
}

// finishExact recomputes the answer from the fully-consumed data.
func (st *state) finishExact() {
	st.res.Exact = true
	st.refreshTau()
	k := st.chooseK()
	if len(st.a) < k {
		k = len(st.a)
	}
	st.setTopK(st.a, k)
	st.finalize()
}

// setTopK records the top-k of the given candidate set by current τ.
func (st *state) setTopK(from []int, k int) {
	st.res.TopK = histogram.TopK(st.tau, from, k)
	st.res.Stats.ChosenK = len(st.res.TopK)
}

// finalize re-ranks the recorded matching set by the freshest cumulative
// distances and snapshots their histograms.
func (st *state) finalize() {
	ids := make([]int, len(st.res.TopK))
	for i, rk := range st.res.TopK {
		ids[i] = rk.ID
	}
	st.res.TopK = histogram.TopK(st.tau, ids, len(ids))
	for _, rk := range st.res.TopK {
		st.res.Hists[rk.ID] = st.r[rk.ID].Clone()
	}
}

// accumulate folds a fresh batch into the cumulative estimates.
func (st *state) accumulate(batch *Batch, counter *int64) {
	if batch.Drawn > 0 {
		st.drawn += batch.Drawn
	} else {
		st.drawn += sumCounts(batch)
	}
	for i, c := range batch.Counts {
		if c == 0 {
			continue
		}
		st.n[i] += c
		*counter += c
		if h := batch.Hists[i]; h != nil {
			// Group counts are aligned by construction; an error here
			// would indicate a broken sampler.
			if err := st.r[i].AddHistogram(h); err != nil {
				panic(fmt.Sprintf("core: sampler returned mismatched histogram: %v", err))
			}
		}
	}
}

// refreshTau recomputes τ_i for all non-pruned candidates.
func (st *state) refreshTau() {
	for _, i := range st.a {
		st.tau[i] = st.params.Metric.Distance(st.r[i], st.target)
	}
}

// partition splits A into the current matching set (top-k by τ) and the
// rest.
func (st *state) partition(k int) (mSet, rest []int) {
	ranked := histogram.TopK(st.tau, st.a, len(st.a))
	mSet = make([]int, 0, k)
	rest = make([]int, 0, len(ranked)-k)
	for idx, rk := range ranked {
		if idx < k {
			mSet = append(mSet, rk.ID)
		} else {
			rest = append(rest, rk.ID)
		}
	}
	return mSet, rest
}

// chooseK returns the k to use this round. For fixed-k queries it is
// Params.K. For KRange queries it picks the k in [KMin, KMax] with the
// widest gap τ_(k+1) − τ_(k), which makes the separation hypotheses as
// easy as possible to reject (Appendix A.2.3).
func (st *state) chooseK() int {
	kr := st.params.KRange
	if kr.KMax <= 0 {
		return st.params.K
	}
	ranked := histogram.TopK(st.tau, st.a, len(st.a))
	bestK, bestGap := kr.KMin, math.Inf(-1)
	for k := kr.KMin; k <= kr.KMax && k < len(ranked); k++ {
		gap := ranked[k].Distance - ranked[k-1].Distance
		if gap > bestGap {
			bestGap = gap
			bestK = k
		}
	}
	if kr.KMax >= len(ranked) && len(ranked) >= kr.KMin {
		// Taking everything ranked is free of separation hypotheses.
		return min(kr.KMax, len(ranked))
	}
	return bestK
}

// tauOf gathers the τ values of the given candidates.
func (st *state) tauOf(ids []int) []float64 {
	out := make([]float64, len(ids))
	for i, id := range ids {
		out[i] = st.tau[id]
	}
	return out
}

func demandOf(need map[int]int, split float64) RoundDemand {
	d := RoundDemand{Split: split, MaxNeedCandidate: -1}
	for id, n := range need {
		d.SumNeed += int64(n)
		if int64(n) > d.MaxNeed {
			d.MaxNeed = int64(n)
			d.MaxNeedCandidate = id
		}
	}
	return d
}

func sumCounts(b *Batch) int64 {
	var s int64
	for _, c := range b.Counts {
		s += c
	}
	return s
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
