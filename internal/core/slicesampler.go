package core

import (
	"fmt"
	"math/rand"

	"fastmatch/internal/histogram"
)

// SliceSampler is the reference Sampler: an in-memory list of (candidate,
// group) tuples consumed sequentially after an upfront shuffle, so every
// prefix is a uniform sample without replacement. The FastMatch engine
// supersedes it for block-based I/O; SliceSampler remains the simplest
// correct implementation, used by tests and by callers who already have
// row-level data in memory.
type SliceSampler struct {
	z, x   []uint32
	nCand  int
	groups int
	pos    int
}

// NewSliceSampler builds a sampler over parallel candidate/group code
// slices. If shuffleSeed is non-nil the tuples are permuted first; pass
// nil only when the data is already randomly ordered.
func NewSliceSampler(z, x []uint32, nCand, groups int, shuffleSeed *int64) (*SliceSampler, error) {
	if len(z) != len(x) {
		return nil, fmt.Errorf("core: z/x length mismatch %d vs %d", len(z), len(x))
	}
	if nCand <= 0 || groups <= 0 {
		return nil, fmt.Errorf("core: invalid cardinalities nCand=%d groups=%d", nCand, groups)
	}
	for i := range z {
		if int(z[i]) >= nCand {
			return nil, fmt.Errorf("core: z code %d out of range at row %d", z[i], i)
		}
		if int(x[i]) >= groups {
			return nil, fmt.Errorf("core: x code %d out of range at row %d", x[i], i)
		}
	}
	s := &SliceSampler{
		z: append([]uint32(nil), z...), x: append([]uint32(nil), x...),
		nCand: nCand, groups: groups,
	}
	if shuffleSeed != nil {
		rng := rand.New(rand.NewSource(*shuffleSeed))
		rng.Shuffle(len(s.z), func(i, j int) {
			s.z[i], s.z[j] = s.z[j], s.z[i]
			s.x[i], s.x[j] = s.x[j], s.x[i]
		})
	}
	return s, nil
}

// NumCandidates implements Sampler.
func (s *SliceSampler) NumCandidates() int { return s.nCand }

// Groups implements Sampler.
func (s *SliceSampler) Groups() int { return s.groups }

// TotalRows implements Sampler.
func (s *SliceSampler) TotalRows() int64 { return int64(len(s.z)) }

// Consumed returns the number of tuples read so far.
func (s *SliceSampler) Consumed() int { return s.pos }

// Stage1 implements Sampler by reading the next m tuples.
func (s *SliceSampler) Stage1(m int) (*Batch, error) {
	batch := s.newBatch()
	for taken := 0; taken < m && s.pos < len(s.z); taken++ {
		s.take(batch)
	}
	batch.Exhausted = s.pos >= len(s.z)
	return batch, nil
}

// SampleUntil implements Sampler by reading tuples until every needed
// candidate has its quota of fresh samples.
func (s *SliceSampler) SampleUntil(need map[int]int) (*Batch, error) {
	batch := s.newBatch()
	remaining := 0
	deficit := make(map[int]int, len(need))
	for id, n := range need {
		if id < 0 || id >= s.nCand {
			return nil, fmt.Errorf("core: need for unknown candidate %d", id)
		}
		if n > 0 {
			deficit[id] = n
			remaining++
		}
	}
	for remaining > 0 && s.pos < len(s.z) {
		zi := int(s.z[s.pos])
		s.take(batch)
		if d, ok := deficit[zi]; ok {
			if d == 1 {
				delete(deficit, zi)
				remaining--
			} else {
				deficit[zi] = d - 1
			}
		}
	}
	batch.Exhausted = s.pos >= len(s.z)
	return batch, nil
}

func (s *SliceSampler) newBatch() *Batch {
	return &Batch{
		Counts: make([]int64, s.nCand),
		Hists:  make([]*histogram.Histogram, s.nCand),
	}
}

func (s *SliceSampler) take(batch *Batch) {
	zi, xi := int(s.z[s.pos]), int(s.x[s.pos])
	s.pos++
	batch.Drawn++
	if batch.Hists[zi] == nil {
		batch.Hists[zi] = histogram.New(s.groups)
	}
	batch.Hists[zi].Add(xi)
	batch.Counts[zi]++
}

// ExactHistograms scans the full data (independent of sampler position)
// and returns the exact per-candidate histograms — the ground truth r*_i
// used by tests and by target construction.
func (s *SliceSampler) ExactHistograms() []*histogram.Histogram {
	out := make([]*histogram.Histogram, s.nCand)
	for i := range out {
		out[i] = histogram.New(s.groups)
	}
	for i := range s.z {
		out[s.z[i]].Add(int(s.x[i]))
	}
	return out
}
