package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"fastmatch/internal/histogram"
)

// Property: on data small enough to exhaust, HistSim returns exactly the
// brute-force top-k over the non-pruned candidates, for random populations
// and parameters.
func TestExhaustiveEquivalenceProperty(t *testing.T) {
	f := func(seed int64, k8, cand8, grp8 uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		nCand := int(cand8%8) + 3
		groups := int(grp8%5) + 2
		k := int(k8%uint8(nCand)) + 1
		rows := 1500 + rng.Intn(1500)
		z := make([]uint32, rows)
		x := make([]uint32, rows)
		for i := range z {
			z[i] = uint32(rng.Intn(nCand))
			x[i] = uint32(rng.Intn(groups))
		}
		shuffleSeed := seed + 1
		s, err := NewSliceSampler(z, x, nCand, groups, &shuffleSeed)
		if err != nil {
			return false
		}
		targetCounts := make([]float64, groups)
		for g := range targetCounts {
			targetCounts[g] = rng.Float64() + 0.1
		}
		target := histogram.FromCounts(targetCounts)
		params := Params{
			K: k, Epsilon: 0.02, Delta: 0.01, Sigma: 0,
			Stage1Samples: 0, Metric: histogram.MetricL1,
		}
		res, err := Run(s, target, params)
		if err != nil {
			return false
		}
		// ε=0.02 on ≤3000 rows forces exhaustion; result must equal the
		// brute-force answer as a set.
		if !res.Exact {
			return false
		}
		exact := s.ExactHistograms()
		dist := make([]float64, nCand)
		for i, h := range exact {
			dist[i] = histogram.L1(h, target)
		}
		want := histogram.TopK(dist, nil, k)
		if len(res.TopK) != len(want) {
			return false
		}
		// Compare as multisets of distances (ties may reorder ids).
		for i := range want {
			if diff := res.TopK[i].Distance - want[i].Distance; diff > 1e-9 || diff < -1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: the matching set size is always min(k, non-pruned candidates),
// and every pruned candidate is absent from it.
func TestOutputShapeProperty(t *testing.T) {
	f := func(seed int64) bool {
		pop := makePopulation(t, seed, 20_000, 12, 5, 0.25)
		s := pop.sampler(t, seed+1)
		params := defaultParams()
		params.K = 4
		res, err := Run(s, pop.targets, params)
		if err != nil {
			return false
		}
		pruned := map[int]bool{}
		for _, id := range res.Pruned {
			pruned[id] = true
		}
		for _, rk := range res.TopK {
			if pruned[rk.ID] {
				return false
			}
		}
		wantK := 4
		if avail := 12 - len(res.Pruned); avail < wantK {
			wantK = avail
		}
		return len(res.TopK) == wantK
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// Property: stage-3 reconstruction sampling is idempotent in the sense
// that the returned histograms' totals never decrease relative to the
// Theorem-1 requirement or the candidate's full population, whichever is
// smaller.
func TestStage3SampleFloorProperty(t *testing.T) {
	f := func(seed int64) bool {
		pop := makePopulation(t, seed, 60_000, 10, 6, 0)
		s := pop.sampler(t, seed+2)
		params := defaultParams()
		res, err := Run(s, pop.targets, params)
		if err != nil {
			return false
		}
		required := params.Metric.SamplesFor(6, params.Epsilon, params.Delta/(3*float64(len(res.TopK))))
		for id, h := range res.Hists {
			full := pop.exact[id].Total()
			floor := float64(required)
			if full < floor {
				floor = full
			}
			if h.Total() < floor {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Fatal(err)
	}
}
