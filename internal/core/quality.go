package core

import (
	"fastmatch/internal/histogram"
)

// Quality telemetry: HistSim's answer comes with a probabilistic contract
// (precision ≥ 1−ε at confidence 1−δ), and this file makes the contract
// observable. When Params.CollectQuality is set, every emission point
// (after stage 1, after each stage-2 round, after stage 3) computes a
// RoundQuality describing how the estimates are converging, and the final
// Result carries a Quality report describing how — and how trustworthily —
// the run terminated. Collection never changes the answer: it reads the
// cumulative estimates the algorithm already maintains.

// CandidateQuality describes the estimate quality of one ranked
// candidate: its current distance estimate, a confidence-interval
// half-width around it, and how much evidence backs it.
type CandidateQuality struct {
	// ID is the internal candidate id.
	ID int `json:"id"`
	// Distance is the estimated (or exact) distance to the target.
	Distance float64 `json:"distance"`
	// CI is the half-width of the (1−δ) confidence interval around
	// Distance: with probability ≥ 1−δ the true distance lies within
	// Distance ± CI (via Metric.Deviation and the triangle inequality).
	// Clamped to the metric's diameter (2) so it stays JSON-encodable
	// for candidates with no samples yet.
	CI float64 `json:"ci"`
	// Samples is the cumulative sample count n_i behind the estimate.
	Samples int64 `json:"samples"`
	// UnseenGroups counts histogram groups with zero cumulative samples
	// for this candidate — groups whose share is still pure prior. High
	// values flag rare-group reconstruction risk.
	UnseenGroups int `json:"unseen_groups,omitempty"`
}

// RoundQuality is one emission's convergence telemetry.
type RoundQuality struct {
	// Phase and Round identify the emission ("stage1"/"stage2"/"stage3").
	Phase string `json:"phase"`
	Round int    `json:"round,omitempty"`
	// Gap is the observed separation margin τ_(k+1) − τ_(k) over the
	// ranked observed candidates (0 when fewer than k+1 are ranked).
	Gap float64 `json:"gap"`
	// Slack is Gap − ε₁: the distance of the observed margin from the
	// separation threshold. Positive slack means the current ranking
	// separates by more than the guarantee demands; persistent negative
	// slack predicts more rounds.
	Slack float64 `json:"slack"`
	// Churn counts current top-k members absent from the previous
	// emission's top-k (0 on the first emission).
	Churn int `json:"churn"`
	// ActiveCandidates and PrunedCandidates count the survivors of and
	// casualties to stage-1 pruning.
	ActiveCandidates int `json:"active_candidates"`
	PrunedCandidates int `json:"pruned_candidates,omitempty"`
	// TopK carries per-candidate quality aligned with the emission's
	// ranking (Snapshot.TopK).
	TopK []CandidateQuality `json:"topk,omitempty"`
}

// Quality is the final answer-quality report attached to Result when
// Params.CollectQuality is set.
type Quality struct {
	// Rounds is the number of stage-2 rounds the run used.
	Rounds int `json:"rounds"`
	// FinalGap and FinalSlack are the terminal observed margin and its
	// distance from ε₁ (see RoundQuality).
	FinalGap   float64 `json:"final_gap"`
	FinalSlack float64 `json:"final_slack"`
	// Churn is the total top-k membership churn summed over emissions —
	// a measure of how unstable the ranking was while converging.
	Churn int `json:"churn"`
	// PrunedCandidates counts stage-1 rare-candidate prunes.
	PrunedCandidates int `json:"pruned_candidates,omitempty"`
	// Matches carries per-returned-match quality, aligned with
	// Result.TopK.
	Matches []CandidateQuality `json:"matches,omitempty"`
	// Termination classifies how the run ended: "guarantee" (stages ran
	// to completion, so Guarantees 1 and 2 hold at the configured ε, δ),
	// "exact" (data exhausted; the answer is exact, strictly stronger),
	// or "truncated" (deadline/budget/cancellation cut the run short; no
	// guarantee attaches).
	Termination string `json:"termination"`
	// GuaranteeMet reports that the probabilistic contract was
	// established (true for "guarantee" and "exact", false for
	// "truncated").
	GuaranteeMet bool `json:"guarantee_met"`
	// Truncated mirrors Termination == "truncated" for callers branching
	// on the flag alone.
	Truncated bool `json:"truncated,omitempty"`
}

// Quality termination classifications.
const (
	TerminationGuarantee = "guarantee"
	TerminationExact     = "exact"
	TerminationTruncated = "truncated"
)

// ciDiameter caps CandidateQuality.CI: every supported metric is bounded
// by 2, and Metric.Deviation returns +Inf for zero-sample candidates,
// which must not leak into JSON-encoded reports.
const ciDiameter = 2

// candQuality builds the per-candidate quality entry from the cumulative
// state.
func (st *state) candQuality(rk histogram.Ranked) CandidateQuality {
	ci := st.params.Metric.Deviation(st.groups, int(st.n[rk.ID]), st.params.Delta)
	if ci > ciDiameter {
		ci = ciDiameter
	}
	unseen := 0
	h := st.r[rk.ID]
	for g := 0; g < h.Groups(); g++ {
		if h.Count(g) == 0 {
			unseen++
		}
	}
	return CandidateQuality{
		ID:           rk.ID,
		Distance:     rk.Distance,
		CI:           ci,
		Samples:      st.n[rk.ID],
		UnseenGroups: unseen,
	}
}

// gapAt returns the observed margin τ_(k+1) − τ_(k) over the ranked
// observed candidates, or 0 when fewer than k+1 are ranked (everything
// observed is in the matching set: the separation hypotheses are vacuous).
func (st *state) gapAt(k int) float64 {
	active := st.a
	if active == nil {
		active = allCandidates(st.nCand)
	}
	ranked := histogram.TopK(st.tau, st.observed(active), len(active))
	if k <= 0 || k >= len(ranked) {
		return 0
	}
	return ranked[k].Distance - ranked[k-1].Distance
}

// roundQuality computes the emission's convergence telemetry and folds it
// into the run-level accumulators (total churn, previous top-k set).
// top is the emission's ranking (Snapshot.TopK), active the current
// candidate set.
func (st *state) roundQuality(phase string, round int, top []histogram.Ranked, active []int) *RoundQuality {
	q := &RoundQuality{
		Phase:            phase,
		Round:            round,
		ActiveCandidates: len(active),
		PrunedCandidates: st.res.Stats.PrunedCandidates,
	}
	q.Gap = st.gapAt(len(top))
	q.Slack = q.Gap - st.params.epsSeparation()
	cur := make(map[int]bool, len(top))
	q.TopK = make([]CandidateQuality, len(top))
	for i, rk := range top {
		cur[rk.ID] = true
		q.TopK[i] = st.candQuality(rk)
		if st.prevTop != nil && !st.prevTop[rk.ID] {
			q.Churn++
		}
	}
	if st.prevTop == nil {
		q.Churn = 0
	}
	st.prevTop = cur
	st.qChurn += q.Churn
	return q
}

// buildQuality assembles the final report after finalize() has re-ranked
// the answer (st.tau is fresh).
func (st *state) buildQuality(truncated bool) *Quality {
	q := &Quality{
		Rounds:           st.res.Stats.Rounds,
		PrunedCandidates: st.res.Stats.PrunedCandidates,
		Churn:            st.qChurn,
		Truncated:        truncated,
	}
	switch {
	case truncated:
		q.Termination = TerminationTruncated
	case st.res.Exact:
		q.Termination = TerminationExact
	default:
		q.Termination = TerminationGuarantee
	}
	q.GuaranteeMet = !truncated
	q.FinalGap = st.gapAt(len(st.res.TopK))
	q.FinalSlack = q.FinalGap - st.params.epsSeparation()
	q.Matches = make([]CandidateQuality, len(st.res.TopK))
	for i, rk := range st.res.TopK {
		q.Matches[i] = st.candQuality(rk)
	}
	return q
}
