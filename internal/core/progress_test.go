package core

import (
	"errors"
	"fmt"
	"reflect"
	"testing"

	"fastmatch/internal/histogram"
)

// interruptingSampler wraps a SliceSampler and, starting at the Nth
// sampler call, returns the real batch together with an error wrapping
// ErrInterrupted — the contract a cancellation-aware sampler follows.
type interruptingSampler struct {
	*SliceSampler
	after int
	calls int
}

var errTestCause = errors.New("test cause")

func (s *interruptingSampler) maybe(batch *Batch, err error) (*Batch, error) {
	s.calls++
	if err == nil && s.calls >= s.after {
		return batch, fmt.Errorf("%w (%w)", errTestCause, ErrInterrupted)
	}
	return batch, err
}

func (s *interruptingSampler) Stage1(m int) (*Batch, error) {
	return s.maybe(s.SliceSampler.Stage1(m))
}

func (s *interruptingSampler) SampleUntil(need map[int]int) (*Batch, error) {
	return s.maybe(s.SliceSampler.SampleUntil(need))
}

func TestInterruptedRunSalvagesPartialResult(t *testing.T) {
	pop := makePopulation(t, 7, 200_000, 12, 6, 0)
	params := defaultParams()
	params.Stage1Samples = 5_000

	for _, after := range []int{1, 2, 3} {
		t.Run(fmt.Sprintf("after-call-%d", after), func(t *testing.T) {
			s := &interruptingSampler{SliceSampler: pop.sampler(t, 3), after: after}
			res, err := Run(s, pop.targets, params)
			if !errors.Is(err, ErrInterrupted) || !errors.Is(err, errTestCause) {
				t.Fatalf("want wrapped ErrInterrupted + cause, got %v", err)
			}
			if res == nil {
				t.Fatal("interrupted run returned no partial result")
			}
			if !res.Partial {
				t.Fatal("salvaged result not flagged Partial")
			}
			if len(res.TopK) != params.K {
				t.Fatalf("partial TopK has %d entries, want %d", len(res.TopK), params.K)
			}
			for _, rk := range res.TopK {
				if res.Hists[rk.ID] == nil {
					t.Fatalf("no snapshot histogram for partial match %d", rk.ID)
				}
			}
			// The interrupted batch's samples must have been folded in.
			if after >= 1 && res.Stats.TotalSamples() == 0 {
				t.Fatal("interrupted batch was dropped, not accumulated")
			}
		})
	}
}

// sparseInterruptSampler interrupts immediately, having delivered
// samples for only candidate 0 — the partial answer must not rank the
// never-observed candidates (whose empty estimates normalize to
// uniform, i.e. distance 0 from a uniform target).
type sparseInterruptSampler struct{ *SliceSampler }

func (s *sparseInterruptSampler) Stage1(int) (*Batch, error) {
	b := &Batch{
		Counts: make([]int64, s.NumCandidates()),
		Hists:  make([]*histogram.Histogram, s.NumCandidates()),
		Drawn:  10,
	}
	b.Counts[0] = 10
	b.Hists[0] = histogram.New(s.Groups())
	for g := 0; g < s.Groups(); g++ {
		b.Hists[0].Add(g % s.Groups())
	}
	return b, fmt.Errorf("stopped (%w)", ErrInterrupted)
}

func TestSalvageRanksOnlyObservedCandidates(t *testing.T) {
	pop := makePopulation(t, 7, 50_000, 10, 5, 0)
	params := defaultParams()
	s := &sparseInterruptSampler{SliceSampler: pop.sampler(t, 3)}
	res, err := Run(s, pop.targets, params)
	if !errors.Is(err, ErrInterrupted) {
		t.Fatalf("want ErrInterrupted, got %v", err)
	}
	if len(res.TopK) != 1 || res.TopK[0].ID != 0 {
		t.Fatalf("partial TopK should hold only the observed candidate 0, got %+v", res.TopK)
	}
}

func TestNonInterruptErrorStillReturnsNilResult(t *testing.T) {
	pop := makePopulation(t, 7, 50_000, 8, 5, 0)
	s := &failingSampler{SliceSampler: pop.sampler(t, 3)}
	res, err := Run(s, pop.targets, defaultParams())
	if err == nil || res != nil {
		t.Fatalf("plain sampler failure: res=%v err=%v, want nil result + error", res, err)
	}
}

type failingSampler struct{ *SliceSampler }

func (s *failingSampler) Stage1(int) (*Batch, error) {
	return nil, errors.New("disk on fire")
}

func TestObserverSequenceIsDeterministic(t *testing.T) {
	pop := makePopulation(t, 5, 300_000, 10, 6, 0.2)
	params := defaultParams()
	params.Stage1Samples = 8_000

	collect := func() []Snapshot {
		var got []Snapshot
		res, err := RunObserved(pop.sampler(t, 9), pop.targets, params, func(s Snapshot) {
			got = append(got, s)
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Partial {
			t.Fatal("uninterrupted run flagged Partial")
		}
		return got
	}

	a, b := collect(), collect()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("observer sequences diverge across identical runs:\n%v\nvs\n%v", a, b)
	}
	if len(a) == 0 {
		t.Fatal("no snapshots emitted")
	}
	if a[0].Phase != "stage1" {
		t.Fatalf("first snapshot phase %q, want stage1", a[0].Phase)
	}
	lastDrawn, round := int64(-1), 0
	for i, s := range a {
		if s.Drawn < lastDrawn {
			t.Fatalf("snapshot %d: drawn count went backwards (%d -> %d)", i, lastDrawn, s.Drawn)
		}
		lastDrawn = s.Drawn
		if s.Phase == "stage2" {
			if s.Round != round+1 {
				t.Fatalf("snapshot %d: round %d after round %d", i, s.Round, round)
			}
			round = s.Round
		}
		if len(s.TopK) == 0 {
			t.Fatalf("snapshot %d carries no interim top-k", i)
		}
	}
}

func TestNilObserverUnchangedResult(t *testing.T) {
	pop := makePopulation(t, 6, 200_000, 10, 6, 0.2)
	params := defaultParams()
	params.Stage1Samples = 8_000
	plain, err := Run(pop.sampler(t, 4), pop.targets, params)
	if err != nil {
		t.Fatal(err)
	}
	observed, err := RunObserved(pop.sampler(t, 4), pop.targets, params, func(Snapshot) {})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain, observed) {
		t.Fatal("observer changed the run's result")
	}
}
