// Package core implements HistSim (Algorithm 1 of the paper): the
// probabilistic top-k histogram matching algorithm with separation and
// reconstruction guarantees. The algorithm is sampler-agnostic — it
// consumes uniform samples through the Sampler interface and is correct
// regardless of how the I/O layer produces them, which is exactly the
// contract the FastMatch engine (internal/engine) exploits with its
// block-based, bitmap-guided sampling.
package core

import (
	"fmt"
	"math"

	"fastmatch/internal/histogram"
)

// Params carries the user-supplied knobs of Problem 1 plus the extensions
// of Appendix A.2.
type Params struct {
	// K is the number of matching histograms to retrieve.
	K int
	// Epsilon is the approximation error bound ε shared by Guarantees 1
	// and 2 (paper default 0.04).
	Epsilon float64
	// EpsilonReconstruct, when positive, overrides Epsilon for Guarantee 2
	// only (Appendix A.2.1's distinct ε₁/ε₂).
	EpsilonReconstruct float64
	// Delta is the total error probability bound δ (paper default 0.01).
	Delta float64
	// Sigma is the minimum selectivity threshold σ below which candidates
	// may be pruned (paper default 0.0008).
	Sigma float64
	// Stage1Samples is m, the stage-1 uniform sample size (paper default
	// 5·10⁵ on ~600M rows; callers should scale to their data size).
	Stage1Samples int
	// Metric selects the distance (L1 by default; L2 per Appendix A.2.2).
	Metric histogram.Metric
	// KRange, when KMax > 0, lets HistSim pick any k in [KMin, KMax],
	// choosing the k with the widest distance gap each round so
	// termination comes as early as possible (Appendix A.2.3).
	KRange struct{ KMin, KMax int }
	// MaxRounds caps stage-2 rounds as a defensive limit; 0 selects 64.
	// Exhausting the data always terminates the algorithm first in
	// practice, since the per-round sample demand grows geometrically.
	MaxRounds int
	// CollectQuality enables answer-quality telemetry: per-round
	// convergence snapshots (Snapshot.Quality) and the final
	// Result.Quality report. Purely observational — it never changes the
	// answer, the sampling schedule, or the I/O — so engine fingerprints
	// exclude it; when false (the default) no quality work runs at all.
	CollectQuality bool
	// RoundBudget bounds the I/O of early stage-2 rounds: round t's
	// per-candidate demands n'_i are clamped so that satisfying them is
	// expected to scan about RoundBudget·2^(t−1) tuples, using the
	// selectivity estimates accumulated so far. This addresses the other
	// half of Challenge 2 (§4.2): the Equation-(1) demands computed from
	// a noisy stage-1 estimate can force a near-full scan in round 1,
	// wasting I/O that later, better-informed rounds would not need.
	// Correctness is unaffected (HistSim accepts any per-round sample
	// counts); only termination speed changes. 0 selects
	// max(Stage1Samples, TotalRows/20); negative disables shaping,
	// recovering the paper's raw Equation (1).
	RoundBudget int
}

// epsSeparation returns ε₁ (Guarantee 1).
func (p Params) epsSeparation() float64 { return p.Epsilon }

// epsReconstruct returns ε₂ (Guarantee 2).
func (p Params) epsReconstruct() float64 {
	if p.EpsilonReconstruct > 0 {
		return p.EpsilonReconstruct
	}
	return p.Epsilon
}

// maxRounds returns the effective stage-2 round cap.
func (p Params) maxRounds() int {
	if p.MaxRounds > 0 {
		return p.MaxRounds
	}
	return 64
}

// Validate checks parameter ranges.
func (p Params) Validate() error {
	if p.K < 1 && p.KRange.KMax <= 0 {
		return fmt.Errorf("core: k must be ≥ 1, got %d", p.K)
	}
	if !(p.Epsilon > 0 && p.Epsilon <= 2) {
		return fmt.Errorf("core: epsilon must be in (0, 2], got %g", p.Epsilon)
	}
	if p.EpsilonReconstruct < 0 || p.EpsilonReconstruct > 2 {
		return fmt.Errorf("core: epsilonReconstruct must be in [0, 2], got %g", p.EpsilonReconstruct)
	}
	if !(p.Delta > 0 && p.Delta < 1) {
		return fmt.Errorf("core: delta must be in (0, 1), got %g", p.Delta)
	}
	if p.Sigma < 0 || p.Sigma >= 1 {
		return fmt.Errorf("core: sigma must be in [0, 1), got %g", p.Sigma)
	}
	if p.Stage1Samples < 0 {
		return fmt.Errorf("core: stage1Samples must be ≥ 0, got %d", p.Stage1Samples)
	}
	if math.IsNaN(p.Epsilon) || math.IsNaN(p.Delta) || math.IsNaN(p.Sigma) {
		return fmt.Errorf("core: NaN parameter")
	}
	if p.KRange.KMax > 0 {
		if p.KRange.KMin < 1 || p.KRange.KMin > p.KRange.KMax {
			return fmt.Errorf("core: invalid k range [%d, %d]", p.KRange.KMin, p.KRange.KMax)
		}
	}
	return nil
}

// Batch is the result of one I/O phase: fresh per-candidate sample counts
// and group-count histograms, independent of all previous batches (the
// "∂" quantities of §3.4).
type Batch struct {
	// Drawn is the total number of tuples consumed producing this batch,
	// including tuples that matched no candidate (e.g. rows removed by a
	// WHERE predicate). When zero, the per-candidate counts sum is used.
	// Stage 1's hypergeometric test needs this as its draw count m.
	Drawn int64
	// Counts[i] is n∂_i, the number of fresh samples for candidate i.
	Counts []int64
	// Hists[i] is r∂_i, the fresh group counts for candidate i. Entries
	// may be nil for candidates with zero fresh samples.
	Hists []*histogram.Histogram
	// Exhausted reports that the underlying data has been fully consumed:
	// cumulative estimates are now exact, and no further sampling is
	// possible.
	Exhausted bool
	// Exact, when non-nil, flags candidates whose tuples have been fully
	// consumed across all batches: their cumulative estimates are exact
	// (d(r_i, r*_i) = 0), so hypothesis tests about them can be decided
	// deterministically. Samplers without per-candidate exhaustion
	// tracking may leave this nil.
	Exact []bool
}

// IsExact reports whether candidate i is flagged exact.
func (b *Batch) IsExact(i int) bool {
	return b.Exact != nil && b.Exact[i]
}

// Sampler abstracts the I/O layer. Implementations must return uniform
// samples without replacement across calls; HistSim's correctness
// (Theorem 2) holds for any such implementation.
type Sampler interface {
	// NumCandidates returns |V_Z|, the candidate-attribute cardinality.
	NumCandidates() int
	// Groups returns |V_X|, the grouping-attribute cardinality.
	Groups() int
	// TotalRows returns N, the number of tuples in the relation (used by
	// the stage-1 hypergeometric test).
	TotalRows() int64
	// Stage1 draws up to m uniform samples without replacement from the
	// whole relation.
	Stage1(m int) (*Batch, error)
	// SampleUntil draws fresh samples until every candidate id in need
	// has at least need[id] samples in the returned batch, or the data is
	// exhausted. Samples incidentally collected for other candidates may
	// be included; they only sharpen the cumulative estimates.
	SampleUntil(need map[int]int) (*Batch, error)
}
