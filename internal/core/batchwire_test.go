package core

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
	"math/rand"
	"testing"
)

// TestBatchWireRoundTripMerge is the wire contract property test: for
// random batches a, b over the same candidate domain,
// decode(encode(a)).Merge(decode(encode(b))) must be bit-identical to
// a.Merge(b) on the in-memory originals (batchEqual compares histogram
// cells via Float64bits).
func TestBatchWireRoundTripMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for iter := 0; iter < 200; iter++ {
		nCand := 1 + rng.Intn(8)
		groups := 1 + rng.Intn(12)
		a, b := randBatch(rng, nCand, groups), randBatch(rng, nCand, groups)

		wantA, wantB := cloneBatch(a), cloneBatch(b)
		if err := wantA.Merge(wantB); err != nil {
			t.Fatalf("iter %d: direct merge: %v", iter, err)
		}

		da, err := DecodeBatch(EncodeBatch(a))
		if err != nil {
			t.Fatalf("iter %d: decode a: %v", iter, err)
		}
		if err := batchEqual(da, a); err != nil {
			t.Fatalf("iter %d: round-trip a: %v", iter, err)
		}
		db, err := DecodeBatch(EncodeBatch(b))
		if err != nil {
			t.Fatalf("iter %d: decode b: %v", iter, err)
		}
		if err := da.Merge(db); err != nil {
			t.Fatalf("iter %d: wire merge: %v", iter, err)
		}
		if err := batchEqual(da, wantA); err != nil {
			t.Fatalf("iter %d: wire merge differs from direct merge: %v", iter, err)
		}
	}
}

func TestBatchWireNilAndEmpty(t *testing.T) {
	got, err := DecodeBatch(EncodeBatch(nil))
	if err != nil {
		t.Fatalf("decode(encode(nil)): %v", err)
	}
	if got.Drawn != 0 || len(got.Counts) != 0 || got.Exhausted || got.Exact != nil {
		t.Fatalf("nil batch round-trip = %+v, want zero batch", got)
	}
}

func TestBatchWireRejectsCorruption(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	payload := EncodeBatch(randBatch(rng, 5, 6))

	t.Run("magic", func(t *testing.T) {
		bad := append([]byte(nil), payload...)
		bad[0] = 'X'
		if _, err := DecodeBatch(bad); !errors.Is(err, ErrWireMagic) {
			t.Fatalf("bad magic: err = %v, want ErrWireMagic", err)
		}
	})
	t.Run("version", func(t *testing.T) {
		bad := append([]byte(nil), payload...)
		binary.LittleEndian.PutUint16(bad[4:6], 99)
		// keep the checksum honest so the version guard is what fires
		binary.LittleEndian.PutUint32(bad[len(bad)-4:], crc32.ChecksumIEEE(bad[:len(bad)-4]))
		if _, err := DecodeBatch(bad); !errors.Is(err, ErrWireVersion) {
			t.Fatalf("cross-version: err = %v, want ErrWireVersion", err)
		}
	})
	t.Run("flipped byte", func(t *testing.T) {
		for off := 6; off < len(payload)-4; off += 7 {
			bad := append([]byte(nil), payload...)
			bad[off] ^= 0x40
			if _, err := DecodeBatch(bad); !errors.Is(err, ErrWireCorrupt) {
				t.Fatalf("flip at %d: err = %v, want ErrWireCorrupt", off, err)
			}
		}
	})
	t.Run("truncated", func(t *testing.T) {
		for _, n := range []int{5, 9, 14, len(payload) / 2, len(payload) - 1} {
			if n >= len(payload) {
				continue
			}
			if _, err := DecodeBatch(payload[:n]); err == nil {
				t.Fatalf("truncated to %d bytes decoded without error", n)
			} else if !errors.Is(err, ErrWireCorrupt) && !errors.Is(err, ErrWireMagic) {
				t.Fatalf("truncated to %d: err = %v, want typed wire error", n, err)
			}
		}
	})
	t.Run("oversized counts", func(t *testing.T) {
		// Claim 2^31 candidates in a tiny frame: must reject before allocating.
		bad := make([]byte, 0, 32)
		bad = append(bad, "FMBW"...)
		bad = binary.LittleEndian.AppendUint16(bad, 1)
		bad = binary.LittleEndian.AppendUint64(bad, 0)
		bad = binary.LittleEndian.AppendUint32(bad, 1<<31-1)
		bad = binary.LittleEndian.AppendUint32(bad, crc32.ChecksumIEEE(bad))
		if _, err := DecodeBatch(bad); !errors.Is(err, ErrWireCorrupt) {
			t.Fatalf("oversized count: err = %v, want ErrWireCorrupt", err)
		}
	})
	t.Run("trailing garbage", func(t *testing.T) {
		bad := append([]byte(nil), payload[:len(payload)-4]...)
		bad = append(bad, 0xAB, 0xCD)
		bad = binary.LittleEndian.AppendUint32(bad, crc32.ChecksumIEEE(bad))
		if _, err := DecodeBatch(bad); !errors.Is(err, ErrWireCorrupt) {
			t.Fatalf("trailing bytes: err = %v, want ErrWireCorrupt", err)
		}
	})
}
