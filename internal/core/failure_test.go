package core

import (
	"errors"
	"strings"
	"testing"

	"fastmatch/internal/histogram"
)

// stubSampler lets tests inject pathological sampler behaviour: empty
// batches, errors, or never-exhausting streams.
type stubSampler struct {
	nCand, groups int
	rows          int64
	stage1Err     error
	sampleErr     error
	// emptyBatches makes SampleUntil return batches with no samples and
	// Exhausted=false — a sampler that stalls without ever exhausting.
	emptyBatches bool
	calls        int
}

func (s *stubSampler) NumCandidates() int { return s.nCand }
func (s *stubSampler) Groups() int        { return s.groups }
func (s *stubSampler) TotalRows() int64   { return s.rows }

func (s *stubSampler) batch() *Batch {
	return &Batch{
		Counts: make([]int64, s.nCand),
		Hists:  make([]*histogram.Histogram, s.nCand),
	}
}

func (s *stubSampler) Stage1(m int) (*Batch, error) {
	if s.stage1Err != nil {
		return nil, s.stage1Err
	}
	b := s.batch()
	// Uniform-ish stage-1 sample: every candidate gets m/nCand tuples in
	// group 0.
	per := int64(m / s.nCand)
	for i := 0; i < s.nCand; i++ {
		b.Counts[i] = per
		b.Drawn += per
		h := histogram.New(s.groups)
		for j := int64(0); j < per; j++ {
			h.Add(0)
		}
		b.Hists[i] = h
	}
	return b, nil
}

func (s *stubSampler) SampleUntil(need map[int]int) (*Batch, error) {
	s.calls++
	if s.sampleErr != nil {
		return nil, s.sampleErr
	}
	b := s.batch()
	if s.emptyBatches {
		return b, nil
	}
	for id, n := range need {
		b.Counts[id] = int64(n)
		b.Drawn += int64(n)
		h := histogram.New(s.groups)
		for j := 0; j < n; j++ {
			h.Add(j % s.groups)
		}
		b.Hists[id] = h
	}
	return b, nil
}

func stubParams() Params {
	return Params{
		K: 2, Epsilon: 0.2, Delta: 0.05, Sigma: 0.001,
		Stage1Samples: 1000, Metric: histogram.MetricL1,
	}
}

func TestStage1ErrorPropagates(t *testing.T) {
	s := &stubSampler{nCand: 5, groups: 4, rows: 100000, stage1Err: errors.New("disk on fire")}
	_, err := Run(s, histogram.New(4), stubParams())
	if err == nil || !strings.Contains(err.Error(), "disk on fire") {
		t.Fatalf("stage 1 error not propagated: %v", err)
	}
}

func TestStage2ErrorPropagates(t *testing.T) {
	s := &stubSampler{nCand: 5, groups: 4, rows: 100000, sampleErr: errors.New("cable unplugged")}
	_, err := Run(s, histogram.New(4), stubParams())
	if err == nil || !strings.Contains(err.Error(), "cable unplugged") {
		t.Fatalf("stage 2 error not propagated: %v", err)
	}
}

func TestMaxRoundsGuardsStalledSampler(t *testing.T) {
	// A sampler that returns empty, non-exhausted batches forever must
	// trip the MaxRounds guard instead of spinning.
	s := &stubSampler{nCand: 5, groups: 4, rows: 100000, emptyBatches: true}
	p := stubParams()
	p.MaxRounds = 7
	_, err := Run(s, histogram.New(4), p)
	if err == nil || !strings.Contains(err.Error(), "did not terminate") {
		t.Fatalf("stalled sampler not caught: %v", err)
	}
	if s.calls > 7 {
		t.Fatalf("sampler called %d times, cap was 7", s.calls)
	}
}

func TestRoundDemandDiagnostics(t *testing.T) {
	pop := makePopulation(t, 30, 60_000, 12, 6, 0)
	sam := pop.sampler(t, 31)
	res, err := Run(sam, pop.targets, defaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Stats.RoundDemands) != res.Stats.Rounds {
		t.Fatalf("demand diagnostics: %d entries for %d rounds",
			len(res.Stats.RoundDemands), res.Stats.Rounds)
	}
	for i, d := range res.Stats.RoundDemands {
		if d.SumNeed <= 0 || d.MaxNeed <= 0 || d.MaxNeedCandidate < 0 {
			t.Fatalf("round %d demand empty: %+v", i+1, d)
		}
		if d.MaxNeed > d.SumNeed {
			t.Fatalf("round %d: max %d > sum %d", i+1, d.MaxNeed, d.SumNeed)
		}
	}
}

func TestRoundBudgetDisabled(t *testing.T) {
	// RoundBudget < 0 reverts to the paper's raw Equation (1); results
	// must still satisfy the guarantees.
	pop := makePopulation(t, 32, 80_000, 15, 6, 0)
	sam := pop.sampler(t, 33)
	p := defaultParams()
	p.RoundBudget = -1
	res, err := Run(sam, pop.targets, p)
	if err != nil {
		t.Fatal(err)
	}
	pop.checkGuarantees(t, res, p)
}

func TestRoundBudgetShapingReducesEarlyDemand(t *testing.T) {
	// With shaping on, round-1 demands must not exceed roughly the budget
	// times the max selectivity share... weaker check: round-1 SumNeed is
	// no larger than without shaping.
	pop := makePopulation(t, 33, 80_000, 15, 6, 0.2)
	run := func(budget int) RunStats {
		sam := pop.sampler(t, 34)
		p := defaultParams()
		p.RoundBudget = budget
		res, err := Run(sam, pop.targets, p)
		if err != nil {
			t.Fatal(err)
		}
		return res.Stats
	}
	shaped := run(0)
	raw := run(-1)
	if len(shaped.RoundDemands) == 0 || len(raw.RoundDemands) == 0 {
		t.Skip("no stage-2 rounds on this seed")
	}
	if shaped.RoundDemands[0].SumNeed > raw.RoundDemands[0].SumNeed {
		t.Fatalf("shaping increased round-1 demand: %d > %d",
			shaped.RoundDemands[0].SumNeed, raw.RoundDemands[0].SumNeed)
	}
}

func TestBatchIsExact(t *testing.T) {
	b := &Batch{}
	if b.IsExact(0) {
		t.Fatal("nil Exact should report false")
	}
	b.Exact = []bool{true, false}
	if !b.IsExact(0) || b.IsExact(1) {
		t.Fatal("IsExact wrong")
	}
}

func TestExactPValue(t *testing.T) {
	if exactPValue(true) != 0 || exactPValue(false) != 1 {
		t.Fatal("exactPValue mapping wrong")
	}
}

func TestNoCandidatesError(t *testing.T) {
	s := &stubSampler{nCand: 0, groups: 4, rows: 100}
	if _, err := Run(s, histogram.New(4), stubParams()); err == nil {
		t.Fatal("zero-candidate sampler accepted")
	}
}
