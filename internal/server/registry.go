package server

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"fastmatch/internal/colstore"
	"fastmatch/internal/engine"
)

// TableSpec describes one dataset to load into the registry: from CSV
// (parsed and optionally shuffled) or from a binary snapshot (block layout
// preserved exactly; see colstore.WriteSnapshot). It doubles as the body
// of POST /v1/admin/load.
type TableSpec struct {
	// Name registers the table for /v1/query requests.
	Name string `json:"name"`
	// Path locates the data file.
	Path string `json:"path"`
	// Format is "csv" or "snapshot"; empty infers from the extension
	// (.fms/.snap/.snapshot → snapshot, anything else → csv).
	Format string `json:"format,omitempty"`
	// Measures lists CSV header names to load as numeric measure columns
	// (ignored for snapshots, which carry their own schema).
	Measures []string `json:"measures,omitempty"`
	// Backend selects the storage backend for snapshot tables: "inmem"
	// (default; parse the snapshot onto the heap) or "mmap" (zero-copy
	// map a v2 snapshot; v1 snapshots and non-mmap platforms materialize
	// in memory and report "mmap-fallback"). CSV tables are always
	// in-memory; combining csv with mmap is an error.
	Backend string `json:"backend,omitempty"`
	// BlockSize overrides the CSV table's block granularity (≤ 0 default).
	BlockSize int `json:"block_size,omitempty"`
	// ShuffleSeed shuffles CSV rows after loading so sequential scans are
	// uniform samples. Nil selects seed 1: an unshuffled table would
	// silently break the sampling executors' statistical guarantees, so
	// opting out (pointer to a negative value) is explicit.
	ShuffleSeed *int64 `json:"shuffle_seed,omitempty"`
}

// TableInfo describes one registered table, as listed by /v1/tables.
type TableInfo struct {
	Name      string `json:"name"`
	Rows      int    `json:"rows"`
	Blocks    int    `json:"blocks"`
	BlockSize int    `json:"block_size"`
	// Columns lists categorical columns with their cardinalities.
	Columns []ColumnInfo `json:"columns"`
	// Source is the file the table was loaded from ("(in-memory)" for
	// tables registered programmatically).
	Source string `json:"source"`
	// Storage reports the backend serving the table and its mapped/heap
	// residency.
	Storage  colstore.StorageStats `json:"storage"`
	LoadedAt time.Time             `json:"loaded_at"`
}

// ColumnInfo pairs a categorical column name with its cardinality.
type ColumnInfo struct {
	Name        string `json:"name"`
	Cardinality int    `json:"cardinality"`
}

// tableEntry is one registered table: the shared engine plus its metrics.
type tableEntry struct {
	name     string
	source   string
	eng      *engine.Engine
	metrics  *tableMetrics
	loadedAt time.Time
}

// registry holds the named tables a server can answer queries over. One
// Engine per table is shared by all requests (the engine is concurrent-
// safe); the registry itself allows concurrent lookups during admin loads.
type registry struct {
	mu      sync.RWMutex
	entries map[string]*tableEntry
}

func newRegistry() *registry {
	return &registry{entries: make(map[string]*tableEntry)}
}

// register installs a storage source under a name. Re-registering a name
// is an error: swapping a live table out from under in-flight queries
// (and under cached plans) needs a versioning scheme, not a silent
// overwrite.
func (r *registry) register(name, source string, src colstore.Reader) error {
	if name == "" {
		return fmt.Errorf("server: table name must not be empty")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.entries[name]; dup {
		return fmt.Errorf("server: table %q already registered", name)
	}
	r.entries[name] = &tableEntry{
		name:     name,
		source:   source,
		eng:      engine.New(src),
		metrics:  &tableMetrics{},
		loadedAt: time.Now(),
	}
	return nil
}

// load reads the spec's file through the selected storage backend and
// registers the resulting source.
func (r *registry) load(spec TableSpec) error {
	if spec.Name == "" {
		return fmt.Errorf("server: table spec needs a name")
	}
	if spec.Path == "" {
		return fmt.Errorf("server: table %q needs a path", spec.Name)
	}
	format := spec.Format
	if format == "" {
		switch strings.ToLower(filepath.Ext(spec.Path)) {
		case ".fms", ".snap", ".snapshot":
			format = "snapshot"
		default:
			format = "csv"
		}
	}
	backend := spec.Backend
	if backend == "" {
		backend = "inmem"
	}
	if backend != "inmem" && backend != "mmap" {
		return fmt.Errorf("server: table %q: unknown backend %q (want inmem or mmap)", spec.Name, backend)
	}
	var src colstore.Reader
	var err error
	switch format {
	case "snapshot":
		if backend == "mmap" {
			src, err = colstore.OpenMmapFile(spec.Path)
		} else {
			src, err = colstore.ReadSnapshotFile(spec.Path)
		}
	case "csv":
		if backend == "mmap" {
			return fmt.Errorf("server: table %q: backend mmap requires a snapshot, not csv (write one with datagen -snapshot)", spec.Name)
		}
		var f *os.File
		if f, err = os.Open(spec.Path); err != nil {
			break
		}
		seed := int64(1)
		if spec.ShuffleSeed != nil {
			seed = *spec.ShuffleSeed
		}
		opts := colstore.CSVOptions{
			BlockSize:   spec.BlockSize,
			Measures:    spec.Measures,
			DropInvalid: true,
		}
		if seed >= 0 {
			opts.ShuffleSeed = &seed
		}
		src, err = colstore.ReadCSV(f, opts)
		f.Close()
	default:
		return fmt.Errorf("server: table %q: unknown format %q (want csv or snapshot)", spec.Name, format)
	}
	if err != nil {
		return fmt.Errorf("server: loading table %q from %s: %w", spec.Name, spec.Path, err)
	}
	if err := r.register(spec.Name, spec.Path, src); err != nil {
		// Don't leak the file mapping when registration fails (e.g. a
		// duplicate name on an admin reload).
		if c, ok := src.(io.Closer); ok {
			_ = c.Close()
		}
		return err
	}
	return nil
}

// count returns the number of registered tables.
func (r *registry) count() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.entries)
}

// get returns the entry for a table name.
func (r *registry) get(name string) (*tableEntry, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	e, ok := r.entries[name]
	return e, ok
}

// list returns info for all registered tables, name-sorted.
func (r *registry) list() []TableInfo {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]TableInfo, 0, len(r.entries))
	for _, e := range r.entries {
		src := e.eng.Source()
		info := TableInfo{
			Name:      e.name,
			Rows:      src.NumRows(),
			Blocks:    src.NumBlocks(),
			BlockSize: src.BlockSize(),
			Source:    e.source,
			Storage:   src.Storage(),
			LoadedAt:  e.loadedAt,
		}
		for _, cn := range src.Columns() {
			col, err := src.ColumnByName(cn)
			if err != nil {
				continue
			}
			info.Columns = append(info.Columns, ColumnInfo{Name: cn, Cardinality: col.Cardinality()})
		}
		out = append(out, info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// metricsSnapshot returns per-table metrics, name-keyed.
func (r *registry) metricsSnapshot() map[string]TableMetrics {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make(map[string]TableMetrics, len(r.entries))
	for name, e := range r.entries {
		m := e.metrics.snapshot()
		m.Storage = e.eng.Source().Storage()
		out[name] = m
	}
	return out
}
