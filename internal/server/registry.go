package server

import (
	"errors"
	"fmt"
	"io"
	"log/slog"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"fastmatch/internal/cluster"
	"fastmatch/internal/colstore"
	"fastmatch/internal/engine"
	"fastmatch/internal/ingest"
)

// TableSpec describes one dataset to load into the registry: from CSV
// (parsed and optionally shuffled), from a binary snapshot (block layout
// preserved exactly; see colstore.WriteSnapshot), or as a live
// ingest-backed table (a WAL-backed directory accepting appends via
// POST /v1/tables/{name}/rows). It doubles as the body of
// POST /v1/admin/load.
type TableSpec struct {
	// Name registers the table for /v1/query requests.
	Name string `json:"name"`
	// Path locates the data file — or, for the ingest backend, the
	// table's storage directory (created if absent).
	Path string `json:"path"`
	// Format is "csv" or "snapshot"; empty infers from the extension
	// (.fms/.snap/.snapshot → snapshot, anything else → csv). Ignored by
	// the ingest backend.
	Format string `json:"format,omitempty"`
	// Measures lists CSV header names to load as numeric measure columns
	// (ignored for snapshots, which carry their own schema); for the
	// ingest backend it declares the schema's measure columns.
	Measures []string `json:"measures,omitempty"`
	// Backend selects the storage backend: "inmem" (default; parse onto
	// the heap), "mmap" (zero-copy map a v2 snapshot), or "ingest" (live
	// appendable table rooted at Path, WAL-replayed on load). CSV tables
	// are always in-memory; combining csv with mmap is an error.
	Backend string `json:"backend,omitempty"`
	// Columns declares the ingest backend's categorical columns when
	// creating a fresh table directory (an existing directory carries its
	// own schema and Columns may be omitted).
	Columns []string `json:"columns,omitempty"`
	// SealRows overrides the ingest backend's segment-seal granularity
	// (≤ 0 keeps the stored or default value).
	SealRows int `json:"seal_rows,omitempty"`
	// BlockSize overrides the CSV or ingest table's block granularity
	// (≤ 0 default).
	BlockSize int `json:"block_size,omitempty"`
	// ShuffleSeed shuffles CSV rows after loading so sequential scans are
	// uniform samples. Nil selects seed 1: an unshuffled table would
	// silently break the sampling executors' statistical guarantees, so
	// opting out (pointer to a negative value) is explicit.
	ShuffleSeed *int64 `json:"shuffle_seed,omitempty"`
	// QueryTimeoutMS is this table's per-request query timeout in
	// milliseconds: a run past it stops and the response carries the
	// best-effort partial answer. 0 inherits Config.QueryTimeout;
	// negative disables the timeout even when a server default is set.
	QueryTimeoutMS int64 `json:"query_timeout_ms,omitempty"`
	// BlockDelayUS adds an artificial per-block read latency in
	// microseconds (colstore.NewThrottledReader): a storage-latency
	// simulator for exercising progressive delivery, timeouts, and
	// cancellation against small datasets. Static backends only.
	BlockDelayUS int64 `json:"block_delay_us,omitempty"`
	// AuditFraction overrides Config.AuditFraction for this table: the
	// fraction of completed sampling-executor answers to shadow-audit
	// against an exact re-execution. Nil inherits the server default;
	// a negative value disables auditing even when a default is set.
	AuditFraction *float64 `json:"audit_fraction,omitempty"`
	// Shards declares a coordinated table: no local data — queries
	// scatter-gather across these shard daemons' HTTP APIs and fold
	// their partials (see internal/cluster). Order is the global block
	// order and must match the row-range partition (datagen -shards
	// writes shards in that order). Exclusive with Path/Format/Backend.
	Shards []cluster.ShardRef `json:"shards,omitempty"`
}

// TableInfo describes one registered table, as listed by /v1/tables.
type TableInfo struct {
	Name      string `json:"name"`
	Rows      int    `json:"rows"`
	Blocks    int    `json:"blocks"`
	BlockSize int    `json:"block_size"`
	// Columns lists categorical columns with their cardinalities.
	Columns []ColumnInfo `json:"columns"`
	// Source is the file (or ingest directory) the table was loaded from
	// ("(in-memory)" for tables registered programmatically).
	Source string `json:"source"`
	// Storage reports the backend serving the table and its mapped/heap
	// residency.
	Storage colstore.StorageStats `json:"storage"`
	// Ingest carries live-table counters (nil for static backends).
	Ingest   *ingest.Stats `json:"ingest,omitempty"`
	LoadedAt time.Time     `json:"loaded_at"`
}

// ColumnInfo pairs a categorical column name with its cardinality.
type ColumnInfo struct {
	Name        string `json:"name"`
	Cardinality int    `json:"cardinality"`
}

// Registry errors the handlers map onto HTTP statuses.
var (
	errTableNotFound = errors.New("table not found")
	errTableBusy     = errors.New("table busy")
	errNotIngest     = errors.New("table backend does not accept appends")
)

// tableEntry is one registered table. Static backends bind one Engine at
// load time; ingest-backed tables bind an Engine per data generation —
// the entry caches the latest (engine, view) pair and refreshes it when
// the generation advances, so repeated queries between appends share
// plans, stitched indexes, and the engine's singleflight caches.
type tableEntry struct {
	name     string
	source   string
	metrics  *tableMetrics
	loadedAt time.Time
	// incarnation distinguishes same-named tables across unload/load
	// cycles in the plan and result cache keys.
	incarnation uint64
	// queryTimeout is the table's per-request timeout: 0 inherits the
	// server default, negative disables it.
	queryTimeout time.Duration
	// auditFraction is the table's shadow-audit fraction override: nil
	// inherits Config.AuditFraction, negative disables.
	auditFraction *float64
	// inflight counts requests currently using the entry; unload refuses
	// (409) while it is nonzero.
	inflight atomic.Int64

	eng *engine.Engine // static backends

	// coord marks a coordinated table: queries scatter-gather across
	// this client's shard daemons instead of a local engine (eng and
	// live are both nil — guard every engineNow path).
	coord *cluster.Client

	live     *ingest.WritableTable // ingest backend
	liveMu   sync.Mutex
	liveGen  uint64
	liveEng  *engine.Engine
	liveView *ingest.TableView
}

// release pairs with registry.acquire.
func (e *tableEntry) release() { e.inflight.Add(-1) }

// engineNow returns the engine serving the entry's current data version,
// its generation (0 for static tables), and a cleanup the caller must
// run when done with the engine. For live tables the underlying view is
// retained for the caller, so a concurrent append (which swaps the
// cached view) can never release pinned segments out from under a
// running query.
func (e *tableEntry) engineNow() (*engine.Engine, uint64, func(), error) {
	if e.live == nil {
		return e.eng, 0, func() {}, nil
	}
	e.liveMu.Lock()
	defer e.liveMu.Unlock()
	if e.liveEng == nil || e.live.Generation() != e.liveGen {
		v, err := e.live.View()
		if err != nil {
			return nil, 0, nil, err
		}
		if e.liveView != nil {
			e.liveView.Release()
		}
		e.liveView = v
		e.liveGen = v.Generation()
		e.liveEng = engine.New(v)
	}
	view := e.liveView
	view.Retain()
	return e.liveEng, e.liveGen, view.Release, nil
}

// close releases the entry's storage resources (unload path; the caller
// guarantees no requests are in flight).
func (e *tableEntry) close() error {
	if e.coord != nil {
		e.coord.Close()
		return nil
	}
	if e.live != nil {
		e.liveMu.Lock()
		if e.liveView != nil {
			e.liveView.Release()
			e.liveView = nil
			e.liveEng = nil
		}
		e.liveMu.Unlock()
		return e.live.Close()
	}
	if c, ok := e.eng.Source().(io.Closer); ok {
		return c.Close()
	}
	return nil
}

// registry holds the named tables a server can answer queries over. One
// Engine per table (per generation, for live tables) is shared by all
// requests; the registry itself allows concurrent lookups during admin
// loads and unloads.
type registry struct {
	mu           sync.RWMutex
	entries      map[string]*tableEntry
	incarnations map[string]uint64
	log          *slog.Logger
}

func newRegistry(log *slog.Logger) *registry {
	return &registry{
		entries:      make(map[string]*tableEntry),
		incarnations: make(map[string]uint64),
		log:          log,
	}
}

// add installs an entry, assigning its incarnation. Re-registering a
// live name is an error: swapping a table out from under in-flight
// queries needs an unload (which waits for them to drain) first.
func (r *registry) add(e *tableEntry) error {
	if e.name == "" {
		return fmt.Errorf("server: table name must not be empty")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.entries[e.name]; dup {
		return fmt.Errorf("server: table %q already registered", e.name)
	}
	r.incarnations[e.name]++
	e.incarnation = r.incarnations[e.name]
	r.entries[e.name] = e
	r.log.Info("table registered",
		"table", e.name, "source", e.source,
		"incarnation", e.incarnation, "live", e.live != nil)
	return nil
}

// register installs a static storage source under a name.
func (r *registry) register(name, source string, src colstore.Reader, queryTimeout time.Duration, auditFraction *float64) error {
	return r.add(&tableEntry{
		name:          name,
		source:        source,
		eng:           engine.New(src),
		metrics:       newTableMetrics(),
		loadedAt:      time.Now(),
		queryTimeout:  queryTimeout,
		auditFraction: auditFraction,
	})
}

// registerLive installs an open writable table under a name.
func (r *registry) registerLive(name, source string, wt *ingest.WritableTable, queryTimeout time.Duration, auditFraction *float64) error {
	return r.add(&tableEntry{
		name:          name,
		source:        source,
		live:          wt,
		metrics:       newTableMetrics(),
		loadedAt:      time.Now(),
		queryTimeout:  queryTimeout,
		auditFraction: auditFraction,
	})
}

// load reads the spec's file through the selected storage backend and
// registers the resulting source.
func (r *registry) load(spec TableSpec) error {
	if spec.Name == "" {
		return fmt.Errorf("server: table spec needs a name")
	}
	if len(spec.Shards) > 0 {
		if spec.Path != "" || spec.Format != "" || spec.Backend != "" {
			return fmt.Errorf("server: table %q: shards is exclusive with path/format/backend", spec.Name)
		}
		timeout := time.Duration(spec.QueryTimeoutMS) * time.Millisecond
		return r.registerCoordinated(spec.Name, cluster.NewClient(spec.Shards), timeout, spec.AuditFraction)
	}
	if spec.Path == "" {
		return fmt.Errorf("server: table %q needs a path", spec.Name)
	}
	backend := spec.Backend
	if backend == "" {
		backend = "inmem"
	}
	timeout := time.Duration(spec.QueryTimeoutMS) * time.Millisecond
	if backend == "ingest" {
		if spec.BlockDelayUS > 0 {
			return fmt.Errorf("server: table %q: block_delay_us is for static backends, not ingest", spec.Name)
		}
		wt, err := ingest.Open(spec.Path, ingest.Schema{
			Columns:   spec.Columns,
			Measures:  spec.Measures,
			BlockSize: spec.BlockSize,
		}, ingest.Options{SealRows: spec.SealRows, Logger: r.log})
		if err != nil {
			return fmt.Errorf("server: opening ingest table %q at %s: %w", spec.Name, spec.Path, err)
		}
		if err := r.registerLive(spec.Name, spec.Path, wt, timeout, spec.AuditFraction); err != nil {
			wt.Close()
			return err
		}
		return nil
	}
	format := spec.Format
	if format == "" {
		switch strings.ToLower(filepath.Ext(spec.Path)) {
		case ".fms", ".snap", ".snapshot":
			format = "snapshot"
		default:
			format = "csv"
		}
	}
	if backend != "inmem" && backend != "mmap" {
		return fmt.Errorf("server: table %q: unknown backend %q (want inmem, mmap, or ingest)", spec.Name, backend)
	}
	var src colstore.Reader
	var err error
	switch format {
	case "snapshot":
		if backend == "mmap" {
			src, err = colstore.OpenMmapFile(spec.Path)
		} else {
			src, err = colstore.ReadSnapshotFile(spec.Path)
		}
	case "csv":
		if backend == "mmap" {
			return fmt.Errorf("server: table %q: backend mmap requires a snapshot, not csv (write one with datagen -snapshot)", spec.Name)
		}
		var f *os.File
		if f, err = os.Open(spec.Path); err != nil {
			break
		}
		seed := int64(1)
		if spec.ShuffleSeed != nil {
			seed = *spec.ShuffleSeed
		}
		opts := colstore.CSVOptions{
			BlockSize:   spec.BlockSize,
			Measures:    spec.Measures,
			DropInvalid: true,
		}
		if seed >= 0 {
			opts.ShuffleSeed = &seed
		}
		src, err = colstore.ReadCSV(f, opts)
		f.Close()
	default:
		return fmt.Errorf("server: table %q: unknown format %q (want csv or snapshot)", spec.Name, format)
	}
	if err != nil {
		return fmt.Errorf("server: loading table %q from %s: %w", spec.Name, spec.Path, err)
	}
	if spec.BlockDelayUS > 0 {
		src = colstore.NewThrottledReader(src, time.Duration(spec.BlockDelayUS)*time.Microsecond)
	}
	if err := r.register(spec.Name, spec.Path, src, timeout, spec.AuditFraction); err != nil {
		// Don't leak the file mapping when registration fails (e.g. a
		// duplicate name on an admin reload).
		if c, ok := src.(io.Closer); ok {
			_ = c.Close()
		}
		return err
	}
	return nil
}

// unload removes a table, refusing while requests are in flight. The
// check happens under the write lock, which excludes concurrent
// acquires, so a successful unload closes storage no request is using.
func (r *registry) unload(name string) error {
	r.mu.Lock()
	e, ok := r.entries[name]
	if !ok {
		r.mu.Unlock()
		return errTableNotFound
	}
	if e.inflight.Load() != 0 {
		r.mu.Unlock()
		return fmt.Errorf("%w: %d requests in flight", errTableBusy, e.inflight.Load())
	}
	delete(r.entries, name)
	r.mu.Unlock()
	r.log.Info("table unloaded", "table", name)
	return e.close()
}

// count returns the number of registered tables.
func (r *registry) count() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.entries)
}

// acquire returns the entry for a table name with its inflight counter
// raised; callers must pair it with entry.release. Taking the counter
// under the read lock excludes a racing unload.
func (r *registry) acquire(name string) (*tableEntry, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	e, ok := r.entries[name]
	if ok {
		e.inflight.Add(1)
	}
	return e, ok
}

// acquireAll copies the entry list with every inflight counter raised
// (excluding concurrent unloads while the caller iterates); the caller
// must release each entry.
func (r *registry) acquireAll() []*tableEntry {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]*tableEntry, 0, len(r.entries))
	for _, e := range r.entries {
		e.inflight.Add(1)
		out = append(out, e)
	}
	return out
}

// info renders one entry's TableInfo. Coordinated entries hold no local
// data: their info is the shard topology (the source string), with row
// and column detail living on the shard daemons' own /v1/tables.
func (e *tableEntry) info() (TableInfo, error) {
	if e.coord != nil {
		return TableInfo{Name: e.name, Source: e.source, LoadedAt: e.loadedAt}, nil
	}
	eng, _, done, err := e.engineNow()
	if err != nil {
		return TableInfo{}, err
	}
	defer done()
	src := eng.Source()
	info := TableInfo{
		Name:      e.name,
		Rows:      src.NumRows(),
		Blocks:    src.NumBlocks(),
		BlockSize: src.BlockSize(),
		Source:    e.source,
		Storage:   src.Storage(),
		LoadedAt:  e.loadedAt,
	}
	if e.live != nil {
		st := e.live.Stats()
		info.Ingest = &st
	}
	for _, cn := range src.Columns() {
		col, err := src.ColumnByName(cn)
		if err != nil {
			continue
		}
		info.Columns = append(info.Columns, ColumnInfo{Name: cn, Cardinality: col.Cardinality()})
	}
	return info, nil
}

// list returns info for all registered tables, name-sorted.
func (r *registry) list() []TableInfo {
	entries := r.acquireAll()
	out := make([]TableInfo, 0, len(entries))
	for _, e := range entries {
		info, err := e.info()
		e.release()
		if err != nil {
			continue // table closed mid-listing
		}
		out = append(out, info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// health reports per-table readiness, name-sorted: a table is ready when
// it can bind an engine over its current data (for live tables, when a
// view of the current generation can be taken).
func (r *registry) health() []TableHealth {
	entries := r.acquireAll()
	out := make([]TableHealth, 0, len(entries))
	for _, e := range entries {
		th := TableHealth{Name: e.name}
		if e.coord != nil {
			// Coordinated readiness is the shard client's view: every
			// shard's most recent call succeeded. No probe traffic — a
			// health check that fans out to K daemons would turn the
			// liveness endpoint into a cluster load generator.
			th.Ready = true
			for _, sc := range e.coord.Stats() {
				if !sc.Healthy {
					th.Ready = false
					th.Error = "shard " + sc.Name + ": " + sc.LastError
					break
				}
			}
		} else if eng, _, done, err := e.engineNow(); err != nil {
			th.Error = err.Error()
		} else {
			th.Ready = true
			th.Rows = eng.Source().NumRows()
			done()
		}
		e.release()
		out = append(out, th)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// metricsSnapshot returns per-table metrics, name-keyed.
func (r *registry) metricsSnapshot() map[string]TableMetrics {
	entries := r.acquireAll()
	out := make(map[string]TableMetrics, len(entries))
	for _, e := range entries {
		m := e.metrics.snapshot()
		if e.coord != nil {
			m.Shards = e.coord.Stats()
		} else if eng, _, done, err := e.engineNow(); err == nil {
			m.Storage = eng.Source().Storage()
			done()
		}
		if e.live != nil {
			st := e.live.Stats()
			m.Ingest = &st
		}
		out[e.name] = m
		e.release()
	}
	return out
}
