package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/pprof"
	"sync/atomic"
	"time"

	"fastmatch/internal/cluster"
	"fastmatch/internal/engine"
	"fastmatch/internal/obs/trace"
)

// statusClientClosedRequest is nginx's nonstandard 499 "client closed
// request": the client disconnected (or stopped waiting) before the
// server could answer. The response body never reaches anyone; the
// status exists for access logs and metrics.
const statusClientClosedRequest = 499

// maxRequestBody bounds query/admin bodies; matching requests are small.
const maxRequestBody = 1 << 20

// routes installs the /v1 API on the server's mux.
func (s *Server) routes() {
	s.mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /v1/tables", s.handleTables)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("GET /v1/debug/traces", s.handleDebugTraces)
	s.mux.HandleFunc("GET /v1/debug/quality", s.handleDebugQuality)
	s.mux.HandleFunc("POST /v1/query", s.handleQuery)
	s.mux.HandleFunc("POST /v1/query/stream", s.handleQueryStream)
	s.mux.HandleFunc("POST /v1/explain", s.handleExplain)
	s.mux.HandleFunc("POST /v1/internal/partial", s.handleInternalPartial)
	s.mux.HandleFunc("POST /v1/tables/{name}/rows", s.handleAppend)
	if s.cfg.EnableAdmin {
		s.mux.HandleFunc("POST /v1/admin/load", s.handleAdminLoad)
		s.mux.HandleFunc("POST /v1/admin/unload", s.handleAdminUnload)
		// pprof rides behind the same trust boundary as admin loads: CPU
		// profiles and heap dumps are not for untrusted networks.
		s.mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		s.mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("POST /debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
}

// writeJSON writes v as a JSON response with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

// writeError writes an ErrorResponse.
func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, ErrorResponse{Error: fmt.Sprintf(format, args...)})
}

// HealthResponse is the body of GET /v1/healthz (also aliased at
// GET /healthz). Status is "ok" when every registered table can serve
// queries, "degraded" otherwise.
type HealthResponse struct {
	Status   string `json:"status"`
	Tables   int    `json:"tables"`
	UptimeNS int64  `json:"uptime_ns"`
	// Version/Revision/GoVersion identify the running build
	// (debug.ReadBuildInfo; Revision is the VCS commit when stamped).
	Version   string `json:"version,omitempty"`
	Revision  string `json:"revision,omitempty"`
	GoVersion string `json:"go_version,omitempty"`
	// TableStatus reports per-table readiness: whether each table can
	// currently bind an engine over its data (for live tables, whether a
	// view of the current generation can be taken).
	TableStatus []TableHealth `json:"table_status,omitempty"`
}

// TableHealth is one table's readiness in a HealthResponse.
type TableHealth struct {
	Name  string `json:"name"`
	Ready bool   `json:"ready"`
	Rows  int    `json:"rows,omitempty"`
	Error string `json:"error,omitempty"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	bi := buildInfo()
	resp := HealthResponse{
		Status:      "ok",
		UptimeNS:    int64(time.Since(s.started)),
		Version:     bi.Version,
		Revision:    bi.Revision,
		GoVersion:   bi.GoVersion,
		TableStatus: s.reg.health(),
	}
	resp.Tables = len(resp.TableStatus)
	for _, th := range resp.TableStatus {
		if !th.Ready {
			resp.Status = "degraded"
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// TablesResponse is the body of GET /v1/tables.
type TablesResponse struct {
	Tables []TableInfo `json:"tables"`
}

func (s *Server) handleTables(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, TablesResponse{Tables: s.reg.list()})
}

// StatsResponse is the body of GET /v1/stats.
type StatsResponse struct {
	UptimeNS    int64                   `json:"uptime_ns"`
	Tables      map[string]TableMetrics `json:"tables"`
	PlanCache   CacheStats              `json:"plan_cache"`
	ResultCache CacheStats              `json:"result_cache"`
	Admission   AdmissionStats          `json:"admission"`
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, StatsResponse{
		UptimeNS:    int64(time.Since(s.started)),
		Tables:      s.reg.metricsSnapshot(),
		PlanCache:   s.plans.Stats(),
		ResultCache: s.results.Stats(),
		Admission:   s.adm.stats(),
	})
}

func (s *Server) handleAdminLoad(w http.ResponseWriter, r *http.Request) {
	var spec TableSpec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, "decoding table spec: %v", err)
		return
	}
	if err := s.reg.load(spec); err != nil {
		writeError(w, http.StatusUnprocessableEntity, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, TablesResponse{Tables: s.reg.list()})
}

// wireResponse is the body of a successful POST /v1/query. The result
// payload is kept as raw JSON (the ResultPayload bytes) so cached and
// live paths emit byte-identical result bytes.
type wireResponse struct {
	Table string `json:"table"`
	// Cached reports a result-cache hit.
	Cached bool `json:"cached"`
	// DurationNS is this request's server-side wall time (for a cached
	// response, the lookup time — not the original run's).
	DurationNS int64 `json:"duration_ns"`
	// Trace is the request's span tree, present only when the request set
	// "trace": true. It precedes Result so tooling that slices the
	// response at `"result":` (the smoke script does) keeps working.
	Trace *trace.Snapshot `json:"trace,omitempty"`
	// Quality is the run's answer-quality report, present only when the
	// request set "quality": true on a sampling executor. Like Trace it is
	// a sibling of Result — never inside it — so the result bytes stay
	// byte-identical whether or not quality was requested.
	Quality *engine.QualityReport `json:"quality,omitempty"`
	// Shards reports per-shard status for coordinated tables (one entry
	// per shard daemon, in global block order); MissingShards names
	// shards that did not contribute, and Degraded marks an answer made
	// Partial by shard loss rather than a timeout or budget. All three
	// precede Result for the same `"result":`-slicing reason as Trace.
	Shards        []cluster.ShardStatus `json:"shards,omitempty"`
	MissingShards []string              `json:"missing_shards,omitempty"`
	Degraded      bool                  `json:"degraded,omitempty"`
	// Result is the deterministic result payload (ResultPayload).
	Result json.RawMessage `json:"result"`
}

// preparedQuery is the decoded, validated, cache-keyed request state the
// blocking and streaming query endpoints share. The table entry and (for
// live tables) its data view stay pinned until release runs — including
// across a canceled run, so a mid-flight scan can never lose its storage.
type preparedQuery struct {
	srv       *Server
	req       QueryRequest
	entry     *tableEntry
	eng       *engine.Engine
	q         engine.Query
	opts      engine.Options
	target    engine.Target
	planKey   string
	resultKey string
	began     time.Time
	release   func()
	// id is the generated query ID (echoed as X-Query-ID and stamped on
	// the trace); tr is the request's span tree, recorded for every
	// request — it feeds the slow-query log and the slowest-traces ring
	// whether or not the client asked for the trace back.
	id string
	tr *trace.Trace
	// audit marks the request as sampled for a shadow audit (decided at
	// prepare time so the run collects quality telemetry); holds counts
	// the users of release — the handler plus any in-flight audit — so
	// the pinned table view outlives the response when an audit is
	// still re-executing the plan.
	audit bool
	holds atomic.Int32
	// Coordinated tables (entry.coord != nil): shards is the
	// request-bound shard set (each memoizing its meta), and coordOK
	// reports that every shard's meta resolved at prepare time — the
	// precondition for using the result cache. eng and q stay zero.
	shards  []cluster.Shard
	coordOK bool
}

// retain adds a hold on the prepared query's pinned resources; done
// drops one and runs release when the last holder is gone. The handler
// holds one from prepareQuery; the audit goroutine retains another.
func (pq *preparedQuery) retain() { pq.holds.Add(1) }
func (pq *preparedQuery) done() {
	if pq.holds.Add(-1) == 0 {
		pq.release()
	}
}

// fail records a failed request (metrics, trace, request log) and writes
// the error response.
func (pq *preparedQuery) fail(w http.ResponseWriter, status int, format string, args ...any) {
	msg := fmt.Sprintf(format, args...)
	pq.srv.finishRequest(pq, outcomeFailed, nil, false, false, status, msg)
	writeJSON(w, status, ErrorResponse{Error: msg})
}

// prepareQuery decodes and validates a query request, pins the table
// entry and its current view, and derives the plan/result cache keys. On
// failure it writes the error response (and accounts it) and returns
// nil; on success the caller must call release when done.
func (s *Server) prepareQuery(w http.ResponseWriter, r *http.Request) *preparedQuery {
	id := newQueryID()
	pq := &preparedQuery{srv: s, id: id, tr: trace.New(id), began: time.Now()}
	w.Header().Set("X-Query-ID", id)
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBody))
	dec.DisallowUnknownFields()
	dsp := pq.tr.Start("decode")
	err := dec.Decode(&pq.req)
	dsp.End()
	if err != nil {
		pq.fail(w, http.StatusBadRequest, "decoding query request: %v", err)
		return nil
	}
	entry, ok := s.reg.acquire(pq.req.Table)
	if !ok {
		pq.fail(w, http.StatusNotFound, "no table %q (see /v1/tables)", pq.req.Table)
		return nil
	}
	pq.entry = entry
	if entry.coord != nil {
		return s.prepareCoordinated(w, r, pq, entry)
	}

	// For live (ingest-backed) tables this binds the request to the
	// table's current generation: the view stays pinned for the whole
	// request, and the caches below are keyed by (incarnation,
	// generation) so answers computed over older data are never reused.
	eng, gen, releaseView, err := entry.engineNow()
	if err != nil {
		pq.fail(w, http.StatusServiceUnavailable, "table %q unavailable: %v", pq.req.Table, err)
		entry.release()
		return nil
	}
	pq.eng = eng
	pq.release = func() {
		releaseView()
		entry.release()
	}
	pq.holds.Store(1)
	bail := func(status int, format string, args ...any) *preparedQuery {
		pq.fail(w, status, format, args...)
		pq.release()
		return nil
	}

	if pq.q, err = pq.req.Query.toQuery(eng); err != nil {
		return bail(http.StatusUnprocessableEntity, "invalid query: %v", err)
	}
	pq.opts = engine.DefaultOptions(eng.Source().NumRows())
	if err := pq.req.Options.apply(&pq.opts); err != nil {
		return bail(http.StatusUnprocessableEntity, "invalid options: %v", err)
	}
	if err := pq.opts.Validate(); err != nil {
		return bail(http.StatusUnprocessableEntity, "%v", err)
	}
	pq.target = pq.req.Target.toTarget()

	// Wire queries never carry closures, so the fingerprint always exists.
	qfp, err := pq.q.Fingerprint()
	if err != nil {
		return bail(http.StatusUnprocessableEntity, "invalid query: %v", err)
	}
	pq.planKey = fmt.Sprintf("%s\x00%d\x00%d\x00%s", pq.req.Table, entry.incarnation, gen, qfp)
	pq.resultKey = pq.planKey + "\x00" + pq.target.Fingerprint() + "\x00" + pq.opts.Fingerprint()
	// Every request runs traced: the engine's span tree feeds the
	// slow-query log and the debug ring even when the client never asked
	// for it (Trace is excluded from the fingerprint, so this does not
	// fragment the result cache).
	pq.opts.Trace = pq.tr
	// Shadow-audit sampling is decided up front so the run also collects
	// quality telemetry for the debug ring. Quality, like Trace, is
	// excluded from the fingerprint: collection never changes the result
	// bytes, so audited and unaudited runs share cache entries.
	if isSamplingExecutor(pq.opts.Executor) {
		pq.audit = s.auditSelected(entry)
		pq.opts.Quality = pq.req.Quality || pq.audit
	}
	return pq
}

// runContext derives the request's run context from the client
// connection and the table's query timeout. timedOut distinguishes the
// server-imposed deadline from a client disconnect after the fact.
func (s *Server) runContext(r *http.Request, pq *preparedQuery) (ctx context.Context, cancel context.CancelFunc, timedOut func() bool) {
	ctx = r.Context()
	if to := s.timeoutFor(pq.entry); to > 0 {
		ctx, cancel = context.WithTimeout(ctx, to)
	} else {
		cancel = func() {}
	}
	return ctx, cancel, func() bool { return errors.Is(ctx.Err(), context.DeadlineExceeded) }
}

// admit claims an admission slot for pq under ctx, writing the rejection
// response when it fails. The caller must release on true.
func (s *Server) admit(ctx context.Context, w http.ResponseWriter, pq *preparedQuery) bool {
	asp := pq.tr.Start("admission")
	verdict := s.adm.acquire(ctx)
	asp.End()
	switch verdict {
	case admitOK:
		return true
	case admitCanceled:
		// The request context ended while queued; no slot was ever
		// claimed. Distinguish the server-imposed query timeout (the
		// client is still connected and deserves timeout semantics)
		// from a client that hung up.
		if errors.Is(ctx.Err(), context.DeadlineExceeded) {
			s.finishRequest(pq, outcomeTimedOut, nil, false, false, http.StatusGatewayTimeout, "queued past deadline")
			writeError(w, http.StatusGatewayTimeout, "query timed out while queued for admission")
		} else {
			s.finishRequest(pq, outcomeCanceled, nil, false, false, statusClientClosedRequest, "client closed request while queued")
			writeError(w, statusClientClosedRequest, "client closed request while queued for admission")
		}
	default: // admitTimeout
		w.Header().Set("Retry-After", "1")
		pq.fail(w, http.StatusServiceUnavailable, "server at capacity (%d runs in flight)", s.cfg.MaxConcurrent)
	}
	return false
}

// planFor returns the (possibly cached) plan for pq. A cache miss plans
// under the request's trace, so plan-building cost shows up in the span
// tree where it is paid.
func (s *Server) planFor(pq *preparedQuery) (*engine.Plan, bool, error) {
	psp := pq.tr.Start("plan_cache")
	plan, planHit := s.plans.Get(pq.planKey)
	psp.SetAttr("hit", planHit)
	psp.End()
	if !planHit {
		var err error
		if plan, err = pq.eng.PrepareTraced(pq.q, pq.tr); err != nil {
			return nil, false, err
		}
		s.plans.Put(pq.planKey, plan)
	}
	return plan, planHit, nil
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	pq := s.prepareQuery(w, r)
	if pq == nil {
		return
	}
	defer pq.done()
	if pq.entry.coord != nil {
		s.handleCoordinatedQuery(w, r, pq)
		return
	}

	// Result cache: seeded runs are deterministic (the async FastMatch
	// executor aside, where a cached answer is still one valid (ε, δ)
	// answer), so a fingerprint hit can skip the engine entirely. Traced
	// and quality-carrying requests skip the read — Trace and Quality are
	// excluded from the fingerprint, so a hit would hand back a payload
	// with no span tree or quality report behind it — but still publish
	// their payload below for plain requests to reuse.
	if !pq.req.Trace && !pq.req.Quality {
		csp := pq.tr.Start("result_cache")
		payload, ok := s.results.Get(pq.resultKey)
		csp.SetAttr("hit", ok)
		csp.End()
		if ok {
			s.finishRequest(pq, outcomeOK, nil, false, true, http.StatusOK, "")
			writeJSON(w, http.StatusOK, wireResponse{
				Table:      pq.req.Table,
				Cached:     true,
				DurationNS: int64(time.Since(pq.began)),
				Result:     json.RawMessage(payload),
			})
			return
		}
	}

	ctx, cancel, timedOut := s.runContext(r, pq)
	defer cancel()

	// Admission: bound concurrent engine runs.
	if !s.admit(ctx, w, pq) {
		return
	}
	defer s.adm.release()
	if s.testHookRunning != nil {
		s.testHookRunning()
	}

	// Plan cache: equal query fingerprints share a resolved Plan.
	plan, planHit, err := s.planFor(pq)
	if err != nil {
		pq.fail(w, http.StatusUnprocessableEntity, "planning query: %v", err)
		return
	}

	res, err := plan.RunContext(ctx, pq.target, pq.opts)
	if err != nil && !(res != nil && res.Partial) {
		var ioe *engine.InvalidOptionsError
		switch {
		case errors.As(err, &ioe):
			pq.fail(w, http.StatusUnprocessableEntity, "%v", err)
		case errors.Is(err, context.Canceled):
			// Client gone before any salvageable work: the status is for
			// the access log, nobody reads the body.
			s.finishRequest(pq, outcomeCanceled, nil, false, false, statusClientClosedRequest, "client closed request")
			writeError(w, statusClientClosedRequest, "client closed request")
		case errors.Is(err, context.DeadlineExceeded):
			s.finishRequest(pq, outcomeTimedOut, nil, false, false, http.StatusGatewayTimeout, "query timed out")
			writeError(w, http.StatusGatewayTimeout, "query timed out before any result was available")
		default:
			// Target resolution and run errors are request-shaped too
			// (unknown candidate, group-count mismatch, …).
			pq.fail(w, http.StatusUnprocessableEntity, "running query: %v", err)
		}
		return
	}

	if err != nil && errors.Is(err, context.Canceled) && !timedOut() {
		// A partial result exists but its client is gone; record the
		// cancellation (the write below will fail on the dead
		// connection, which is fine).
		s.finishRequest(pq, outcomeCanceled, res, planHit, false, statusClientClosedRequest, "client closed request")
		writeError(w, statusClientClosedRequest, "client closed request")
		return
	}

	payload, merr := json.Marshal(toPayload(res))
	if merr != nil {
		pq.fail(w, http.StatusInternalServerError, "encoding result: %v", merr)
		return
	}
	oc := outcomeOK
	if res.Partial {
		// Progressive contract: a timed-out or budget-capped run still
		// answers with its best effort, flagged Partial — and is never
		// cached (it is not the query's answer, just a prefix of it).
		if timedOut() {
			oc = outcomeTimedOut
		}
	} else {
		s.results.Put(pq.resultKey, payload)
	}
	snap := s.finishRequest(pq, oc, res, planHit, false, http.StatusOK, "")
	s.recordQuality(pq, plan, res)
	resp := wireResponse{
		Table:      pq.req.Table,
		Cached:     false,
		DurationNS: int64(time.Since(pq.began)),
		Result:     json.RawMessage(payload),
	}
	if pq.req.Trace {
		resp.Trace = &snap
	}
	if pq.req.Quality {
		resp.Quality = res.Quality
	}
	writeJSON(w, http.StatusOK, resp)
}
