package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"fastmatch/internal/engine"
)

// statusClientClosedRequest is nginx's nonstandard 499 "client closed
// request": the client disconnected (or stopped waiting) before the
// server could answer. The response body never reaches anyone; the
// status exists for access logs and metrics.
const statusClientClosedRequest = 499

// maxRequestBody bounds query/admin bodies; matching requests are small.
const maxRequestBody = 1 << 20

// routes installs the /v1 API on the server's mux.
func (s *Server) routes() {
	s.mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /v1/tables", s.handleTables)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("POST /v1/query", s.handleQuery)
	s.mux.HandleFunc("POST /v1/query/stream", s.handleQueryStream)
	s.mux.HandleFunc("POST /v1/tables/{name}/rows", s.handleAppend)
	if s.cfg.EnableAdmin {
		s.mux.HandleFunc("POST /v1/admin/load", s.handleAdminLoad)
		s.mux.HandleFunc("POST /v1/admin/unload", s.handleAdminUnload)
	}
}

// writeJSON writes v as a JSON response with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

// writeError writes an ErrorResponse.
func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, ErrorResponse{Error: fmt.Sprintf(format, args...)})
}

// HealthResponse is the body of GET /v1/healthz.
type HealthResponse struct {
	Status   string `json:"status"`
	Tables   int    `json:"tables"`
	UptimeNS int64  `json:"uptime_ns"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, HealthResponse{
		Status:   "ok",
		Tables:   s.reg.count(),
		UptimeNS: int64(time.Since(s.started)),
	})
}

// TablesResponse is the body of GET /v1/tables.
type TablesResponse struct {
	Tables []TableInfo `json:"tables"`
}

func (s *Server) handleTables(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, TablesResponse{Tables: s.reg.list()})
}

// StatsResponse is the body of GET /v1/stats.
type StatsResponse struct {
	UptimeNS    int64                   `json:"uptime_ns"`
	Tables      map[string]TableMetrics `json:"tables"`
	PlanCache   CacheStats              `json:"plan_cache"`
	ResultCache CacheStats              `json:"result_cache"`
	Admission   AdmissionStats          `json:"admission"`
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, StatsResponse{
		UptimeNS:    int64(time.Since(s.started)),
		Tables:      s.reg.metricsSnapshot(),
		PlanCache:   s.plans.Stats(),
		ResultCache: s.results.Stats(),
		Admission:   s.adm.stats(),
	})
}

func (s *Server) handleAdminLoad(w http.ResponseWriter, r *http.Request) {
	var spec TableSpec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, "decoding table spec: %v", err)
		return
	}
	if err := s.reg.load(spec); err != nil {
		writeError(w, http.StatusUnprocessableEntity, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, TablesResponse{Tables: s.reg.list()})
}

// wireResponse is the body of a successful POST /v1/query. The result
// payload is kept as raw JSON (the ResultPayload bytes) so cached and
// live paths emit byte-identical result bytes.
type wireResponse struct {
	Table string `json:"table"`
	// Cached reports a result-cache hit.
	Cached bool `json:"cached"`
	// DurationNS is this request's server-side wall time (for a cached
	// response, the lookup time — not the original run's).
	DurationNS int64 `json:"duration_ns"`
	// Result is the deterministic result payload (ResultPayload).
	Result json.RawMessage `json:"result"`
}

// preparedQuery is the decoded, validated, cache-keyed request state the
// blocking and streaming query endpoints share. The table entry and (for
// live tables) its data view stay pinned until release runs — including
// across a canceled run, so a mid-flight scan can never lose its storage.
type preparedQuery struct {
	req       QueryRequest
	entry     *tableEntry
	eng       *engine.Engine
	q         engine.Query
	opts      engine.Options
	target    engine.Target
	planKey   string
	resultKey string
	began     time.Time
	release   func()
}

// fail records a failed request and writes the error response.
func (pq *preparedQuery) fail(w http.ResponseWriter, status int, format string, args ...any) {
	pq.entry.metrics.observe(time.Since(pq.began), nil, outcomeFailed, false, false)
	writeError(w, status, format, args...)
}

// prepareQuery decodes and validates a query request, pins the table
// entry and its current view, and derives the plan/result cache keys. On
// failure it writes the error response (and accounts it) and returns
// nil; on success the caller must call release when done.
func (s *Server) prepareQuery(w http.ResponseWriter, r *http.Request) *preparedQuery {
	pq := &preparedQuery{began: time.Now()}
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&pq.req); err != nil {
		writeError(w, http.StatusBadRequest, "decoding query request: %v", err)
		return nil
	}
	entry, ok := s.reg.acquire(pq.req.Table)
	if !ok {
		writeError(w, http.StatusNotFound, "no table %q (see /v1/tables)", pq.req.Table)
		return nil
	}
	pq.entry = entry

	// For live (ingest-backed) tables this binds the request to the
	// table's current generation: the view stays pinned for the whole
	// request, and the caches below are keyed by (incarnation,
	// generation) so answers computed over older data are never reused.
	eng, gen, releaseView, err := entry.engineNow()
	if err != nil {
		pq.fail(w, http.StatusServiceUnavailable, "table %q unavailable: %v", pq.req.Table, err)
		entry.release()
		return nil
	}
	pq.eng = eng
	pq.release = func() {
		releaseView()
		entry.release()
	}
	bail := func(status int, format string, args ...any) *preparedQuery {
		pq.fail(w, status, format, args...)
		pq.release()
		return nil
	}

	if pq.q, err = pq.req.Query.toQuery(eng); err != nil {
		return bail(http.StatusUnprocessableEntity, "invalid query: %v", err)
	}
	pq.opts = engine.DefaultOptions(eng.Source().NumRows())
	if err := pq.req.Options.apply(&pq.opts); err != nil {
		return bail(http.StatusUnprocessableEntity, "invalid options: %v", err)
	}
	if err := pq.opts.Validate(); err != nil {
		return bail(http.StatusUnprocessableEntity, "%v", err)
	}
	pq.target = pq.req.Target.toTarget()

	// Wire queries never carry closures, so the fingerprint always exists.
	qfp, err := pq.q.Fingerprint()
	if err != nil {
		return bail(http.StatusUnprocessableEntity, "invalid query: %v", err)
	}
	pq.planKey = fmt.Sprintf("%s\x00%d\x00%d\x00%s", pq.req.Table, entry.incarnation, gen, qfp)
	pq.resultKey = pq.planKey + "\x00" + pq.target.Fingerprint() + "\x00" + pq.opts.Fingerprint()
	return pq
}

// runContext derives the request's run context from the client
// connection and the table's query timeout. timedOut distinguishes the
// server-imposed deadline from a client disconnect after the fact.
func (s *Server) runContext(r *http.Request, pq *preparedQuery) (ctx context.Context, cancel context.CancelFunc, timedOut func() bool) {
	ctx = r.Context()
	if to := s.timeoutFor(pq.entry); to > 0 {
		ctx, cancel = context.WithTimeout(ctx, to)
	} else {
		cancel = func() {}
	}
	return ctx, cancel, func() bool { return errors.Is(ctx.Err(), context.DeadlineExceeded) }
}

// admit claims an admission slot for pq under ctx, writing the rejection
// response when it fails. The caller must release on true.
func (s *Server) admit(ctx context.Context, w http.ResponseWriter, pq *preparedQuery) bool {
	switch s.adm.acquire(ctx) {
	case admitOK:
		return true
	case admitCanceled:
		// The request context ended while queued; no slot was ever
		// claimed. Distinguish the server-imposed query timeout (the
		// client is still connected and deserves timeout semantics)
		// from a client that hung up.
		if errors.Is(ctx.Err(), context.DeadlineExceeded) {
			pq.entry.metrics.observe(time.Since(pq.began), nil, outcomeTimedOut, false, false)
			writeError(w, http.StatusGatewayTimeout, "query timed out while queued for admission")
		} else {
			pq.entry.metrics.observe(time.Since(pq.began), nil, outcomeCanceled, false, false)
			writeError(w, statusClientClosedRequest, "client closed request while queued for admission")
		}
	default: // admitTimeout
		w.Header().Set("Retry-After", "1")
		pq.fail(w, http.StatusServiceUnavailable, "server at capacity (%d runs in flight)", s.cfg.MaxConcurrent)
	}
	return false
}

// planFor returns the (possibly cached) plan for pq.
func (s *Server) planFor(pq *preparedQuery) (*engine.Plan, bool, error) {
	plan, planHit := s.plans.Get(pq.planKey)
	if !planHit {
		var err error
		if plan, err = pq.eng.Prepare(pq.q); err != nil {
			return nil, false, err
		}
		s.plans.Put(pq.planKey, plan)
	}
	return plan, planHit, nil
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	pq := s.prepareQuery(w, r)
	if pq == nil {
		return
	}
	defer pq.release()

	// Result cache: seeded runs are deterministic (the async FastMatch
	// executor aside, where a cached answer is still one valid (ε, δ)
	// answer), so a fingerprint hit can skip the engine entirely.
	if payload, ok := s.results.Get(pq.resultKey); ok {
		pq.entry.metrics.observe(time.Since(pq.began), nil, outcomeOK, false, true)
		writeJSON(w, http.StatusOK, wireResponse{
			Table:      pq.req.Table,
			Cached:     true,
			DurationNS: int64(time.Since(pq.began)),
			Result:     json.RawMessage(payload),
		})
		return
	}

	ctx, cancel, timedOut := s.runContext(r, pq)
	defer cancel()

	// Admission: bound concurrent engine runs.
	if !s.admit(ctx, w, pq) {
		return
	}
	defer s.adm.release()
	if s.testHookRunning != nil {
		s.testHookRunning()
	}

	// Plan cache: equal query fingerprints share a resolved Plan.
	plan, planHit, err := s.planFor(pq)
	if err != nil {
		pq.fail(w, http.StatusUnprocessableEntity, "planning query: %v", err)
		return
	}

	res, err := plan.RunContext(ctx, pq.target, pq.opts)
	if err != nil && !(res != nil && res.Partial) {
		var ioe *engine.InvalidOptionsError
		switch {
		case errors.As(err, &ioe):
			pq.fail(w, http.StatusUnprocessableEntity, "%v", err)
		case errors.Is(err, context.Canceled):
			// Client gone before any salvageable work: the status is for
			// the access log, nobody reads the body.
			pq.entry.metrics.observe(time.Since(pq.began), nil, outcomeCanceled, false, false)
			writeError(w, statusClientClosedRequest, "client closed request")
		case errors.Is(err, context.DeadlineExceeded):
			pq.entry.metrics.observe(time.Since(pq.began), nil, outcomeTimedOut, false, false)
			writeError(w, http.StatusGatewayTimeout, "query timed out before any result was available")
		default:
			// Target resolution and run errors are request-shaped too
			// (unknown candidate, group-count mismatch, …).
			pq.fail(w, http.StatusUnprocessableEntity, "running query: %v", err)
		}
		return
	}

	if err != nil && errors.Is(err, context.Canceled) && !timedOut() {
		// A partial result exists but its client is gone; record the
		// cancellation (the write below will fail on the dead
		// connection, which is fine).
		pq.entry.metrics.observe(time.Since(pq.began), res, outcomeCanceled, planHit, false)
		writeError(w, statusClientClosedRequest, "client closed request")
		return
	}

	payload, merr := json.Marshal(toPayload(res))
	if merr != nil {
		pq.fail(w, http.StatusInternalServerError, "encoding result: %v", merr)
		return
	}
	oc := outcomeOK
	if res.Partial {
		// Progressive contract: a timed-out or budget-capped run still
		// answers with its best effort, flagged Partial — and is never
		// cached (it is not the query's answer, just a prefix of it).
		if timedOut() {
			oc = outcomeTimedOut
		}
	} else {
		s.results.Put(pq.resultKey, payload)
	}
	pq.entry.metrics.observe(time.Since(pq.began), res, oc, planHit, false)
	writeJSON(w, http.StatusOK, wireResponse{
		Table:      pq.req.Table,
		Cached:     false,
		DurationNS: int64(time.Since(pq.began)),
		Result:     json.RawMessage(payload),
	})
}
