package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"fastmatch/internal/engine"
)

// maxRequestBody bounds query/admin bodies; matching requests are small.
const maxRequestBody = 1 << 20

// routes installs the /v1 API on the server's mux.
func (s *Server) routes() {
	s.mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /v1/tables", s.handleTables)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("POST /v1/query", s.handleQuery)
	s.mux.HandleFunc("POST /v1/tables/{name}/rows", s.handleAppend)
	if s.cfg.EnableAdmin {
		s.mux.HandleFunc("POST /v1/admin/load", s.handleAdminLoad)
		s.mux.HandleFunc("POST /v1/admin/unload", s.handleAdminUnload)
	}
}

// writeJSON writes v as a JSON response with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

// writeError writes an ErrorResponse.
func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, ErrorResponse{Error: fmt.Sprintf(format, args...)})
}

// HealthResponse is the body of GET /v1/healthz.
type HealthResponse struct {
	Status   string `json:"status"`
	Tables   int    `json:"tables"`
	UptimeNS int64  `json:"uptime_ns"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, HealthResponse{
		Status:   "ok",
		Tables:   s.reg.count(),
		UptimeNS: int64(time.Since(s.started)),
	})
}

// TablesResponse is the body of GET /v1/tables.
type TablesResponse struct {
	Tables []TableInfo `json:"tables"`
}

func (s *Server) handleTables(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, TablesResponse{Tables: s.reg.list()})
}

// StatsResponse is the body of GET /v1/stats.
type StatsResponse struct {
	UptimeNS    int64                   `json:"uptime_ns"`
	Tables      map[string]TableMetrics `json:"tables"`
	PlanCache   CacheStats              `json:"plan_cache"`
	ResultCache CacheStats              `json:"result_cache"`
	Admission   AdmissionStats          `json:"admission"`
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, StatsResponse{
		UptimeNS:    int64(time.Since(s.started)),
		Tables:      s.reg.metricsSnapshot(),
		PlanCache:   s.plans.Stats(),
		ResultCache: s.results.Stats(),
		Admission:   s.adm.stats(),
	})
}

func (s *Server) handleAdminLoad(w http.ResponseWriter, r *http.Request) {
	var spec TableSpec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, "decoding table spec: %v", err)
		return
	}
	if err := s.reg.load(spec); err != nil {
		writeError(w, http.StatusUnprocessableEntity, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, TablesResponse{Tables: s.reg.list()})
}

// wireResponse is the body of a successful POST /v1/query. The result
// payload is kept as raw JSON (the ResultPayload bytes) so cached and
// live paths emit byte-identical result bytes.
type wireResponse struct {
	Table string `json:"table"`
	// Cached reports a result-cache hit.
	Cached bool `json:"cached"`
	// DurationNS is this request's server-side wall time (for a cached
	// response, the lookup time — not the original run's).
	DurationNS int64 `json:"duration_ns"`
	// Result is the deterministic result payload (ResultPayload).
	Result json.RawMessage `json:"result"`
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	began := time.Now()
	var req QueryRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "decoding query request: %v", err)
		return
	}
	entry, ok := s.reg.acquire(req.Table)
	if !ok {
		writeError(w, http.StatusNotFound, "no table %q (see /v1/tables)", req.Table)
		return
	}
	defer entry.release()
	fail := func(status int, format string, args ...any) {
		entry.metrics.observe(time.Since(began), nil, true, false, false)
		writeError(w, status, format, args...)
	}

	// For live (ingest-backed) tables this binds the request to the
	// table's current generation: the view stays pinned for the whole
	// request, and the caches below are keyed by (incarnation,
	// generation) so answers computed over older data are never reused.
	eng, gen, releaseView, err := entry.engineNow()
	if err != nil {
		fail(http.StatusServiceUnavailable, "table %q unavailable: %v", req.Table, err)
		return
	}
	defer releaseView()

	q, err := req.Query.toQuery()
	if err != nil {
		fail(http.StatusUnprocessableEntity, "invalid query: %v", err)
		return
	}
	opts := engine.DefaultOptions(eng.Source().NumRows())
	if err := req.Options.apply(&opts); err != nil {
		fail(http.StatusUnprocessableEntity, "invalid options: %v", err)
		return
	}
	if err := opts.Validate(); err != nil {
		fail(http.StatusUnprocessableEntity, "%v", err)
		return
	}
	target := req.Target.toTarget()

	// Wire queries never carry closures, so the fingerprint always exists.
	qfp, err := q.Fingerprint()
	if err != nil {
		fail(http.StatusUnprocessableEntity, "invalid query: %v", err)
		return
	}
	planKey := fmt.Sprintf("%s\x00%d\x00%d\x00%s", req.Table, entry.incarnation, gen, qfp)
	resultKey := planKey + "\x00" + target.Fingerprint() + "\x00" + opts.Fingerprint()

	// Result cache: seeded runs are deterministic (the async FastMatch
	// executor aside, where a cached answer is still one valid (ε, δ)
	// answer), so a fingerprint hit can skip the engine entirely.
	if payload, ok := s.results.Get(resultKey); ok {
		entry.metrics.observe(time.Since(began), nil, false, false, true)
		writeJSON(w, http.StatusOK, wireResponse{
			Table:      req.Table,
			Cached:     true,
			DurationNS: int64(time.Since(began)),
			Result:     json.RawMessage(payload),
		})
		return
	}

	// Admission: bound concurrent engine runs.
	if !s.adm.acquire(r.Context()) {
		w.Header().Set("Retry-After", "1")
		fail(http.StatusServiceUnavailable, "server at capacity (%d runs in flight)", s.cfg.MaxConcurrent)
		return
	}
	defer s.adm.release()
	if s.testHookRunning != nil {
		s.testHookRunning()
	}

	// Plan cache: equal query fingerprints share a resolved Plan.
	plan, planHit := s.plans.Get(planKey)
	if !planHit {
		plan, err = eng.Prepare(q)
		if err != nil {
			fail(http.StatusUnprocessableEntity, "planning query: %v", err)
			return
		}
		s.plans.Put(planKey, plan)
	}

	res, err := plan.Run(target, opts)
	if err != nil {
		var ioe *engine.InvalidOptionsError
		switch {
		case errors.As(err, &ioe):
			fail(http.StatusUnprocessableEntity, "%v", err)
		default:
			// Target resolution and run errors are request-shaped too
			// (unknown candidate, group-count mismatch, …).
			fail(http.StatusUnprocessableEntity, "running query: %v", err)
		}
		return
	}

	payload, err := json.Marshal(toPayload(res))
	if err != nil {
		fail(http.StatusInternalServerError, "encoding result: %v", err)
		return
	}
	s.results.Put(resultKey, payload)
	entry.metrics.observe(time.Since(began), res, false, planHit, false)
	writeJSON(w, http.StatusOK, wireResponse{
		Table:      req.Table,
		Cached:     false,
		DurationNS: int64(time.Since(began)),
		Result:     json.RawMessage(payload),
	})
}
