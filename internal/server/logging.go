package server

import (
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"time"

	"fastmatch/internal/engine"
	"fastmatch/internal/obs/trace"
)

// newQueryID returns a fresh 16-hex-char request identifier. Crypto
// randomness is overkill for log correlation, but it needs no seeding or
// locking and can never repeat across restarts.
func newQueryID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// The system entropy pool failing is effectively fatal elsewhere;
		// here a constant ID only degrades log correlation.
		return "0000000000000000"
	}
	return hex.EncodeToString(b[:])
}

// finishRequest is the single exit point every query request (blocking or
// streaming, success or failure) funnels through: it stamps the trace's
// end, records per-table metrics, feeds the slowest-traces ring, writes
// the per-request log line, and — past the slow-query threshold — logs
// the full span tree. res is nil for cache hits and never-ran requests;
// status is the HTTP status the response carried. Returns the finished
// trace's snapshot so the caller can attach it to the response.
func (s *Server) finishRequest(pq *preparedQuery, oc runOutcome, res *engine.Result, planHit, resultHit bool, status int, errMsg string) trace.Snapshot {
	d := time.Since(pq.began)
	pq.tr.End()
	if pq.entry != nil {
		pq.entry.metrics.observe(d, res, oc, planHit, resultHit)
	}
	snap := pq.tr.Snapshot()
	s.traces.record(snap)
	attrs := []any{
		"query_id", pq.id,
		"table", pq.req.Table,
		"outcome", oc.String(),
		"status", status,
		"duration_ms", float64(d) / float64(time.Millisecond),
		"cached", resultHit,
	}
	if errMsg != "" {
		attrs = append(attrs, "error", errMsg)
	}
	if res != nil {
		attrs = append(attrs,
			"blocks_read", res.IO.BlocksRead,
			"tuples_read", res.IO.TuplesRead,
			"partial", res.Partial,
		)
	}
	if oc == outcomeOK && errMsg == "" {
		s.log.Info("query", attrs...)
	} else {
		s.log.Warn("query", attrs...)
	}
	if s.cfg.SlowQuery > 0 && d >= s.cfg.SlowQuery {
		// The span tree is marshaled compactly into one attribute so a
		// single log line carries the whole offender profile.
		tree, err := json.Marshal(snap)
		if err != nil {
			tree = []byte("{}")
		}
		s.log.Warn("slow query",
			"query_id", pq.id,
			"table", pq.req.Table,
			"duration_ms", float64(d)/float64(time.Millisecond),
			"threshold_ms", float64(s.cfg.SlowQuery)/float64(time.Millisecond),
			"trace", json.RawMessage(tree),
		)
	}
	return snap
}
