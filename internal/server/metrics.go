package server

import (
	"sort"
	"sync"
	"time"

	"fastmatch/internal/cluster"
	"fastmatch/internal/colstore"
	"fastmatch/internal/engine"
	"fastmatch/internal/ingest"
	"fastmatch/internal/obs/metrics"
)

// latencyWindow is how many recent request latencies each table keeps for
// quantile estimation. A fixed ring keeps the memory bound and weights the
// quantiles toward current behavior, which is what an operator watching
// /v1/stats wants.
const latencyWindow = 1024

// tableMetrics accumulates per-table serving statistics. One instance per
// registry entry; all methods are safe for concurrent use.
type tableMetrics struct {
	mu        sync.Mutex
	requests  int64
	errors    int64
	canceled  int64
	timedOut  int64
	partials  int64
	planHits  int64
	planMiss  int64
	resHits   int64
	resMiss   int64
	io        engine.IOStats
	samples   int64
	samplesS1 int64
	samplesS2 int64
	samplesS3 int64
	rounds    int64
	// Sampler fan-out counters: sampling runs executed, the subset that
	// ran with more than one worker, chunks committed, and per-worker
	// block/tuple reads (index = worker id; grown to the widest run
	// seen). Worker-count dependent by nature, so they live here as
	// operator telemetry rather than in any cached/serialized result.
	samplerRuns     int64
	samplerParallel int64
	samplerChunks   int64
	samplerWBlocks  []int64
	samplerWTuples  []int64
	appendReqs      int64
	appendRows      int64
	appendErrs      int64
	// Answer-quality telemetry: runs that carried a quality report, the
	// subset cut short (truncated termination), the last completed run's
	// final observed margin, and the stage-2 round distribution.
	qualityRuns      int64
	qualityTruncated int64
	qualityMargin    float64
	qualityRounds    *metrics.Histogram
	// Shadow-audit outcomes: audits executed, audits that failed (or were
	// skipped at capacity), ε-tolerant guarantee violations found, and
	// the ground-truth precision@k distribution.
	auditRuns       int64
	auditErrs       int64
	auditViolations int64
	auditPrecision  *metrics.Histogram
	latencies       [latencyWindow]time.Duration
	latCount        int // total observations (ring index = latCount % window)
	// latHist is the bucketed latency distribution behind the
	// fastmatch_request_duration_seconds series on /metrics; the
	// quantile ring above stays for /v1/stats.
	latHist *metrics.Histogram
}

// roundsBuckets bounds the fastmatch_quality_rounds histogram: most runs
// converge within a handful of stage-2 rounds, with a long tail worth
// seeing separately.
var roundsBuckets = []float64{0, 1, 2, 3, 4, 6, 8, 12, 16, 24}

// precisionBuckets bounds the fastmatch_audit_precision_at_k histogram
// over [0, 1]; the upper buckets are dense because the (ε, δ) guarantee
// makes anything below 1 the interesting region.
var precisionBuckets = []float64{0, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1}

func newTableMetrics() *tableMetrics {
	return &tableMetrics{
		latHist:        metrics.NewHistogram(metrics.DefaultLatencyBuckets),
		qualityRounds:  metrics.NewHistogram(roundsBuckets),
		auditPrecision: metrics.NewHistogram(precisionBuckets),
	}
}

// runOutcome classifies how a query request ended, for the per-table
// counters an operator reads off /v1/stats.
type runOutcome int

const (
	// outcomeOK answered the query (possibly from cache, possibly with a
	// best-effort partial result — see the partial flag).
	outcomeOK runOutcome = iota
	// outcomeFailed is a processing error (bad request, planning or run
	// failure): a 4xx/5xx response.
	outcomeFailed
	// outcomeCanceled is a client that went away — while queued for
	// admission or mid-run — before an answer could be delivered.
	outcomeCanceled
	// outcomeTimedOut hit the per-table/request query timeout.
	outcomeTimedOut
)

// String names the outcome for logs and the /metrics outcome label.
func (oc runOutcome) String() string {
	switch oc {
	case outcomeOK:
		return "ok"
	case outcomeFailed:
		return "failed"
	case outcomeCanceled:
		return "canceled"
	case outcomeTimedOut:
		return "timed_out"
	default:
		return "unknown"
	}
}

// observeAppend records one append request against the table.
func (m *tableMetrics) observeAppend(rows int, failed bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.appendReqs++
	m.appendRows += int64(rows)
	if failed {
		m.appendErrs++
	}
}

// observe records one completed query request. res is nil for cache hits
// and for requests that never ran; a non-nil res contributes its I/O and
// sample counters even when the run was cut short (a canceled run's
// partial work is still work the table did).
func (m *tableMetrics) observe(d time.Duration, res *engine.Result, oc runOutcome, planHit, resultHit bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.requests++
	switch oc {
	case outcomeFailed:
		m.errors++
	case outcomeCanceled:
		m.canceled++
	case outcomeTimedOut:
		m.timedOut++
	case outcomeOK:
		if resultHit {
			m.resHits++
		} else {
			m.resMiss++
			if planHit {
				m.planHits++
			} else {
				m.planMiss++
			}
		}
	}
	if res != nil {
		if res.Partial {
			m.partials++
		}
		if q := res.Quality; q != nil {
			m.qualityRuns++
			m.qualityMargin = q.FinalGap
			m.qualityRounds.Observe(float64(q.Rounds))
			if q.Truncated {
				m.qualityTruncated++
			}
		}
		m.io.Add(res.IO)
		m.samples += res.Stats.TotalSamples()
		m.samplesS1 += res.Stats.SamplesStage1
		m.samplesS2 += res.Stats.SamplesStage2
		m.samplesS3 += res.Stats.SamplesStage3
		m.rounds += int64(res.Stats.Rounds)
		if ss := res.Sampler; ss != nil {
			m.samplerRuns++
			if ss.Workers > 1 {
				m.samplerParallel++
			}
			m.samplerChunks += ss.Chunks
			for len(m.samplerWBlocks) < len(ss.WorkerBlocks) {
				m.samplerWBlocks = append(m.samplerWBlocks, 0)
				m.samplerWTuples = append(m.samplerWTuples, 0)
			}
			for i := range ss.WorkerBlocks {
				m.samplerWBlocks[i] += ss.WorkerBlocks[i]
				m.samplerWTuples[i] += ss.WorkerTuples[i]
			}
		}
	}
	m.latencies[m.latCount%latencyWindow] = d
	m.latCount++
	if m.latHist != nil {
		m.latHist.Observe(d.Seconds())
	}
}

// observeAudit records one shadow-audit outcome against the table.
// failed covers both audit errors and capacity skips; a successful audit
// contributes its precision@k and any guarantee violations it found.
func (m *tableMetrics) observeAudit(a *engine.Audit, failed bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.auditRuns++
	if failed || a == nil {
		m.auditErrs++
		return
	}
	m.auditViolations += int64(a.GuaranteeViolations)
	m.auditPrecision.Observe(a.PrecisionAtK)
}

// TableMetrics is the JSON form of one table's serving statistics,
// surfaced by /v1/stats.
type TableMetrics struct {
	// Requests counts /v1/query and /v1/query/stream requests for the
	// table; Errors the subset that failed with a 4xx/5xx.
	Requests int64 `json:"requests"`
	Errors   int64 `json:"errors"`
	// Canceled counts requests whose client went away before an answer
	// (queued or mid-run); TimedOut those stopped by the query timeout;
	// PartialResults the responses served with a best-effort partial
	// answer (timeouts and row budgets).
	Canceled       int64 `json:"canceled,omitempty"`
	TimedOut       int64 `json:"timed_out,omitempty"`
	PartialResults int64 `json:"partial_results,omitempty"`
	// ResultCacheHits/Misses count whole-result reuse; plan counters only
	// cover result-cache misses (hits never consult the plan cache).
	ResultCacheHits   int64 `json:"result_cache_hits"`
	ResultCacheMisses int64 `json:"result_cache_misses"`
	PlanCacheHits     int64 `json:"plan_cache_hits"`
	PlanCacheMisses   int64 `json:"plan_cache_misses"`
	// IO aggregates engine I/O counters across all executed runs.
	IO engine.IOStats `json:"io"`
	// SamplesDrawn aggregates HistSim tuples consumed across runs;
	// SamplesStage1/2/3 split it by algorithm stage, and Rounds counts
	// stage-2 refinement rounds across runs.
	SamplesDrawn  int64 `json:"samples_drawn"`
	SamplesStage1 int64 `json:"samples_stage1,omitempty"`
	SamplesStage2 int64 `json:"samples_stage2,omitempty"`
	SamplesStage3 int64 `json:"samples_stage3,omitempty"`
	Rounds        int64 `json:"rounds,omitempty"`
	// SamplerRuns counts sampling-executor runs; SamplerParallelRuns the
	// subset with more than one worker; SamplerChunks the committed
	// planner chunks; SamplerWorkerBlocks/Tuples the per-worker block and
	// tuple reads (index = worker id). Diagnostics for the parallel
	// sampling fan-out — results themselves are byte-identical for any
	// worker count.
	SamplerRuns         int64   `json:"sampler_runs,omitempty"`
	SamplerParallelRuns int64   `json:"sampler_parallel_runs,omitempty"`
	SamplerChunks       int64   `json:"sampler_chunks,omitempty"`
	SamplerWorkerBlocks []int64 `json:"sampler_worker_blocks,omitempty"`
	SamplerWorkerTuples []int64 `json:"sampler_worker_tuples,omitempty"`
	// AppendRequests/AppendedRows/AppendErrors count POST .../rows calls
	// served for the table (always zero for static backends).
	AppendRequests int64 `json:"append_requests,omitempty"`
	AppendedRows   int64 `json:"appended_rows,omitempty"`
	AppendErrors   int64 `json:"append_errors,omitempty"`
	// QualityRuns counts runs that carried an answer-quality report;
	// QualityTruncatedRuns the subset cut short before the (ε, δ)
	// guarantee held; QualityFinalMargin is the most recent completed
	// run's observed separation margin τ_(k+1) − τ_(k).
	QualityRuns          int64   `json:"quality_runs,omitempty"`
	QualityTruncatedRuns int64   `json:"quality_truncated_runs,omitempty"`
	QualityFinalMargin   float64 `json:"quality_final_margin,omitempty"`
	// AuditRuns counts shadow audits attempted; AuditErrors the subset
	// that failed or were skipped at capacity; AuditGuaranteeViolations
	// the ε-tolerant separation-guarantee violations found across all
	// successful audits (expected ≈ δ × audited answers).
	AuditRuns                int64 `json:"audit_runs,omitempty"`
	AuditErrors              int64 `json:"audit_errors,omitempty"`
	AuditGuaranteeViolations int64 `json:"audit_guarantee_violations,omitempty"`
	// LatencyMS holds quantiles over the most recent requests.
	LatencyMS LatencyQuantiles `json:"latency_ms"`
	// Storage reports the table's storage backend and mapped/heap bytes
	// (filled in by the registry, not the per-table counters).
	Storage colstore.StorageStats `json:"storage"`
	// Ingest carries the live table's ingest counters (nil for static
	// backends; filled in by the registry).
	Ingest *ingest.Stats `json:"ingest,omitempty"`
	// Shards carries per-shard client counters for coordinated tables
	// (nil otherwise; filled in by the registry).
	Shards []cluster.ShardClientStats `json:"shards,omitempty"`
	// LatencyHist is the bucketed request-duration distribution backing
	// /metrics; excluded from the /v1/stats JSON (the quantile summary
	// above serves that endpoint). QualityRoundsHist and
	// AuditPrecisionHist likewise back the fastmatch_quality_rounds and
	// fastmatch_audit_precision_at_k families.
	LatencyHist        metrics.HistSnapshot `json:"-"`
	QualityRoundsHist  metrics.HistSnapshot `json:"-"`
	AuditPrecisionHist metrics.HistSnapshot `json:"-"`
}

// LatencyQuantiles summarizes the recent-latency window in milliseconds.
type LatencyQuantiles struct {
	P50 float64 `json:"p50"`
	P90 float64 `json:"p90"`
	P99 float64 `json:"p99"`
	Max float64 `json:"max"`
	// Window is the number of observations the quantiles are over.
	Window int `json:"window"`
}

// snapshot returns a consistent copy of the metrics.
func (m *tableMetrics) snapshot() TableMetrics {
	m.mu.Lock()
	n := m.latCount
	if n > latencyWindow {
		n = latencyWindow
	}
	lats := make([]time.Duration, n)
	copy(lats, m.latencies[:n])
	out := TableMetrics{
		Requests:            m.requests,
		Errors:              m.errors,
		Canceled:            m.canceled,
		TimedOut:            m.timedOut,
		PartialResults:      m.partials,
		ResultCacheHits:     m.resHits,
		ResultCacheMisses:   m.resMiss,
		PlanCacheHits:       m.planHits,
		PlanCacheMisses:     m.planMiss,
		IO:                  m.io,
		SamplesDrawn:        m.samples,
		SamplesStage1:       m.samplesS1,
		SamplesStage2:       m.samplesS2,
		SamplesStage3:       m.samplesS3,
		Rounds:              m.rounds,
		SamplerRuns:         m.samplerRuns,
		SamplerParallelRuns: m.samplerParallel,
		SamplerChunks:       m.samplerChunks,
		SamplerWorkerBlocks: append([]int64(nil), m.samplerWBlocks...),
		SamplerWorkerTuples: append([]int64(nil), m.samplerWTuples...),
		AppendRequests:      m.appendReqs,
		AppendedRows:        m.appendRows,
		AppendErrors:        m.appendErrs,

		QualityRuns:              m.qualityRuns,
		QualityTruncatedRuns:     m.qualityTruncated,
		QualityFinalMargin:       m.qualityMargin,
		AuditRuns:                m.auditRuns,
		AuditErrors:              m.auditErrs,
		AuditGuaranteeViolations: m.auditViolations,
	}
	m.mu.Unlock()
	if m.latHist != nil {
		out.LatencyHist = m.latHist.Snapshot()
	}
	if m.qualityRounds != nil {
		out.QualityRoundsHist = m.qualityRounds.Snapshot()
	}
	if m.auditPrecision != nil {
		out.AuditPrecisionHist = m.auditPrecision.Snapshot()
	}
	if n > 0 {
		// The copy above takes latencies[:n]: before the ring wraps
		// (latCount ≤ window) those are exactly the n observations; after
		// it wraps the ring is full (n == window), so the slice is the
		// whole window regardless of where the write cursor sits — order
		// does not matter because quantiles sort first.
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
		// Linear interpolation between the surrounding order statistics
		// (the "type 7" estimator): q*(n-1) is in general fractional, and
		// truncating it would systematically understate upper quantiles
		// on small windows.
		quantile := func(q float64) float64 {
			pos := q * float64(n-1)
			i := int(pos)
			lo := ms(lats[i])
			if frac := pos - float64(i); frac > 0 && i+1 < n {
				return lo + frac*(ms(lats[i+1])-lo)
			}
			return lo
		}
		out.LatencyMS = LatencyQuantiles{
			P50:    quantile(0.50),
			P90:    quantile(0.90),
			P99:    quantile(0.99),
			Max:    ms(lats[n-1]),
			Window: n,
		}
	}
	return out
}
