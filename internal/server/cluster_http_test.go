package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"fastmatch/internal/cluster"
	"fastmatch/internal/colstore"
	"fastmatch/internal/engine"
)

// clusterReply extends wireReply with the coordinated-table fields.
type clusterReply struct {
	Table         string                `json:"table"`
	Cached        bool                  `json:"cached"`
	Shards        []cluster.ShardStatus `json:"shards"`
	MissingShards []string              `json:"missing_shards"`
	Degraded      bool                  `json:"degraded"`
	Result        json.RawMessage       `json:"result"`
}

// clusterFixture is a 3-shard cluster and a single-node control, both
// serving the same fixture data over real HTTP.
type clusterFixture struct {
	coord   *Server
	coordTS *httptest.Server
	single  *httptest.Server
	shards  []*httptest.Server
}

// newClusterFixture splits the fixture table into n chunk-aligned shards,
// serves each from its own HTTP daemon, and fronts them with a
// coordinator; a single node serving the unsplit table is the control.
func newClusterFixture(t testing.TB, n int, coordCfg Config) *clusterFixture {
	t.Helper()
	tbl := fixtureTable(t)
	align := tbl.BlockSize() * engine.ChunkBlocks(tbl.BlockSize())
	parts, err := colstore.ShardTables(tbl, n, align)
	if err != nil {
		t.Fatal(err)
	}
	fx := &clusterFixture{}
	refs := make([]cluster.ShardRef, n)
	for i, part := range parts {
		ss := New(Config{})
		if err := ss.RegisterTable("fixture", part); err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(ss.Handler())
		t.Cleanup(ts.Close)
		fx.shards = append(fx.shards, ts)
		refs[i] = cluster.ShardRef{Name: shardName(i), URL: ts.URL}
	}
	fx.coord = New(coordCfg)
	if err := fx.coord.RegisterCoordinatedTable("fixture", refs); err != nil {
		t.Fatal(err)
	}
	fx.coordTS = httptest.NewServer(fx.coord.Handler())
	t.Cleanup(fx.coordTS.Close)
	_, _, fx.single = newTestServer(t, Config{})
	return fx
}

func shardName(i int) string { return string(rune('a' + i)) }

func postClusterQuery(t testing.TB, url string, req QueryRequest) (int, clusterReply) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out clusterReply
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode, out
}

// TestCoordinatedHTTPByteIdentical proves the serving-layer contract:
// a coordinated answer's result bytes — blocking, streamed, and cached —
// are byte-identical to a single node serving the unsplit table.
func TestCoordinatedHTTPByteIdentical(t *testing.T) {
	fx := newClusterFixture(t, 3, Config{})
	seed := int64(11)
	lookahead := 8
	for _, exec := range []string{"scan", "scanmatch", "syncmatch", "fastmatch"} {
		req := QueryRequest{
			Table:   "fixture",
			Query:   QuerySpec{Z: "Z", X: []string{"X"}},
			Target:  TargetSpec{Uniform: true},
			Options: &OptionsSpec{Executor: exec, Seed: &seed, Lookahead: &lookahead},
		}
		status, single := postQuery(t, fx.single.URL, req)
		if status != http.StatusOK {
			t.Fatalf("%s: single node status %d", exec, status)
		}
		status, coord := postClusterQuery(t, fx.coordTS.URL, req)
		if status != http.StatusOK {
			t.Fatalf("%s: coordinator status %d", exec, status)
		}
		if !bytes.Equal(coord.Result, single.Result) {
			t.Errorf("%s: coordinated result differs from single node\ncoord:  %s\nsingle: %s",
				exec, coord.Result, single.Result)
		}
		if coord.Degraded || len(coord.MissingShards) != 0 {
			t.Errorf("%s: healthy cluster reported degraded=%v missing=%v", exec, coord.Degraded, coord.MissingShards)
		}
		if len(coord.Shards) != 3 {
			t.Errorf("%s: want 3 shard statuses, got %d", exec, len(coord.Shards))
		}

		// Same request again: a result-cache hit with identical bytes.
		status, again := postClusterQuery(t, fx.coordTS.URL, req)
		if status != http.StatusOK || !again.Cached {
			t.Errorf("%s: repeat status %d cached=%v, want 200 cached", exec, status, again.Cached)
		}
		if !bytes.Equal(again.Result, single.Result) {
			t.Errorf("%s: cached coordinated result differs from single node", exec)
		}

		// Streaming endpoint: the terminal frame's result bytes match too.
		body, _ := json.Marshal(req)
		resp, err := http.Post(fx.coordTS.URL+"/v1/query/stream", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		var last StreamFrame
		frames := 0
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 1<<20), 1<<20)
		for sc.Scan() {
			if err := json.Unmarshal(sc.Bytes(), &last); err != nil {
				t.Fatalf("%s: bad stream frame: %v", exec, err)
			}
			frames++
		}
		resp.Body.Close()
		if last.Type != "result" {
			t.Fatalf("%s: stream ended with %q frame after %d frames (error %q)", exec, last.Type, frames, last.Error)
		}
		if !bytes.Equal(last.Result, single.Result) {
			t.Errorf("%s: streamed coordinated result differs from single node", exec)
		}
	}
}

// TestCoordinatedHTTPShardLoss kills one shard daemon and asserts the
// degraded-but-honest contract end to end: HTTP 200, partial flagged,
// the missing shard named, and the failure visible in /v1/stats.
func TestCoordinatedHTTPShardLoss(t *testing.T) {
	fx := newClusterFixture(t, 3, Config{})
	fx.shards[1].Close()

	seed := int64(7)
	req := QueryRequest{
		Table:   "fixture",
		Query:   QuerySpec{Z: "Z", X: []string{"X"}},
		Target:  TargetSpec{Uniform: true},
		Options: &OptionsSpec{Executor: "scan", Seed: &seed},
	}
	status, rep := postClusterQuery(t, fx.coordTS.URL, req)
	if status != http.StatusOK {
		t.Fatalf("shard loss must degrade, not fail: status %d", status)
	}
	if !rep.Degraded {
		t.Fatal("want degraded=true with a dead shard")
	}
	if len(rep.MissingShards) != 1 || rep.MissingShards[0] != shardName(1) {
		t.Fatalf("want missing_shards [%q], got %v", shardName(1), rep.MissingShards)
	}
	var payload ResultPayload
	if err := json.Unmarshal(rep.Result, &payload); err != nil {
		t.Fatal(err)
	}
	if !payload.Partial || payload.Exact {
		t.Fatalf("degraded answer must be partial and not exact, got partial=%v exact=%v",
			payload.Partial, payload.Exact)
	}

	stats := getStats(t, fx.coordTS.URL)
	tm, ok := stats.Tables["fixture"]
	if !ok {
		t.Fatal("coordinator stats missing table")
	}
	if len(tm.Shards) != 3 {
		t.Fatalf("want 3 shard stats, got %d", len(tm.Shards))
	}
	var deadErrs int64
	for _, sc := range tm.Shards {
		if sc.Name == shardName(1) {
			deadErrs = sc.Errors
			if sc.Healthy {
				t.Error("dead shard reported healthy")
			}
			if sc.LastError == "" {
				t.Error("dead shard has no last_error")
			}
		} else if sc.Errors != 0 {
			t.Errorf("healthy shard %s has %d errors", sc.Name, sc.Errors)
		}
	}
	if deadErrs == 0 {
		t.Error("dead shard has no error count")
	}

	// Degraded answers are never cached: the repeat must not be a hit.
	if _, rep2 := postClusterQuery(t, fx.coordTS.URL, req); rep2.Cached {
		t.Error("degraded answer was served from cache")
	}
}

// TestCoordinatedHTTPAudit exercises the coordinated shadow-audit path:
// with AuditFraction 1 every completed sampling answer is re-executed
// across the shard set and graded, feeding the audit counters.
func TestCoordinatedHTTPAudit(t *testing.T) {
	fx := newClusterFixture(t, 2, Config{AuditFraction: 1})
	seed := int64(3)
	req := QueryRequest{
		Table:   "fixture",
		Query:   QuerySpec{Z: "Z", X: []string{"X"}},
		Target:  TargetSpec{Uniform: true},
		Options: &OptionsSpec{Executor: "syncmatch", Seed: &seed},
	}
	status, _ := postClusterQuery(t, fx.coordTS.URL, req)
	if status != http.StatusOK {
		t.Fatalf("status %d", status)
	}
	fx.coord.auditWG.Wait()
	stats := getStats(t, fx.coordTS.URL)
	tm := stats.Tables["fixture"]
	if tm.AuditRuns != 1 {
		t.Fatalf("want 1 audit run, got %d", tm.AuditRuns)
	}
	if tm.AuditErrors != 0 {
		t.Fatalf("coordinated audit failed (%d errors)", tm.AuditErrors)
	}
}

// TestInternalPartialGuards covers the shard-internal endpoint's refusal
// paths: unknown tables 404, coordinated tables 400 (a coordinator is
// not a shard), unknown ops 400.
func TestInternalPartialGuards(t *testing.T) {
	fx := newClusterFixture(t, 2, Config{})
	post := func(url string, preq cluster.PartialRequest) int {
		t.Helper()
		body, _ := json.Marshal(preq)
		resp, err := http.Post(url+"/v1/internal/partial", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	rawQ := json.RawMessage(`{"z":"Z","x":["X"]}`)
	if got := post(fx.shards[0].URL, cluster.PartialRequest{Table: "nope", Query: rawQ, Op: "meta"}); got != http.StatusNotFound {
		t.Errorf("unknown table: want 404, got %d", got)
	}
	if got := post(fx.coordTS.URL, cluster.PartialRequest{Table: "fixture", Query: rawQ, Op: "meta"}); got != http.StatusBadRequest {
		t.Errorf("coordinated table: want 400, got %d", got)
	}
	if got := post(fx.shards[0].URL, cluster.PartialRequest{Table: "fixture", Query: rawQ, Op: "nope"}); got != http.StatusBadRequest {
		t.Errorf("unknown op: want 400, got %d", got)
	}
	if got := post(fx.shards[0].URL, cluster.PartialRequest{Table: "fixture", Query: rawQ, Op: "meta"}); got != http.StatusOK {
		t.Errorf("meta on a shard: want 200, got %d", got)
	}
}
