package server

import (
	"context"
	"sync/atomic"
	"time"
)

// admission bounds the number of engine runs in flight with a semaphore.
// Query execution is CPU- and memory-bound (per-run sampler state is
// proportional to candidates × groups), so an unbounded accept loop would
// let a traffic spike thrash the whole process; instead, requests beyond
// the bound wait up to maxWait for a slot and are then rejected with 503,
// which lets load balancers retry elsewhere. Cache hits bypass admission
// entirely — they do no engine work.
type admission struct {
	sem      chan struct{}
	maxWait  time.Duration
	rejected atomic.Int64
	canceled atomic.Int64
	inflight atomic.Int64
}

func newAdmission(limit int, maxWait time.Duration) *admission {
	return &admission{sem: make(chan struct{}, limit), maxWait: maxWait}
}

// admitResult says how an admission attempt ended.
type admitResult int

const (
	// admitOK claimed a slot; the caller must release it.
	admitOK admitResult = iota
	// admitTimeout waited maxWait without a slot freeing up (503: the
	// server is at capacity, a load balancer should retry elsewhere).
	admitTimeout
	// admitCanceled saw the request context end while queued — the
	// client stopped waiting, so the request abandons the queue instead
	// of claiming (and then wasting) a slot. Mapped to a 499-style
	// "client closed request" and counted separately from capacity
	// rejections.
	admitCanceled
)

// acquire claims a run slot, waiting up to maxWait. The wait selects on
// the request context, so a disconnected or timed-out client leaves the
// queue immediately and never holds a slot claim.
func (a *admission) acquire(ctx context.Context) admitResult {
	select {
	case a.sem <- struct{}{}:
		a.inflight.Add(1)
		return admitOK
	default:
	}
	if err := ctx.Err(); err != nil {
		a.canceled.Add(1)
		return admitCanceled
	}
	if a.maxWait <= 0 {
		a.rejected.Add(1)
		return admitTimeout
	}
	timer := time.NewTimer(a.maxWait)
	defer timer.Stop()
	select {
	case a.sem <- struct{}{}:
		a.inflight.Add(1)
		return admitOK
	case <-timer.C:
		a.rejected.Add(1)
		return admitTimeout
	case <-ctx.Done():
		a.canceled.Add(1)
		return admitCanceled
	}
}

// release frees a run slot.
func (a *admission) release() {
	a.inflight.Add(-1)
	<-a.sem
}

// AdmissionStats is a point-in-time admission controller snapshot.
type AdmissionStats struct {
	// Limit is the concurrent-run bound; InFlight the current occupancy.
	Limit    int   `json:"limit"`
	InFlight int64 `json:"in_flight"`
	// Rejected counts requests turned away with 503 since startup.
	Rejected int64 `json:"rejected"`
	// Canceled counts queued requests abandoned because their client
	// disconnected (or their deadline passed) while waiting for a slot.
	Canceled int64 `json:"canceled"`
}

// stats returns a snapshot of the admission counters.
func (a *admission) stats() AdmissionStats {
	return AdmissionStats{
		Limit:    cap(a.sem),
		InFlight: a.inflight.Load(),
		Rejected: a.rejected.Load(),
		Canceled: a.canceled.Load(),
	}
}
