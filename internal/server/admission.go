package server

import (
	"context"
	"sync/atomic"
	"time"
)

// admission bounds the number of engine runs in flight with a semaphore.
// Query execution is CPU- and memory-bound (per-run sampler state is
// proportional to candidates × groups), so an unbounded accept loop would
// let a traffic spike thrash the whole process; instead, requests beyond
// the bound wait up to maxWait for a slot and are then rejected with 503,
// which lets load balancers retry elsewhere. Cache hits bypass admission
// entirely — they do no engine work.
type admission struct {
	sem      chan struct{}
	maxWait  time.Duration
	rejected atomic.Int64
	inflight atomic.Int64
}

func newAdmission(limit int, maxWait time.Duration) *admission {
	return &admission{sem: make(chan struct{}, limit), maxWait: maxWait}
}

// acquire claims a run slot, waiting up to maxWait; it returns false (and
// counts a rejection) on timeout or client disconnect.
func (a *admission) acquire(ctx context.Context) bool {
	select {
	case a.sem <- struct{}{}:
		a.inflight.Add(1)
		return true
	default:
	}
	if a.maxWait <= 0 {
		a.rejected.Add(1)
		return false
	}
	timer := time.NewTimer(a.maxWait)
	defer timer.Stop()
	select {
	case a.sem <- struct{}{}:
		a.inflight.Add(1)
		return true
	case <-timer.C:
	case <-ctx.Done():
	}
	a.rejected.Add(1)
	return false
}

// release frees a run slot.
func (a *admission) release() {
	a.inflight.Add(-1)
	<-a.sem
}

// AdmissionStats is a point-in-time admission controller snapshot.
type AdmissionStats struct {
	// Limit is the concurrent-run bound; InFlight the current occupancy.
	Limit    int   `json:"limit"`
	InFlight int64 `json:"in_flight"`
	// Rejected counts requests turned away with 503 since startup.
	Rejected int64 `json:"rejected"`
}

// stats returns a snapshot of the admission counters.
func (a *admission) stats() AdmissionStats {
	return AdmissionStats{Limit: cap(a.sem), InFlight: a.inflight.Load(), Rejected: a.rejected.Load()}
}
