package server

import (
	"context"
	"sync/atomic"
	"time"

	"fastmatch/internal/obs/metrics"
)

// admissionWaitBuckets bound the wait-duration histogram: waits are
// capped by maxWait (2s default), so the range is tight.
var admissionWaitBuckets = []float64{0.001, 0.005, 0.01, 0.05, 0.1, 0.25, 0.5, 1, 2, 5}

// admission bounds the number of engine runs in flight with a semaphore.
// Query execution is CPU- and memory-bound (per-run sampler state is
// proportional to candidates × groups), so an unbounded accept loop would
// let a traffic spike thrash the whole process; instead, requests beyond
// the bound wait up to maxWait for a slot and are then rejected with 503,
// which lets load balancers retry elsewhere. Cache hits bypass admission
// entirely — they do no engine work.
type admission struct {
	sem      chan struct{}
	maxWait  time.Duration
	rejected atomic.Int64
	canceled atomic.Int64
	inflight atomic.Int64
	// waiting gauges requests currently queued for a slot; waits counts
	// requests that ever had to queue (the fast path never increments
	// either); waitHist distributes how long queued requests waited,
	// whatever the outcome.
	waiting  atomic.Int64
	waits    atomic.Int64
	waitHist *metrics.Histogram
}

func newAdmission(limit int, maxWait time.Duration) *admission {
	return &admission{
		sem:      make(chan struct{}, limit),
		maxWait:  maxWait,
		waitHist: metrics.NewHistogram(admissionWaitBuckets),
	}
}

// admitResult says how an admission attempt ended.
type admitResult int

const (
	// admitOK claimed a slot; the caller must release it.
	admitOK admitResult = iota
	// admitTimeout waited maxWait without a slot freeing up (503: the
	// server is at capacity, a load balancer should retry elsewhere).
	admitTimeout
	// admitCanceled saw the request context end while queued — the
	// client stopped waiting, so the request abandons the queue instead
	// of claiming (and then wasting) a slot. Mapped to a 499-style
	// "client closed request" and counted separately from capacity
	// rejections.
	admitCanceled
)

// acquire claims a run slot, waiting up to maxWait. The wait selects on
// the request context, so a disconnected or timed-out client leaves the
// queue immediately and never holds a slot claim.
func (a *admission) acquire(ctx context.Context) admitResult {
	select {
	case a.sem <- struct{}{}:
		a.inflight.Add(1)
		return admitOK
	default:
	}
	if err := ctx.Err(); err != nil {
		a.canceled.Add(1)
		return admitCanceled
	}
	if a.maxWait <= 0 {
		a.rejected.Add(1)
		return admitTimeout
	}
	a.waits.Add(1)
	a.waiting.Add(1)
	waitStart := time.Now()
	defer func() {
		a.waiting.Add(-1)
		a.waitHist.Observe(time.Since(waitStart).Seconds())
	}()
	timer := time.NewTimer(a.maxWait)
	defer timer.Stop()
	select {
	case a.sem <- struct{}{}:
		a.inflight.Add(1)
		return admitOK
	case <-timer.C:
		a.rejected.Add(1)
		return admitTimeout
	case <-ctx.Done():
		a.canceled.Add(1)
		return admitCanceled
	}
}

// release frees a run slot.
func (a *admission) release() {
	a.inflight.Add(-1)
	<-a.sem
}

// AdmissionStats is a point-in-time admission controller snapshot.
type AdmissionStats struct {
	// Limit is the concurrent-run bound; InFlight the current occupancy.
	Limit    int   `json:"limit"`
	InFlight int64 `json:"in_flight"`
	// Rejected counts requests turned away with 503 since startup.
	Rejected int64 `json:"rejected"`
	// Canceled counts queued requests abandoned because their client
	// disconnected (or their deadline passed) while waiting for a slot.
	Canceled int64 `json:"canceled"`
	// Waiting gauges requests queued for a slot right now; Waits counts
	// requests that ever queued (admitted, rejected, or abandoned —
	// fast-path admissions don't count).
	Waiting int64 `json:"waiting,omitempty"`
	Waits   int64 `json:"waits,omitempty"`
}

// stats returns a snapshot of the admission counters.
func (a *admission) stats() AdmissionStats {
	return AdmissionStats{
		Limit:    cap(a.sem),
		InFlight: a.inflight.Load(),
		Rejected: a.rejected.Load(),
		Canceled: a.canceled.Load(),
		Waiting:  a.waiting.Load(),
		Waits:    a.waits.Load(),
	}
}
