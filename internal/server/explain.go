package server

import (
	"net/http"

	"fastmatch/internal/engine"
)

// ExplainResponse is the body of POST /v1/explain: the plan's static
// execution profile — what the planner resolved and what the skip masks
// prove prunable — without running the query. The request body is the
// same QueryRequest as /v1/query (target and most options are ignored;
// executor and kernel/skip toggles shape the report).
type ExplainResponse struct {
	Table string `json:"table"`
	// Plan is the engine's static profile for the resolved plan.
	Plan engine.ExplainInfo `json:"plan"`
	// PlanCached reports whether the plan came from the plan cache.
	PlanCached bool `json:"plan_cached"`
	// Executor names the executor the request would run.
	Executor string `json:"executor"`
}

func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	pq := s.prepareQuery(w, r)
	if pq == nil {
		return
	}
	defer pq.release()
	if pq.entry.coord != nil {
		pq.fail(w, http.StatusUnprocessableEntity,
			"table %q is coordinated: explain it on a shard daemon (plans live where the data does)", pq.req.Table)
		return
	}
	plan, planHit, err := s.planFor(pq)
	if err != nil {
		pq.fail(w, http.StatusUnprocessableEntity, "planning query: %v", err)
		return
	}
	s.finishRequest(pq, outcomeOK, nil, planHit, false, http.StatusOK, "")
	writeJSON(w, http.StatusOK, ExplainResponse{
		Table:      pq.req.Table,
		Plan:       plan.Explain(),
		PlanCached: planHit,
		Executor:   pq.opts.Executor.String(),
	})
}
