package server

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"fastmatch/internal/cluster"
	"fastmatch/internal/engine"
)

// Coordinated tables: a registry entry with no local data. Queries
// scatter-gather across a fixed set of shard daemons (each an ordinary
// fastmatchd serving one row-range shard of the table) and fold the
// shard partials with the engine's merge algebra (internal/cluster), so
// a coordinated answer's result bytes are byte-identical to a single
// node over the concatenated data. Shard order is the global block
// order; datagen -shards writes partitions in that order.

// registerCoordinated installs a coordinated entry over a shard client.
func (r *registry) registerCoordinated(name string, client *cluster.Client, queryTimeout time.Duration, auditFraction *float64) error {
	return r.add(&tableEntry{
		name:          name,
		source:        coordSource(client),
		coord:         client,
		metrics:       newTableMetrics(),
		loadedAt:      time.Now(),
		queryTimeout:  queryTimeout,
		auditFraction: auditFraction,
	})
}

// coordSource renders the shard topology as the entry's source string.
func coordSource(client *cluster.Client) string {
	parts := make([]string, 0, len(client.Refs()))
	for _, ref := range client.Refs() {
		parts = append(parts, ref.Name+"="+ref.URL)
	}
	return "coordinator(" + strings.Join(parts, " ") + ")"
}

// prepareCoordinated finishes request preparation for a coordinated
// table: instead of binding a local engine it binds the request to the
// shard set (each bound shard memoizes its meta, so the coordinator's
// connect pays no second round-trip) and derives cache keys from the
// shards' data generations. No predicate compilation happens here — the
// raw query spec travels to the shards, which compile it against their
// own dictionaries (shared across shards by construction, so the
// resulting id spaces are identical).
func (s *Server) prepareCoordinated(w http.ResponseWriter, r *http.Request, pq *preparedQuery, entry *tableEntry) *preparedQuery {
	pq.release = entry.release
	pq.holds.Store(1)
	bail := func(status int, format string, args ...any) *preparedQuery {
		pq.fail(w, status, format, args...)
		pq.release()
		return nil
	}

	raw, err := json.Marshal(pq.req.Query)
	if err != nil {
		return bail(http.StatusUnprocessableEntity, "invalid query: %v", err)
	}
	pq.shards = entry.coord.Bind(pq.req.Table, raw)

	// One concurrent meta round-trip per shard: the summed row count
	// scales the default options exactly like a single node over the
	// concatenated data, and the per-shard generations key the result
	// cache so answers computed over older shard data are never reused.
	// A failed meta does not fail the request — the run degrades
	// honestly — but it disqualifies the result cache: the row total,
	// and hence the derived options, may differ from the healthy
	// cluster's.
	msp := pq.tr.Start("shard_meta")
	metas := make([]*engine.ShardMeta, len(pq.shards))
	var wg sync.WaitGroup
	for i, sh := range pq.shards {
		wg.Add(1)
		go func(i int, sh cluster.Shard) {
			defer wg.Done()
			metas[i], _ = sh.Meta(r.Context())
		}(i, sh)
	}
	wg.Wait()
	msp.End()

	totalRows, live := 0, 0
	gens := make([]string, len(metas))
	for i, m := range metas {
		if m == nil {
			gens[i] = "?"
			continue
		}
		live++
		totalRows += m.Rows
		gens[i] = strconv.FormatUint(m.Generation, 10)
	}
	if live == 0 {
		return bail(http.StatusServiceUnavailable, "table %q unavailable: all %d shards unreachable", pq.req.Table, len(pq.shards))
	}
	pq.coordOK = live == len(metas)

	pq.opts = engine.DefaultOptions(totalRows)
	if err := pq.req.Options.apply(&pq.opts); err != nil {
		return bail(http.StatusUnprocessableEntity, "invalid options: %v", err)
	}
	if err := pq.opts.Validate(); err != nil {
		return bail(http.StatusUnprocessableEntity, "%v", err)
	}
	pq.target = pq.req.Target.toTarget()

	// The raw spec bytes stand in for the compiled query's fingerprint:
	// the shards compile the spec themselves, so the coordinator keys
	// its caches on exactly what it sends them.
	qfp := sha256.Sum256(raw)
	pq.planKey = fmt.Sprintf("%s\x00%d\x00%s\x00%s",
		pq.req.Table, entry.incarnation, strings.Join(gens, ","), hex.EncodeToString(qfp[:]))
	pq.resultKey = pq.planKey + "\x00" + pq.target.Fingerprint() + "\x00" + pq.opts.Fingerprint()
	pq.opts.Trace = pq.tr
	if isSamplingExecutor(pq.opts.Executor) {
		pq.audit = s.auditSelected(entry)
		pq.opts.Quality = pq.req.Quality || pq.audit
	}
	return pq
}

// handleCoordinatedQuery is handleQuery's coordinated twin: the same
// cache discipline, admission, error mapping, and payload encoding,
// with the local engine run replaced by a scatter-gather across the
// shard set. Shard statuses ride next to — never inside — the result
// payload, so the result bytes stay byte-identical to a single node.
func (s *Server) handleCoordinatedQuery(w http.ResponseWriter, r *http.Request, pq *preparedQuery) {
	if !pq.req.Trace && !pq.req.Quality && pq.coordOK {
		csp := pq.tr.Start("result_cache")
		payload, ok := s.results.Get(pq.resultKey)
		csp.SetAttr("hit", ok)
		csp.End()
		if ok {
			s.finishRequest(pq, outcomeOK, nil, false, true, http.StatusOK, "")
			writeJSON(w, http.StatusOK, wireResponse{
				Table:      pq.req.Table,
				Cached:     true,
				DurationNS: int64(time.Since(pq.began)),
				Result:     json.RawMessage(payload),
			})
			return
		}
	}

	ctx, cancel, timedOut := s.runContext(r, pq)
	defer cancel()
	if !s.admit(ctx, w, pq) {
		return
	}
	defer s.adm.release()
	if s.testHookRunning != nil {
		s.testHookRunning()
	}

	cres, err := cluster.New(pq.shards...).Run(ctx, pq.target, pq.opts)
	var res *engine.Result
	if cres != nil {
		res = cres.Result
	}
	if err != nil && !(res != nil && res.Partial) {
		var ioe *engine.InvalidOptionsError
		switch {
		case errors.As(err, &ioe):
			pq.fail(w, http.StatusUnprocessableEntity, "%v", err)
		case errors.Is(err, context.Canceled):
			s.finishRequest(pq, outcomeCanceled, nil, false, false, statusClientClosedRequest, "client closed request")
			writeError(w, statusClientClosedRequest, "client closed request")
		case errors.Is(err, context.DeadlineExceeded):
			s.finishRequest(pq, outcomeTimedOut, nil, false, false, http.StatusGatewayTimeout, "query timed out")
			writeError(w, http.StatusGatewayTimeout, "query timed out before any result was available")
		default:
			pq.fail(w, http.StatusUnprocessableEntity, "running query: %v", err)
		}
		return
	}
	if err != nil && errors.Is(err, context.Canceled) && !timedOut() {
		s.finishRequest(pq, outcomeCanceled, res, false, false, statusClientClosedRequest, "client closed request")
		writeError(w, statusClientClosedRequest, "client closed request")
		return
	}

	payload, merr := json.Marshal(toPayload(res))
	if merr != nil {
		pq.fail(w, http.StatusInternalServerError, "encoding result: %v", merr)
		return
	}
	oc := outcomeOK
	if res.Partial {
		if timedOut() {
			oc = outcomeTimedOut
		}
	} else if pq.coordOK {
		// Degraded answers are always Partial, so a complete result here
		// saw every shard — cacheable, provided the prepare-time metas
		// (the cache key's generations) all resolved too.
		s.results.Put(pq.resultKey, payload)
	}
	snap := s.finishRequest(pq, oc, res, false, false, http.StatusOK, "")
	s.recordQuality(pq, nil, res)
	resp := wireResponse{
		Table:         pq.req.Table,
		Cached:        false,
		DurationNS:    int64(time.Since(pq.began)),
		Shards:        cres.Shards,
		MissingShards: cres.Missing,
		Degraded:      cres.Degraded,
		Result:        json.RawMessage(payload),
	}
	if pq.req.Trace {
		resp.Trace = &snap
	}
	if pq.req.Quality {
		resp.Quality = res.Quality
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleCoordinatedStream is handleQueryStream's coordinated twin: the
// NDJSON frame sequence (start, per-round progress, terminal result) is
// identical to a single node's — the coordinator re-emits the engine's
// own progress frames — with shard statuses attached to the terminal
// frame.
func (s *Server) handleCoordinatedStream(w http.ResponseWriter, r *http.Request, pq *preparedQuery) {
	ctx, cancel, timedOut := s.runContext(r, pq)
	defer cancel()

	var cachedPayload []byte
	var cached bool
	if !pq.req.Trace && !pq.req.Quality && pq.coordOK {
		csp := pq.tr.Start("result_cache")
		cachedPayload, cached = s.results.Get(pq.resultKey)
		csp.SetAttr("hit", cached)
		csp.End()
	}
	if !cached {
		if !s.admit(ctx, w, pq) {
			return
		}
		defer s.adm.release()
		if s.testHookRunning != nil {
			s.testHookRunning()
		}
	}

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	fl, _ := w.(http.Flusher)
	sw := &streamWriter{enc: json.NewEncoder(w), fl: fl}
	sw.frame(StreamFrame{Type: "progress", QueryID: pq.id, Progress: &engine.Progress{Phase: "start"}})

	if cached {
		s.finishRequest(pq, outcomeOK, nil, false, true, http.StatusOK, "")
		sw.frame(StreamFrame{
			Type:       "result",
			Table:      pq.req.Table,
			Cached:     true,
			DurationNS: int64(time.Since(pq.began)),
			Result:     json.RawMessage(cachedPayload),
		})
		return
	}

	opts := pq.opts
	opts.OnProgress = func(p engine.Progress) {
		sw.frame(StreamFrame{Type: "progress", Progress: &p})
	}
	cres, err := cluster.New(pq.shards...).Run(ctx, pq.target, opts)
	var res *engine.Result
	if cres != nil {
		res = cres.Result
	}
	if err != nil && !(res != nil && res.Partial) {
		switch {
		case errors.Is(err, context.Canceled):
			s.finishRequest(pq, outcomeCanceled, nil, false, false, http.StatusOK, "client closed request")
		case errors.Is(err, context.DeadlineExceeded):
			s.finishRequest(pq, outcomeTimedOut, nil, false, false, http.StatusOK, "query timed out")
			sw.frame(StreamFrame{Type: "error", Error: "query timed out before any result was available"})
		default:
			s.finishRequest(pq, outcomeFailed, nil, false, false, http.StatusOK, err.Error())
			sw.frame(StreamFrame{Type: "error", Error: "running query: " + err.Error()})
		}
		return
	}
	if err != nil && errors.Is(err, context.Canceled) && !timedOut() {
		s.finishRequest(pq, outcomeCanceled, res, false, false, http.StatusOK, "client closed request")
		return
	}

	payload, merr := json.Marshal(toPayload(res))
	if merr != nil {
		s.finishRequest(pq, outcomeFailed, nil, false, false, http.StatusOK, "encoding result: "+merr.Error())
		sw.frame(StreamFrame{Type: "error", Error: "encoding result: " + merr.Error()})
		return
	}
	oc := outcomeOK
	if res.Partial {
		if timedOut() {
			oc = outcomeTimedOut
		}
	} else if pq.coordOK {
		s.results.Put(pq.resultKey, payload)
	}
	snap := s.finishRequest(pq, oc, res, false, false, http.StatusOK, "")
	s.recordQuality(pq, nil, res)
	frame := StreamFrame{
		Type:          "result",
		Table:         pq.req.Table,
		DurationNS:    int64(time.Since(pq.began)),
		Shards:        cres.Shards,
		MissingShards: cres.Missing,
		Degraded:      cres.Degraded,
		Result:        json.RawMessage(payload),
	}
	if pq.req.Trace {
		frame.Trace = &snap
	}
	if pq.req.Quality {
		frame.Quality = res.Quality
	}
	sw.frame(frame)
}

// runCoordAudit executes one coordinated shadow audit: a cluster-wide
// exact reference pass (cluster's Audit, through the same scatter-gather
// fold queries use) compared against the approximate answer, under a
// regular admission slot like any other audit. The bound shard set
// keeps the metas the approximate run used, so the reference pass
// grades against the same shard generations.
func (s *Server) runCoordAudit(pq *preparedQuery, res *engine.Result) (*engine.Audit, string) {
	if s.adm.acquire(context.Background()) != admitOK {
		return nil, "audit skipped: server at capacity"
	}
	defer s.adm.release()
	began := time.Now()
	audit, err := cluster.New(pq.shards...).Audit(context.Background(), pq.target, res, pq.opts)
	if err != nil {
		s.log.Warn("shadow audit failed", "query_id", pq.id, "table", pq.req.Table, "error", err)
		return nil, err.Error()
	}
	s.log.Info("shadow audit",
		"query_id", pq.id,
		"table", pq.req.Table,
		"coordinated", true,
		"precision_at_k", audit.PrecisionAtK,
		"guarantee_violations", audit.GuaranteeViolations,
		"max_displacement", audit.MaxDisplacement,
		"exact_tuples", audit.ExactIO.TuplesRead,
		"duration_ms", float64(time.Since(began))/float64(time.Millisecond),
	)
	return audit, ""
}
