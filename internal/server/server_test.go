package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"testing"

	"fastmatch/internal/colstore"
	"fastmatch/internal/datagen"
	"fastmatch/internal/engine"
)

// fixtureTable builds the deterministic dataset every test serves: Z (18
// candidates) × X (7 groups) plus a measure, 20k rows.
func fixtureTable(t testing.TB) *colstore.Table {
	t.Helper()
	ds, err := datagen.Generate(datagen.Spec{
		Name: "fixture", Rows: 20_000, Seed: 11, Clusters: 5, BlockSize: 64,
		Columns: []datagen.ColumnSpec{
			{Name: "Z", Cardinality: 18, Skew: 0.8, ClusterConcentration: 0.5},
			{Name: "X", Cardinality: 7, Skew: 0.3, ClusterConcentration: 0.5},
		},
		Measures: []string{"M"},
	})
	if err != nil {
		t.Fatal(err)
	}
	return ds.Table
}

// newTestServer registers the fixture table under "fixture" and returns
// the server plus an httptest frontend.
func newTestServer(t testing.TB, cfg Config) (*Server, *colstore.Table, *httptest.Server) {
	t.Helper()
	tbl := fixtureTable(t)
	s := New(cfg)
	if err := s.RegisterTable("fixture", tbl); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, tbl, ts
}

// wireReply mirrors the query response with the result kept raw for
// byte-level comparisons.
type wireReply struct {
	Table      string          `json:"table"`
	Cached     bool            `json:"cached"`
	DurationNS int64           `json:"duration_ns"`
	Result     json.RawMessage `json:"result"`
}

// postQuery sends a query request and decodes the reply.
func postQuery(t testing.TB, url string, req QueryRequest) (int, wireReply) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out wireReply
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode, out
}

// getStats fetches /v1/stats.
func getStats(t testing.TB, url string) StatsResponse {
	t.Helper()
	resp, err := http.Get(url + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out
}

// directPayload computes, through a fresh Engine over the same table, the
// exact result bytes the server must produce for req.
func directPayload(t testing.TB, tbl *colstore.Table, req QueryRequest) []byte {
	t.Helper()
	eng := engine.New(tbl)
	q, err := req.Query.toQuery(eng)
	if err != nil {
		t.Fatal(err)
	}
	opts := engine.DefaultOptions(tbl.NumRows())
	if err := req.Options.apply(&opts); err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run(q, req.Target.toTarget(), opts)
	if err != nil {
		t.Fatal(err)
	}
	payload, err := json.Marshal(toPayload(res))
	if err != nil {
		t.Fatal(err)
	}
	return payload
}

// writeFile dumps contents to path.
func writeFile(path, contents string) error {
	return os.WriteFile(path, []byte(contents), 0o644)
}

// intp/i64p build pointer fields for OptionsSpec.
func intp(v int) *int         { return &v }
func i64p(v int64) *int64     { return &v }
func f64p(v float64) *float64 { return &v }

// baseRequest is a deterministic sampling query: fixed seed, ScanMatch
// executor (sequential sampling — bit-for-bit reproducible, unlike the
// async FastMatch executor whose lookahead marking is timing-dependent).
func baseRequest(seed int64, executor string) QueryRequest {
	return QueryRequest{
		Table:  "fixture",
		Query:  QuerySpec{Z: "Z", X: []string{"X"}},
		Target: TargetSpec{Uniform: true},
		Options: &OptionsSpec{
			K: intp(3), Epsilon: f64p(0.10), Delta: f64p(0.05), Sigma: f64p(0.002),
			Stage1Samples: intp(5000), Executor: executor, Seed: i64p(seed),
		},
	}
}

func TestServerMatchesDirectEngineRun(t *testing.T) {
	_, tbl, ts := newTestServer(t, Config{})
	for _, executor := range []string{"scan", "parallelscan", "scanmatch", "syncmatch"} {
		t.Run(executor, func(t *testing.T) {
			req := baseRequest(9, executor)
			status, reply := postQuery(t, ts.URL, req)
			if status != http.StatusOK {
				t.Fatalf("status %d", status)
			}
			want := directPayload(t, tbl, req)
			if !bytes.Equal(reply.Result, want) {
				t.Fatalf("server result differs from direct Engine.Run:\nserver: %s\ndirect: %s", reply.Result, want)
			}
			if reply.Cached {
				t.Fatal("first request must not be cached")
			}
		})
	}
}

func TestServerCandidateTargetMatchesDirect(t *testing.T) {
	_, tbl, ts := newTestServer(t, Config{})
	req := baseRequest(4, "scanmatch")
	// Target a real candidate label from the generated domain.
	col, err := tbl.Column("Z")
	if err != nil {
		t.Fatal(err)
	}
	req.Target = TargetSpec{Candidate: col.Dict.Value(0)}
	status, reply := postQuery(t, ts.URL, req)
	if status != http.StatusOK {
		t.Fatalf("status %d", status)
	}
	if want := directPayload(t, tbl, req); !bytes.Equal(reply.Result, want) {
		t.Fatal("candidate-target result differs from direct run")
	}
}

func TestResultCacheHitIsByteIdentical(t *testing.T) {
	_, _, ts := newTestServer(t, Config{})
	req := baseRequest(3, "scanmatch")
	status, first := postQuery(t, ts.URL, req)
	if status != http.StatusOK || first.Cached {
		t.Fatalf("first: status %d cached %v", status, first.Cached)
	}
	status, second := postQuery(t, ts.URL, req)
	if status != http.StatusOK {
		t.Fatalf("second: status %d", status)
	}
	if !second.Cached {
		t.Fatal("second identical request must hit the result cache")
	}
	if !bytes.Equal(first.Result, second.Result) {
		t.Fatal("cached result differs from live result")
	}
	st := getStats(t, ts.URL)
	if st.ResultCache.Hits < 1 {
		t.Fatalf("result cache hits = %d, want ≥ 1", st.ResultCache.Hits)
	}
	if tm := st.Tables["fixture"]; tm.ResultCacheHits < 1 {
		t.Fatalf("per-table result cache hits = %d, want ≥ 1", tm.ResultCacheHits)
	}
	// A different seed is a different run: must miss.
	if _, third := postQuery(t, ts.URL, baseRequest(4, "scanmatch")); third.Cached {
		t.Fatal("different seed must not hit the result cache")
	}
}

func TestResultCacheDistinguishesTargetPrecedence(t *testing.T) {
	// A target with both candidate and uniform set resolves as uniform
	// (ResolveTarget precedence); its cached result must never be served
	// for the candidate-only target, or vice versa.
	_, tbl, ts := newTestServer(t, Config{})
	col, err := tbl.Column("Z")
	if err != nil {
		t.Fatal(err)
	}
	label := col.Dict.Value(0)
	both := baseRequest(5, "scanmatch")
	both.Target = TargetSpec{Candidate: label, Uniform: true}
	candOnly := baseRequest(5, "scanmatch")
	candOnly.Target = TargetSpec{Candidate: label}
	uniOnly := baseRequest(5, "scanmatch")

	if status, _ := postQuery(t, ts.URL, both); status != http.StatusOK {
		t.Fatalf("both: status %d", status)
	}
	status, reply := postQuery(t, ts.URL, candOnly)
	if status != http.StatusOK {
		t.Fatalf("candidate-only: status %d", status)
	}
	if reply.Cached {
		t.Fatal("candidate-only target hit the candidate+uniform cache entry")
	}
	if want := directPayload(t, tbl, candOnly); !bytes.Equal(reply.Result, want) {
		t.Fatal("candidate-only result differs from direct run")
	}
	// candidate+uniform and uniform-only resolve identically, so they
	// legitimately share a cache entry.
	if status, reply := postQuery(t, ts.URL, uniOnly); status != http.StatusOK || !reply.Cached {
		t.Fatalf("uniform-only after candidate+uniform: status %d cached %v (want cache hit)", status, reply.Cached)
	}
}

func TestPlanCacheReusedAcrossTargets(t *testing.T) {
	_, _, ts := newTestServer(t, Config{})
	for seed := int64(0); seed < 3; seed++ {
		if status, _ := postQuery(t, ts.URL, baseRequest(seed, "scanmatch")); status != http.StatusOK {
			t.Fatalf("seed %d: status %d", seed, status)
		}
	}
	st := getStats(t, ts.URL)
	if st.PlanCache.Hits < 2 {
		t.Fatalf("plan cache hits = %d, want ≥ 2 (same query shape, three runs)", st.PlanCache.Hits)
	}
	if tm := st.Tables["fixture"]; tm.PlanCacheHits < 2 || tm.PlanCacheMisses < 1 {
		t.Fatalf("per-table plan counters hits=%d misses=%d", tm.PlanCacheHits, tm.PlanCacheMisses)
	}
}

// TestConcurrentClients is the acceptance check: ≥ 32 concurrent clients
// under -race, every response byte-identical to a direct Engine.Run with
// the same seed, with nonzero plan- and result-cache hits reported.
func TestConcurrentClients(t *testing.T) {
	_, tbl, ts := newTestServer(t, Config{})
	// Four distinct request shapes; expected bytes precomputed directly.
	reqs := make([]QueryRequest, 4)
	want := make([][]byte, len(reqs))
	for i := range reqs {
		executor := "scanmatch"
		if i%2 == 1 {
			executor = "scan"
		}
		reqs[i] = baseRequest(int64(i), executor)
		want[i] = directPayload(t, tbl, reqs[i])
	}
	const clients = 32
	const perClient = 3
	var wg sync.WaitGroup
	errc := make(chan error, clients*perClient)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for j := 0; j < perClient; j++ {
				i := (c + j) % len(reqs)
				body, _ := json.Marshal(reqs[i])
				resp, err := http.Post(ts.URL+"/v1/query", "application/json", bytes.NewReader(body))
				if err != nil {
					errc <- err
					return
				}
				var reply wireReply
				err = json.NewDecoder(resp.Body).Decode(&reply)
				resp.Body.Close()
				if err != nil {
					errc <- err
					return
				}
				if resp.StatusCode != http.StatusOK {
					errc <- fmt.Errorf("client %d: status %d", c, resp.StatusCode)
					return
				}
				if !bytes.Equal(reply.Result, want[i]) {
					errc <- fmt.Errorf("client %d request %d: result differs from direct run", c, i)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
	st := getStats(t, ts.URL)
	if st.PlanCache.Hits == 0 {
		t.Error("plan cache reported zero hits after concurrent run")
	}
	if st.ResultCache.Hits == 0 {
		t.Error("result cache reported zero hits after concurrent run")
	}
	tm := st.Tables["fixture"]
	if tm.Requests != clients*perClient {
		t.Errorf("per-table requests = %d, want %d", tm.Requests, clients*perClient)
	}
	if tm.Errors != 0 {
		t.Errorf("per-table errors = %d, want 0", tm.Errors)
	}
	if tm.LatencyMS.Window == 0 {
		t.Error("latency quantiles empty after concurrent run")
	}
}

func TestAdmissionLimitRejectsWith503(t *testing.T) {
	// One run slot, no queueing, result cache off so both requests need
	// the engine.
	s, _, ts := newTestServer(t, Config{MaxConcurrent: 1, MaxWait: -1, ResultCacheSize: -1})
	parked := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	s.testHookRunning = func() {
		once.Do(func() {
			close(parked)
			<-release
		})
	}
	done := make(chan wireReply, 1)
	go func() {
		_, reply := postQuery(t, ts.URL, baseRequest(1, "scanmatch"))
		done <- reply
	}()
	<-parked // first request now holds the only slot
	status, _ := postQuery(t, ts.URL, baseRequest(2, "scanmatch"))
	if status != http.StatusServiceUnavailable {
		t.Fatalf("over-capacity request: status %d, want 503", status)
	}
	close(release)
	<-done
	st := getStats(t, ts.URL)
	if st.Admission.Rejected < 1 {
		t.Fatalf("admission rejected = %d, want ≥ 1", st.Admission.Rejected)
	}
	if st.Admission.Limit != 1 {
		t.Fatalf("admission limit = %d, want 1", st.Admission.Limit)
	}
}

func TestErrorStatuses(t *testing.T) {
	_, _, ts := newTestServer(t, Config{})
	post := func(body string) int {
		resp, err := http.Post(ts.URL+"/v1/query", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if got := post("{not json"); got != http.StatusBadRequest {
		t.Errorf("malformed JSON: %d, want 400", got)
	}
	if got := post(`{"table":"nope","query":{"z":"Z","x":["X"]},"target":{"uniform":true}}`); got != http.StatusNotFound {
		t.Errorf("unknown table: %d, want 404", got)
	}
	if got := post(`{"table":"fixture","query":{"z":"NoSuchColumn","x":["X"]},"target":{"uniform":true}}`); got != http.StatusUnprocessableEntity {
		t.Errorf("unknown column: %d, want 422", got)
	}
	if got := post(`{"table":"fixture","query":{"z":"Z","x":["X"]},"target":{"uniform":true},"options":{"epsilon":-1}}`); got != http.StatusUnprocessableEntity {
		t.Errorf("invalid epsilon: %d, want 422", got)
	}
	if got := post(`{"table":"fixture","query":{"z":"Z","x":["X"]},"target":{"uniform":true},"options":{"executor":"warp"}}`); got != http.StatusUnprocessableEntity {
		t.Errorf("unknown executor: %d, want 422", got)
	}
	if got := post(`{"table":"fixture","query":{"z":"Z","x":["X"]},"target":{"candidate":"nobody"}}`); got != http.StatusUnprocessableEntity {
		t.Errorf("unknown target candidate: %d, want 422", got)
	}
	if got := post(`{"table":"fixture","query":{"z":"Z","x":["X"]},"target":{"uniform":true},"bogus":1}`); got != http.StatusBadRequest {
		t.Errorf("unknown request field: %d, want 400", got)
	}
	// Malformed requests must not crash later requests.
	if status, _ := postQuery(t, ts.URL, baseRequest(1, "scan")); status != http.StatusOK {
		t.Errorf("valid request after errors: %d, want 200", status)
	}
}

func TestTablesHealthzAndAdminGating(t *testing.T) {
	_, _, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health HealthResponse
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if health.Status != "ok" || health.Tables != 1 {
		t.Fatalf("healthz: %+v", health)
	}
	resp, err = http.Get(ts.URL + "/v1/tables")
	if err != nil {
		t.Fatal(err)
	}
	var tables TablesResponse
	if err := json.NewDecoder(resp.Body).Decode(&tables); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(tables.Tables) != 1 || tables.Tables[0].Name != "fixture" || tables.Tables[0].Rows != 20_000 {
		t.Fatalf("tables: %+v", tables)
	}
	if len(tables.Tables[0].Columns) != 2 {
		t.Fatalf("columns: %+v", tables.Tables[0].Columns)
	}
	// Admin is off by default.
	resp, err = http.Post(ts.URL+"/v1/admin/load", "application/json", strings.NewReader(`{"name":"x","path":"/nope"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		t.Fatal("admin endpoint must be gated off by default")
	}
}

func TestSnapshotLoadedTableServesIdenticalResults(t *testing.T) {
	tbl := fixtureTable(t)
	path := t.TempDir() + "/fixture.fms"
	if err := colstore.WriteSnapshotFile(tbl, path); err != nil {
		t.Fatal(err)
	}
	s := New(Config{})
	if err := s.LoadTable(TableSpec{Name: "fixture", Path: path}); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	req := baseRequest(6, "scanmatch")
	status, reply := postQuery(t, ts.URL, req)
	if status != http.StatusOK {
		t.Fatalf("status %d", status)
	}
	// The snapshot preserves the block layout, so results are identical
	// to serving the in-memory table directly.
	if want := directPayload(t, tbl, req); !bytes.Equal(reply.Result, want) {
		t.Fatal("snapshot-loaded table produced different results")
	}
}

// TestMmapBackendServesIdenticalResults boots the same snapshot under
// both backends and asserts byte-identical query results plus correct
// backend reporting in /v1/tables and /v1/stats.
func TestMmapBackendServesIdenticalResults(t *testing.T) {
	tbl := fixtureTable(t)
	path := t.TempDir() + "/fixture.fms"
	if err := colstore.WriteSnapshotFile(tbl, path); err != nil {
		t.Fatal(err)
	}
	s := New(Config{})
	if err := s.LoadTable(TableSpec{Name: "fixture", Path: path, Backend: "mmap"}); err != nil {
		t.Fatal(err)
	}
	if err := s.LoadTable(TableSpec{Name: "heap", Path: path}); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for _, executor := range []string{"scan", "parallelscan", "scanmatch", "syncmatch"} {
		req := baseRequest(6, executor)
		status, mmapReply := postQuery(t, ts.URL, req)
		if status != http.StatusOK {
			t.Fatalf("%s: status %d", executor, status)
		}
		req.Table = "heap"
		status, heapReply := postQuery(t, ts.URL, req)
		if status != http.StatusOK {
			t.Fatalf("%s: status %d", executor, status)
		}
		if !bytes.Equal(mmapReply.Result, heapReply.Result) {
			t.Fatalf("%s: mmap and heap backends returned different results", executor)
		}
		if want := directPayload(t, tbl, baseRequest(6, executor)); !bytes.Equal(mmapReply.Result, want) {
			t.Fatalf("%s: mmap-backed result differs from direct run", executor)
		}
	}

	for _, info := range s.Tables() {
		switch info.Name {
		case "fixture":
			if b := info.Storage.Backend; b != "mmap" && b != "mmap-fallback" {
				t.Fatalf("fixture backend %q, want mmap", b)
			}
			if b := info.Storage.Backend; b == "mmap" && info.Storage.MappedBytes == 0 {
				t.Fatal("mmap table reports zero mapped bytes")
			}
		case "heap":
			if info.Storage.Backend != "inmem" || info.Storage.HeapBytes == 0 {
				t.Fatalf("heap backend %+v", info.Storage)
			}
		}
	}
	stats := getStats(t, ts.URL)
	if got := stats.Tables["fixture"].Storage.Backend; got != "mmap" && got != "mmap-fallback" {
		t.Fatalf("/v1/stats backend %q, want mmap", got)
	}
	if stats.Tables["heap"].Storage.Backend != "inmem" {
		t.Fatalf("/v1/stats heap backend %q", stats.Tables["heap"].Storage.Backend)
	}
}

// TestBackendSpecValidation pins the error paths: csv+mmap is rejected,
// as is an unknown backend name.
func TestBackendSpecValidation(t *testing.T) {
	tbl := fixtureTable(t)
	dir := t.TempDir()
	csvPath := dir + "/fixture.csv"
	var sb strings.Builder
	if err := colstore.WriteCSV(tbl, &sb); err != nil {
		t.Fatal(err)
	}
	if err := writeFile(csvPath, sb.String()); err != nil {
		t.Fatal(err)
	}
	s := New(Config{})
	if err := s.LoadTable(TableSpec{Name: "bad", Path: csvPath, Backend: "mmap"}); err == nil {
		t.Fatal("csv + mmap must be rejected")
	}
	if err := s.LoadTable(TableSpec{Name: "bad", Path: csvPath, Backend: "turbo"}); err == nil {
		t.Fatal("unknown backend must be rejected")
	}
}

func TestAdminLoadCSV(t *testing.T) {
	tbl := fixtureTable(t)
	csvPath := t.TempDir() + "/fixture.csv"
	var sb strings.Builder
	if err := colstore.WriteCSV(tbl, &sb); err != nil {
		t.Fatal(err)
	}
	if err := writeFile(csvPath, sb.String()); err != nil {
		t.Fatal(err)
	}
	s := New(Config{EnableAdmin: true})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	spec := fmt.Sprintf(`{"name":"loaded","path":%q,"measures":["M"]}`, csvPath)
	resp, err := http.Post(ts.URL+"/v1/admin/load", "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("admin load: status %d", resp.StatusCode)
	}
	req := baseRequest(1, "scanmatch")
	req.Table = "loaded"
	if status, _ := postQuery(t, ts.URL, req); status != http.StatusOK {
		t.Fatalf("query on admin-loaded table: status %d", status)
	}
	// Duplicate name must be rejected, not silently replaced.
	resp, err = http.Post(ts.URL+"/v1/admin/load", "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("duplicate admin load: status %d, want 422", resp.StatusCode)
	}
}

func TestLRUCacheEviction(t *testing.T) {
	c := newLRUCache[string, int](2)
	c.Put("a", 1)
	c.Put("b", 2)
	c.Put("c", 3) // evicts a
	if _, ok := c.Get("a"); ok {
		t.Fatal("a should have been evicted")
	}
	if v, ok := c.Get("b"); !ok || v != 2 {
		t.Fatal("b lost")
	}
	c.Put("d", 4) // evicts c (b was just used)
	if _, ok := c.Get("c"); ok {
		t.Fatal("c should have been evicted")
	}
	if _, ok := c.Get("b"); !ok {
		t.Fatal("recently-used b evicted")
	}
	st := c.Stats()
	if st.Entries != 2 || st.Capacity != 2 {
		t.Fatalf("stats: %+v", st)
	}
	// Disabled cache never stores.
	off := newLRUCache[string, int](-1)
	off.Put("a", 1)
	if _, ok := off.Get("a"); ok {
		t.Fatal("disabled cache stored an entry")
	}
}
