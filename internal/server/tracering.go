package server

import (
	"net/http"
	"sort"
	"sync"
	"time"

	"fastmatch/internal/obs/trace"
)

// traceRetention is how long a slow trace stays interesting: entries
// older than this are evicted before new ones compete for a slot, so one
// pathological request from hours ago cannot squat in the ring forever.
const traceRetention = 15 * time.Minute

// traceRing keeps the N slowest recent query traces for
// GET /v1/debug/traces. Every finished request offers its trace; the
// ring keeps the slowest ones within the retention window, so an
// operator chasing a latency regression sees worst offenders, not just
// the most recent requests.
type traceRing struct {
	mu      sync.Mutex
	cap     int
	entries []trace.Snapshot // duration-descending
	// now is the ring's clock, injectable so the retention sweep is
	// testable without real 15-minute waits.
	now func() time.Time
}

// newTraceRing creates a ring keeping up to size traces; size < 0
// disables recording entirely.
func newTraceRing(size int) *traceRing {
	if size < 0 {
		size = 0
	}
	return &traceRing{cap: size, now: time.Now}
}

// record offers one finished trace to the ring.
func (r *traceRing) record(snap trace.Snapshot) {
	if r.cap == 0 || snap.QueryID == "" {
		return
	}
	now := r.now()
	r.mu.Lock()
	defer r.mu.Unlock()
	kept := r.entries[:0]
	for _, e := range r.entries {
		if now.Sub(e.StartTime) <= traceRetention {
			kept = append(kept, e)
		}
	}
	r.entries = kept
	if len(r.entries) >= r.cap {
		if snap.DurationNS <= r.entries[len(r.entries)-1].DurationNS {
			return
		}
		r.entries = r.entries[:len(r.entries)-1]
	}
	r.entries = append(r.entries, snap)
	sort.SliceStable(r.entries, func(i, j int) bool {
		return r.entries[i].DurationNS > r.entries[j].DurationNS
	})
}

// snapshot copies the current entries, slowest first.
func (r *traceRing) snapshot() []trace.Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]trace.Snapshot, len(r.entries))
	copy(out, r.entries)
	return out
}

// TracesResponse is the body of GET /v1/debug/traces.
type TracesResponse struct {
	// Traces lists the slowest recently finished query traces,
	// duration-descending (at most Config.TraceRingSize, within a
	// 15-minute retention window).
	Traces []trace.Snapshot `json:"traces"`
}

func (s *Server) handleDebugTraces(w http.ResponseWriter, _ *http.Request) {
	traces := s.traces.snapshot()
	if traces == nil {
		traces = []trace.Snapshot{}
	}
	writeJSON(w, http.StatusOK, TracesResponse{Traces: traces})
}
