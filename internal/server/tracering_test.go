package server

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"fastmatch/internal/obs/trace"
)

// fakeClock is an injectable, goroutine-safe clock for the trace ring's
// retention sweep.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(d)
}

func traceSnap(clock *fakeClock, id string, dur time.Duration) trace.Snapshot {
	return trace.Snapshot{QueryID: id, StartTime: clock.Now(), DurationNS: dur.Nanoseconds()}
}

// TestTraceRingRetentionSweep: entries older than the 15-minute window
// are evicted when new ones arrive, even when they were slower — a
// pathological request from long ago must not squat in the ring.
func TestTraceRingRetentionSweep(t *testing.T) {
	clock := &fakeClock{now: time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)}
	r := newTraceRing(2)
	r.now = clock.Now

	// A very slow old trace fills a slot and, while fresh, outcompetes a
	// faster newcomer for the contested second slot.
	r.record(traceSnap(clock, "old-slow", 10*time.Second))
	clock.Advance(time.Minute)
	r.record(traceSnap(clock, "mid", 2*time.Second))
	clock.Advance(time.Minute)
	r.record(traceSnap(clock, "fast", time.Second))
	got := r.snapshot()
	if len(got) != 2 || got[0].QueryID != "old-slow" || got[1].QueryID != "mid" {
		t.Fatalf("pre-sweep ring: %+v", got)
	}

	// Past the retention window both survivors expire; the next record
	// sweeps them and keeps only itself.
	clock.Advance(traceRetention)
	r.record(traceSnap(clock, "new", 50*time.Millisecond))
	got = r.snapshot()
	if len(got) != 1 || got[0].QueryID != "new" {
		t.Fatalf("post-sweep ring: %+v", got)
	}
}

// TestTraceRingConcurrentSweep hammers the ring from many goroutines
// while the clock jumps across retention boundaries — run under -race
// this checks the sweep holds up with concurrent inserts.
func TestTraceRingConcurrentSweep(t *testing.T) {
	clock := &fakeClock{now: time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)}
	r := newTraceRing(8)
	r.now = clock.Now

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				r.record(traceSnap(clock, fmt.Sprintf("q-%d-%d", g, i), time.Duration(i)*time.Millisecond))
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			clock.Advance(traceRetention / 3)
		}
	}()
	wg.Wait()

	// The sweep runs on insert: one sentinel record at the final clock
	// value evicts everything outside the window, so afterwards every
	// survivor must respect the invariants — within cap, sorted
	// duration-descending, within retention of "now".
	now := clock.Now()
	r.record(traceSnap(clock, "sentinel", time.Hour))
	got := r.snapshot()
	if len(got) == 0 || len(got) > 8 {
		t.Fatalf("ring size %d, want 1..8", len(got))
	}
	if got[0].QueryID != "sentinel" {
		t.Fatalf("slowest entry %q, want sentinel", got[0].QueryID)
	}
	for i, e := range got {
		if i > 0 && e.DurationNS > got[i-1].DurationNS {
			t.Fatalf("ring not duration-sorted at %d: %+v", i, got)
		}
		if now.Sub(e.StartTime) > traceRetention {
			t.Fatalf("stale entry survived the sweep: %+v (now %v)", e, now)
		}
	}
}
