package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"fastmatch/internal/ingest"
)

// ingestSpec returns a TableSpec creating a fresh live table under a
// temp dir.
func ingestSpec(t testing.TB, name string) TableSpec {
	t.Helper()
	return TableSpec{
		Name:      name,
		Path:      t.TempDir(),
		Backend:   "ingest",
		Columns:   []string{"Z", "X"},
		Measures:  []string{"m"},
		BlockSize: 64,
		SealRows:  512,
	}
}

// loadIngest loads an ingest spec and unloads it at cleanup, so the
// background compactor is stopped before TempDir removal (skipping the
// unload leaves the two racing). Tests that unload explicitly are fine:
// the second unload is a harmless not-found.
func loadIngest(t testing.TB, s *Server, name string) {
	t.Helper()
	if err := s.LoadTable(ingestSpec(t, name)); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = s.UnloadTable(name) })
}

// appendRows POSTs a JSON batch to the append endpoint.
func appendRows(t testing.TB, url, table string, rows []ingest.Row) (int, AppendResponse) {
	t.Helper()
	body, err := json.Marshal(AppendRequest{Rows: rows})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/tables/"+table+"/rows", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out AppendResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode, out
}

func genIngestRows(n, offset int) []ingest.Row {
	rows := make([]ingest.Row, n)
	for i := range rows {
		rows[i] = ingest.Row{
			Values: map[string]string{
				"Z": fmt.Sprintf("Z_%d", (offset+i)%9),
				"X": fmt.Sprintf("X_%d", (offset+i)%5),
			},
			Measures: map[string]float64{"m": float64(i % 50)},
		}
	}
	return rows
}

// scanQuery is an exact full-pass query; its IO.TuplesRead equals the
// table's row count at execution time, which pins exactly which data
// generation served the request.
func scanQuery(table string) QueryRequest {
	k := 3
	seed := int64(5)
	return QueryRequest{
		Table:   table,
		Query:   QuerySpec{Z: "Z", X: []string{"X"}},
		Target:  TargetSpec{Uniform: true},
		Options: &OptionsSpec{K: &k, Executor: "scan", Seed: &seed},
	}
}

func tuplesRead(t testing.TB, rep wireReply) int64 {
	t.Helper()
	var payload ResultPayload
	if err := json.Unmarshal(rep.Result, &payload); err != nil {
		t.Fatal(err)
	}
	return payload.IO.TuplesRead
}

func TestIngestTableEndToEnd(t *testing.T) {
	s := New(Config{EnableAdmin: true})
	loadIngest(t, s, "live")
	ts := newHTTPServer(t, s)

	// Append a first batch and query it.
	code, ack := appendRows(t, ts.URL, "live", genIngestRows(700, 0))
	if code != http.StatusOK || ack.Appended != 700 || ack.TotalRows != 700 || !ack.Synced {
		t.Fatalf("append: code %d, ack %+v", code, ack)
	}
	code, rep := postQuery(t, ts.URL, scanQuery("live"))
	if code != http.StatusOK {
		t.Fatalf("query over live table: %d", code)
	}
	if got := tuplesRead(t, rep); got != 700 {
		t.Fatalf("scan read %d tuples, want 700", got)
	}

	// Appending advances the generation: the same request must not be
	// served from the result cache computed over the old data.
	if code, _ := appendRows(t, ts.URL, "live", genIngestRows(300, 3)); code != http.StatusOK {
		t.Fatalf("second append: %d", code)
	}
	code, rep = postQuery(t, ts.URL, scanQuery("live"))
	if code != http.StatusOK || rep.Cached {
		t.Fatalf("post-append query: code %d cached %v (stale cache!)", code, rep.Cached)
	}
	if got := tuplesRead(t, rep); got != 1000 {
		t.Fatalf("scan read %d tuples, want 1000", got)
	}
	// Unchanged generation: now the cache may (and should) serve it.
	if _, rep = postQuery(t, ts.URL, scanQuery("live")); !rep.Cached {
		t.Fatal("same-generation repeat not served from result cache")
	}

	// /v1/tables reports the ingest backend and live counters.
	tables := getTables(t, ts.URL)
	info := tables["live"]
	if info.Rows != 1000 || info.Storage.Backend != "ingest" || info.Ingest == nil {
		t.Fatalf("bad table info: %+v", info)
	}
	if info.Ingest.AppendedRows != 1000 || info.Ingest.Generation < 2 {
		t.Fatalf("bad ingest stats: %+v", info.Ingest)
	}

	// /v1/stats carries append counters and ingest state.
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	tm := stats.Tables["live"]
	if tm.AppendRequests != 2 || tm.AppendedRows != 1000 || tm.Ingest == nil {
		t.Fatalf("bad table metrics: %+v", tm)
	}
}

func TestIngestCSVAppend(t *testing.T) {
	s := New(Config{})
	loadIngest(t, s, "live")
	ts := newHTTPServer(t, s)

	csvBody := "X,m,Z\nX_1,2.5,Z_1\nX_2,0,Z_2\nX_1,7,Z_1\n" // header order ≠ schema order
	resp, err := http.Post(ts.URL+"/v1/tables/live/rows", "text/csv", strings.NewReader(csvBody))
	if err != nil {
		t.Fatal(err)
	}
	var ack AppendResponse
	if err := json.NewDecoder(resp.Body).Decode(&ack); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || ack.Appended != 3 || ack.TotalRows != 3 {
		t.Fatalf("CSV append: %d %+v", resp.StatusCode, ack)
	}

	// Unknown header field → 422, nothing appended.
	resp, err = http.Post(ts.URL+"/v1/tables/live/rows", "text/csv", strings.NewReader("Z,X,bogus\na,b,c\n"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("bad CSV header: %d, want 422", resp.StatusCode)
	}
}

func TestAppendErrorStatuses(t *testing.T) {
	s := New(Config{})
	loadIngest(t, s, "live")
	tbl := fixtureTable(t)
	if err := s.RegisterTable("static", tbl); err != nil {
		t.Fatal(err)
	}
	ts := newHTTPServer(t, s)

	if code, _ := appendRows(t, ts.URL, "nosuch", genIngestRows(1, 0)); code != http.StatusNotFound {
		t.Fatalf("append to unknown table: %d, want 404", code)
	}
	if code, _ := appendRows(t, ts.URL, "static", genIngestRows(1, 0)); code != http.StatusConflict {
		t.Fatalf("append to static table: %d, want 409", code)
	}
	bad := []ingest.Row{{Values: map[string]string{"Z": "a"}}} // missing X and m
	if code, _ := appendRows(t, ts.URL, "live", bad); code != http.StatusUnprocessableEntity {
		t.Fatalf("bad row: want 422")
	}
	neg := genIngestRows(1, 0)
	neg[0].Measures["m"] = -3
	if code, _ := appendRows(t, ts.URL, "live", neg); code != http.StatusUnprocessableEntity {
		t.Fatalf("negative measure: want 422")
	}
}

func TestUnloadLifecycle(t *testing.T) {
	_, _, ts := newTestServer(t, Config{EnableAdmin: true})

	// Unknown table → 404.
	if code := postUnload(t, ts.URL, "nosuch"); code != http.StatusNotFound {
		t.Fatalf("unload unknown: %d, want 404", code)
	}
	// Loaded table → 200, then queries 404.
	if code := postUnload(t, ts.URL, "fixture"); code != http.StatusOK {
		t.Fatalf("unload fixture: %d, want 200", code)
	}
	if code, _ := postQuery(t, ts.URL, scanQuery("fixture")); code != http.StatusNotFound {
		t.Fatalf("query after unload: %d, want 404", code)
	}
}

func TestUnloadBusyReturns409(t *testing.T) {
	s := New(Config{EnableAdmin: true, MaxConcurrent: 2})
	tbl := fixtureTable(t)
	if err := s.RegisterTable("fixture", tbl); err != nil {
		t.Fatal(err)
	}
	ts := newHTTPServer(t, s)

	parked := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	s.testHookRunning = func() {
		once.Do(func() {
			close(parked)
			<-release
		})
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		postQuery(t, ts.URL, scanQuery("fixture"))
	}()
	<-parked
	if code := postUnload(t, ts.URL, "fixture"); code != http.StatusConflict {
		t.Fatalf("unload with query in flight: %d, want 409", code)
	}
	close(release)
	wg.Wait()
	if code := postUnload(t, ts.URL, "fixture"); code != http.StatusOK {
		t.Fatalf("unload after drain: %d, want 200", code)
	}
}

// TestUnloadReloadInvalidatesCaches reloads different data under a
// reused name and checks no stale plan/result is served (incarnation
// keying).
func TestUnloadReloadInvalidatesCaches(t *testing.T) {
	s := New(Config{EnableAdmin: true})
	loadIngest(t, s, "live")
	ts := newHTTPServer(t, s)
	appendRows(t, ts.URL, "live", genIngestRows(400, 0))
	if _, rep := postQuery(t, ts.URL, scanQuery("live")); tuplesRead(t, rep) != 400 {
		t.Fatal("priming query failed")
	}
	if code := postUnload(t, ts.URL, "live"); code != http.StatusOK {
		t.Fatalf("unload failed")
	}
	// Same name, different (fresh) directory and data volume.
	loadIngest(t, s, "live")
	appendRows(t, ts.URL, "live", genIngestRows(150, 1))
	code, rep := postQuery(t, ts.URL, scanQuery("live"))
	if code != http.StatusOK || rep.Cached {
		t.Fatalf("post-reload query: code %d cached %v", code, rep.Cached)
	}
	if got := tuplesRead(t, rep); got != 150 {
		t.Fatalf("post-reload scan read %d tuples, want 150 (stale cache across incarnations)", got)
	}
}

// TestConcurrentAppendAndQueryHTTP hammers the append and query
// endpoints together (run with -race).
func TestConcurrentAppendAndQueryHTTP(t *testing.T) {
	s := New(Config{})
	loadIngest(t, s, "live")
	ts := newHTTPServer(t, s)
	appendRows(t, ts.URL, "live", genIngestRows(600, 0))

	var wg sync.WaitGroup
	errs := make(chan string, 64)
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				if code, _ := appendRows(t, ts.URL, "live", genIngestRows(100, g*1000+i)); code != http.StatusOK {
					errs <- fmt.Sprintf("append: %d", code)
					return
				}
			}
		}(g)
	}
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				code, rep := postQuery(t, ts.URL, scanQuery("live"))
				if code != http.StatusOK {
					errs <- fmt.Sprintf("query: %d", code)
					return
				}
				if n := tuplesRead(t, rep); n < 600 || n > 3600 {
					errs <- fmt.Sprintf("scan saw %d tuples, outside [600, 3600]", n)
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
	code, rep := postQuery(t, ts.URL, scanQuery("live"))
	if code != http.StatusOK || tuplesRead(t, rep) != 3600 {
		t.Fatalf("final query: code %d tuples %d, want 3600", code, tuplesRead(t, rep))
	}
}

// --- small helpers shared by the ingest HTTP tests ---

func newHTTPServer(t testing.TB, s *Server) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return ts
}

func getTables(t testing.TB, url string) map[string]TableInfo {
	t.Helper()
	resp, err := http.Get(url + "/v1/tables")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var tr TablesResponse
	if err := json.NewDecoder(resp.Body).Decode(&tr); err != nil {
		t.Fatal(err)
	}
	out := make(map[string]TableInfo, len(tr.Tables))
	for _, ti := range tr.Tables {
		out[ti.Name] = ti
	}
	return out
}

func postUnload(t testing.TB, url, name string) int {
	t.Helper()
	body, _ := json.Marshal(UnloadRequest{Name: name})
	resp, err := http.Post(url+"/v1/admin/unload", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp.StatusCode
}
