// Package server implements fastmatchd's query-serving subsystem: a
// multi-table registry (one shared, concurrent-safe Engine per dataset), a
// JSON-over-HTTP query API, an LRU plan cache reusing Engine.Prepare
// output across requests, an LRU result cache exploiting seeded-run
// determinism, a semaphore-based admission controller bounding concurrent
// engine runs, and per-table serving metrics.
//
// Endpoints:
//
//	POST /v1/query               answer a top-k histogram matching query
//	POST /v1/internal/partial    shard-internal scatter-gather endpoint
//	POST /v1/tables/{name}/rows  append rows to an ingest-backed table
//	GET  /v1/tables              list registered tables and their schemas
//	GET  /v1/healthz             liveness probe
//	GET  /v1/stats               per-table metrics, cache and admission counters
//	POST /v1/admin/load          load another table from disk (if enabled)
//	POST /v1/admin/unload        drop a table from the registry (if enabled)
//
// The package is transport-thin by design: everything interesting —
// planning, sampling, guarantees — lives in internal/engine (and, for
// live tables, internal/ingest), and the server only adds naming,
// reuse, and back-pressure.
package server

import (
	"log/slog"
	"net/http"
	"runtime"
	"sync"
	"time"

	"fastmatch/internal/cluster"
	"fastmatch/internal/colstore"
	"fastmatch/internal/engine"
	"fastmatch/internal/ingest"
	"fastmatch/internal/obs/logx"
)

// Config parameterizes a Server. The zero value is usable: every field
// has a sensible default applied by New.
type Config struct {
	// MaxConcurrent bounds simultaneous engine runs; ≤ 0 selects
	// 2×GOMAXPROCS. Requests beyond the bound wait up to MaxWait and are
	// then rejected with 503 (cache hits bypass admission).
	MaxConcurrent int
	// MaxWait is how long an admitted-over-capacity request may wait for
	// a run slot; < 0 means reject immediately, 0 selects 2s.
	MaxWait time.Duration
	// PlanCacheSize bounds the plan cache (entries are resolved
	// query-shape plans, keyed per table); 0 selects 256, < 0 disables.
	PlanCacheSize int
	// ResultCacheSize bounds the result cache (entries are encoded result
	// payloads keyed by the full request fingerprint); 0 selects 1024,
	// < 0 disables.
	ResultCacheSize int
	// EnableAdmin exposes POST /v1/admin/load, letting clients load
	// arbitrary file paths readable by the process — leave off unless the
	// daemon is trusted-network only.
	EnableAdmin bool
	// QueryTimeout is the default per-request query timeout: a run past
	// it stops and the response carries the best-effort partial answer
	// (Partial set). 0 means no timeout; TableSpec.QueryTimeoutMS
	// overrides it per table.
	QueryTimeout time.Duration
	// Logger receives the server's structured logs (per-request lines,
	// table load/unload events, ingest WAL/compaction events, slow-query
	// reports). Nil discards everything — embedding programs and tests
	// stay quiet by default.
	Logger *slog.Logger
	// SlowQuery, when > 0, is the slow-query threshold: any query
	// request at or past it is logged at Warn level with its full span
	// tree attached.
	SlowQuery time.Duration
	// TraceRingSize bounds the in-memory ring of slowest recent traces
	// served at GET /v1/debug/traces; 0 selects 32, < 0 disables the
	// ring (the endpoint then always answers with an empty list).
	TraceRingSize int
	// AuditFraction is the fraction (0..1) of completed sampling-executor
	// answers to shadow-audit: re-execute the plan with the exact Scan
	// executor off the request path and compare (precision@k, rank
	// displacement, guarantee violations — see engine.AuditRun). 0 (the
	// default) disables auditing; values ≥ 1 audit every eligible answer.
	// TableSpec.AuditFraction overrides it per table. Audits are full
	// scans: they take regular admission slots, so they compete with —
	// but never exceed — the serving concurrency bound.
	AuditFraction float64
	// QualityRingSize bounds the in-memory ring of recent answer-quality
	// records (quality reports + shadow-audit verdicts) served at
	// GET /v1/debug/quality; 0 selects 32, < 0 disables the ring.
	QualityRingSize int
}

// Server serves FastMatch queries over registered tables. Create with
// New, add tables with LoadTable/RegisterTable, and expose Handler on an
// http.Server. All methods are safe for concurrent use.
type Server struct {
	cfg     Config
	reg     *registry
	plans   *lruCache[string, *engine.Plan]
	results *lruCache[string, []byte]
	adm     *admission
	mux     *http.ServeMux
	started time.Time
	log     *slog.Logger
	traces  *traceRing
	quality *qualityRing
	// auditWG tracks in-flight shadow audits; tests wait on it to observe
	// audit outcomes deterministically.
	auditWG sync.WaitGroup

	// testHookRunning, when set, is invoked while a query request holds
	// its admission slot — lets tests park a request deterministically.
	testHookRunning func()
}

// New creates a Server from the config (zero value OK).
func New(cfg Config) *Server {
	if cfg.MaxConcurrent <= 0 {
		cfg.MaxConcurrent = 2 * runtime.GOMAXPROCS(0)
	}
	switch {
	case cfg.MaxWait < 0:
		cfg.MaxWait = 0
	case cfg.MaxWait == 0:
		cfg.MaxWait = 2 * time.Second
	}
	if cfg.PlanCacheSize == 0 {
		cfg.PlanCacheSize = 256
	}
	if cfg.ResultCacheSize == 0 {
		cfg.ResultCacheSize = 1024
	}
	if cfg.TraceRingSize == 0 {
		cfg.TraceRingSize = 32
	}
	if cfg.QualityRingSize == 0 {
		cfg.QualityRingSize = 32
	}
	log := logx.OrDiscard(cfg.Logger)
	s := &Server{
		cfg:     cfg,
		reg:     newRegistry(log),
		plans:   newLRUCache[string, *engine.Plan](cfg.PlanCacheSize),
		results: newLRUCache[string, []byte](cfg.ResultCacheSize),
		adm:     newAdmission(cfg.MaxConcurrent, cfg.MaxWait),
		mux:     http.NewServeMux(),
		started: time.Now(),
		log:     log,
		traces:  newTraceRing(cfg.TraceRingSize),
		quality: newQualityRing(cfg.QualityRingSize),
	}
	s.routes()
	return s
}

// LoadTable loads a dataset from disk (CSV or snapshot, per the spec) and
// registers it.
func (s *Server) LoadTable(spec TableSpec) error { return s.reg.load(spec) }

// RegisterTable registers an already-open storage source — the embedding
// path for programs that construct tables with a Builder or open mmap
// snapshots themselves. The table inherits Config.QueryTimeout.
func (s *Server) RegisterTable(name string, src colstore.Reader) error {
	return s.reg.register(name, "(in-memory)", src, 0, nil)
}

// RegisterLiveTable registers an open ingest table; the server serves
// queries over its rolling views and appends via
// POST /v1/tables/{name}/rows. The server takes ownership: UnloadTable
// (or /v1/admin/unload) closes it.
func (s *Server) RegisterLiveTable(name string, wt *ingest.WritableTable) error {
	return s.reg.registerLive(name, wt.Dir(), wt, 0, nil)
}

// RegisterCoordinatedTable registers a coordinated (scatter-gather)
// table: the server holds no local data and answers queries by fanning
// out across the named shard daemons and folding their partials with
// the engine's merge algebra — byte-identical to a single node over the
// concatenated data (see internal/cluster). Shard order defines the
// global block order and must match the row-range partition (datagen
// -shards writes shards in that order). Each shard daemon must serve
// the same table name.
func (s *Server) RegisterCoordinatedTable(name string, refs []cluster.ShardRef) error {
	return s.reg.registerCoordinated(name, cluster.NewClient(refs), 0, nil)
}

// timeoutFor resolves a table's effective query timeout: the per-table
// setting when present (negative = explicitly none), the server default
// otherwise.
func (s *Server) timeoutFor(e *tableEntry) time.Duration {
	switch {
	case e.queryTimeout > 0:
		return e.queryTimeout
	case e.queryTimeout < 0:
		return 0
	default:
		return s.cfg.QueryTimeout
	}
}

// UnloadTable removes a table from the registry and closes its storage,
// failing (errors matching "table busy") while requests are in flight.
func (s *Server) UnloadTable(name string) error { return s.reg.unload(name) }

// Tables lists the registered tables.
func (s *Server) Tables() []TableInfo { return s.reg.list() }

// Handler returns the HTTP handler serving the /v1 API.
func (s *Server) Handler() http.Handler { return s.mux }
