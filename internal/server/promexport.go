package server

import (
	"net/http"
	"runtime/debug"
	"sort"
	"strconv"
	"sync"
	"time"

	"fastmatch/internal/obs/metrics"
)

// buildInfo resolves the binary's version metadata once. Shared by
// /metrics (fastmatch_build_info) and /v1/healthz.
var buildInfo = sync.OnceValue(func() (bi struct {
	Version, Revision, GoVersion string
}) {
	bi.Version = "unknown"
	info, ok := debug.ReadBuildInfo()
	if !ok {
		return bi
	}
	bi.GoVersion = info.GoVersion
	if v := info.Main.Version; v != "" && v != "(devel)" {
		bi.Version = v
	}
	for _, s := range info.Settings {
		if s.Key == "vcs.revision" {
			bi.Revision = s.Value
		}
	}
	return bi
})

// handleMetrics serves GET /metrics in the Prometheus text exposition
// format. Every series is rendered from the exact same snapshots
// /v1/stats serves (registry metrics, cache stats, admission stats), so
// the two endpoints can never disagree about a counter.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	tables := s.reg.metricsSnapshot()
	names := make([]string, 0, len(tables))
	for name := range tables {
		names = append(names, name)
	}
	sort.Strings(names)

	pw := metrics.NewWriter()

	bi := buildInfo()
	pw.Gauge("fastmatch_build_info", "Build metadata; value is always 1.").
		Sample(1, "version", bi.Version, "revision", bi.Revision, "go_version", bi.GoVersion)
	pw.Gauge("fastmatch_uptime_seconds", "Seconds since the server started.").
		Sample(time.Since(s.started).Seconds())
	pw.Gauge("fastmatch_tables", "Registered tables.").Sample(float64(len(tables)))

	// Per-table request counters. The outcome split reconstructs "ok"
	// from the same fields /v1/stats reports, so the two endpoints agree
	// by construction.
	reqs := pw.Counter("fastmatch_requests_total", "Query requests by table and outcome.")
	for _, n := range names {
		m := tables[n]
		reqs.Sample(float64(m.Requests-m.Errors-m.Canceled-m.TimedOut), "table", n, "outcome", "ok")
		reqs.Sample(float64(m.Errors), "table", n, "outcome", "failed")
		reqs.Sample(float64(m.Canceled), "table", n, "outcome", "canceled")
		reqs.Sample(float64(m.TimedOut), "table", n, "outcome", "timed_out")
	}
	partials := pw.Counter("fastmatch_partial_results_total", "Responses served with a best-effort partial answer.")
	for _, n := range names {
		partials.Sample(float64(tables[n].PartialResults), "table", n)
	}

	// Coordinated tables: per-shard client health and traffic, labeled
	// by coordinator table and shard name. Tables without shards emit no
	// series. The latency pair follows the Prometheus summary convention
	// (_sum seconds / _count observations) so avg round-trip is
	// rate(sum)/rate(count).
	shardHealthy := pw.Gauge("fastmatch_shard_healthy", "Whether the shard's most recent call succeeded (1) or failed (0).")
	shardReqs := pw.Counter("fastmatch_shard_requests_total", "Shard HTTP attempts (retries included).")
	shardErrs := pw.Counter("fastmatch_shard_errors_total", "Failed shard HTTP attempts.")
	shardRetries := pw.Counter("fastmatch_shard_retries_total", "Shard call re-attempts after a failure.")
	shardLatSum := pw.Counter("fastmatch_shard_latency_seconds_sum", "Total shard round-trip seconds.")
	shardLatCount := pw.Counter("fastmatch_shard_latency_seconds_count", "Shard round-trips measured.")
	for _, n := range names {
		for _, sc := range tables[n].Shards {
			healthy := 0.0
			if sc.Healthy {
				healthy = 1
			}
			shardHealthy.Sample(healthy, "table", n, "shard", sc.Name)
			shardReqs.Sample(float64(sc.Requests), "table", n, "shard", sc.Name)
			shardErrs.Sample(float64(sc.Errors), "table", n, "shard", sc.Name)
			shardRetries.Sample(float64(sc.Retries), "table", n, "shard", sc.Name)
			shardLatSum.Sample(float64(sc.LatencySumNS)/1e9, "table", n, "shard", sc.Name)
			shardLatCount.Sample(float64(sc.LatencyCount), "table", n, "shard", sc.Name)
		}
	}

	type tableCounter struct {
		name, help string
		get        func(TableMetrics) float64
	}
	for _, tc := range []tableCounter{
		{"fastmatch_result_cache_hits_total", "Whole-result cache hits.",
			func(m TableMetrics) float64 { return float64(m.ResultCacheHits) }},
		{"fastmatch_result_cache_misses_total", "Whole-result cache misses.",
			func(m TableMetrics) float64 { return float64(m.ResultCacheMisses) }},
		{"fastmatch_plan_cache_hits_total", "Plan cache hits (result-cache misses only).",
			func(m TableMetrics) float64 { return float64(m.PlanCacheHits) }},
		{"fastmatch_plan_cache_misses_total", "Plan cache misses (result-cache misses only).",
			func(m TableMetrics) float64 { return float64(m.PlanCacheMisses) }},
		{"fastmatch_blocks_read_total", "Blocks read by engine runs.",
			func(m TableMetrics) float64 { return float64(m.IO.BlocksRead) }},
		{"fastmatch_blocks_skipped_total", "Blocks skipped by sampling lookahead.",
			func(m TableMetrics) float64 { return float64(m.IO.BlocksSkipped) }},
		{"fastmatch_blocks_pruned_total", "Blocks pruned by zone-map skip masks.",
			func(m TableMetrics) float64 { return float64(m.IO.BlocksPruned) }},
		{"fastmatch_tuples_read_total", "Tuples consumed by engine runs.",
			func(m TableMetrics) float64 { return float64(m.IO.TuplesRead) }},
		{"fastmatch_kernel_blocks_total", "Blocks processed by vectorized scan kernels.",
			func(m TableMetrics) float64 { return float64(m.IO.KernelBlocks) }},
		{"fastmatch_wraps_total", "Circular-scan wraparounds.",
			func(m TableMetrics) float64 { return float64(m.IO.Wraps) }},
		{"fastmatch_histsim_rounds_total", "HistSim stage-2 refinement rounds.",
			func(m TableMetrics) float64 { return float64(m.Rounds) }},
		{"fastmatch_sampler_runs_total", "Sampling-executor runs.",
			func(m TableMetrics) float64 { return float64(m.SamplerRuns) }},
		{"fastmatch_sampler_parallel_runs_total", "Sampling runs with more than one worker.",
			func(m TableMetrics) float64 { return float64(m.SamplerParallelRuns) }},
		{"fastmatch_sampler_chunks_total", "Committed sampling planner chunks.",
			func(m TableMetrics) float64 { return float64(m.SamplerChunks) }},
		{"fastmatch_append_requests_total", "Row-append requests.",
			func(m TableMetrics) float64 { return float64(m.AppendRequests) }},
		{"fastmatch_appended_rows_total", "Rows appended.",
			func(m TableMetrics) float64 { return float64(m.AppendedRows) }},
		{"fastmatch_append_errors_total", "Failed row-append requests.",
			func(m TableMetrics) float64 { return float64(m.AppendErrors) }},
		{"fastmatch_quality_runs_total", "Runs that carried an answer-quality report.",
			func(m TableMetrics) float64 { return float64(m.QualityRuns) }},
		{"fastmatch_quality_truncated_total", "Quality-reporting runs cut short before the guarantee held.",
			func(m TableMetrics) float64 { return float64(m.QualityTruncatedRuns) }},
		{"fastmatch_audit_runs_total", "Shadow audits attempted (exact re-executions of sampled answers).",
			func(m TableMetrics) float64 { return float64(m.AuditRuns) }},
		{"fastmatch_audit_errors_total", "Shadow audits that failed or were skipped at capacity.",
			func(m TableMetrics) float64 { return float64(m.AuditErrors) }},
		{"fastmatch_audit_guarantee_violations_total", "Audited answers violating the epsilon-tolerant separation guarantee.",
			func(m TableMetrics) float64 { return float64(m.AuditGuaranteeViolations) }},
	} {
		fam := pw.Counter(tc.name, tc.help)
		for _, n := range names {
			fam.Sample(tc.get(tables[n]), "table", n)
		}
	}

	samples := pw.Counter("fastmatch_samples_total", "HistSim samples drawn, by algorithm stage.")
	for _, n := range names {
		m := tables[n]
		samples.Sample(float64(m.SamplesStage1), "table", n, "stage", "1")
		samples.Sample(float64(m.SamplesStage2), "table", n, "stage", "2")
		samples.Sample(float64(m.SamplesStage3), "table", n, "stage", "3")
	}

	// Per-worker sampling fan-out: one series per worker slot that has
	// ever read a block for the table.
	wblocks := pw.Counter("fastmatch_sampler_worker_blocks_total", "Blocks read by each sampling worker.")
	wtuples := pw.Counter("fastmatch_sampler_worker_tuples_total", "Tuples read by each sampling worker.")
	for _, n := range names {
		m := tables[n]
		for i := range m.SamplerWorkerBlocks {
			worker := strconv.Itoa(i)
			wblocks.Sample(float64(m.SamplerWorkerBlocks[i]), "table", n, "worker", worker)
			wtuples.Sample(float64(m.SamplerWorkerTuples[i]), "table", n, "worker", worker)
		}
	}

	lat := pw.HistogramFamily("fastmatch_request_duration_seconds", "Query request latency.")
	for _, n := range names {
		lat.Histogram(tables[n].LatencyHist, "table", n)
	}

	// Answer-quality distributions and the last observed margin. The
	// margin gauge is only meaningful after a quality-reporting run, so
	// tables without one emit no series.
	qm := pw.Gauge("fastmatch_quality_final_margin", "Most recent quality-reporting run's observed separation margin.")
	for _, n := range names {
		if tables[n].QualityRuns > 0 {
			qm.Sample(tables[n].QualityFinalMargin, "table", n)
		}
	}
	qr := pw.HistogramFamily("fastmatch_quality_rounds", "Stage-2 refinement rounds per quality-reporting run.")
	for _, n := range names {
		qr.Histogram(tables[n].QualityRoundsHist, "table", n)
	}
	ap := pw.HistogramFamily("fastmatch_audit_precision_at_k", "Ground-truth precision@k measured by shadow audits.")
	for _, n := range names {
		ap.Histogram(tables[n].AuditPrecisionHist, "table", n)
	}

	// Ingest state (live tables only; static tables emit no series).
	type ingestGauge struct {
		name, help string
		get        func(TableMetrics) float64
	}
	for _, ig := range []ingestGauge{
		{"fastmatch_ingest_rows", "Live table rows (sealed + unsealed).",
			func(m TableMetrics) float64 { return float64(m.Ingest.Rows) }},
		{"fastmatch_ingest_persisted_rows", "Rows persisted in compacted segment files.",
			func(m TableMetrics) float64 { return float64(m.Ingest.PersistedRows) }},
		{"fastmatch_ingest_generation", "Live table data generation.",
			func(m TableMetrics) float64 { return float64(m.Ingest.Generation) }},
		{"fastmatch_ingest_segments", "Live sealed segments.",
			func(m TableMetrics) float64 { return float64(m.Ingest.Segments) }},
		{"fastmatch_ingest_segment_pins", "Sum of live segment reference counts.",
			func(m TableMetrics) float64 { return float64(m.Ingest.SegmentPins) }},
		{"fastmatch_ingest_wal_bytes", "Live write-ahead log size in bytes.",
			func(m TableMetrics) float64 { return float64(m.Ingest.WALBytes) }},
	} {
		fam := pw.Gauge(ig.name, ig.help)
		for _, n := range names {
			if tables[n].Ingest != nil {
				fam.Sample(ig.get(tables[n]), "table", n)
			}
		}
	}
	for _, ic := range []ingestGauge{
		{"fastmatch_ingest_wal_syncs_total", "WAL fsync calls.",
			func(m TableMetrics) float64 { return float64(m.Ingest.WALSyncs) }},
		{"fastmatch_ingest_replayed_rows_total", "Rows recovered from the WAL at open.",
			func(m TableMetrics) float64 { return float64(m.Ingest.ReplayedRows) }},
		{"fastmatch_ingest_seals_total", "Segment seal events.",
			func(m TableMetrics) float64 { return float64(m.Ingest.Seals) }},
		{"fastmatch_ingest_compactions_total", "Completed compaction cycles.",
			func(m TableMetrics) float64 { return float64(m.Ingest.Compactions) }},
		{"fastmatch_ingest_compact_errors_total", "Failed compaction cycles.",
			func(m TableMetrics) float64 { return float64(m.Ingest.CompactErrors) }},
	} {
		fam := pw.Counter(ic.name, ic.help)
		for _, n := range names {
			if tables[n].Ingest != nil {
				fam.Sample(ic.get(tables[n]), "table", n)
			}
		}
	}

	// Server-wide caches and admission, from the same snapshots /v1/stats
	// serves.
	plan, result := s.plans.Stats(), s.results.Stats()
	ce := pw.Gauge("fastmatch_cache_entries", "Current cache entries.")
	ce.Sample(float64(plan.Entries), "cache", "plan")
	ce.Sample(float64(result.Entries), "cache", "result")
	cc := pw.Gauge("fastmatch_cache_capacity", "Configured cache capacity.")
	cc.Sample(float64(plan.Capacity), "cache", "plan")
	cc.Sample(float64(result.Capacity), "cache", "result")
	ch := pw.Counter("fastmatch_cache_hits_total", "Cache hits.")
	ch.Sample(float64(plan.Hits), "cache", "plan")
	ch.Sample(float64(result.Hits), "cache", "result")
	cm := pw.Counter("fastmatch_cache_misses_total", "Cache misses.")
	cm.Sample(float64(plan.Misses), "cache", "plan")
	cm.Sample(float64(result.Misses), "cache", "result")

	adm := s.adm.stats()
	pw.Gauge("fastmatch_admission_limit", "Concurrent engine-run bound.").Sample(float64(adm.Limit))
	pw.Gauge("fastmatch_admission_in_flight", "Engine runs currently holding a slot.").Sample(float64(adm.InFlight))
	pw.Gauge("fastmatch_admission_waiting", "Requests currently queued for a slot.").Sample(float64(adm.Waiting))
	pw.Counter("fastmatch_admission_rejected_total", "Requests rejected at capacity (503).").Sample(float64(adm.Rejected))
	pw.Counter("fastmatch_admission_canceled_total", "Queued requests abandoned by their client.").Sample(float64(adm.Canceled))
	pw.Counter("fastmatch_admission_waits_total", "Requests that ever queued for a slot.").Sample(float64(adm.Waits))
	pw.HistogramFamily("fastmatch_admission_wait_seconds", "Time spent queued for an admission slot.").
		Histogram(s.adm.waitHist.Snapshot())

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(pw.Bytes())
}
