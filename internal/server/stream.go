package server

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"sync"
	"time"

	"fastmatch/internal/cluster"
	"fastmatch/internal/engine"
	"fastmatch/internal/obs/trace"
)

// The NDJSON streaming form of the query API: POST /v1/query/stream
// answers with one JSON object per line — zero or more progress frames
// followed by exactly one terminal frame (a result or an error). The
// terminal result payload is byte-identical to what POST /v1/query
// returns for the same request (modulo the Partial flag when the run was
// cut short), so a client can switch between the two endpoints freely.
//
// Frames:
//
//	{"type":"progress","progress":{...engine.Progress...}}
//	{"type":"result","table":...,"cached":...,"duration_ns":...,"result":{...}}
//	{"type":"error","error":"..."}
//
// The run is bound to the request context: a client that disconnects
// mid-stream cancels the underlying scan at its next block boundary.

// StreamFrame is one NDJSON line of a /v1/query/stream response.
type StreamFrame struct {
	// Type is "progress", "result", or "error".
	Type string `json:"type"`
	// QueryID identifies the request (the X-Query-ID header value),
	// carried on the start frame so stream consumers can correlate the
	// run with traces, logs, and /v1/debug/quality without reading
	// response headers.
	QueryID string `json:"query_id,omitempty"`
	// Progress carries interim run state ("progress" frames). The first
	// frame of every stream is a progress frame with phase "start",
	// emitted before the run begins. When the request set "quality":
	// true, round frames carry convergence telemetry (Progress.Quality,
	// per-match CI).
	Progress *engine.Progress `json:"progress,omitempty"`
	// Table/Cached/DurationNS/Trace/Quality/Result mirror the blocking
	// endpoint's response ("result" frames); Trace and Quality are
	// present only when the request asked for them.
	Table      string                `json:"table,omitempty"`
	Cached     bool                  `json:"cached,omitempty"`
	DurationNS int64                 `json:"duration_ns,omitempty"`
	Trace      *trace.Snapshot       `json:"trace,omitempty"`
	Quality    *engine.QualityReport `json:"quality,omitempty"`
	// Shards/MissingShards/Degraded carry per-shard status on a
	// coordinated table's terminal frame, mirroring wireResponse; like
	// Trace they precede Result so result-byte slicing keeps working.
	Shards        []cluster.ShardStatus `json:"shards,omitempty"`
	MissingShards []string              `json:"missing_shards,omitempty"`
	Degraded      bool                  `json:"degraded,omitempty"`
	Result        json.RawMessage       `json:"result,omitempty"`
	// Error describes a failed run ("error" frames).
	Error string `json:"error,omitempty"`
}

// streamWriter serializes NDJSON frames onto the wire, flushing each so
// progress is delivered as it happens, not when the response ends. The
// mutex makes frame writes atomic even if an executor ever emits from a
// worker goroutine.
type streamWriter struct {
	mu  sync.Mutex
	enc *json.Encoder
	fl  http.Flusher
}

func (sw *streamWriter) frame(f StreamFrame) {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	// A write error means the client is gone; the run's context (tied to
	// the connection) is what actually stops the work, so errors here
	// are deliberately dropped.
	_ = sw.enc.Encode(f)
	if sw.fl != nil {
		sw.fl.Flush()
	}
}

func (s *Server) handleQueryStream(w http.ResponseWriter, r *http.Request) {
	pq := s.prepareQuery(w, r)
	if pq == nil {
		return
	}
	defer pq.done()
	if pq.entry.coord != nil {
		s.handleCoordinatedStream(w, r, pq)
		return
	}

	ctx, cancel, timedOut := s.runContext(r, pq)
	defer cancel()

	// Result-cache hits and all pre-run failures use plain HTTP statuses
	// — nothing has been streamed yet, so the client still gets proper
	// error semantics. Cached answers stream a single start frame and
	// the terminal result, preserving the ≥1-progress-frame shape.
	// Traced and quality-carrying requests bypass the cache read, same
	// as the blocking endpoint.
	var cachedPayload []byte
	var cached bool
	if !pq.req.Trace && !pq.req.Quality {
		csp := pq.tr.Start("result_cache")
		cachedPayload, cached = s.results.Get(pq.resultKey)
		csp.SetAttr("hit", cached)
		csp.End()
	}
	var plan *engine.Plan
	var planHit bool
	if !cached {
		if !s.admit(ctx, w, pq) {
			return
		}
		defer s.adm.release()
		if s.testHookRunning != nil {
			s.testHookRunning()
		}
		var err error
		if plan, planHit, err = s.planFor(pq); err != nil {
			pq.fail(w, http.StatusUnprocessableEntity, "planning query: %v", err)
			return
		}
	}

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	fl, _ := w.(http.Flusher)
	sw := &streamWriter{enc: json.NewEncoder(w), fl: fl}

	// Every stream opens with a start frame carrying the query ID:
	// clients can render "query accepted" immediately and correlate the
	// stream with traces and audit records, and even a cached or instant
	// answer keeps the progress-then-result frame shape.
	sw.frame(StreamFrame{Type: "progress", QueryID: pq.id, Progress: &engine.Progress{Phase: "start"}})

	if cached {
		s.finishRequest(pq, outcomeOK, nil, false, true, http.StatusOK, "")
		sw.frame(StreamFrame{
			Type:       "result",
			Table:      pq.req.Table,
			Cached:     true,
			DurationNS: int64(time.Since(pq.began)),
			Result:     json.RawMessage(cachedPayload),
		})
		return
	}

	opts := pq.opts
	opts.OnProgress = func(p engine.Progress) {
		sw.frame(StreamFrame{Type: "progress", Progress: &p})
	}
	res, err := plan.RunContext(ctx, pq.target, opts)

	if err != nil && !(res != nil && res.Partial) {
		switch {
		case errors.Is(err, context.Canceled):
			s.finishRequest(pq, outcomeCanceled, nil, false, false, http.StatusOK, "client closed request")
		case errors.Is(err, context.DeadlineExceeded):
			s.finishRequest(pq, outcomeTimedOut, nil, false, false, http.StatusOK, "query timed out")
			sw.frame(StreamFrame{Type: "error", Error: "query timed out before any result was available"})
		default:
			s.finishRequest(pq, outcomeFailed, nil, false, false, http.StatusOK, err.Error())
			sw.frame(StreamFrame{Type: "error", Error: "running query: " + err.Error()})
		}
		return
	}
	if err != nil && errors.Is(err, context.Canceled) && !timedOut() {
		// Partial work, but the client is gone: account the cancellation
		// (including the I/O the aborted scan did); no one is listening
		// for a frame.
		s.finishRequest(pq, outcomeCanceled, res, planHit, false, http.StatusOK, "client closed request")
		return
	}

	payload, merr := json.Marshal(toPayload(res))
	if merr != nil {
		s.finishRequest(pq, outcomeFailed, nil, false, false, http.StatusOK, "encoding result: "+merr.Error())
		sw.frame(StreamFrame{Type: "error", Error: "encoding result: " + merr.Error()})
		return
	}
	oc := outcomeOK
	if res.Partial {
		if timedOut() {
			oc = outcomeTimedOut
		}
	} else {
		// Identical seeded requests on the blocking endpoint reuse this
		// exact payload — the byte-identity guarantee across endpoints.
		s.results.Put(pq.resultKey, payload)
	}
	snap := s.finishRequest(pq, oc, res, planHit, false, http.StatusOK, "")
	s.recordQuality(pq, plan, res)
	frame := StreamFrame{
		Type:       "result",
		Table:      pq.req.Table,
		DurationNS: int64(time.Since(pq.began)),
		Result:     json.RawMessage(payload),
	}
	if pq.req.Trace {
		frame.Trace = &snap
	}
	if pq.req.Quality {
		frame.Quality = res.Quality
	}
	sw.frame(frame)
}
