package server

import (
	"container/list"
	"sync"
)

// lruCache is a thread-safe fixed-capacity LRU map with hit/miss
// accounting. The server instantiates two: a plan cache (query shape →
// *engine.Plan, so repeated query shapes skip planning and index lookups)
// and a result cache (full request fingerprint → encoded result payload;
// sound because runs are deterministic given their seed, so equal
// fingerprints imply byte-identical results).
type lruCache[K comparable, V any] struct {
	mu     sync.Mutex
	cap    int
	ll     *list.List // front = most recent
	items  map[K]*list.Element
	hits   int64
	misses int64
}

type lruEntry[K comparable, V any] struct {
	key K
	val V
}

// newLRUCache creates a cache holding up to capacity entries; capacity ≤ 0
// disables caching (every Get misses, Put is a no-op).
func newLRUCache[K comparable, V any](capacity int) *lruCache[K, V] {
	return &lruCache[K, V]{
		cap:   capacity,
		ll:    list.New(),
		items: make(map[K]*list.Element),
	}
}

// Get returns the cached value and marks it most-recently-used.
func (c *lruCache[K, V]) Get(key K) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		c.hits++
		return el.Value.(*lruEntry[K, V]).val, true
	}
	c.misses++
	var zero V
	return zero, false
}

// Put inserts or refreshes a value, evicting the least-recently-used entry
// when over capacity.
func (c *lruCache[K, V]) Put(key K, val V) {
	if c.cap <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*lruEntry[K, V]).val = val
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&lruEntry[K, V]{key: key, val: val})
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*lruEntry[K, V]).key)
	}
}

// CacheStats is a point-in-time cache counters snapshot.
type CacheStats struct {
	// Hits and Misses count Get outcomes since startup.
	Hits   int64 `json:"hits"`
	Misses int64 `json:"misses"`
	// Entries is the current entry count; Capacity the configured bound.
	Entries  int `json:"entries"`
	Capacity int `json:"capacity"`
}

// Stats returns a snapshot of the cache counters.
func (c *lruCache[K, V]) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{Hits: c.hits, Misses: c.misses, Entries: c.ll.Len(), Capacity: c.cap}
}
