package server

import (
	"encoding/json"
	"fmt"
	"net/http"

	"fastmatch/internal/cluster"
)

// handleInternalPartial serves POST /v1/internal/partial — the
// shard-internal endpoint coordinators fold queries through. Two ops:
// "meta" answers the plan's shard metadata (domains, block counts, data
// generation) for coordinator validation and cache keying; "segment"
// executes one stateless slice of a global run (Plan.RunShardSegment).
// Segments carry all cross-call state in the request, so retries are
// harmless and any shard replica could answer them.
//
// The endpoint shares the plan cache with /v1/query: a shard serving
// both direct queries and coordinated segments for the same query shape
// resolves one plan, not two. It deliberately skips admission — the
// coordinator's fan-out window already bounds in-flight segments per
// query, and a shard queueing segments behind its own local queries
// would stall the whole cluster fold.
func (s *Server) handleInternalPartial(w http.ResponseWriter, r *http.Request) {
	var preq cluster.PartialRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&preq); err != nil {
		writeError(w, http.StatusBadRequest, "decoding partial request: %v", err)
		return
	}
	entry, ok := s.reg.acquire(preq.Table)
	if !ok {
		writeError(w, http.StatusNotFound, "no table %q (see /v1/tables)", preq.Table)
		return
	}
	defer entry.release()
	if entry.coord != nil {
		writeError(w, http.StatusBadRequest,
			"table %q is itself coordinated: internal partials run on shard daemons, not coordinators", preq.Table)
		return
	}
	eng, gen, releaseView, err := entry.engineNow()
	if err != nil {
		writeError(w, http.StatusServiceUnavailable, "table %q unavailable: %v", preq.Table, err)
		return
	}
	defer releaseView()

	var spec QuerySpec
	if err := json.Unmarshal(preq.Query, &spec); err != nil {
		writeError(w, http.StatusBadRequest, "decoding query spec: %v", err)
		return
	}
	q, err := spec.toQuery(eng)
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, "invalid query: %v", err)
		return
	}
	qfp, err := q.Fingerprint()
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, "invalid query: %v", err)
		return
	}
	planKey := fmt.Sprintf("%s\x00%d\x00%d\x00%s", preq.Table, entry.incarnation, gen, qfp)
	plan, ok := s.plans.Get(planKey)
	if !ok {
		if plan, err = eng.Prepare(q); err != nil {
			writeError(w, http.StatusUnprocessableEntity, "planning query: %v", err)
			return
		}
		s.plans.Put(planKey, plan)
	}

	switch preq.Op {
	case "meta":
		m := plan.ShardMeta()
		m.Generation = gen
		writeJSON(w, http.StatusOK, cluster.PartialResponse{Meta: &m})
	case "segment":
		if preq.Segment == nil {
			writeError(w, http.StatusBadRequest, "segment op needs a segment")
			return
		}
		segRes, err := plan.RunShardSegment(r.Context(), preq.Segment)
		if err != nil {
			writeError(w, http.StatusUnprocessableEntity, "running segment: %v", err)
			return
		}
		writeJSON(w, http.StatusOK, cluster.PartialResponse{Segment: segRes})
	default:
		writeError(w, http.StatusBadRequest, "unknown op %q (want meta or segment)", preq.Op)
	}
}
