package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"

	"fastmatch/internal/obs/trace"
)

// Observability suite: /metrics exposition, traced queries, the trace
// ring, /v1/explain, healthz build info, query IDs, and the latency
// quantile estimator.

// metricLine matches one Prometheus sample: metric name, optional
// {label="value",...} block, and a value. Comment lines are checked
// separately.
var metricLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*"(,[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*")*\})? (NaN|[+-]?Inf|[-+0-9.eE]+)$`)

// scrapeMetrics fetches /metrics and returns the parsed samples keyed by
// the full series identity (name{labels}).
func scrapeMetrics(t testing.TB, url string) (map[string]float64, string) {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: %s", resp.Status)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("content type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	doc := string(body)
	samples := make(map[string]float64)
	for i, line := range strings.Split(strings.TrimRight(doc, "\n"), "\n") {
		if strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE ") {
			continue
		}
		if strings.HasPrefix(line, "#") || line == "" {
			t.Fatalf("line %d: unexpected comment/blank line %q", i+1, line)
		}
		if !metricLine.MatchString(line) {
			t.Fatalf("line %d: malformed sample %q", i+1, line)
		}
		sp := strings.LastIndexByte(line, ' ')
		v, err := strconv.ParseFloat(line[sp+1:], 64)
		if err != nil {
			t.Fatalf("line %d: bad value in %q: %v", i+1, line, err)
		}
		samples[line[:sp]] = v
	}
	return samples, doc
}

// TestMetricsExpositionParsesAndAgreesWithStats drives a few requests
// (cache miss, cache hit, a failure) and checks every /metrics line
// parses and the headline series agree with /v1/stats — same snapshots,
// same numbers.
func TestMetricsExpositionParsesAndAgreesWithStats(t *testing.T) {
	_, _, ts := newTestServer(t, Config{})

	req := baseRequest(21, "scanmatch")
	if code, _ := postQuery(t, ts.URL, req); code != http.StatusOK {
		t.Fatalf("miss query: %d", code)
	}
	if code, rep := postQuery(t, ts.URL, req); code != http.StatusOK || !rep.Cached {
		t.Fatalf("hit query: %d cached=%v", code, rep.Cached)
	}
	bad := req
	bad.Table = "absent"
	if code, _ := postQuery(t, ts.URL, bad); code != http.StatusNotFound {
		t.Fatalf("bad query: %d", code)
	}

	samples, doc := scrapeMetrics(t, ts.URL)
	stats := getStats(t, ts.URL)
	tm := stats.Tables["fixture"]

	ok := float64(tm.Requests - tm.Errors - tm.Canceled - tm.TimedOut)
	checks := map[string]float64{
		`fastmatch_tables 1`: -1, // presence-only, value checked below
		`fastmatch_requests_total{table="fixture",outcome="ok"}`:    ok,
		`fastmatch_result_cache_hits_total{table="fixture"}`:        float64(tm.ResultCacheHits),
		`fastmatch_result_cache_misses_total{table="fixture"}`:      float64(tm.ResultCacheMisses),
		`fastmatch_plan_cache_misses_total{table="fixture"}`:        float64(tm.PlanCacheMisses),
		`fastmatch_blocks_read_total{table="fixture"}`:              float64(tm.IO.BlocksRead),
		`fastmatch_tuples_read_total{table="fixture"}`:              float64(tm.IO.TuplesRead),
		`fastmatch_samples_total{table="fixture",stage="1"}`:        float64(tm.SamplesStage1),
		`fastmatch_request_duration_seconds_count{table="fixture"}`: float64(tm.Requests),
		`fastmatch_cache_hits_total{cache="result"}`:                float64(stats.ResultCache.Hits),
		`fastmatch_cache_entries{cache="result"}`:                   float64(stats.ResultCache.Entries),
		`fastmatch_admission_in_flight`:                             0,
	}
	delete(checks, `fastmatch_tables 1`)
	if got := samples[`fastmatch_tables`]; got != 1 {
		t.Fatalf("fastmatch_tables = %g", got)
	}
	for series, want := range checks {
		got, found := samples[series]
		if !found {
			t.Fatalf("series %q absent from /metrics:\n%s", series, doc)
		}
		if got != want {
			t.Fatalf("%s = %g, /v1/stats says %g", series, got, want)
		}
	}
	if samples[`fastmatch_requests_total{table="fixture",outcome="ok"}`] < 2 {
		t.Fatal("expected at least the miss and the hit to count as ok")
	}
	// The histogram's +Inf bucket must equal its _count.
	inf := samples[`fastmatch_request_duration_seconds_bucket{table="fixture",le="+Inf"}`]
	if inf != float64(tm.Requests) {
		t.Fatalf("+Inf bucket %g != request count %d", inf, tm.Requests)
	}
	if !strings.Contains(doc, "# TYPE fastmatch_request_duration_seconds histogram\n") {
		t.Fatal("missing histogram TYPE line")
	}
	if _, found := samples[`fastmatch_build_info{version="unknown",revision="",go_version=""}`]; !found {
		// Build metadata varies by toolchain; just require the family.
		if !strings.Contains(doc, "fastmatch_build_info{") {
			t.Fatal("missing fastmatch_build_info")
		}
	}
}

// TestTracedQueryReturnsSpanTree exercises the wire contract: trace:true
// answers with a span tree whose IO sums to the result's IO, with result
// bytes identical to the untraced (and even cached) answer, and never
// marked cached.
func TestTracedQueryReturnsSpanTree(t *testing.T) {
	_, _, ts := newTestServer(t, Config{})
	req := baseRequest(33, "scanmatch")

	code, plain := postQuery(t, ts.URL, req)
	if code != http.StatusOK {
		t.Fatalf("plain query: %d", code)
	}

	req.Trace = true
	body, _ := json.Marshal(req)
	resp, err := http.Post(ts.URL+"/v1/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("traced query: %s", resp.Status)
	}
	if resp.Header.Get("X-Query-ID") == "" {
		t.Fatal("no X-Query-ID header")
	}
	var traced struct {
		Cached bool            `json:"cached"`
		Trace  *trace.Snapshot `json:"trace"`
		Result json.RawMessage `json:"result"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&traced); err != nil {
		t.Fatal(err)
	}
	if traced.Cached {
		t.Fatal("traced request served from cache")
	}
	if traced.Trace == nil || len(traced.Trace.Spans) == 0 {
		t.Fatal("no span tree in traced response")
	}
	if !bytes.Equal(traced.Result, plain.Result) {
		t.Fatalf("traced result bytes diverge:\n%s\nvs\n%s", traced.Result, plain.Result)
	}
	run := traced.Trace.Find("run")
	if run == nil {
		t.Fatalf("no run span: %+v", traced.Trace.Spans)
	}
	if run.Attrs["executor"] != "ScanMatch" {
		t.Fatalf("executor attr %v", run.Attrs)
	}
	var res struct {
		IO struct {
			BlocksRead int64 `json:"blocks_read"`
			TuplesRead int64 `json:"tuples_read"`
		} `json:"io"`
	}
	if err := json.Unmarshal(traced.Result, &res); err != nil {
		t.Fatal(err)
	}
	sum := traced.Trace.SumIO()
	if sum.BlocksRead != res.IO.BlocksRead || sum.TuplesRead != res.IO.TuplesRead {
		t.Fatalf("span IO sum %+v != result IO %+v", sum, res.IO)
	}
	for _, name := range []string{"decode", "admission", "plan_cache", "resolve_target"} {
		if traced.Trace.Find(name) == nil {
			t.Fatalf("missing %q span: %+v", name, traced.Trace.Spans)
		}
	}

	// The traced run produced a complete result: the NEXT untraced request
	// must be a cache hit with the same bytes.
	req.Trace = false
	code, hit := postQuery(t, ts.URL, req)
	if code != http.StatusOK || !hit.Cached {
		t.Fatalf("follow-up not served from cache: %d %v", code, hit.Cached)
	}
	if !bytes.Equal(hit.Result, plain.Result) {
		t.Fatal("cached result diverges from original")
	}
}

func TestDebugTracesRingAndExplain(t *testing.T) {
	_, tbl, ts := newTestServer(t, Config{TraceRingSize: 8})
	req := baseRequest(44, "scanmatch")
	if code, _ := postQuery(t, ts.URL, req); code != http.StatusOK {
		t.Fatalf("query: %d", code)
	}

	resp, err := http.Get(ts.URL + "/v1/debug/traces")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var traces TracesResponse
	if err := json.NewDecoder(resp.Body).Decode(&traces); err != nil {
		t.Fatal(err)
	}
	if len(traces.Traces) == 0 {
		t.Fatal("trace ring empty after a query")
	}
	found := false
	for _, sn := range traces.Traces {
		if sn.Find("run") != nil {
			found = true
		}
		if sn.QueryID == "" {
			t.Fatal("ring trace without a query ID")
		}
	}
	if !found {
		t.Fatal("no ring trace contains a run span")
	}

	// Explain: same request body, no execution, plan facts.
	body, _ := json.Marshal(req)
	eresp, err := http.Post(ts.URL+"/v1/explain", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer eresp.Body.Close()
	if eresp.StatusCode != http.StatusOK {
		t.Fatalf("explain: %s", eresp.Status)
	}
	var ex ExplainResponse
	if err := json.NewDecoder(eresp.Body).Decode(&ex); err != nil {
		t.Fatal(err)
	}
	if ex.Table != "fixture" || ex.Executor != "ScanMatch" {
		t.Fatalf("explain header: %+v", ex)
	}
	if ex.Plan.Rows != tbl.NumRows() || ex.Plan.Blocks != tbl.NumBlocks() {
		t.Fatalf("explain plan shape: %+v", ex.Plan)
	}
	if ex.Plan.Groups <= 0 || ex.Plan.Candidates <= 0 {
		t.Fatalf("explain resolved nothing: %+v", ex.Plan)
	}
}

func TestHealthzBuildInfoAndReadiness(t *testing.T) {
	_, _, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h HealthResponse
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Tables != 1 {
		t.Fatalf("healthz: %+v", h)
	}
	if h.GoVersion == "" {
		t.Fatal("no go_version in healthz")
	}
	if h.UptimeNS <= 0 {
		t.Fatal("no uptime")
	}
	if len(h.TableStatus) != 1 || h.TableStatus[0].Name != "fixture" || !h.TableStatus[0].Ready {
		t.Fatalf("table status: %+v", h.TableStatus)
	}
	if h.TableStatus[0].Rows != 20_000 {
		t.Fatalf("rows: %+v", h.TableStatus[0])
	}
}

// TestLatencyQuantileInterpolation pins the type-7 estimator: quantiles
// between order statistics interpolate linearly instead of truncating.
func TestLatencyQuantileInterpolation(t *testing.T) {
	m := newTableMetrics()
	// Four observations: 10, 20, 30, 40 ms.
	for i := 1; i <= 4; i++ {
		m.observe(time.Duration(i)*10*time.Millisecond, nil, outcomeOK, false, true)
	}
	lq := m.snapshot().LatencyMS
	if lq.Window != 4 {
		t.Fatalf("window = %d", lq.Window)
	}
	// p50 over {10,20,30,40}: pos 1.5 → 20 + 0.5*(30-20) = 25.
	if got := lq.P50; got != 25 {
		t.Fatalf("p50 = %g, want 25", got)
	}
	// p90: pos 2.7 → 30 + 0.7*10 = 37.
	if got := lq.P90; got < 36.999 || got > 37.001 {
		t.Fatalf("p90 = %g, want 37", got)
	}
	if lq.Max != 40 {
		t.Fatalf("max = %g", lq.Max)
	}
}

// TestLatencyQuantileRingWrap fills the ring past capacity and checks the
// estimator reads the whole window (not a truncated or stale slice).
func TestLatencyQuantileRingWrap(t *testing.T) {
	m := newTableMetrics()
	// 3×window observations of 5ms, then a full window of 10ms: after the
	// wrap the ring holds only 10ms values.
	for i := 0; i < 3*latencyWindow; i++ {
		m.observe(5*time.Millisecond, nil, outcomeOK, false, true)
	}
	for i := 0; i < latencyWindow; i++ {
		m.observe(10*time.Millisecond, nil, outcomeOK, false, true)
	}
	lq := m.snapshot().LatencyMS
	if lq.Window != latencyWindow {
		t.Fatalf("window = %d, want %d", lq.Window, latencyWindow)
	}
	if lq.P50 != 10 || lq.P99 != 10 || lq.Max != 10 {
		t.Fatalf("post-wrap quantiles see stale values: %+v", lq)
	}
	if m.snapshot().Requests != int64(4*latencyWindow) {
		t.Fatalf("requests = %d", m.snapshot().Requests)
	}
}

// TestMetricsAfterPredicateQueryCountsPruning mirrors the smoke script's
// assertion: a pruning-friendly query must surface nonzero
// fastmatch_blocks_pruned_total.
func TestMetricsAfterPredicateQueryCountsPruning(t *testing.T) {
	_, _, ts := newTestServer(t, Config{})
	req := baseRequest(55, "scanmatch")
	req.Query = QuerySpec{
		CandidatePreds: []PredSpec{
			{Column: "Z", Value: "Z_0"},
			{Column: "Z", Value: "Z_1"},
		},
		X: []string{"X"},
	}
	code, _ := postQuery(t, ts.URL, req)
	if code != http.StatusOK {
		t.Fatalf("predicate query: %d", code)
	}
	samples, doc := scrapeMetrics(t, ts.URL)
	stats := getStats(t, ts.URL)
	want := float64(stats.Tables["fixture"].IO.BlocksPruned)
	got := samples[`fastmatch_blocks_pruned_total{table="fixture"}`]
	if got != want {
		t.Fatalf("blocks_pruned_total = %g, stats say %g\n%s", got, want, doc)
	}
}

// TestQueryIDsAreUnique checks consecutive requests get distinct IDs.
func TestQueryIDsAreUnique(t *testing.T) {
	_, _, ts := newTestServer(t, Config{})
	seen := map[string]bool{}
	req := baseRequest(66, "scanmatch")
	body, _ := json.Marshal(req)
	for i := 0; i < 4; i++ {
		resp, err := http.Post(ts.URL+"/v1/query", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		id := resp.Header.Get("X-Query-ID")
		if len(id) != 16 {
			t.Fatalf("query id %q", id)
		}
		if seen[id] {
			t.Fatalf("duplicate query id %q", id)
		}
		seen[id] = true
	}
}

// TestTraceRingOrdering checks the ring keeps the slowest traces in
// duration-descending order and respects its capacity.
func TestTraceRingOrdering(t *testing.T) {
	r := newTraceRing(3)
	mk := func(id string, d time.Duration) trace.Snapshot {
		return trace.Snapshot{QueryID: id, StartTime: time.Now(), DurationNS: d.Nanoseconds()}
	}
	r.record(mk("a", 10*time.Millisecond))
	r.record(mk("b", 30*time.Millisecond))
	r.record(mk("c", 20*time.Millisecond))
	r.record(mk("d", 5*time.Millisecond)) // too fast: ring full, rejected
	r.record(mk("e", 25*time.Millisecond))
	got := r.snapshot()
	if len(got) != 3 {
		t.Fatalf("ring holds %d", len(got))
	}
	ids := fmt.Sprintf("%s%s%s", got[0].QueryID, got[1].QueryID, got[2].QueryID)
	if ids != "bec" {
		t.Fatalf("ring order %q, want \"bec\"", ids)
	}

	if disabled := newTraceRing(-1); disabled != nil {
		disabled.record(mk("x", time.Second))
		if len(disabled.snapshot()) != 0 {
			t.Fatal("disabled ring recorded a trace")
		}
	}
}

// TestSamplerWorkerCountersAndWireByteIdentity drives the same sampling
// query at workers=1 and workers=4 and checks (a) the response payloads
// are byte-identical — the engine's worker-count determinism contract
// holds over the wire — and (b) the per-worker sampler counters show up
// in /v1/stats and /metrics, agreeing with each other.
func TestSamplerWorkerCountersAndWireByteIdentity(t *testing.T) {
	_, _, ts := newTestServer(t, Config{})

	one := baseRequest(55, "syncmatch")
	one.Options.Workers = intp(1)
	four := baseRequest(55, "syncmatch")
	four.Options.Workers = intp(4)

	code, repOne := postQuery(t, ts.URL, one)
	if code != http.StatusOK {
		t.Fatalf("workers=1 query: %d", code)
	}
	code, repFour := postQuery(t, ts.URL, four)
	if code != http.StatusOK {
		t.Fatalf("workers=4 query: %d", code)
	}
	if repFour.Cached {
		t.Fatal("workers=4 served from cache: worker count should be a distinct fingerprint")
	}
	if !bytes.Equal(repOne.Result, repFour.Result) {
		t.Fatalf("workers=4 result diverges from workers=1:\n%s\nvs\n%s", repFour.Result, repOne.Result)
	}

	tm := getStats(t, ts.URL).Tables["fixture"]
	if tm.SamplerRuns < 2 {
		t.Fatalf("SamplerRuns = %d, want >= 2", tm.SamplerRuns)
	}
	if tm.SamplerParallelRuns < 1 {
		t.Fatalf("SamplerParallelRuns = %d, want >= 1", tm.SamplerParallelRuns)
	}
	if tm.SamplerChunks <= 0 {
		t.Fatal("no sampler chunks recorded")
	}
	if len(tm.SamplerWorkerBlocks) < 2 {
		t.Fatalf("per-worker counters track %d workers, want >= 2", len(tm.SamplerWorkerBlocks))
	}
	var blocks, tuples int64
	for i := range tm.SamplerWorkerBlocks {
		blocks += tm.SamplerWorkerBlocks[i]
		tuples += tm.SamplerWorkerTuples[i]
	}
	// Every executed run was a sampling run, so the per-worker sums must
	// account for the table's full I/O.
	if blocks != tm.IO.BlocksRead {
		t.Fatalf("worker blocks sum %d != BlocksRead %d", blocks, tm.IO.BlocksRead)
	}
	if tuples != tm.IO.TuplesRead {
		t.Fatalf("worker tuples sum %d != TuplesRead %d", tuples, tm.IO.TuplesRead)
	}

	samples, doc := scrapeMetrics(t, ts.URL)
	if got := samples[`fastmatch_sampler_parallel_runs_total{table="fixture"}`]; got != float64(tm.SamplerParallelRuns) {
		t.Fatalf("fastmatch_sampler_parallel_runs_total = %g, /v1/stats says %d\n%s", got, tm.SamplerParallelRuns, doc)
	}
	for i, want := range tm.SamplerWorkerBlocks {
		series := fmt.Sprintf(`fastmatch_sampler_worker_blocks_total{table="fixture",worker="%d"}`, i)
		got, found := samples[series]
		if !found {
			t.Fatalf("series %q absent from /metrics", series)
		}
		if got != float64(want) {
			t.Fatalf("%s = %g, /v1/stats says %d", series, got, want)
		}
	}
}
