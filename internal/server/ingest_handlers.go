package server

import (
	"encoding/csv"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"

	"fastmatch/internal/ingest"
)

// Live-ingestion endpoints:
//
//	POST /v1/tables/{name}/rows   append rows to an ingest-backed table
//	POST /v1/admin/unload         drop a table from the registry
//
// The append endpoint accepts two bodies:
//
//   - application/json (default): {"rows": [{"values": {...},
//     "measures": {...}}, ...]} — one atomic batch, acked after its WAL
//     record is durable.
//   - text/csv: a streamed CSV whose header names schema columns and
//     measures in any order; rows are appended in batches of
//     csvAppendBatch, each batch individually acked (a mid-stream error
//     reports how many rows were already durable).

// appendMaxBody bounds a JSON append body; CSV bodies stream and get a
// much larger cap.
const (
	appendMaxBody    = 32 << 20
	csvAppendMaxBody = 1 << 30
	csvAppendBatch   = 4096
)

// errBadAppendBody marks append failures caused by an undecodable or
// malformed request body (as opposed to rows the table rejected, or
// storage faults) — mapped to 422 like ingest.ErrInvalidRow.
var errBadAppendBody = errors.New("malformed append body")

// AppendRequest is the JSON body of POST /v1/tables/{name}/rows.
type AppendRequest struct {
	Rows []ingest.Row `json:"rows"`
}

// AppendResponse is the body of a successful append.
type AppendResponse struct {
	Table string `json:"table"`
	// Appended counts rows made durable by this request.
	Appended int `json:"appended"`
	// TotalRows is the table's row count after the append.
	TotalRows int `json:"total_rows"`
	// Generation is the table's data version after the append.
	Generation uint64 `json:"generation"`
	// Synced reports whether the WAL was fsynced before acking.
	Synced bool `json:"synced"`
}

func (s *Server) handleAppend(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	entry, ok := s.reg.acquire(name)
	if !ok {
		writeError(w, http.StatusNotFound, "no table %q (see /v1/tables)", name)
		return
	}
	defer entry.release()
	if entry.live == nil {
		writeError(w, http.StatusConflict, "table %q: %v (backend %q)", name, errNotIngest,
			entry.eng.Source().Storage().Backend)
		return
	}
	var appended int
	var last ingest.AppendResult
	var err error
	ct := r.Header.Get("Content-Type")
	if strings.HasPrefix(ct, "text/csv") {
		appended, last, err = appendCSV(entry.live, http.MaxBytesReader(w, r.Body, csvAppendMaxBody))
	} else {
		appended, last, err = appendJSON(entry.live, http.MaxBytesReader(w, r.Body, appendMaxBody))
	}
	entry.metrics.observeAppend(appended, err != nil)
	if err != nil {
		// Status reflects blame: bad rows/bodies are the client's (422,
		// don't retry as-is); a closed table is transient (503, retry);
		// anything else is a storage-side fault (500) — e.g. a poisoned
		// WAL — that a retry of the same request won't fix either way.
		status := http.StatusInternalServerError
		switch {
		case errors.Is(err, ingest.ErrClosed):
			w.Header().Set("Retry-After", "1")
			status = http.StatusServiceUnavailable
		case errors.Is(err, ingest.ErrInvalidRow), errors.Is(err, errBadAppendBody):
			status = http.StatusUnprocessableEntity
		}
		// Batches are atomic but a CSV stream is not: surface how much of
		// it was already acked before the failure.
		writeError(w, status, "append to %q: %v (%d rows durable before the error)",
			name, err, appended)
		return
	}
	writeJSON(w, http.StatusOK, AppendResponse{
		Table:      name,
		Appended:   appended,
		TotalRows:  last.TotalRows,
		Generation: last.Generation,
		Synced:     last.Synced,
	})
}

// appendJSON decodes and appends one atomic batch.
func appendJSON(wt *ingest.WritableTable, body io.Reader) (int, ingest.AppendResult, error) {
	var req AppendRequest
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		return 0, ingest.AppendResult{}, fmt.Errorf("%w: decoding body: %v", errBadAppendBody, err)
	}
	res, err := wt.Append(req.Rows)
	if err != nil {
		return 0, ingest.AppendResult{}, err
	}
	return res.Rows, res, nil
}

// appendCSV streams a headered CSV into batched appends.
func appendCSV(wt *ingest.WritableTable, body io.Reader) (int, ingest.AppendResult, error) {
	schema := wt.Schema()
	cr := csv.NewReader(body)
	cr.ReuseRecord = true
	header, err := cr.Read()
	if err != nil {
		return 0, ingest.AppendResult{}, fmt.Errorf("%w: reading CSV header: %v", errBadAppendBody, err)
	}
	// Map header fields onto schema columns and measures; every schema
	// field must appear exactly once (extra CSV columns are an error —
	// the store has no concept of dropping attributes silently).
	colIdx := make(map[string]int, len(schema.Columns))
	measIdx := make(map[string]int, len(schema.Measures))
	isMeasure := make(map[string]bool, len(schema.Measures))
	for _, m := range schema.Measures {
		isMeasure[m] = true
	}
	isColumn := make(map[string]bool, len(schema.Columns))
	for _, c := range schema.Columns {
		isColumn[c] = true
	}
	for i, h := range header {
		switch {
		case isColumn[h]:
			if _, dup := colIdx[h]; dup {
				return 0, ingest.AppendResult{}, fmt.Errorf("%w: CSV header repeats column %q", errBadAppendBody, h)
			}
			colIdx[h] = i
		case isMeasure[h]:
			if _, dup := measIdx[h]; dup {
				return 0, ingest.AppendResult{}, fmt.Errorf("%w: CSV header repeats measure %q", errBadAppendBody, h)
			}
			measIdx[h] = i
		default:
			return 0, ingest.AppendResult{}, fmt.Errorf("%w: CSV header has unknown field %q", errBadAppendBody, h)
		}
	}
	if len(colIdx) != len(schema.Columns) || len(measIdx) != len(schema.Measures) {
		return 0, ingest.AppendResult{}, fmt.Errorf("%w: CSV header covers %d/%d columns and %d/%d measures",
			errBadAppendBody, len(colIdx), len(schema.Columns), len(measIdx), len(schema.Measures))
	}

	var appended int
	var last ingest.AppendResult
	batch := make([]ingest.Row, 0, csvAppendBatch)
	flush := func() error {
		if len(batch) == 0 {
			return nil
		}
		res, err := wt.Append(batch)
		if err != nil {
			return err
		}
		appended += res.Rows
		last = res
		batch = batch[:0]
		return nil
	}
	line := 1
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return appended, last, fmt.Errorf("%w: CSV line %d: %v", errBadAppendBody, line+1, err)
		}
		line++
		row := ingest.Row{Values: make(map[string]string, len(schema.Columns))}
		if len(schema.Measures) > 0 {
			row.Measures = make(map[string]float64, len(schema.Measures))
		}
		for _, c := range schema.Columns {
			row.Values[c] = rec[colIdx[c]]
		}
		for _, m := range schema.Measures {
			v, err := strconv.ParseFloat(rec[measIdx[m]], 64)
			if err != nil {
				return appended, last, fmt.Errorf("%w: CSV line %d: measure %q: %v", errBadAppendBody, line, m, err)
			}
			row.Measures[m] = v
		}
		batch = append(batch, row)
		if len(batch) == csvAppendBatch {
			if err := flush(); err != nil {
				return appended, last, err
			}
		}
	}
	if err := flush(); err != nil {
		return appended, last, err
	}
	if appended == 0 {
		return 0, last, fmt.Errorf("%w: CSV body has no data rows", errBadAppendBody)
	}
	return appended, last, nil
}

// UnloadRequest is the body of POST /v1/admin/unload.
type UnloadRequest struct {
	Name string `json:"name"`
}

func (s *Server) handleAdminUnload(w http.ResponseWriter, r *http.Request) {
	var req UnloadRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "decoding unload request: %v", err)
		return
	}
	switch err := s.reg.unload(req.Name); {
	case err == nil:
		writeJSON(w, http.StatusOK, TablesResponse{Tables: s.reg.list()})
	case errors.Is(err, errTableNotFound):
		writeError(w, http.StatusNotFound, "no table %q", req.Name)
	case errors.Is(err, errTableBusy):
		// In-flight queries hold pinned views/segments; the client should
		// retry once they drain.
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusConflict, "table %q: %v", req.Name, err)
	default:
		writeError(w, http.StatusInternalServerError, "unloading %q: %v", req.Name, err)
	}
}
