package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"fastmatch/internal/colstore"
)

// postStream POSTs to /v1/query/stream and returns the decoded frames.
func postStream(t testing.TB, url string, req QueryRequest) (int, []StreamFrame) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/query/stream", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return resp.StatusCode, nil
	}
	var frames []StreamFrame
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var f StreamFrame
		if err := json.Unmarshal(sc.Bytes(), &f); err != nil {
			t.Fatalf("bad frame %q: %v", sc.Text(), err)
		}
		frames = append(frames, f)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, frames
}

func TestStreamEndpointFramesThenByteIdenticalResult(t *testing.T) {
	_, tbl, ts := newTestServer(t, Config{})
	req := baseRequest(21, "scanmatch")

	status, frames := postStream(t, ts.URL, req)
	if status != http.StatusOK {
		t.Fatalf("stream status %d", status)
	}
	if len(frames) < 2 {
		t.Fatalf("want ≥1 progress + 1 result frame, got %d frames", len(frames))
	}
	for i, f := range frames[:len(frames)-1] {
		if f.Type != "progress" {
			t.Fatalf("frame %d has type %q, want progress", i, f.Type)
		}
		if f.Progress == nil {
			t.Fatalf("progress frame %d carries no payload", i)
		}
	}
	if frames[0].Progress.Phase != "start" {
		t.Fatalf("first frame phase %q, want start", frames[0].Progress.Phase)
	}
	sawRound := false
	for _, f := range frames[:len(frames)-1] {
		if f.Progress.Phase == "stage1" || f.Progress.Phase == "stage2" {
			sawRound = true
			if f.Progress.IO.TuplesRead == 0 {
				t.Fatal("round frame reports zero I/O")
			}
		}
	}
	if !sawRound {
		t.Fatal("no HistSim round frames before the result")
	}
	final := frames[len(frames)-1]
	if final.Type != "result" || final.Cached {
		t.Fatalf("terminal frame: %+v, want uncached result", final)
	}

	// Byte-identity three ways: vs a fresh direct engine run, and vs the
	// blocking endpoint (which must now hit the result cache the stream
	// populated).
	direct := directPayload(t, tbl, req)
	if !bytes.Equal(final.Result, direct) {
		t.Fatalf("stream result differs from direct engine run:\n%s\nvs\n%s", final.Result, direct)
	}
	status, reply := postQuery(t, ts.URL, req)
	if status != http.StatusOK || !reply.Cached {
		t.Fatalf("blocking repeat: status %d cached %v, want cached hit of the streamed payload", status, reply.Cached)
	}
	if !bytes.Equal([]byte(reply.Result), final.Result) {
		t.Fatal("blocking endpoint payload differs from streamed result")
	}
}

func TestStreamCachedAnswerKeepsFrameShape(t *testing.T) {
	_, _, ts := newTestServer(t, Config{})
	req := baseRequest(4, "scanmatch")
	if status, _ := postQuery(t, ts.URL, req); status != http.StatusOK {
		t.Fatal("priming query failed")
	}
	status, frames := postStream(t, ts.URL, req)
	if status != http.StatusOK || len(frames) != 2 {
		t.Fatalf("cached stream: status %d, %d frames, want start+result", status, len(frames))
	}
	if frames[0].Type != "progress" || frames[1].Type != "result" || !frames[1].Cached {
		t.Fatalf("cached stream frames: %+v", frames)
	}
}

// slowServer registers a throttled copy of the fixture table: ~320
// blocks at ≥1ms per block ≈ ≥300ms per full scan, so tests can
// reliably interrupt mid-run.
func slowServer(t testing.TB, cfg Config, timeout time.Duration) (*Server, *httptest.Server) {
	t.Helper()
	tbl := fixtureTable(t)
	s := New(cfg)
	if err := s.reg.register("slow", "(throttled)", colstore.NewThrottledReader(tbl, time.Millisecond), timeout, nil); err != nil {
		t.Fatal(err)
	}
	return s, newHTTPServer(t, s)
}

func slowRequest(seed int64) QueryRequest {
	req := baseRequest(seed, "scan")
	req.Table = "slow"
	return req
}

func TestStreamClientDisconnectCancelsScan(t *testing.T) {
	_, ts := slowServer(t, Config{}, 0)
	body, err := json.Marshal(slowRequest(31))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	httpReq, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/query/stream", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(httpReq)
	if err != nil {
		t.Fatal(err)
	}
	// Read the first frame (the run is now in flight), then vanish.
	br := bufio.NewReader(resp.Body)
	if _, err := br.ReadBytes('\n'); err != nil {
		t.Fatal(err)
	}
	cancel()
	resp.Body.Close()

	// The canceled counter must tick, and the aborted scan's I/O must
	// stop growing.
	deadline := time.Now().Add(5 * time.Second)
	for {
		st := getStats(t, ts.URL).Tables["slow"]
		if st.Canceled >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("canceled counter never ticked: %+v", st)
		}
		time.Sleep(20 * time.Millisecond)
	}
	io1 := getStats(t, ts.URL).Tables["slow"].IO.TuplesRead
	time.Sleep(150 * time.Millisecond)
	io2 := getStats(t, ts.URL).Tables["slow"].IO.TuplesRead
	if io1 != io2 {
		t.Fatalf("IOStats still growing after cancellation: %d -> %d", io1, io2)
	}
	if full := int64(20_000); io1 >= full {
		t.Fatalf("scan ran to completion (%d tuples) despite disconnect", io1)
	}
}

func TestBlockingClientDisconnectCancelsScan(t *testing.T) {
	_, ts := slowServer(t, Config{}, 0)
	body, err := json.Marshal(slowRequest(32))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Millisecond)
	defer cancel()
	httpReq, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/query", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if resp, err := http.DefaultClient.Do(httpReq); err == nil {
		resp.Body.Close()
		t.Fatal("request should have been abandoned by its context")
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		st := getStats(t, ts.URL).Tables["slow"]
		if st.Canceled >= 1 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("canceled counter never ticked: %+v", st)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func TestPerTableTimeoutServesPartial(t *testing.T) {
	_, ts := slowServer(t, Config{}, 80*time.Millisecond)
	// Cold-start caveat: planning (the bitmap-index build, a full block
	// sweep that pays the simulated latency too) is shared and not
	// cancellable, so the very first query's budget can die inside it
	// and 504 with nothing — while still priming the plan cache for
	// everyone after. Prime, then assert the steady-state contract.
	if status, _ := postQuery(t, ts.URL, slowRequest(33)); status != http.StatusOK && status != http.StatusGatewayTimeout {
		t.Fatalf("priming query status %d", status)
	}
	status, reply := postQuery(t, ts.URL, slowRequest(33))
	if status != http.StatusOK {
		t.Fatalf("timed-out query status %d, want 200 + partial result", status)
	}
	var payload ResultPayload
	if err := json.Unmarshal(reply.Result, &payload); err != nil {
		t.Fatal(err)
	}
	if !payload.Partial || payload.Exact {
		t.Fatalf("payload partial=%v exact=%v, want best-effort partial", payload.Partial, payload.Exact)
	}
	if payload.IO.TuplesRead == 0 || payload.IO.TuplesRead >= 20_000 {
		t.Fatalf("partial scan read %d tuples, want mid-run stop", payload.IO.TuplesRead)
	}
	st := getStats(t, ts.URL).Tables["slow"]
	if st.TimedOut < 1 || st.PartialResults < 1 {
		t.Fatalf("timeout counters: %+v", st)
	}
	// Partial results must not be cached.
	if _, reply = postQuery(t, ts.URL, slowRequest(33)); reply.Cached {
		t.Fatal("partial result was served from the result cache")
	}
}

func TestRowBudgetOverWire(t *testing.T) {
	_, _, ts := newTestServer(t, Config{})
	req := baseRequest(34, "scan")
	budget := int64(2_000)
	req.Options.RowBudget = &budget
	status, reply := postQuery(t, ts.URL, req)
	if status != http.StatusOK {
		t.Fatalf("budgeted query status %d", status)
	}
	var payload ResultPayload
	if err := json.Unmarshal(reply.Result, &payload); err != nil {
		t.Fatal(err)
	}
	if !payload.Partial {
		t.Fatal("budgeted run not flagged partial")
	}
	if payload.IO.TuplesRead < budget || payload.IO.TuplesRead > budget+1_000 {
		t.Fatalf("budget enforcement: read %d tuples for budget %d", payload.IO.TuplesRead, budget)
	}
	if _, reply = postQuery(t, ts.URL, req); reply.Cached {
		t.Fatal("partial (budgeted) result was cached")
	}
}

func TestAdmissionQueueAbandonedOnDisconnect(t *testing.T) {
	s, _, ts := newTestServer(t, Config{MaxConcurrent: 1, MaxWait: 10 * time.Second})
	parked := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	s.testHookRunning = func() {
		once.Do(func() {
			close(parked)
			<-release
		})
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		postQuery(t, ts.URL, baseRequest(41, "scanmatch"))
	}()
	<-parked // first request holds the only slot

	// Second request queues for admission, then its client gives up.
	body, err := json.Marshal(baseRequest(42, "scanmatch"))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	httpReq, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/query", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if resp, err := http.DefaultClient.Do(httpReq); err == nil {
		// The server may get the 499 out before the transport aborts.
		if resp.StatusCode != statusClientClosedRequest {
			t.Fatalf("abandoned request answered %d, want %d", resp.StatusCode, statusClientClosedRequest)
		}
		resp.Body.Close()
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		st := getStats(t, ts.URL)
		if st.Admission.Canceled >= 1 && st.Tables["fixture"].Canceled >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("abandonment not accounted: admission %+v, table %+v", st.Admission, st.Tables["fixture"])
		}
		time.Sleep(20 * time.Millisecond)
	}
	if st := getStats(t, ts.URL); st.Admission.Rejected != 0 {
		t.Fatalf("client disconnect was misfiled as a capacity rejection: %+v", st.Admission)
	}
	close(release)
	<-done
	// The parked request's slot was never stolen by the abandoned one.
	if st := getStats(t, ts.URL); st.Admission.InFlight != 0 {
		t.Fatalf("slot leaked: %+v", st.Admission)
	}
}
