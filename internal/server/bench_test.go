package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
)

// benchServer builds a server over the fixture table once per benchmark.
func benchServer(b *testing.B) *Server {
	b.Helper()
	s := New(Config{})
	if err := s.RegisterTable("fixture", fixtureTable(b)); err != nil {
		b.Fatal(err)
	}
	return s
}

// serve pushes one request through the handler without a TCP stack.
func serve(b *testing.B, s *Server, body []byte) *httptest.ResponseRecorder {
	b.Helper()
	req := httptest.NewRequest(http.MethodPost, "/v1/query", bytes.NewReader(body))
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		b.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	return rec
}

// BenchmarkServerQuery measures the full request path: JSON decode,
// fingerprint, caches, admission, engine run, JSON encode.
//
// Cold varies the seed every iteration so the result cache always misses
// (the plan cache still hits — that is the steady state of a busy server
// seeing many query instances of few query shapes). ResultCacheHit
// repeats one request so only decode + lookup + encode remain.
func BenchmarkServerQuery(b *testing.B) {
	b.Run("Cold", func(b *testing.B) {
		s := benchServer(b)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			req := baseRequest(int64(i), "scanmatch")
			body, err := json.Marshal(req)
			if err != nil {
				b.Fatal(err)
			}
			serve(b, s, body)
		}
	})
	b.Run("ResultCacheHit", func(b *testing.B) {
		s := benchServer(b)
		body, err := json.Marshal(baseRequest(1, "scanmatch"))
		if err != nil {
			b.Fatal(err)
		}
		serve(b, s, body) // warm the cache
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			rec := serve(b, s, body)
			if i == 0 && !bytes.Contains(rec.Body.Bytes(), []byte(`"cached":true`)) {
				b.Fatal("expected a result-cache hit")
			}
		}
	})
	b.Run("ColdScan", func(b *testing.B) {
		// Exact-scan baseline: what a cache miss costs without sampling
		// termination, for comparison against ScanMatch above.
		s := benchServer(b)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			req := baseRequest(int64(i), "scan")
			body, err := json.Marshal(req)
			if err != nil {
				b.Fatal(err)
			}
			serve(b, s, body)
		}
	})
}

// BenchmarkServerConcurrent drives the handler from parallel goroutines
// with a small set of distinct requests — the mixed cache-hit/miss load a
// real deployment sees.
func BenchmarkServerConcurrent(b *testing.B) {
	s := benchServer(b)
	bodies := make([][]byte, 8)
	for i := range bodies {
		var err error
		if bodies[i], err = json.Marshal(baseRequest(int64(i), "scanmatch")); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			req := httptest.NewRequest(http.MethodPost, "/v1/query", bytes.NewReader(bodies[i%len(bodies)]))
			rec := httptest.NewRecorder()
			s.Handler().ServeHTTP(rec, req)
			if rec.Code != http.StatusOK {
				panic(fmt.Sprintf("status %d", rec.Code))
			}
			i++
		}
	})
}
