package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"testing"
)

// BenchmarkClusterQuery prices the scatter-gather layer: the same cold
// query stream (fresh seed each iteration, so the result cache always
// misses) against a single node and against coordinators fanning out
// over 2 and 3 shard daemons, all over real HTTP so the comparison
// includes what coordination actually adds — shard round-trips and the
// partial fold — not just handler overhead.
func BenchmarkClusterQuery(b *testing.B) {
	post := func(b *testing.B, url string, seed int64) {
		b.Helper()
		lookahead := 8
		req := QueryRequest{
			Table:   "fixture",
			Query:   QuerySpec{Z: "Z", X: []string{"X"}},
			Target:  TargetSpec{Uniform: true},
			Options: &OptionsSpec{Executor: "scanmatch", Seed: &seed, Lookahead: &lookahead},
		}
		body, err := json.Marshal(req)
		if err != nil {
			b.Fatal(err)
		}
		resp, err := http.Post(url+"/v1/query", "application/json", bytes.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("status %d", resp.StatusCode)
		}
	}
	b.Run("SingleNode", func(b *testing.B) {
		fx := newClusterFixture(b, 2, Config{})
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			post(b, fx.single.URL, int64(i))
		}
	})
	for _, shards := range []int{2, 3} {
		b.Run(fmt.Sprintf("Coordinated/shards=%d", shards), func(b *testing.B) {
			fx := newClusterFixture(b, shards, Config{})
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				post(b, fx.coordTS.URL, int64(i))
			}
		})
	}
}
