package server

import (
	"fmt"

	"fastmatch/internal/bitmap"
	"fastmatch/internal/colstore"
	"fastmatch/internal/engine"
	"fastmatch/internal/histogram"
)

// The wire types of the /v1/query API. Requests map one-to-one onto
// engine.Query / engine.Target / engine.Options; responses carry a fully
// deterministic result payload (everything the engine computes, minus
// wall-clock duration) so that identical seeded requests — served live or
// from the result cache — are byte-identical.

// QueryRequest is the body of POST /v1/query.
type QueryRequest struct {
	// Table names a registered table.
	Table string `json:"table"`
	// Query is the histogram-generating query template.
	Query QuerySpec `json:"query"`
	// Target specifies the visual target.
	Target TargetSpec `json:"target"`
	// Options overrides individual defaults; omitted fields keep
	// DefaultOptions values scaled to the table size.
	Options *OptionsSpec `json:"options,omitempty"`
	// Trace asks for the request's span tree in the response (the "trace"
	// field). Traced requests bypass the result-cache read — a cached
	// payload has no span tree to attach — but the result bytes are
	// byte-identical either way, and complete results are still cached
	// for untraced requests to reuse.
	Trace bool `json:"trace,omitempty"`
	// Quality asks for the run's answer-quality report in the response
	// (the "quality" field) and per-round convergence telemetry in stream
	// progress frames. Sampling executors only (scan/parallelscan answer
	// exactly and ignore it). Like Trace, quality requests bypass the
	// result-cache read but the result bytes are byte-identical either
	// way — collection is purely observational.
	Quality bool `json:"quality,omitempty"`
}

// QuerySpec mirrors engine.Query for JSON transport. Filter closures have
// no JSON form and are intentionally absent; predicate candidates travel
// as CandidatePreds trees compiled against the table's dictionaries.
type QuerySpec struct {
	// Z names the candidate attribute. Ignored when CandidatePreds is set.
	Z string `json:"z"`
	// KnownCandidates restricts the candidate domain (Appendix A.1.5).
	KnownCandidates []string `json:"known_candidates,omitempty"`
	// CandidatePreds defines candidates as boolean predicates over
	// attribute values (Appendix A.1.2), one candidate per entry.
	CandidatePreds []PredSpec `json:"candidate_preds,omitempty"`
	// X names the grouping attribute(s).
	X []string `json:"x,omitempty"`
	// XMeasure with XBins groups by binning a continuous measure.
	XMeasure string    `json:"x_measure,omitempty"`
	XBins    *BinsSpec `json:"x_bins,omitempty"`
}

// PredSpec is the wire form of one predicate node: either a leaf
// equality {column, value} or a boolean combination {all} / {any} of
// child predicates. Exactly one of the three forms must be used.
type PredSpec struct {
	// Column/Value is the leaf form: Column == Value.
	Column string `json:"column,omitempty"`
	Value  string `json:"value,omitempty"`
	// All is a conjunction of child predicates.
	All []PredSpec `json:"all,omitempty"`
	// Any is a disjunction of child predicates.
	Any []PredSpec `json:"any,omitempty"`
}

// BinsSpec describes histogram bins: either N uniform bins over [Lo, Hi]
// or explicit strictly-increasing Edges.
type BinsSpec struct {
	Lo    float64   `json:"lo,omitempty"`
	Hi    float64   `json:"hi,omitempty"`
	N     int       `json:"n,omitempty"`
	Edges []float64 `json:"edges,omitempty"`
}

// TargetSpec mirrors engine.Target.
type TargetSpec struct {
	Counts    []float64 `json:"counts,omitempty"`
	Candidate string    `json:"candidate,omitempty"`
	Uniform   bool      `json:"uniform,omitempty"`
}

// OptionsSpec carries per-request overrides of DefaultOptions. Pointer
// fields distinguish "absent" from zero.
type OptionsSpec struct {
	K                  *int     `json:"k,omitempty"`
	Epsilon            *float64 `json:"epsilon,omitempty"`
	EpsilonReconstruct *float64 `json:"epsilon_reconstruct,omitempty"`
	Delta              *float64 `json:"delta,omitempty"`
	Sigma              *float64 `json:"sigma,omitempty"`
	Stage1Samples      *int     `json:"stage1_samples,omitempty"`
	// Metric is "l1" (default) or "l2".
	Metric string `json:"metric,omitempty"`
	// Executor is "scan", "parallelscan", "scanmatch", "syncmatch", or
	// "fastmatch" (default).
	Executor   string `json:"executor,omitempty"`
	Lookahead  *int   `json:"lookahead,omitempty"`
	StartBlock *int   `json:"start_block,omitempty"`
	// Seed fixes the run's random start block; identical seeded requests
	// produce identical results (and hit the result cache).
	Seed *int64 `json:"seed,omitempty"`
	// Workers sets the run's intra-node fan-out (ParallelScan partitions,
	// sampling-round read workers). Sampling results are byte-identical
	// for any value — it is a throughput knob, not a semantic one —
	// though it participates in the options fingerprint, so different
	// worker counts are distinct result-cache keys.
	Workers *int `json:"workers,omitempty"`
	// RowBudget caps the tuples the run may read; exhausting it returns
	// a best-effort partial result (Partial set in the payload).
	RowBudget *int64 `json:"row_budget,omitempty"`
	// DisableBlockSkip / DisableScanKernels turn off zone-map block
	// pruning and the vectorized grouped-count kernels for this request
	// (measurement knobs — results are byte-identical either way, only
	// the io counters change).
	DisableBlockSkip   bool `json:"disable_block_skip,omitempty"`
	DisableScanKernels bool `json:"disable_scan_kernels,omitempty"`
}

// ResultPayload is the JSON form of engine.Result, minus wall-clock
// duration: every field is a deterministic function of (table, query,
// target, options), which is what makes whole-result caching sound.
type ResultPayload struct {
	TopK   []MatchPayload `json:"topk"`
	Pruned []string       `json:"pruned,omitempty"`
	Exact  bool           `json:"exact"`
	// Partial flags a best-effort answer from a run stopped early by a
	// timeout or row budget: ranked by the estimates at the stop point,
	// no guarantees attached. Partial results are never cached, so a
	// complete result's payload stays byte-identical whether a timeout
	// was configured or not.
	Partial bool           `json:"partial,omitempty"`
	Stats   StatsPayload   `json:"stats"`
	IO      engine.IOStats `json:"io"`
	// GroupLabels names the histogram groups, aligned with the Histogram
	// vectors in TopK.
	GroupLabels []string `json:"group_labels"`
}

// MatchPayload is the JSON form of engine.Match.
type MatchPayload struct {
	ID       int     `json:"id"`
	Label    string  `json:"label"`
	Distance float64 `json:"distance"`
	// Histogram is the reconstructed per-group counts.
	Histogram []float64 `json:"histogram,omitempty"`
}

// StatsPayload is the JSON form of core.RunStats (per-round diagnostics
// elided — /v1/query is a serving API, not a debugging one).
type StatsPayload struct {
	SamplesStage1    int64 `json:"samples_stage1"`
	SamplesStage2    int64 `json:"samples_stage2"`
	SamplesStage3    int64 `json:"samples_stage3"`
	Rounds           int   `json:"rounds"`
	PrunedCandidates int   `json:"pruned_candidates"`
	ChosenK          int   `json:"chosen_k"`
}

// ErrorResponse is the body of every non-2xx response.
type ErrorResponse struct {
	Error string `json:"error"`
}

// toPayload converts an engine result into its deterministic wire form.
func toPayload(res *engine.Result) ResultPayload {
	out := ResultPayload{
		Exact:   res.Exact,
		Partial: res.Partial,
		Stats: StatsPayload{
			SamplesStage1:    res.Stats.SamplesStage1,
			SamplesStage2:    res.Stats.SamplesStage2,
			SamplesStage3:    res.Stats.SamplesStage3,
			Rounds:           res.Stats.Rounds,
			PrunedCandidates: res.Stats.PrunedCandidates,
			ChosenK:          res.Stats.ChosenK,
		},
		IO:          res.IO,
		GroupLabels: res.GroupLabels,
		Pruned:      res.Pruned,
	}
	out.TopK = make([]MatchPayload, len(res.TopK))
	for i, m := range res.TopK {
		mp := MatchPayload{ID: m.ID, Label: m.Label, Distance: m.Distance}
		if m.Histogram != nil {
			mp.Histogram = m.Histogram.Counts()
		}
		out.TopK[i] = mp
	}
	return out
}

// toQuery compiles the wire query into an engine query. The engine is
// needed to compile predicate candidates: predicate leaves resolve values
// to dictionary codes and bind the column's density map (which prices
// block-level estimates) against the serving table.
func (qs QuerySpec) toQuery(eng *engine.Engine) (engine.Query, error) {
	q := engine.Query{
		Z:               qs.Z,
		KnownCandidates: qs.KnownCandidates,
		X:               qs.X,
		XMeasure:        qs.XMeasure,
	}
	if qs.XBins != nil {
		binner, err := qs.XBins.toBinner()
		if err != nil {
			return engine.Query{}, err
		}
		q.XBins = binner
	}
	if len(qs.CandidatePreds) > 0 {
		q.CandidatePreds = make([]bitmap.Predicate, len(qs.CandidatePreds))
		for i, ps := range qs.CandidatePreds {
			p, err := ps.toPredicate(eng)
			if err != nil {
				return engine.Query{}, fmt.Errorf("candidate_preds[%d]: %w", i, err)
			}
			q.CandidatePreds[i] = p
		}
	}
	return q, nil
}

// toPredicate compiles one wire predicate node against the table.
func (ps PredSpec) toPredicate(eng *engine.Engine) (bitmap.Predicate, error) {
	forms := 0
	if ps.Column != "" || ps.Value != "" {
		forms++
	}
	if len(ps.All) > 0 {
		forms++
	}
	if len(ps.Any) > 0 {
		forms++
	}
	if forms != 1 {
		return nil, fmt.Errorf("predicate needs exactly one of column/value, all, or any")
	}
	switch {
	case len(ps.All) > 0:
		children, err := toPredicates(eng, ps.All)
		if err != nil {
			return nil, err
		}
		return &bitmap.AndPred{Children: children}, nil
	case len(ps.Any) > 0:
		children, err := toPredicates(eng, ps.Any)
		if err != nil {
			return nil, err
		}
		return &bitmap.OrPred{Children: children}, nil
	}
	if ps.Column == "" || ps.Value == "" {
		return nil, fmt.Errorf("leaf predicate needs both column and value")
	}
	col, err := eng.Source().ColumnByName(ps.Column)
	if err != nil {
		return nil, err
	}
	code, ok := col.Dictionary().Code(ps.Value)
	if !ok {
		return nil, fmt.Errorf("column %q has no value %q", ps.Column, ps.Value)
	}
	dm, err := eng.Density(ps.Column)
	if err != nil {
		return nil, err
	}
	return &bitmap.ValuePred{Column: ps.Column, Code: code, DM: dm}, nil
}

func toPredicates(eng *engine.Engine, specs []PredSpec) ([]bitmap.Predicate, error) {
	out := make([]bitmap.Predicate, len(specs))
	for i, ps := range specs {
		p, err := ps.toPredicate(eng)
		if err != nil {
			return nil, err
		}
		out[i] = p
	}
	return out, nil
}

// toBinner compiles a bins spec.
func (bs BinsSpec) toBinner() (*colstore.Binner, error) {
	if len(bs.Edges) > 0 {
		if bs.N != 0 || bs.Lo != 0 || bs.Hi != 0 {
			return nil, fmt.Errorf("x_bins: give either edges or lo/hi/n, not both")
		}
		return colstore.NewBinner(bs.Edges)
	}
	return colstore.NewUniformBinner(bs.Lo, bs.Hi, bs.N)
}

// toTarget compiles the wire target.
func (ts TargetSpec) toTarget() engine.Target {
	return engine.Target{Counts: ts.Counts, Candidate: ts.Candidate, Uniform: ts.Uniform}
}

// apply overlays the spec's set fields onto opts.
func (os *OptionsSpec) apply(opts *engine.Options) error {
	if os == nil {
		return nil
	}
	if os.K != nil {
		opts.Params.K = *os.K
	}
	if os.Epsilon != nil {
		opts.Params.Epsilon = *os.Epsilon
	}
	if os.EpsilonReconstruct != nil {
		opts.Params.EpsilonReconstruct = *os.EpsilonReconstruct
	}
	if os.Delta != nil {
		opts.Params.Delta = *os.Delta
	}
	if os.Sigma != nil {
		opts.Params.Sigma = *os.Sigma
	}
	if os.Stage1Samples != nil {
		opts.Params.Stage1Samples = *os.Stage1Samples
	}
	if os.Metric != "" {
		m, err := histogram.ParseMetric(os.Metric)
		if err != nil {
			return err
		}
		opts.Params.Metric = m
	}
	if os.Executor != "" {
		exec, err := parseExecutor(os.Executor)
		if err != nil {
			return err
		}
		opts.Executor = exec
	}
	if os.Lookahead != nil {
		opts.Lookahead = *os.Lookahead
	}
	if os.StartBlock != nil {
		opts.StartBlock = *os.StartBlock
	}
	if os.Seed != nil {
		opts.Seed = *os.Seed
	}
	if os.Workers != nil {
		opts.Workers = *os.Workers
	}
	if os.RowBudget != nil {
		opts.RowBudget = *os.RowBudget
	}
	if os.DisableBlockSkip {
		opts.DisableBlockSkip = true
	}
	if os.DisableScanKernels {
		opts.DisableScanKernels = true
	}
	return nil
}

// parseExecutor maps wire executor names onto engine executors.
func parseExecutor(s string) (engine.Executor, error) {
	switch s {
	case "scan":
		return engine.Scan, nil
	case "parallelscan":
		return engine.ParallelScan, nil
	case "scanmatch":
		return engine.ScanMatch, nil
	case "syncmatch":
		return engine.SyncMatch, nil
	case "fastmatch":
		return engine.FastMatch, nil
	}
	return 0, fmt.Errorf("unknown executor %q (want scan, parallelscan, scanmatch, syncmatch, or fastmatch)", s)
}
