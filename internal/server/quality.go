package server

import (
	"context"
	"math/rand/v2"
	"net/http"
	"sync"
	"time"

	"fastmatch/internal/engine"
)

// Answer-quality observability: the serving layer's view of how good the
// probabilistic answers actually are. Two mechanisms feed it:
//
//   - Quality telemetry (engine.Options.Quality): per-round convergence
//     state and a terminal report the engine computes during the run
//     itself. Requested by clients ("quality": true) or switched on by
//     the audit sampler; observational only — result bytes are identical
//     either way.
//   - Shadow audits: a configured fraction of completed sampling-executor
//     answers is re-executed off the request path with the exact Scan
//     executor (engine.AuditRun), yielding ground-truth precision@k,
//     rank displacement, and guarantee-violation counts. Partial
//     (truncated) answers claimed no guarantee and are never audited,
//     so the violation counter only ever reflects answers that did.
//
// Both land in a bounded ring served at GET /v1/debug/quality, in the
// per-table counters (/v1/stats), and in the fastmatch_quality_* /
// fastmatch_audit_* Prometheus families (/metrics).

// QualityEntry is one completed query's answer-quality record in the
// debug ring: the engine's quality report, plus the shadow-audit verdict
// when the query was sampled for auditing.
type QualityEntry struct {
	QueryID    string    `json:"query_id"`
	Table      string    `json:"table"`
	Executor   string    `json:"executor"`
	RecordedAt time.Time `json:"recorded_at"`
	// Quality is the engine's convergence report (present when the run
	// collected quality telemetry).
	Quality *engine.QualityReport `json:"quality,omitempty"`
	// Audit is the shadow audit's ground-truth comparison (present when
	// the query was sampled for auditing and the exact pass succeeded);
	// AuditError records why an attempted audit failed.
	Audit      *engine.Audit `json:"audit,omitempty"`
	AuditError string        `json:"audit_error,omitempty"`
}

// qualityRing keeps the most recent quality entries for
// GET /v1/debug/quality, newest first. Unlike the trace ring (slowest
// wins) recency is the right order here: an operator asks "how good have
// answers been lately", not "which was worst ever".
type qualityRing struct {
	mu      sync.Mutex
	cap     int
	entries []QualityEntry // newest first
}

// newQualityRing creates a ring keeping up to size entries; size < 0
// disables recording entirely.
func newQualityRing(size int) *qualityRing {
	if size < 0 {
		size = 0
	}
	return &qualityRing{cap: size}
}

// record offers one entry to the ring.
func (r *qualityRing) record(e QualityEntry) {
	if r.cap == 0 {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.entries = append(r.entries, QualityEntry{})
	copy(r.entries[1:], r.entries)
	r.entries[0] = e
	if len(r.entries) > r.cap {
		r.entries = r.entries[:r.cap]
	}
}

// snapshot copies the current entries, newest first.
func (r *qualityRing) snapshot() []QualityEntry {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]QualityEntry, len(r.entries))
	copy(out, r.entries)
	return out
}

// QualityLogResponse is the body of GET /v1/debug/quality.
type QualityLogResponse struct {
	// Queries lists recent answer-quality records, newest first (at most
	// Config.QualityRingSize).
	Queries []QualityEntry `json:"queries"`
}

func (s *Server) handleDebugQuality(w http.ResponseWriter, _ *http.Request) {
	entries := s.quality.snapshot()
	if entries == nil {
		entries = []QualityEntry{}
	}
	writeJSON(w, http.StatusOK, QualityLogResponse{Queries: entries})
}

// isSamplingExecutor reports whether the executor answers with a
// probabilistic (ε, δ) guarantee — the only answers worth auditing
// against the exact ranking.
func isSamplingExecutor(e engine.Executor) bool {
	switch e {
	case engine.ScanMatch, engine.SyncMatch, engine.FastMatch:
		return true
	}
	return false
}

// auditFractionFor resolves a table's effective shadow-audit fraction:
// the per-table override when present (negative = explicitly off), the
// server default otherwise.
func (s *Server) auditFractionFor(e *tableEntry) float64 {
	f := s.cfg.AuditFraction
	if e.auditFraction != nil {
		f = *e.auditFraction
	}
	if f < 0 {
		return 0
	}
	return f
}

// auditSelected draws the per-request audit decision. A fraction ≥ 1
// audits every eligible query (the deterministic setting tests and smoke
// runs use); in between it is an independent coin flip per request.
func (s *Server) auditSelected(e *tableEntry) bool {
	f := s.auditFractionFor(e)
	return f > 0 && (f >= 1 || rand.Float64() < f)
}

// recordQuality publishes a completed query's answer-quality record: the
// quality report goes to the debug ring immediately, and — when the
// request was sampled for auditing — a shadow audit re-executes the plan
// exactly off the request path, with the ring entry following once the
// verdict is in. The table entry and its data view stay pinned (pq
// retain/done) until the audit finishes, so the exact pass always runs
// over the same data generation the approximate answer saw.
func (s *Server) recordQuality(pq *preparedQuery, plan *engine.Plan, res *engine.Result) {
	if res == nil {
		return
	}
	entry := QualityEntry{
		QueryID:    pq.id,
		Table:      pq.req.Table,
		Executor:   pq.opts.Executor.String(),
		RecordedAt: time.Now(),
		Quality:    res.Quality,
	}
	// Partial answers claimed no guarantee: record their (truncated)
	// quality report but never audit them — a phantom violation count
	// would indict the guarantee for a promise it never made. A
	// coordinated request has no local plan; its audit re-executes
	// across the bound shard set instead.
	coordinated := len(pq.shards) > 0
	if !pq.audit || (plan == nil && !coordinated) || res.Partial || len(res.TopK) == 0 {
		if entry.Quality != nil {
			s.quality.record(entry)
		}
		return
	}
	pq.retain()
	s.auditWG.Add(1)
	go func() {
		defer s.auditWG.Done()
		defer pq.done()
		if plan != nil {
			entry.Audit, entry.AuditError = s.runAudit(pq, plan, res)
		} else {
			entry.Audit, entry.AuditError = s.runCoordAudit(pq, res)
		}
		pq.entry.metrics.observeAudit(entry.Audit, entry.AuditError != "")
		s.quality.record(entry)
	}()
}

// runAudit executes one shadow audit: an exact Scan re-execution of the
// query's plan and target, compared against the approximate answer. It
// competes for a regular admission slot (an audit is a full scan; it
// must not dodge the concurrency bound serving runs respect) but never
// holds up a client — callers run it on a background goroutine.
func (s *Server) runAudit(pq *preparedQuery, plan *engine.Plan, res *engine.Result) (*engine.Audit, string) {
	if s.adm.acquire(context.Background()) != admitOK {
		return nil, "audit skipped: server at capacity"
	}
	defer s.adm.release()
	target, err := plan.ResolveTarget(pq.target, 0)
	if err != nil {
		return nil, "resolving audit target: " + err.Error()
	}
	began := time.Now()
	audit, err := engine.AuditRun(context.Background(), plan, target, res, pq.opts)
	if err != nil {
		s.log.Warn("shadow audit failed", "query_id", pq.id, "table", pq.req.Table, "error", err)
		return nil, err.Error()
	}
	s.log.Info("shadow audit",
		"query_id", pq.id,
		"table", pq.req.Table,
		"precision_at_k", audit.PrecisionAtK,
		"guarantee_violations", audit.GuaranteeViolations,
		"max_displacement", audit.MaxDisplacement,
		"exact_tuples", audit.ExactIO.TuplesRead,
		"duration_ms", float64(time.Since(began))/float64(time.Millisecond),
	)
	return audit, ""
}
