package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"fastmatch/internal/engine"
)

// Answer-quality observability suite: the quality report on /v1/query,
// the shadow-audit sampler, the /v1/debug/quality ring, and the
// fastmatch_quality_* / fastmatch_audit_* metric families.

// qualityReply mirrors the query response with the quality report and
// the result kept raw for byte-level comparison.
type qualityReply struct {
	Cached  bool                  `json:"cached"`
	Quality *engine.QualityReport `json:"quality"`
	Result  json.RawMessage       `json:"result"`
}

// postQualityQuery sends a query request and decodes the reply including
// the quality report.
func postQualityQuery(t testing.TB, url string, req QueryRequest) (int, qualityReply) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out qualityReply
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode, out
}

// getQualityLog fetches /v1/debug/quality.
func getQualityLog(t testing.TB, url string) QualityLogResponse {
	t.Helper()
	resp, err := http.Get(url + "/v1/debug/quality")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/debug/quality: %s", resp.Status)
	}
	var out QualityLogResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestQualityReportInResponse checks the three contracts of
// "quality": true — the report rides next to the result, the result
// bytes are identical to an unadorned request's, and quality-carrying
// requests bypass the result-cache read (a cached payload has no report
// to attach).
func TestQualityReportInResponse(t *testing.T) {
	_, _, ts := newTestServer(t, Config{})
	req := baseRequest(9, "scanmatch")
	req.Quality = true

	status, withQ := postQualityQuery(t, ts.URL, req)
	if status != http.StatusOK {
		t.Fatalf("status %d", status)
	}
	if withQ.Quality == nil {
		t.Fatal("quality:true response carries no quality report")
	}
	q := withQ.Quality
	if q.Termination == "" || len(q.Matches) == 0 {
		t.Fatalf("degenerate quality report: %+v", q)
	}
	if !q.GuaranteeMet || q.Truncated {
		t.Fatalf("complete run must report guarantee met, not truncated: %+v", q)
	}

	// The same request without quality returns byte-identical result
	// bytes — collection is observational — and may hit the cache the
	// quality run populated.
	req.Quality = false
	status, plain := postQualityQuery(t, ts.URL, req)
	if status != http.StatusOK {
		t.Fatalf("plain status %d", status)
	}
	if plain.Quality != nil {
		t.Fatal("plain request must not carry a quality report")
	}
	if !bytes.Equal(plain.Result, withQ.Result) {
		t.Fatalf("quality collection perturbed the result:\nwith:  %s\nplain: %s", withQ.Result, plain.Result)
	}
	if !plain.Cached {
		t.Fatal("quality run must still publish its payload to the result cache")
	}

	// A second quality request must bypass the cache read (cached=false)
	// yet still produce the same bytes.
	req.Quality = true
	status, again := postQualityQuery(t, ts.URL, req)
	if status != http.StatusOK {
		t.Fatalf("repeat status %d", status)
	}
	if again.Cached {
		t.Fatal("quality request must bypass the result-cache read")
	}
	if again.Quality == nil || !bytes.Equal(again.Result, withQ.Result) {
		t.Fatal("repeat quality run differs from the first")
	}
}

// TestExactExecutorRejectsQualityCollection: quality telemetry is a
// sampling-run concept; exact executors simply return no report.
func TestExactExecutorNoQualityReport(t *testing.T) {
	_, _, ts := newTestServer(t, Config{})
	req := baseRequest(9, "scan")
	req.Quality = true
	status, reply := postQualityQuery(t, ts.URL, req)
	if status != http.StatusOK {
		t.Fatalf("status %d", status)
	}
	if reply.Quality != nil {
		t.Fatalf("exact scan returned a quality report: %+v", reply.Quality)
	}
}

// TestAuditSamplerGroundTruth forces the shadow audit on every query
// (AuditFraction 1) and checks the full chain: the audit runs off-path,
// its precision@k equals the test's own exact-ranking computation, and
// the verdict lands in /v1/debug/quality, /v1/stats, and /metrics.
func TestAuditSamplerGroundTruth(t *testing.T) {
	s, tbl, ts := newTestServer(t, Config{AuditFraction: 1})
	req := baseRequest(7, "scanmatch")
	status, reply := postQuery(t, ts.URL, req)
	if status != http.StatusOK {
		t.Fatalf("status %d", status)
	}
	s.auditWG.Wait()

	log := getQualityLog(t, ts.URL)
	if len(log.Queries) != 1 {
		t.Fatalf("quality ring has %d entries, want 1", len(log.Queries))
	}
	entry := log.Queries[0]
	if entry.Table != "fixture" || entry.QueryID == "" {
		t.Fatalf("bad entry identity: %+v", entry)
	}
	if entry.AuditError != "" {
		t.Fatalf("audit failed: %s", entry.AuditError)
	}
	if entry.Audit == nil {
		t.Fatal("audited query has no audit verdict")
	}
	if entry.Quality == nil {
		t.Fatal("audited query collected no quality telemetry")
	}

	// Ground truth: the exact top-k from a direct Scan run over the same
	// table. Strict precision@k = |approx ∩ exact| / k.
	exactReq := req
	exactReq.Options = &OptionsSpec{K: intp(3), Executor: "scan"}
	var exact struct {
		TopK []MatchPayload `json:"topk"`
	}
	if err := json.Unmarshal(directPayload(t, tbl, exactReq), &exact); err != nil {
		t.Fatal(err)
	}
	var approx struct {
		TopK []MatchPayload `json:"topk"`
	}
	if err := json.Unmarshal(reply.Result, &approx); err != nil {
		t.Fatal(err)
	}
	inExact := make(map[string]bool, len(exact.TopK))
	for _, m := range exact.TopK {
		inExact[m.Label] = true
	}
	hits := 0
	for _, m := range approx.TopK {
		if inExact[m.Label] {
			hits++
		}
	}
	want := float64(hits) / float64(len(approx.TopK))
	if entry.Audit.PrecisionAtK != want {
		t.Fatalf("audit PrecisionAtK=%v, test-computed ground truth %v", entry.Audit.PrecisionAtK, want)
	}
	if entry.Audit.K != 3 || len(entry.Audit.Candidates) != 3 {
		t.Fatalf("audit shape: K=%d candidates=%d", entry.Audit.K, len(entry.Audit.Candidates))
	}

	st := getStats(t, ts.URL)
	tm := st.Tables["fixture"]
	if tm.AuditRuns != 1 || tm.AuditErrors != 0 {
		t.Fatalf("stats audit counters: runs=%d errs=%d", tm.AuditRuns, tm.AuditErrors)
	}
	if tm.QualityRuns != 1 {
		t.Fatalf("stats quality runs=%d, want 1", tm.QualityRuns)
	}

	samples, doc := scrapeMetrics(t, ts.URL)
	if v := samples[`fastmatch_audit_runs_total{table="fixture"}`]; v != 1 {
		t.Fatalf("fastmatch_audit_runs_total=%v, want 1", v)
	}
	if !strings.Contains(doc, `fastmatch_audit_precision_at_k_bucket{table="fixture"`) {
		t.Fatalf("fastmatch_audit_precision_at_k histogram absent from /metrics:\n%s", doc)
	}
	if v := samples[`fastmatch_audit_precision_at_k_count{table="fixture"}`]; v != 1 {
		t.Fatalf("fastmatch_audit_precision_at_k_count=%v, want 1", v)
	}
	if !strings.Contains(doc, `fastmatch_quality_rounds_bucket{table="fixture"`) {
		t.Fatal("fastmatch_quality_rounds histogram absent from /metrics")
	}
	if _, ok := samples[`fastmatch_quality_final_margin{table="fixture"}`]; !ok {
		t.Fatal("fastmatch_quality_final_margin gauge absent from /metrics")
	}
}

// TestTruncatedRunFlaggedNotAudited: a row-budget-truncated run must
// report Truncated in its quality report, must never be shadow-audited
// (it claimed no guarantee), and must leave the guarantee-violation
// counter untouched — even with the audit sampler forced on.
func TestTruncatedRunFlaggedNotAudited(t *testing.T) {
	s, _, ts := newTestServer(t, Config{AuditFraction: 1})
	req := baseRequest(5, "scanmatch")
	req.Quality = true
	req.Options.RowBudget = i64p(512)

	status, reply := postQualityQuery(t, ts.URL, req)
	if status != http.StatusOK {
		t.Fatalf("status %d", status)
	}
	var res struct {
		Partial bool `json:"partial"`
	}
	if err := json.Unmarshal(reply.Result, &res); err != nil {
		t.Fatal(err)
	}
	if !res.Partial {
		t.Fatal("row budget 512 should have truncated the run")
	}
	if reply.Quality == nil || !reply.Quality.Truncated {
		t.Fatalf("truncated run's quality report: %+v", reply.Quality)
	}
	if reply.Quality.GuaranteeMet {
		t.Fatal("truncated run must not claim the guarantee")
	}

	s.auditWG.Wait()
	log := getQualityLog(t, ts.URL)
	if len(log.Queries) != 1 {
		t.Fatalf("quality ring has %d entries, want 1", len(log.Queries))
	}
	if log.Queries[0].Audit != nil || log.Queries[0].AuditError != "" {
		t.Fatalf("truncated run was audited: %+v", log.Queries[0])
	}
	tm := getStats(t, ts.URL).Tables["fixture"]
	if tm.AuditRuns != 0 || tm.AuditGuaranteeViolations != 0 {
		t.Fatalf("truncated run moved audit counters: runs=%d violations=%d",
			tm.AuditRuns, tm.AuditGuaranteeViolations)
	}
	if tm.QualityTruncatedRuns != 1 {
		t.Fatalf("quality_truncated_runs=%d, want 1", tm.QualityTruncatedRuns)
	}
	if v := scrapeSample(t, ts.URL, `fastmatch_quality_truncated_total{table="fixture"}`); v != 1 {
		t.Fatalf("fastmatch_quality_truncated_total=%v, want 1", v)
	}
	if v := scrapeSample(t, ts.URL, `fastmatch_audit_guarantee_violations_total{table="fixture"}`); v != 0 {
		t.Fatalf("fastmatch_audit_guarantee_violations_total=%v, want 0", v)
	}
}

// scrapeSample fetches one series from /metrics (0 if absent).
func scrapeSample(t testing.TB, url, series string) float64 {
	t.Helper()
	samples, _ := scrapeMetrics(t, url)
	return samples[series]
}

// TestPerTableAuditOverride: a per-table fraction overrides the server
// default in both directions.
func TestPerTableAuditOverride(t *testing.T) {
	s := New(Config{AuditFraction: 1})
	tbl := fixtureTable(t)
	off := -1.0
	if err := s.reg.register("muted", "test fixture", tbl, 0, &off); err != nil {
		t.Fatal(err)
	}
	if err := s.reg.register("loud", "test fixture", tbl, 0, nil); err != nil {
		t.Fatal(err)
	}
	for name, want := range map[string]float64{"muted": 0, "loud": 1} {
		e, ok := s.reg.acquire(name)
		if !ok {
			t.Fatalf("table %q missing", name)
		}
		if got := s.auditFractionFor(e); got != want {
			t.Fatalf("table %q audit fraction %v, want %v", name, got, want)
		}
		e.release()
	}
}

// TestQualityRingBounded: the debug ring holds at most QualityRingSize
// entries, newest first.
func TestQualityRingBounded(t *testing.T) {
	_, _, ts := newTestServer(t, Config{QualityRingSize: 2})
	for seed := int64(1); seed <= 3; seed++ {
		req := baseRequest(seed, "scanmatch")
		req.Quality = true
		if status, _ := postQualityQuery(t, ts.URL, req); status != http.StatusOK {
			t.Fatalf("seed %d: status %d", seed, status)
		}
	}
	log := getQualityLog(t, ts.URL)
	if len(log.Queries) != 2 {
		t.Fatalf("ring has %d entries, want cap 2", len(log.Queries))
	}
	if log.Queries[0].RecordedAt.Before(log.Queries[1].RecordedAt) {
		t.Fatal("ring entries not newest-first")
	}
}

// TestStreamCarriesQueryIDAndQuality: the stream's start frame carries
// the query ID (for correlating with traces, logs, and the quality
// ring) and a quality-requesting stream's result frame carries the
// report.
func TestStreamCarriesQueryIDAndQuality(t *testing.T) {
	_, _, ts := newTestServer(t, Config{})
	req := baseRequest(13, "scanmatch")
	req.Quality = true
	status, frames := postStream(t, ts.URL, req)
	if status != http.StatusOK || len(frames) < 2 {
		t.Fatalf("stream status %d, %d frames", status, len(frames))
	}
	start := frames[0]
	if start.Type != "progress" || start.Progress == nil || start.Progress.Phase != "start" {
		t.Fatalf("first frame is not the start frame: %+v", start)
	}
	if start.QueryID == "" {
		t.Fatal("start frame carries no query_id")
	}
	final := frames[len(frames)-1]
	if final.Type != "result" {
		t.Fatalf("last frame type %q", final.Type)
	}
	if final.Quality == nil || final.Quality.Rounds < 0 {
		t.Fatalf("result frame carries no quality report: %+v", final.Quality)
	}
}
