package colstore

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
)

// Binary table snapshots.
//
// A snapshot is the serialized form of a Table, letting a server cold-start
// a large dataset without re-parsing (and re-shuffling) CSV: the block
// layout and the row permutation are preserved exactly, so a table read
// back from a snapshot produces byte-identical query results.
//
// Three format versions exist (all integers little-endian, strings
// length-prefixed by uint32):
//
//	offset 0: magic "FMSNAP\x00" + version byte (8 bytes total)
//	header:   uint32 blockSize
//	          uint64 rows
//	          uint32 #categorical columns
//	          uint32 #measure columns
//	per categorical column (declaration order):
//	          string name
//	          uint32 dictionary length, then each value as a string
//	          [v2+] zero padding to the next 8-byte file offset
//	          rows × uint32 codes
//	per measure column (declaration order):
//	          string name
//	          [v2+] zero padding to the next 8-byte file offset
//	          rows × float64 (IEEE 754 bits) values
//	[v3 only] block-statistics section (see below)
//	trailer:  uint32 CRC-32 (IEEE) of every byte after the magic
//	          (padding included)
//
// Version 1 packs sections back to back. Version 2 pads each code/value
// array out to an 8-byte-aligned file offset, so an mmap'd snapshot can
// serve the arrays in place — reinterpreted as []uint32 / []float64 with
// zero copy — on little-endian hosts (see OpenMmapFile). Version 3 (the
// current default) additionally persists per-block statistics after the
// measure sections, so a zero-copy mapped open gets measure zone maps
// without ever paging in the measure arrays:
//
//	per categorical column (declaration order):
//	          uint32 hasPresence (1 iff the column's cardinality fits
//	          the presence cap; see presenceFits)
//	          if 1: zero padding to the next 8-byte offset, then
//	          cardinality × wordsPerValue(numBlocks) uint64 value-major
//	          presence words (bit b of value v = block b may contain v)
//	per measure column (declaration order):
//	          zero padding to the next 8-byte offset
//	          numBlocks × float64 per-block minima
//	          numBlocks × float64 per-block maxima
//
// Readers accept all three versions and reject anything newer.

// Snapshot format versions. WriteSnapshot writes
// CurrentSnapshotVersion; readers accept every version listed here.
const (
	SnapshotV1 = 1 // unaligned sections (legacy, still readable)
	SnapshotV2 = 2 // 8-byte-aligned sections, mmap-able in place
	SnapshotV3 = 3 // v2 + persisted per-block statistics section

	CurrentSnapshotVersion = SnapshotV3
)

// snapshotVersionOK reports whether version is a writable/readable
// snapshot format version.
func snapshotVersionOK(version int) bool {
	return version == SnapshotV1 || version == SnapshotV2 || version == SnapshotV3
}

// snapshotMagicPrefix identifies snapshot files; the eighth byte is the
// format version.
var snapshotMagicPrefix = [7]byte{'F', 'M', 'S', 'N', 'A', 'P', 0x00}

// ioChunk is the staging-buffer size for bulk code/value encoding.
const ioChunk = 1 << 16

// countingWriter tracks the absolute file offset so the v2 writer can pad
// array sections to 8-byte alignment.
type countingWriter struct {
	w   io.Writer
	off int64
}

func (cw *countingWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.off += int64(n)
	return n, err
}

// WriteSnapshot serializes a table to w in the current snapshot version.
func WriteSnapshot(tbl *Table, w io.Writer) error {
	return WriteSnapshotVersion(tbl, w, CurrentSnapshotVersion)
}

// WriteSnapshotVersion serializes a table in an explicit format version —
// SnapshotV3 (current), or SnapshotV2/SnapshotV1 (legacy, for
// cross-version tooling and compatibility tests).
func WriteSnapshotVersion(tbl *Table, w io.Writer, version int) error {
	if !snapshotVersionOK(version) {
		return fmt.Errorf("colstore: unsupported snapshot version %d", version)
	}
	bw := bufio.NewWriterSize(w, ioChunk)
	magic := append(snapshotMagicPrefix[:], byte(version))
	if _, err := bw.Write(magic); err != nil {
		return fmt.Errorf("colstore: writing snapshot magic: %w", err)
	}
	crc := crc32.NewIEEE()
	cw := &countingWriter{w: io.MultiWriter(bw, crc), off: int64(len(magic))}
	var scratch [8]byte
	putU32 := func(v uint32) error {
		binary.LittleEndian.PutUint32(scratch[:4], v)
		_, err := cw.Write(scratch[:4])
		return err
	}
	putU64 := func(v uint64) error {
		binary.LittleEndian.PutUint64(scratch[:8], v)
		_, err := cw.Write(scratch[:8])
		return err
	}
	putStr := func(s string) error {
		if err := putU32(uint32(len(s))); err != nil {
			return err
		}
		_, err := io.WriteString(cw, s)
		return err
	}
	var zeros [8]byte
	pad8 := func() error {
		if version < SnapshotV2 {
			return nil
		}
		if pad := int(-cw.off & 7); pad > 0 {
			if _, err := cw.Write(zeros[:pad]); err != nil {
				return err
			}
		}
		return nil
	}
	if err := putU32(uint32(tbl.blockSize)); err != nil {
		return err
	}
	if err := putU64(uint64(tbl.rows)); err != nil {
		return err
	}
	if err := putU32(uint32(len(tbl.cols))); err != nil {
		return err
	}
	if err := putU32(uint32(len(tbl.measures))); err != nil {
		return err
	}
	buf := make([]byte, ioChunk)
	for _, c := range tbl.cols {
		if err := putStr(c.Name); err != nil {
			return err
		}
		if err := putU32(uint32(c.Dict.Len())); err != nil {
			return err
		}
		for _, v := range c.Dict.values {
			if err := putStr(v); err != nil {
				return err
			}
		}
		if err := pad8(); err != nil {
			return err
		}
		codes := c.codes
		for len(codes) > 0 {
			n := len(codes)
			if n > len(buf)/4 {
				n = len(buf) / 4
			}
			for i := 0; i < n; i++ {
				binary.LittleEndian.PutUint32(buf[4*i:], codes[i])
			}
			if _, err := cw.Write(buf[:4*n]); err != nil {
				return err
			}
			codes = codes[n:]
		}
	}
	for _, m := range tbl.measures {
		if err := putStr(m.Name); err != nil {
			return err
		}
		if err := pad8(); err != nil {
			return err
		}
		values := m.values
		for len(values) > 0 {
			n := len(values)
			if n > len(buf)/8 {
				n = len(buf) / 8
			}
			for i := 0; i < n; i++ {
				binary.LittleEndian.PutUint64(buf[8*i:], math.Float64bits(values[i]))
			}
			if _, err := cw.Write(buf[:8*n]); err != nil {
				return err
			}
			values = values[n:]
		}
	}
	if version >= SnapshotV3 {
		// Block-statistics section: presence words per categorical column
		// (flagged, so over-cap columns cost 4 bytes), then per-block
		// min/max per measure. Everything is CRC-covered like the rest.
		stats := tbl.snapshotStats()
		writeU64s := func(vals []uint64) error {
			for len(vals) > 0 {
				n := len(vals)
				if n > len(buf)/8 {
					n = len(buf) / 8
				}
				for i := 0; i < n; i++ {
					binary.LittleEndian.PutUint64(buf[8*i:], vals[i])
				}
				if _, err := cw.Write(buf[:8*n]); err != nil {
					return err
				}
				vals = vals[n:]
			}
			return nil
		}
		writeF64s := func(vals []float64) error {
			for len(vals) > 0 {
				n := len(vals)
				if n > len(buf)/8 {
					n = len(buf) / 8
				}
				for i := 0; i < n; i++ {
					binary.LittleEndian.PutUint64(buf[8*i:], math.Float64bits(vals[i]))
				}
				if _, err := cw.Write(buf[:8*n]); err != nil {
					return err
				}
				vals = vals[n:]
			}
			return nil
		}
		for _, c := range tbl.cols {
			words, _, ok := stats.PresenceWords(c.Name)
			if !ok {
				if err := putU32(0); err != nil {
					return err
				}
				continue
			}
			if err := putU32(1); err != nil {
				return err
			}
			if err := pad8(); err != nil {
				return err
			}
			if err := writeU64s(words); err != nil {
				return err
			}
		}
		for _, m := range tbl.measures {
			if err := pad8(); err != nil {
				return err
			}
			rg := stats.ranges[m.Name]
			if err := writeF64s(rg.lo); err != nil {
				return err
			}
			if err := writeF64s(rg.hi); err != nil {
				return err
			}
		}
	}
	binary.LittleEndian.PutUint32(scratch[:4], crc.Sum32())
	if _, err := bw.Write(scratch[:4]); err != nil {
		return err
	}
	return bw.Flush()
}

// maxSnapshotDim bounds header-declared counts so a corrupt or hostile
// snapshot cannot force absurd allocations before the CRC check runs.
const maxSnapshotDim = 1 << 31

// countingReader tracks the absolute file offset so the v2 reader can
// skip alignment padding deterministically.
type countingReader struct {
	r   io.Reader
	off int64
}

func (cr *countingReader) Read(p []byte) (int, error) {
	n, err := cr.r.Read(p)
	cr.off += int64(n)
	return n, err
}

// ReadSnapshot deserializes a table from the snapshot format (any
// supported version), verifying the magic, version, and CRC trailer.
//
// Structural validation must stay in lockstep with parseMappedSnapshot
// (mmap.go), which accepts the same v2 files minus the CRC check.
func ReadSnapshot(r io.Reader) (*Table, error) {
	br := bufio.NewReaderSize(r, ioChunk)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("colstore: reading snapshot magic: %w", err)
	}
	if !bytes.Equal(magic[:7], snapshotMagicPrefix[:]) {
		return nil, fmt.Errorf("colstore: not a snapshot file (bad magic)")
	}
	version := int(magic[7])
	if !snapshotVersionOK(version) {
		return nil, fmt.Errorf("colstore: unsupported snapshot version %d (max %d)", version, CurrentSnapshotVersion)
	}
	crc := crc32.NewIEEE()
	cr := &countingReader{r: io.TeeReader(br, crc), off: int64(len(magic))}
	var scratch [8]byte
	getU32 := func() (uint32, error) {
		if _, err := io.ReadFull(cr, scratch[:4]); err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint32(scratch[:4]), nil
	}
	getU64 := func() (uint64, error) {
		if _, err := io.ReadFull(cr, scratch[:8]); err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint64(scratch[:8]), nil
	}
	getStr := func() (string, error) {
		n, err := getU32()
		if err != nil {
			return "", err
		}
		// Strings are names and dictionary values; 16 MiB is far beyond
		// any legitimate one and keeps a corrupt length from forcing a
		// giant allocation before the CRC check.
		if n > 1<<24 {
			return "", fmt.Errorf("colstore: snapshot string length %d out of range", n)
		}
		b := make([]byte, n)
		if _, err := io.ReadFull(cr, b); err != nil {
			return "", err
		}
		return string(b), nil
	}
	skipPad := func() error {
		if version < SnapshotV2 {
			return nil
		}
		pad := int(-cr.off & 7)
		if pad == 0 {
			return nil
		}
		if _, err := io.ReadFull(cr, scratch[:pad]); err != nil {
			return err
		}
		for _, b := range scratch[:pad] {
			if b != 0 {
				return fmt.Errorf("colstore: nonzero alignment padding")
			}
		}
		return nil
	}
	fail := func(what string, err error) (*Table, error) {
		return nil, fmt.Errorf("colstore: reading snapshot %s: %w", what, err)
	}
	blockSize, err := getU32()
	if err != nil {
		return fail("header", err)
	}
	rows64, err := getU64()
	if err != nil {
		return fail("header", err)
	}
	ncols, err := getU32()
	if err != nil {
		return fail("header", err)
	}
	nmeas, err := getU32()
	if err != nil {
		return fail("header", err)
	}
	if blockSize == 0 || blockSize > maxSnapshotDim {
		return nil, fmt.Errorf("colstore: snapshot block size %d out of range", blockSize)
	}
	if rows64 > maxSnapshotDim {
		return nil, fmt.Errorf("colstore: snapshot row count %d out of range", rows64)
	}
	if ncols > 1<<16 || nmeas > 1<<16 {
		return nil, fmt.Errorf("colstore: snapshot declares %d columns, %d measures", ncols, nmeas)
	}
	rows := int(rows64)
	tbl := &Table{
		colByName: make(map[string]int, ncols),
		measByID:  make(map[string]int, nmeas),
		rows:      rows,
		blockSize: int(blockSize),
	}
	buf := make([]byte, ioChunk)
	// Per-block statistics are folded into the same sequential validation
	// pass that checks code ranges, so every stream-read table carries
	// them for free; a v3 stats section is verified against them below.
	nb := tbl.NumBlocks()
	wpv := presenceWordsPerValue(nb)
	stats := NewTableBlockStats(nb)
	for ci := 0; ci < int(ncols); ci++ {
		name, err := getStr()
		if err != nil {
			return fail("column name", err)
		}
		if _, dup := tbl.colByName[name]; dup {
			return nil, fmt.Errorf("colstore: snapshot has duplicate column %q", name)
		}
		dictLen, err := getU32()
		if err != nil {
			return fail("dictionary", err)
		}
		if dictLen > maxSnapshotDim {
			return nil, fmt.Errorf("colstore: snapshot dictionary size %d out of range", dictLen)
		}
		dict := NewDictionary()
		for i := 0; i < int(dictLen); i++ {
			v, err := getStr()
			if err != nil {
				return fail("dictionary value", err)
			}
			if _, dup := dict.Code(v); dup {
				return nil, fmt.Errorf("colstore: snapshot column %q has duplicate dictionary value %q", name, v)
			}
			dict.Intern(v)
		}
		if err := skipPad(); err != nil {
			return fail("alignment padding", err)
		}
		// Grow the slice as bytes actually arrive instead of trusting the
		// header's row count up front: a corrupt or truncated file can
		// then only force allocation proportional to its real size.
		codes := make([]uint32, 0, min(rows, ioChunk))
		var words []uint64
		if presenceFits(int(dictLen), nb) {
			words = make([]uint64, int(dictLen)*wpv)
		}
		for len(codes) < rows {
			n := rows - len(codes)
			if n > len(buf)/4 {
				n = len(buf) / 4
			}
			if _, err := io.ReadFull(cr, buf[:4*n]); err != nil {
				return fail("codes", err)
			}
			for i := 0; i < n; i++ {
				code := binary.LittleEndian.Uint32(buf[4*i:])
				if code >= dictLen {
					return nil, fmt.Errorf("colstore: snapshot column %q code %d out of range (dict size %d)", name, code, dictLen)
				}
				if words != nil {
					b := len(codes) / tbl.blockSize
					words[int(code)*wpv+b>>6] |= 1 << (uint(b) & 63)
				}
				codes = append(codes, code)
			}
		}
		if words != nil {
			stats.SetPresence(name, words, wpv)
		}
		tbl.colByName[name] = len(tbl.cols)
		tbl.cols = append(tbl.cols, &Column{Name: name, Dict: dict, codes: codes})
	}
	for mi := 0; mi < int(nmeas); mi++ {
		name, err := getStr()
		if err != nil {
			return fail("measure name", err)
		}
		if _, dup := tbl.measByID[name]; dup {
			return nil, fmt.Errorf("colstore: snapshot has duplicate measure %q", name)
		}
		if err := skipPad(); err != nil {
			return fail("alignment padding", err)
		}
		values := make([]float64, 0, min(rows, ioChunk))
		mlo, mhi := emptyMeasureRanges(nb)
		for len(values) < rows {
			n := rows - len(values)
			if n > len(buf)/8 {
				n = len(buf) / 8
			}
			if _, err := io.ReadFull(cr, buf[:8*n]); err != nil {
				return fail("measure values", err)
			}
			for i := 0; i < n; i++ {
				v := math.Float64frombits(binary.LittleEndian.Uint64(buf[8*i:]))
				b := len(values) / tbl.blockSize
				if v < mlo[b] {
					mlo[b] = v
				}
				if v > mhi[b] {
					mhi[b] = v
				}
				values = append(values, v)
			}
		}
		stats.SetMeasureRange(name, mlo, mhi)
		tbl.measByID[name] = len(tbl.measures)
		tbl.measures = append(tbl.measures, &MeasureColumn{Name: name, values: values})
	}
	if version >= SnapshotV3 {
		// Verify the persisted statistics against the stats just recomputed
		// from the validated codes/values: both sides run the identical fold,
		// so any bit difference is corruption the CRC would also catch — but
		// checking here gives a precise error and keeps readers honest about
		// the invariant that stored stats always match the data.
		for _, c := range tbl.cols {
			flag, err := getU32()
			if err != nil {
				return fail("stats presence flag", err)
			}
			words, _, haveWords := stats.PresenceWords(c.Name)
			if flag > 1 || (flag == 1) != haveWords {
				return nil, fmt.Errorf("colstore: snapshot column %q presence flag %d disagrees with cardinality cap", c.Name, flag)
			}
			if flag == 0 {
				continue
			}
			if err := skipPad(); err != nil {
				return fail("alignment padding", err)
			}
			for i := 0; i < len(words); {
				n := len(words) - i
				if n > len(buf)/8 {
					n = len(buf) / 8
				}
				if _, err := io.ReadFull(cr, buf[:8*n]); err != nil {
					return fail("stats presence words", err)
				}
				for j := 0; j < n; j++ {
					if binary.LittleEndian.Uint64(buf[8*j:]) != words[i+j] {
						return nil, fmt.Errorf("colstore: snapshot column %q stored presence disagrees with codes", c.Name)
					}
				}
				i += n
			}
		}
		for _, m := range tbl.measures {
			if err := skipPad(); err != nil {
				return fail("alignment padding", err)
			}
			rg := stats.ranges[m.Name]
			for _, arr := range [2][]float64{rg.lo, rg.hi} {
				for i := 0; i < len(arr); {
					n := len(arr) - i
					if n > len(buf)/8 {
						n = len(buf) / 8
					}
					if _, err := io.ReadFull(cr, buf[:8*n]); err != nil {
						return fail("stats measure ranges", err)
					}
					for j := 0; j < n; j++ {
						if binary.LittleEndian.Uint64(buf[8*j:]) != math.Float64bits(arr[i+j]) {
							return nil, fmt.Errorf("colstore: snapshot measure %q stored range disagrees with values", m.Name)
						}
					}
					i += n
				}
			}
		}
	}
	want := crc.Sum32()
	if _, err := io.ReadFull(br, scratch[:4]); err != nil {
		return fail("CRC trailer", err)
	}
	if got := binary.LittleEndian.Uint32(scratch[:4]); got != want {
		return nil, fmt.Errorf("colstore: snapshot CRC mismatch (file %08x, computed %08x)", got, want)
	}
	tbl.setBlockStats(stats)
	return tbl, nil
}

// WriteSnapshotFile writes a table snapshot to path in the current
// version.
func WriteSnapshotFile(tbl *Table, path string) error {
	return WriteSnapshotFileVersion(tbl, path, CurrentSnapshotVersion)
}

// WriteSnapshotFileVersion writes a table snapshot to path in an explicit
// format version.
func WriteSnapshotFileVersion(tbl *Table, path string, version int) error {
	if !snapshotVersionOK(version) {
		// Reject before os.Create truncates an existing snapshot at path.
		return fmt.Errorf("colstore: unsupported snapshot version %d", version)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteSnapshotVersion(tbl, f, version); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadSnapshotFile reads a table snapshot from path.
func ReadSnapshotFile(path string) (*Table, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadSnapshot(f)
}
