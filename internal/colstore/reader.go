package colstore

// Reader is the backend-neutral read interface the FastMatch engine runs
// on: block-granular access to a column-oriented relation. The in-memory
// *Table is one implementation; *MmapTable serves the same contract
// zero-copy out of an aligned snapshot mapping. Every implementation must
// be safe for concurrent readers (the engine shares one Reader across
// query goroutines) and immutable for its lifetime.
//
// Aliasing contract: the slices returned by ColumnReader.Codes and
// MeasureReader.Values alias backend storage — for the mmap backend they
// point straight into pages mapped read-only from the snapshot file.
// Callers MUST treat them as read-only; a write is corruption for the
// in-memory backend and a fault (SIGSEGV/SIGBUS) for the mmap backend.
type Reader interface {
	// NumRows returns the number of tuples.
	NumRows() int
	// BlockSize returns the tuples-per-block granularity.
	BlockSize() int
	// NumBlocks returns the number of blocks (the last may be partial).
	NumBlocks() int
	// BlockSpan returns the row range [lo, hi) covered by block b.
	BlockSpan(b int) (lo, hi int)
	// Columns lists the categorical column names in declaration order.
	Columns() []string
	// ColumnByName returns the named categorical column.
	ColumnByName(name string) (ColumnReader, error)
	// MeasureNames lists the measure column names in declaration order.
	MeasureNames() []string
	// MeasureByName returns the named measure column.
	MeasureByName(name string) (MeasureReader, error)
	// Storage describes where the table's bytes live (backend name,
	// mapped vs heap residency), surfaced by serving-layer stats.
	Storage() StorageStats
}

// ColumnReader is block-granular read access to one dictionary-encoded
// categorical column.
type ColumnReader interface {
	// ColumnName returns the column's name.
	ColumnName() string
	// Cardinality returns the number of distinct values in the domain.
	Cardinality() int
	// Code returns the dictionary code at row i.
	Code(i int) uint32
	// Codes returns the codes for rows [lo, hi). The slice aliases
	// backend storage (possibly read-only mapped pages): read-only.
	Codes(lo, hi int) []uint32
	// Dictionary returns the column's code↔value dictionary.
	Dictionary() *Dictionary
}

// MeasureReader is block-granular read access to one numeric measure
// column.
type MeasureReader interface {
	// MeasureName returns the measure column's name.
	MeasureName() string
	// Value returns the measure at row i.
	Value(i int) float64
	// Values returns the measures for rows [lo, hi). The slice aliases
	// backend storage (possibly read-only mapped pages): read-only.
	Values(lo, hi int) []float64
}

// StorageStats describes a Reader's storage residency.
type StorageStats struct {
	// Backend identifies the implementation: "inmem", "mmap", or
	// "mmap-fallback" (a snapshot that could not be mapped zero-copy and
	// was materialized on the heap instead).
	Backend string `json:"backend"`
	// MappedBytes counts bytes served from a file mapping (zero for heap
	// backends). The OS page cache manages their residency, so a mapped
	// table can exceed RAM.
	MappedBytes int64 `json:"mapped_bytes"`
	// HeapBytes estimates bytes resident on the Go heap (code/value
	// arrays for in-memory tables; dictionaries and bookkeeping only for
	// mapped tables).
	HeapBytes int64 `json:"heap_bytes"`
}
