package colstore

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
)

// snapshotFixture builds a small table with two categorical columns and a
// measure, shuffled so the snapshot must preserve a nontrivial permutation.
func snapshotFixture(t *testing.T) *Table {
	t.Helper()
	b := NewBuilder(16)
	if _, err := b.AddColumn("country"); err != nil {
		t.Fatal(err)
	}
	if _, err := b.AddColumn("bracket"); err != nil {
		t.Fatal(err)
	}
	if _, err := b.AddMeasure("amount"); err != nil {
		t.Fatal(err)
	}
	countries := []string{"greece", "portugal", "norway", "brazil"}
	for i := 0; i < 500; i++ {
		err := b.AppendRow(map[string]string{
			"country": countries[i%len(countries)],
			"bracket": fmt.Sprintf("b%d", i%7),
		}, map[string]float64{"amount": float64(i%97) / 3})
		if err != nil {
			t.Fatal(err)
		}
	}
	b.Shuffle(42)
	return b.Build()
}

// csvDump renders a table as CSV text; byte equality of dumps implies the
// tables hold identical rows in identical order.
func csvDump(t *testing.T, tbl *Table) string {
	t.Helper()
	var sb strings.Builder
	if err := WriteCSV(tbl, &sb); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}

func TestSnapshotRoundTrip(t *testing.T) {
	tbl := snapshotFixture(t)
	var buf bytes.Buffer
	if err := WriteSnapshot(tbl, &buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSnapshot(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.NumRows() != tbl.NumRows() || got.BlockSize() != tbl.BlockSize() || got.NumBlocks() != tbl.NumBlocks() {
		t.Fatalf("shape mismatch: rows %d/%d, blockSize %d/%d",
			got.NumRows(), tbl.NumRows(), got.BlockSize(), tbl.BlockSize())
	}
	if want, have := csvDump(t, tbl), csvDump(t, got); want != have {
		t.Fatal("round-tripped table rows differ from original")
	}
	// Dictionaries must keep code order, not just values.
	for _, name := range tbl.Columns() {
		a, _ := tbl.Column(name)
		b, err := got.Column(name)
		if err != nil {
			t.Fatalf("column %q lost: %v", name, err)
		}
		for code := uint32(0); int(code) < a.Dict.Len(); code++ {
			if a.Dict.Value(code) != b.Dict.Value(code) {
				t.Fatalf("column %q code %d: %q != %q", name, code, a.Dict.Value(code), b.Dict.Value(code))
			}
		}
	}
	if _, err := got.Measure("amount"); err != nil {
		t.Fatalf("measure lost: %v", err)
	}
}

func TestSnapshotFileRoundTrip(t *testing.T) {
	tbl := snapshotFixture(t)
	path := t.TempDir() + "/fixture.fms"
	if err := WriteSnapshotFile(tbl, path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSnapshotFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if want, have := csvDump(t, tbl), csvDump(t, got); want != have {
		t.Fatal("file round trip altered table contents")
	}
}

func TestSnapshotRejectsCorruption(t *testing.T) {
	tbl := snapshotFixture(t)
	var buf bytes.Buffer
	if err := WriteSnapshot(tbl, &buf); err != nil {
		t.Fatal(err)
	}
	clean := buf.Bytes()

	// Flip one payload byte: either a structural check or the CRC trailer
	// must catch it — a corrupt snapshot never loads silently.
	for _, off := range []int{16, len(clean) / 2, len(clean) - 5} {
		mut := append([]byte(nil), clean...)
		mut[off] ^= 0xff
		if _, err := ReadSnapshot(bytes.NewReader(mut)); err == nil {
			t.Fatalf("corruption at offset %d not detected", off)
		}
	}

	// Truncation.
	if _, err := ReadSnapshot(bytes.NewReader(clean[:len(clean)-8])); err == nil {
		t.Fatal("truncated snapshot not detected")
	}

	// Wrong magic and unsupported version.
	mut := append([]byte(nil), clean...)
	mut[0] = 'X'
	if _, err := ReadSnapshot(bytes.NewReader(mut)); err == nil || !strings.Contains(err.Error(), "magic") {
		t.Fatalf("bad magic not detected: %v", err)
	}
	mut = append([]byte(nil), clean...)
	mut[7] = 0x7f
	if _, err := ReadSnapshot(bytes.NewReader(mut)); err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("bad version not detected: %v", err)
	}
}

// TestSnapshotCrossVersion writes every supported format version and
// checks the version-gated reader accepts each, yielding identical
// tables: v1 snapshots written before the aligned v2 format stay
// loadable forever.
func TestSnapshotCrossVersion(t *testing.T) {
	tbl := snapshotFixture(t)
	want := csvDump(t, tbl)
	for _, version := range []int{SnapshotV1, SnapshotV2, SnapshotV3} {
		var buf bytes.Buffer
		if err := WriteSnapshotVersion(tbl, &buf, version); err != nil {
			t.Fatalf("v%d write: %v", version, err)
		}
		if got := int(buf.Bytes()[7]); got != version {
			t.Fatalf("magic declares version %d, want %d", got, version)
		}
		back, err := ReadSnapshot(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("v%d read: %v", version, err)
		}
		if have := csvDump(t, back); have != want {
			t.Fatalf("v%d round trip altered table contents", version)
		}
	}
	// v2 must be strictly larger only by alignment padding, never
	// smaller: both carry the same payload.
	var v1, v2 bytes.Buffer
	_ = WriteSnapshotVersion(tbl, &v1, SnapshotV1)
	_ = WriteSnapshotVersion(tbl, &v2, SnapshotV2)
	if v2.Len() < v1.Len() || v2.Len() > v1.Len()+8*8 {
		t.Fatalf("suspicious size delta: v1 %d bytes, v2 %d bytes", v1.Len(), v2.Len())
	}
	if err := WriteSnapshotVersion(tbl, &bytes.Buffer{}, 4); err == nil {
		t.Fatal("unknown write version not rejected")
	}
}

// TestSnapshotV1RejectsCorruption re-runs the corruption matrix against
// the legacy format: the version gate must not weaken v1 verification.
func TestSnapshotV1RejectsCorruption(t *testing.T) {
	tbl := snapshotFixture(t)
	var buf bytes.Buffer
	if err := WriteSnapshotVersion(tbl, &buf, SnapshotV1); err != nil {
		t.Fatal(err)
	}
	clean := buf.Bytes()
	for _, off := range []int{16, len(clean) / 2, len(clean) - 5} {
		mut := append([]byte(nil), clean...)
		mut[off] ^= 0xff
		if _, err := ReadSnapshot(bytes.NewReader(mut)); err == nil {
			t.Fatalf("v1 corruption at offset %d not detected", off)
		}
	}
	if _, err := ReadSnapshot(bytes.NewReader(clean[:len(clean)-8])); err == nil {
		t.Fatal("v1 truncation not detected")
	}
}

func TestSnapshotEmptyTable(t *testing.T) {
	b := NewBuilder(8)
	if _, err := b.AddColumn("only"); err != nil {
		t.Fatal(err)
	}
	tbl := b.Build()
	var buf bytes.Buffer
	if err := WriteSnapshot(tbl, &buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSnapshot(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.NumRows() != 0 || len(got.Columns()) != 1 {
		t.Fatalf("empty table round trip: %d rows, %v columns", got.NumRows(), got.Columns())
	}
}
