package colstore

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestDictionaryIntern(t *testing.T) {
	d := NewDictionary()
	a := d.Intern("alpha")
	b := d.Intern("beta")
	a2 := d.Intern("alpha")
	if a != a2 {
		t.Fatalf("re-intern changed code: %d vs %d", a, a2)
	}
	if a == b {
		t.Fatal("distinct values share a code")
	}
	if d.Len() != 2 {
		t.Fatalf("Len = %d, want 2", d.Len())
	}
	if d.Value(a) != "alpha" || d.Value(b) != "beta" {
		t.Fatal("Value round trip failed")
	}
	if _, ok := d.Code("gamma"); ok {
		t.Fatal("Code found missing value")
	}
	vals := d.Values()
	if len(vals) != 2 || vals[0] != "alpha" || vals[1] != "beta" {
		t.Fatalf("Values() = %v", vals)
	}
}

func TestDictionaryValuePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Value out of range did not panic")
		}
	}()
	NewDictionary().Value(3)
}

func TestBuilderAppendRow(t *testing.T) {
	b := NewBuilder(4)
	if _, err := b.AddColumn("country"); err != nil {
		t.Fatal(err)
	}
	if _, err := b.AddColumn("bracket"); err != nil {
		t.Fatal(err)
	}
	if _, err := b.AddMeasure("income"); err != nil {
		t.Fatal(err)
	}
	rows := []struct {
		c, br string
		inc   float64
	}{
		{"greece", "low", 10}, {"greece", "high", 90}, {"italy", "low", 20},
	}
	for _, r := range rows {
		err := b.AppendRow(map[string]string{"country": r.c, "bracket": r.br},
			map[string]float64{"income": r.inc})
		if err != nil {
			t.Fatal(err)
		}
	}
	tbl := b.Build()
	if tbl.NumRows() != 3 {
		t.Fatalf("NumRows = %d", tbl.NumRows())
	}
	country, err := tbl.Column("country")
	if err != nil {
		t.Fatal(err)
	}
	if country.Dict.Value(country.Code(0)) != "greece" || country.Dict.Value(country.Code(2)) != "italy" {
		t.Fatal("column values wrong")
	}
	inc, err := tbl.Measure("income")
	if err != nil {
		t.Fatal(err)
	}
	if inc.Value(1) != 90 {
		t.Fatalf("measure value = %g", inc.Value(1))
	}
}

func TestBuilderErrors(t *testing.T) {
	b := NewBuilder(0)
	if _, err := b.AddColumn("x"); err != nil {
		t.Fatal(err)
	}
	if _, err := b.AddColumn("x"); err == nil {
		t.Fatal("duplicate column accepted")
	}
	if _, err := b.AddMeasure("m"); err != nil {
		t.Fatal(err)
	}
	if _, err := b.AddMeasure("m"); err == nil {
		t.Fatal("duplicate measure accepted")
	}
	if err := b.AppendRow(map[string]string{}, map[string]float64{"m": 1}); err == nil {
		t.Fatal("missing column value accepted")
	}
	if err := b.AppendRow(map[string]string{"x": "v"}, map[string]float64{}); err == nil {
		t.Fatal("missing measure accepted")
	}
	if err := b.AppendRow(map[string]string{"x": "v"}, map[string]float64{"m": -2}); err == nil {
		t.Fatal("negative measure accepted")
	}
}

func TestAppendCodesValidation(t *testing.T) {
	b := NewBuilder(0)
	col, _ := b.AddColumn("z")
	col.Dict.Intern("a")
	if err := b.AppendCodes([]uint32{0}, nil); err != nil {
		t.Fatal(err)
	}
	if err := b.AppendCodes([]uint32{5}, nil); err == nil {
		t.Fatal("out-of-dictionary code accepted")
	}
	if err := b.AppendCodes([]uint32{0, 1}, nil); err == nil {
		t.Fatal("wrong arity accepted")
	}
	if err := b.AppendCodes([]uint32{0}, []float64{1}); err == nil {
		t.Fatal("measures for measureless table accepted")
	}
}

func TestBlockGeometry(t *testing.T) {
	b := NewBuilder(4)
	col, _ := b.AddColumn("z")
	col.Dict.Intern("v")
	for i := 0; i < 10; i++ {
		if err := b.AppendCodes([]uint32{0}, nil); err != nil {
			t.Fatal(err)
		}
	}
	tbl := b.Build()
	if tbl.NumBlocks() != 3 {
		t.Fatalf("NumBlocks = %d, want 3", tbl.NumBlocks())
	}
	lo, hi := tbl.BlockSpan(2)
	if lo != 8 || hi != 10 {
		t.Fatalf("BlockSpan(2) = [%d,%d), want [8,10)", lo, hi)
	}
	if tbl.BlockSize() != 4 {
		t.Fatalf("BlockSize = %d", tbl.BlockSize())
	}
}

func TestEmptyTableBlocks(t *testing.T) {
	tbl := NewBuilder(8).Build()
	if tbl.NumBlocks() != 0 || tbl.NumRows() != 0 {
		t.Fatal("empty table should have zero blocks and rows")
	}
}

func TestColumnLookupErrors(t *testing.T) {
	tbl := NewBuilder(8).Build()
	if _, err := tbl.Column("missing"); err == nil {
		t.Fatal("missing column lookup succeeded")
	}
	if _, err := tbl.Measure("missing"); err == nil {
		t.Fatal("missing measure lookup succeeded")
	}
}

// Property: BlockSpan tiles [0, rows) exactly — every row is in exactly one
// block and spans are contiguous.
func TestBlockSpanTilesProperty(t *testing.T) {
	f := func(rows16 uint16, bs8 uint8) bool {
		rows := int(rows16 % 2000)
		bs := int(bs8%64) + 1
		b := NewBuilder(bs)
		col, _ := b.AddColumn("z")
		col.Dict.Intern("v")
		for i := 0; i < rows; i++ {
			if err := b.AppendCodes([]uint32{0}, nil); err != nil {
				return false
			}
		}
		tbl := b.Build()
		next := 0
		for blk := 0; blk < tbl.NumBlocks(); blk++ {
			lo, hi := tbl.BlockSpan(blk)
			if lo != next || hi <= lo {
				return false
			}
			next = hi
		}
		return next == rows
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: Shuffle preserves the multiset of rows, including row-alignment
// between columns and measures.
func TestShufflePreservesRowsProperty(t *testing.T) {
	f := func(seed int64, n16 uint16) bool {
		n := int(n16%500) + 2
		b := NewBuilder(16)
		zc, _ := b.AddColumn("z")
		xc, _ := b.AddColumn("x")
		mc, _ := b.AddMeasure("m")
		for v := 0; v < 8; v++ {
			zc.Dict.Intern(string(rune('a' + v)))
			xc.Dict.Intern(string(rune('A' + v)))
		}
		rng := rand.New(rand.NewSource(seed))
		type row struct {
			z, x uint32
			m    float64
		}
		var want []row
		for i := 0; i < n; i++ {
			r := row{uint32(rng.Intn(8)), uint32(rng.Intn(8)), float64(rng.Intn(100))}
			want = append(want, r)
			if err := b.AppendCodes([]uint32{r.z, r.x}, []float64{r.m}); err != nil {
				return false
			}
		}
		b.Shuffle(seed + 1)
		tbl := b.Build()
		var got []row
		for i := 0; i < tbl.NumRows(); i++ {
			got = append(got, row{zc.Code(i), xc.Code(i), mc.Value(i)})
		}
		key := func(r row) string {
			return string(rune(r.z)) + "|" + string(rune(r.x)) + "|" + string(rune(int(r.m)))
		}
		ws := make([]string, n)
		gs := make([]string, n)
		for i := range want {
			ws[i], gs[i] = key(want[i]), key(got[i])
		}
		sort.Strings(ws)
		sort.Strings(gs)
		for i := range ws {
			if ws[i] != gs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestShuffleDeterministicBySeed(t *testing.T) {
	build := func(seed int64) []uint32 {
		b := NewBuilder(16)
		zc, _ := b.AddColumn("z")
		for v := 0; v < 4; v++ {
			zc.Dict.Intern(string(rune('a' + v)))
		}
		for i := 0; i < 100; i++ {
			_ = b.AppendCodes([]uint32{uint32(i % 4)}, nil)
		}
		b.Shuffle(seed)
		tbl := b.Build()
		out := make([]uint32, tbl.NumRows())
		for i := range out {
			out[i] = zc.Code(i)
		}
		return out
	}
	a, b2 := build(7), build(7)
	for i := range a {
		if a[i] != b2[i] {
			t.Fatal("same seed produced different shuffles")
		}
	}
	c := build(8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical shuffles (suspicious)")
	}
}

func TestGrowPreservesData(t *testing.T) {
	b := NewBuilder(8)
	zc, _ := b.AddColumn("z")
	mc, _ := b.AddMeasure("m")
	zc.Dict.Intern("a")
	_ = b.AppendCodes([]uint32{0}, []float64{3})
	b.Grow(1000)
	_ = b.AppendCodes([]uint32{0}, []float64{4})
	tbl := b.Build()
	if tbl.NumRows() != 2 || mc.Value(0) != 3 || mc.Value(1) != 4 {
		t.Fatal("Grow corrupted builder state")
	}
}
