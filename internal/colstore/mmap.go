package colstore

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"unsafe"
)

// Zero-copy mmap snapshot backend.
//
// OpenMmapFile maps a version-2 or -3 snapshot (see snapshot.go) and
// serves its code and measure arrays straight out of the mapping: v2+
// aligns every array to an 8-byte file offset, so on a little-endian host
// the mapped bytes are reinterpreted as []uint32 / []float64 in place.
// Cold start is
// therefore ~instant regardless of table size, residency is managed by
// the OS page cache (tables larger than RAM work), and any number of
// processes share one physical copy of the data.
//
// The mapping is PROT_READ: a write through an aliased Codes/Values slice
// faults instead of silently corrupting shared pages, mechanically
// enforcing the Reader aliasing contract.
//
// Trade-off: unlike ReadSnapshot, the mmap open does not verify the CRC
// trailer (that would hash every page, including the large measure
// arrays). It does validate everything the engine's memory safety
// depends on: magic, version, structural bounds, alignment padding, and
// the dictionary range of every code (an out-of-range code would later
// index candidate/group arrays out of bounds inside executor
// goroutines). The code scan pages in the uint32 arrays sequentially —
// still O(ms) for millions of rows and far cheaper than a full
// materialize — and folds per-block code-presence statistics into the
// same pass, so block skipping works on mapped tables for free. Measure
// pages stay untouched until queried: a v2 snapshot therefore has no
// measure zone maps on this backend, while a v3 snapshot's persisted
// ranges are adopted from its stats section (presence words there are
// cross-checked against the recomputed ones; measure ranges are trusted,
// consistent with this backend not hashing measure pages). Open with
// ReadSnapshotFile to fully verify a snapshot of doubtful provenance.
//
// Fallback: on hosts without mmap support (see mmap_other.go), on
// big-endian hosts, and for version-1 (unaligned) snapshots, OpenMmapFile
// materializes the table on the heap via the verifying reader instead;
// Storage() then reports backend "mmap-fallback".

// hostLittleEndian reports whether reinterpreting file bytes as native
// integers yields the snapshot's little-endian values.
var hostLittleEndian = func() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// MmapTable is a Reader backed by a memory-mapped version-2 or -3 snapshot
// (or, in fallback mode, by a heap-materialized copy). It is immutable
// and safe for concurrent readers. Close unmaps the file; every slice
// previously returned by Codes/Values is invalid afterwards, so only
// close once no query can still be running.
type MmapTable struct {
	tbl      *Table
	data     []byte // non-nil iff zero-copy mapped
	path     string
	fallback string // why the open fell back to the heap ("" when mapped)
}

// OpenMmapFile opens a snapshot with the mmap backend. Version-2 and -3
// snapshots map zero-copy on little-endian linux/darwin hosts; anything
// else falls back to a verified in-memory materialization.
func OpenMmapFile(path string) (*MmapTable, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var magic [8]byte
	if _, err := io.ReadFull(f, magic[:]); err != nil {
		return nil, fmt.Errorf("colstore: reading snapshot magic: %w", err)
	}
	if !bytes.Equal(magic[:7], snapshotMagicPrefix[:]) {
		return nil, fmt.Errorf("colstore: not a snapshot file (bad magic)")
	}
	version := int(magic[7])
	if !snapshotVersionOK(version) {
		return nil, fmt.Errorf("colstore: unsupported snapshot version %d (max %d)", version, CurrentSnapshotVersion)
	}
	reason := ""
	switch {
	case !mmapSupported:
		reason = "mmap not supported on this platform"
	case !hostLittleEndian:
		reason = "big-endian host cannot reinterpret little-endian sections"
	case version == SnapshotV1:
		reason = "version-1 snapshot has unaligned sections"
	}
	if reason == "" {
		st, err := f.Stat()
		if err != nil {
			return nil, err
		}
		if st.Size() > int64(int(^uint(0)>>1)) {
			reason = "snapshot larger than the address space"
		} else if data, err := mmapFile(f, int(st.Size())); err != nil {
			reason = fmt.Sprintf("mmap failed: %v", err)
		} else {
			tbl, perr := parseMappedSnapshot(data, version)
			if perr != nil {
				_ = munmap(data)
				return nil, perr
			}
			return &MmapTable{tbl: tbl, data: data, path: path}, nil
		}
	}
	tbl, err := ReadSnapshotFile(path)
	if err != nil {
		return nil, err
	}
	return &MmapTable{tbl: tbl, path: path, fallback: reason}, nil
}

// parseMappedSnapshot builds a Table whose code/value slices alias the
// mapped snapshot bytes. Dictionaries and bookkeeping are heap-resident
// (they are small); only the per-row arrays stay on mapped pages.
//
// Its validation must stay in lockstep with ReadSnapshot (snapshot.go):
// everything the stream reader rejects structurally — bad dimensions,
// duplicate names/values, nonzero padding, out-of-range codes — must be
// rejected here too, so a snapshot is valid on one backend iff it is
// valid on the other (only the CRC check differs; see the package
// comment above).
func parseMappedSnapshot(data []byte, version int) (*Table, error) {
	off := 8 // past the magic
	corrupt := func(what string) error {
		return fmt.Errorf("colstore: mmap snapshot: truncated or corrupt %s (offset %d)", what, off)
	}
	u32 := func(what string) (uint32, error) {
		if off+4 > len(data) {
			return 0, corrupt(what)
		}
		v := binary.LittleEndian.Uint32(data[off:])
		off += 4
		return v, nil
	}
	u64 := func(what string) (uint64, error) {
		if off+8 > len(data) {
			return 0, corrupt(what)
		}
		v := binary.LittleEndian.Uint64(data[off:])
		off += 8
		return v, nil
	}
	str := func(what string) (string, error) {
		n, err := u32(what)
		if err != nil {
			return "", err
		}
		if n > 1<<24 || off+int(n) > len(data) {
			return "", corrupt(what)
		}
		s := string(data[off : off+int(n)])
		off += int(n)
		return s, nil
	}
	pad8 := func() error {
		aligned := (off + 7) &^ 7
		if aligned > len(data) {
			return corrupt("alignment padding")
		}
		for ; off < aligned; off++ {
			if data[off] != 0 {
				return fmt.Errorf("colstore: mmap snapshot: nonzero alignment padding at offset %d", off)
			}
		}
		return nil
	}
	blockSize, err := u32("header")
	if err != nil {
		return nil, err
	}
	rows64, err := u64("header")
	if err != nil {
		return nil, err
	}
	ncols, err := u32("header")
	if err != nil {
		return nil, err
	}
	nmeas, err := u32("header")
	if err != nil {
		return nil, err
	}
	if blockSize == 0 || blockSize > maxSnapshotDim {
		return nil, fmt.Errorf("colstore: snapshot block size %d out of range", blockSize)
	}
	if rows64 > maxSnapshotDim {
		return nil, fmt.Errorf("colstore: snapshot row count %d out of range", rows64)
	}
	if ncols > 1<<16 || nmeas > 1<<16 {
		return nil, fmt.Errorf("colstore: snapshot declares %d columns, %d measures", ncols, nmeas)
	}
	rows := int(rows64)
	if rows < 0 || uint64(rows) != rows64 {
		// 32-bit hosts: the row count fits uint64 but not int.
		return nil, fmt.Errorf("colstore: snapshot row count %d out of range", rows64)
	}
	tbl := &Table{
		colByName: make(map[string]int, ncols),
		measByID:  make(map[string]int, nmeas),
		rows:      rows,
		blockSize: int(blockSize),
	}
	// Code-presence statistics are folded into the code-validation scan
	// below (block-wise, so the per-block word/bit pair is hoisted out of
	// the row loop); measure ranges come only from a v3 stats section —
	// computing them here would page in the measure arrays.
	nb := tbl.NumBlocks()
	wpv := presenceWordsPerValue(nb)
	stats := NewTableBlockStats(nb)
	for ci := 0; ci < int(ncols); ci++ {
		name, err := str("column name")
		if err != nil {
			return nil, err
		}
		if _, dup := tbl.colByName[name]; dup {
			return nil, fmt.Errorf("colstore: snapshot has duplicate column %q", name)
		}
		dictLen, err := u32("dictionary")
		if err != nil {
			return nil, err
		}
		if dictLen > maxSnapshotDim {
			return nil, fmt.Errorf("colstore: snapshot dictionary size %d out of range", dictLen)
		}
		dict := NewDictionary()
		for i := 0; i < int(dictLen); i++ {
			v, err := str("dictionary value")
			if err != nil {
				return nil, err
			}
			if _, dup := dict.Code(v); dup {
				return nil, fmt.Errorf("colstore: snapshot column %q has duplicate dictionary value %q", name, v)
			}
			dict.Intern(v)
		}
		if err := pad8(); err != nil {
			return nil, err
		}
		// Division form: off+4*rows would overflow int on 32-bit hosts
		// for a hostile header, silently passing the check.
		if rows > 0 && (len(data)-off)/4 < rows {
			return nil, corrupt("codes")
		}
		codes := castU32(data[off:], rows)
		var words []uint64
		if presenceFits(int(dictLen), nb) {
			words = make([]uint64, int(dictLen)*wpv)
		}
		// Same check as the stream reader: an out-of-range code would
		// later index candidate/group arrays out of bounds mid-query.
		for b := 0; b < nb; b++ {
			lo, hi := tbl.BlockSpan(b)
			w, bit := b>>6, uint64(1)<<(uint(b)&63)
			for i, code := range codes[lo:hi] {
				if code >= dictLen {
					return nil, fmt.Errorf("colstore: snapshot column %q code %d out of range (dict size %d) at row %d", name, code, dictLen, lo+i)
				}
				if words != nil {
					words[int(code)*wpv+w] |= bit
				}
			}
		}
		if words != nil {
			stats.SetPresence(name, words, wpv)
		}
		off += 4 * rows
		tbl.colByName[name] = len(tbl.cols)
		tbl.cols = append(tbl.cols, &Column{Name: name, Dict: dict, codes: codes})
	}
	for mi := 0; mi < int(nmeas); mi++ {
		name, err := str("measure name")
		if err != nil {
			return nil, err
		}
		if _, dup := tbl.measByID[name]; dup {
			return nil, fmt.Errorf("colstore: snapshot has duplicate measure %q", name)
		}
		if err := pad8(); err != nil {
			return nil, err
		}
		if rows > 0 && (len(data)-off)/8 < rows {
			return nil, corrupt("measure values")
		}
		tbl.measByID[name] = len(tbl.measures)
		tbl.measures = append(tbl.measures, &MeasureColumn{Name: name, values: castF64(data[off:], rows)})
		off += 8 * rows
	}
	if version >= SnapshotV3 {
		// Presence words are cross-checked against the ones just recomputed
		// from the codes (pages are already warm from the validation scan).
		// Measure ranges are adopted as stored: verifying them would page in
		// the measure arrays, which this backend deliberately never does at
		// open (the CRC-checking stream reader verifies them bitwise).
		for _, c := range tbl.cols {
			flag, err := u32("stats presence flag")
			if err != nil {
				return nil, err
			}
			words, _, haveWords := stats.PresenceWords(c.Name)
			if flag > 1 || (flag == 1) != haveWords {
				return nil, fmt.Errorf("colstore: snapshot column %q presence flag %d disagrees with cardinality cap", c.Name, flag)
			}
			if flag == 0 {
				continue
			}
			if err := pad8(); err != nil {
				return nil, err
			}
			if len(words) > 0 && (len(data)-off)/8 < len(words) {
				return nil, corrupt("stats presence words")
			}
			stored := castU64(data[off:], len(words))
			for i := range words {
				if stored[i] != words[i] {
					return nil, fmt.Errorf("colstore: snapshot column %q stored presence disagrees with codes", c.Name)
				}
			}
			off += 8 * len(words)
		}
		for _, m := range tbl.measures {
			if err := pad8(); err != nil {
				return nil, err
			}
			if nb > 0 && (len(data)-off)/8 < nb {
				return nil, corrupt("stats measure minima")
			}
			mlo := append([]float64(nil), castF64(data[off:], nb)...)
			off += 8 * nb
			if nb > 0 && (len(data)-off)/8 < nb {
				return nil, corrupt("stats measure maxima")
			}
			mhi := append([]float64(nil), castF64(data[off:], nb)...)
			off += 8 * nb
			stats.SetMeasureRange(m.Name, mlo, mhi)
		}
	}
	if off+4 > len(data) {
		return nil, corrupt("CRC trailer")
	}
	tbl.setBlockStats(stats)
	return tbl, nil
}

// castU32 reinterprets the first 4n bytes of b as n little-endian
// uint32s in place. b must be 4-byte aligned (v2 sections are 8-aligned
// inside a page-aligned mapping) on a little-endian host.
func castU32(b []byte, n int) []uint32 {
	if n == 0 {
		return nil
	}
	return unsafe.Slice((*uint32)(unsafe.Pointer(&b[0])), n)
}

// castF64 reinterprets the first 8n bytes of b as n float64s in place.
// Same alignment and endianness requirements as castU32.
func castF64(b []byte, n int) []float64 {
	if n == 0 {
		return nil
	}
	return unsafe.Slice((*float64)(unsafe.Pointer(&b[0])), n)
}

// castU64 reinterprets the first 8n bytes of b as n little-endian
// uint64s in place. Same alignment and endianness requirements as
// castU32.
func castU64(b []byte, n int) []uint64 {
	if n == 0 {
		return nil
	}
	return unsafe.Slice((*uint64)(unsafe.Pointer(&b[0])), n)
}

// NumRows implements Reader.
func (mt *MmapTable) NumRows() int { return mt.tbl.NumRows() }

// BlockSize implements Reader.
func (mt *MmapTable) BlockSize() int { return mt.tbl.BlockSize() }

// NumBlocks implements Reader.
func (mt *MmapTable) NumBlocks() int { return mt.tbl.NumBlocks() }

// BlockSpan implements Reader.
func (mt *MmapTable) BlockSpan(b int) (lo, hi int) { return mt.tbl.BlockSpan(b) }

// Columns implements Reader.
func (mt *MmapTable) Columns() []string { return mt.tbl.Columns() }

// ColumnByName implements Reader.
func (mt *MmapTable) ColumnByName(name string) (ColumnReader, error) {
	return mt.tbl.ColumnByName(name)
}

// MeasureNames implements Reader.
func (mt *MmapTable) MeasureNames() []string { return mt.tbl.MeasureNames() }

// MeasureByName implements Reader.
func (mt *MmapTable) MeasureByName(name string) (MeasureReader, error) {
	return mt.tbl.MeasureByName(name)
}

// Storage implements Reader: mapped bytes dominate, with only
// dictionaries and bookkeeping on the heap (fallback mode is fully
// heap-resident).
func (mt *MmapTable) Storage() StorageStats {
	if mt.data == nil {
		return StorageStats{Backend: "mmap-fallback", HeapBytes: mt.tbl.heapBytes(true)}
	}
	return StorageStats{
		Backend:     "mmap",
		MappedBytes: int64(len(mt.data)),
		HeapBytes:   mt.tbl.heapBytes(false),
	}
}

// BlockStats implements BlockStatsReader. Both open paths pre-seed the
// underlying table's stats (the mapped parse folds them into validation;
// the fallback path inherits the stream reader's), so this never
// triggers a lazy recomputation that would page in measure arrays.
func (mt *MmapTable) BlockStats() BlockStats { return mt.tbl.BlockStats() }

// Path returns the snapshot file the table was opened from.
func (mt *MmapTable) Path() string { return mt.path }

// FallbackReason reports why a zero-copy mapping was not possible, or ""
// when the table is mapped.
func (mt *MmapTable) FallbackReason() string { return mt.fallback }

// Close releases the file mapping. Every slice obtained through the
// table beforehand becomes invalid; callers must ensure no query is in
// flight. Close is idempotent and a no-op in fallback mode.
func (mt *MmapTable) Close() error {
	if mt.data == nil {
		return nil
	}
	data := mt.data
	mt.data = nil
	return munmap(data)
}

// Materialize copies a mapped table fully onto the heap, detaching it
// from the file (used when a caller wants to Close the mapping but keep
// the data). Fallback-mode tables are already heap-resident.
func (mt *MmapTable) Materialize() *Table {
	if mt.data == nil {
		return mt.tbl
	}
	out := &Table{
		colByName: make(map[string]int, len(mt.tbl.cols)),
		measByID:  make(map[string]int, len(mt.tbl.measures)),
		rows:      mt.tbl.rows,
		blockSize: mt.tbl.blockSize,
	}
	for i, c := range mt.tbl.cols {
		out.colByName[c.Name] = i
		out.cols = append(out.cols, &Column{
			Name:  c.Name,
			Dict:  c.Dict,
			codes: append([]uint32(nil), c.codes...),
		})
	}
	for i, m := range mt.tbl.measures {
		out.measByID[m.Name] = i
		out.measures = append(out.measures, &MeasureColumn{
			Name:   m.Name,
			values: append([]float64(nil), m.values...),
		})
	}
	return out
}

var (
	_ Reader           = (*MmapTable)(nil)
	_ BlockStatsReader = (*MmapTable)(nil)
)
