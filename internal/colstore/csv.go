package colstore

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// CSVOptions configures CSV import.
type CSVOptions struct {
	// BlockSize is the block granularity of the resulting table (≤ 0
	// selects the default).
	BlockSize int
	// Measures lists header names to load as numeric measure columns;
	// everything else becomes a categorical column.
	Measures []string
	// ShuffleSeed, when non-nil, randomly permutes rows after loading
	// (recommended: sequential scans become uniform samples).
	ShuffleSeed *int64
	// DropInvalid silently skips rows with missing fields or unparsable
	// measures instead of failing — mirroring the paper's preprocessing
	// that discarded rows with N/A or erroneous values.
	DropInvalid bool
}

// ReadCSV loads a headered CSV stream into a Table.
func ReadCSV(r io.Reader, opts CSVOptions) (*Table, error) {
	cr := csv.NewReader(r)
	cr.ReuseRecord = true
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("colstore: reading CSV header: %w", err)
	}
	isMeasure := make([]bool, len(header))
	measureSet := make(map[string]bool, len(opts.Measures))
	for _, m := range opts.Measures {
		measureSet[m] = true
	}
	b := NewBuilder(opts.BlockSize)
	cols := make([]*Column, len(header))
	meas := make([]*MeasureColumn, len(header))
	seen := 0
	for i, name := range header {
		name = strings.TrimSpace(name)
		if measureSet[name] {
			isMeasure[i] = true
			seen++
			if meas[i], err = b.AddMeasure(name); err != nil {
				return nil, err
			}
			continue
		}
		if cols[i], err = b.AddColumn(name); err != nil {
			return nil, err
		}
	}
	if seen != len(measureSet) {
		return nil, fmt.Errorf("colstore: %d measure columns not found in header", len(measureSet)-seen)
	}
	values := make(map[string]string, len(header))
	measures := make(map[string]float64, seen)
	line := 1
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		line++
		if err != nil {
			if opts.DropInvalid {
				continue
			}
			return nil, fmt.Errorf("colstore: CSV line %d: %w", line, err)
		}
		ok := true
		for i, field := range rec {
			field = strings.TrimSpace(field)
			if isMeasure[i] {
				v, err := strconv.ParseFloat(field, 64)
				if err != nil || v < 0 {
					ok = false
					break
				}
				measures[meas[i].Name] = v
			} else {
				if field == "" || strings.EqualFold(field, "NA") || strings.EqualFold(field, "N/A") {
					ok = false
					break
				}
				values[cols[i].Name] = field
			}
		}
		if !ok {
			if opts.DropInvalid {
				continue
			}
			return nil, fmt.Errorf("colstore: CSV line %d: invalid field", line)
		}
		if err := b.AppendRow(values, measures); err != nil {
			return nil, fmt.Errorf("colstore: CSV line %d: %w", line, err)
		}
	}
	if opts.ShuffleSeed != nil {
		b.Shuffle(*opts.ShuffleSeed)
	}
	return b.Build(), nil
}

// WriteCSV serializes a table as headered CSV: categorical columns first
// (in declaration order), then measures.
func WriteCSV(tbl *Table, w io.Writer) error {
	cw := csv.NewWriter(w)
	colNames := tbl.Columns()
	var measNames []string
	for _, m := range tbl.measures {
		measNames = append(measNames, m.Name)
	}
	if err := cw.Write(append(append([]string{}, colNames...), measNames...)); err != nil {
		return err
	}
	cols := make([]*Column, len(colNames))
	for i, name := range colNames {
		c, err := tbl.Column(name)
		if err != nil {
			return err
		}
		cols[i] = c
	}
	rec := make([]string, len(colNames)+len(measNames))
	for row := 0; row < tbl.NumRows(); row++ {
		for i, c := range cols {
			rec[i] = c.Dict.Value(c.Code(row))
		}
		for i, m := range tbl.measures {
			rec[len(cols)+i] = strconv.FormatFloat(m.Value(row), 'g', -1, 64)
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
