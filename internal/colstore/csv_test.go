package colstore

import (
	"bytes"
	"strings"
	"testing"
)

const sampleCSV = `country,bracket,income
greece,low,10
greece,high,90
italy,low,20
italy,high,70
`

func TestReadCSVBasic(t *testing.T) {
	tbl, err := ReadCSV(strings.NewReader(sampleCSV), CSVOptions{Measures: []string{"income"}})
	if err != nil {
		t.Fatal(err)
	}
	if tbl.NumRows() != 4 {
		t.Fatalf("rows = %d", tbl.NumRows())
	}
	c, err := tbl.Column("country")
	if err != nil {
		t.Fatal(err)
	}
	if c.Cardinality() != 2 {
		t.Fatalf("country cardinality = %d", c.Cardinality())
	}
	m, err := tbl.Measure("income")
	if err != nil {
		t.Fatal(err)
	}
	if m.Value(1) != 90 {
		t.Fatalf("income[1] = %g", m.Value(1))
	}
}

func TestReadCSVMissingMeasureColumn(t *testing.T) {
	_, err := ReadCSV(strings.NewReader(sampleCSV), CSVOptions{Measures: []string{"nope"}})
	if err == nil {
		t.Fatal("missing measure column accepted")
	}
}

func TestReadCSVInvalidRows(t *testing.T) {
	bad := "a,b\nx,1\n,2\nNA,3\ny,notanumber\nz,4\n"
	// Strict mode fails.
	if _, err := ReadCSV(strings.NewReader(bad), CSVOptions{Measures: []string{"b"}}); err == nil {
		t.Fatal("strict mode accepted invalid rows")
	}
	// DropInvalid keeps the 2 valid rows.
	tbl, err := ReadCSV(strings.NewReader(bad), CSVOptions{Measures: []string{"b"}, DropInvalid: true})
	if err != nil {
		t.Fatal(err)
	}
	if tbl.NumRows() != 2 {
		t.Fatalf("rows = %d, want 2", tbl.NumRows())
	}
}

func TestReadCSVNegativeMeasureRejected(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader("a,b\nx,-1\n"), CSVOptions{Measures: []string{"b"}}); err == nil {
		t.Fatal("negative measure accepted in strict mode")
	}
}

func TestReadCSVEmptyInput(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader(""), CSVOptions{}); err == nil {
		t.Fatal("empty input accepted")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	tbl, err := ReadCSV(strings.NewReader(sampleCSV), CSVOptions{Measures: []string{"income"}})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteCSV(tbl, &buf); err != nil {
		t.Fatal(err)
	}
	tbl2, err := ReadCSV(&buf, CSVOptions{Measures: []string{"income"}})
	if err != nil {
		t.Fatal(err)
	}
	if tbl2.NumRows() != tbl.NumRows() {
		t.Fatalf("round trip rows %d != %d", tbl2.NumRows(), tbl.NumRows())
	}
	c1, _ := tbl.Column("bracket")
	c2, _ := tbl2.Column("bracket")
	for i := 0; i < tbl.NumRows(); i++ {
		if c1.Dict.Value(c1.Code(i)) != c2.Dict.Value(c2.Code(i)) {
			t.Fatal("round trip changed values")
		}
	}
}

func TestReadCSVShuffle(t *testing.T) {
	var sb strings.Builder
	sb.WriteString("v\n")
	for i := 0; i < 100; i++ {
		if i < 50 {
			sb.WriteString("a\n")
		} else {
			sb.WriteString("b\n")
		}
	}
	seed := int64(3)
	tbl, err := ReadCSV(strings.NewReader(sb.String()), CSVOptions{ShuffleSeed: &seed})
	if err != nil {
		t.Fatal(err)
	}
	c, _ := tbl.Column("v")
	// After shuffling, the first 50 rows should mix both values.
	first := map[string]int{}
	for i := 0; i < 50; i++ {
		first[c.Dict.Value(c.Code(i))]++
	}
	if first["a"] == 50 || first["b"] == 50 {
		t.Fatal("shuffle left data sorted")
	}
}
