package colstore

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewBinnerValidation(t *testing.T) {
	if _, err := NewBinner([]float64{1}); err == nil {
		t.Fatal("single edge accepted")
	}
	if _, err := NewBinner([]float64{1, 1}); err == nil {
		t.Fatal("non-increasing edges accepted")
	}
	if _, err := NewBinner([]float64{2, 1}); err == nil {
		t.Fatal("decreasing edges accepted")
	}
	if _, err := NewBinner([]float64{0, 1, 5}); err != nil {
		t.Fatal("valid edges rejected")
	}
}

func TestUniformBinner(t *testing.T) {
	b, err := NewUniformBinner(0, 24, 24)
	if err != nil {
		t.Fatal(err)
	}
	if b.NumBins() != 24 {
		t.Fatalf("NumBins = %d", b.NumBins())
	}
	cases := []struct {
		v    float64
		bin  int
		ok   bool
		name string
	}{
		{0, 0, true, "bottom edge"},
		{0.5, 0, true, "inside first"},
		{1, 1, true, "interior edge goes right"},
		{23.99, 23, true, "inside last"},
		{24, 23, true, "top edge in last bin"},
		{-0.1, 0, false, "below range"},
		{24.1, 0, false, "above range"},
		{math.NaN(), 0, false, "NaN"},
	}
	for _, c := range cases {
		bin, ok := b.Bin(c.v)
		if ok != c.ok || (ok && bin != c.bin) {
			t.Errorf("%s: Bin(%g) = (%d, %v), want (%d, %v)", c.name, c.v, bin, ok, c.bin, c.ok)
		}
	}
}

func TestUniformBinnerValidation(t *testing.T) {
	if _, err := NewUniformBinner(0, 10, 0); err == nil {
		t.Fatal("zero bins accepted")
	}
	if _, err := NewUniformBinner(5, 5, 3); err == nil {
		t.Fatal("empty range accepted")
	}
}

func TestBinnerLabel(t *testing.T) {
	b, _ := NewBinner([]float64{0, 10, 20})
	if got := b.Label(0); got != "[0, 10)" {
		t.Fatalf("Label(0) = %q", got)
	}
	if got := b.Label(1); got != "[10, 20]" {
		t.Fatalf("Label(1) = %q", got)
	}
	if got := b.Label(9); got != "bin(9)" {
		t.Fatalf("Label out of range = %q", got)
	}
}

// Property: every in-range value lands in exactly the bin whose edges
// bracket it.
func TestBinConsistencyProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(20) + 1
		b, err := NewUniformBinner(0, 100, n)
		if err != nil {
			return false
		}
		for trial := 0; trial < 50; trial++ {
			v := rng.Float64() * 100
			bin, ok := b.Bin(v)
			if !ok {
				return false
			}
			w := 100.0 / float64(n)
			lo, hi := float64(bin)*w, float64(bin+1)*w
			if v < lo-1e-9 || v >= hi+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestCoarsen(t *testing.T) {
	fine, _ := NewUniformBinner(0, 12, 12)
	coarse, err := fine.Coarsen(3)
	if err != nil {
		t.Fatal(err)
	}
	if coarse.NumBins() != 4 {
		t.Fatalf("coarse NumBins = %d, want 4", coarse.NumBins())
	}
	// Property: coarse bin of v equals CoarseBin(fine bin of v).
	for v := 0.0; v < 12; v += 0.25 {
		fb, _ := fine.Bin(v)
		cb, _ := coarse.Bin(v)
		if got := fine.CoarseBin(fb, 3); got != cb {
			t.Fatalf("v=%g: CoarseBin(%d) = %d, direct coarse bin = %d", v, fb, got, cb)
		}
	}
}

func TestCoarsenRemainder(t *testing.T) {
	fine, _ := NewUniformBinner(0, 10, 10)
	coarse, err := fine.Coarsen(4) // bins 0-3, 4-7, 8-9 → 3 coarse bins
	if err != nil {
		t.Fatal(err)
	}
	if coarse.NumBins() != 3 {
		t.Fatalf("coarse NumBins = %d, want 3", coarse.NumBins())
	}
	if got := fine.CoarseBin(9, 4); got != 2 {
		t.Fatalf("CoarseBin(9, 4) = %d, want 2", got)
	}
}

func TestCoarsenValidation(t *testing.T) {
	fine, _ := NewUniformBinner(0, 10, 10)
	if _, err := fine.Coarsen(0); err == nil {
		t.Fatal("factor 0 accepted")
	}
	same, err := fine.Coarsen(1)
	if err != nil || same.NumBins() != 10 {
		t.Fatal("factor 1 should be identity")
	}
}
