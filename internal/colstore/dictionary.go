// Package colstore implements the column-oriented storage engine FastMatch
// runs on: dictionary-encoded categorical columns, float measure columns,
// a block layout for locality-aware sampling, the upfront random shuffle
// that turns sequential scans into uniform samples without replacement
// (Challenge 1 in §4.2), and binning for continuous attributes
// (Appendix A.1.4/A.1.6).
package colstore

import "fmt"

// Dictionary maps attribute values (strings) to dense codes. Codes are
// assigned in insertion order, so a dictionary built deterministically
// yields deterministic codes — useful for reproducible experiments.
type Dictionary struct {
	values []string
	index  map[string]uint32
}

// NewDictionary returns an empty dictionary.
func NewDictionary() *Dictionary {
	return &Dictionary{index: make(map[string]uint32)}
}

// NewDictionaryFromValues builds a dictionary whose codes follow the
// given value order exactly: values[i] gets code i. Used by storage
// backends (e.g. the live-ingest write path) that maintain their own
// mutable interning state and periodically publish immutable snapshots.
func NewDictionaryFromValues(values []string) (*Dictionary, error) {
	d := &Dictionary{
		values: append([]string(nil), values...),
		index:  make(map[string]uint32, len(values)),
	}
	for i, v := range d.values {
		if _, dup := d.index[v]; dup {
			return nil, fmt.Errorf("colstore: duplicate dictionary value %q", v)
		}
		d.index[v] = uint32(i)
	}
	return d, nil
}

// Intern returns the code for value, assigning a fresh one if unseen.
func (d *Dictionary) Intern(value string) uint32 {
	if code, ok := d.index[value]; ok {
		return code
	}
	code := uint32(len(d.values))
	d.values = append(d.values, value)
	d.index[value] = code
	return code
}

// Code returns the code for value and whether it is present.
func (d *Dictionary) Code(value string) (uint32, bool) {
	code, ok := d.index[value]
	return code, ok
}

// Value returns the string for a code. It panics on out-of-range codes,
// which indicate corruption rather than recoverable input errors.
func (d *Dictionary) Value(code uint32) string {
	if int(code) >= len(d.values) {
		panic(fmt.Sprintf("colstore: dictionary code %d out of range (size %d)", code, len(d.values)))
	}
	return d.values[code]
}

// Len returns the number of distinct values (|V_A| for the attribute).
func (d *Dictionary) Len() int { return len(d.values) }

// Values returns a copy of all values in code order.
func (d *Dictionary) Values() []string {
	out := make([]string, len(d.values))
	copy(out, d.values)
	return out
}
