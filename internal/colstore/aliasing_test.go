package colstore

import "testing"

// The Reader aliasing contract (reader.go): Codes and Values return
// slices that alias backend storage, and callers must treat them as
// read-only. These tests pin both halves of the contract — the aliasing
// (so block reads stay zero-copy on every backend) and the sharing (so a
// write would be visible corruption, which is why the engine must never
// do it; the mmap backend additionally maps pages PROT_READ, turning a
// violation into a fault instead of silent corruption).

func TestCodesAndValuesAliasBackingStorage(t *testing.T) {
	tbl := snapshotFixture(t)
	col, err := tbl.Column("country")
	if err != nil {
		t.Fatal(err)
	}
	a := col.Codes(0, tbl.NumRows())
	b := col.Codes(0, tbl.NumRows())
	if &a[0] != &b[0] {
		t.Fatal("Codes must alias one backing array, not copy")
	}
	// Disjoint spans alias the same array at the right offset.
	mid := tbl.NumRows() / 2
	tail := col.Codes(mid, tbl.NumRows())
	if &tail[0] != &a[mid] {
		t.Fatal("Codes(lo,hi) must be a sub-slice of the column storage")
	}
	m, err := tbl.Measure("amount")
	if err != nil {
		t.Fatal(err)
	}
	v1 := m.Values(0, tbl.NumRows())
	v2 := m.Values(mid, tbl.NumRows())
	if &v2[0] != &v1[mid] {
		t.Fatal("Values(lo,hi) must be a sub-slice of the column storage")
	}
}

// TestBlockReadsLeaveStorageUntouched drives every storage-touching
// consumer (bitmap index, density map, block spans) over a table and
// verifies the underlying codes are bit-identical afterwards: the
// engine-side read-only discipline the mmap backend depends on.
func TestBlockReadsLeaveStorageUntouched(t *testing.T) {
	tbl := snapshotFixture(t)
	col, _ := tbl.Column("country")
	before := append([]uint32(nil), col.Codes(0, tbl.NumRows())...)

	// Sweep all blocks through the Reader interface, as executors do.
	var src Reader = tbl
	c, _ := src.ColumnByName("country")
	var sink uint64
	for b := 0; b < src.NumBlocks(); b++ {
		lo, hi := src.BlockSpan(b)
		for _, code := range c.Codes(lo, hi) {
			sink += uint64(code)
		}
	}
	_ = sink
	after := col.Codes(0, tbl.NumRows())
	for i := range before {
		if before[i] != after[i] {
			t.Fatalf("row %d mutated: %d -> %d", i, before[i], after[i])
		}
	}
}
