package colstore

import (
	"io"
	"time"
)

// ThrottledReader wraps a Reader and sleeps for a fixed duration on every
// BlockSpan call — the one call every executor makes exactly once per
// block it reads. It simulates slow block storage (cold object stores,
// saturated disks) so that progressive delivery, per-request timeouts,
// and cancellation can be exercised deterministically against datasets
// small enough for tests and smoke scripts. It is not a production
// backend: it exists so that "the scan stopped when the client went
// away" is observable without multi-gigabyte fixtures.
type ThrottledReader struct {
	Reader
	perBlock time.Duration
}

// NewThrottledReader wraps src so every block access costs at least
// perBlock of wall-clock time. A non-positive perBlock returns src
// unwrapped.
func NewThrottledReader(src Reader, perBlock time.Duration) Reader {
	if perBlock <= 0 {
		return src
	}
	return &ThrottledReader{Reader: src, perBlock: perBlock}
}

// BlockSpan implements Reader, paying the simulated block latency.
func (t *ThrottledReader) BlockSpan(b int) (lo, hi int) {
	time.Sleep(t.perBlock)
	return t.Reader.BlockSpan(b)
}

// BlockStats forwards the underlying reader's block statistics (the
// embedded Reader would hide the optional capability behind the
// interface value otherwise), so throttled cancellation/progressive
// tests exercise the same pruned paths as the raw backend. Executors
// must not charge the simulated latency for pruned blocks: a skipped
// block is one the storage never serves, so they compute its span
// arithmetically instead of calling BlockSpan.
func (t *ThrottledReader) BlockStats() BlockStats {
	if br, ok := t.Reader.(BlockStatsReader); ok {
		return br.BlockStats()
	}
	return nil
}

// Storage implements Reader, reporting the underlying backend with a
// "+throttled" marker so stats make the simulation visible.
func (t *ThrottledReader) Storage() StorageStats {
	st := t.Reader.Storage()
	st.Backend += "+throttled"
	return st
}

// Close closes the underlying reader when it is closeable (the registry
// closes tables through this on unload).
func (t *ThrottledReader) Close() error {
	if c, ok := t.Reader.(io.Closer); ok {
		return c.Close()
	}
	return nil
}
