package colstore

import (
	"fmt"
	"math/rand"
	"sync"
)

// Column is a dictionary-encoded categorical column. Codes index into the
// column's Dictionary.
type Column struct {
	Name  string
	Dict  *Dictionary
	codes []uint32
}

// Code returns the dictionary code at row i.
func (c *Column) Code(i int) uint32 { return c.codes[i] }

// Codes returns the backing code slice for rows [lo, hi). The returned
// slice aliases column storage; callers MUST treat it as read-only — for
// mmap-backed tables it points into pages mapped read-only from the
// snapshot file, where a write faults. See the Reader aliasing contract.
func (c *Column) Codes(lo, hi int) []uint32 { return c.codes[lo:hi] }

// Cardinality returns the number of distinct values in the column's domain.
func (c *Column) Cardinality() int { return c.Dict.Len() }

// ColumnName implements ColumnReader.
func (c *Column) ColumnName() string { return c.Name }

// Dictionary implements ColumnReader.
func (c *Column) Dictionary() *Dictionary { return c.Dict }

// MeasureColumn is a numeric column used for SUM aggregations
// (Appendix A.1.1). Values must be non-negative for measure-biased
// sampling to be well defined.
type MeasureColumn struct {
	Name   string
	values []float64
}

// Value returns the measure at row i.
func (m *MeasureColumn) Value(i int) float64 { return m.values[i] }

// Values returns the backing values for rows [lo, hi). The returned slice
// aliases column storage; callers MUST treat it as read-only (mmap-backed
// tables serve it from read-only mapped pages). See the Reader contract.
func (m *MeasureColumn) Values(lo, hi int) []float64 { return m.values[lo:hi] }

// MeasureName implements MeasureReader.
func (m *MeasureColumn) MeasureName() string { return m.Name }

// Table is an immutable, column-oriented, in-memory relation divided into
// fixed-size blocks. All I/O in the FastMatch engine happens at block
// granularity.
type Table struct {
	cols      []*Column
	colByName map[string]int
	measures  []*MeasureColumn
	measByID  map[string]int
	rows      int
	blockSize int

	// stats holds the table's per-block statistics. Open paths that
	// already scan every row (snapshot read, mmap validation) pre-seed it
	// via setBlockStats; otherwise the first BlockStats call computes it
	// with one sequential pass, cached by statsOnce.
	statsOnce sync.Once
	stats     *TableBlockStats
}

// setBlockStats pre-seeds the table's block statistics from an open path
// that computed them during its own sequential pass. Must run before the
// table is shared; a later BlockStats call returns the seeded stats.
func (t *Table) setBlockStats(s *TableBlockStats) {
	t.statsOnce.Do(func() { t.stats = s })
}

// BlockStats implements BlockStatsReader. The first call on a table no
// open path seeded (builder-constructed tables) pays one sequential scan;
// every call after returns the cached statistics.
func (t *Table) BlockStats() BlockStats {
	t.statsOnce.Do(func() { t.stats = computeBlockStats(t) })
	return t.stats
}

// snapshotStats returns statistics complete enough to persist in a v3
// snapshot: seeded stats missing measure ranges (a zero-copy mapped v2
// table deliberately skips them) are recomputed in full.
func (t *Table) snapshotStats() *TableBlockStats {
	t.statsOnce.Do(func() { t.stats = computeBlockStats(t) })
	for _, m := range t.measures {
		if _, ok := t.stats.ranges[m.Name]; !ok {
			return computeBlockStats(t)
		}
	}
	return t.stats
}

// NumRows returns the number of tuples.
func (t *Table) NumRows() int { return t.rows }

// BlockSize returns the tuples-per-block granularity.
func (t *Table) BlockSize() int { return t.blockSize }

// NumBlocks returns the number of blocks (the last may be partial).
func (t *Table) NumBlocks() int {
	if t.rows == 0 {
		return 0
	}
	return (t.rows + t.blockSize - 1) / t.blockSize
}

// BlockSpan returns the row range [lo, hi) covered by block b.
func (t *Table) BlockSpan(b int) (lo, hi int) {
	lo = b * t.blockSize
	hi = lo + t.blockSize
	if hi > t.rows {
		hi = t.rows
	}
	return lo, hi
}

// Column returns the named categorical column.
func (t *Table) Column(name string) (*Column, error) {
	idx, ok := t.colByName[name]
	if !ok {
		return nil, fmt.Errorf("colstore: no column %q", name)
	}
	return t.cols[idx], nil
}

// Columns lists the categorical column names in declaration order.
func (t *Table) Columns() []string {
	names := make([]string, len(t.cols))
	for i, c := range t.cols {
		names[i] = c.Name
	}
	return names
}

// Measure returns the named measure column.
func (t *Table) Measure(name string) (*MeasureColumn, error) {
	idx, ok := t.measByID[name]
	if !ok {
		return nil, fmt.Errorf("colstore: no measure column %q", name)
	}
	return t.measures[idx], nil
}

// ColumnByName implements Reader, returning the named categorical column
// behind the backend-neutral ColumnReader interface. (Column keeps the
// concrete *Column for builder-path callers.)
func (t *Table) ColumnByName(name string) (ColumnReader, error) {
	return t.Column(name)
}

// MeasureNames implements Reader, listing measure columns in declaration
// order.
func (t *Table) MeasureNames() []string {
	names := make([]string, len(t.measures))
	for i, m := range t.measures {
		names[i] = m.Name
	}
	return names
}

// MeasureByName implements Reader.
func (t *Table) MeasureByName(name string) (MeasureReader, error) {
	return t.Measure(name)
}

// Storage implements Reader: everything lives on the Go heap.
func (t *Table) Storage() StorageStats {
	return StorageStats{Backend: "inmem", HeapBytes: t.heapBytes(true)}
}

// heapBytes estimates the table's heap footprint; arrays selects whether
// the code/value arrays count (they do not for mmap-backed tables, whose
// arrays alias the file mapping).
func (t *Table) heapBytes(arrays bool) int64 {
	var n int64
	const stringHeader = 16 // string header per dictionary entry
	for _, c := range t.cols {
		if arrays {
			n += int64(len(c.codes)) * 4
		}
		for _, v := range c.Dict.values {
			n += int64(len(v)) + stringHeader
		}
	}
	if arrays {
		for _, m := range t.measures {
			n += int64(len(m.values)) * 8
		}
	}
	return n
}

// NewColumn wraps pre-encoded codes as a categorical column without
// copying. The codes slice is aliased, not copied — the caller promises
// that every code is a valid index into dict and that neither the slice
// contents nor the dictionary mutate for the column's lifetime (the
// Reader immutability contract). Code validity is deliberately not
// re-verified here: the live-ingest backend constructs fresh column
// wrappers over its storage spine on every published view, and an O(rows)
// validation pass per view would turn appends quadratic. Validation
// belongs at the boundary where the codes are produced (the interning
// write path, the snapshot reader, the WAL replay).
func NewColumn(name string, dict *Dictionary, codes []uint32) *Column {
	return &Column{Name: name, Dict: dict, codes: codes}
}

// NewMeasureColumn wraps pre-encoded measure values as a column without
// copying; the same aliasing and immutability contract as NewColumn
// applies.
func NewMeasureColumn(name string, values []float64) *MeasureColumn {
	return &MeasureColumn{Name: name, values: values}
}

// NewTable assembles an immutable Table directly from constructed
// columns, the zero-copy counterpart of Builder.Build for backends that
// already hold columnar data (sealed ingest segments, ingest views).
// Every column and measure must have exactly rows entries; blockSize ≤ 0
// selects the default of 256.
func NewTable(blockSize, rows int, cols []*Column, measures []*MeasureColumn) (*Table, error) {
	if blockSize <= 0 {
		blockSize = 256
	}
	if rows < 0 {
		return nil, fmt.Errorf("colstore: negative row count %d", rows)
	}
	t := &Table{
		colByName: make(map[string]int, len(cols)),
		measByID:  make(map[string]int, len(measures)),
		rows:      rows,
		blockSize: blockSize,
	}
	for _, c := range cols {
		if len(c.codes) != rows {
			return nil, fmt.Errorf("colstore: column %q has %d rows, want %d", c.Name, len(c.codes), rows)
		}
		if _, dup := t.colByName[c.Name]; dup {
			return nil, fmt.Errorf("colstore: duplicate column %q", c.Name)
		}
		t.colByName[c.Name] = len(t.cols)
		t.cols = append(t.cols, c)
	}
	for _, m := range measures {
		if len(m.values) != rows {
			return nil, fmt.Errorf("colstore: measure %q has %d rows, want %d", m.Name, len(m.values), rows)
		}
		if _, dup := t.measByID[m.Name]; dup {
			return nil, fmt.Errorf("colstore: duplicate measure %q", m.Name)
		}
		t.measByID[m.Name] = len(t.measures)
		t.measures = append(t.measures, m)
	}
	return t, nil
}

// Compile-time interface conformance checks: the in-memory table is the
// reference Reader backend.
var (
	_ Reader           = (*Table)(nil)
	_ BlockStatsReader = (*Table)(nil)
	_ ColumnReader     = (*Column)(nil)
	_ MeasureReader    = (*MeasureColumn)(nil)
)

// Builder accumulates rows and produces an immutable Table. Columns are
// declared up front; rows are appended code-wise (fast path, used by the
// synthetic generators) or value-wise.
type Builder struct {
	cols      []*Column
	colByName map[string]int
	measures  []*MeasureColumn
	measByID  map[string]int
	rows      int
	blockSize int
}

// NewBuilder creates a builder with the given block size (tuples per
// block). The paper's default of 600 bytes per column block corresponds to
// 150 four-byte codes; we default to 256 when blockSize ≤ 0.
func NewBuilder(blockSize int) *Builder {
	if blockSize <= 0 {
		blockSize = 256
	}
	return &Builder{
		colByName: make(map[string]int),
		measByID:  make(map[string]int),
		blockSize: blockSize,
	}
}

// AddColumn declares a categorical column with its own dictionary and
// returns it for direct code appends.
func (b *Builder) AddColumn(name string) (*Column, error) {
	if _, dup := b.colByName[name]; dup {
		return nil, fmt.Errorf("colstore: duplicate column %q", name)
	}
	c := &Column{Name: name, Dict: NewDictionary()}
	b.colByName[name] = len(b.cols)
	b.cols = append(b.cols, c)
	return c, nil
}

// AddMeasure declares a numeric measure column.
func (b *Builder) AddMeasure(name string) (*MeasureColumn, error) {
	if _, dup := b.measByID[name]; dup {
		return nil, fmt.Errorf("colstore: duplicate measure %q", name)
	}
	m := &MeasureColumn{Name: name}
	b.measByID[name] = len(b.measures)
	b.measures = append(b.measures, m)
	return m, nil
}

// AppendRow appends one tuple given per-column string values (keyed by
// column name) and per-measure numeric values. Missing columns are an
// error: the store has no NULL concept, mirroring the paper's
// preprocessing step that drops rows with N/A values.
func (b *Builder) AppendRow(values map[string]string, measures map[string]float64) error {
	for _, c := range b.cols {
		v, ok := values[c.Name]
		if !ok {
			return fmt.Errorf("colstore: row missing value for column %q", c.Name)
		}
		c.codes = append(c.codes, c.Dict.Intern(v))
	}
	for _, m := range b.measures {
		v, ok := measures[m.Name]
		if !ok {
			return fmt.Errorf("colstore: row missing measure %q", m.Name)
		}
		if v < 0 {
			return fmt.Errorf("colstore: negative measure %q = %g", m.Name, v)
		}
		m.values = append(m.values, v)
	}
	b.rows++
	return nil
}

// AppendCodes appends one tuple given pre-interned codes in column
// declaration order, plus measures in declaration order. This is the fast
// path used by the dataset generators.
func (b *Builder) AppendCodes(codes []uint32, measures []float64) error {
	if len(codes) != len(b.cols) {
		return fmt.Errorf("colstore: got %d codes for %d columns", len(codes), len(b.cols))
	}
	if len(measures) != len(b.measures) {
		return fmt.Errorf("colstore: got %d measures for %d measure columns", len(measures), len(b.measures))
	}
	for i, c := range b.cols {
		if int(codes[i]) >= c.Dict.Len() {
			return fmt.Errorf("colstore: code %d out of range for column %q (dict size %d)",
				codes[i], c.Name, c.Dict.Len())
		}
		c.codes = append(c.codes, codes[i])
	}
	for i, m := range b.measures {
		if measures[i] < 0 {
			return fmt.Errorf("colstore: negative measure %q = %g", b.measures[i].Name, measures[i])
		}
		m.values = append(m.values, measures[i])
	}
	b.rows++
	return nil
}

// Grow reserves capacity for n additional rows in every column.
func (b *Builder) Grow(n int) {
	for _, c := range b.cols {
		if cap(c.codes)-len(c.codes) < n {
			grown := make([]uint32, len(c.codes), len(c.codes)+n)
			copy(grown, c.codes)
			c.codes = grown
		}
	}
	for _, m := range b.measures {
		if cap(m.values)-len(m.values) < n {
			grown := make([]float64, len(m.values), len(m.values)+n)
			copy(grown, m.values)
			m.values = grown
		}
	}
}

// Shuffle randomly permutes the rows of every column with a shared
// Fisher–Yates permutation seeded by seed. After shuffling, a sequential
// scan from any starting block is a uniform sample without replacement —
// the data-layout trick of Challenge 1.
func (b *Builder) Shuffle(seed int64) {
	rng := rand.New(rand.NewSource(seed))
	for i := b.rows - 1; i > 0; i-- {
		j := rng.Intn(i + 1)
		for _, c := range b.cols {
			c.codes[i], c.codes[j] = c.codes[j], c.codes[i]
		}
		for _, m := range b.measures {
			m.values[i], m.values[j] = m.values[j], m.values[i]
		}
	}
}

// Build finalizes the table. The builder must not be reused afterwards.
func (b *Builder) Build() *Table {
	return &Table{
		cols:      b.cols,
		colByName: b.colByName,
		measures:  b.measures,
		measByID:  b.measByID,
		rows:      b.rows,
		blockSize: b.blockSize,
	}
}
