package colstore

import "fmt"

// ShardTables partitions a table into n disjoint row-range shards, in
// row order: shard 0 holds the first rows, shard n-1 the last. Every
// shard shares the source table's dictionaries in full (columns alias
// the same *Dictionary; codes and measure values alias sub-slices of
// the source arrays — no copying), so all shards expose identical
// candidate and group id spaces even for values that never occur in
// their rows. That shared-dictionary property is what makes the cluster
// coordinator's merge algebra sound across shards.
//
// All shards except the last hold an exact multiple of alignRows rows
// (alignRows ≤ 0 selects one block). For coordinated answers to be
// byte-identical to a single node over the concatenated data, alignRows
// must be blockSize × engine.ChunkBlocks(blockSize) — then every shard
// boundary falls exactly on a sampler chunk-commit position, so segment
// handoffs happen where the single-node walk would have committed
// anyway.
func ShardTables(tbl *Table, n, alignRows int) ([]*Table, error) {
	if n <= 0 {
		return nil, fmt.Errorf("colstore: shard count %d must be positive", n)
	}
	if alignRows <= 0 {
		alignRows = tbl.BlockSize()
	}
	if alignRows%tbl.BlockSize() != 0 {
		return nil, fmt.Errorf("colstore: shard alignment %d is not a multiple of block size %d", alignRows, tbl.BlockSize())
	}
	rows := tbl.NumRows()
	// Rows per shard, rounded up to the alignment so every boundary is a
	// chunk-commit position; the last shard absorbs the remainder.
	per := (rows + n - 1) / n
	per = ((per + alignRows - 1) / alignRows) * alignRows
	out := make([]*Table, 0, n)
	for i := 0; i < n; i++ {
		lo := i * per
		hi := lo + per
		if i == n-1 || hi > rows {
			hi = rows
		}
		if lo >= rows && n > 1 {
			return nil, fmt.Errorf("colstore: %d rows cannot fill %d shards aligned to %d rows", rows, n, alignRows)
		}
		if lo > rows {
			lo = rows
		}
		cols := make([]*Column, len(tbl.cols))
		for j, c := range tbl.cols {
			cols[j] = NewColumn(c.Name, c.Dict, c.codes[lo:hi])
		}
		measures := make([]*MeasureColumn, len(tbl.measures))
		for j, m := range tbl.measures {
			measures[j] = NewMeasureColumn(m.Name, m.values[lo:hi])
		}
		shard, err := NewTable(tbl.blockSize, hi-lo, cols, measures)
		if err != nil {
			return nil, err
		}
		out = append(out, shard)
	}
	return out, nil
}
