package colstore

import (
	"bytes"
	"encoding/binary"
	"os"
	"runtime"
	"strings"
	"testing"
)

// wantZeroCopy reports whether this host should get a real mapping (the
// fallback path is exercised explicitly elsewhere).
func wantZeroCopy() bool {
	return mmapSupported && hostLittleEndian
}

func writeFixtureSnapshot(t *testing.T, version int) (*Table, string) {
	t.Helper()
	tbl := snapshotFixture(t)
	path := t.TempDir() + "/fixture.fms"
	if err := WriteSnapshotFileVersion(tbl, path, version); err != nil {
		t.Fatal(err)
	}
	return tbl, path
}

// assertSameTable fails unless got serves exactly the rows, order,
// dictionaries, and measures of want.
func assertSameTable(t *testing.T, want *Table, got Reader) {
	t.Helper()
	if got.NumRows() != want.NumRows() || got.BlockSize() != want.BlockSize() || got.NumBlocks() != want.NumBlocks() {
		t.Fatalf("shape mismatch: rows %d/%d blockSize %d/%d", got.NumRows(), want.NumRows(), got.BlockSize(), want.BlockSize())
	}
	for _, name := range want.Columns() {
		wc, _ := want.Column(name)
		gc, err := got.ColumnByName(name)
		if err != nil {
			t.Fatalf("column %q lost: %v", name, err)
		}
		if gc.Cardinality() != wc.Cardinality() {
			t.Fatalf("column %q cardinality %d != %d", name, gc.Cardinality(), wc.Cardinality())
		}
		for code := uint32(0); int(code) < wc.Cardinality(); code++ {
			if wc.Dict.Value(code) != gc.Dictionary().Value(code) {
				t.Fatalf("column %q dictionary diverges at code %d", name, code)
			}
		}
		for i := 0; i < want.NumRows(); i++ {
			if wc.Code(i) != gc.Code(i) {
				t.Fatalf("column %q row %d: code %d != %d", name, i, gc.Code(i), wc.Code(i))
			}
		}
	}
	for _, name := range want.MeasureNames() {
		wm, _ := want.Measure(name)
		gm, err := got.MeasureByName(name)
		if err != nil {
			t.Fatalf("measure %q lost: %v", name, err)
		}
		for i := 0; i < want.NumRows(); i++ {
			if wm.Value(i) != gm.Value(i) {
				t.Fatalf("measure %q row %d: %g != %g", name, i, gm.Value(i), wm.Value(i))
			}
		}
	}
}

func TestMmapOpenV2ZeroCopy(t *testing.T) {
	tbl, path := writeFixtureSnapshot(t, SnapshotV2)
	mt, err := OpenMmapFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer mt.Close()
	assertSameTable(t, tbl, mt)
	st := mt.Storage()
	if wantZeroCopy() {
		if st.Backend != "mmap" || mt.FallbackReason() != "" {
			t.Fatalf("expected zero-copy mapping, got backend %q (fallback %q)", st.Backend, mt.FallbackReason())
		}
		fi, err := os.Stat(path)
		if err != nil {
			t.Fatal(err)
		}
		if st.MappedBytes != fi.Size() {
			t.Fatalf("mapped %d bytes, file is %d", st.MappedBytes, fi.Size())
		}
		// Zero copy means code arrays weigh nothing on the heap: only
		// dictionaries/bookkeeping count.
		if st.HeapBytes >= tbl.Storage().HeapBytes {
			t.Fatalf("mmap heap bytes %d not smaller than inmem %d", st.HeapBytes, tbl.Storage().HeapBytes)
		}
	} else if st.Backend != "mmap-fallback" {
		t.Fatalf("expected fallback on %s, got backend %q", runtime.GOOS, st.Backend)
	}
}

func TestMmapOpenV1FallsBack(t *testing.T) {
	tbl, path := writeFixtureSnapshot(t, SnapshotV1)
	mt, err := OpenMmapFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer mt.Close()
	if st := mt.Storage(); st.Backend != "mmap-fallback" || st.MappedBytes != 0 {
		t.Fatalf("v1 snapshot should fall back to the heap, got %+v", st)
	}
	if mt.FallbackReason() == "" {
		t.Fatal("fallback reason not recorded")
	}
	assertSameTable(t, tbl, mt)
}

func TestMmapOpenRejectsCorruption(t *testing.T) {
	_, path := writeFixtureSnapshot(t, SnapshotV2)
	clean, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	write := func(b []byte) string {
		p := t.TempDir() + "/mut.fms"
		if err := os.WriteFile(p, b, 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	// Bad magic.
	mut := append([]byte(nil), clean...)
	mut[0] = 'X'
	if _, err := OpenMmapFile(write(mut)); err == nil {
		t.Fatal("bad magic not rejected")
	}
	// Unknown version.
	mut = append([]byte(nil), clean...)
	mut[7] = 0x7f
	if _, err := OpenMmapFile(write(mut)); err == nil {
		t.Fatal("unknown version not rejected")
	}
	// Truncations at several depths: header, dictionary, array, trailer.
	for _, keep := range []int{10, 40, len(clean) / 2, len(clean) - 2} {
		if _, err := OpenMmapFile(write(clean[:keep])); err == nil {
			t.Fatalf("truncation to %d bytes not rejected", keep)
		}
	}
	// Absurd header dimensions.
	mut = append([]byte(nil), clean...)
	binary.LittleEndian.PutUint64(mut[12:], 1<<40) // rows
	if _, err := OpenMmapFile(write(mut)); err == nil {
		t.Fatal("absurd row count not rejected")
	}
}

// TestMmapOpenRejectsOutOfRangeCode pins the availability guard: a code
// above its dictionary's cardinality must be rejected at open (the
// stream reader rejects it too), never handed to executors where it
// would index candidate/group arrays out of bounds mid-query.
func TestMmapOpenRejectsOutOfRangeCode(t *testing.T) {
	tbl := snapshotFixture(t)
	var buf bytes.Buffer
	if err := WriteSnapshot(tbl, &buf); err != nil {
		t.Fatal(err)
	}
	data := append([]byte(nil), buf.Bytes()...)
	// Walk to the first column's codes array (same layout the zero-copy
	// parser follows).
	off := 8
	u32 := func() int {
		v := binary.LittleEndian.Uint32(data[off:])
		off += 4
		return int(v)
	}
	skipStr := func() { off += u32() }
	u32()    // blockSize
	off += 8 // rows
	u32()    // ncols
	u32()    // nmeas
	skipStr()
	dictLen := u32()
	for i := 0; i < dictLen; i++ {
		skipStr()
	}
	off = (off + 7) &^ 7
	binary.LittleEndian.PutUint32(data[off:], uint32(dictLen)) // one past the dictionary
	path := t.TempDir() + "/badcode.fms"
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenMmapFile(path); err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Fatalf("out-of-range code not rejected: %v", err)
	}
}

func TestMmapCloseIdempotentAndMaterialize(t *testing.T) {
	tbl, path := writeFixtureSnapshot(t, SnapshotV2)
	mt, err := OpenMmapFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Materialize detaches a heap copy that survives Close.
	heap := mt.Materialize()
	if err := mt.Close(); err != nil {
		t.Fatal(err)
	}
	if err := mt.Close(); err != nil {
		t.Fatal("second Close must be a no-op:", err)
	}
	assertSameTable(t, tbl, heap)
}

// TestSnapshotV2SectionAlignment walks the v2 byte stream and checks that
// every code/value array starts on an 8-byte file offset — the invariant
// the zero-copy reinterpretation relies on.
func TestSnapshotV2SectionAlignment(t *testing.T) {
	tbl := snapshotFixture(t)
	var buf bytes.Buffer
	if err := WriteSnapshot(tbl, &buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	off := 8
	u32 := func() int {
		v := binary.LittleEndian.Uint32(data[off:])
		off += 4
		return int(v)
	}
	skipStr := func() { off += u32() }
	blockSize := u32()
	if off += 8; blockSize <= 0 { // rows u64
		t.Fatal("bad block size")
	}
	ncols, nmeas := u32(), u32()
	if ncols != len(tbl.Columns()) {
		t.Fatalf("header declares %d columns, table has %d", ncols, len(tbl.Columns()))
	}
	rows := tbl.NumRows()
	pad8 := func(what string, i int) {
		for ; off%8 != 0; off++ {
			if data[off] != 0 {
				t.Fatalf("%s %d: nonzero padding byte at offset %d", what, i, off)
			}
		}
	}
	for c, name := range tbl.Columns() {
		skipStr()
		dictLen := u32()
		for i := 0; i < dictLen; i++ {
			skipStr()
		}
		pad8("column", c)
		// The aligned offset must hold this column's codes verbatim —
		// i.e. the offsets a zero-copy reader computes land on real data.
		col, _ := tbl.Column(name)
		for i := 0; i < rows; i++ {
			if got := binary.LittleEndian.Uint32(data[off+4*i:]); got != col.Code(i) {
				t.Fatalf("column %q row %d: aligned section holds %d, want %d", name, i, got, col.Code(i))
			}
		}
		off += 4 * rows
	}
	for m := 0; m < nmeas; m++ {
		skipStr()
		pad8("measure", m)
		off += 8 * rows
	}
	// v3 stats section: presence flag per column with 8-aligned words,
	// then 8-aligned per-block min/max arrays per measure — the same
	// alignment invariant, since the mapped reader casts these in place.
	nb := tbl.NumBlocks()
	wpv := presenceWordsPerValue(nb)
	for c, name := range tbl.Columns() {
		if flag := u32(); flag != 1 {
			t.Fatalf("stats column %d: presence flag %d, fixture columns all fit the cap", c, flag)
		}
		pad8("stats column", c)
		col, _ := tbl.Column(name)
		off += 8 * col.Dict.Len() * wpv
	}
	for m := 0; m < nmeas; m++ {
		pad8("stats measure", m)
		off += 16 * nb
	}
	if off+4 != len(data) {
		t.Fatalf("trailer at %d, file is %d bytes", off, len(data))
	}
}
