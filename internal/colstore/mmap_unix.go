//go:build linux || darwin

package colstore

import (
	"os"
	"syscall"
)

// mmapSupported gates the zero-copy snapshot backend; see mmap_other.go
// for the fallback on other platforms.
const mmapSupported = true

// mmapFile maps size bytes of f read-only and shared: pages are served
// from the OS page cache and never duplicated per process, and writes
// through the mapping fault (enforcing the Reader aliasing contract).
func mmapFile(f *os.File, size int) ([]byte, error) {
	if size == 0 {
		// Zero-length mmap is EINVAL; an empty mapping has no sections to
		// alias anyway.
		return nil, syscall.EINVAL
	}
	return syscall.Mmap(int(f.Fd()), 0, size, syscall.PROT_READ, syscall.MAP_SHARED)
}

// munmap releases a mapping created by mmapFile.
func munmap(data []byte) error { return syscall.Munmap(data) }
