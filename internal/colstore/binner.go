package colstore

import (
	"fmt"
	"math"
	"sort"
)

// Binner maps a continuous value into one of a fixed set of non-overlapping
// bins, implementing the binning extensions of Appendix A.1.4 (continuous X
// attributes) and A.1.6 (continuous candidate attributes). Bin i covers
// [edges[i], edges[i+1]), except the last bin which is closed on the right.
type Binner struct {
	edges []float64
}

// NewBinner builds a binner from explicit, strictly increasing bin edges.
// len(edges) must be ≥ 2, giving len(edges)−1 bins.
func NewBinner(edges []float64) (*Binner, error) {
	if len(edges) < 2 {
		return nil, fmt.Errorf("colstore: need at least 2 bin edges, got %d", len(edges))
	}
	for i := 1; i < len(edges); i++ {
		if !(edges[i] > edges[i-1]) {
			return nil, fmt.Errorf("colstore: bin edges not strictly increasing at %d (%g, %g)",
				i, edges[i-1], edges[i])
		}
	}
	out := make([]float64, len(edges))
	copy(out, edges)
	return &Binner{edges: out}, nil
}

// NewUniformBinner builds n equal-width bins over [lo, hi].
func NewUniformBinner(lo, hi float64, n int) (*Binner, error) {
	if n < 1 {
		return nil, fmt.Errorf("colstore: need at least 1 bin, got %d", n)
	}
	if !(hi > lo) {
		return nil, fmt.Errorf("colstore: invalid range [%g, %g]", lo, hi)
	}
	edges := make([]float64, n+1)
	w := (hi - lo) / float64(n)
	for i := range edges {
		edges[i] = lo + float64(i)*w
	}
	edges[n] = hi // avoid accumulated FP error at the top edge
	return &Binner{edges: edges}, nil
}

// NumBins returns the number of bins.
func (b *Binner) NumBins() int { return len(b.edges) - 1 }

// Edges returns a copy of the bin edges (length NumBins()+1).
func (b *Binner) Edges() []float64 {
	out := make([]float64, len(b.edges))
	copy(out, b.edges)
	return out
}

// Bin returns the bin index for v and whether v falls inside the binner's
// range. Values exactly at the top edge land in the last bin.
func (b *Binner) Bin(v float64) (int, bool) {
	if math.IsNaN(v) || v < b.edges[0] || v > b.edges[len(b.edges)-1] {
		return 0, false
	}
	if v == b.edges[len(b.edges)-1] {
		return len(b.edges) - 2, true
	}
	// sort.SearchFloat64s finds the first edge > v when we search for
	// v+ulp; simpler: find rightmost edge ≤ v.
	i := sort.SearchFloat64s(b.edges, v)
	if i < len(b.edges) && b.edges[i] == v {
		return i, true
	}
	return i - 1, true
}

// Label renders a human-readable label for bin i, e.g. "[3, 5)".
func (b *Binner) Label(i int) string {
	if i < 0 || i >= b.NumBins() {
		return fmt.Sprintf("bin(%d)", i)
	}
	close := ")"
	if i == b.NumBins()-1 {
		close = "]"
	}
	return fmt.Sprintf("[%g, %g%s", b.edges[i], b.edges[i+1], close)
}

// Coarsen merges every `factor` adjacent bins into one, producing a coarser
// binner. This supports Appendix A.1.6: bitmaps built at the finest
// granularity induce bitmaps for any coarser granularity. The final coarse
// bin absorbs any remainder bins.
func (b *Binner) Coarsen(factor int) (*Binner, error) {
	if factor < 1 {
		return nil, fmt.Errorf("colstore: coarsen factor %d < 1", factor)
	}
	if factor == 1 {
		return NewBinner(b.edges)
	}
	var edges []float64
	for i := 0; i < len(b.edges)-1; i += factor {
		edges = append(edges, b.edges[i])
	}
	edges = append(edges, b.edges[len(b.edges)-1])
	return NewBinner(edges)
}

// CoarseBin maps a fine bin index to its coarse bin index under Coarsen.
func (b *Binner) CoarseBin(fineBin, factor int) int {
	coarse := fineBin / factor
	max := (b.NumBins() + factor - 1) / factor
	if coarse >= max {
		coarse = max - 1
	}
	return coarse
}
