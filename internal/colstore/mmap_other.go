//go:build !linux && !darwin

package colstore

import (
	"errors"
	"os"
)

// mmapSupported is false here: OpenMmapFile transparently falls back to
// materializing the snapshot on the heap (Storage reports
// "mmap-fallback"), keeping the backend choice portable.
const mmapSupported = false

var errMmapUnsupported = errors.New("colstore: mmap not supported on this platform")

func mmapFile(_ *os.File, _ int) ([]byte, error) { return nil, errMmapUnsupported }

func munmap(_ []byte) error { return nil }
