package colstore

import "math"

// Per-block statistics ("zone maps") for data skipping.
//
// BlockStats answers two conservative questions the engine's planner and
// executors use to prove a block holds no qualifying row before reading
// it: "may block b contain code v of column c?" and "what value range does
// measure m span in block b?". Both answers are sound in the skipping
// direction — a false MayContainCode and a disjoint MeasureRange are
// proofs of absence; anything unknown reports "maybe", which merely costs
// a block read that a full scan would have paid anyway.
//
// Precision varies by backend and is part of each backend's contract:
// the in-memory table and stream-read snapshots compute exact per-block
// stats in their open/validation pass; a zero-copy mapped v2 snapshot has
// exact code presence (recomputed during its code-validation scan) but no
// measure ranges (computing them would page in the measure arrays,
// forfeiting the ~instant cold start); a v3 snapshot persists measure
// ranges so the mapped open gets both; the live-ingest backend adapts its
// per-segment zone maps, which are segment-granular (every block of a
// segment reports the segment's range) with the unsealed tail unknown.

// BlockStats exposes per-block column statistics. Implementations are
// immutable and safe for concurrent readers.
type BlockStats interface {
	// MayContainCode reports whether block b may contain a row whose code
	// for the named categorical column equals code. false is a proof of
	// absence; true covers both presence and "unknown".
	MayContainCode(column string, code uint32, b int) bool
	// MeasureRange returns the closed interval [lo, hi] covering every
	// finite value of the named measure in block b, with ok=false when the
	// range is unknown. A block with no finite values reports the empty
	// range lo=+Inf, hi=-Inf (ok=true): it provably bins nowhere.
	MeasureRange(measure string, b int) (lo, hi float64, ok bool)
	// PresenceWords returns the exact value-major presence bitset for the
	// column when one exists: bit b of value v is
	// words[int(v)*wordsPerValue + b/64] >> (b%64) & 1. ok=false means no
	// exact bitset is available (the stats may still answer MayContainCode
	// conservatively). The returned words are read-only.
	PresenceWords(column string) (words []uint64, wordsPerValue int, ok bool)
}

// BlockStatsReader is an optional Reader capability: backends that keep
// per-block statistics surface them here. BlockStats may return nil when
// the backend has none (wrappers over stat-less readers).
type BlockStatsReader interface {
	BlockStats() BlockStats
}

// maxPresenceBits caps a column's presence bitset (cardinality × blocks
// bits, ~16 MiB of words at the cap). Columns past it skip presence and
// answer MayContainCode with "maybe" — correct, just never pruning.
const maxPresenceBits = 1 << 27

// presenceWordsPerValue is the stride of one value's block bits.
func presenceWordsPerValue(numBlocks int) int { return (numBlocks + 63) / 64 }

// presenceFits reports whether a column's presence bitset is worth
// materializing. Writers and readers must agree on this decision: the v3
// snapshot section stores one presence flag per column and the reader
// cross-checks it.
func presenceFits(cardinality, numBlocks int) bool {
	return int64(cardinality)*int64(presenceWordsPerValue(numBlocks))*64 <= maxPresenceBits
}

// TableBlockStats is the concrete per-block statistics container shared
// by the in-memory, snapshot, and mmap backends. Immutable once built.
type TableBlockStats struct {
	numBlocks int
	presence  map[string]presenceStats
	ranges    map[string]rangeStats
}

type presenceStats struct {
	words []uint64
	wpv   int
}

type rangeStats struct{ lo, hi []float64 }

// NewTableBlockStats returns an empty container for a numBlocks-block
// table, to be populated with SetPresence/SetMeasureRange before sharing.
func NewTableBlockStats(numBlocks int) *TableBlockStats {
	return &TableBlockStats{
		numBlocks: numBlocks,
		presence:  make(map[string]presenceStats),
		ranges:    make(map[string]rangeStats),
	}
}

// SetPresence installs a column's value-major presence words (aliased,
// not copied; see PresenceWords for the layout).
func (s *TableBlockStats) SetPresence(column string, words []uint64, wordsPerValue int) {
	s.presence[column] = presenceStats{words: words, wpv: wordsPerValue}
}

// SetMeasureRange installs a measure's per-block [lo, hi] arrays
// (aliased, not copied; length numBlocks each).
func (s *TableBlockStats) SetMeasureRange(measure string, lo, hi []float64) {
	s.ranges[measure] = rangeStats{lo: lo, hi: hi}
}

// MayContainCode implements BlockStats.
func (s *TableBlockStats) MayContainCode(column string, code uint32, b int) bool {
	p, ok := s.presence[column]
	if !ok || b < 0 || b >= s.numBlocks {
		return true
	}
	idx := int(code)*p.wpv + b>>6
	if idx < 0 || idx >= len(p.words) {
		// A code beyond the column's cardinality names no value at all, so
		// no block contains it.
		return false
	}
	return p.words[idx]>>(uint(b)&63)&1 != 0
}

// MeasureRange implements BlockStats.
func (s *TableBlockStats) MeasureRange(measure string, b int) (lo, hi float64, ok bool) {
	rg, found := s.ranges[measure]
	if !found || b < 0 || b >= len(rg.lo) {
		return 0, 0, false
	}
	return rg.lo[b], rg.hi[b], true
}

// PresenceWords implements BlockStats.
func (s *TableBlockStats) PresenceWords(column string) ([]uint64, int, bool) {
	p, ok := s.presence[column]
	if !ok {
		return nil, 0, false
	}
	return p.words, p.wpv, true
}

var _ BlockStats = (*TableBlockStats)(nil)

// emptyMeasureRanges returns per-block range arrays initialized to the
// empty interval (+Inf, -Inf), the identity of the min/max fold: NaN
// values never update either bound (comparisons are false), so an
// all-NaN block keeps the empty range — which provably bins nowhere.
func emptyMeasureRanges(numBlocks int) (lo, hi []float64) {
	lo = make([]float64, numBlocks)
	hi = make([]float64, numBlocks)
	for b := range lo {
		lo[b] = math.Inf(1)
		hi[b] = math.Inf(-1)
	}
	return lo, hi
}

// computeBlockStats scans a reader once and builds exact per-block
// statistics: value presence for every categorical column under the size
// cap, min/max for every measure. The single pass is the same shape as
// the snapshot/mmap open validation, which fold the identical updates
// into their existing loops instead of calling this.
func computeBlockStats(r Reader) *TableBlockStats {
	nb := r.NumBlocks()
	s := NewTableBlockStats(nb)
	for _, name := range r.Columns() {
		col, err := r.ColumnByName(name)
		if err != nil {
			continue
		}
		card := col.Cardinality()
		if !presenceFits(card, nb) {
			continue
		}
		wpv := presenceWordsPerValue(nb)
		words := make([]uint64, card*wpv)
		for b := 0; b < nb; b++ {
			lo, hi := r.BlockSpan(b)
			w, bit := b>>6, uint64(1)<<(uint(b)&63)
			for _, code := range col.Codes(lo, hi) {
				words[int(code)*wpv+w] |= bit
			}
		}
		s.SetPresence(name, words, wpv)
	}
	for _, name := range r.MeasureNames() {
		m, err := r.MeasureByName(name)
		if err != nil {
			continue
		}
		lo, hi := emptyMeasureRanges(nb)
		for b := 0; b < nb; b++ {
			blo, bhi := r.BlockSpan(b)
			for _, v := range m.Values(blo, bhi) {
				if v < lo[b] {
					lo[b] = v
				}
				if v > hi[b] {
					hi[b] = v
				}
			}
		}
		s.SetMeasureRange(name, lo, hi)
	}
	return s
}
