package cluster

import (
	"context"
	"time"

	"fastmatch/internal/core"
	"fastmatch/internal/engine"
	"fastmatch/internal/histogram"
	"fastmatch/internal/obs/trace"
)

// runScan answers with the exact executors by scatter-gather: each shard
// scans its qualifying blocks, the coordinator folds the local exact
// histograms with Batch.Merge (integer sums — order-independent and
// value-exact), then ranks the global accumulation through the same
// engine.RankExact the single-node pass uses. Un-budgeted runs fan out
// concurrently (bounded by fanoutWindow); budgeted or deadlined runs
// chain shards sequentially with the residual budget so the stop lands
// on the same global block a single-node pass would stop at.
func (st *runState) runScan(ctx context.Context, target *histogram.Histogram, began time.Time, runSpan *trace.Span) (*Result, error) {
	params := st.opts.Params
	if err := params.Validate(); err != nil {
		return nil, err
	}
	workers := 1
	if st.opts.Executor == engine.ParallelScan {
		workers = st.opts.Workers
	}
	mkReq := func() *engine.ShardSegment {
		return &engine.ShardSegment{
			Kind:               engine.SegScan,
			Executor:           st.opts.Executor,
			Workers:            workers,
			DisableBlockSkip:   st.opts.DisableBlockSkip,
			DisableScanKernels: st.opts.DisableScanKernels,
			Deadline:           st.deadline,
		}
	}
	gb := st.newBatch()
	var io engine.IOStats
	var stopErr error
	fold := func(sr *shardRun, req *engine.ShardSegment, res *engine.ShardSegmentResult, err error) error {
		var part *core.Batch
		if err == nil {
			part, err = core.DecodeBatch(res.Batch)
		}
		sr.segments++
		if err != nil {
			st.markDead(sr, err)
			shardSpan(runSpan, sr, req, nil, true)
			return nil
		}
		if err := gb.Merge(part); err != nil {
			return err
		}
		st.charged += part.Drawn
		sr.io.Add(res.IO)
		io.Add(res.IO)
		shardSpan(runSpan, sr, req, res, true)
		if st.opts.OnProgress != nil {
			st.opts.OnProgress(engine.Progress{Phase: "scan", IO: io, Elapsed: time.Since(began)})
		}
		if res.Stopped != "" {
			stopErr = res.StopError(st.budget, st.charged)
		}
		return nil
	}
	if st.sequential() {
		for _, sr := range st.walk {
			if sr.dead {
				continue
			}
			if stopErr = st.stopCheck(); stopErr != nil {
				break
			}
			req := mkReq()
			req.RowBudget = st.residualBudget()
			res, err := sr.shard.Segment(ctx, req)
			if err := fold(sr, req, res, err); err != nil {
				return nil, err
			}
			if stopErr != nil {
				break
			}
		}
	} else {
		results, err := st.fanout(ctx, mkReq)
		if err != nil {
			return nil, err
		}
		for _, r := range results {
			if err := fold(r.sr, mkReq(), r.res, r.err); err != nil {
				return nil, err
			}
		}
	}
	// Degraded scans are honest partials: the fold holds only data
	// actually read, and an incomplete pass never σ-prunes.
	complete := stopErr == nil && !st.degraded
	hists := gb.Hists
	for i, h := range hists {
		if h == nil {
			hists[i] = histogram.New(st.groups)
		}
	}
	res := &engine.Result{Exact: complete, Partial: !complete, IO: io}
	res.TopK, res.Pruned = engine.RankExact(target, params, hists, gb.Drawn, complete, st.labelOf)
	res.Stats.ChosenK = len(res.TopK)
	res.Stats.PrunedCandidates = len(res.Pruned)
	res.Duration = time.Since(began)
	res.GroupLabels = st.groupLabels
	return st.finish(res), stopErr
}
