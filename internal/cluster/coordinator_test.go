package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"

	"fastmatch/internal/colstore"
	"fastmatch/internal/core"
	"fastmatch/internal/datagen"
	"fastmatch/internal/engine"
	"fastmatch/internal/histogram"
)

// The distributed equivalence suite: a K-shard coordinated answer must
// be BYTE-identical to a single node over the concatenated data — same
// result JSON, same IOStats, same progress-frame sequence — for every
// executor, including runs cut short by a row budget or cancellation.
// This is the merge-algebra contract from the paper (sampler state is a
// commutative monoid under Batch.Merge) plus the walk-equivalence
// argument in package cluster's doc: shard boundaries on chunk-commit
// positions make segment handoffs invisible.

// planShard adapts a local engine.Plan as a cluster Shard — the
// in-process twin of the HTTP client, so the suite pins the coordinator
// algebra without network nondeterminism.
type planShard struct {
	name string
	plan *engine.Plan
	// fail, when set, makes every call after the first `allow` calls
	// return an error (simulating a shard death mid-run).
	fail  error
	allow int64
	calls atomic.Int64
}

func (p *planShard) Name() string { return p.name }

func (p *planShard) check() error {
	if p.fail != nil && p.calls.Add(1) > p.allow {
		return p.fail
	}
	return nil
}

func (p *planShard) Meta(ctx context.Context) (*engine.ShardMeta, error) {
	if err := p.check(); err != nil {
		return nil, err
	}
	m := p.plan.ShardMeta()
	return &m, nil
}

func (p *planShard) Segment(ctx context.Context, seg *engine.ShardSegment) (*engine.ShardSegmentResult, error) {
	if err := p.check(); err != nil {
		return nil, err
	}
	return p.plan.RunShardSegment(ctx, seg)
}

// clusterDataset builds one table plus its K-shard split, with shard
// boundaries aligned to chunk commits (blockSize=64 -> 4096-row chunks).
func clusterDataset(t testing.TB, rows, k int) (*colstore.Table, []*colstore.Table) {
	t.Helper()
	ds, err := datagen.Generate(datagen.Spec{
		Name: "t", Rows: rows, Seed: 7, Clusters: 6, BlockSize: 64,
		Columns: []datagen.ColumnSpec{
			{Name: "Z", Cardinality: 20, Skew: 0.8, ClusterConcentration: 0.5},
			{Name: "X", Cardinality: 8, Skew: 0.3, ClusterConcentration: 0.5},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	tbl := ds.Table
	align := tbl.BlockSize() * engine.ChunkBlocks(tbl.BlockSize())
	shards, err := colstore.ShardTables(tbl, k, align)
	if err != nil {
		t.Fatal(err)
	}
	return tbl, shards
}

func testParams() core.Params {
	return core.Params{
		K: 3, Epsilon: 0.10, Delta: 0.05, Sigma: 0.002,
		Stage1Samples: 10_000, Metric: histogram.MetricL1,
	}
}

func clusterOptions(exec engine.Executor) engine.Options {
	return engine.Options{
		Params:   testParams(),
		Executor: exec,
		// Small marking window that divides the chunk size (64 blocks), so
		// FastMatch tile anchors coincide on both sides of every shard
		// boundary.
		Lookahead:  8,
		StartBlock: -1,
		Seed:       11,
	}
}

func baseQuery() engine.Query { return engine.Query{Z: "Z", X: []string{"X"}} }

func shardSet(t testing.TB, parts []*colstore.Table) []Shard {
	t.Helper()
	out := make([]Shard, len(parts))
	for i, part := range parts {
		plan, err := engine.New(part).Prepare(baseQuery())
		if err != nil {
			t.Fatal(err)
		}
		out[i] = &planShard{name: fmt.Sprintf("s%d", i), plan: plan}
	}
	return out
}

func canonical(t testing.TB, res *engine.Result) string {
	t.Helper()
	c := *res
	c.Duration = 0
	b, err := json.Marshal(&c)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func progressLog(t testing.TB, seq *[]string) func(engine.Progress) {
	return func(p engine.Progress) {
		p.Elapsed = 0
		b, err := json.Marshal(&p)
		if err != nil {
			t.Fatal(err)
		}
		*seq = append(*seq, string(b))
	}
}

func allExecutors() []engine.Executor {
	return []engine.Executor{engine.Scan, engine.ScanMatch, engine.SyncMatch, engine.FastMatch}
}

func isSampling(exec engine.Executor) bool {
	return exec != engine.Scan && exec != engine.ParallelScan
}

// TestCoordinatedByteIdentical is the core contract: for K in {1,2,3}
// shards, every executor's coordinated answer equals the single-node
// answer over the concatenated data byte-for-byte — result, IOStats,
// and (for the sampling executors, whose frames are deterministic) the
// full progress sequence.
func TestCoordinatedByteIdentical(t *testing.T) {
	const rows = 40_000
	tbl, _ := clusterDataset(t, rows, 1)
	single := engine.New(tbl)
	for _, exec := range allExecutors() {
		opts := clusterOptions(exec)
		var wantSeq []string
		opts.OnProgress = progressLog(t, &wantSeq)
		res, err := single.Run(baseQuery(), engine.Target{Uniform: true}, opts)
		if err != nil {
			t.Fatalf("%s single-node: %v", exec, err)
		}
		want := canonical(t, res)
		for k := 1; k <= 3; k++ {
			t.Run(fmt.Sprintf("%s/k=%d", exec, k), func(t *testing.T) {
				_, parts := clusterDataset(t, rows, k)
				coord := New(shardSet(t, parts)...)
				copts := clusterOptions(exec)
				var seq []string
				copts.OnProgress = progressLog(t, &seq)
				cres, err := coord.Run(context.Background(), engine.Target{Uniform: true}, copts)
				if err != nil {
					t.Fatalf("coordinated: %v", err)
				}
				if cres.Degraded || len(cres.Missing) != 0 {
					t.Fatalf("healthy cluster reported degraded: %+v", cres)
				}
				if got := canonical(t, cres.Result); got != want {
					t.Fatalf("k=%d result diverges from single node:\n%s\nvs\n%s", k, got, want)
				}
				if cres.Result.IO != res.IO {
					t.Fatalf("k=%d IOStats diverge: %+v vs %+v", k, cres.Result.IO, res.IO)
				}
				if isSampling(exec) {
					if len(seq) != len(wantSeq) {
						t.Fatalf("k=%d emitted %d progress frames, single node %d", k, len(seq), len(wantSeq))
					}
					for i := range seq {
						if seq[i] != wantSeq[i] {
							t.Fatalf("k=%d progress frame %d diverges:\n%s\nvs\n%s", k, i, seq[i], wantSeq[i])
						}
					}
				}
			})
		}
	}
}

// TestCoordinatedCandidateTarget pins the scatter-gather target path:
// a candidate target is itself resolved by summing per-shard exact
// histograms, and must match the single node bit-for-bit.
func TestCoordinatedCandidateTarget(t *testing.T) {
	const rows = 40_000
	tbl, parts := clusterDataset(t, rows, 3)
	single := engine.New(tbl)
	target := engine.Target{Candidate: "Z_1"}
	for _, exec := range []engine.Executor{engine.Scan, engine.SyncMatch} {
		opts := clusterOptions(exec)
		res, err := single.Run(baseQuery(), target, opts)
		if err != nil {
			t.Fatalf("%s single-node: %v", exec, err)
		}
		coord := New(shardSet(t, parts)...)
		cres, err := coord.Run(context.Background(), target, clusterOptions(exec))
		if err != nil {
			t.Fatalf("%s coordinated: %v", exec, err)
		}
		if got, want := canonical(t, cres.Result), canonical(t, res); got != want {
			t.Fatalf("%s candidate-target result diverges:\n%s\nvs\n%s", exec, got, want)
		}
	}
}

// TestCoordinatedBudgetPartial pins the interruption contract: a row
// budget must stop a coordinated run at the same committed block as the
// single-node run — identical partial result bytes, identical typed
// error text.
func TestCoordinatedBudgetPartial(t *testing.T) {
	const rows = 40_000
	tbl, _ := clusterDataset(t, rows, 1)
	single := engine.New(tbl)
	for _, exec := range allExecutors() {
		for _, budget := range []int64{3_000, 12_000} {
			t.Run(fmt.Sprintf("%s/budget=%d", exec, budget), func(t *testing.T) {
				opts := clusterOptions(exec)
				opts.RowBudget = budget
				var wantSeq []string
				opts.OnProgress = progressLog(t, &wantSeq)
				res, err := single.Run(baseQuery(), engine.Target{Uniform: true}, opts)
				if err == nil || !errors.Is(err, engine.ErrBudgetExhausted) {
					t.Fatalf("single-node: expected budget stop, got %v", err)
				}
				for k := 2; k <= 3; k++ {
					_, parts := clusterDataset(t, rows, k)
					coord := New(shardSet(t, parts)...)
					copts := clusterOptions(exec)
					copts.RowBudget = budget
					var seq []string
					copts.OnProgress = progressLog(t, &seq)
					cres, cerr := coord.Run(context.Background(), engine.Target{Uniform: true}, copts)
					if cerr == nil || !errors.Is(cerr, engine.ErrBudgetExhausted) {
						t.Fatalf("k=%d: expected budget stop, got %v", k, cerr)
					}
					if cerr.Error() != err.Error() {
						t.Fatalf("k=%d stop error diverges: %q vs %q", k, cerr, err)
					}
					if res == nil || cres == nil {
						t.Fatalf("k=%d: missing partial result (%v, %v)", k, res, cres)
					}
					if got, want := canonical(t, cres.Result), canonical(t, res); got != want {
						t.Fatalf("k=%d partial result diverges:\n%s\nvs\n%s", k, got, want)
					}
					if isSampling(exec) && len(seq) != len(wantSeq) {
						t.Fatalf("k=%d partial emitted %d frames, single node %d", k, len(seq), len(wantSeq))
					}
				}
			})
		}
	}
}

// TestCoordinatedCancel pins cancellation: a pre-canceled context must
// surface the same typed error as the single-node guard.
func TestCoordinatedCancel(t *testing.T) {
	_, parts := clusterDataset(t, 40_000, 2)
	coord := New(shardSet(t, parts)...)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := coord.Run(ctx, engine.Target{Uniform: true}, clusterOptions(engine.SyncMatch))
	if err == nil || !errors.Is(err, engine.ErrCanceled) {
		t.Fatalf("expected ErrCanceled, got %v", err)
	}
}

// TestCoordinatedShardLoss pins degraded-but-honest: a shard that dies
// mid-run yields a 200-style partial — Partial:true, the dead shard
// named in Missing, totals covering only data actually read — never an
// error and never a silently wrong total.
func TestCoordinatedShardLoss(t *testing.T) {
	const rows = 40_000
	for _, exec := range allExecutors() {
		t.Run(exec.String(), func(t *testing.T) {
			_, parts := clusterDataset(t, rows, 3)
			shards := shardSet(t, parts)
			// Let the dying shard answer its meta, then fail its first
			// segment call — a death between connect and execution.
			dying := shards[1].(*planShard)
			dying.fail = errors.New("connection refused")
			dying.allow = 1
			coord := New(shards...)
			cres, err := coord.Run(context.Background(), engine.Target{Uniform: true}, clusterOptions(exec))
			if err != nil {
				t.Fatalf("shard loss must degrade, not error: %v", err)
			}
			if !cres.Degraded {
				t.Fatal("shard loss not reported as degraded")
			}
			if len(cres.Missing) != 1 || cres.Missing[0] != "s1" {
				t.Fatalf("missing shards %v, want [s1]", cres.Missing)
			}
			if !cres.Result.Partial || cres.Result.Exact {
				t.Fatalf("degraded run must be Partial and not Exact: partial=%v exact=%v",
					cres.Result.Partial, cres.Result.Exact)
			}
			var unhealthy int
			for _, s := range cres.Shards {
				if !s.Healthy {
					unhealthy++
					if s.Error == "" {
						t.Fatal("dead shard status carries no error")
					}
				}
			}
			if unhealthy != 1 {
				t.Fatalf("%d unhealthy shards, want 1", unhealthy)
			}
			// Honest totals: the fold can only contain data actually read.
			maxRows := int64(parts[0].NumRows() + parts[1].NumRows() + parts[2].NumRows())
			if cres.Result.IO.TuplesRead > maxRows {
				t.Fatalf("degraded run claims %d tuples read of %d total", cres.Result.IO.TuplesRead, maxRows)
			}
		})
	}
}

// TestCoordinatedDeadAtConnect: a shard unreachable at connect time
// degrades the run up front; all shards unreachable is an error.
func TestCoordinatedDeadAtConnect(t *testing.T) {
	_, parts := clusterDataset(t, 40_000, 2)
	shards := shardSet(t, parts)
	dead := shards[1].(*planShard)
	dead.fail = errors.New("no route to host")
	dead.allow = 0
	coord := New(shards...)
	cres, err := coord.Run(context.Background(), engine.Target{Uniform: true}, clusterOptions(engine.ScanMatch))
	if err != nil {
		t.Fatalf("dead-at-connect must degrade, not error: %v", err)
	}
	if !cres.Degraded || len(cres.Missing) != 1 || cres.Missing[0] != "s1" {
		t.Fatalf("expected degraded run missing s1, got %+v", cres)
	}
	if !cres.Result.Partial {
		t.Fatal("degraded run must be Partial")
	}

	for _, s := range shards {
		ps := s.(*planShard)
		ps.fail = errors.New("no route to host")
		ps.allow = 0
		ps.calls.Store(0)
	}
	if _, err := New(shards...).Run(context.Background(), engine.Target{Uniform: true}, clusterOptions(engine.ScanMatch)); err == nil {
		t.Fatal("all shards unreachable must be an error")
	}
}

// TestCoordinatedAudit pins the coordinated audit path: grading a
// coordinated sampling answer against the coordinated exact reference
// must match engine.AuditRun's grade of the single-node equivalents.
func TestCoordinatedAudit(t *testing.T) {
	const rows = 40_000
	tbl, parts := clusterDataset(t, rows, 3)
	single := engine.New(tbl)
	opts := clusterOptions(engine.SyncMatch)
	plan, err := single.Prepare(baseQuery())
	if err != nil {
		t.Fatal(err)
	}
	res, err := plan.Run(engine.Target{Uniform: true}, opts)
	if err != nil {
		t.Fatal(err)
	}
	target, err := plan.ResolveTarget(engine.Target{Uniform: true}, 1)
	if err != nil {
		t.Fatal(err)
	}
	want, err := engine.AuditRun(context.Background(), plan, target, res, opts)
	if err != nil {
		t.Fatal(err)
	}

	coord := New(shardSet(t, parts)...)
	cres, err := coord.Run(context.Background(), engine.Target{Uniform: true}, clusterOptions(engine.SyncMatch))
	if err != nil {
		t.Fatal(err)
	}
	got, err := coord.Audit(context.Background(), engine.Target{Uniform: true}, cres.Result, opts)
	if err != nil {
		t.Fatal(err)
	}
	// The audit timing/IO fields reflect the reference pass's own cost;
	// zero both sides before comparing.
	want.ExactDuration, got.ExactDuration = 0, 0
	wb, _ := json.Marshal(want)
	gb, _ := json.Marshal(got)
	if string(wb) != string(gb) {
		t.Fatalf("coordinated audit diverges:\n%s\nvs\n%s", gb, wb)
	}

	if _, err := coord.Audit(context.Background(), engine.Target{Uniform: true}, &engine.Result{}, opts); err == nil {
		t.Fatal("empty answer must be refused")
	}
	partial := *cres.Result
	partial.Partial = true
	if _, err := coord.Audit(context.Background(), engine.Target{Uniform: true}, &partial, opts); err == nil {
		t.Fatal("partial answer must be refused")
	}
}
