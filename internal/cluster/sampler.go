package cluster

import (
	"context"
	"fmt"

	"fastmatch/internal/core"
	"fastmatch/internal/engine"
	"fastmatch/internal/obs/trace"
)

// distSampler implements core.Sampler over the shard set: one logical
// blockSampler whose block space is the concatenation of the shards'
// spaces, executed by chaining stateless per-shard segments in global
// cursor order. It mirrors blockSampler's walk exactly — same per-pass
// visit budget, same break conditions in the same order, same eager
// wrap accounting — so a coordinated run makes the identical sequence
// of sampling decisions a single node over the concatenated data would.
type distSampler struct {
	st      *runState
	ctx     context.Context
	runSpan *trace.Span

	// Walk position: shard index into st.walk plus the local cursor
	// within it (the coordinator owns the wrap; shard segments park at
	// their local block count).
	shardIdx int
	cursor   int

	totalCons int    // blocks consumed across all shards
	exact     []bool // sticky per-candidate exhaustion flags (global)
	io        engine.IOStats
}

func newDistSampler(st *runState, ctx context.Context, start int, runSpan *trace.Span) *distSampler {
	d := &distSampler{
		st:      st,
		ctx:     ctx,
		runSpan: runSpan,
		exact:   make([]bool, st.nCand),
	}
	// Map the normalized global start block to (shard, local cursor).
	for i, sr := range st.walk {
		if start < sr.meta.Blocks {
			d.shardIdx = i
			d.cursor = start
			return d
		}
		start -= sr.meta.Blocks
	}
	return d
}

// NumCandidates implements core.Sampler.
func (d *distSampler) NumCandidates() int { return d.st.nCand }

// Groups implements core.Sampler.
func (d *distSampler) Groups() int { return d.st.groups }

// TotalRows implements core.Sampler. Dead-at-connect shards are outside
// the run's block space and excluded here too: stage-1 p-values reason
// about the data actually reachable.
func (d *distSampler) TotalRows() int64 { return d.st.totalRows }

// Stats returns the run's accumulated I/O counters (summed shard
// segment deltas plus coordinator-accounted wraps).
func (d *distSampler) Stats() engine.IOStats { return d.io }

func (d *distSampler) allConsumed() bool { return d.totalCons >= d.st.globalNB }

// seal mirrors blockSampler.sealBatch over the global state.
func (d *distSampler) seal(b *core.Batch) *core.Batch {
	b.Exhausted = d.allConsumed()
	b.Exact = append([]bool(nil), d.exact...)
	if b.Exhausted {
		for i := range b.Exact {
			b.Exact[i] = true
		}
	}
	return b
}

// Stage1 implements core.Sampler: sequential whole-block reads chained
// across shards until m tuples have been drawn.
func (d *distSampler) Stage1(m int) (*core.Batch, error) {
	batch := d.st.newBatch()
	err := d.pass(batch, m, nil)
	return d.seal(batch), err
}

// SampleUntil implements core.Sampler: one deficit round chained across
// shards under the executor's block policy, with the same exactness
// inference blockSampler applies after a completed pass.
func (d *distSampler) SampleUntil(need map[int]int) (*core.Batch, error) {
	batch := d.st.newBatch()
	deficits := make(map[int]int64)
	for id, n := range need {
		if id < 0 || id >= d.st.nCand {
			return nil, coreNeedErr(id)
		}
		if n > 0 && !d.exact[id] {
			deficits[id] = int64(n)
		}
	}
	if len(deficits) == 0 {
		return d.seal(batch), nil
	}
	if stopErr := d.pass(batch, -1, deficits); stopErr != nil {
		// Interrupted mid-pass: exactness inference needs a completed
		// pass, so hand the partial batch up as-is.
		return d.seal(batch), stopErr
	}
	// A candidate still in deficit after a full pass has no tuples left
	// in unconsumed blocks on any live shard, so its cumulative estimate
	// is exact — unless a shard died (degraded runs claim nothing).
	if !d.st.degraded {
		for id, def := range deficits {
			if def > 0 && d.exhaustedGlobally(id) {
				d.exact[id] = true
			}
		}
	}
	return d.seal(batch), nil
}

// exhaustedGlobally ANDs the freshest per-shard local-exhaustion flags:
// a shard's flags only change when one of its own segments runs, so the
// last-reported value is current for every live shard.
func (d *distSampler) exhaustedGlobally(id int) bool {
	for _, sr := range d.st.walk {
		if !sr.exh[id] {
			return false
		}
	}
	return true
}

// pass is the distributed twin of blockSampler.runRound: one sampling
// pass over the global block space, executed as a chain of shard
// segments. stage1Need ≥ 0 selects stage-1 mode (deficits nil);
// stage1Need < 0 selects deficit mode (deficits is the live residual
// map, mutated in place). The break conditions — drawn target / unmet
// deficits, global all-consumed, per-pass visit budget, termination
// guard — are evaluated in runRound's order so the pass ends exactly
// where the single-node loop's would.
func (d *distSampler) pass(batch *core.Batch, stage1Need int, deficits map[int]int64) error {
	st := d.st
	if st.globalNB == 0 {
		return nil
	}
	stage1 := stage1Need >= 0
	visits := st.globalNB
	for {
		if stage1 {
			if batch.Drawn >= int64(stage1Need) {
				return nil
			}
		} else if unmetCount(deficits) == 0 {
			return nil
		}
		if d.allConsumed() {
			return nil
		}
		if visits <= 0 {
			return nil
		}
		if err := st.stopCheck(); err != nil {
			return err
		}
		sr := st.walk[d.shardIdx]
		if sr.dead {
			// Walk past a dead shard: its blocks were folded in as
			// consumed when it died, so this mirrors the single-node
			// cursor skipping over already-consumed blocks — one visit
			// per block, nothing read.
			visits -= sr.meta.Blocks - d.cursor
			d.advanceShard()
			continue
		}
		if d.cursor >= sr.meta.Blocks {
			d.advanceShard()
			continue
		}
		req := &engine.ShardSegment{
			Kind:               engine.SegRound,
			Executor:           st.opts.Executor,
			Lookahead:          st.opts.Lookahead,
			Workers:            st.opts.Workers,
			DisableBlockSkip:   st.opts.DisableBlockSkip,
			DisableScanKernels: st.opts.DisableScanKernels,
			Cursor:             d.cursor,
			Consumed:           sr.consumed,
			ConsumedCount:      sr.consCnt,
			Visits:             visits,
			GlobalBlocks:       st.globalNB,
			OthersConsumed:     d.totalCons - sr.consCnt,
			RowBudget:          st.residualBudget(),
			Deadline:           st.deadline,
		}
		if stage1 {
			req.Kind = engine.SegStage1
			req.Stage1Need = stage1Need - int(batch.Drawn)
		} else {
			req.Deficits = deficits
		}
		res, err := sr.shard.Segment(d.ctx, req)
		var part *core.Batch
		if err == nil {
			part, err = core.DecodeBatch(res.Batch)
		}
		sr.segments++
		if err != nil {
			// Degraded-but-honest: treat the dead shard's remaining
			// blocks as consumed with zero contribution. The answer
			// stays a true partial over the data actually read; run()
			// forces Partial on the final result and names the shard.
			st.markDead(sr, err)
			shardSpan(d.runSpan, sr, req, nil, false)
			visits -= sr.meta.Blocks - d.cursor
			d.totalCons += sr.meta.Blocks - sr.consCnt
			sr.consCnt = sr.meta.Blocks
			d.advanceShard()
			continue
		}
		if err := batch.Merge(part); err != nil {
			return err
		}
		st.charged += part.Drawn
		sr.io.Add(res.IO)
		d.io.Add(res.IO)
		d.totalCons += res.ConsumedCount - sr.consCnt
		sr.consumed = res.Consumed
		sr.consCnt = res.ConsumedCount
		sr.exh = res.LocalExhausted
		d.cursor = res.Cursor
		visits -= res.Visited
		if !stage1 {
			replaceDeficits(deficits, res.Deficits)
		}
		shardSpan(d.runSpan, sr, req, res, false)
		if res.Stopped != "" {
			return res.StopError(st.budget, st.charged)
		}
		if d.cursor >= sr.meta.Blocks {
			// The segment parked at its shard's end: chain to the next
			// shard now, wrapping eagerly like blockSampler.advance does
			// (the wrap is accounted even if the pass ends here).
			d.advanceShard()
		}
	}
}

// advanceShard moves the walk to the next shard, wrapping to shard 0 —
// and accounting the wrap — past the last one. The coordinator owns the
// Wraps counter: shard segments never wrap locally.
func (d *distSampler) advanceShard() {
	d.shardIdx++
	d.cursor = 0
	if d.shardIdx >= len(d.st.walk) {
		d.shardIdx = 0
		d.io.Wraps++
	}
}

// coreNeedErr mirrors the engine sampler's unknown-candidate error.
func coreNeedErr(id int) error {
	return fmt.Errorf("engine: need for unknown candidate %d", id)
}

func unmetCount(deficits map[int]int64) int {
	n := 0
	for _, def := range deficits {
		if def > 0 {
			n++
		}
	}
	return n
}

// replaceDeficits rewrites the global residual map with a segment's
// leftover demands (deficits only shrink within a round).
func replaceDeficits(deficits, residual map[int]int64) {
	for id := range deficits {
		deficits[id] = residual[id]
	}
}
