// Package cluster implements the distributed scatter-gather layer: a
// coordinator that owns a sharded table (row-range shards, each served
// by an independent fastmatchd process) and answers queries by folding
// per-shard partials with the exact algebra the intra-node path uses —
// core.Batch.Merge for sampler state and IOStats.Add for accounting.
//
// The coordinator drives core.RunObserved itself, exactly as a
// single-node run does; only the core.Sampler underneath differs: a
// distributed sampler that chains the global block-cursor walk through
// stateless per-shard segments (engine.RunShardSegment). Because chunk
// commits and FastMatch marking tiles are anchored to block indices,
// shard files whose block counts are multiples of engine.ChunkBlocks
// (and, for FastMatch, of the lookahead) hand segments off exactly at
// the positions the single-node walk would have committed — making a
// K-shard answer byte-identical to a single node over the concatenated
// data. The equivalence suite enforces this.
//
// Robustness is degraded-but-honest: a shard that dies mid-run has its
// remaining blocks treated as consumed-with-zero-contribution, the
// answer is marked Partial with the missing shard named, and totals
// only ever count data actually read — never an error, never a wrong
// total.
package cluster

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"fastmatch/internal/core"
	"fastmatch/internal/engine"
	"fastmatch/internal/histogram"
	"fastmatch/internal/obs/trace"
)

// Shard is one member of a coordinated table: it answers plan metadata
// and stateless segment calls for the coordinator's current query. The
// HTTP implementation is Client.Bind; tests use in-process shards.
type Shard interface {
	Name() string
	Meta(ctx context.Context) (*engine.ShardMeta, error)
	Segment(ctx context.Context, seg *engine.ShardSegment) (*engine.ShardSegmentResult, error)
}

// ShardStatus reports one shard's health after a coordinated run.
type ShardStatus struct {
	Name    string `json:"name"`
	Healthy bool   `json:"healthy"`
	Error   string `json:"error,omitempty"`
	// Segments counts segment calls issued to this shard during the run.
	Segments int64 `json:"segments"`
	Blocks   int   `json:"blocks,omitempty"`
	Rows     int   `json:"rows,omitempty"`
}

// Result is a coordinated answer: the engine result plus per-shard
// status. Degraded runs carry Partial results with every missing shard
// named.
type Result struct {
	Result *engine.Result
	Shards []ShardStatus
	// Missing names the shards that did not contribute (dead at connect
	// or mid-run). Non-empty iff Degraded.
	Missing  []string
	Degraded bool
}

// Coordinator owns an ordered shard set; shard order defines the global
// block space (shard 0's blocks first). It is stateless across runs and
// safe for concurrent use.
type Coordinator struct {
	shards []Shard
}

// New builds a coordinator over the given shards. Order matters: it is
// the global block order, which must match the row-range partition.
func New(shards ...Shard) *Coordinator {
	return &Coordinator{shards: shards}
}

// Shards returns the configured shard set.
func (c *Coordinator) Shards() []Shard { return c.shards }

// Run answers a query across the shard set with the same contract as
// Plan.RunContext: typed interruption errors alongside best-effort
// partial results, progress through opts.OnProgress, tracing through
// opts.Trace (one child span per shard segment).
func (c *Coordinator) Run(ctx context.Context, t engine.Target, opts engine.Options) (*Result, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	st, err := c.connect(ctx, opts)
	if err != nil {
		return nil, err
	}
	if err := st.stopCheck(); err != nil {
		return nil, err
	}
	rsp := opts.Trace.Start("resolve_target")
	target, err := st.resolveTarget(ctx, t)
	rsp.End()
	if err != nil {
		return nil, err
	}
	return st.run(ctx, target)
}

// shardRun is one shard's per-run state, owned by the coordinator.
type shardRun struct {
	shard    Shard
	meta     *engine.ShardMeta
	dead     bool
	errMsg   string
	segments int64
	io       engine.IOStats
	// consumed/consCnt mirror the shard's slice of the global consumed
	// set; exh is the last-known per-candidate local exhaustion.
	consumed []uint64
	consCnt  int
	exh      []bool
}

// runState is the per-run coordinator state: validated metas, the
// global budget/deadline accounting (the distributed twin of the
// engine's runGuard), and degraded-mode bookkeeping.
type runState struct {
	ctx  context.Context
	opts engine.Options

	shards []*shardRun // all configured shards, in global block order
	walk   []*shardRun // live-at-connect shards: the global block space

	nCand       int
	groups      int
	labels      []string
	groupLabels []string
	globalNB    int
	totalRows   int64

	charged  int64 // rows charged against the budget so far
	budget   int64
	deadline time.Time

	degraded bool
	began    time.Time
}

func (c *Coordinator) connect(ctx context.Context, opts engine.Options) (*runState, error) {
	if len(c.shards) == 0 {
		return nil, errors.New("cluster: no shards configured")
	}
	st := &runState{
		ctx:      ctx,
		opts:     opts,
		budget:   opts.RowBudget,
		deadline: opts.Deadline,
		began:    time.Now(),
		shards:   make([]*shardRun, len(c.shards)),
	}
	var wg sync.WaitGroup
	for i, sh := range c.shards {
		sr := &shardRun{shard: sh}
		st.shards[i] = sr
		wg.Add(1)
		go func() {
			defer wg.Done()
			meta, err := sh.Meta(ctx)
			if err != nil {
				sr.dead = true
				sr.errMsg = err.Error()
				return
			}
			sr.meta = meta
		}()
	}
	wg.Wait()

	var ref *engine.ShardMeta
	for _, sr := range st.shards {
		if sr.dead {
			st.degraded = true
			continue
		}
		m := sr.meta
		if ref == nil {
			ref = m
		} else if err := metaMatch(ref, m); err != nil {
			return nil, fmt.Errorf("cluster: shard %q: %w", sr.shard.Name(), err)
		}
		sr.exh = append([]bool(nil), m.Absent...)
		if sr.exh == nil {
			sr.exh = make([]bool, m.Candidates)
		}
		st.walk = append(st.walk, sr)
		st.globalNB += m.Blocks
		st.totalRows += int64(m.Rows)
	}
	if ref == nil {
		return nil, fmt.Errorf("cluster: all %d shards unreachable", len(c.shards))
	}
	st.nCand = ref.Candidates
	st.groups = ref.Groups
	st.labels = ref.Labels
	st.groupLabels = ref.GroupLabels
	return st, nil
}

// metaMatch validates that two shards expose the same plan domain: the
// merge algebra is only sound over identical candidate and group spaces
// (dictionary-driven IDs — datagen -shards shares full dictionaries so
// this holds by construction).
func metaMatch(a, b *engine.ShardMeta) error {
	switch {
	case a.BlockSize != b.BlockSize:
		return fmt.Errorf("block size %d differs from %d", b.BlockSize, a.BlockSize)
	case a.Candidates != b.Candidates:
		return fmt.Errorf("candidate domain %d differs from %d", b.Candidates, a.Candidates)
	case a.Groups != b.Groups:
		return fmt.Errorf("group count %d differs from %d", b.Groups, a.Groups)
	}
	for i := range a.Labels {
		if a.Labels[i] != b.Labels[i] {
			return fmt.Errorf("candidate %d is %q, expected %q (shards must share dictionaries)", i, b.Labels[i], a.Labels[i])
		}
	}
	for i := range a.GroupLabels {
		if a.GroupLabels[i] != b.GroupLabels[i] {
			return fmt.Errorf("group %d is %q, expected %q (shards must share dictionaries)", i, b.GroupLabels[i], a.GroupLabels[i])
		}
	}
	return nil
}

func (st *runState) labelOf(i int) string { return st.labels[i] }

// newBatch allocates an empty global batch over the candidate domain.
func (st *runState) newBatch() *core.Batch {
	return &core.Batch{Counts: make([]int64, st.nCand), Hists: make([]*histogram.Histogram, st.nCand)}
}

// stopCheck is the coordinator-side twin of runGuard.stop, evaluated
// between segments in the same order (context, budget, deadline) so a
// coordinated stop lands exactly where the single-node guard's would.
func (st *runState) stopCheck() error {
	if st.ctx != nil {
		if err := st.ctx.Err(); err != nil {
			return engine.CanceledStopError(err)
		}
	}
	if st.budget > 0 && st.charged >= st.budget {
		return engine.BudgetStopError(st.budget, st.charged)
	}
	if !st.deadline.IsZero() && !time.Now().Before(st.deadline) {
		return engine.CanceledStopError(context.DeadlineExceeded)
	}
	return nil
}

// residualBudget is the row budget left for the next segment (0 =
// unlimited; an exhausted budget never reaches a shard — stopCheck
// fires first).
func (st *runState) residualBudget() int64 {
	if st.budget <= 0 {
		return 0
	}
	return st.budget - st.charged
}

// sequential reports whether segment fan-out must be sequential to
// preserve determinism: budget and deadline stops are charged in block
// order, so concurrent shards would race the stop point.
func (st *runState) sequential() bool {
	return st.budget > 0 || !st.deadline.IsZero()
}

func (st *runState) markDead(sr *shardRun, err error) {
	sr.dead = true
	sr.errMsg = err.Error()
	st.degraded = true
}

func interrupted(err error) bool {
	return errors.Is(err, engine.ErrCanceled) || errors.Is(err, engine.ErrBudgetExhausted)
}

// resolveTarget mirrors Plan.resolveTarget across the shard set:
// explicit and uniform targets resolve locally; candidate targets by an
// exact scatter-gather scan of the candidate's blocks. Target I/O is
// excluded from the run's IOStats (the single-node contract) but its
// rows are charged against the budget, exactly as the shared guard
// charges them intra-node.
func (st *runState) resolveTarget(ctx context.Context, t engine.Target) (*histogram.Histogram, error) {
	switch {
	case len(t.Counts) > 0:
		if len(t.Counts) != st.groups {
			return nil, fmt.Errorf("engine: target has %d groups, query produces %d", len(t.Counts), st.groups)
		}
		return histogram.FromCounts(t.Counts), nil
	case t.Uniform:
		counts := make([]float64, st.groups)
		for i := range counts {
			counts[i] = 1
		}
		return histogram.FromCounts(counts), nil
	case t.Candidate != "":
		id := -1
		for i, l := range st.labels {
			if l == t.Candidate {
				id = i
				break
			}
		}
		if id < 0 {
			return nil, fmt.Errorf("engine: target candidate %q not found", t.Candidate)
		}
		return st.resolveCandidateTarget(ctx, id)
	default:
		return nil, fmt.Errorf("engine: empty target specification")
	}
}

// resolveCandidateTarget sums the candidate's exact local histograms. A
// shard failure here is an error, not degradation: a target missing a
// shard's rows would silently change the question being asked (the
// single-node analogue — an interrupted target scan — errors too).
func (st *runState) resolveCandidateTarget(ctx context.Context, id int) (*histogram.Histogram, error) {
	h := histogram.New(st.groups)
	fold := func(sr *shardRun, res *engine.ShardSegmentResult, err error) error {
		if err != nil {
			return fmt.Errorf("cluster: target resolution on shard %q: %w", sr.shard.Name(), err)
		}
		part, err := core.DecodeBatch(res.Batch)
		if err != nil {
			return fmt.Errorf("cluster: target resolution on shard %q: %w", sr.shard.Name(), err)
		}
		st.charged += part.Drawn
		sr.segments++
		if res.Stopped != "" {
			return res.StopError(st.budget, st.charged)
		}
		if ph := part.Hists[id]; ph != nil {
			if err := h.AddHistogram(ph); err != nil {
				return fmt.Errorf("cluster: target resolution on shard %q: %w", sr.shard.Name(), err)
			}
		}
		return nil
	}
	mkReq := func() *engine.ShardSegment {
		return &engine.ShardSegment{
			Kind:            engine.SegTarget,
			Workers:         st.opts.Workers,
			TargetCandidate: id,
			Deadline:        st.deadline,
		}
	}
	if st.sequential() {
		for _, sr := range st.walk {
			if err := st.stopCheck(); err != nil {
				return nil, err
			}
			req := mkReq()
			req.RowBudget = st.residualBudget()
			res, err := sr.shard.Segment(ctx, req)
			if err := fold(sr, res, err); err != nil {
				return nil, err
			}
		}
		return h, nil
	}
	results, err := st.fanout(ctx, mkReq)
	if err != nil {
		return nil, err
	}
	for _, r := range results {
		if err := fold(r.sr, r.res, r.err); err != nil {
			return nil, err
		}
	}
	return h, nil
}

// run executes the query against a resolved target, mirroring
// Plan.runWithTarget.
func (st *runState) run(ctx context.Context, target *histogram.Histogram) (*Result, error) {
	opts := st.opts
	if target.Groups() != st.groups {
		return nil, fmt.Errorf("engine: target has %d groups, query produces %d", target.Groups(), st.groups)
	}
	began := time.Now()
	runSpan := opts.Trace.StartAt("run", began)
	runSpan.SetAttr("executor", opts.Executor.String())
	runSpan.SetAttr("shards", len(st.shards))
	defer runSpan.End()
	if opts.Executor == engine.Scan || opts.Executor == engine.ParallelScan {
		return st.runScan(ctx, target, began, runSpan)
	}
	if opts.Quality {
		opts.Params.CollectQuality = true
	}
	start := opts.StartBlock
	if start < 0 {
		if st.globalNB > 0 {
			start = rand.New(rand.NewSource(opts.Seed)).Intn(st.globalNB)
		} else {
			start = 0
		}
	} else if st.globalNB > 0 {
		start = ((start % st.globalNB) + st.globalNB) % st.globalNB
	} else {
		start = 0
	}
	ds := newDistSampler(st, ctx, start, runSpan)
	obs, obsClose := engine.RunObserver(began, opts, ds.Stats, st.labelOf, runSpan)
	defer obsClose()
	coreRes, err := core.RunObserved(ds, target, opts.Params, obs)
	if err != nil && (coreRes == nil || !interrupted(err)) {
		return nil, err
	}
	res := engine.SamplingResult(coreRes, ds.Stats(), time.Since(began), st.groupLabels, st.labelOf)
	if st.degraded {
		// Degraded-but-honest: the dead shard's blocks were folded in as
		// consumed-with-zero-contribution, so totals only count data
		// actually read — but no exactness or guarantee can be claimed.
		res.Exact = false
		res.Partial = true
	}
	return st.finish(res), err
}

// finish attaches per-shard statuses to the engine result.
func (st *runState) finish(res *engine.Result) *Result {
	out := &Result{Result: res, Degraded: st.degraded}
	for _, sr := range st.shards {
		s := ShardStatus{
			Name:     sr.shard.Name(),
			Healthy:  !sr.dead,
			Error:    sr.errMsg,
			Segments: sr.segments,
		}
		if sr.meta != nil {
			s.Blocks = sr.meta.Blocks
			s.Rows = sr.meta.Rows
		}
		out.Shards = append(out.Shards, s)
		if sr.dead {
			out.Missing = append(out.Missing, sr.shard.Name())
		}
	}
	return out
}

// fanoutWindow bounds the coordinator's concurrent fan-out: shard
// responses stream through a channel of this capacity, so at most this
// many undecoded partials are ever buffered regardless of shard count.
const fanoutWindow = 4

type fanoutResult struct {
	sr  *shardRun
	res *engine.ShardSegmentResult
	err error
}

// fanout issues one segment per live shard concurrently and returns the
// responses in shard order. Responses stream through a fixed-size
// channel — memory stays bounded by fanoutWindow, not by shard count —
// and folding happens on the caller's goroutine. Only order-independent
// folds (integer-sum merges) may use this; budgeted runs must go
// sequential.
func (st *runState) fanout(ctx context.Context, mkReq func() *engine.ShardSegment) ([]fanoutResult, error) {
	live := st.liveWalk()
	ch := make(chan fanoutResult, fanoutWindow)
	for _, sr := range live {
		go func(sr *shardRun) {
			res, err := sr.shard.Segment(ctx, mkReq())
			ch <- fanoutResult{sr: sr, res: res, err: err}
		}(sr)
	}
	byShard := make(map[*shardRun]fanoutResult, len(live))
	for range live {
		r := <-ch
		byShard[r.sr] = r
	}
	out := make([]fanoutResult, 0, len(live))
	for _, sr := range live {
		out = append(out, byShard[sr])
	}
	return out, nil
}

func (st *runState) liveWalk() []*shardRun {
	out := make([]*shardRun, 0, len(st.walk))
	for _, sr := range st.walk {
		if !sr.dead {
			out = append(out, sr)
		}
	}
	return out
}

// shardSpan records a segment call's trace child. Sampling segments are
// attribute-only (phase spans own the IO deltas); exact-scan segments
// carry their IO so the span tree sums to the run's total.
func shardSpan(runSpan *trace.Span, sr *shardRun, req *engine.ShardSegment, res *engine.ShardSegmentResult, withIO bool) {
	if runSpan == nil {
		return
	}
	sp := runSpan.Child("shard:" + sr.shard.Name())
	sp.SetAttr("kind", string(req.Kind))
	if res != nil {
		sp.SetAttr("visited", res.Visited)
		if withIO {
			sp.SetIO(trace.IO{
				BlocksRead:    res.IO.BlocksRead,
				BlocksSkipped: res.IO.BlocksSkipped,
				BlocksPruned:  res.IO.BlocksPruned,
				TuplesRead:    res.IO.TuplesRead,
				KernelBlocks:  res.IO.KernelBlocks,
				Wraps:         res.IO.Wraps,
			})
		}
	} else {
		sp.SetAttr("error", sr.errMsg)
	}
	sp.End()
}
