package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"fastmatch/internal/engine"
)

// PartialRequest is the wire body of POST /v1/internal/partial — the
// shard-internal endpoint coordinators fold through. Query carries the
// raw QuerySpec JSON verbatim: each shard compiles it locally against
// its own engine, so candidate predicates and binning resolve on the
// data they apply to (shared dictionaries make the resulting id spaces
// identical).
type PartialRequest struct {
	Table string          `json:"table"`
	Query json.RawMessage `json:"query"`
	// Op selects the call: "meta" answers the plan's shard metadata,
	// "segment" executes one stateless segment.
	Op      string               `json:"op"`
	Segment *engine.ShardSegment `json:"segment,omitempty"`
}

// PartialResponse is the success body of POST /v1/internal/partial:
// exactly one of Meta/Segment is set, matching the request Op.
type PartialResponse struct {
	Meta    *engine.ShardMeta          `json:"meta,omitempty"`
	Segment *engine.ShardSegmentResult `json:"segment,omitempty"`
}

// ShardRef names one shard daemon: a stable name (the label in shard
// statuses and metrics) and the base URL of its fastmatchd HTTP API.
type ShardRef struct {
	Name string `json:"name"`
	URL  string `json:"url"`
}

// ShardClientStats is a snapshot of one shard's client-side counters,
// surfaced through /v1/stats and /metrics on the coordinator.
type ShardClientStats struct {
	Name string `json:"name"`
	URL  string `json:"url"`
	// Requests counts HTTP attempts (retries included); Errors counts
	// attempts that failed; Retries counts re-attempts after a failure.
	Requests int64 `json:"requests"`
	Errors   int64 `json:"errors"`
	Retries  int64 `json:"retries"`
	// LatencyCount/LatencySumNS accumulate per-attempt round-trip time.
	LatencyCount int64 `json:"latency_count"`
	LatencySumNS int64 `json:"latency_sum_ns"`
	// Healthy reports whether the most recent attempt succeeded.
	Healthy   bool   `json:"healthy"`
	LastError string `json:"last_error,omitempty"`
}

// shardCounters is the live (atomic) form of ShardClientStats.
type shardCounters struct {
	requests     atomic.Int64
	errors       atomic.Int64
	retries      atomic.Int64
	latencyCount atomic.Int64
	latencySumNS atomic.Int64
	unhealthy    atomic.Bool
	mu           sync.Mutex
	lastError    string
}

func (sc *shardCounters) fail(err error) {
	sc.errors.Add(1)
	sc.unhealthy.Store(true)
	sc.mu.Lock()
	sc.lastError = err.Error()
	sc.mu.Unlock()
}

// Client talks to a fixed shard set over HTTP. All shards share one
// http.Transport (keep-alive pools per host, bounded idle connections),
// so a coordinator serving many queries reuses connections instead of
// re-dialing per segment. Segment calls are stateless and idempotent,
// which is what makes the retry policy sound.
type Client struct {
	refs     []ShardRef
	hc       *http.Client
	retries  int
	backoff  time.Duration
	counters []*shardCounters
}

// NewClient builds a shard client over refs. Retries defaults to 2
// re-attempts per call with exponential backoff starting at backoff
// (default 50ms); both are knobs because the equivalence smoke kills
// shards on purpose and should not wait out long backoffs.
func NewClient(refs []ShardRef) *Client {
	tr := &http.Transport{
		MaxIdleConns:        64,
		MaxIdleConnsPerHost: 16,
		IdleConnTimeout:     90 * time.Second,
	}
	c := &Client{
		refs:    refs,
		hc:      &http.Client{Transport: tr},
		retries: 2,
		backoff: 50 * time.Millisecond,
	}
	for range refs {
		c.counters = append(c.counters, &shardCounters{})
	}
	return c
}

// SetRetryPolicy overrides the per-call retry count and initial backoff.
func (c *Client) SetRetryPolicy(retries int, backoff time.Duration) {
	if retries >= 0 {
		c.retries = retries
	}
	if backoff > 0 {
		c.backoff = backoff
	}
}

// Refs returns the configured shard set, in global block order.
func (c *Client) Refs() []ShardRef { return c.refs }

// Close releases the idle connections held by the shared transport.
func (c *Client) Close() { c.hc.CloseIdleConnections() }

// Stats snapshots every shard's client-side counters.
func (c *Client) Stats() []ShardClientStats {
	out := make([]ShardClientStats, len(c.refs))
	for i, ref := range c.refs {
		sc := c.counters[i]
		sc.mu.Lock()
		lastErr := sc.lastError
		sc.mu.Unlock()
		out[i] = ShardClientStats{
			Name:         ref.Name,
			URL:          ref.URL,
			Requests:     sc.requests.Load(),
			Errors:       sc.errors.Load(),
			Retries:      sc.retries.Load(),
			LatencyCount: sc.latencyCount.Load(),
			LatencySumNS: sc.latencySumNS.Load(),
			Healthy:      !sc.unhealthy.Load(),
			LastError:    lastErr,
		}
	}
	return out
}

// Bind builds the per-request shard set for one (table, query) pair.
// Each bound shard memoizes its Meta: the serving layer prefetches
// metadata (for option scaling and cache keys) and the coordinator's
// connect then reuses the same snapshot instead of re-fetching — one
// meta round-trip per shard per request, and a consistent generation
// between the cache key and the run.
func (c *Client) Bind(table string, query json.RawMessage) []Shard {
	out := make([]Shard, len(c.refs))
	for i := range c.refs {
		out[i] = &boundShard{c: c, idx: i, table: table, query: query}
	}
	return out
}

// boundShard is one shard bound to a request's (table, query).
type boundShard struct {
	c     *Client
	idx   int
	table string
	query json.RawMessage

	mu   sync.Mutex
	meta *engine.ShardMeta
}

func (b *boundShard) Name() string { return b.c.refs[b.idx].Name }

// Meta implements Shard, memoizing the first successful fetch.
func (b *boundShard) Meta(ctx context.Context) (*engine.ShardMeta, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.meta != nil {
		return b.meta, nil
	}
	resp, err := b.c.post(ctx, b.idx, &PartialRequest{Table: b.table, Query: b.query, Op: "meta"})
	if err != nil {
		return nil, err
	}
	if resp.Meta == nil {
		return nil, fmt.Errorf("cluster: shard %q: meta call returned no metadata", b.Name())
	}
	b.meta = resp.Meta
	return b.meta, nil
}

// Segment implements Shard.
func (b *boundShard) Segment(ctx context.Context, seg *engine.ShardSegment) (*engine.ShardSegmentResult, error) {
	resp, err := b.c.post(ctx, b.idx, &PartialRequest{Table: b.table, Query: b.query, Op: "segment", Segment: seg})
	if err != nil {
		return nil, err
	}
	if resp.Segment == nil {
		return nil, fmt.Errorf("cluster: shard %q: segment call returned no result", b.Name())
	}
	return resp.Segment, nil
}

// post issues one shard call with retries. Transport failures and 5xx
// responses retry with exponential backoff (segments are stateless, so
// a duplicate execution is harmless); 4xx responses are permanent —
// the request itself is wrong and retrying cannot fix it.
func (c *Client) post(ctx context.Context, idx int, preq *PartialRequest) (*PartialResponse, error) {
	body, err := json.Marshal(preq)
	if err != nil {
		return nil, fmt.Errorf("cluster: shard %q: %w", c.refs[idx].Name, err)
	}
	sc := c.counters[idx]
	var lastErr error
	for attempt := 0; attempt <= c.retries; attempt++ {
		if attempt > 0 {
			sc.retries.Add(1)
			select {
			case <-ctx.Done():
				return nil, ctx.Err()
			case <-time.After(c.backoff << (attempt - 1)):
			}
		}
		resp, permanent, err := c.attempt(ctx, idx, body)
		if err == nil {
			sc.unhealthy.Store(false)
			return resp, nil
		}
		lastErr = err
		sc.fail(err)
		if permanent || ctx.Err() != nil {
			break
		}
	}
	return nil, lastErr
}

func (c *Client) attempt(ctx context.Context, idx int, body []byte) (_ *PartialResponse, permanent bool, _ error) {
	ref := c.refs[idx]
	sc := c.counters[idx]
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ref.URL+"/v1/internal/partial", bytes.NewReader(body))
	if err != nil {
		return nil, true, fmt.Errorf("cluster: shard %q: %w", ref.Name, err)
	}
	req.Header.Set("Content-Type", "application/json")
	sc.requests.Add(1)
	began := time.Now()
	httpResp, err := c.hc.Do(req)
	sc.latencyCount.Add(1)
	sc.latencySumNS.Add(time.Since(began).Nanoseconds())
	if err != nil {
		return nil, false, fmt.Errorf("cluster: shard %q: %w", ref.Name, err)
	}
	defer httpResp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(httpResp.Body, 64<<20))
	if err != nil {
		return nil, false, fmt.Errorf("cluster: shard %q: %w", ref.Name, err)
	}
	if httpResp.StatusCode != http.StatusOK {
		var apiErr struct {
			Error string `json:"error"`
		}
		msg := string(data)
		if json.Unmarshal(data, &apiErr) == nil && apiErr.Error != "" {
			msg = apiErr.Error
		}
		permanent := httpResp.StatusCode >= 400 && httpResp.StatusCode < 500
		return nil, permanent, fmt.Errorf("cluster: shard %q: HTTP %d: %s", ref.Name, httpResp.StatusCode, msg)
	}
	var out PartialResponse
	if err := json.Unmarshal(data, &out); err != nil {
		return nil, false, fmt.Errorf("cluster: shard %q: %w", ref.Name, err)
	}
	return &out, false, nil
}
