package cluster

import (
	"context"
	"fmt"

	"fastmatch/internal/engine"
)

// Audit is the coordinated twin of engine.AuditRun: it re-executes the
// query across the shard set with the exact Scan executor (via the same
// scatter-gather fold queries use) and grades the approximate answer
// against the global exact ranking with engine.GradeAudit. The refusal
// rules match AuditRun's — empty and partial answers claimed no
// guarantee, so there is nothing to grade — plus one of its own: a
// degraded reference pass is not ground truth, so audits over a cluster
// with missing shards are refused rather than graded against a lie.
func (c *Coordinator) Audit(ctx context.Context, t engine.Target, approx *engine.Result, opts engine.Options) (*engine.Audit, error) {
	if approx == nil || len(approx.TopK) == 0 {
		return nil, fmt.Errorf("engine: nothing to audit: empty approximate answer")
	}
	if approx.Partial {
		return nil, fmt.Errorf("engine: refusing to audit a partial answer: no guarantee was claimed")
	}
	// The reference pass must rank every candidate, so the candidate
	// count has to be known before options can be derived; a meta
	// round-trip answers it (bound HTTP shards memoize their meta, so
	// the follow-up Run reuses the same snapshot).
	st, err := c.connect(ctx, opts)
	if err != nil {
		return nil, fmt.Errorf("engine: audit reference scan: %w", err)
	}
	if st.degraded {
		return nil, fmt.Errorf("cluster: audit reference scan degraded: missing shards %v", missingNames(st))
	}
	exOpts := engine.AuditReferenceOptions(opts, st.nCand)
	ref, err := c.Run(ctx, t, exOpts)
	if err != nil {
		return nil, fmt.Errorf("engine: audit reference scan: %w", err)
	}
	if ref.Degraded || ref.Result.Partial {
		return nil, fmt.Errorf("cluster: audit reference scan degraded: missing shards %v", ref.Missing)
	}
	return engine.GradeAudit(approx, ref.Result, opts.Params.Epsilon)
}

func missingNames(st *runState) []string {
	var out []string
	for _, sr := range st.shards {
		if sr.dead {
			out = append(out, sr.shard.Name())
		}
	}
	return out
}
