// Package expt is the experiment harness that regenerates every table and
// figure of the paper's evaluation (Section 5) against the synthetic
// datasets: Table 4 (speedups), Figures 8/9 (ε sweeps), Figure 10
// (lookahead sweep), Figure 11 (δ sweep), Table 5 (L1 vs L2), the
// guarantee-violation count, and the σ=0 pathology.
package expt

import (
	"fmt"

	"fastmatch/internal/histogram"
)

// TargetKind selects how a query's visual target is chosen, mirroring
// Table 3.
type TargetKind int

const (
	// TargetTopCandidate uses the highest-selectivity candidate's exact
	// histogram (the "Chicago ORD" pattern of FLIGHTS-q1).
	TargetTopCandidate TargetKind = iota
	// TargetRareCandidate uses a low-selectivity (but non-prunable)
	// candidate's histogram (the "Appleton ATW" pattern of FLIGHTS-q2).
	TargetRareCandidate
	// TargetExplicit uses an explicit distribution (FLIGHTS-q3's
	// [0.25, 0.125 × 6]).
	TargetExplicit
	// TargetNearUniform uses the exact histogram of the candidate closest
	// to uniform (the default for q4 and the TAXI/POLICE queries).
	TargetNearUniform
)

// QuerySpec mirrors one row of Table 3.
type QuerySpec struct {
	// ID is the paper's query name, e.g. "flights-q1".
	ID string
	// Dataset is "flights", "taxi", or "police".
	Dataset string
	// Z and X are the candidate and grouping attributes.
	Z, X string
	// K is the number of matches to retrieve.
	K int
	// Target selects the target construction.
	Target TargetKind
	// ExplicitTarget holds the distribution for TargetExplicit.
	ExplicitTarget []float64
}

// Queries lists the paper's nine evaluation queries (Table 3) with their
// exact templates and k values. Targets that referenced specific airports
// are mapped to the structurally equivalent choice on synthetic data
// (highest-selectivity candidate for ORD, a rare candidate for ATW).
var Queries = []QuerySpec{
	{ID: "flights-q1", Dataset: "flights", Z: "Origin", X: "DepartureHour", K: 10, Target: TargetTopCandidate},
	{ID: "flights-q2", Dataset: "flights", Z: "Origin", X: "DepartureHour", K: 10, Target: TargetRareCandidate},
	{ID: "flights-q3", Dataset: "flights", Z: "Origin", X: "DayOfWeek", K: 5, Target: TargetExplicit,
		ExplicitTarget: []float64{0.25, 0.125, 0.125, 0.125, 0.125, 0.125, 0.125}},
	{ID: "flights-q4", Dataset: "flights", Z: "Origin", X: "Dest", K: 10, Target: TargetNearUniform},
	{ID: "taxi-q1", Dataset: "taxi", Z: "Location", X: "HourOfDay", K: 10, Target: TargetNearUniform},
	{ID: "taxi-q2", Dataset: "taxi", Z: "Location", X: "MonthOfYear", K: 10, Target: TargetNearUniform},
	{ID: "police-q1", Dataset: "police", Z: "RoadID", X: "ContrabandFound", K: 10, Target: TargetNearUniform},
	{ID: "police-q2", Dataset: "police", Z: "RoadID", X: "OfficerRace", K: 10, Target: TargetNearUniform},
	{ID: "police-q3", Dataset: "police", Z: "Violation", X: "DriverGender", K: 5, Target: TargetNearUniform},
}

// QueryByID looks up a QuerySpec.
func QueryByID(id string) (QuerySpec, error) {
	for _, q := range Queries {
		if q.ID == id {
			return q, nil
		}
	}
	return QuerySpec{}, fmt.Errorf("expt: unknown query %q", id)
}

// uniformTarget builds the uniform histogram over n groups.
func uniformTarget(n int) *histogram.Histogram {
	counts := make([]float64, n)
	for i := range counts {
		counts[i] = 1
	}
	return histogram.FromCounts(counts)
}
