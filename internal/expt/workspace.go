package expt

import (
	"fmt"
	"math"
	"time"

	"fastmatch/internal/colstore"
	"fastmatch/internal/core"
	"fastmatch/internal/datagen"
	"fastmatch/internal/engine"
	"fastmatch/internal/histogram"
)

// Config sizes the experiment workspace. The paper runs on 32–36 GiB
// datasets; the defaults here scale every dataset to Rows tuples while
// preserving cardinalities and skew, and scale the stage-1 sample m
// proportionally.
type Config struct {
	// Rows per dataset (default 1_000_000).
	Rows int
	// BlockSize in tuples (default 256 ≈ the paper's 600-byte blocks of
	// 4-byte codes... the paper used 150; both work, see the block-size
	// ablation).
	BlockSize int
	// Seed drives dataset generation and run randomization.
	Seed int64
	// RunSeed is mixed into every run's scan-start seed. The default of 0
	// keeps the harness deterministic across invocations (engine.Options
	// treats seed 0 as a fixed seed, not a random one); cmd/experiments
	// sets it from the wall clock so repeated harness runs start scans at
	// independent positions.
	RunSeed int64
	// Epsilon, Delta, Sigma are the run defaults. The paper's ε = 0.04 at
	// 600M rows corresponds to a much larger sampling budget than 1M rows
	// affords, so the scaled default is 0.08; Figure 8 sweeps ε anyway.
	Epsilon, Delta, Sigma float64
	// Lookahead is the FastMatch marking window (default 1024).
	Lookahead int
	// Reps is the number of repetitions averaged per measurement
	// (default 3; the paper uses 30).
	Reps int
}

// WithDefaults fills zero fields.
func (c Config) WithDefaults() Config {
	if c.Rows == 0 {
		c.Rows = 1_000_000
	}
	if c.BlockSize == 0 {
		// The paper's 600-byte column blocks hold 150 4-byte codes; 32
		// keeps σ·blockSize — the skippability of blocks when only rare
		// candidates remain active — proportionate at scaled-down dataset
		// sizes.
		c.BlockSize = 32
	}
	if c.Epsilon == 0 {
		// The paper's ε = 0.04 at 600M rows: the Theorem-1 sample demand
		// ∝ |V_X|/ε² is independent of N, so the same ε at 250× fewer rows
		// would force full scans (the regime the paper notes where
		// "ScanMatch latencies matched that of Scan until we made ε large
		// enough"). 0.25 restores the paper's demand-to-data ratio;
		// Figure 8 sweeps ε across both regimes.
		c.Epsilon = 0.25
	}
	if c.Delta == 0 {
		c.Delta = 0.01
	}
	if c.Sigma == 0 {
		// Scaled up from the paper's 0.0008 to fit the generated
		// selectivity profiles while keeping σN above the per-candidate
		// stage-2/3 sample demand — the paper's σN ≫ n' headroom.
		c.Sigma = 0.0015
	}
	if c.Lookahead == 0 {
		c.Lookahead = 1024
	}
	if c.Reps == 0 {
		c.Reps = 3
	}
	return c
}

// queryState caches per-query derived data.
type queryState struct {
	spec    QuerySpec
	plan    *engine.Plan // resolved once; reused across runs
	target  *histogram.Histogram
	exact   []*histogram.Histogram // exact candidate histograms
	total   int64                  // total rows in dataset
	zLabels []string
}

// Workspace holds generated datasets, engines, and cached exact answers
// for the full query suite.
type Workspace struct {
	Cfg     Config
	tables  map[string]*colstore.Table
	engines map[string]*engine.Engine
	queries map[string]*queryState
}

// NewWorkspace generates the three datasets and resolves every query's
// target. This is the (untimed) preprocessing phase.
func NewWorkspace(cfg Config) (*Workspace, error) {
	cfg = cfg.WithDefaults()
	w := &Workspace{
		Cfg:     cfg,
		tables:  make(map[string]*colstore.Table),
		engines: make(map[string]*engine.Engine),
		queries: make(map[string]*queryState),
	}
	for i, name := range []string{"flights", "taxi", "police"} {
		ds, err := datagen.ByName(name, cfg.Rows, cfg.Seed+int64(i)*101, cfg.BlockSize)
		if err != nil {
			return nil, err
		}
		w.tables[name] = ds.Table
		w.engines[name] = engine.New(ds.Table)
	}
	for _, q := range Queries {
		if err := w.prepare(q); err != nil {
			return nil, fmt.Errorf("expt: preparing %s: %w", q.ID, err)
		}
	}
	return w, nil
}

// Table returns a generated dataset by name.
func (w *Workspace) Table(dataset string) (*colstore.Table, error) {
	tbl, ok := w.tables[dataset]
	if !ok {
		return nil, fmt.Errorf("expt: no dataset %q", dataset)
	}
	return tbl, nil
}

// prepare computes exact candidate histograms and the target for a query.
func (w *Workspace) prepare(spec QuerySpec) error {
	tbl, err := w.Table(spec.Dataset)
	if err != nil {
		return err
	}
	zc, err := tbl.Column(spec.Z)
	if err != nil {
		return err
	}
	xc, err := tbl.Column(spec.X)
	if err != nil {
		return err
	}
	st := &queryState{spec: spec, total: int64(tbl.NumRows())}
	// Plan once per query: the plan builds (and caches) the Z index, so
	// index construction lands in the untimed preprocessing phase, and
	// every run reuses the resolved mappers.
	st.plan, err = w.engines[spec.Dataset].Prepare(engine.Query{Z: spec.Z, X: []string{spec.X}})
	if err != nil {
		return err
	}
	st.exact = make([]*histogram.Histogram, zc.Cardinality())
	for i := range st.exact {
		st.exact[i] = histogram.New(xc.Cardinality())
	}
	for row := 0; row < tbl.NumRows(); row++ {
		st.exact[zc.Code(row)].Add(int(xc.Code(row)))
	}
	st.zLabels = zc.Dict.Values()

	switch spec.Target {
	case TargetExplicit:
		if len(spec.ExplicitTarget) != xc.Cardinality() {
			return fmt.Errorf("explicit target arity %d != |V_X| %d", len(spec.ExplicitTarget), xc.Cardinality())
		}
		st.target = histogram.FromCounts(spec.ExplicitTarget)
	case TargetTopCandidate:
		best, bestN := 0, -1.0
		for i, h := range st.exact {
			if h.Total() > bestN {
				best, bestN = i, h.Total()
			}
		}
		st.target = st.exact[best].Clone()
	case TargetRareCandidate:
		// Smallest candidate whose selectivity is ≥ 4σ: rare enough to be
		// interesting, safe from stage-1 pruning.
		floor := 4 * w.Cfg.Sigma * float64(st.total)
		best, bestN := -1, -1.0
		for i, h := range st.exact {
			if h.Total() >= floor && (bestN < 0 || h.Total() < bestN) {
				best, bestN = i, h.Total()
			}
		}
		if best < 0 {
			return fmt.Errorf("no candidate above 4σ floor")
		}
		st.target = st.exact[best].Clone()
	case TargetNearUniform:
		uni := uniformTarget(xc.Cardinality())
		best, bestD := -1, 0.0
		floor := w.Cfg.Sigma * float64(st.total)
		for i, h := range st.exact {
			if h.Total() < floor {
				continue
			}
			d := histogram.L1(h, uni)
			if best < 0 || d < bestD {
				best, bestD = i, d
			}
		}
		if best < 0 {
			return fmt.Errorf("no candidate above σ floor")
		}
		st.target = st.exact[best].Clone()
	default:
		return fmt.Errorf("unknown target kind %d", spec.Target)
	}
	w.queries[spec.ID] = st
	return nil
}

// state returns the cached query state.
func (w *Workspace) state(queryID string) (*queryState, error) {
	st, ok := w.queries[queryID]
	if !ok {
		return nil, fmt.Errorf("expt: query %q not prepared", queryID)
	}
	return st, nil
}

// Target returns the resolved target histogram for a query.
func (w *Workspace) Target(queryID string) (*histogram.Histogram, error) {
	st, err := w.state(queryID)
	if err != nil {
		return nil, err
	}
	return st.target, nil
}

// RunOverrides tweak a single run relative to the workspace defaults.
type RunOverrides struct {
	// Epsilon/Delta/Sigma override the config values when positive
	// (SigmaZero forces σ = 0 explicitly).
	Epsilon, Delta, Sigma float64
	SigmaZero             bool
	// Lookahead overrides the FastMatch window when positive.
	Lookahead int
	// Metric overrides the distance metric.
	Metric histogram.Metric
	// Seed randomizes the scan start position.
	Seed int64
	// MaxRounds caps stage-2 rounds when positive.
	MaxRounds int
}

// params builds core.Params for a run.
func (w *Workspace) params(st *queryState, ov RunOverrides) core.Params {
	eps := w.Cfg.Epsilon
	if ov.Epsilon > 0 {
		eps = ov.Epsilon
	} else {
		// The sample demand is ∝ |V_X|/ε², so the config ε (calibrated
		// for 24-group histograms) maps to an equivalent-cost ε for other
		// group counts: binary-group queries get a much tighter bound at
		// the same I/O budget. Explicit overrides (the Figure-8 sweep)
		// bypass this.
		eps *= math.Sqrt(float64(st.target.Groups()) / 24)
		if eps < 0.06 {
			eps = 0.06
		}
		if eps > 0.4 {
			eps = 0.4
		}
	}
	delta := w.Cfg.Delta
	if ov.Delta > 0 {
		delta = ov.Delta
	}
	sigma := w.Cfg.Sigma
	if ov.Sigma > 0 {
		sigma = ov.Sigma
	}
	if ov.SigmaZero {
		sigma = 0
	}
	// Stage-1 sample: enough for the rarity test to see ~100 expected
	// tuples at the σ boundary, without the paper's half-million floor
	// (0.08% of their data) becoming a fixed 5–10% tax at our scale.
	m := int(st.total / 40)
	if m > 500_000 {
		m = 500_000
	}
	if m < 20_000 {
		m = 20_000
	}
	return core.Params{
		K:             st.spec.K,
		Epsilon:       eps,
		Delta:         delta,
		Sigma:         sigma,
		Stage1Samples: m,
		Metric:        ov.Metric,
		MaxRounds:     ov.MaxRounds,
	}
}

// Run executes one query with one executor and returns the engine result.
// The query's Plan is prepared once at workspace construction (indexes
// built untimed) and shared across runs; each run owns fresh sampler
// state, so concurrent Run calls are safe.
func (w *Workspace) Run(queryID string, exec engine.Executor, ov RunOverrides) (*engine.Result, error) {
	st, err := w.state(queryID)
	if err != nil {
		return nil, err
	}
	lookahead := w.Cfg.Lookahead
	if ov.Lookahead > 0 {
		lookahead = ov.Lookahead
	}
	return st.plan.RunWithTarget(st.target, engine.Options{
		Params:     w.params(st, ov),
		Executor:   exec,
		Lookahead:  lookahead,
		StartBlock: -1,
		Seed:       ov.Seed + w.Cfg.RunSeed,
	})
}

// TimedRun averages wall-clock time over reps runs with distinct seeds and
// returns the last result.
func (w *Workspace) TimedRun(queryID string, exec engine.Executor, ov RunOverrides, reps int) (time.Duration, *engine.Result, error) {
	if reps <= 0 {
		reps = w.Cfg.Reps
	}
	var total time.Duration
	var last *engine.Result
	for r := 0; r < reps; r++ {
		ov.Seed = ov.Seed*31 + int64(r) + 1
		res, err := w.Run(queryID, exec, ov)
		if err != nil {
			return 0, nil, err
		}
		total += res.Duration
		last = res
	}
	return total / time.Duration(reps), last, nil
}

// ExactTopK returns the brute-force top-k (post σ-pruning) and the exact
// distance of every candidate, under the given metric.
func (w *Workspace) ExactTopK(queryID string, metric histogram.Metric, sigma float64) ([]histogram.Ranked, []float64, error) {
	st, err := w.state(queryID)
	if err != nil {
		return nil, nil, err
	}
	dist := make([]float64, len(st.exact))
	var keep []int
	floor := sigma * float64(st.total)
	for i, h := range st.exact {
		dist[i] = metric.Distance(h, st.target)
		if h.Total() >= floor {
			keep = append(keep, i)
		}
	}
	return histogram.TopK(dist, keep, st.spec.K), dist, nil
}

// Label renders a candidate id as its attribute value.
func (w *Workspace) Label(queryID string, id int) (string, error) {
	st, err := w.state(queryID)
	if err != nil {
		return "", err
	}
	if id < 0 || id >= len(st.zLabels) {
		return "", fmt.Errorf("expt: candidate %d out of range", id)
	}
	return st.zLabels[id], nil
}
