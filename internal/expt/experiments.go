package expt

import (
	"fmt"
	"io"
	"time"

	"fastmatch/internal/engine"
	"fastmatch/internal/histogram"
)

// Table4Row is one row of Table 4: per-query latencies and speedups over
// Scan for each approximate executor.
type Table4Row struct {
	Query     string
	ScanTime  time.Duration
	Times     map[string]time.Duration // executor name -> avg latency
	Speedups  map[string]float64       // executor name -> Scan/exec
	Violated  bool                     // any guarantee violation observed
	DeltaDist map[string]float64       // executor name -> Δd
}

// approxExecutors are the sampling-based approaches compared against Scan.
var approxExecutors = []engine.Executor{engine.ScanMatch, engine.SyncMatch, engine.FastMatch}

// Table4 regenerates Table 4: average speedups and latencies of
// ScanMatch/SyncMatch/FastMatch over Scan for every query.
func Table4(w *Workspace, reps int) ([]Table4Row, error) {
	var rows []Table4Row
	for _, q := range Queries {
		row := Table4Row{
			Query:     q.ID,
			Times:     make(map[string]time.Duration),
			Speedups:  make(map[string]float64),
			DeltaDist: make(map[string]float64),
		}
		scanTime, _, err := w.TimedRun(q.ID, engine.Scan, RunOverrides{}, reps)
		if err != nil {
			return nil, fmt.Errorf("%s scan: %w", q.ID, err)
		}
		row.ScanTime = scanTime
		for _, exec := range approxExecutors {
			avg, res, err := w.TimedRun(q.ID, exec, RunOverrides{Seed: 7}, reps)
			if err != nil {
				return nil, fmt.Errorf("%s %v: %w", q.ID, exec, err)
			}
			row.Times[exec.String()] = avg
			row.Speedups[exec.String()] = float64(scanTime) / float64(avg)
			dd, err := DeltaD(w, q.ID, res)
			if err != nil {
				return nil, err
			}
			row.DeltaDist[exec.String()] = dd
			viol, err := ViolatesGuarantees(w, q.ID, res, w.Cfg.Epsilon)
			if err != nil {
				return nil, err
			}
			row.Violated = row.Violated || viol
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// FprintTable4 renders Table 4 in the paper's layout.
func FprintTable4(out io.Writer, rows []Table4Row) {
	fmt.Fprintf(out, "%-12s %10s | %22s %22s %22s | %s\n",
		"Query", "Scan(s)", "ScanMatch", "SyncMatch", "FastMatch", "guarantees")
	for _, r := range rows {
		cell := func(name string) string {
			return fmt.Sprintf("%6.2fx (%8.4fs)", r.Speedups[name], r.Times[name].Seconds())
		}
		ok := "ok"
		if r.Violated {
			ok = "VIOLATED"
		}
		fmt.Fprintf(out, "%-12s %9.4fs | %22s %22s %22s | %s\n",
			r.Query, r.ScanTime.Seconds(),
			cell("ScanMatch"), cell("SyncMatch"), cell("FastMatch"), ok)
	}
}

// SweepPoint is one (x, per-executor y) measurement in a figure sweep.
type SweepPoint struct {
	X      float64
	Times  map[string]time.Duration
	DeltaD map[string]float64
}

// Figure8 regenerates Figure 8 (and, via the DeltaD fields, Figure 9):
// the effect of ε on wall-clock latency and on Δd, per query.
func Figure8(w *Workspace, queryID string, epsilons []float64, reps int) ([]SweepPoint, error) {
	var points []SweepPoint
	for _, eps := range epsilons {
		p := SweepPoint{X: eps, Times: make(map[string]time.Duration), DeltaD: make(map[string]float64)}
		for _, exec := range approxExecutors {
			avg, res, err := w.TimedRun(queryID, exec, RunOverrides{Epsilon: eps, Seed: 11}, reps)
			if err != nil {
				return nil, fmt.Errorf("%s ε=%g %v: %w", queryID, eps, exec, err)
			}
			p.Times[exec.String()] = avg
			dd, err := DeltaD(w, queryID, res)
			if err != nil {
				return nil, err
			}
			p.DeltaD[exec.String()] = dd
		}
		points = append(points, p)
	}
	return points, nil
}

// Figure10 regenerates Figure 10: the effect of the lookahead parameter on
// FastMatch latency.
func Figure10(w *Workspace, queryID string, lookaheads []int, reps int) ([]SweepPoint, error) {
	var points []SweepPoint
	for _, la := range lookaheads {
		avg, _, err := w.TimedRun(queryID, engine.FastMatch, RunOverrides{Lookahead: la, Seed: 13}, reps)
		if err != nil {
			return nil, fmt.Errorf("%s lookahead=%d: %w", queryID, la, err)
		}
		points = append(points, SweepPoint{
			X:     float64(la),
			Times: map[string]time.Duration{"FastMatch": avg},
		})
	}
	return points, nil
}

// Figure11 regenerates Figure 11: the effect of δ on latency.
func Figure11(w *Workspace, queryID string, deltas []float64, reps int) ([]SweepPoint, error) {
	var points []SweepPoint
	for _, d := range deltas {
		p := SweepPoint{X: d, Times: make(map[string]time.Duration)}
		for _, exec := range approxExecutors {
			avg, _, err := w.TimedRun(queryID, exec, RunOverrides{Delta: d, Seed: 17}, reps)
			if err != nil {
				return nil, fmt.Errorf("%s δ=%g %v: %w", queryID, d, exec, err)
			}
			p.Times[exec.String()] = avg
		}
		points = append(points, p)
	}
	return points, nil
}

// FprintSweep renders a sweep as aligned columns.
func FprintSweep(out io.Writer, xName string, points []SweepPoint, withDeltaD bool) {
	if len(points) == 0 {
		return
	}
	names := make([]string, 0, len(points[0].Times))
	for _, exec := range approxExecutors {
		if _, ok := points[0].Times[exec.String()]; ok {
			names = append(names, exec.String())
		}
	}
	fmt.Fprintf(out, "%-10s", xName)
	for _, n := range names {
		fmt.Fprintf(out, " %14s", n+"(s)")
		if withDeltaD {
			fmt.Fprintf(out, " %12s", n+" Δd")
		}
	}
	fmt.Fprintln(out)
	for _, p := range points {
		fmt.Fprintf(out, "%-10g", p.X)
		for _, n := range names {
			fmt.Fprintf(out, " %14.4f", p.Times[n].Seconds())
			if withDeltaD {
				fmt.Fprintf(out, " %12.4f", p.DeltaD[n])
			}
		}
		fmt.Fprintln(out)
	}
}

// Table5Row compares the exact top-k under L1 and L2 (Table 5).
type Table5Row struct {
	Query string
	// Overlap is |M*(L1) ∩ M*(L2)| / k.
	Overlap float64
	// RelDistDiff is the relative difference in total L1 distance between
	// the two metrics' top-k sets.
	RelDistDiff float64
}

// Table5 regenerates Table 5 on the FLIGHTS queries.
func Table5(w *Workspace) ([]Table5Row, error) {
	var rows []Table5Row
	for _, q := range Queries {
		if q.Dataset != "flights" {
			continue
		}
		l1Top, l1Dist, err := w.ExactTopK(q.ID, histogram.MetricL1, w.Cfg.Sigma)
		if err != nil {
			return nil, err
		}
		l2Top, _, err := w.ExactTopK(q.ID, histogram.MetricL2, w.Cfg.Sigma)
		if err != nil {
			return nil, err
		}
		inL1 := map[int]bool{}
		var sumL1 float64
		for _, r := range l1Top {
			inL1[r.ID] = true
			sumL1 += r.Distance
		}
		overlap, sumL2inL1 := 0, 0.0
		for _, r := range l2Top {
			if inL1[r.ID] {
				overlap++
			}
			sumL2inL1 += l1Dist[r.ID] // L1 distance of the L2 top-k
		}
		rel := 0.0
		if sumL1 > 0 {
			rel = (sumL2inL1 - sumL1) / sumL1
		}
		rows = append(rows, Table5Row{
			Query:       q.ID,
			Overlap:     float64(overlap) / float64(len(l1Top)),
			RelDistDiff: rel,
		})
	}
	return rows, nil
}

// FprintTable5 renders Table 5.
func FprintTable5(out io.Writer, rows []Table5Row) {
	fmt.Fprintf(out, "%-12s %18s %24s\n", "Query", "|M*(l1)∩M*(l2)|/k", "relative distance diff")
	for _, r := range rows {
		fmt.Fprintf(out, "%-12s %18.2f %24.3f\n", r.Query, r.Overlap, r.RelDistDiff)
	}
}

// DeltaD computes the total relative error in visual distance (§5.3):
//
//	Δd = (Σ_{i∈M} d(r*_i, q) − Σ_{j∈M*} d(r*_j, q)) / Σ_{j∈M*} d(r*_j, q)
//
// using exact distances for the returned set M. M* is the exact top-k
// over candidates meeting the selectivity threshold, so Δd can be
// negative when M legitimately includes a low-selectivity candidate that
// Scan pruned.
func DeltaD(w *Workspace, queryID string, res *engine.Result) (float64, error) {
	exactTop, dist, err := w.ExactTopK(queryID, histogram.MetricL1, w.Cfg.Sigma)
	if err != nil {
		return 0, err
	}
	var sumTrue float64
	for _, r := range exactTop {
		sumTrue += r.Distance
	}
	if sumTrue == 0 {
		return 0, nil
	}
	var sumGot float64
	for _, m := range res.TopK {
		sumGot += dist[m.ID]
	}
	return (sumGot - sumTrue) / sumTrue, nil
}

// ViolatesGuarantees checks a result against Guarantees 1 and 2 using the
// cached exact data.
func ViolatesGuarantees(w *Workspace, queryID string, res *engine.Result, eps float64) (bool, error) {
	st, err := w.state(queryID)
	if err != nil {
		return false, err
	}
	inM := map[int]bool{}
	var maxTrue float64
	for _, m := range res.TopK {
		inM[m.ID] = true
		if d := histogram.L1(st.exact[m.ID], st.target); d > maxTrue {
			maxTrue = d
		}
		// Guarantee 2: reconstruction.
		if m.Histogram != nil {
			if d := histogram.L1(m.Histogram, st.exact[m.ID]); d >= eps {
				return true, nil
			}
		}
	}
	// Guarantee 1: separation.
	floor := w.Cfg.Sigma * float64(st.total)
	for i, h := range st.exact {
		if inM[i] || h.Total() < floor {
			continue
		}
		if maxTrue-histogram.L1(h, st.target) >= eps {
			return true, nil
		}
	}
	return false, nil
}

// GuaranteeCheck runs every query `runs` times with FastMatch and counts
// guarantee violations — the paper's §5.4 check that observed zero
// violations across all runs at δ = 0.01.
func GuaranteeCheck(w *Workspace, runs int) (violations, total int, err error) {
	for _, q := range Queries {
		for r := 0; r < runs; r++ {
			res, err := w.Run(q.ID, engine.FastMatch, RunOverrides{Seed: int64(1000*r + 7)})
			if err != nil {
				return 0, 0, fmt.Errorf("%s run %d: %w", q.ID, r, err)
			}
			viol, err := ViolatesGuarantees(w, q.ID, res, w.Cfg.Epsilon)
			if err != nil {
				return 0, 0, err
			}
			total++
			if viol {
				violations++
			}
		}
	}
	return violations, total, nil
}

// SigmaZeroRow captures the σ=0 pathology measurement (§5.4 "When
// approximation performs poorly").
type SigmaZeroRow struct {
	Query                string
	Executor             string
	WithSigma, ZeroSigma time.Duration
	Slowdown             float64
}

// SigmaZero measures the TAXI queries with and without stage-1 pruning.
// With σ=0, stages 2 and 3 must chase thousands of near-empty candidates.
func SigmaZero(w *Workspace, reps int) ([]SigmaZeroRow, error) {
	var rows []SigmaZeroRow
	for _, qid := range []string{"taxi-q1", "taxi-q2"} {
		for _, exec := range []engine.Executor{engine.ScanMatch, engine.FastMatch} {
			with, _, err := w.TimedRun(qid, exec, RunOverrides{Seed: 3}, reps)
			if err != nil {
				return nil, err
			}
			zero, _, err := w.TimedRun(qid, exec, RunOverrides{SigmaZero: true, Seed: 3}, reps)
			if err != nil {
				return nil, err
			}
			rows = append(rows, SigmaZeroRow{
				Query: qid, Executor: exec.String(),
				WithSigma: with, ZeroSigma: zero,
				Slowdown: float64(zero) / float64(with),
			})
		}
	}
	return rows, nil
}

// FprintSigmaZero renders the σ=0 comparison.
func FprintSigmaZero(out io.Writer, rows []SigmaZeroRow) {
	fmt.Fprintf(out, "%-10s %-10s %14s %14s %10s\n", "Query", "Executor", "σ=default(s)", "σ=0(s)", "slowdown")
	for _, r := range rows {
		fmt.Fprintf(out, "%-10s %-10s %14.4f %14.4f %9.2fx\n",
			r.Query, r.Executor, r.WithSigma.Seconds(), r.ZeroSigma.Seconds(), r.Slowdown)
	}
}
