package expt

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"fastmatch/internal/engine"
	"fastmatch/internal/histogram"
)

// smallWorkspace builds a reduced workspace for tests (≈80k rows/dataset).
func smallWorkspace(t testing.TB) *Workspace {
	t.Helper()
	w, err := NewWorkspace(Config{
		Rows: 80_000, Seed: 5, Reps: 1, Epsilon: 0.12, BlockSize: 128,
	})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestQueryByID(t *testing.T) {
	q, err := QueryByID("flights-q1")
	if err != nil || q.Z != "Origin" || q.X != "DepartureHour" || q.K != 10 {
		t.Fatalf("flights-q1 lookup wrong: %+v err=%v", q, err)
	}
	if _, err := QueryByID("nope"); err == nil {
		t.Fatal("unknown query accepted")
	}
}

func TestQueriesMatchTable3(t *testing.T) {
	if len(Queries) != 9 {
		t.Fatalf("query suite has %d entries, Table 3 has 9", len(Queries))
	}
	ks := map[string]int{"flights-q3": 5, "police-q3": 5}
	for _, q := range Queries {
		wantK := 10
		if k, ok := ks[q.ID]; ok {
			wantK = k
		}
		if q.K != wantK {
			t.Errorf("%s has k=%d, want %d", q.ID, q.K, wantK)
		}
	}
}

func TestWorkspacePreparesAllQueries(t *testing.T) {
	w := smallWorkspace(t)
	for _, q := range Queries {
		target, err := w.Target(q.ID)
		if err != nil {
			t.Fatalf("%s: %v", q.ID, err)
		}
		if target.Total() <= 0 {
			t.Fatalf("%s: empty target", q.ID)
		}
	}
}

func TestWorkspaceRunAllQueriesAllExecutors(t *testing.T) {
	if testing.Short() {
		t.Skip("workspace suite skipped in -short mode")
	}
	w := smallWorkspace(t)
	for _, q := range Queries {
		for _, exec := range []engine.Executor{engine.Scan, engine.ScanMatch, engine.SyncMatch, engine.FastMatch} {
			res, err := w.Run(q.ID, exec, RunOverrides{Seed: 2})
			if err != nil {
				t.Fatalf("%s %v: %v", q.ID, exec, err)
			}
			if len(res.TopK) == 0 {
				t.Fatalf("%s %v: empty answer", q.ID, exec)
			}
		}
	}
}

func TestExactTopKAndDeltaD(t *testing.T) {
	w := smallWorkspace(t)
	top, dist, err := w.ExactTopK("flights-q1", histogram.MetricL1, w.Cfg.Sigma)
	if err != nil {
		t.Fatal(err)
	}
	if len(top) != 10 {
		t.Fatalf("exact top-k size %d", len(top))
	}
	if len(dist) != 347 {
		t.Fatalf("dist vector size %d", len(dist))
	}
	// A result exactly equal to the true top-k has Δd = 0.
	res, err := w.Run("flights-q1", engine.Scan, RunOverrides{})
	if err != nil {
		t.Fatal(err)
	}
	dd, err := DeltaD(w, "flights-q1", res)
	if err != nil {
		t.Fatal(err)
	}
	if dd != 0 {
		t.Fatalf("Scan Δd = %g, want 0", dd)
	}
}

func TestViolatesGuaranteesOnExactResult(t *testing.T) {
	w := smallWorkspace(t)
	res, err := w.Run("police-q1", engine.Scan, RunOverrides{})
	if err != nil {
		t.Fatal(err)
	}
	viol, err := ViolatesGuarantees(w, "police-q1", res, w.Cfg.Epsilon)
	if err != nil {
		t.Fatal(err)
	}
	if viol {
		t.Fatal("exact Scan result flagged as violating guarantees")
	}
}

func TestApproximateRunsMeetGuarantees(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical test skipped in -short mode")
	}
	w := smallWorkspace(t)
	for _, qid := range []string{"flights-q1", "police-q2"} {
		res, err := w.Run(qid, engine.FastMatch, RunOverrides{Seed: 9})
		if err != nil {
			t.Fatal(err)
		}
		viol, err := ViolatesGuarantees(w, qid, res, w.Cfg.Epsilon)
		if err != nil {
			t.Fatal(err)
		}
		if viol {
			t.Errorf("%s: FastMatch violated guarantees", qid)
		}
	}
}

func TestTable5Shape(t *testing.T) {
	w := smallWorkspace(t)
	rows, err := Table5(w)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("Table 5 has %d rows, want 4 flights queries", len(rows))
	}
	for _, r := range rows {
		if r.Overlap < 0 || r.Overlap > 1 {
			t.Errorf("%s overlap %g out of range", r.Query, r.Overlap)
		}
		// The paper reports ≥ 0.6 overlap and ≤ 4% relative difference;
		// on synthetic data we check the weaker structural property that
		// the L2 top-k is never L1-better than the L1 top-k.
		if r.RelDistDiff < -1e-9 {
			t.Errorf("%s: L2 top-k beat L1 top-k in L1 distance (%g)", r.Query, r.RelDistDiff)
		}
	}
	var buf bytes.Buffer
	FprintTable5(&buf, rows)
	if !strings.Contains(buf.String(), "flights-q1") {
		t.Fatal("Table 5 rendering missing rows")
	}
}

func TestSweepRendering(t *testing.T) {
	points := []SweepPoint{
		{
			X: 0.04,
			Times: map[string]time.Duration{
				"ScanMatch": time.Second, "SyncMatch": 2 * time.Second, "FastMatch": 300 * time.Millisecond,
			},
			DeltaD: map[string]float64{"ScanMatch": 0.01, "SyncMatch": 0.02, "FastMatch": 0.005},
		},
	}
	var buf bytes.Buffer
	FprintSweep(&buf, "epsilon", points, true)
	out := buf.String()
	for _, want := range []string{"epsilon", "FastMatch(s)", "0.3000", "0.0050"} {
		if !strings.Contains(out, want) {
			t.Errorf("sweep rendering missing %q in:\n%s", want, out)
		}
	}
	FprintSweep(&buf, "x", nil, false) // empty input: no panic
}

func TestFigureSweepsRunSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep test skipped in -short mode")
	}
	w := smallWorkspace(t)
	f8, err := Figure8(w, "police-q1", []float64{0.15, 0.25}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(f8) != 2 {
		t.Fatalf("figure 8 points = %d", len(f8))
	}
	f10, err := Figure10(w, "police-q1", []int{16, 256}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(f10) != 2 {
		t.Fatalf("figure 10 points = %d", len(f10))
	}
	f11, err := Figure11(w, "police-q1", []float64{0.01, 0.05}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(f11) != 2 {
		t.Fatalf("figure 11 points = %d", len(f11))
	}
}

func TestTable4Small(t *testing.T) {
	if testing.Short() {
		t.Skip("table 4 test skipped in -short mode")
	}
	w := smallWorkspace(t)
	// Restrict to a fast subset by running the helper per query instead of
	// the full suite: take just the police queries via a trimmed copy.
	rows, err := Table4(w, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(Queries) {
		t.Fatalf("table 4 rows = %d", len(rows))
	}
	for _, r := range rows {
		for _, exec := range []string{"ScanMatch", "SyncMatch", "FastMatch"} {
			if r.Times[exec] <= 0 {
				t.Errorf("%s %s: no time recorded", r.Query, exec)
			}
		}
	}
	var buf bytes.Buffer
	FprintTable4(&buf, rows)
	if !strings.Contains(buf.String(), "taxi-q2") {
		t.Fatal("Table 4 rendering missing rows")
	}
}
