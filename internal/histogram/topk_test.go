package histogram

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestTopKBasic(t *testing.T) {
	dist := []float64{0.5, 0.1, 0.9, 0.3}
	got := TopK(dist, nil, 2)
	if len(got) != 2 || got[0].ID != 1 || got[1].ID != 3 {
		t.Fatalf("TopK = %+v", got)
	}
}

func TestTopKSubset(t *testing.T) {
	dist := []float64{0.5, 0.1, 0.9, 0.3}
	got := TopK(dist, []int{0, 2}, 1)
	if len(got) != 1 || got[0].ID != 0 {
		t.Fatalf("TopK over subset = %+v", got)
	}
}

func TestTopKFewerThanK(t *testing.T) {
	got := TopK([]float64{0.2, 0.4}, nil, 10)
	if len(got) != 2 {
		t.Fatalf("TopK returned %d, want 2", len(got))
	}
}

func TestTopKTieBreakByID(t *testing.T) {
	dist := []float64{0.3, 0.3, 0.3}
	got := TopK(dist, nil, 2)
	if got[0].ID != 0 || got[1].ID != 1 {
		t.Fatalf("tie-break wrong: %+v", got)
	}
}

// Property: TopK output is sorted and contains the k globally smallest
// distances (as a multiset).
func TestTopKProperty(t *testing.T) {
	f := func(seed int64, n8, k8 uint8) bool {
		n := int(n8%40) + 1
		k := int(k8%uint8(n)) + 1
		rng := rand.New(rand.NewSource(seed))
		dist := make([]float64, n)
		for i := range dist {
			dist[i] = rng.Float64()
		}
		got := TopK(dist, nil, k)
		if len(got) != k {
			return false
		}
		for i := 1; i < len(got); i++ {
			if got[i].Distance < got[i-1].Distance {
				return false
			}
		}
		sorted := append([]float64(nil), dist...)
		sort.Float64s(sorted)
		for i, r := range got {
			if r.Distance != sorted[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSplitPointMidpoint(t *testing.T) {
	s := SplitPoint([]float64{0.1, 0.2}, []float64{0.4, 0.6})
	if !almostEqual(s, 0.3, 1e-12) {
		t.Fatalf("SplitPoint = %g, want 0.3", s)
	}
}

func TestSplitPointEmptyRest(t *testing.T) {
	s := SplitPoint([]float64{0.1, 0.25}, nil)
	if s != 0.25 {
		t.Fatalf("SplitPoint with empty rest = %g, want 0.25", s)
	}
}

// Property: the split point lies within [max(M), min(rest)] whenever the
// sets are correctly ordered (max(M) ≤ min(rest)).
func TestSplitPointBetweenProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := make([]float64, rng.Intn(5)+1)
		rest := make([]float64, rng.Intn(5)+1)
		for i := range m {
			m[i] = rng.Float64() * 0.5
		}
		for i := range rest {
			rest[i] = 0.5 + rng.Float64()*0.5
		}
		s := SplitPoint(m, rest)
		maxM := 0.0
		for _, d := range m {
			if d > maxM {
				maxM = d
			}
		}
		minR := rest[0]
		for _, d := range rest {
			if d < minR {
				minR = d
			}
		}
		return s >= maxM-1e-12 && s <= minR+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
