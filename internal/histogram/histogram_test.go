package histogram

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestNewEmpty(t *testing.T) {
	h := New(5)
	if h.Groups() != 5 {
		t.Fatalf("Groups() = %d, want 5", h.Groups())
	}
	if h.Total() != 0 {
		t.Fatalf("Total() = %g, want 0", h.Total())
	}
}

func TestAddAndCount(t *testing.T) {
	h := New(3)
	h.Add(0)
	h.Add(0)
	h.Add(2)
	if h.Count(0) != 2 || h.Count(1) != 0 || h.Count(2) != 1 {
		t.Fatalf("counts = %v", h.Counts())
	}
	if h.Total() != 3 {
		t.Fatalf("Total() = %g, want 3", h.Total())
	}
}

func TestAddPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Add out of range did not panic")
		}
	}()
	New(2).Add(5)
}

func TestFromCountsSanitizes(t *testing.T) {
	h := FromCounts([]float64{1, -3, math.NaN(), math.Inf(1), 2})
	if h.Count(1) != 0 || h.Count(2) != 0 || h.Count(3) != 0 {
		t.Fatalf("invalid counts not sanitized: %v", h.Counts())
	}
	if h.Total() != 3 {
		t.Fatalf("Total() = %g, want 3", h.Total())
	}
}

func TestFromInts(t *testing.T) {
	h := FromInts([]int64{4, 0, 6})
	if h.Total() != 10 || h.Count(2) != 6 {
		t.Fatalf("unexpected %v total %g", h.Counts(), h.Total())
	}
}

func TestAddWeighted(t *testing.T) {
	h := New(2)
	if err := h.AddWeighted(1, 2.5); err != nil {
		t.Fatal(err)
	}
	if h.Count(1) != 2.5 || h.Total() != 2.5 {
		t.Fatalf("weighted add failed: %v", h.Counts())
	}
	for _, bad := range []float64{-1, math.NaN(), math.Inf(1)} {
		if err := h.AddWeighted(0, bad); err == nil {
			t.Errorf("AddWeighted(%v) accepted invalid weight", bad)
		}
	}
}

func TestAddHistogram(t *testing.T) {
	a := FromCounts([]float64{1, 2})
	b := FromCounts([]float64{3, 4})
	if err := a.AddHistogram(b); err != nil {
		t.Fatal(err)
	}
	if a.Count(0) != 4 || a.Count(1) != 6 || a.Total() != 10 {
		t.Fatalf("AddHistogram wrong: %v", a.Counts())
	}
	if err := a.AddHistogram(New(3)); err == nil {
		t.Fatal("mismatched AddHistogram did not error")
	}
}

func TestResetAndClone(t *testing.T) {
	h := FromCounts([]float64{1, 2, 3})
	c := h.Clone()
	h.Reset()
	if h.Total() != 0 {
		t.Fatalf("Reset left total %g", h.Total())
	}
	if c.Total() != 6 || c.Count(2) != 3 {
		t.Fatalf("Clone shares state with original")
	}
}

func TestNormalizedSumsToOne(t *testing.T) {
	h := FromCounts([]float64{3, 1, 6})
	p := h.Normalized()
	var sum float64
	for _, v := range p {
		sum += v
	}
	if !almostEqual(sum, 1, 1e-12) {
		t.Fatalf("normalized sum = %g", sum)
	}
	if !almostEqual(p[2], 0.6, 1e-12) {
		t.Fatalf("p[2] = %g, want 0.6", p[2])
	}
}

func TestNormalizedEmptyIsUniform(t *testing.T) {
	p := New(4).Normalized()
	for _, v := range p {
		if !almostEqual(v, 0.25, 1e-12) {
			t.Fatalf("empty normalization not uniform: %v", p)
		}
	}
}

func TestNormalizedIntoMatchesNormalized(t *testing.T) {
	h := FromCounts([]float64{5, 0, 2, 9})
	dst := make([]float64, 4)
	h.NormalizedInto(dst)
	for i, v := range h.Normalized() {
		if dst[i] != v {
			t.Fatalf("NormalizedInto[%d] = %g want %g", i, dst[i], v)
		}
	}
}

func TestNormalizedIntoPanicsOnBadLength(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for wrong dst length")
		}
	}()
	New(3).NormalizedInto(make([]float64, 2))
}

// Property: normalization is scale-invariant, so scaling all counts leaves
// every pairwise distance unchanged. This is the paper's Figure 3 point —
// the goldenrod histogram is identical to the blue one post-normalization.
func TestScaleInvarianceProperty(t *testing.T) {
	f := func(raw []uint16, scale uint8) bool {
		if len(raw) < 2 {
			return true
		}
		counts := make([]float64, len(raw))
		any := false
		for i, v := range raw {
			counts[i] = float64(v)
			if v > 0 {
				any = true
			}
		}
		if !any {
			return true
		}
		s := float64(scale%7) + 2
		scaled := make([]float64, len(counts))
		for i, v := range counts {
			scaled[i] = v * s
		}
		a, b := FromCounts(counts), FromCounts(scaled)
		return almostEqual(L1(a, b), 0, 1e-9) && almostEqual(L2(a, b), 0, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: L1 satisfies metric axioms on normalized histograms —
// non-negativity, symmetry, triangle inequality, and a range of [0, 2].
func TestL1MetricAxiomsProperty(t *testing.T) {
	f := func(xs, ys, zs [8]uint16) bool {
		a := fromArray(xs)
		b := fromArray(ys)
		c := fromArray(zs)
		dab, dba := L1(a, b), L1(b, a)
		dac, dbc := L1(a, c), L1(b, c)
		if dab < 0 || dab > 2+1e-9 {
			return false
		}
		if !almostEqual(dab, dba, 1e-12) {
			return false
		}
		return dac <= dab+dbc+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: L2 ≤ L1 ≤ sqrt(n)·L2 for n-dimensional vectors.
func TestNormEquivalenceProperty(t *testing.T) {
	f := func(xs, ys [6]uint16) bool {
		a, b := fromArray6(xs), fromArray6(ys)
		l1, l2 := L1(a, b), L2(a, b)
		return l2 <= l1+1e-9 && l1 <= math.Sqrt(6)*l2+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: TV = L1 / 2 exactly.
func TestTVHalfL1Property(t *testing.T) {
	f := func(xs, ys [5]uint16) bool {
		a, b := fromArray5(xs), fromArray5(ys)
		return almostEqual(TV(a, b), L1(a, b)/2, 1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func fromArray(xs [8]uint16) *Histogram {
	counts := make([]float64, 8)
	for i, v := range xs {
		counts[i] = float64(v)
	}
	return FromCounts(counts)
}

func fromArray6(xs [6]uint16) *Histogram {
	counts := make([]float64, 6)
	for i, v := range xs {
		counts[i] = float64(v)
	}
	return FromCounts(counts)
}

func fromArray5(xs [5]uint16) *Histogram {
	counts := make([]float64, 5)
	for i, v := range xs {
		counts[i] = float64(v)
	}
	return FromCounts(counts)
}

func TestKLInfOnDisjointSupport(t *testing.T) {
	a := FromCounts([]float64{1, 0})
	b := FromCounts([]float64{0, 1})
	if !math.IsInf(KL(a, b), 1) {
		t.Fatal("KL on disjoint support should be +Inf")
	}
	if KL(a, a) != 0 {
		t.Fatal("KL(a,a) should be 0")
	}
}

func TestKLKnownValue(t *testing.T) {
	a := FromCounts([]float64{1, 1})
	b := FromCounts([]float64{3, 1})
	// KL(0.5,0.5 || 0.75,0.25) = 0.5 ln(0.5/0.75) + 0.5 ln(0.5/0.25)
	want := 0.5*math.Log(0.5/0.75) + 0.5*math.Log(2.0)
	if !almostEqual(KL(a, b), want, 1e-12) {
		t.Fatalf("KL = %g, want %g", KL(a, b), want)
	}
}

func TestChiSquare(t *testing.T) {
	a := FromCounts([]float64{1, 1})
	b := FromCounts([]float64{1, 3})
	// ā=(.5,.5) b̄=(.25,.75): (0.25²)/0.25 + (0.25²)/0.75
	want := 0.0625/0.25 + 0.0625/0.75
	if !almostEqual(ChiSquare(a, b), want, 1e-12) {
		t.Fatalf("ChiSquare = %g, want %g", ChiSquare(a, b), want)
	}
	c := FromCounts([]float64{1, 0})
	d := FromCounts([]float64{0, 1})
	if !math.IsInf(ChiSquare(c, d), 1) {
		t.Fatal("ChiSquare with zero denominator should be +Inf")
	}
}

func TestDistancePanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("L1 on mismatched sizes did not panic")
		}
	}()
	L1(New(2), New(3))
}

func TestL1BothEmptyIsZero(t *testing.T) {
	if d := L1(New(3), New(3)); d != 0 {
		t.Fatalf("L1(empty, empty) = %g", d)
	}
}

func TestL1OneEmptyUsesUniform(t *testing.T) {
	a := New(2)
	b := FromCounts([]float64{1, 0})
	// ā = (0.5, 0.5); b̄ = (1, 0); L1 = 1.
	if d := L1(a, b); !almostEqual(d, 1, 1e-12) {
		t.Fatalf("L1(empty, point) = %g, want 1", d)
	}
}

func TestL1MaxIsTwo(t *testing.T) {
	a := FromCounts([]float64{1, 0})
	b := FromCounts([]float64{0, 1})
	if d := L1(a, b); !almostEqual(d, 2, 1e-12) {
		t.Fatalf("disjoint L1 = %g, want 2", d)
	}
}

func TestL2SmallOnDisjointHeavyTails(t *testing.T) {
	// The paper (§2.1) notes L2 can be small even for distributions with
	// disjoint support when mass is spread out; verify L2 << L1 here.
	n := 100
	ca, cb := make([]float64, 2*n), make([]float64, 2*n)
	for i := 0; i < n; i++ {
		ca[i] = 1
		cb[n+i] = 1
	}
	a, b := FromCounts(ca), FromCounts(cb)
	if l1 := L1(a, b); !almostEqual(l1, 2, 1e-9) {
		t.Fatalf("L1 = %g, want 2", l1)
	}
	if l2 := L2(a, b); l2 > 0.2 {
		t.Fatalf("L2 = %g, expected << L1 for spread-out disjoint mass", l2)
	}
}
