package histogram

import "sort"

// Ranked pairs a candidate index with its distance to the target.
type Ranked struct {
	ID       int
	Distance float64
}

// TopK returns the k candidates with the smallest distances, sorted
// ascending by distance with candidate ID as the deterministic tiebreak.
// If fewer than k distances are provided, all are returned. The ids slice
// selects which entries of dist participate (pass nil to rank everything).
func TopK(dist []float64, ids []int, k int) []Ranked {
	var ranked []Ranked
	if ids == nil {
		ranked = make([]Ranked, 0, len(dist))
		for i, d := range dist {
			ranked = append(ranked, Ranked{ID: i, Distance: d})
		}
	} else {
		ranked = make([]Ranked, 0, len(ids))
		for _, id := range ids {
			ranked = append(ranked, Ranked{ID: id, Distance: dist[id]})
		}
	}
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].Distance != ranked[j].Distance {
			return ranked[i].Distance < ranked[j].Distance
		}
		return ranked[i].ID < ranked[j].ID
	})
	if k < len(ranked) {
		ranked = ranked[:k]
	}
	return ranked
}

// SplitPoint returns the midpoint s = ½(max_{i∈M} τ_i + min_{j∈A\M} τ_j)
// used on line 18 of Algorithm 1 to separate matching from non-matching
// candidates. m holds the distances of the current top-k, rest the
// distances of the remaining non-pruned candidates. If rest is empty the
// split point is the maximum of m (everything is matching; the hypotheses
// for A\M are vacuous).
func SplitPoint(m, rest []float64) float64 {
	maxM := 0.0
	for _, d := range m {
		if d > maxM {
			maxM = d
		}
	}
	if len(rest) == 0 {
		return maxM
	}
	minRest := rest[0]
	for _, d := range rest[1:] {
		if d < minRest {
			minRest = d
		}
	}
	return (maxM + minRest) / 2
}
