package histogram

import (
	"fmt"
	"math"
)

// Metric identifies a distance function over normalized histograms. HistSim
// is proved for L1 (Theorem 1) but generalizes to any metric with a
// deviation bound of the same form (Appendix A.2.2); MetricL2 uses the
// standard L2 concentration bound.
type Metric int

const (
	// MetricL1 is the paper's default: ‖ā − b̄‖₁, twice total variation.
	MetricL1 Metric = iota
	// MetricL2 is the SeeDB/Sample+Seek metric ‖ā − b̄‖₂.
	MetricL2
)

// String implements fmt.Stringer.
func (m Metric) String() string {
	switch m {
	case MetricL1:
		return "l1"
	case MetricL2:
		return "l2"
	default:
		return fmt.Sprintf("Metric(%d)", int(m))
	}
}

// ParseMetric converts "l1"/"l2" into a Metric.
func ParseMetric(s string) (Metric, error) {
	switch s {
	case "l1", "L1":
		return MetricL1, nil
	case "l2", "L2":
		return MetricL2, nil
	}
	return 0, fmt.Errorf("histogram: unknown metric %q", s)
}

// Distance computes the metric between two histograms' normalized forms.
func (m Metric) Distance(a, b *Histogram) float64 {
	switch m {
	case MetricL1:
		return L1(a, b)
	case MetricL2:
		return L2(a, b)
	default:
		panic("histogram: unknown metric")
	}
}

// Deviation returns the ε for which an empirical distribution built from n
// samples is within ε of the truth (in this metric) with probability > 1−δ.
//
// For L1 this is Theorem 1 of the paper:
//
//	ε = sqrt( (2/n) (|V_X| ln 2 + ln(1/δ)) )
//
// For L2 we use the McDiarmid-based bound (see e.g. Waggoner 2015,
// Sample+Seek): P(‖p̂−p‖₂ > 1/√n + ε) ≤ exp(−n ε²/2), i.e.
//
//	ε_total = 1/√n + sqrt( (2/n) ln(1/δ) ).
func (m Metric) Deviation(groups, n int, delta float64) float64 {
	if n <= 0 {
		return math.Inf(1)
	}
	if delta <= 0 {
		return math.Inf(1)
	}
	nf := float64(n)
	switch m {
	case MetricL1:
		return math.Sqrt(2 / nf * (float64(groups)*math.Ln2 + math.Log(1/delta)))
	case MetricL2:
		return 1/math.Sqrt(nf) + math.Sqrt(2/nf*math.Log(1/delta))
	default:
		panic("histogram: unknown metric")
	}
}

// DeviationPValue returns an upper bound on P(d(r̂, r*) > ε) after n
// samples: the P-value generator of Section 3.4.3. Values are clamped to
// [0, 1]. A non-positive ε yields 1 (no evidence); ε = +Inf yields 0
// (the null is impossible, e.g. s − ε/2 < 0 in line 22 of Algorithm 1).
func (m Metric) DeviationPValue(groups, n int, eps float64) float64 {
	if math.IsInf(eps, 1) {
		return 0
	}
	if eps <= 0 || n <= 0 {
		return 1
	}
	nf := float64(n)
	var logp float64
	switch m {
	case MetricL1:
		// δ = 2^{|V_X|} exp(−ε² n / 2), computed in log space to avoid
		// overflow of 2^{|V_X|} for large group counts.
		logp = float64(groups)*math.Ln2 - eps*eps*nf/2
	case MetricL2:
		// Invert the L2 bound: the deviation beyond the 1/√n mean term.
		slack := eps - 1/math.Sqrt(nf)
		if slack <= 0 {
			return 1
		}
		logp = -slack * slack * nf / 2
	default:
		panic("histogram: unknown metric")
	}
	if logp >= 0 {
		return 1
	}
	return math.Exp(logp)
}

// PlanSamples returns the per-round sample-count heuristic used by
// FastMatch's sampling engine (Challenge 2 in §4.2). It extends the
// paper's Equation (1) — n' = 2(|V_X| ln 2 − ln δ)/ε'² — with a correction
// for the upward bias of the plug-in distance estimate: the empirical L1
// distance computed from n samples overshoots the true distance by about
// √(2·groups/(π·n)) in expectation, which consumes part of the ε' margin
// the test needs. Solving (ε' − bias(n))·√n ≥ √(2(groups·ln2 + ln 1/δ))
// gives
//
//	√n' = ( √(2·groups/π) + √(2(groups·ln2 + ln(1/δ))) ) / ε'.
//
// Without the correction the simultaneous test reliably fails its first
// several rounds, and every failed round discards its fresh samples —
// exactly the "take too few and the test will probably not reject across
// many rounds" failure mode the paper warns about. Correctness is
// unaffected either way (HistSim is agnostic to sample counts); this only
// tunes termination speed. For L2 the Deviation bound already contains
// the 1/√n bias term, so PlanSamples coincides with SamplesFor.
func (m Metric) PlanSamples(groups int, eps, delta float64) int {
	if eps <= 0 {
		return math.MaxInt64 / 4
	}
	switch m {
	case MetricL1:
		root := (math.Sqrt(2*float64(groups)/math.Pi) +
			math.Sqrt(2*(float64(groups)*math.Ln2+math.Log(1/delta)))) / eps
		return int(math.Ceil(root * root))
	case MetricL2:
		return m.SamplesFor(groups, eps, delta)
	default:
		panic("histogram: unknown metric")
	}
}

// SamplesFor inverts Deviation: the number of samples needed so that the
// empirical distribution is within eps with probability > 1−δ. For L1 this
// is the n'_i formula of Equation (1) in the paper when δ = δ_upper.
func (m Metric) SamplesFor(groups int, eps, delta float64) int {
	if eps <= 0 {
		return math.MaxInt64 / 4 // effectively "unachievable"
	}
	switch m {
	case MetricL1:
		n := 2 * (float64(groups)*math.Ln2 + math.Log(1/delta)) / (eps * eps)
		return int(math.Ceil(n))
	case MetricL2:
		// Solve 1/√n + sqrt(2 ln(1/δ)/n) = eps  ⇒  √n = (1 + sqrt(2 ln 1/δ))/eps.
		root := (1 + math.Sqrt(2*math.Log(1/delta))) / eps
		return int(math.Ceil(root * root))
	default:
		panic("histogram: unknown metric")
	}
}
