// Package histogram provides the vector representation of candidate
// visualizations used throughout FastMatch, along with the normalized
// distance metrics from Section 2 of the paper.
//
// A histogram is the result of a histogram-generating query
//
//	SELECT X, COUNT(*) FROM T WHERE Z = z GROUP BY X
//
// represented as a vector of per-group counts indexed by the dictionary
// code of the grouping attribute X. Distances are always computed between
// the L1-normalized ("distributional") forms of the vectors, matching
// Definition 2 of the paper.
package histogram

import (
	"errors"
	"fmt"
	"math"
)

// Histogram is a vector of non-negative per-group counts. The zero value of
// length n (all counts zero) is ready to use.
type Histogram struct {
	counts []float64
	total  float64
}

// New returns an empty histogram with n groups.
func New(n int) *Histogram {
	return &Histogram{counts: make([]float64, n)}
}

// FromCounts builds a histogram from a count vector. The slice is copied.
func FromCounts(counts []float64) *Histogram {
	h := New(len(counts))
	for i, c := range counts {
		if c < 0 || math.IsNaN(c) || math.IsInf(c, 0) {
			c = 0
		}
		h.counts[i] = c
		h.total += c
	}
	return h
}

// FromInts builds a histogram from integer counts.
func FromInts(counts []int64) *Histogram {
	h := New(len(counts))
	for i, c := range counts {
		if c > 0 {
			h.counts[i] = float64(c)
			h.total += float64(c)
		}
	}
	return h
}

// Groups returns the number of groups (|V_X| in the paper's notation).
func (h *Histogram) Groups() int { return len(h.counts) }

// Total returns the sum of all counts (1ᵀr in the paper's notation).
func (h *Histogram) Total() float64 { return h.total }

// Count returns the count for group j.
func (h *Histogram) Count(j int) float64 { return h.counts[j] }

// Counts returns a copy of the underlying count vector.
func (h *Histogram) Counts() []float64 {
	out := make([]float64, len(h.counts))
	copy(out, h.counts)
	return out
}

// Add increments group j by one. It panics if j is out of range, matching
// slice-indexing semantics: callers feed dictionary codes that are valid by
// construction.
func (h *Histogram) Add(j int) {
	h.counts[j]++
	h.total++
}

// AddN increments group j by n, the bulk form of Add used when a scan
// kernel folds a whole block's per-group counts in one call. n is a
// non-negative integer-valued count; sums of such counts stay exactly
// representable (and therefore bit-identical to n repeated Adds) up to
// 2^53.
func (h *Histogram) AddN(j int, n float64) {
	h.counts[j] += n
	h.total += n
}

// AddWeighted increments group j by w (used for measure-biased SUM
// estimation; see Appendix A.1.1). Negative or non-finite weights are
// rejected.
func (h *Histogram) AddWeighted(j int, w float64) error {
	if w < 0 || math.IsNaN(w) || math.IsInf(w, 0) {
		return fmt.Errorf("histogram: invalid weight %v", w)
	}
	h.counts[j] += w
	h.total += w
	return nil
}

// AddHistogram accumulates other into h. Both must have the same number of
// groups.
func (h *Histogram) AddHistogram(other *Histogram) error {
	if len(h.counts) != len(other.counts) {
		return fmt.Errorf("histogram: group mismatch %d vs %d", len(h.counts), len(other.counts))
	}
	for i, c := range other.counts {
		h.counts[i] += c
	}
	h.total += other.total
	return nil
}

// Reset zeroes every count, reusing the allocation.
func (h *Histogram) Reset() {
	for i := range h.counts {
		h.counts[i] = 0
	}
	h.total = 0
}

// Clone returns a deep copy.
func (h *Histogram) Clone() *Histogram {
	c := New(len(h.counts))
	copy(c.counts, h.counts)
	c.total = h.total
	return c
}

// Normalized returns the L1-normalized distribution r̄ = r / 1ᵀr as a fresh
// slice. If the histogram is empty it returns the uniform distribution,
// which is the convention HistSim uses for candidates with no samples yet
// (their distance estimate is then maximally uninformative rather than NaN).
func (h *Histogram) Normalized() []float64 {
	out := make([]float64, len(h.counts))
	h.NormalizedInto(out)
	return out
}

// NormalizedInto writes the normalized distribution into dst, which must
// have length Groups(). It avoids allocation in hot loops.
func (h *Histogram) NormalizedInto(dst []float64) {
	if len(dst) != len(h.counts) {
		panic(fmt.Sprintf("histogram: NormalizedInto dst length %d want %d", len(dst), len(h.counts)))
	}
	if h.total <= 0 {
		u := 1.0 / float64(len(h.counts))
		for i := range dst {
			dst[i] = u
		}
		return
	}
	inv := 1.0 / h.total
	for i, c := range h.counts {
		dst[i] = c * inv
	}
}

// String implements fmt.Stringer with a compact count rendering.
func (h *Histogram) String() string {
	return fmt.Sprintf("Histogram(n=%d, total=%g)", len(h.counts), h.total)
}

// ErrGroupMismatch is returned when two histograms with different group
// counts are compared.
var ErrGroupMismatch = errors.New("histogram: group count mismatch")

// L1 returns the normalized L1 distance d(a, b) = ‖ā − b̄‖₁ (Definition 2).
// The result lies in [0, 2]. It panics if the group counts differ.
func L1(a, b *Histogram) float64 {
	mustMatch(a, b)
	if a.total <= 0 && b.total <= 0 {
		return 0
	}
	// Inline normalization to avoid two slice allocations per call: this is
	// the innermost loop of HistSim's per-round distance refresh.
	invA, invB := safeInv(a.total, len(a.counts)), safeInv(b.total, len(b.counts))
	uA, uB := uniformTerm(a, invA), uniformTerm(b, invB)
	var sum float64
	for i := range a.counts {
		pa, pb := uA, uB
		if invA > 0 {
			pa = a.counts[i] * invA
		}
		if invB > 0 {
			pb = b.counts[i] * invB
		}
		sum += math.Abs(pa - pb)
	}
	return sum
}

// L2 returns the normalized L2 distance ‖ā − b̄‖₂, the metric used by
// SeeDB/Sample+Seek and compared against L1 in Table 5 of the paper.
func L2(a, b *Histogram) float64 {
	mustMatch(a, b)
	if a.total <= 0 && b.total <= 0 {
		return 0
	}
	invA, invB := safeInv(a.total, len(a.counts)), safeInv(b.total, len(b.counts))
	uA, uB := uniformTerm(a, invA), uniformTerm(b, invB)
	var sum float64
	for i := range a.counts {
		pa, pb := uA, uB
		if invA > 0 {
			pa = a.counts[i] * invA
		}
		if invB > 0 {
			pb = b.counts[i] * invB
		}
		d := pa - pb
		sum += d * d
	}
	return math.Sqrt(sum)
}

// TV returns the total variation distance between the normalized forms,
// which equals L1/2 for discrete distributions (Section 2.1 of the paper
// cites this correspondence as a motivation for the L1 choice).
func TV(a, b *Histogram) float64 { return L1(a, b) / 2 }

// KL returns the Kullback-Leibler divergence KL(ā ‖ b̄). It is +Inf whenever
// b places zero mass where a places nonzero mass — the drawback the paper
// notes when rejecting KL as the matching metric.
func KL(a, b *Histogram) float64 {
	mustMatch(a, b)
	pa, pb := a.Normalized(), b.Normalized()
	var sum float64
	for i := range pa {
		if pa[i] == 0 {
			continue
		}
		if pb[i] == 0 {
			return math.Inf(1)
		}
		sum += pa[i] * math.Log(pa[i]/pb[i])
	}
	return sum
}

// ChiSquare returns the chi-square divergence Σ (ā−b̄)²/b̄ with the
// convention 0/0 = 0. Provided for completeness in the metric suite.
func ChiSquare(a, b *Histogram) float64 {
	mustMatch(a, b)
	pa, pb := a.Normalized(), b.Normalized()
	var sum float64
	for i := range pa {
		d := pa[i] - pb[i]
		if d == 0 {
			continue
		}
		if pb[i] == 0 {
			return math.Inf(1)
		}
		sum += d * d / pb[i]
	}
	return sum
}

func mustMatch(a, b *Histogram) {
	if len(a.counts) != len(b.counts) {
		panic(fmt.Sprintf("histogram: distance between mismatched group counts %d vs %d",
			len(a.counts), len(b.counts)))
	}
}

func safeInv(total float64, _ int) float64 {
	if total <= 0 {
		return 0
	}
	return 1 / total
}

func uniformTerm(h *Histogram, inv float64) float64 {
	if inv > 0 {
		return 0
	}
	return 1.0 / float64(len(h.counts))
}
