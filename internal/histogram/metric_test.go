package histogram

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMetricString(t *testing.T) {
	if MetricL1.String() != "l1" || MetricL2.String() != "l2" {
		t.Fatalf("metric names wrong: %s %s", MetricL1, MetricL2)
	}
	if Metric(99).String() != "Metric(99)" {
		t.Fatalf("unknown metric string: %s", Metric(99))
	}
}

func TestParseMetric(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Metric
	}{{"l1", MetricL1}, {"L1", MetricL1}, {"l2", MetricL2}, {"L2", MetricL2}} {
		got, err := ParseMetric(tc.in)
		if err != nil || got != tc.want {
			t.Fatalf("ParseMetric(%q) = %v, %v", tc.in, got, err)
		}
	}
	if _, err := ParseMetric("manhattan"); err == nil {
		t.Fatal("ParseMetric accepted unknown name")
	}
}

func TestMetricDistanceDispatch(t *testing.T) {
	a := FromCounts([]float64{1, 3})
	b := FromCounts([]float64{2, 2})
	if MetricL1.Distance(a, b) != L1(a, b) {
		t.Fatal("MetricL1 dispatch mismatch")
	}
	if MetricL2.Distance(a, b) != L2(a, b) {
		t.Fatal("MetricL2 dispatch mismatch")
	}
}

func TestDeviationMatchesTheorem1(t *testing.T) {
	// ε = sqrt( (2/n)(|V_X| ln2 + ln(1/δ)) )
	groups, n, delta := 24, 10000, 0.01
	want := math.Sqrt(2.0 / 10000 * (24*math.Ln2 + math.Log(100.0)))
	got := MetricL1.Deviation(groups, n, delta)
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("Deviation = %g, want %g", got, want)
	}
}

func TestDeviationEdgeCases(t *testing.T) {
	if !math.IsInf(MetricL1.Deviation(5, 0, 0.1), 1) {
		t.Fatal("n=0 should give +Inf deviation")
	}
	if !math.IsInf(MetricL1.Deviation(5, 10, 0), 1) {
		t.Fatal("delta=0 should give +Inf deviation")
	}
}

// Property: Deviation and SamplesFor are mutually consistent — taking
// SamplesFor(g, ε, δ) samples yields a deviation bound ≤ ε.
func TestDeviationSamplesForRoundTrip(t *testing.T) {
	f := func(g8 uint8, e uint8, d uint8) bool {
		groups := int(g8%50) + 2
		eps := 0.01 + float64(e%100)/250.0 // [0.01, 0.41)
		delta := 0.001 + float64(d%100)/150.0
		n := MetricL1.SamplesFor(groups, eps, delta)
		return MetricL1.Deviation(groups, n, delta) <= eps+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSamplesForL2RoundTrip(t *testing.T) {
	n := MetricL2.SamplesFor(10, 0.05, 0.01)
	if dev := MetricL2.Deviation(10, n, 0.01); dev > 0.05+1e-9 {
		t.Fatalf("L2 round trip: n=%d gives deviation %g > 0.05", n, dev)
	}
}

func TestSamplesForZeroEps(t *testing.T) {
	if n := MetricL1.SamplesFor(4, 0, 0.1); n < 1<<40 {
		t.Fatalf("SamplesFor(eps=0) should be effectively unbounded, got %d", n)
	}
}

func TestDeviationPValueProperties(t *testing.T) {
	// Monotone decreasing in eps and in n; clamped to [0,1].
	p1 := MetricL1.DeviationPValue(24, 1000, 0.05)
	p2 := MetricL1.DeviationPValue(24, 1000, 0.10)
	p3 := MetricL1.DeviationPValue(24, 4000, 0.05)
	if !(p2 <= p1 && p3 <= p1) {
		t.Fatalf("P-value not monotone: p1=%g p2=%g p3=%g", p1, p2, p3)
	}
	if p := MetricL1.DeviationPValue(24, 1000, -1); p != 1 {
		t.Fatalf("negative eps should give p=1, got %g", p)
	}
	if p := MetricL1.DeviationPValue(24, 1000, math.Inf(1)); p != 0 {
		t.Fatalf("eps=+Inf should give p=0, got %g", p)
	}
	if p := MetricL1.DeviationPValue(2000, 10, 0.01); p != 1 {
		t.Fatalf("huge group count with few samples should clamp to 1, got %g", p)
	}
}

func TestDeviationPValueConsistentWithDeviation(t *testing.T) {
	// By construction, DeviationPValue(g, n, Deviation(g, n, δ)) ≈ δ.
	groups, n, delta := 24, 5000, 0.01
	eps := MetricL1.Deviation(groups, n, delta)
	p := MetricL1.DeviationPValue(groups, n, eps)
	if math.Abs(p-delta) > 1e-9 {
		t.Fatalf("p = %g, want δ = %g", p, delta)
	}
}

// Empirical coverage of Theorem 1: over repeated multinomial draws, the
// fraction of trials with d(r̂, r*) ≥ ε(n, δ) must be at most δ (the bound
// is conservative, so observed failures should be far below δ).
func TestTheorem1EmpiricalCoverage(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical test skipped in -short mode")
	}
	rng := rand.New(rand.NewSource(7))
	groups, n := 8, 2000
	delta := 0.05
	eps := MetricL1.Deviation(groups, n, delta)
	truth := []float64{0.3, 0.2, 0.15, 0.1, 0.1, 0.05, 0.05, 0.05}
	trueHist := FromCounts(truth)
	trials, failures := 400, 0
	for tr := 0; tr < trials; tr++ {
		emp := New(groups)
		for s := 0; s < n; s++ {
			u := rng.Float64()
			var cum float64
			for j, p := range truth {
				cum += p
				if u <= cum {
					emp.Add(j)
					break
				}
			}
		}
		if L1(emp, trueHist) >= eps {
			failures++
		}
	}
	if rate := float64(failures) / float64(trials); rate > delta {
		t.Fatalf("Theorem 1 violated empirically: failure rate %g > δ %g (ε=%g)", rate, delta, eps)
	}
}

func TestL2DeviationEmpiricalCoverage(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical test skipped in -short mode")
	}
	rng := rand.New(rand.NewSource(11))
	groups, n := 6, 1500
	delta := 0.05
	eps := MetricL2.Deviation(groups, n, delta)
	truth := []float64{0.4, 0.25, 0.15, 0.1, 0.05, 0.05}
	trueHist := FromCounts(truth)
	trials, failures := 300, 0
	for tr := 0; tr < trials; tr++ {
		emp := New(groups)
		for s := 0; s < n; s++ {
			u := rng.Float64()
			var cum float64
			for j, p := range truth {
				cum += p
				if u <= cum {
					emp.Add(j)
					break
				}
			}
		}
		if L2(emp, trueHist) >= eps {
			failures++
		}
	}
	if rate := float64(failures) / float64(trials); rate > delta {
		t.Fatalf("L2 bound violated empirically: failure rate %g > δ %g", rate, delta)
	}
}
