package engine

import (
	"testing"
)

// BenchmarkQualityOverhead measures the cost of answer-quality telemetry
// on a sampling run. Collection happens on the per-round path (a ranking
// pass and k Deviation evaluations per emission), never the per-row path,
// so "on" must sit within noise of "off" — the same discipline the
// progress and trace overhead benchmarks pin.
func BenchmarkQualityOverhead(b *testing.B) {
	tbl := testDataset(b, 400_000, 20, 8, 5)
	eng := New(tbl)
	plan, err := eng.Prepare(baseQuery())
	if err != nil {
		b.Fatal(err)
	}
	target, err := plan.ResolveTarget(Target{Uniform: true}, 0)
	if err != nil {
		b.Fatal(err)
	}
	opts := func() Options {
		o := cancelOptions(FastMatch, tbl.NumBlocks())
		o.Workers = 1
		return o
	}

	b.Run("off", func(b *testing.B) {
		o := opts()
		for i := 0; i < b.N; i++ {
			if _, err := plan.RunWithTarget(target, o); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("on", func(b *testing.B) {
		o := opts()
		o.Quality = true
		for i := 0; i < b.N; i++ {
			res, err := plan.RunWithTarget(target, o)
			if err != nil {
				b.Fatal(err)
			}
			if res.Quality == nil {
				b.Fatal("no quality report")
			}
		}
	})
}
