package engine

import (
	"testing"

	"fastmatch/internal/bitmap"
)

// requireIdenticalResults asserts two exact results agree bit-for-bit:
// same top-k order, same distances, same histogram counts, same pruning.
func requireIdenticalResults(t *testing.T, want, got *Result) {
	t.Helper()
	if !got.Exact {
		t.Fatal("parallel result not exact")
	}
	if len(got.TopK) != len(want.TopK) {
		t.Fatalf("topk size %d, want %d", len(got.TopK), len(want.TopK))
	}
	for i := range want.TopK {
		w, g := want.TopK[i], got.TopK[i]
		if g.ID != w.ID || g.Label != w.Label {
			t.Fatalf("topk[%d] = %d %q, want %d %q", i, g.ID, g.Label, w.ID, w.Label)
		}
		if g.Distance != w.Distance {
			t.Fatalf("topk[%d] distance %v != %v", i, g.Distance, w.Distance)
		}
		wc, gc := w.Histogram.Counts(), g.Histogram.Counts()
		for j := range wc {
			if wc[j] != gc[j] {
				t.Fatalf("topk[%d] hist[%d] = %v, want %v", i, j, gc[j], wc[j])
			}
		}
	}
	if len(got.Pruned) != len(want.Pruned) {
		t.Fatalf("pruned %d, want %d", len(got.Pruned), len(want.Pruned))
	}
	for i := range want.Pruned {
		if got.Pruned[i] != want.Pruned[i] {
			t.Fatalf("pruned[%d] = %q, want %q", i, got.Pruned[i], want.Pruned[i])
		}
	}
	if got.IO.BlocksRead != want.IO.BlocksRead || got.IO.TuplesRead != want.IO.TuplesRead {
		t.Fatalf("io %+v, want %+v", got.IO, want.IO)
	}
}

// TestParallelScanMatchesScan asserts ParallelScan is byte-identical to
// Scan at every worker count, on a seeded datagen table.
func TestParallelScanMatchesScan(t *testing.T) {
	tbl := testDataset(t, 50_000, 30, 8, 21)
	e := New(tbl)
	truth, err := e.Run(baseQuery(), Target{Uniform: true}, Options{
		Params: testParams(), Executor: Scan,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 1, 2, 3, 4, 8, 16} {
		res, err := e.Run(baseQuery(), Target{Uniform: true}, Options{
			Params: testParams(), Executor: ParallelScan, Workers: workers,
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		requireIdenticalResults(t, truth, res)
	}
}

// TestParallelScanWithFilterAndKnownCandidates covers the filter and
// restricted-domain paths of the partitioned scan.
func TestParallelScanWithFilterAndKnownCandidates(t *testing.T) {
	tbl := testDataset(t, 40_000, 12, 6, 22)
	e := New(tbl)
	w, _ := tbl.Column("W")
	z, _ := tbl.Column("Z")
	q := baseQuery()
	q.Filter = func(row int) bool { return w.Code(row) != 3 }
	q.KnownCandidates = []string{z.Dict.Value(0), z.Dict.Value(1), z.Dict.Value(4)}
	truth, err := e.Run(q, Target{Uniform: true}, Options{Params: testParams(), Executor: Scan})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(q, Target{Uniform: true}, Options{
		Params: testParams(), Executor: ParallelScan, Workers: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	requireIdenticalResults(t, truth, res)
}

// TestParallelScanPredicateCandidates covers the overlapping
// multi-membership path.
func TestParallelScanPredicateCandidates(t *testing.T) {
	tbl := testDataset(t, 30_000, 10, 6, 23)
	e := New(tbl)
	dmZ, err := e.Density("Z")
	if err != nil {
		t.Fatal(err)
	}
	dmW, err := e.Density("W")
	if err != nil {
		t.Fatal(err)
	}
	q := Query{X: []string{"X"}}
	q.CandidatePreds = append(q.CandidatePreds,
		&bitmap.ValuePred{Column: "Z", Code: 1, DM: dmZ},
		&bitmap.OrPred{Children: []bitmap.Predicate{
			&bitmap.ValuePred{Column: "Z", Code: 1, DM: dmZ},
			&bitmap.ValuePred{Column: "W", Code: 0, DM: dmW},
		}},
	)
	params := testParams()
	params.K = 2
	params.Sigma = 0
	truth, err := e.Run(q, Target{Uniform: true}, Options{Params: params, Executor: Scan})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(q, Target{Uniform: true}, Options{
		Params: params, Executor: ParallelScan, Workers: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	requireIdenticalResults(t, truth, res)
}

// TestOverlappingPredicateTargetResolution asserts that resolving a
// predicate candidate as the target counts every row satisfying the
// predicate, including rows an earlier overlapping predicate also
// matches (the target must match its own scan histogram).
func TestOverlappingPredicateTargetResolution(t *testing.T) {
	tbl := testDataset(t, 20_000, 8, 6, 26)
	e := New(tbl)
	dmZ, err := e.Density("Z")
	if err != nil {
		t.Fatal(err)
	}
	q := Query{X: []string{"X"}}
	// pred 1 overlaps pred 0 on Z=0 rows.
	q.CandidatePreds = append(q.CandidatePreds,
		&bitmap.ValuePred{Column: "Z", Code: 0, DM: dmZ},
		&bitmap.OrPred{Children: []bitmap.Predicate{
			&bitmap.ValuePred{Column: "Z", Code: 0, DM: dmZ},
			&bitmap.ValuePred{Column: "Z", Code: 1, DM: dmZ},
		}},
	)
	p, err := e.Prepare(q)
	if err != nil {
		t.Fatal(err)
	}
	h, err := p.ResolveTarget(Target{Candidate: q.CandidatePreds[1].String()}, 1)
	if err != nil {
		t.Fatal(err)
	}
	z, _ := tbl.Column("Z")
	want := 0
	for row := 0; row < tbl.NumRows(); row++ {
		if c := z.Code(row); c == 0 || c == 1 {
			want++
		}
	}
	if int(h.Total()) != want {
		t.Fatalf("overlapping predicate target total %v, want %d (first-match would drop the Z=0 overlap)", h.Total(), want)
	}
	par, err := p.ResolveTarget(Target{Candidate: q.CandidatePreds[1].String()}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if par.Total() != h.Total() {
		t.Fatalf("parallel total %v != sequential %v", par.Total(), h.Total())
	}
}

// TestParallelTargetResolution asserts the parallel candidate-target scan
// agrees with a sequential one at every worker count.
func TestParallelTargetResolution(t *testing.T) {
	tbl := testDataset(t, 40_000, 15, 8, 24)
	e := New(tbl)
	p, err := e.Prepare(baseQuery())
	if err != nil {
		t.Fatal(err)
	}
	z, _ := tbl.Column("Z")
	for _, label := range []string{z.Dict.Value(0), z.Dict.Value(7)} {
		seq, err := p.ResolveTarget(Target{Candidate: label}, 1)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{0, 2, 8} {
			par, err := p.ResolveTarget(Target{Candidate: label}, workers)
			if err != nil {
				t.Fatal(err)
			}
			if par.Total() != seq.Total() {
				t.Fatalf("%s workers=%d total %v != %v", label, workers, par.Total(), seq.Total())
			}
			sc, pc := seq.Counts(), par.Counts()
			for j := range sc {
				if sc[j] != pc[j] {
					t.Fatalf("%s workers=%d count[%d] %v != %v", label, workers, j, pc[j], sc[j])
				}
			}
		}
	}
}

// TestPlanReuse runs one Plan repeatedly across executors and checks the
// answers match planning from scratch each time.
func TestPlanReuse(t *testing.T) {
	tbl := testDataset(t, 30_000, 15, 6, 25)
	e := New(tbl)
	p, err := e.Prepare(baseQuery())
	if err != nil {
		t.Fatal(err)
	}
	if p.NumCandidates() != 15 || p.Groups() != 6 {
		t.Fatalf("plan shape: %d candidates, %d groups", p.NumCandidates(), p.Groups())
	}
	target, err := p.ResolveTarget(Target{Uniform: true}, 0)
	if err != nil {
		t.Fatal(err)
	}
	// FastMatch is excluded from the strict comparison: its asynchronous
	// marker makes the set of blocks read timing-dependent.
	for _, exec := range []Executor{Scan, ParallelScan, ScanMatch} {
		opts := Options{Params: testParams(), Executor: exec, Seed: 3, Lookahead: 32}
		fromPlan, err := p.RunWithTarget(target, opts)
		if err != nil {
			t.Fatal(err)
		}
		fresh, err := e.RunWithTarget(baseQuery(), target, opts)
		if err != nil {
			t.Fatal(err)
		}
		if len(fromPlan.TopK) != len(fresh.TopK) {
			t.Fatalf("%v: topk %d != %d", exec, len(fromPlan.TopK), len(fresh.TopK))
		}
		for i := range fresh.TopK {
			if fromPlan.TopK[i].Label != fresh.TopK[i].Label {
				t.Fatalf("%v: topk[%d] %q != %q", exec, i, fromPlan.TopK[i].Label, fresh.TopK[i].Label)
			}
		}
	}
	if _, err := p.RunWithTarget(target, Options{
		Params: testParams(), Executor: FastMatch, Seed: 3, Lookahead: 32,
	}); err != nil {
		t.Fatal(err)
	}
}
