// Package engine implements the FastMatch system of Section 4: the I/O
// manager, sampling engine, and statistics engine wired around the
// internal/core HistSim algorithm, with the AnyActive block-selection
// policy, asynchronous lookahead marking, and the Scan / ScanMatch /
// SyncMatch / FastMatch executor variants compared in the evaluation.
package engine

import (
	"fmt"

	"fastmatch/internal/bitmap"
	"fastmatch/internal/colstore"
)

// groupMapper maps a row to its histogram group code, or -1 when the row
// contributes to no group (e.g. a continuous value outside the bin range).
type groupMapper interface {
	groups() int
	groupOf(row int) int
	// labelOf renders a human-readable group label.
	labelOf(g int) string
}

// singleGroups maps groups from one categorical column. codes aliases
// the full column storage and card caches the cardinality, both captured
// once at plan time so the per-row hot path (groupOf, and groups() via
// scanPartial.add) is direct data access, not an interface call.
type singleGroups struct {
	col   colstore.ColumnReader
	codes []uint32
	card  int
}

func newSingleGroups(col colstore.ColumnReader, rows int) singleGroups {
	return singleGroups{col: col, codes: col.Codes(0, rows), card: col.Cardinality()}
}

func (s singleGroups) groups() int          { return s.card }
func (s singleGroups) groupOf(row int) int  { return int(s.codes[row]) }
func (s singleGroups) labelOf(g int) string { return s.col.Dictionary().Value(uint32(g)) }

// multiGroups maps groups from the cross product of several categorical
// columns (Appendix A.1.3). The support is estimated as the product of the
// columns' cardinalities; overestimation only loosens the Theorem-1 bound,
// which stays correct.
type multiGroups struct {
	cols    []colstore.ColumnReader
	codes   [][]uint32 // per column, aliasing full column storage
	strides []int
	total   int
}

func newMultiGroups(cols []colstore.ColumnReader, rows int) (*multiGroups, error) {
	if len(cols) == 0 {
		return nil, fmt.Errorf("engine: no grouping columns")
	}
	mg := &multiGroups{cols: cols, strides: make([]int, len(cols)), total: 1}
	for i := len(cols) - 1; i >= 0; i-- {
		mg.strides[i] = mg.total
		mg.total *= cols[i].Cardinality()
		if mg.total <= 0 || mg.total > 1<<24 {
			return nil, fmt.Errorf("engine: composite group support too large")
		}
	}
	for _, c := range cols {
		mg.codes = append(mg.codes, c.Codes(0, rows))
	}
	return mg, nil
}

func (m *multiGroups) groups() int { return m.total }

func (m *multiGroups) groupOf(row int) int {
	g := 0
	for i, codes := range m.codes {
		g += int(codes[row]) * m.strides[i]
	}
	return g
}

func (m *multiGroups) labelOf(g int) string {
	label := ""
	for i, c := range m.cols {
		code := uint32(g / m.strides[i] % c.Cardinality())
		if i > 0 {
			label += "|"
		}
		label += c.Dictionary().Value(code)
	}
	return label
}

// binnedGroups maps groups by binning a continuous measure column
// (Appendix A.1.4). Rows outside the bin range are dropped, mirroring the
// paper's preprocessing of outlier values.
type binnedGroups struct {
	m      colstore.MeasureReader
	values []float64 // aliases full column storage (read-only)
	binner *colstore.Binner
}

func newBinnedGroups(m colstore.MeasureReader, rows int, binner *colstore.Binner) binnedGroups {
	return binnedGroups{m: m, values: m.Values(0, rows), binner: binner}
}

func (b binnedGroups) groups() int { return b.binner.NumBins() }

func (b binnedGroups) groupOf(row int) int {
	bin, ok := b.binner.Bin(b.values[row])
	if !ok {
		return -1
	}
	return bin
}

func (b binnedGroups) labelOf(g int) string { return b.binner.Label(g) }

// candidateMapper maps rows to candidate ids and answers block-level
// containment questions for AnyActive selection.
type candidateMapper interface {
	numCandidates() int
	candidateOf(row int) int // -1 = row matches no candidate
	// markAnyActive marks mark[i] = true iff block start+i may contain a
	// tuple for an active candidate (sound: never misses a block that
	// does). Implements Algorithm 3's chunked evaluation where possible.
	markAnyActive(active []int, start int, mark []bool)
	// blockAnyActive is the naive single-block probe of Algorithm 2.
	blockAnyActive(active []int, b int) bool
	// candidateBlocks returns the bitset of blocks containing candidate i.
	candidateBlocks(i int) *bitmap.Bitset
	labelOf(i int) string
}

// columnCandidates derives candidates from the distinct values of one
// categorical column, backed by a bitmap.Index. An optional dummy
// candidate absorbs every value outside a known subset, implementing the
// unknown-candidate-domain extension of Appendix A.1.5. All fields are
// read-only after construction, so one instance may serve concurrent runs.
type columnCandidates struct {
	col   colstore.ColumnReader
	codes []uint32 // aliases full column storage (read-only)
	idx   *bitmap.Index
	remap []int // value code -> candidate id (identity when dummy unused)
	// candValue[i] = value code for candidate i; -1 for the dummy.
	candValue []int
	dummyID   int // -1 when absent
	dummyBits *bitmap.Bitset
}

func newColumnCandidates(col colstore.ColumnReader, rows int, idx *bitmap.Index, known []string) (*columnCandidates, error) {
	card := col.Cardinality()
	cc := &columnCandidates{col: col, codes: col.Codes(0, rows), idx: idx, dummyID: -1}
	if len(known) == 0 {
		cc.remap = nil // identity
		cc.candValue = make([]int, card)
		for v := range cc.candValue {
			cc.candValue[v] = v
		}
		return cc, nil
	}
	cc.remap = make([]int, card)
	for v := range cc.remap {
		cc.remap[v] = -2 // unassigned
	}
	for i, name := range known {
		code, ok := col.Dictionary().Code(name)
		if !ok {
			return nil, fmt.Errorf("engine: known candidate %q not in column %q", name, col.ColumnName())
		}
		if cc.remap[code] != -2 {
			return nil, fmt.Errorf("engine: duplicate known candidate %q", name)
		}
		cc.remap[code] = i
		cc.candValue = append(cc.candValue, int(code))
	}
	cc.dummyID = len(known)
	cc.candValue = append(cc.candValue, -1)
	cc.dummyBits = bitmap.NewBitset(idx.NumBlocks())
	for v := 0; v < card; v++ {
		if cc.remap[v] == -2 {
			cc.remap[v] = cc.dummyID
			vb, err := idx.ValueBitset(uint32(v))
			if err != nil {
				return nil, err
			}
			if err := cc.dummyBits.Or(vb); err != nil {
				return nil, err
			}
		}
	}
	return cc, nil
}

func (cc *columnCandidates) numCandidates() int { return len(cc.candValue) }

func (cc *columnCandidates) candidateOf(row int) int {
	code := cc.codes[row]
	if cc.remap == nil {
		return int(code)
	}
	return cc.remap[code]
}

// activeValues translates candidate ids to value codes, separating out the
// dummy (which has no single value bitmap). It allocates a fresh slice
// rather than reusing mapper-level scratch so the mapper stays free of
// mutable state (it is called once per lookahead window, not per row).
func (cc *columnCandidates) activeValues(active []int) (values []uint32, dummyActive bool) {
	values = make([]uint32, 0, len(active))
	for _, id := range active {
		if id == cc.dummyID {
			dummyActive = true
			continue
		}
		values = append(values, uint32(cc.candValue[id]))
	}
	return values, dummyActive
}

func (cc *columnCandidates) markAnyActive(active []int, start int, mark []bool) {
	values, dummyActive := cc.activeValues(active)
	cc.idx.MarkAnyActive(values, start, mark)
	if dummyActive && cc.dummyBits != nil {
		for i := range mark {
			b := start + i
			if !mark[i] && b < cc.dummyBits.Len() && cc.dummyBits.Get(b) {
				mark[i] = true
			}
		}
	}
}

func (cc *columnCandidates) blockAnyActive(active []int, b int) bool {
	for _, id := range active {
		if id == cc.dummyID {
			if cc.dummyBits != nil && cc.dummyBits.Get(b) {
				return true
			}
			continue
		}
		if cc.idx.Contains(uint32(cc.candValue[id]), b) {
			return true
		}
	}
	return false
}

func (cc *columnCandidates) candidateBlocks(i int) *bitmap.Bitset {
	if i == cc.dummyID {
		return cc.dummyBits
	}
	bs, err := cc.idx.ValueBitset(uint32(cc.candValue[i]))
	if err != nil {
		panic(fmt.Sprintf("engine: candidateBlocks(%d): %v", i, err))
	}
	return bs
}

func (cc *columnCandidates) labelOf(i int) string {
	if i == cc.dummyID {
		return "<other>"
	}
	return cc.col.Dictionary().Value(uint32(cc.candValue[i]))
}

// predicateCandidates derives candidates from boolean predicates over
// attribute values (Appendix A.1.2), using the density maps embedded in
// the predicates for block estimates. A row belongs to every predicate it
// satisfies; HistSim's Holm–Bonferroni machinery is agnostic to the
// induced dependence. Because a row may match several predicates,
// candidateOf is replaced by candidatesOf; the sampler handles the
// multi-membership. Read-only after construction.
type predicateCandidates struct {
	preds    []bitmap.Predicate
	matchers []func(row int) bool
	blocks   []*bitmap.Bitset // per candidate: blocks that may contain it
	labels   []string
}

func newPredicateCandidates(src colstore.Reader, preds []bitmap.Predicate) (*predicateCandidates, error) {
	if len(preds) == 0 {
		return nil, fmt.Errorf("engine: no candidate predicates")
	}
	pc := &predicateCandidates{preds: preds}
	nb := src.NumBlocks()
	for _, p := range preds {
		m, err := compilePredicate(src, p)
		if err != nil {
			return nil, err
		}
		pc.matchers = append(pc.matchers, m)
		bs := bitmap.NewBitset(nb)
		for b := 0; b < nb; b++ {
			if p.EstimateBlock(b) > 0 {
				bs.Set(b)
			}
		}
		pc.blocks = append(pc.blocks, bs)
		pc.labels = append(pc.labels, p.String())
	}
	return pc, nil
}

// compilePredicate turns a bitmap.Predicate into a direct row matcher
// against source columns, avoiding per-row map allocation.
func compilePredicate(src colstore.Reader, p bitmap.Predicate) (func(row int) bool, error) {
	switch q := p.(type) {
	case *bitmap.ValuePred:
		col, err := src.ColumnByName(q.Column)
		if err != nil {
			return nil, err
		}
		// Capture the aliased codes once: the matcher runs per row in
		// executor hot loops, where an interface call per row would cost.
		codes := col.Codes(0, src.NumRows())
		code := q.Code
		return func(row int) bool { return codes[row] == code }, nil
	case *bitmap.AndPred:
		kids, err := compileAll(src, q.Children)
		if err != nil {
			return nil, err
		}
		return func(row int) bool {
			for _, k := range kids {
				if !k(row) {
					return false
				}
			}
			return true
		}, nil
	case *bitmap.OrPred:
		kids, err := compileAll(src, q.Children)
		if err != nil {
			return nil, err
		}
		return func(row int) bool {
			for _, k := range kids {
				if k(row) {
					return true
				}
			}
			return false
		}, nil
	default:
		return nil, fmt.Errorf("engine: unsupported predicate type %T", p)
	}
}

func compileAll(src colstore.Reader, ps []bitmap.Predicate) ([]func(row int) bool, error) {
	out := make([]func(row int) bool, len(ps))
	for i, p := range ps {
		m, err := compilePredicate(src, p)
		if err != nil {
			return nil, err
		}
		out[i] = m
	}
	return out, nil
}

func (pc *predicateCandidates) numCandidates() int { return len(pc.preds) }

// candidateOf returns the first matching predicate for single-membership
// uses; candidatesOf (below) reports all matches.
func (pc *predicateCandidates) candidateOf(row int) int {
	for i, m := range pc.matchers {
		if m(row) {
			return i
		}
	}
	return -1
}

// candidatesOf appends all matching candidate ids to dst.
func (pc *predicateCandidates) candidatesOf(row int, dst []int) []int {
	for i, m := range pc.matchers {
		if m(row) {
			dst = append(dst, i)
		}
	}
	return dst
}

func (pc *predicateCandidates) markAnyActive(active []int, start int, mark []bool) {
	for i := range mark {
		mark[i] = false
	}
	for _, id := range active {
		bs := pc.blocks[id]
		for i := range mark {
			b := start + i
			if !mark[i] && b < bs.Len() && bs.Get(b) {
				mark[i] = true
			}
		}
	}
}

func (pc *predicateCandidates) blockAnyActive(active []int, b int) bool {
	for _, id := range active {
		if b < pc.blocks[id].Len() && pc.blocks[id].Get(b) {
			return true
		}
	}
	return false
}

func (pc *predicateCandidates) candidateBlocks(i int) *bitmap.Bitset { return pc.blocks[i] }

func (pc *predicateCandidates) labelOf(i int) string { return pc.labels[i] }
