package engine

import (
	"encoding/json"
	"fmt"
	"reflect"
	"sync"
	"testing"

	"fastmatch/internal/colstore"
)

// Backend-equivalence suite: every executor must return byte-identical
// results and IOStats whether the engine reads the heap-resident table
// or the zero-copy mmap snapshot backend. The snapshot preserves the
// block layout and row permutation exactly, so any divergence is a
// backend bug, not sampling noise.
//
// Determinism note: FastMatch's lookahead marking is synchronous and
// deterministic for any window size (see sampler.go); the suite pins
// Lookahead ≥ NumBlocks only so one marking window covers the whole
// block space, the configuration the paper's Algorithm 3 measurements
// use. parallel_equiv_test.go covers the short-window tilings.

// mmapTwin writes tbl to a v2 snapshot and opens it with the mmap
// backend.
func mmapTwin(t testing.TB, tbl *colstore.Table) *colstore.MmapTable {
	t.Helper()
	path := t.TempDir() + "/twin.fms"
	if err := colstore.WriteSnapshotFile(tbl, path); err != nil {
		t.Fatal(err)
	}
	mt, err := colstore.OpenMmapFile(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { mt.Close() })
	return mt
}

// canonicalResult strips the only nondeterministic field (wall-clock
// Duration) and renders the rest as JSON, so equality is byte equality.
func canonicalResult(t testing.TB, res *Result) string {
	t.Helper()
	c := *res
	c.Duration = 0
	b, err := json.Marshal(&c)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func equivOptions(exec Executor, nb int) Options {
	return Options{
		Params:   testParams(),
		Executor: exec,
		// Deterministic async marking: one window spans all blocks.
		Lookahead:  nb + 1,
		StartBlock: -1,
		Seed:       11,
		Workers:    4,
	}
}

func allExecutors() []Executor {
	return []Executor{Scan, ParallelScan, ScanMatch, SyncMatch, FastMatch}
}

func TestBackendsAreByteIdentical(t *testing.T) {
	tbl := testDataset(t, 40_000, 20, 8, 5)
	inmem := New(tbl)
	mmap := New(mmapTwin(t, tbl))

	queries := []struct {
		name   string
		q      Query
		target Target
	}{
		{"uniform", Query{Z: "Z", X: []string{"X"}}, Target{Uniform: true}},
		{"composite-groups", Query{Z: "Z", X: []string{"X", "W"}}, Target{Uniform: true}},
		{"known-candidates", Query{Z: "Z", X: []string{"X"}},
			Target{Uniform: true}},
	}
	zc, err := tbl.Column("Z")
	if err != nil {
		t.Fatal(err)
	}
	queries[2].q.KnownCandidates = []string{zc.Dict.Value(0), zc.Dict.Value(1), zc.Dict.Value(2)}
	queries = append(queries, struct {
		name   string
		q      Query
		target Target
	}{"candidate-target", Query{Z: "Z", X: []string{"X"}}, Target{Candidate: zc.Dict.Value(0)}})

	for _, qc := range queries {
		for _, exec := range allExecutors() {
			t.Run(fmt.Sprintf("%s/%s", qc.name, exec), func(t *testing.T) {
				opts := equivOptions(exec, tbl.NumBlocks())
				a, err := inmem.Run(qc.q, qc.target, opts)
				if err != nil {
					t.Fatal(err)
				}
				b, err := mmap.Run(qc.q, qc.target, opts)
				if err != nil {
					t.Fatal(err)
				}
				if a.IO != b.IO {
					t.Fatalf("IOStats diverge: inmem %+v, mmap %+v", a.IO, b.IO)
				}
				ca, cb := canonicalResult(t, a), canonicalResult(t, b)
				if ca != cb {
					t.Fatalf("results diverge:\ninmem: %s\nmmap:  %s", ca, cb)
				}
				// Belt and braces: the unexported parts too.
				a.Duration, b.Duration = 0, 0
				if !reflect.DeepEqual(a, b) {
					t.Fatal("results deep-compare unequal despite identical JSON")
				}
			})
		}
	}
}

// TestBackendEquivalenceMeasureBiasedView checks the derived-view path:
// a view built from the mmap backend must equal one built from the heap
// table (same seed, same multiplicities).
func TestBackendEquivalenceMeasureBiasedView(t *testing.T) {
	tbl := testDataset(t, 10_000, 10, 6, 9)
	mt := mmapTwin(t, tbl)
	va, err := MeasureBiasedView(tbl, "M", 5_000, 3)
	if err != nil {
		t.Fatal(err)
	}
	vb, err := MeasureBiasedView(mt, "M", 5_000, 3)
	if err != nil {
		t.Fatal(err)
	}
	if va.NumRows() != vb.NumRows() {
		t.Fatalf("view rows diverge: %d vs %d", va.NumRows(), vb.NumRows())
	}
	ca, _ := va.Column("Z")
	cb, _ := vb.Column("Z")
	for i := 0; i < va.NumRows(); i++ {
		if ca.Code(i) != cb.Code(i) {
			t.Fatalf("view row %d diverges", i)
		}
	}
}

// TestBackendsConcurrent hammers both backends from many goroutines
// (run with -race) and checks every run agrees with a precomputed
// expectation — the mmap pages are shared and read-only, so concurrent
// access must be free of both races and divergence.
func TestBackendsConcurrent(t *testing.T) {
	tbl := testDataset(t, 30_000, 15, 8, 6)
	engines := map[string]*Engine{
		"inmem": New(tbl),
		"mmap":  New(mmapTwin(t, tbl)),
	}
	q := Query{Z: "Z", X: []string{"X"}}
	target := Target{Uniform: true}
	want := map[Executor]string{}
	for _, exec := range []Executor{Scan, FastMatch} {
		res, err := engines["inmem"].Run(q, target, equivOptions(exec, tbl.NumBlocks()))
		if err != nil {
			t.Fatal(err)
		}
		want[exec] = canonicalResult(t, res)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for name, e := range engines {
		for _, exec := range []Executor{Scan, FastMatch} {
			for g := 0; g < 4; g++ {
				wg.Add(1)
				go func(name string, e *Engine, exec Executor) {
					defer wg.Done()
					res, err := e.Run(q, target, equivOptions(exec, tbl.NumBlocks()))
					if err != nil {
						errs <- fmt.Errorf("%s/%s: %v", name, exec, err)
						return
					}
					if got := canonicalResult(t, res); got != want[exec] {
						errs <- fmt.Errorf("%s/%s diverged from expected result", name, exec)
					}
				}(name, e, exec)
			}
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
