package engine

import (
	"testing"

	"fastmatch/internal/obs/trace"
)

// BenchmarkTraceOverhead measures what tracing costs the hot path. The
// "off" case is the contract: Options.Trace == nil must price at the
// plain run — every trace call site is a nil-receiver no-op, with no
// timestamps, observer, or allocation on the per-row or per-block path.
// The "on" case prices a live trace (per-phase/per-worker timestamps and
// span bookkeeping), which the server pays on every request; it sits on
// the per-round path, never the per-row path, so it stays small too.
//
// CI runs the "off" case as a bench-sanity step (compile + a few
// iterations); BENCH_obs.json records a reference environment's numbers.
func BenchmarkTraceOverhead(b *testing.B) {
	tbl := testDataset(b, 400_000, 20, 8, 5)
	eng := New(tbl)
	plan, err := eng.Prepare(baseQuery())
	if err != nil {
		b.Fatal(err)
	}
	target, err := plan.ResolveTarget(Target{Uniform: true}, 0)
	if err != nil {
		b.Fatal(err)
	}
	opts := func() Options {
		o := cancelOptions(Scan, tbl.NumBlocks())
		o.Workers = 1
		return o
	}

	b.Run("off", func(b *testing.B) {
		o := opts()
		for i := 0; i < b.N; i++ {
			if _, err := plan.RunWithTarget(target, o); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("on", func(b *testing.B) {
		o := opts()
		for i := 0; i < b.N; i++ {
			o.Trace = trace.New("bench")
			if _, err := plan.RunWithTarget(target, o); err != nil {
				b.Fatal(err)
			}
			o.Trace.End()
		}
	})
}
