package engine

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"testing"
)

// Worker-count equivalence suite: the sampling executors' chunk-committed
// rounds promise byte-identical results for ANY Options.Workers value —
// the planner makes every policy decision serially from committed state
// and per-worker partials merge with exact integer arithmetic (see
// sampler.go). This suite enforces the promise the same way
// TestSkipOnOffByteIdentical pins skip on/off: canonical JSON equality
// over results, IOStats, and the full OnProgress sequence, across all
// three storage backends, including runs cut short by a row budget or a
// mid-scan cancellation. Run under -race in CI, it also proves the
// worker pool shares no unsynchronized state.

func samplingExecutors() []Executor {
	return []Executor{ScanMatch, SyncMatch, FastMatch}
}

// progressLog returns an OnProgress hook appending each frame's
// canonical form (Elapsed zeroed — the one nondeterministic field) to
// seq.
func progressLog(t testing.TB, seq *[]string) func(Progress) {
	return func(p Progress) {
		p.Elapsed = 0
		b, err := json.Marshal(&p)
		if err != nil {
			t.Fatal(err)
		}
		*seq = append(*seq, string(b))
	}
}

func TestWorkerCountByteIdentical(t *testing.T) {
	for name, src := range cancelBackends(t) {
		eng := New(src)
		for _, exec := range samplingExecutors() {
			t.Run(fmt.Sprintf("%s/%s", name, exec), func(t *testing.T) {
				var wantRes string
				var wantIO IOStats
				var wantSeq []string
				for _, workers := range []int{1, 2, 4} {
					opts := equivOptions(exec, src.NumBlocks())
					opts.Workers = workers
					var seq []string
					opts.OnProgress = progressLog(t, &seq)
					res, err := eng.Run(baseQuery(), Target{Uniform: true}, opts)
					if err != nil {
						t.Fatalf("workers=%d: %v", workers, err)
					}
					got := canonicalResult(t, res)
					if workers == 1 {
						wantRes, wantIO, wantSeq = got, res.IO, seq
						continue
					}
					if got != wantRes {
						t.Fatalf("workers=%d result diverges from workers=1:\n%s\nvs\n%s", workers, got, wantRes)
					}
					if res.IO != wantIO {
						t.Fatalf("workers=%d IOStats diverge: %+v vs %+v", workers, res.IO, wantIO)
					}
					if len(seq) != len(wantSeq) {
						t.Fatalf("workers=%d emitted %d progress frames, workers=1 emitted %d", workers, len(seq), len(wantSeq))
					}
					for i := range seq {
						if seq[i] != wantSeq[i] {
							t.Fatalf("workers=%d progress frame %d diverges:\n%s\nvs\n%s", workers, i, seq[i], wantSeq[i])
						}
					}
				}
			})
		}
	}
}

// TestWorkerCountByteIdenticalShortLookahead re-runs FastMatch with a
// marking window far smaller than the block space, forcing window
// retiling and the wrap-around split on every pass — the lookahead
// machinery the big-window suite above never exercises.
func TestWorkerCountByteIdenticalShortLookahead(t *testing.T) {
	tbl := testDataset(t, 40_000, 20, 8, 5)
	eng := New(tbl)
	for _, lookahead := range []int{3, 17} {
		t.Run(fmt.Sprintf("lookahead=%d", lookahead), func(t *testing.T) {
			var want string
			for _, workers := range []int{1, 2, 4} {
				opts := equivOptions(FastMatch, tbl.NumBlocks())
				opts.Lookahead = lookahead
				opts.Workers = workers
				res, err := eng.Run(baseQuery(), Target{Uniform: true}, opts)
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				got := canonicalResult(t, res)
				if workers == 1 {
					want = got
				} else if got != want {
					t.Fatalf("workers=%d diverges from workers=1 at lookahead %d", workers, lookahead)
				}
			}
		})
	}
}

// TestWorkerCountByteIdenticalBudgetPartial pins the harder half of the
// determinism contract: a run stopped by a row budget must cut at the
// same committed block for every worker count, so even the partial
// result and its progress prefix are byte-identical.
func TestWorkerCountByteIdenticalBudgetPartial(t *testing.T) {
	tbl := testDataset(t, 40_000, 20, 8, 5)
	eng := New(tbl)
	for _, exec := range samplingExecutors() {
		t.Run(exec.String(), func(t *testing.T) {
			var wantRes string
			var wantSeq []string
			for _, workers := range []int{1, 2, 4} {
				opts := equivOptions(exec, tbl.NumBlocks())
				opts.Workers = workers
				opts.RowBudget = 3_000
				var seq []string
				opts.OnProgress = progressLog(t, &seq)
				res, err := eng.Run(baseQuery(), Target{Uniform: true}, opts)
				if !errors.Is(err, ErrBudgetExhausted) {
					t.Fatalf("workers=%d: want ErrBudgetExhausted, got %v", workers, err)
				}
				if res == nil || !res.Partial {
					t.Fatalf("workers=%d: no partial result", workers)
				}
				got := canonicalResult(t, res)
				if workers == 1 {
					wantRes, wantSeq = got, seq
					continue
				}
				if got != wantRes {
					t.Fatalf("workers=%d budget partial diverges from workers=1:\n%s\nvs\n%s", workers, got, wantRes)
				}
				if fmt.Sprint(seq) != fmt.Sprint(wantSeq) {
					t.Fatalf("workers=%d budget-partial progress diverges", workers)
				}
			}
		})
	}
}

// TestWorkerCountByteIdenticalCancelPartial does the same for a filter
// that cancels the context after a fixed number of rows. The trigger row
// lands inside the same planned chunk for every worker count (the
// planner's read plan never depends on workers), and the planner only
// observes the guard between chunks — so the cut, and the partial, are
// deterministic even though worker interleaving within the chunk is not.
func TestWorkerCountByteIdenticalCancelPartial(t *testing.T) {
	tbl := testDataset(t, 40_000, 20, 8, 5)
	eng := New(tbl)
	for _, exec := range samplingExecutors() {
		t.Run(exec.String(), func(t *testing.T) {
			var want string
			for _, workers := range []int{1, 2, 4} {
				ctx, cancel := context.WithCancel(context.Background())
				q := baseQuery()
				q.Filter = cancelAfterRows(cancel, 5_000)
				opts := equivOptions(exec, tbl.NumBlocks())
				opts.Workers = workers
				res, err := eng.RunContext(ctx, q, Target{Uniform: true}, opts)
				cancel()
				if !errors.Is(err, ErrCanceled) {
					t.Fatalf("workers=%d: want ErrCanceled, got %v", workers, err)
				}
				if res == nil || !res.Partial {
					t.Fatalf("workers=%d: no partial result", workers)
				}
				got := canonicalResult(t, res)
				if workers == 1 {
					want = got
				} else if got != want {
					t.Fatalf("workers=%d cancel partial diverges from workers=1:\n%s\nvs\n%s", workers, got, want)
				}
			}
		})
	}
}

// TestSamplerStatsAccounting checks the per-worker diagnostics: worker
// block/tuple counts must sum to the run's I/O totals, and the effective
// width must respect the requested worker count.
func TestSamplerStatsAccounting(t *testing.T) {
	tbl := testDataset(t, 40_000, 20, 8, 5)
	eng := New(tbl)
	for _, workers := range []int{1, 3} {
		opts := equivOptions(SyncMatch, tbl.NumBlocks())
		opts.Workers = workers
		res, err := eng.Run(baseQuery(), Target{Uniform: true}, opts)
		if err != nil {
			t.Fatal(err)
		}
		ss := res.Sampler
		if ss == nil {
			t.Fatalf("workers=%d: sampling run carries no SamplerStats", workers)
		}
		if ss.Workers != workers {
			t.Fatalf("effective workers %d, requested %d", ss.Workers, workers)
		}
		if ss.Chunks <= 0 {
			t.Fatalf("workers=%d: no chunks committed", workers)
		}
		var blocks, tuples int64
		for i := range ss.WorkerBlocks {
			blocks += ss.WorkerBlocks[i]
			tuples += ss.WorkerTuples[i]
		}
		if blocks != res.IO.BlocksRead {
			t.Fatalf("worker blocks sum %d != BlocksRead %d", blocks, res.IO.BlocksRead)
		}
		if tuples != res.IO.TuplesRead {
			t.Fatalf("worker tuples sum %d != TuplesRead %d", tuples, res.IO.TuplesRead)
		}
		if workers > 1 {
			busy := 0
			for _, b := range ss.WorkerBlocks {
				if b > 0 {
					busy++
				}
			}
			if busy < 2 {
				t.Fatalf("workers=%d but only %d worker(s) read blocks", workers, busy)
			}
		}
	}
}
