package engine

import (
	"math"
	"testing"

	"fastmatch/internal/colstore"
	"fastmatch/internal/histogram"
)

// buildMeasureTable builds a tiny table where SUM(Y) per (Z, X) is known.
func buildMeasureTable(t *testing.T) *colstore.Table {
	t.Helper()
	b := colstore.NewBuilder(8)
	z, _ := b.AddColumn("Z")
	x, _ := b.AddColumn("X")
	m, _ := b.AddMeasure("Y")
	_ = m
	z.Dict.Intern("z0")
	z.Dict.Intern("z1")
	x.Dict.Intern("x0")
	x.Dict.Intern("x1")
	// z0: SUM over x0 = 300, over x1 = 100 (ratio 3:1)
	// z1: SUM over x0 = 100, over x1 = 300 (ratio 1:3)
	rows := []struct {
		z, x uint32
		y    float64
	}{
		{0, 0, 100}, {0, 0, 200}, {0, 1, 100},
		{1, 0, 100}, {1, 1, 200}, {1, 1, 100},
	}
	for _, r := range rows {
		if err := b.AppendCodes([]uint32{r.z, r.x}, []float64{r.y}); err != nil {
			t.Fatal(err)
		}
	}
	return b.Build()
}

func TestMeasureBiasedViewProportions(t *testing.T) {
	tbl := buildMeasureTable(t)
	view, err := MeasureBiasedView(tbl, "Y", 40_000, 7)
	if err != nil {
		t.Fatal(err)
	}
	// COUNT proportions in the view ≈ SUM proportions in the source.
	z, _ := view.Column("Z")
	x, _ := view.Column("X")
	var z0x0, z0x1 float64
	for i := 0; i < view.NumRows(); i++ {
		if z.Code(i) == 0 {
			if x.Code(i) == 0 {
				z0x0++
			} else {
				z0x1++
			}
		}
	}
	ratio := z0x0 / z0x1
	if math.Abs(ratio-3) > 0.3 {
		t.Fatalf("z0 SUM ratio = %g, want ≈ 3", ratio)
	}
}

func TestMeasureBiasedViewRunsQueries(t *testing.T) {
	tbl := buildMeasureTable(t)
	view, err := MeasureBiasedView(tbl, "Y", 20_000, 8)
	if err != nil {
		t.Fatal(err)
	}
	e := New(view)
	params := testParams()
	params.K = 1
	params.Sigma = 0
	params.Stage1Samples = 0
	params.Epsilon = 0.15
	// Target: z0's SUM distribution = (0.75, 0.25).
	res, err := e.Run(Query{Z: "Z", X: []string{"X"}},
		Target{Counts: []float64{3, 1}}, Options{Params: params, Executor: FastMatch})
	if err != nil {
		t.Fatal(err)
	}
	if res.TopK[0].Label != "z0" {
		t.Fatalf("SUM query top match = %q, want z0", res.TopK[0].Label)
	}
}

func TestMeasureBiasedViewValidation(t *testing.T) {
	tbl := buildMeasureTable(t)
	if _, err := MeasureBiasedView(tbl, "Y", 0, 1); err == nil {
		t.Fatal("zero targetRows accepted")
	}
	if _, err := MeasureBiasedView(tbl, "missing", 100, 1); err == nil {
		t.Fatal("missing measure accepted")
	}
	// All-zero measure cannot be biased.
	b := colstore.NewBuilder(4)
	z, _ := b.AddColumn("Z")
	z.Dict.Intern("a")
	_, _ = b.AddMeasure("Y")
	_ = b.AppendCodes([]uint32{0}, []float64{0})
	if _, err := MeasureBiasedView(b.Build(), "Y", 100, 1); err == nil {
		t.Fatal("zero-sum measure accepted")
	}
}

func TestMeasureBiasedViewPreservesDictionaries(t *testing.T) {
	tbl := buildMeasureTable(t)
	view, err := MeasureBiasedView(tbl, "Y", 5_000, 9)
	if err != nil {
		t.Fatal(err)
	}
	zSrc, _ := tbl.Column("Z")
	zDst, _ := view.Column("Z")
	if zDst.Cardinality() != zSrc.Cardinality() {
		t.Fatalf("dictionary cardinality changed: %d vs %d", zDst.Cardinality(), zSrc.Cardinality())
	}
	for code := 0; code < zSrc.Cardinality(); code++ {
		if zSrc.Dict.Value(uint32(code)) != zDst.Dict.Value(uint32(code)) {
			t.Fatal("dictionary codes misaligned between source and view")
		}
	}
}

func TestMeasureBiasedViewHistogramEstimate(t *testing.T) {
	// End-to-end: the reconstructed histogram for z1 over the view should
	// approximate its SUM distribution (0.25, 0.75).
	tbl := buildMeasureTable(t)
	view, err := MeasureBiasedView(tbl, "Y", 30_000, 10)
	if err != nil {
		t.Fatal(err)
	}
	e := New(view)
	h, err := e.ResolveTarget(Query{Z: "Z", X: []string{"X"}}, Target{Candidate: "z1"})
	if err != nil {
		t.Fatal(err)
	}
	want := histogram.FromCounts([]float64{1, 3})
	if d := histogram.L1(h, want); d > 0.05 {
		t.Fatalf("z1 SUM histogram L1 error %g", d)
	}
}
