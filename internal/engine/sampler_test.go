package engine

import (
	"testing"

	"fastmatch/internal/core"
)

func newTestSampler(t *testing.T, exec Executor, rows int, seed int64) (*blockSampler, *Engine) {
	t.Helper()
	tbl := testDataset(t, rows, 12, 6, seed)
	e := New(tbl)
	cand, grp, err := e.plan(baseQuery())
	if err != nil {
		t.Fatal(err)
	}
	return newBlockSampler(tbl, cand, grp, nil, exec, 16, 0, nil), e
}

func TestExecutorString(t *testing.T) {
	names := map[Executor]string{
		Scan: "Scan", ScanMatch: "ScanMatch", SyncMatch: "SyncMatch",
		FastMatch: "FastMatch", Executor(9): "Executor(9)",
	}
	for e, want := range names {
		if e.String() != want {
			t.Errorf("String() = %q, want %q", e.String(), want)
		}
	}
}

func TestSamplerInterfaces(t *testing.T) {
	bs, _ := newTestSampler(t, ScanMatch, 5000, 20)
	var _ core.Sampler = bs
	if bs.NumCandidates() != 12 || bs.Groups() != 6 {
		t.Fatalf("geometry: %d candidates %d groups", bs.NumCandidates(), bs.Groups())
	}
	if bs.TotalRows() != 5000 {
		t.Fatalf("TotalRows = %d", bs.TotalRows())
	}
}

func TestStage1DrawsRequested(t *testing.T) {
	bs, _ := newTestSampler(t, ScanMatch, 10_000, 21)
	batch, err := bs.Stage1(1000)
	if err != nil {
		t.Fatal(err)
	}
	if batch.Drawn < 1000 {
		t.Fatalf("drew %d < 1000", batch.Drawn)
	}
	// Block granularity means slight overshoot, bounded by one block.
	if batch.Drawn > 1000+64 {
		t.Fatalf("overshoot too large: %d", batch.Drawn)
	}
	if batch.Exhausted {
		t.Fatal("should not exhaust")
	}
}

func TestStage1ExhaustsSmallData(t *testing.T) {
	bs, _ := newTestSampler(t, ScanMatch, 500, 22)
	batch, err := bs.Stage1(10_000)
	if err != nil {
		t.Fatal(err)
	}
	if !batch.Exhausted || batch.Drawn != 500 {
		t.Fatalf("exhaustion wrong: drawn=%d exhausted=%v", batch.Drawn, batch.Exhausted)
	}
	for i, ex := range batch.Exact {
		if !ex {
			t.Fatalf("candidate %d not marked exact after exhaustion", i)
		}
	}
}

func TestSampleUntilMeetsNeeds(t *testing.T) {
	for _, exec := range []Executor{ScanMatch, SyncMatch, FastMatch} {
		t.Run(exec.String(), func(t *testing.T) {
			bs, _ := newTestSampler(t, exec, 50_000, 23)
			need := map[int]int{0: 100, 1: 50, 5: 200}
			batch, err := bs.SampleUntil(need)
			if err != nil {
				t.Fatal(err)
			}
			for id, n := range need {
				if batch.Counts[id] < int64(n) && !batch.IsExact(id) {
					t.Errorf("candidate %d got %d < %d and not exact", id, batch.Counts[id], n)
				}
			}
		})
	}
}

func TestSampleUntilUnknownCandidate(t *testing.T) {
	bs, _ := newTestSampler(t, ScanMatch, 1000, 24)
	if _, err := bs.SampleUntil(map[int]int{99: 1}); err == nil {
		t.Fatal("unknown candidate accepted")
	}
}

func TestSampleUntilEmptyNeed(t *testing.T) {
	bs, _ := newTestSampler(t, FastMatch, 1000, 25)
	batch, err := bs.SampleUntil(map[int]int{})
	if err != nil {
		t.Fatal(err)
	}
	if batch.Drawn != 0 {
		t.Fatalf("empty need drew %d tuples", batch.Drawn)
	}
}

func TestSampleUntilImpossibleNeedMarksExact(t *testing.T) {
	for _, exec := range []Executor{ScanMatch, SyncMatch, FastMatch} {
		t.Run(exec.String(), func(t *testing.T) {
			bs, _ := newTestSampler(t, exec, 3000, 26)
			// Demand far more than any candidate has.
			batch, err := bs.SampleUntil(map[int]int{0: 1_000_000})
			if err != nil {
				t.Fatal(err)
			}
			if !batch.IsExact(0) {
				t.Fatal("candidate with impossible need not marked exact")
			}
		})
	}
}

func TestBatchesAreFresh(t *testing.T) {
	// Two successive batches must contain disjoint tuples: combined drawn
	// never exceeds the table size.
	bs, _ := newTestSampler(t, FastMatch, 20_000, 27)
	b1, err := bs.SampleUntil(map[int]int{0: 300})
	if err != nil {
		t.Fatal(err)
	}
	b2, err := bs.SampleUntil(map[int]int{0: 300})
	if err != nil {
		t.Fatal(err)
	}
	if b1.Drawn+b2.Drawn > int64(20_000) {
		t.Fatalf("batches overlap: %d + %d > rows", b1.Drawn, b2.Drawn)
	}
	if b2.Counts[0] < 300 && !b2.IsExact(0) {
		t.Fatal("second batch did not meet need")
	}
}

func TestCumulativeBatchesEqualExactOnExhaustion(t *testing.T) {
	for _, exec := range []Executor{ScanMatch, SyncMatch, FastMatch} {
		t.Run(exec.String(), func(t *testing.T) {
			bs, e := newTestSampler(t, exec, 4000, 28)
			// Exhaust via repeated sampling.
			acc := make([]int64, bs.NumCandidates())
			for {
				batch, err := bs.SampleUntil(map[int]int{0: 1 << 30})
				if err != nil {
					t.Fatal(err)
				}
				for i, c := range batch.Counts {
					acc[i] += c
				}
				if batch.Exhausted {
					break
				}
			}
			// Compare with exact scan counts.
			z, _ := e.Source().ColumnByName("Z")
			exact := make([]int64, bs.NumCandidates())
			for i := 0; i < e.Source().NumRows(); i++ {
				exact[z.Code(i)]++
			}
			for i := range acc {
				if acc[i] != exact[i] {
					t.Fatalf("candidate %d: accumulated %d != exact %d", i, acc[i], exact[i])
				}
			}
		})
	}
}

func TestSyncMatchSkipsForRareActive(t *testing.T) {
	// When only one rare candidate is active, AnyActive should skip most
	// blocks.
	tbl := testDataset(t, 100_000, 100, 6, 29)
	e := New(tbl)
	cand, grp, err := e.plan(baseQuery())
	if err != nil {
		t.Fatal(err)
	}
	// Find a rare candidate.
	z, _ := tbl.Column("Z")
	counts := make([]int, 100)
	for i := 0; i < tbl.NumRows(); i++ {
		counts[z.Code(i)]++
	}
	rare, rareCount := 0, 1<<31
	for i, c := range counts {
		if c > 0 && c < rareCount {
			rare, rareCount = i, c
		}
	}
	bs := newBlockSampler(tbl, cand, grp, nil, SyncMatch, 16, 0, nil)
	batch, err := bs.SampleUntil(map[int]int{rare: rareCount})
	if err != nil {
		t.Fatal(err)
	}
	if batch.Counts[rare] != int64(rareCount) {
		t.Fatalf("rare candidate got %d of %d", batch.Counts[rare], rareCount)
	}
	if bs.Stats().BlocksSkipped == 0 {
		t.Fatal("SyncMatch with one rare active candidate skipped nothing")
	}
}

func TestLookaheadWindowSizes(t *testing.T) {
	// Tiny lookahead values must still work (including 1).
	for _, la := range []int{1, 2, 7, 1024} {
		tbl := testDataset(t, 10_000, 10, 6, 30)
		e := New(tbl)
		cand, grp, err := e.plan(baseQuery())
		if err != nil {
			t.Fatal(err)
		}
		bs := newBlockSampler(tbl, cand, grp, nil, FastMatch, la, 3, nil)
		batch, err := bs.SampleUntil(map[int]int{0: 50})
		if err != nil {
			t.Fatal(err)
		}
		if batch.Counts[0] < 50 && !batch.IsExact(0) {
			t.Fatalf("lookahead=%d failed to meet need", la)
		}
	}
}

func TestDefaultLookahead(t *testing.T) {
	tbl := testDataset(t, 1000, 5, 4, 31)
	e := New(tbl)
	cand, grp, _ := e.plan(baseQuery())
	bs := newBlockSampler(tbl, cand, grp, nil, FastMatch, 0, 0, nil)
	if bs.lookahead != 1024 {
		t.Fatalf("default lookahead = %d", bs.lookahead)
	}
}

func TestStartBlockNormalization(t *testing.T) {
	tbl := testDataset(t, 1000, 5, 4, 32)
	e := New(tbl)
	cand, grp, _ := e.plan(baseQuery())
	nb := tbl.NumBlocks()
	for _, start := range []int{-1, -nb - 3, nb + 5, 0} {
		bs := newBlockSampler(tbl, cand, grp, nil, ScanMatch, 16, start, nil)
		if bs.cursor < 0 || bs.cursor >= nb {
			t.Fatalf("start %d normalized to out-of-range cursor %d", start, bs.cursor)
		}
	}
}
