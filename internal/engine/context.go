package engine

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"fastmatch/internal/core"
)

// Typed run-termination errors. A run cut short returns one of these
// (test with errors.Is) alongside a best-effort partial Result — see
// Plan.RunContext for the full progressive contract.
var (
	// ErrCanceled marks a run stopped by its context (cancellation or
	// deadline) or by Options.Deadline. The chain also wraps the
	// underlying context error, so errors.Is(err, context.Canceled)
	// distinguishes an abandoned request from errors.Is(err,
	// context.DeadlineExceeded), a timed-out one.
	ErrCanceled = errors.New("engine: run canceled")
	// ErrBudgetExhausted marks a run stopped by Options.RowBudget.
	ErrBudgetExhausted = errors.New("engine: row budget exhausted")
)

// Progress is the interim state of a run in flight, delivered through
// Options.OnProgress. Sampling executors emit one after stage 1, after
// every HistSim round, and after stage 3; the sequential Scan executor
// emits one every few hundred blocks of its pass (ParallelScan's workers
// race, so it reports no interim frames). Estimates carry no guarantee
// until the run terminates.
type Progress struct {
	// Phase is "stage1", "stage2", "stage3" (sampling executors) or
	// "scan" (exact pass).
	Phase string `json:"phase"`
	// Round is the HistSim stage-2 round just completed (0 elsewhere).
	Round int `json:"round,omitempty"`
	// TopK is the current best-k by estimated distance, ascending
	// (empty for "scan" frames, which track the pass, not the ranking).
	TopK []ProgressMatch `json:"topk,omitempty"`
	// ActiveCandidates counts candidates still under consideration.
	ActiveCandidates int `json:"active_candidates,omitempty"`
	// SamplesDrawn is the cumulative tuples HistSim has consumed.
	SamplesDrawn int64 `json:"samples_drawn"`
	// IO is a snapshot of the run's block-level I/O counters.
	IO IOStats `json:"io"`
	// Elapsed is wall-clock time since the run began. It is the one
	// nondeterministic field; consumers comparing progress sequences
	// should zero it.
	Elapsed time.Duration `json:"elapsed_ns"`
	// Quality carries convergence telemetry (observed margin vs ε,
	// ranking churn), present only when Options.Quality is set.
	Quality *ProgressQuality `json:"quality,omitempty"`
}

// ProgressMatch is one candidate in a Progress ranking: the current
// distance estimate, without the (large) reconstructed histogram.
type ProgressMatch struct {
	ID       int     `json:"id"`
	Label    string  `json:"label"`
	Distance float64 `json:"distance"`
	// CI is the (1−δ) confidence-interval half-width around Distance,
	// present (nonzero) only when Options.Quality is set.
	CI float64 `json:"ci,omitempty"`
}

// runGuard enforces a run's termination conditions — context
// cancellation, deadline, row budget — at block-batch granularity: every
// executor consults stop() between block reads and unwinds cleanly when
// it fires. A nil guard (the common case: no context, no deadline, no
// budget) costs one nil check per block.
type runGuard struct {
	ctx      context.Context // nil when no context governs the run
	deadline time.Time       // zero when none
	budget   int64           // ≤ 0 when unlimited
	rows     atomic.Int64    // rows consumed, shared across scan workers
}

// newRunGuard builds the guard for a run, or nil when nothing needs
// enforcing. A context that can never be canceled (context.Background())
// contributes nothing.
func newRunGuard(ctx context.Context, opts Options) *runGuard {
	hasCtx := ctx != nil && ctx.Done() != nil
	if !hasCtx && opts.Deadline.IsZero() && opts.RowBudget <= 0 {
		return nil
	}
	g := &runGuard{deadline: opts.Deadline, budget: opts.RowBudget}
	if hasCtx {
		g.ctx = ctx
	}
	return g
}

// addRows charges consumed rows against the budget.
func (g *runGuard) addRows(n int64) {
	if g != nil && g.budget > 0 {
		g.rows.Add(n)
	}
}

// BudgetStopError is the typed termination error for an exhausted row
// budget: ErrBudgetExhausted wrapping core.ErrInterrupted. Exported so a
// cluster coordinator reconstructing a shard's stop produces the exact
// error a single-node run would have.
func BudgetStopError(budget, read int64) error {
	return fmt.Errorf("%w (budget %d, read %d) (%w)", ErrBudgetExhausted, budget, read, core.ErrInterrupted)
}

// CanceledStopError is the typed termination error for a context or
// deadline stop: ErrCanceled wrapping the cause and core.ErrInterrupted.
func CanceledStopError(cause error) error {
	return fmt.Errorf("%w: %w (%w)", ErrCanceled, cause, core.ErrInterrupted)
}

// stop returns nil while the run may continue, or the typed termination
// error. The error chain wraps core.ErrInterrupted so HistSim folds the
// partial batch in and salvages a best-effort answer, plus
// ErrCanceled/ErrBudgetExhausted (and the context error) for callers.
func (g *runGuard) stop() error {
	if g == nil {
		return nil
	}
	if g.ctx != nil {
		if err := g.ctx.Err(); err != nil {
			return CanceledStopError(err)
		}
	}
	if g.budget > 0 && g.rows.Load() >= g.budget {
		return BudgetStopError(g.budget, g.rows.Load())
	}
	if !g.deadline.IsZero() && !time.Now().Before(g.deadline) {
		return CanceledStopError(context.DeadlineExceeded)
	}
	return nil
}

// interrupted reports whether err is a guard termination carrying a
// salvageable partial result.
func interrupted(err error) bool {
	return errors.Is(err, ErrCanceled) || errors.Is(err, ErrBudgetExhausted)
}

// isBudget distinguishes a budget stop from a cancellation.
func isBudget(err error) bool { return errors.Is(err, ErrBudgetExhausted) }
