package engine

import (
	"fmt"
	"math/rand"

	"fastmatch/internal/colstore"
)

// MeasureBiasedView implements the measure-biased sampling preprocessing
// of Appendix A.1.1 (after Sample+Seek): it materializes a derived table
// in which each source tuple appears with multiplicity proportional to its
// measure value, so that COUNT(*) histograms over the view estimate
// SUM(measure) histograms over the source with the same distributional
// guarantees.
//
// targetRows controls the view's size; the expected multiplicity of tuple
// t is targetRows · y_t / Σy. Multiplicities are realized as
// ⌊expected⌋ plus a Bernoulli remainder, then the view is shuffled so
// sequential scans remain uniform samples. One view is needed per measure
// attribute of interest, costing one extra pass over the data each —
// exactly the preprocessing cost the paper describes.
// The source may be any storage backend (it is only read); the view is
// always materialized as an in-memory table.
func MeasureBiasedView(src colstore.Reader, measure string, targetRows int, seed int64) (*colstore.Table, error) {
	if targetRows <= 0 {
		return nil, fmt.Errorf("engine: targetRows must be positive, got %d", targetRows)
	}
	m, err := src.MeasureByName(measure)
	if err != nil {
		return nil, err
	}
	var total float64
	for i := 0; i < src.NumRows(); i++ {
		total += m.Value(i)
	}
	if total <= 0 {
		return nil, fmt.Errorf("engine: measure %q sums to %g; cannot bias", measure, total)
	}
	cols := src.Columns()
	out := colstore.NewBuilder(src.BlockSize())
	srcCols := make([]colstore.ColumnReader, len(cols))
	dstCols := make([]*colstore.Column, len(cols))
	for i, name := range cols {
		sc, err := src.ColumnByName(name)
		if err != nil {
			return nil, err
		}
		dst, err := out.AddColumn(name)
		if err != nil {
			return nil, err
		}
		// Share the full dictionary so codes stay aligned with the source.
		for _, v := range sc.Dictionary().Values() {
			dst.Dict.Intern(v)
		}
		srcCols[i], dstCols[i] = sc, dst
	}
	rng := rand.New(rand.NewSource(seed))
	scale := float64(targetRows) / total
	codes := make([]uint32, len(cols))
	for row := 0; row < src.NumRows(); row++ {
		expected := m.Value(row) * scale
		reps := int(expected)
		if rng.Float64() < expected-float64(reps) {
			reps++
		}
		if reps == 0 {
			continue
		}
		for i, c := range srcCols {
			codes[i] = c.Code(row)
		}
		for r := 0; r < reps; r++ {
			if err := out.AppendCodes(codes, nil); err != nil {
				return nil, err
			}
		}
	}
	out.Shuffle(seed + 1)
	return out.Build(), nil
}
