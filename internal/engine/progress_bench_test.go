package engine

import (
	"context"
	"testing"
)

// BenchmarkProgressOverhead measures what the progressive API costs the
// exact-scan hot path (see BENCH_progress.json for the recorded
// baseline):
//
//   - nil: OnProgress unset, no context — the guard is nil and every
//     per-block check is one pointer comparison. This must match the
//     pre-API scan cost.
//   - noop: a no-op OnProgress on the sequential scan (one callback per
//     256 blocks).
//   - ctx: a cancellable context and no callback — the guard is live,
//     adding one ctx.Err() check per block.
func BenchmarkProgressOverhead(b *testing.B) {
	tbl := testDataset(b, 400_000, 20, 8, 5)
	eng := New(tbl)
	plan, err := eng.Prepare(baseQuery())
	if err != nil {
		b.Fatal(err)
	}
	target, err := plan.ResolveTarget(Target{Uniform: true}, 0)
	if err != nil {
		b.Fatal(err)
	}
	opts := func() Options {
		o := cancelOptions(Scan, tbl.NumBlocks())
		o.Workers = 1
		return o
	}

	b.Run("nil", func(b *testing.B) {
		o := opts()
		for i := 0; i < b.N; i++ {
			if _, err := plan.RunWithTarget(target, o); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("noop", func(b *testing.B) {
		o := opts()
		o.OnProgress = func(Progress) {}
		for i := 0; i < b.N; i++ {
			if _, err := plan.RunWithTarget(target, o); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("ctx", func(b *testing.B) {
		o := opts()
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		for i := 0; i < b.N; i++ {
			if _, err := plan.RunWithTargetContext(ctx, target, o); err != nil {
				b.Fatal(err)
			}
		}
	})
}
