package engine

import (
	"fmt"
	"math/rand"
	"time"

	"fastmatch/internal/bitmap"
	"fastmatch/internal/colstore"
	"fastmatch/internal/core"
	"fastmatch/internal/histogram"
)

// Query is a histogram-generating query template (Definition 1): candidate
// attribute Z, grouping attribute(s) X, and optional extensions.
type Query struct {
	// Z names the candidate attribute; one candidate per distinct value.
	// Ignored when CandidatePreds is set.
	Z string
	// KnownCandidates, when non-empty, restricts the candidate domain to
	// these values and adds a dummy candidate absorbing all others
	// (Appendix A.1.5).
	KnownCandidates []string
	// CandidatePreds defines candidates as boolean predicates over
	// attribute values instead of the Z column (Appendix A.1.2).
	CandidatePreds []bitmap.Predicate
	// X names the grouping attribute(s); more than one gives composite
	// groups over the cross product (Appendix A.1.3). Ignored when
	// XMeasure is set.
	X []string
	// XMeasure and XBins group by binning a continuous measure column
	// (Appendix A.1.4).
	XMeasure string
	XBins    *colstore.Binner
	// Measure, when set, answers SUM(Measure) instead of COUNT(*) via the
	// measure-biased view (Appendix A.1.1); see MeasureBiasedView.
	Measure string
	// Filter, when set, restricts the relation to rows where it returns
	// true (WHERE predicates beyond the candidate equality).
	Filter func(row int) bool
}

// Target specifies the visual target q.
type Target struct {
	// Counts is an explicit target histogram (takes precedence).
	Counts []float64
	// Candidate names a candidate value whose exact histogram is the
	// target (e.g. "Greece"); resolved by a full scan of that candidate.
	Candidate string
	// Uniform targets the uniform distribution (used by most Table 3
	// queries: "closest candidate to uniform").
	Uniform bool
}

// Options configures a run.
type Options struct {
	// Params are HistSim's knobs (k, ε, δ, σ, m, metric, …).
	Params core.Params
	// Executor selects Scan / ScanMatch / SyncMatch / FastMatch.
	Executor Executor
	// Lookahead is the FastMatch marking window in blocks (default 1024).
	Lookahead int
	// StartBlock is the scan start position; negative picks one at random
	// from Seed (the paper starts each run at a random position).
	StartBlock int
	// Seed drives the random start position.
	Seed int64
}

// Result is a complete query answer.
type Result struct {
	// TopK lists matching candidates closest-first.
	TopK []Match
	// Pruned lists stage-1-pruned candidate labels.
	Pruned []string
	// Exact reports a full-data answer.
	Exact bool
	// Stats carries HistSim diagnostics (zero-valued for Scan).
	Stats core.RunStats
	// IO carries block-level I/O counters.
	IO IOStats
	// Duration is the wall-clock time of the run (excluding target
	// resolution and index construction).
	Duration time.Duration
	// GroupLabels names the histogram groups, aligned with Histogram
	// vector indices.
	GroupLabels []string
}

// Match pairs a candidate with its distance and reconstructed histogram.
type Match struct {
	// ID is the internal candidate id.
	ID int
	// Label is the candidate's attribute value (or predicate string).
	Label string
	// Distance is the estimated distance to the target.
	Distance float64
	// Histogram is the reconstructed (approximate or exact) histogram.
	Histogram *histogram.Histogram
}

// Engine answers top-k histogram matching queries over one table. It
// caches bitmap indexes and density maps per column. An Engine is safe for
// sequential reuse across queries; concurrent runs need separate Engines
// (each run maintains scan-position state).
type Engine struct {
	tbl     *colstore.Table
	indexes map[string]*bitmap.Index
	density map[string]*bitmap.DensityMap
}

// New creates an engine over a table.
func New(tbl *colstore.Table) *Engine {
	return &Engine{
		tbl:     tbl,
		indexes: make(map[string]*bitmap.Index),
		density: make(map[string]*bitmap.DensityMap),
	}
}

// Table returns the underlying table.
func (e *Engine) Table() *colstore.Table { return e.tbl }

// Index returns (building if needed) the bitmap index for a column.
func (e *Engine) Index(column string) (*bitmap.Index, error) {
	if idx, ok := e.indexes[column]; ok {
		return idx, nil
	}
	idx, err := bitmap.Build(e.tbl, column)
	if err != nil {
		return nil, err
	}
	e.indexes[column] = idx
	return idx, nil
}

// Density returns (building if needed) the density map for a column.
func (e *Engine) Density(column string) (*bitmap.DensityMap, error) {
	if dm, ok := e.density[column]; ok {
		return dm, nil
	}
	dm, err := bitmap.BuildDensity(e.tbl, column)
	if err != nil {
		return nil, err
	}
	e.density[column] = dm
	return dm, nil
}

// plan resolves a query into mappers.
func (e *Engine) plan(q Query) (candidateMapper, groupMapper, error) {
	grp, err := e.planGroups(q)
	if err != nil {
		return nil, nil, err
	}
	if len(q.CandidatePreds) > 0 {
		pc, err := newPredicateCandidates(e.tbl, q.CandidatePreds, e.density)
		if err != nil {
			return nil, nil, err
		}
		return pc, grp, nil
	}
	if q.Z == "" {
		return nil, nil, fmt.Errorf("engine: query needs Z or CandidatePreds")
	}
	col, err := e.tbl.Column(q.Z)
	if err != nil {
		return nil, nil, err
	}
	idx, err := e.Index(q.Z)
	if err != nil {
		return nil, nil, err
	}
	cc, err := newColumnCandidates(col, idx, q.KnownCandidates)
	if err != nil {
		return nil, nil, err
	}
	return cc, grp, nil
}

func (e *Engine) planGroups(q Query) (groupMapper, error) {
	if q.XMeasure != "" {
		if q.XBins == nil {
			return nil, fmt.Errorf("engine: XMeasure %q needs XBins", q.XMeasure)
		}
		m, err := e.tbl.Measure(q.XMeasure)
		if err != nil {
			return nil, err
		}
		return binnedGroups{m: m, binner: q.XBins}, nil
	}
	if len(q.X) == 0 {
		return nil, fmt.Errorf("engine: query needs X or XMeasure")
	}
	if len(q.X) == 1 {
		col, err := e.tbl.Column(q.X[0])
		if err != nil {
			return nil, err
		}
		return singleGroups{col: col}, nil
	}
	cols := make([]*colstore.Column, len(q.X))
	for i, name := range q.X {
		col, err := e.tbl.Column(name)
		if err != nil {
			return nil, err
		}
		cols[i] = col
	}
	return newMultiGroups(cols)
}

// ResolveTarget materializes the target histogram for a query. Candidate
// targets are resolved with an exact scan restricted (via the bitmap
// index) to the blocks containing the candidate.
func (e *Engine) ResolveTarget(q Query, t Target) (*histogram.Histogram, error) {
	cand, grp, err := e.plan(q)
	if err != nil {
		return nil, err
	}
	switch {
	case len(t.Counts) > 0:
		if len(t.Counts) != grp.groups() {
			return nil, fmt.Errorf("engine: target has %d groups, query produces %d", len(t.Counts), grp.groups())
		}
		return histogram.FromCounts(t.Counts), nil
	case t.Uniform:
		counts := make([]float64, grp.groups())
		for i := range counts {
			counts[i] = 1
		}
		return histogram.FromCounts(counts), nil
	case t.Candidate != "":
		id := -1
		for i := 0; i < cand.numCandidates(); i++ {
			if cand.labelOf(i) == t.Candidate {
				id = i
				break
			}
		}
		if id < 0 {
			return nil, fmt.Errorf("engine: target candidate %q not found", t.Candidate)
		}
		h := histogram.New(grp.groups())
		blocks := cand.candidateBlocks(id)
		for b := 0; b < e.tbl.NumBlocks(); b++ {
			if blocks != nil && !blocks.Get(b) {
				continue
			}
			lo, hi := e.tbl.BlockSpan(b)
			for row := lo; row < hi; row++ {
				if q.Filter != nil && !q.Filter(row) {
					continue
				}
				if cand.candidateOf(row) != id {
					continue
				}
				if g := grp.groupOf(row); g >= 0 {
					h.Add(g)
				}
			}
		}
		return h, nil
	default:
		return nil, fmt.Errorf("engine: empty target specification")
	}
}

// Run answers the query with the configured executor. The target is
// resolved before timing starts, matching the paper's measurement of query
// execution only.
func (e *Engine) Run(q Query, t Target, opts Options) (*Result, error) {
	if q.Measure != "" {
		return nil, fmt.Errorf("engine: SUM queries run over a MeasureBiasedView table; build one with MeasureBiasedView and query it with COUNT semantics")
	}
	target, err := e.ResolveTarget(q, t)
	if err != nil {
		return nil, err
	}
	return e.RunWithTarget(q, target, opts)
}

// RunWithTarget answers the query against a pre-resolved target histogram.
func (e *Engine) RunWithTarget(q Query, target *histogram.Histogram, opts Options) (*Result, error) {
	cand, grp, err := e.plan(q)
	if err != nil {
		return nil, err
	}
	if target.Groups() != grp.groups() {
		return nil, fmt.Errorf("engine: target has %d groups, query produces %d", target.Groups(), grp.groups())
	}
	start := opts.StartBlock
	if start < 0 {
		nb := e.tbl.NumBlocks()
		if nb > 0 {
			start = rand.New(rand.NewSource(opts.Seed)).Intn(nb)
		} else {
			start = 0
		}
	}
	began := time.Now()
	if opts.Executor == Scan {
		res, err := e.runScan(q, cand, grp, target, opts.Params)
		if err != nil {
			return nil, err
		}
		res.Duration = time.Since(began)
		res.GroupLabels = groupLabels(grp)
		return res, nil
	}
	bs := newBlockSampler(e.tbl, cand, grp, q.Filter, opts.Executor, opts.Lookahead, start)
	coreRes, err := core.Run(bs, target, opts.Params)
	if err != nil {
		return nil, err
	}
	res := &Result{
		Exact:       coreRes.Exact,
		Stats:       coreRes.Stats,
		IO:          bs.Stats(),
		Duration:    time.Since(began),
		GroupLabels: groupLabels(grp),
	}
	for _, rk := range coreRes.TopK {
		res.TopK = append(res.TopK, Match{
			ID:        rk.ID,
			Label:     cand.labelOf(rk.ID),
			Distance:  rk.Distance,
			Histogram: coreRes.Hists[rk.ID],
		})
	}
	for _, id := range coreRes.Pruned {
		res.Pruned = append(res.Pruned, cand.labelOf(id))
	}
	return res, nil
}

// runScan is the exact baseline: one full pass computing every candidate
// histogram, exact σ pruning, exact top-k.
func (e *Engine) runScan(q Query, cand candidateMapper, grp groupMapper,
	target *histogram.Histogram, params core.Params) (*Result, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	n := cand.numCandidates()
	hists := make([]*histogram.Histogram, n)
	for i := range hists {
		hists[i] = histogram.New(grp.groups())
	}
	var multi *predicateCandidates
	if pc, ok := cand.(*predicateCandidates); ok {
		multi = pc
	}
	var io IOStats
	var multiBuf []int
	totalRows := 0
	for b := 0; b < e.tbl.NumBlocks(); b++ {
		lo, hi := e.tbl.BlockSpan(b)
		io.BlocksRead++
		for row := lo; row < hi; row++ {
			io.TuplesRead++
			totalRows++
			if q.Filter != nil && !q.Filter(row) {
				continue
			}
			g := grp.groupOf(row)
			if g < 0 {
				continue
			}
			if multi != nil {
				multiBuf = multi.candidatesOf(row, multiBuf[:0])
				for _, id := range multiBuf {
					hists[id].Add(g)
				}
				continue
			}
			if id := cand.candidateOf(row); id >= 0 {
				hists[id].Add(g)
			}
		}
	}
	res := &Result{Exact: true, IO: io}
	dist := make([]float64, n)
	var keep []int
	for i := range hists {
		sel := hists[i].Total() / float64(totalRows)
		if params.Sigma > 0 && sel < params.Sigma {
			res.Pruned = append(res.Pruned, cand.labelOf(i))
			continue
		}
		dist[i] = params.Metric.Distance(hists[i], target)
		keep = append(keep, i)
	}
	k := params.K
	if params.KRange.KMax > 0 {
		k = params.KRange.KMax
		if k > len(keep) && params.KRange.KMin <= len(keep) {
			k = len(keep)
		}
	}
	for _, rk := range histogram.TopK(dist, keep, k) {
		res.TopK = append(res.TopK, Match{
			ID:        rk.ID,
			Label:     cand.labelOf(rk.ID),
			Distance:  rk.Distance,
			Histogram: hists[rk.ID].Clone(),
		})
	}
	res.Stats.ChosenK = len(res.TopK)
	res.Stats.PrunedCandidates = len(res.Pruned)
	return res, nil
}

func groupLabels(grp groupMapper) []string {
	out := make([]string, grp.groups())
	for g := range out {
		out[g] = grp.labelOf(g)
	}
	return out
}
