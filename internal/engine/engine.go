package engine

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"time"

	"fastmatch/internal/bitmap"
	"fastmatch/internal/colstore"
	"fastmatch/internal/core"
	"fastmatch/internal/histogram"
	"fastmatch/internal/obs/trace"
)

// Query is a histogram-generating query template (Definition 1): candidate
// attribute Z, grouping attribute(s) X, and optional extensions.
type Query struct {
	// Z names the candidate attribute; one candidate per distinct value.
	// Ignored when CandidatePreds is set.
	Z string
	// KnownCandidates, when non-empty, restricts the candidate domain to
	// these values and adds a dummy candidate absorbing all others
	// (Appendix A.1.5).
	KnownCandidates []string
	// CandidatePreds defines candidates as boolean predicates over
	// attribute values instead of the Z column (Appendix A.1.2).
	CandidatePreds []bitmap.Predicate
	// X names the grouping attribute(s); more than one gives composite
	// groups over the cross product (Appendix A.1.3). Ignored when
	// XMeasure is set.
	X []string
	// XMeasure and XBins group by binning a continuous measure column
	// (Appendix A.1.4).
	XMeasure string
	XBins    *colstore.Binner
	// Measure, when set, answers SUM(Measure) instead of COUNT(*) via the
	// measure-biased view (Appendix A.1.1); see MeasureBiasedView.
	Measure string
	// Filter, when set, restricts the relation to rows where it returns
	// true (WHERE predicates beyond the candidate equality). The
	// ParallelScan executor and the sampling executors with Workers > 1
	// invoke it from several goroutines within one run, and sharing an
	// Engine or Plan across goroutines makes concurrent runs each call it
	// too — so unless every run using this query is sequential,
	// single-worker, and non-ParallelScan, the function must be safe for
	// concurrent calls. (Candidate-target resolution itself drops to one
	// worker when a Filter is present.)
	Filter func(row int) bool
}

// Target specifies the visual target q.
type Target struct {
	// Counts is an explicit target histogram (takes precedence).
	Counts []float64
	// Candidate names a candidate value whose exact histogram is the
	// target (e.g. "Greece"); resolved by a full scan of that candidate.
	Candidate string
	// Uniform targets the uniform distribution (used by most Table 3
	// queries: "closest candidate to uniform").
	Uniform bool
}

// Options configures a run.
type Options struct {
	// Params are HistSim's knobs (k, ε, δ, σ, m, metric, …).
	Params core.Params
	// Executor selects Scan / ScanMatch / SyncMatch / FastMatch /
	// ParallelScan.
	Executor Executor
	// Lookahead is the FastMatch marking window in blocks (default 1024).
	Lookahead int
	// StartBlock is the scan start position; negative picks one at random
	// from Seed (the paper starts each run at a random position).
	StartBlock int
	// Seed drives the random start position when StartBlock is negative.
	// A zero Seed is a fixed seed, not "random": every run with Seed 0
	// (DefaultOptions leaves it zero) derives the same pseudo-random start
	// block. Callers wanting the paper's independent-runs behavior must
	// supply a distinct Seed per run (the CLI tools seed from wall-clock
	// time).
	Seed int64
	// Workers is the goroutine count for the ParallelScan executor, for
	// parallel candidate-target resolution, and for the block-read fan-out
	// of the sampling executors' chunk-committed rounds (see
	// blockSampler); ≤ 0 selects GOMAXPROCS. Sampling results are
	// byte-identical for every worker count — Workers is purely a
	// throughput knob there — and Workers == 1 runs the sampling round
	// inline with no goroutines at all. The sequential Scan executor is
	// the single-threaded exact baseline by definition and ignores
	// Workers; ParallelScan is its parallel counterpart.
	Workers int
	// OnProgress, when non-nil, receives interim run state: sampling
	// executors emit after stage 1, after every HistSim round, and after
	// stage 3; the sequential Scan executor emits every few hundred
	// blocks. Callbacks run synchronously on the run's goroutine(s) —
	// they must be fast and must not block. A nil OnProgress adds no
	// work to the run. OnProgress does not affect the result and is
	// excluded from Options.Fingerprint.
	OnProgress func(Progress)
	// Deadline, when non-zero, is an absolute best-effort stop time for
	// callers not using a context: past it the run unwinds and returns a
	// partial Result with ErrCanceled (wrapping
	// context.DeadlineExceeded). Deadline-bearing runs are wall-clock
	// dependent, so Deadline is excluded from Options.Fingerprint and
	// their results must not be cached by fingerprint (the serving layer
	// never caches partial results and applies timeouts via contexts).
	Deadline time.Time
	// RowBudget, when > 0, caps the tuples a run may read across all
	// stages and workers; exhausting it returns a partial Result with
	// ErrBudgetExhausted. The cap is enforced at block granularity, so
	// up to one block per worker may be read past it.
	RowBudget int64
	// DisableBlockSkip turns off statistics-based block pruning. Pruning
	// never changes results — skipped blocks are provably free of
	// qualifying rows and their rows are still charged to budgets and
	// totals — so the only observable difference is in IOStats
	// (BlocksPruned, and lower TuplesRead/BlocksRead). The knob exists
	// for measurement and for the equivalence suite.
	DisableBlockSkip bool
	// DisableScanKernels turns off the vectorized grouped-count kernels,
	// forcing the scalar per-row accumulation path everywhere. Results
	// are byte-identical either way (IOStats.KernelBlocks is the only
	// delta); the knob exists for benchmarking the kernels' contribution.
	DisableScanKernels bool
	// Trace, when non-nil, collects a per-run span tree: a "run" root
	// span with one child per execution phase (stage 1, every stage-2
	// round, stage 3 for the sampling executors; one span per worker for
	// the exact scans), each carrying the IOStats delta attributed to
	// that phase, plus a "resolve_target" span on the RunContext path.
	// Spans are recorded from the hooks OnProgress already uses, at the
	// same discipline: a nil Trace adds no work to the run (no
	// allocations, no branches on the per-row paths), and tracing never
	// affects the result. Trace is excluded from Options.Fingerprint —
	// like OnProgress it is observational — and traced responses must
	// not be served from result caches keyed by fingerprint (the serving
	// layer bypasses its result-cache read for traced requests).
	Trace *trace.Trace
	// Quality, when set, makes sampling-executor runs collect answer-
	// quality telemetry: per-round convergence data on Progress frames
	// and trace spans (gap, slack, churn, per-candidate confidence
	// intervals) and a final Result.Quality report. Like OnProgress and
	// Trace it is purely observational — the answer, sampling schedule,
	// and I/O are unchanged, and it is excluded from Options.Fingerprint.
	// The exact Scan/ParallelScan executors ignore it (their answers are
	// exact; there is no convergence to report).
	Quality bool
}

// Result is a complete query answer.
type Result struct {
	// TopK lists matching candidates closest-first.
	TopK []Match
	// Pruned lists stage-1-pruned candidate labels.
	Pruned []string
	// Exact reports a full-data answer.
	Exact bool
	// Partial reports a best-effort answer from a run cut short by
	// cancellation, a deadline, or a row budget: TopK is ranked by the
	// estimates at the stop point and carries no separation or
	// reconstruction guarantee. Partial results are always accompanied
	// by an ErrCanceled or ErrBudgetExhausted error.
	Partial bool
	// Stats carries HistSim diagnostics (zero-valued for Scan).
	Stats core.RunStats
	// IO carries block-level I/O counters.
	IO IOStats
	// Duration is the wall-clock time of the run (excluding target
	// resolution and index construction).
	Duration time.Duration
	// GroupLabels names the histogram groups, aligned with Histogram
	// vector indices.
	GroupLabels []string
	// Sampler carries per-worker sampling diagnostics (nil for the exact
	// scan executors). It is deliberately excluded from JSON: the numbers
	// depend on the worker count, and serialized results must stay
	// byte-identical across Workers values. Serving layers aggregate it
	// into metrics instead.
	Sampler *SamplerStats `json:"-"`
	// Quality is the answer-quality report, present only when
	// Options.Quality was set on a sampling-executor run (nil otherwise).
	// Excluded from JSON for the same reason as Sampler: serialized
	// results must stay byte-identical whether or not quality telemetry
	// was requested. Serving layers surface it as a sibling field of the
	// result, never inside it.
	Quality *QualityReport `json:"-"`
}

// SamplerStats describes how a sampling run's block reads were spread
// across workers. Unlike Result's other fields it is worker-count
// dependent — diagnostics, not part of the answer.
type SamplerStats struct {
	// Workers is the effective fan-out width (after the ≤0 → GOMAXPROCS
	// default and the chunk-size cap).
	Workers int
	// Chunks counts committed planner chunks across all rounds.
	Chunks int64
	// WorkerBlocks / WorkerTuples count blocks and tuples read by each
	// worker, indexed by worker id.
	WorkerBlocks []int64
	WorkerTuples []int64
}

// Match pairs a candidate with its distance and reconstructed histogram.
type Match struct {
	// ID is the internal candidate id.
	ID int
	// Label is the candidate's attribute value (or predicate string).
	Label string
	// Distance is the estimated distance to the target.
	Distance float64
	// Histogram is the reconstructed (approximate or exact) histogram.
	Histogram *histogram.Histogram
}

// Engine answers top-k histogram matching queries over one storage
// source — any colstore.Reader backend: the heap-resident table, the
// zero-copy mmap snapshot, or future backends (sharded, remote). It
// caches bitmap indexes and density maps per column behind singleflight
// guards, so one shared Engine is safe for concurrent use: any number of
// goroutines may Prepare, Run, and ResolveTarget simultaneously (per-run
// scan state lives in the run, not the Engine). Concurrent requests for a
// missing index block on a single build instead of duplicating it.
type Engine struct {
	src     colstore.Reader
	indexes *buildCache[*bitmap.Index]
	density *buildCache[*bitmap.DensityMap]
}

// New creates an engine over a storage source (e.g. a *colstore.Table or
// *colstore.MmapTable).
func New(src colstore.Reader) *Engine {
	return &Engine{
		src:     src,
		indexes: newBuildCache[*bitmap.Index](),
		density: newBuildCache[*bitmap.DensityMap](),
	}
}

// Source returns the underlying storage source.
func (e *Engine) Source() colstore.Reader { return e.src }

// Index returns (building if needed) the bitmap index for a column.
// Indexes are immutable once built and shared across runs.
func (e *Engine) Index(column string) (*bitmap.Index, error) {
	return e.indexes.get(column, func() (*bitmap.Index, error) {
		return bitmap.Build(e.src, column)
	})
}

// Density returns (building if needed) the density map for a column.
func (e *Engine) Density(column string) (*bitmap.DensityMap, error) {
	return e.density.get(column, func() (*bitmap.DensityMap, error) {
		return bitmap.BuildDensity(e.src, column)
	})
}

// ResolveTarget materializes the target histogram for a query. Candidate
// targets are resolved with an exact parallel scan restricted (via the
// bitmap index) to the blocks containing the candidate.
func (e *Engine) ResolveTarget(q Query, t Target) (*histogram.Histogram, error) {
	p, err := e.Prepare(q)
	if err != nil {
		return nil, err
	}
	return p.ResolveTarget(t, 0)
}

// Run plans the query and answers it with the configured executor. The
// target is resolved before timing starts, matching the paper's
// measurement of query execution only. Repeated runs of the same query
// shape should Prepare once and call Plan.Run instead.
func (e *Engine) Run(q Query, t Target, opts Options) (*Result, error) {
	return e.RunContext(context.Background(), q, t, opts)
}

// RunContext is Run governed by a context: see Plan.RunContext for the
// cancellation and progressive-result contract.
func (e *Engine) RunContext(ctx context.Context, q Query, t Target, opts Options) (*Result, error) {
	p, err := e.Prepare(q)
	if err != nil {
		return nil, err
	}
	return p.RunContext(ctx, t, opts)
}

// RunWithTarget answers the query against a pre-resolved target histogram.
func (e *Engine) RunWithTarget(q Query, target *histogram.Histogram, opts Options) (*Result, error) {
	p, err := e.Prepare(q)
	if err != nil {
		return nil, err
	}
	return p.RunWithTarget(target, opts)
}

// Run resolves the target under the plan and answers it with the
// configured executor. Options are validated first (see Options.Validate),
// so a malformed request fails with an *InvalidOptionsError before any
// target resolution or sampling work starts.
func (p *Plan) Run(t Target, opts Options) (*Result, error) {
	return p.RunContext(context.Background(), t, opts)
}

// RunContext is Run governed by a context. Every executor checks the
// context (and Options.Deadline / Options.RowBudget) at block-batch
// granularity and unwinds cleanly when it fires: lookahead goroutines
// are joined, shared caches stay consistent, and the engine returns a
// best-effort partial Result (Partial set, ranked by the estimates at
// the stop point) together with a typed error — ErrCanceled for
// context/deadline stops, ErrBudgetExhausted for the row budget. A stop
// during target resolution or before any sampling returns a nil Result
// with the error. Interim state streams through Options.OnProgress.
//
// Planning and bitmap-index construction are not canceled mid-build:
// they are shared across runs under singleflight guards, so a canceled
// request never invalidates another request's index.
func (p *Plan) RunContext(ctx context.Context, t Target, opts Options) (*Result, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	guard := newRunGuard(ctx, opts)
	if err := guard.stop(); err != nil {
		return nil, err
	}
	// The resolve_target span carries no IO: target resolution is outside
	// the run's IOStats by contract (Result.Duration excludes it too), so
	// attributing its I/O here would break the per-span-sum invariant.
	rsp := opts.Trace.Start("resolve_target")
	target, err := p.resolveTarget(t, opts.Workers, guard)
	rsp.End()
	if err != nil {
		return nil, err
	}
	return p.runWithTarget(target, opts, guard)
}

// RunWithTarget answers the plan against a pre-resolved target histogram.
// The Plan is immutable: concurrent RunWithTarget calls on one Plan are
// safe, each run owning its private sampler state.
func (p *Plan) RunWithTarget(target *histogram.Histogram, opts Options) (*Result, error) {
	return p.RunWithTargetContext(context.Background(), target, opts)
}

// RunWithTargetContext is RunWithTarget governed by a context, with the
// same cancellation contract as Plan.RunContext.
func (p *Plan) RunWithTargetContext(ctx context.Context, target *histogram.Histogram, opts Options) (*Result, error) {
	return p.runWithTarget(target, opts, newRunGuard(ctx, opts))
}

// runWithTarget executes the plan under an optional run guard.
func (p *Plan) runWithTarget(target *histogram.Histogram, opts Options, guard *runGuard) (*Result, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	if target.Groups() != p.grp.groups() {
		return nil, fmt.Errorf("engine: target has %d groups, query produces %d", target.Groups(), p.grp.groups())
	}
	began := time.Now()
	runSpan := opts.Trace.StartAt("run", began)
	runSpan.SetAttr("executor", opts.Executor.String())
	defer runSpan.End()
	if opts.Executor == Scan || opts.Executor == ParallelScan {
		workers := 1
		if opts.Executor == ParallelScan {
			workers = opts.Workers
		}
		var emit func(io IOStats)
		if opts.OnProgress != nil {
			emit = func(io IOStats) {
				opts.OnProgress(Progress{Phase: "scan", IO: io, Elapsed: time.Since(began)})
			}
		}
		res, err := p.runScan(target, opts, workers, guard, emit, runSpan)
		if res == nil {
			return nil, err
		}
		res.Duration = time.Since(began)
		res.GroupLabels = groupLabels(p.grp)
		return res, err
	}
	if opts.Quality {
		// The knob maps to core's collection flag here (opts is a copy);
		// core.Params.CollectQuality is as fingerprint-neutral as
		// Options.Quality itself.
		opts.Params.CollectQuality = true
	}
	start := opts.StartBlock
	if start < 0 {
		nb := p.engine.src.NumBlocks()
		if nb > 0 {
			start = rand.New(rand.NewSource(opts.Seed)).Intn(nb)
		} else {
			start = 0
		}
	}
	bs := newBlockSampler(p.engine.src, p.cand, p.grp, p.query.Filter, opts.Executor, opts.Lookahead, start, guard)
	bs.workers = opts.Workers
	if bs.workers <= 0 {
		bs.workers = runtime.GOMAXPROCS(0)
	}
	if !opts.DisableBlockSkip {
		bs.skipAll = p.skipAll
		bs.skipGrp = p.skipGrp
	}
	if !opts.DisableScanKernels {
		bs.initFastPath()
	}
	obs, obsClose := RunObserver(began, opts, bs.Stats, p.cand.labelOf, runSpan)
	defer obsClose()
	coreRes, err := core.RunObserved(bs, target, opts.Params, obs)
	if opts.Trace != nil && len(bs.wBlocks) > 1 {
		// Per-worker sampler spans, attribute-only: phase spans already
		// carry the run's full IO as deltas, so worker spans must not
		// repeat it (the span tree's IO sums to Result.IO).
		for i := range bs.wBlocks {
			sp := runSpan.Child(fmt.Sprintf("sampler.worker%d", i))
			sp.SetAttr("blocks", bs.wBlocks[i])
			sp.SetAttr("tuples", bs.wTuples[i])
			sp.End()
		}
	}
	if err != nil && (coreRes == nil || !interrupted(err)) {
		return nil, err
	}
	res := SamplingResult(coreRes, bs.Stats(), time.Since(began), groupLabels(p.grp), p.cand.labelOf)
	res.Sampler = &SamplerStats{
		Workers:      len(bs.wBlocks),
		Chunks:       bs.chunks,
		WorkerBlocks: bs.wBlocks,
		WorkerTuples: bs.wTuples,
	}
	return res, err
}

// RunObserver builds the OnProgress/trace observer for a sampling run:
// each core emission (after stage 1, every stage-2 round, stage 3) cuts
// a phase span carrying the IOStats delta since the previous one and/or
// a Progress frame. Tracing forces an observer on even when OnProgress
// is nil — the cost sits on the per-round path, never the per-row path,
// and results are unchanged (the guarantee OnProgress pins in its
// perturbation test). The returned closer must run after the core run:
// an interrupted run salvages without a final emission, and a few I/O
// counters land after the last one, so it folds the residual into a
// closing "tail" span keeping the tree's IO summing to the run's total.
// Shared by the single-node path and the cluster coordinator, which is
// what keeps coordinated progress frames byte-identical (Elapsed aside)
// to single-node ones.
func RunObserver(began time.Time, opts Options, stats func() IOStats, labelOf func(int) string, runSpan *trace.Span) (core.Observer, func()) {
	traced := opts.Trace != nil
	if opts.OnProgress == nil && !traced {
		return nil, func() {}
	}
	phaseStart := began
	var phaseIO IOStats
	obs := func(s core.Snapshot) {
		if traced {
			now := time.Now()
			cur := stats()
			name := s.Phase
			if s.Phase == "stage2" {
				name = fmt.Sprintf("stage2.round%d", s.Round)
			}
			sp := runSpan.ChildAt(name, phaseStart)
			sp.SetAttr("drawn", s.Drawn)
			sp.SetAttr("active_candidates", s.ActiveCandidates)
			if q := s.Quality; q != nil {
				sp.SetAttr("gap", q.Gap)
				sp.SetAttr("slack", q.Slack)
				sp.SetAttr("churn", q.Churn)
			}
			sp.SetIO(traceIO(ioDelta(cur, phaseIO)))
			sp.EndAt(now)
			phaseStart, phaseIO = now, cur
		}
		if opts.OnProgress == nil {
			return
		}
		pr := Progress{
			Phase:            s.Phase,
			Round:            s.Round,
			ActiveCandidates: s.ActiveCandidates,
			SamplesDrawn:     s.Drawn,
			IO:               stats(),
			Elapsed:          time.Since(began),
		}
		if len(s.TopK) > 0 {
			pr.TopK = make([]ProgressMatch, len(s.TopK))
			for i, rk := range s.TopK {
				pr.TopK[i] = ProgressMatch{ID: rk.ID, Label: labelOf(rk.ID), Distance: rk.Distance}
			}
		}
		if q := s.Quality; q != nil {
			pr.Quality = &ProgressQuality{
				Gap:              q.Gap,
				Slack:            q.Slack,
				Churn:            q.Churn,
				PrunedCandidates: q.PrunedCandidates,
			}
			// Quality entries are aligned with Snapshot.TopK by the
			// core contract.
			for i := range pr.TopK {
				pr.TopK[i].CI = q.TopK[i].CI
			}
		}
		opts.OnProgress(pr)
	}
	closer := func() {}
	if traced {
		closer = func() {
			if resid := ioDelta(stats(), phaseIO); resid != (IOStats{}) {
				sp := runSpan.ChildAt("tail", phaseStart)
				sp.SetIO(traceIO(resid))
				sp.End()
			}
		}
	}
	return obs, closer
}

// SamplingResult converts a core sampling result into an engine Result —
// the assembly shared by runWithTarget and the cluster coordinator (the
// coordinator folds shard partials into the same core run, so sharing
// the assembly keeps coordinated answers byte-identical to single-node
// ones). Sampler diagnostics are the caller's to attach.
func SamplingResult(coreRes *core.Result, io IOStats, duration time.Duration, grpLabels []string, labelOf func(int) string) *Result {
	res := &Result{
		Exact:       coreRes.Exact,
		Partial:     coreRes.Partial,
		Stats:       coreRes.Stats,
		IO:          io,
		Duration:    duration,
		GroupLabels: grpLabels,
		Quality:     qualityReport(coreRes.Quality, labelOf),
	}
	for _, rk := range coreRes.TopK {
		res.TopK = append(res.TopK, Match{
			ID:        rk.ID,
			Label:     labelOf(rk.ID),
			Distance:  rk.Distance,
			Histogram: coreRes.Hists[rk.ID],
		})
	}
	for _, id := range coreRes.Pruned {
		res.Pruned = append(res.Pruned, labelOf(id))
	}
	return res
}

// ioDelta subtracts two monotone IOStats snapshots (cur - prev); phase
// spans carry deltas so the tree sums to the run's total.
func ioDelta(cur, prev IOStats) IOStats {
	return IOStats{
		BlocksRead:    cur.BlocksRead - prev.BlocksRead,
		BlocksSkipped: cur.BlocksSkipped - prev.BlocksSkipped,
		BlocksPruned:  cur.BlocksPruned - prev.BlocksPruned,
		TuplesRead:    cur.TuplesRead - prev.TuplesRead,
		KernelBlocks:  cur.KernelBlocks - prev.KernelBlocks,
		Wraps:         cur.Wraps - prev.Wraps,
	}
}

// traceIO converts engine I/O counters to the trace package's
// import-cycle-free mirror struct.
func traceIO(io IOStats) trace.IO {
	return trace.IO{
		BlocksRead:    io.BlocksRead,
		BlocksSkipped: io.BlocksSkipped,
		BlocksPruned:  io.BlocksPruned,
		TuplesRead:    io.TuplesRead,
		KernelBlocks:  io.KernelBlocks,
		Wraps:         io.Wraps,
	}
}

func groupLabels(grp groupMapper) []string {
	out := make([]string, grp.groups())
	for g := range out {
		out[g] = grp.labelOf(g)
	}
	return out
}
