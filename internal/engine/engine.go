package engine

import (
	"fmt"
	"math/rand"
	"time"

	"fastmatch/internal/bitmap"
	"fastmatch/internal/colstore"
	"fastmatch/internal/core"
	"fastmatch/internal/histogram"
)

// Query is a histogram-generating query template (Definition 1): candidate
// attribute Z, grouping attribute(s) X, and optional extensions.
type Query struct {
	// Z names the candidate attribute; one candidate per distinct value.
	// Ignored when CandidatePreds is set.
	Z string
	// KnownCandidates, when non-empty, restricts the candidate domain to
	// these values and adds a dummy candidate absorbing all others
	// (Appendix A.1.5).
	KnownCandidates []string
	// CandidatePreds defines candidates as boolean predicates over
	// attribute values instead of the Z column (Appendix A.1.2).
	CandidatePreds []bitmap.Predicate
	// X names the grouping attribute(s); more than one gives composite
	// groups over the cross product (Appendix A.1.3). Ignored when
	// XMeasure is set.
	X []string
	// XMeasure and XBins group by binning a continuous measure column
	// (Appendix A.1.4).
	XMeasure string
	XBins    *colstore.Binner
	// Measure, when set, answers SUM(Measure) instead of COUNT(*) via the
	// measure-biased view (Appendix A.1.1); see MeasureBiasedView.
	Measure string
	// Filter, when set, restricts the relation to rows where it returns
	// true (WHERE predicates beyond the candidate equality). The
	// ParallelScan executor invokes it from several goroutines within one
	// run, and sharing an Engine or Plan across goroutines makes
	// concurrent runs each call it too — so unless every run using this
	// query is sequential and non-ParallelScan, the function must be safe
	// for concurrent calls. (Candidate-target resolution itself drops to
	// one worker when a Filter is present.)
	Filter func(row int) bool
}

// Target specifies the visual target q.
type Target struct {
	// Counts is an explicit target histogram (takes precedence).
	Counts []float64
	// Candidate names a candidate value whose exact histogram is the
	// target (e.g. "Greece"); resolved by a full scan of that candidate.
	Candidate string
	// Uniform targets the uniform distribution (used by most Table 3
	// queries: "closest candidate to uniform").
	Uniform bool
}

// Options configures a run.
type Options struct {
	// Params are HistSim's knobs (k, ε, δ, σ, m, metric, …).
	Params core.Params
	// Executor selects Scan / ScanMatch / SyncMatch / FastMatch /
	// ParallelScan.
	Executor Executor
	// Lookahead is the FastMatch marking window in blocks (default 1024).
	Lookahead int
	// StartBlock is the scan start position; negative picks one at random
	// from Seed (the paper starts each run at a random position).
	StartBlock int
	// Seed drives the random start position when StartBlock is negative.
	// A zero Seed is a fixed seed, not "random": every run with Seed 0
	// (DefaultOptions leaves it zero) derives the same pseudo-random start
	// block. Callers wanting the paper's independent-runs behavior must
	// supply a distinct Seed per run (the CLI tools seed from wall-clock
	// time).
	Seed int64
	// Workers is the goroutine count for the ParallelScan executor and
	// for parallel candidate-target resolution; ≤ 0 selects GOMAXPROCS.
	// It does not affect the sampling executors.
	Workers int
}

// Result is a complete query answer.
type Result struct {
	// TopK lists matching candidates closest-first.
	TopK []Match
	// Pruned lists stage-1-pruned candidate labels.
	Pruned []string
	// Exact reports a full-data answer.
	Exact bool
	// Stats carries HistSim diagnostics (zero-valued for Scan).
	Stats core.RunStats
	// IO carries block-level I/O counters.
	IO IOStats
	// Duration is the wall-clock time of the run (excluding target
	// resolution and index construction).
	Duration time.Duration
	// GroupLabels names the histogram groups, aligned with Histogram
	// vector indices.
	GroupLabels []string
}

// Match pairs a candidate with its distance and reconstructed histogram.
type Match struct {
	// ID is the internal candidate id.
	ID int
	// Label is the candidate's attribute value (or predicate string).
	Label string
	// Distance is the estimated distance to the target.
	Distance float64
	// Histogram is the reconstructed (approximate or exact) histogram.
	Histogram *histogram.Histogram
}

// Engine answers top-k histogram matching queries over one storage
// source — any colstore.Reader backend: the heap-resident table, the
// zero-copy mmap snapshot, or future backends (sharded, remote). It
// caches bitmap indexes and density maps per column behind singleflight
// guards, so one shared Engine is safe for concurrent use: any number of
// goroutines may Prepare, Run, and ResolveTarget simultaneously (per-run
// scan state lives in the run, not the Engine). Concurrent requests for a
// missing index block on a single build instead of duplicating it.
type Engine struct {
	src     colstore.Reader
	indexes *buildCache[*bitmap.Index]
	density *buildCache[*bitmap.DensityMap]
}

// New creates an engine over a storage source (e.g. a *colstore.Table or
// *colstore.MmapTable).
func New(src colstore.Reader) *Engine {
	return &Engine{
		src:     src,
		indexes: newBuildCache[*bitmap.Index](),
		density: newBuildCache[*bitmap.DensityMap](),
	}
}

// Source returns the underlying storage source.
func (e *Engine) Source() colstore.Reader { return e.src }

// Index returns (building if needed) the bitmap index for a column.
// Indexes are immutable once built and shared across runs.
func (e *Engine) Index(column string) (*bitmap.Index, error) {
	return e.indexes.get(column, func() (*bitmap.Index, error) {
		return bitmap.Build(e.src, column)
	})
}

// Density returns (building if needed) the density map for a column.
func (e *Engine) Density(column string) (*bitmap.DensityMap, error) {
	return e.density.get(column, func() (*bitmap.DensityMap, error) {
		return bitmap.BuildDensity(e.src, column)
	})
}

// ResolveTarget materializes the target histogram for a query. Candidate
// targets are resolved with an exact parallel scan restricted (via the
// bitmap index) to the blocks containing the candidate.
func (e *Engine) ResolveTarget(q Query, t Target) (*histogram.Histogram, error) {
	p, err := e.Prepare(q)
	if err != nil {
		return nil, err
	}
	return p.ResolveTarget(t, 0)
}

// Run plans the query and answers it with the configured executor. The
// target is resolved before timing starts, matching the paper's
// measurement of query execution only. Repeated runs of the same query
// shape should Prepare once and call Plan.Run instead.
func (e *Engine) Run(q Query, t Target, opts Options) (*Result, error) {
	p, err := e.Prepare(q)
	if err != nil {
		return nil, err
	}
	return p.Run(t, opts)
}

// RunWithTarget answers the query against a pre-resolved target histogram.
func (e *Engine) RunWithTarget(q Query, target *histogram.Histogram, opts Options) (*Result, error) {
	p, err := e.Prepare(q)
	if err != nil {
		return nil, err
	}
	return p.RunWithTarget(target, opts)
}

// Run resolves the target under the plan and answers it with the
// configured executor. Options are validated first (see Options.Validate),
// so a malformed request fails with an *InvalidOptionsError before any
// target resolution or sampling work starts.
func (p *Plan) Run(t Target, opts Options) (*Result, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	target, err := p.ResolveTarget(t, opts.Workers)
	if err != nil {
		return nil, err
	}
	return p.RunWithTarget(target, opts)
}

// RunWithTarget answers the plan against a pre-resolved target histogram.
// The Plan is immutable: concurrent RunWithTarget calls on one Plan are
// safe, each run owning its private sampler state.
func (p *Plan) RunWithTarget(target *histogram.Histogram, opts Options) (*Result, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	if target.Groups() != p.grp.groups() {
		return nil, fmt.Errorf("engine: target has %d groups, query produces %d", target.Groups(), p.grp.groups())
	}
	began := time.Now()
	if opts.Executor == Scan || opts.Executor == ParallelScan {
		workers := 1
		if opts.Executor == ParallelScan {
			workers = opts.Workers
		}
		res, err := p.runScan(target, opts.Params, workers)
		if err != nil {
			return nil, err
		}
		res.Duration = time.Since(began)
		res.GroupLabels = groupLabels(p.grp)
		return res, nil
	}
	start := opts.StartBlock
	if start < 0 {
		nb := p.engine.src.NumBlocks()
		if nb > 0 {
			start = rand.New(rand.NewSource(opts.Seed)).Intn(nb)
		} else {
			start = 0
		}
	}
	bs := newBlockSampler(p.engine.src, p.cand, p.grp, p.query.Filter, opts.Executor, opts.Lookahead, start)
	coreRes, err := core.Run(bs, target, opts.Params)
	if err != nil {
		return nil, err
	}
	res := &Result{
		Exact:       coreRes.Exact,
		Stats:       coreRes.Stats,
		IO:          bs.Stats(),
		Duration:    time.Since(began),
		GroupLabels: groupLabels(p.grp),
	}
	for _, rk := range coreRes.TopK {
		res.TopK = append(res.TopK, Match{
			ID:        rk.ID,
			Label:     p.cand.labelOf(rk.ID),
			Distance:  rk.Distance,
			Histogram: coreRes.Hists[rk.ID],
		})
	}
	for _, id := range coreRes.Pruned {
		res.Pruned = append(res.Pruned, p.cand.labelOf(id))
	}
	return res, nil
}

func groupLabels(grp groupMapper) []string {
	out := make([]string, grp.groups())
	for g := range out {
		out[g] = grp.labelOf(g)
	}
	return out
}
