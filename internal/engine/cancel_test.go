package engine

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"fastmatch/internal/colstore"
	"fastmatch/internal/ingest"
)

// The -race cancellation suite: every executor, over every storage
// backend, must unwind cleanly from a mid-scan cancellation — typed
// error, best-effort partial result, goroutines joined, view pins
// released — and the engine's shared caches must keep serving
// byte-identical results afterwards.

// cancelBackends returns the three storage backends a query can run
// over, each serving the same dataset.
func cancelBackends(t *testing.T) map[string]colstore.Reader {
	tbl := testDataset(t, 40_000, 20, 8, 5)
	return map[string]colstore.Reader{
		"inmem":  tbl,
		"mmap":   mmapTwin(t, tbl),
		"ingest": ingestTwin(t, tbl),
	}
}

// ingestTwin replays tbl's rows into a WritableTable and returns a
// snapshot-isolated view over them (released at cleanup).
func ingestTwin(t testing.TB, tbl *colstore.Table) *ingest.TableView {
	t.Helper()
	wt := ingestTableFrom(t, tbl, 4096)
	v, err := wt.View()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(v.Release)
	return v
}

// ingestTableFrom appends every row of tbl to a fresh WritableTable.
func ingestTableFrom(t testing.TB, tbl *colstore.Table, sealRows int) *ingest.WritableTable {
	t.Helper()
	wt, err := ingest.Open(t.TempDir(), ingest.Schema{
		Columns:   tbl.Columns(),
		Measures:  tbl.MeasureNames(),
		BlockSize: tbl.BlockSize(),
	}, ingest.Options{SealRows: sealRows, NoSync: true, CompactInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { wt.Close() })
	cols := make([]colstore.ColumnReader, 0, len(tbl.Columns()))
	for _, name := range tbl.Columns() {
		c, err := tbl.ColumnByName(name)
		if err != nil {
			t.Fatal(err)
		}
		cols = append(cols, c)
	}
	meas := make([]colstore.MeasureReader, 0, len(tbl.MeasureNames()))
	for _, name := range tbl.MeasureNames() {
		m, err := tbl.MeasureByName(name)
		if err != nil {
			t.Fatal(err)
		}
		meas = append(meas, m)
	}
	batch := make([]ingest.Row, 0, 1000)
	flush := func() {
		if len(batch) == 0 {
			return
		}
		if _, err := wt.Append(batch); err != nil {
			t.Fatal(err)
		}
		batch = batch[:0]
	}
	for row := 0; row < tbl.NumRows(); row++ {
		r := ingest.Row{Values: make(map[string]string, len(cols))}
		for _, c := range cols {
			r.Values[c.ColumnName()] = c.Dictionary().Value(c.Code(row))
		}
		if len(meas) > 0 {
			r.Measures = make(map[string]float64, len(meas))
			for _, m := range meas {
				r.Measures[m.MeasureName()] = m.Value(row)
			}
		}
		if batch = append(batch, r); len(batch) == cap(batch) {
			flush()
		}
	}
	flush()
	return wt
}

// cancelAfterRows returns a row filter that keeps every row and cancels
// ctx once n rows have been seen — a deterministic mid-scan trigger that
// works identically for sequential and parallel executors.
func cancelAfterRows(cancel context.CancelFunc, n int64) func(int) bool {
	var seen atomic.Int64
	return func(int) bool {
		if seen.Add(1) == n {
			cancel()
		}
		return true
	}
}

func cancelOptions(exec Executor, nb int) Options {
	return Options{
		Params:     testParams(),
		Executor:   exec,
		Lookahead:  nb + 1,
		StartBlock: -1,
		Seed:       11,
		Workers:    4,
	}
}

func TestCancelMidScanAllExecutorsAllBackends(t *testing.T) {
	for name, src := range cancelBackends(t) {
		eng := New(src)
		for _, exec := range allExecutors() {
			t.Run(fmt.Sprintf("%s/%s", name, exec), func(t *testing.T) {
				ctx, cancel := context.WithCancel(context.Background())
				defer cancel()
				q := baseQuery()
				q.Filter = cancelAfterRows(cancel, 5_000)
				res, err := eng.RunContext(ctx, q, Target{Uniform: true}, cancelOptions(exec, src.NumBlocks()))
				if !errors.Is(err, ErrCanceled) {
					t.Fatalf("want ErrCanceled, got %v", err)
				}
				if !errors.Is(err, context.Canceled) {
					t.Fatalf("cause should be context.Canceled, got %v", err)
				}
				if res == nil {
					t.Fatal("canceled mid-scan run returned no partial result")
				}
				if !res.Partial || res.Exact {
					t.Fatalf("partial=%v exact=%v, want partial non-exact", res.Partial, res.Exact)
				}
				// Unwound at block granularity: nowhere near the full pass.
				if res.IO.TuplesRead >= int64(src.NumRows()) {
					t.Fatalf("read %d tuples of %d after cancellation at 5000 rows", res.IO.TuplesRead, src.NumRows())
				}
			})
		}
	}
}

// TestCachesServeIdenticalResultsAfterCancellation is the cache-
// consistency half of the contract: an engine that has absorbed canceled
// runs must answer exactly like one that never saw them.
func TestCachesServeIdenticalResultsAfterCancellation(t *testing.T) {
	for name, src := range cancelBackends(t) {
		t.Run(name, func(t *testing.T) {
			scarred := New(src)
			for _, exec := range allExecutors() {
				ctx, cancel := context.WithCancel(context.Background())
				q := baseQuery()
				q.Filter = cancelAfterRows(cancel, 2_000)
				if _, err := scarred.RunContext(ctx, q, Target{Uniform: true}, cancelOptions(exec, src.NumBlocks())); !errors.Is(err, ErrCanceled) {
					cancel()
					t.Fatalf("%v: cancellation did not fire: %v", exec, err)
				}
				cancel()
			}
			pristine := New(src)
			for _, exec := range allExecutors() {
				opts := cancelOptions(exec, src.NumBlocks())
				a, err := scarred.Run(baseQuery(), Target{Uniform: true}, opts)
				if err != nil {
					t.Fatalf("%v on scarred engine: %v", exec, err)
				}
				b, err := pristine.Run(baseQuery(), Target{Uniform: true}, opts)
				if err != nil {
					t.Fatalf("%v on pristine engine: %v", exec, err)
				}
				if ca, cb := canonicalResult(t, a), canonicalResult(t, b); ca != cb {
					t.Fatalf("%v: results diverge after cancellations:\nscarred:  %s\npristine: %s", exec, ca, cb)
				}
			}
		})
	}
}

func TestRowBudgetReturnsPartialResult(t *testing.T) {
	tbl := testDataset(t, 40_000, 20, 8, 5)
	eng := New(tbl)
	const budget = 3_000
	for _, exec := range allExecutors() {
		t.Run(exec.String(), func(t *testing.T) {
			opts := cancelOptions(exec, tbl.NumBlocks())
			opts.RowBudget = budget
			res, err := eng.Run(baseQuery(), Target{Uniform: true}, opts)
			if !errors.Is(err, ErrBudgetExhausted) {
				t.Fatalf("want ErrBudgetExhausted, got %v", err)
			}
			if res == nil || !res.Partial {
				t.Fatalf("budget stop should produce a partial result, got %+v", res)
			}
			if res.IO.TuplesRead < budget {
				t.Fatalf("stopped before the budget: read %d of %d", res.IO.TuplesRead, budget)
			}
			// Block-granular enforcement: at most one extra block per worker.
			slack := int64((opts.Workers + 1) * tbl.BlockSize())
			if res.IO.TuplesRead > budget+slack {
				t.Fatalf("overshot the budget: read %d, budget %d (+%d slack)", res.IO.TuplesRead, budget, slack)
			}
			if len(res.TopK) == 0 {
				t.Fatal("partial result carries no best-effort top-k")
			}
			for _, m := range res.TopK {
				if m.Histogram == nil || m.Histogram.Total() == 0 {
					t.Fatalf("partial top-k ranked never-observed candidate %q", m.Label)
				}
			}
		})
	}
}

func TestPreExpiredDeadlineFailsFast(t *testing.T) {
	tbl := testDataset(t, 10_000, 10, 6, 3)
	eng := New(tbl)
	p, err := eng.Prepare(baseQuery())
	if err != nil {
		t.Fatal(err)
	}
	opts := cancelOptions(ScanMatch, tbl.NumBlocks())
	opts.Deadline = time.Now().Add(-time.Second)
	res, err := p.Run(Target{Uniform: true}, opts)
	if !errors.Is(err, ErrCanceled) || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want ErrCanceled wrapping DeadlineExceeded, got %v", err)
	}
	if res != nil {
		t.Fatalf("no work was done, result should be nil, got %+v", res)
	}
}

func TestDeadlineMidRunReturnsPartial(t *testing.T) {
	tbl := testDataset(t, 40_000, 20, 8, 5)
	slow := colstore.NewThrottledReader(tbl, 500*time.Microsecond)
	eng := New(slow)
	// Build the plan (and its bitmap index — a full block sweep, which
	// also pays the simulated latency) before the clock starts: planning
	// is shared across runs and deliberately not cancellable.
	if _, err := eng.Prepare(baseQuery()); err != nil {
		t.Fatal(err)
	}
	opts := cancelOptions(ScanMatch, slow.NumBlocks())
	opts.Deadline = time.Now().Add(50 * time.Millisecond)
	res, err := eng.Run(baseQuery(), Target{Uniform: true}, opts)
	if !errors.Is(err, ErrCanceled) || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want ErrCanceled wrapping DeadlineExceeded, got %v", err)
	}
	if res == nil || !res.Partial {
		t.Fatalf("mid-run deadline should salvage a partial result, got %+v", res)
	}
	if res.IO.TuplesRead >= int64(tbl.NumRows()) {
		t.Fatal("deadline did not stop the scan")
	}
}

// TestFastMatchCancelJoinsLookaheadGoroutines asserts the canceled
// FastMatch path leaves no marker goroutine behind.
func TestFastMatchCancelJoinsLookaheadGoroutines(t *testing.T) {
	tbl := testDataset(t, 40_000, 20, 8, 5)
	eng := New(tbl)
	// Warm the index caches so the baseline is steady.
	if _, err := eng.Run(baseQuery(), Target{Uniform: true}, cancelOptions(ScanMatch, tbl.NumBlocks())); err != nil {
		t.Fatal(err)
	}
	before := runtime.NumGoroutine()
	for i := 0; i < 20; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		q := baseQuery()
		q.Filter = cancelAfterRows(cancel, 1_000)
		opts := cancelOptions(FastMatch, tbl.NumBlocks())
		opts.Lookahead = 16 // many windows: the marker outlives the read loop
		if _, err := eng.RunContext(ctx, q, Target{Uniform: true}, opts); !errors.Is(err, ErrCanceled) {
			cancel()
			t.Fatalf("iteration %d: want ErrCanceled, got %v", i, err)
		}
		cancel()
	}
	for attempt := 0; ; attempt++ {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= before {
			break
		} else if attempt > 50 {
			t.Fatalf("goroutines leaked: %d before, %d after 20 canceled FastMatch runs", before, n)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestIngestPinsReleasedAfterCanceledRun asserts a canceled FastMatch
// run over a live-table view leaves no segment pins behind once the view
// is released (the leak assertion via ingest.Stats).
func TestIngestPinsReleasedAfterCanceledRun(t *testing.T) {
	tbl := testDataset(t, 40_000, 20, 8, 5)
	wt := ingestTableFrom(t, tbl, 2048) // many sealed segments
	v0, err := wt.View()
	if err != nil {
		t.Fatal(err)
	}
	v0.Release()
	base := wt.Stats()
	if base.Segments < 4 {
		t.Fatalf("want several sealed segments, got %d", base.Segments)
	}

	v, err := wt.View()
	if err != nil {
		t.Fatal(err)
	}
	eng := New(v)
	for i := 0; i < 5; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		q := baseQuery()
		q.Filter = cancelAfterRows(cancel, 2_000)
		if _, err := eng.RunContext(ctx, q, Target{Uniform: true}, cancelOptions(FastMatch, v.NumBlocks())); !errors.Is(err, ErrCanceled) {
			cancel()
			t.Fatalf("iteration %d: want ErrCanceled, got %v", i, err)
		}
		cancel()
	}
	v.Release()
	if got := wt.Stats().SegmentPins; got != base.SegmentPins {
		t.Fatalf("segment pins leaked across canceled runs: %d, baseline %d", got, base.SegmentPins)
	}
}

// TestProgressSequenceDeterministic asserts seeded progressive runs emit
// identical Progress sequences (Elapsed zeroed — it is wall-clock).
func TestProgressSequenceDeterministic(t *testing.T) {
	tbl := testDataset(t, 40_000, 20, 8, 5)
	for _, exec := range []Executor{Scan, ScanMatch, SyncMatch} {
		t.Run(exec.String(), func(t *testing.T) {
			eng := New(tbl)
			collect := func() []Progress {
				var got []Progress
				opts := cancelOptions(exec, tbl.NumBlocks())
				opts.Workers = 1
				opts.OnProgress = func(p Progress) {
					p.Elapsed = 0
					got = append(got, p)
				}
				if _, err := eng.Run(baseQuery(), Target{Uniform: true}, opts); err != nil {
					t.Fatal(err)
				}
				return got
			}
			a, b := collect(), collect()
			if len(a) == 0 {
				t.Fatal("no progress emitted")
			}
			if fmt.Sprintf("%+v", a) != fmt.Sprintf("%+v", b) {
				t.Fatalf("progress sequences diverge:\n%+v\nvs\n%+v", a, b)
			}
			wantPhase := "stage1"
			if exec == Scan {
				wantPhase = "scan"
			}
			if a[0].Phase != wantPhase {
				t.Fatalf("first frame phase %q, want %q", a[0].Phase, wantPhase)
			}
		})
	}
}

// TestProgressMatchesPlainRun asserts OnProgress observation does not
// perturb the answer.
func TestProgressMatchesPlainRun(t *testing.T) {
	tbl := testDataset(t, 40_000, 20, 8, 5)
	eng := New(tbl)
	for _, exec := range allExecutors() {
		opts := cancelOptions(exec, tbl.NumBlocks())
		plain, err := eng.Run(baseQuery(), Target{Uniform: true}, opts)
		if err != nil {
			t.Fatal(err)
		}
		frames := 0
		opts.OnProgress = func(Progress) { frames++ }
		observed, err := eng.Run(baseQuery(), Target{Uniform: true}, opts)
		if err != nil {
			t.Fatal(err)
		}
		if canonicalResult(t, plain) != canonicalResult(t, observed) {
			t.Fatalf("%v: OnProgress changed the result", exec)
		}
		if exec != ParallelScan && frames == 0 {
			t.Fatalf("%v: no progress frames", exec)
		}
	}
}
